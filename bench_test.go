// Benchmarks regenerating every evaluation artifact of the paper, one
// benchmark per table/figure, at test-friendly scale (use cmd/tmsim
// -scale full for the EXPERIMENTS.md numbers). Wall-clock time measures
// the simulator; the numbers that reproduce the paper are the reported
// custom metrics, in simulated cycles and speedups.
package repro

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/stamp"
)

// benchParallel bounds the sweep benchmarks' worker pool; 0 means one
// worker per CPU. Set it with `go test -bench Sweep -args -parallel=N`
// (the -args separator keeps it distinct from go test's own -parallel).
var benchParallel = flag.Int("parallel", 0, "sweep benchmark worker count (0 = one per CPU)")

func benchOptions() harness.Options {
	opt := harness.DefaultOptions()
	opt.Params.MemBytes = 1 << 24
	opt.OTableRows = 1 << 14
	return opt
}

// benchWorkload runs one (system, workload, threads) cell b.N times and
// reports the simulated speedup against the sequential baseline.
func benchWorkload(b *testing.B, kind harness.SystemKind, mk func() stamp.Workload, threads int) {
	b.Helper()
	opt := benchOptions()
	seq := harness.Run(harness.Sequential, mk(), 1, opt)
	if seq.Err != nil {
		b.Fatal(seq.Err)
	}
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = harness.Run(kind, mk(), threads, opt)
	}
	if last.Err != nil {
		b.Fatal(last.Err)
	}
	b.ReportMetric(float64(last.Cycles), "simcycles")
	b.ReportMetric(last.Speedup(seq.Cycles), "speedup")
}

// --- Figure 5: one bench per benchmark × key system (4 threads) ---

func BenchmarkFigure5(b *testing.B) {
	systems := []harness.SystemKind{
		harness.UnboundedHTM, harness.UFOHybrid, harness.HyTM,
		harness.PhTM, harness.USTMUFO, harness.TL2,
	}
	for _, f := range harness.Benchmarks(harness.ScaleSmall) {
		for _, sys := range systems {
			b.Run(fmt.Sprintf("%s/%s", f.Name, sys), func(b *testing.B) {
				benchWorkload(b, sys, f.New, 4)
			})
		}
	}
}

// BenchmarkFigure5Sweep measures the whole ScaleSmall Figure 5 sweep
// through the parallel Runner (worker count from -parallel). Comparing
// `-args -parallel=1` against the default measures the sweep executor's
// wall-clock speedup; the reported results are identical by
// construction.
func BenchmarkFigure5Sweep(b *testing.B) {
	opt := benchOptions()
	runner := harness.Parallel(*benchParallel)
	for i := 0; i < b.N; i++ {
		data, err := runner.Figure5(opt, harness.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 5 {
			b.Fatalf("sweep returned %d workloads", len(data))
		}
	}
}

// --- Figure 6: abort-reason profile of the hybrids on vacation-high ---

func BenchmarkFigure6AbortBreakdown(b *testing.B) {
	for _, sys := range harness.Figure6Systems {
		b.Run(string(sys), func(b *testing.B) {
			opt := benchOptions()
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(sys, stamp.VacationHigh(192, 24), 4, opt)
			}
			if last.Err != nil {
				b.Fatal(last.Err)
			}
			b.ReportMetric(float64(last.Machine.HWAbortsByReason[machine.AbortOverflow]), "overflows")
			b.ReportMetric(float64(last.Machine.HWAbortsByReason[machine.AbortUFOKill]), "ufokills")
			b.ReportMetric(float64(last.Machine.HWAbortsByReason[machine.AbortNonTConflict]), "nonTconf")
			b.ReportMetric(float64(last.Stats.HWCommits), "hwcommits")
		})
	}
}

// --- Figure 7: the failover-rate sweep at three points per system ---

func BenchmarkFigure7Failover(b *testing.B) {
	for _, sys := range harness.Figure7Systems {
		for _, rate := range []int{0, 20, 100} {
			b.Run(fmt.Sprintf("%s/rate%d", sys, rate), func(b *testing.B) {
				benchWorkload(b, sys, func() stamp.Workload { return stamp.NewFailover(40, rate) }, 4)
			})
		}
	}
}

// --- Figure 8: contention-policy sensitivity on genome ---

func BenchmarkFigure8Policies(b *testing.B) {
	for _, v := range harness.Figure8Variants() {
		b.Run(v.Name, func(b *testing.B) {
			opt := benchOptions()
			v.Mutate(&opt)
			seq := harness.Run(harness.Sequential, stamp.NewGenome(192), 1, opt)
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.UFOHybrid, stamp.NewGenome(192), 4, opt)
			}
			if last.Err != nil {
				b.Fatal(last.Err)
			}
			b.ReportMetric(last.Speedup(seq.Cycles), "speedup")
		})
	}
}

// --- Primitive micro-benchmarks (Tables 1–3 surface) ---

// BenchmarkTable1BTMTransaction measures the raw hardware-transaction
// path (Table 1's begin/load/store/end sequence, zero instrumentation).
func BenchmarkTable1BTMTransaction(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		r := harness.Run(harness.UnboundedHTM, stamp.NewFailover(50, 0), 1, opt)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkTable2UFOOps measures UFO bit manipulation throughput.
func BenchmarkTable2UFOOps(b *testing.B) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 22
	for i := 0; i < b.N; i++ {
		m := machine.New(params)
		m.Run([]func(*machine.Proc){func(p *machine.Proc) {
			p.SetUFOEnabled(false)
			for a := uint64(0); a < 1024; a += 64 {
				p.SetUFO(a, 3)
				p.ReadUFO(a)
				p.SetUFO(a, 0)
			}
		}})
	}
}

// BenchmarkTable3USTMBarriers measures the software-transaction path
// (Table 3's begin/read-barrier/write-barrier/end sequence) with strong
// atomicity enabled.
func BenchmarkTable3USTMBarriers(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		r := harness.Run(harness.USTMUFO, stamp.NewFailover(50, 0), 1, opt)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkTable4MachineAccess measures the simulated memory system
// itself under the Table 4 parameters.
func BenchmarkTable4MachineAccess(b *testing.B) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 22
	for i := 0; i < b.N; i++ {
		m := machine.New(params)
		m.Run([]func(*machine.Proc){func(p *machine.Proc) {
			for a := uint64(0); a < 1<<16; a += 8 {
				p.NTWrite(a, a)
			}
		}})
	}
}
