package machine

import (
	"fmt"
	"strings"
)

// histBuckets covers footprints 1 .. 2^16 lines in power-of-two buckets.
const histBuckets = 17

// Hist is a power-of-two histogram of transaction footprints (distinct
// lines touched). Bucket i counts values in (2^(i-1), 2^i]; bucket 0
// counts zero-footprint (empty) transactions.
type Hist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one footprint.
func (h *Hist) Add(n int) {
	v := uint64(n)
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Buckets[b]++
}

// Mean returns the average footprint.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// FracAtMost returns the fraction of samples with footprint ≤ limit
// (computed from the bucket bounds, so it is conservative within a
// bucket).
func (h *Hist) FracAtMost(limit uint64) float64 {
	if h.Count == 0 {
		return 0
	}
	var n uint64
	bound := uint64(0)
	for i := 0; i < histBuckets; i++ {
		if bound > limit {
			break
		}
		n += h.Buckets[i]
		if bound == 0 {
			bound = 1
		} else {
			bound <<= 1
		}
	}
	return float64(n) / float64(h.Count)
}

// String renders the non-empty buckets.
func (h *Hist) String() string {
	if h.Count == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f max=%d [", h.Count, h.Mean(), h.Max)
	bound := uint64(0)
	first := true
	for i := 0; i < histBuckets; i++ {
		if h.Buckets[i] != 0 {
			if !first {
				sb.WriteString(" ")
			}
			first = false
			fmt.Fprintf(&sb, "≤%d:%d", bound, h.Buckets[i])
		}
		if bound == 0 {
			bound = 1
		} else {
			bound <<= 1
		}
	}
	sb.WriteString("]")
	return sb.String()
}

// RecordSWFootprint lets software TMs feed their committed transactions'
// footprints into the machine-wide histogram. Self-bracketed in an
// ordered section (the histogram is shared state).
func (p *Proc) RecordSWFootprint(lines int) {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.m.Count.SWFootprint.Add(lines)
}
