package machine

import "testing"

// BenchmarkNTAccessHot measures an L1-hit non-transactional access.
func BenchmarkNTAccessHot(b *testing.B) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.NTWrite(0, 1) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.NTRead(0)
		}
	}})
}

// BenchmarkHWTxRoundTrip measures begin + one store + commit.
func BenchmarkHWTxRoundTrip(b *testing.B) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.NTWrite(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.BeginHW(m.NextAge(), true)
			p.TxWrite(0, uint64(i))
			p.CommitHW()
		}
	}})
}

// BenchmarkUFOSetClear measures the protection-bit instruction pair.
func BenchmarkUFOSetClear(b *testing.B) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.SetUFOEnabled(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SetUFO(0, 3)
			p.SetUFO(0, 0)
		}
	}})
}
