package machine

import (
	"testing"

	"repro/internal/mem"
)

// captureRecorder records every edge and commit, for asserting the exact
// tuples the machine emits.
type captureRecorder struct {
	edges   []ConflictEdge
	commits []struct {
		proc  int
		hw    bool
		cycle uint64
	}
}

func (c *captureRecorder) RecordEdge(e ConflictEdge) { c.edges = append(c.edges, e) }
func (c *captureRecorder) RecordCommit(proc int, hw bool, cycle uint64) {
	c.commits = append(c.commits, struct {
		proc  int
		hw    bool
		cycle uint64
	}{proc, hw, cycle})
}

// TestConflictEdgeHWConflict: an age-ordered HW-vs-HW kill emits exactly
// one edge carrying the requester as aggressor, the owner as victim, the
// conflicting line, the conflict reason, and a plausible cycle stamp.
func TestConflictEdgeHWConflict(t *testing.T) {
	m := New(testParams(2))
	rec := &captureRecorder{}
	m.SetConflictRecorder(rec)
	m.Run([]func(*Proc){
		func(p *Proc) {
			age := p.Machine().NextAge() // older
			p.Elapse(300)
			p.BeginHW(age, true)
			p.TxRead(0) // older requester: aborts the younger owner
			p.CommitHW()
		},
		func(p *Proc) {
			p.BeginHW(p.Machine().NextAge(), true) // younger
			p.TxWrite(0, 9)
			p.Elapse(1000)
			if p.HW() != nil {
				p.CommitHW()
			}
		},
	})
	if len(rec.edges) != 1 {
		t.Fatalf("edges = %+v, want exactly one", rec.edges)
	}
	e := rec.edges[0]
	if e.Aggressor != 0 || e.Victim != 1 {
		t.Fatalf("edge attribution = %d→%d, want 0→1", e.Aggressor, e.Victim)
	}
	if !e.HasAddr || e.Addr != 0 || e.SW {
		t.Fatalf("edge = %+v, want hw edge on line 0", e)
	}
	if e.Reason != AbortConflict {
		t.Fatalf("edge reason = %v", e.Reason)
	}
	if e.Cycle == 0 || e.Cycle > m.Cycles() {
		t.Fatalf("edge cycle = %d, machine ran %d", e.Cycle, m.Cycles())
	}
	// One HW commit (the aggressor's); edge count matches the abort count.
	if len(rec.commits) != 1 || !rec.commits[0].hw || rec.commits[0].proc != 0 {
		t.Fatalf("commits = %+v", rec.commits)
	}
	if m.Count.HWAbortsByReason[AbortConflict] != 1 {
		t.Fatalf("abort count = %d", m.Count.HWAbortsByReason[AbortConflict])
	}
}

// TestConflictEdgeUFOKill: setting a UFO bit over a speculative reader
// emits a ufo-kill edge from the setter to the reader.
func TestConflictEdgeUFOKill(t *testing.T) {
	m := New(testParams(2))
	rec := &captureRecorder{}
	m.SetConflictRecorder(rec)
	m.Run([]func(*Proc){
		func(p *Proc) {
			victimTx(p, false)
		},
		func(p *Proc) {
			p.Elapse(100)
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite)
		},
	})
	if len(rec.edges) != 1 {
		t.Fatalf("edges = %+v", rec.edges)
	}
	e := rec.edges[0]
	if e.Aggressor != 1 || e.Victim != 0 || e.Reason != AbortUFOKill || !e.HasAddr || e.Addr != 0 {
		t.Fatalf("ufo edge = %+v, want 1→0 ufo-kill on line 0", e)
	}
}

// TestConflictEdgeNonTConflict: a non-transactional write into a HW
// read set emits a nonT-conflict edge.
func TestConflictEdgeNonTConflict(t *testing.T) {
	m := New(testParams(2))
	rec := &captureRecorder{}
	m.SetConflictRecorder(rec)
	m.Run([]func(*Proc){
		func(p *Proc) {
			victimTx(p, false)
		},
		func(p *Proc) {
			p.Elapse(100)
			p.NTWrite(0, 5)
		},
	})
	if len(rec.edges) != 1 {
		t.Fatalf("edges = %+v", rec.edges)
	}
	e := rec.edges[0]
	if e.Aggressor != 1 || e.Victim != 0 || e.Reason != AbortNonTConflict {
		t.Fatalf("nonT edge = %+v, want 1→0 nonT-conflict", e)
	}
}

// TestConflictEdgeAttributedAbort: AbortHWAttributed self-aborts but
// attributes the edge to the named peer; aggressor -1 falls back to self.
func TestConflictEdgeAttributedAbort(t *testing.T) {
	m := New(testParams(2))
	rec := &captureRecorder{}
	m.SetConflictRecorder(rec)
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.BeginHW(p.Machine().NextAge(), true)
			p.TxRead(0)
			p.AbortHWAttributed(AbortExplicit, 1, 0x140)
			p.BeginHW(p.Machine().NextAge(), true)
			p.TxRead(64)
			p.AbortHWAttributed(AbortExplicit, -1, 0x180)
		},
		func(p *Proc) {},
	})
	if len(rec.edges) != 2 {
		t.Fatalf("edges = %+v", rec.edges)
	}
	if e := rec.edges[0]; e.Aggressor != 1 || e.Victim != 0 || e.Addr != 0x140 || !e.HasAddr {
		t.Fatalf("attributed edge = %+v, want 1→0 @0x140", e)
	}
	if e := rec.edges[1]; e.Aggressor != 0 || e.Victim != 0 {
		t.Fatalf("self-fallback edge = %+v, want 0→0", e)
	}
	if m.Count.HWAbortsByReason[AbortExplicit] != 2 {
		t.Fatalf("aborts = %d", m.Count.HWAbortsByReason[AbortExplicit])
	}
}

// TestConflictEdgeSWHelpers: the RecordSW* pass-throughs stamp the
// caller's clock and the SW flag.
func TestConflictEdgeSWHelpers(t *testing.T) {
	m := New(testParams(2))
	rec := &captureRecorder{}
	m.SetConflictRecorder(rec)
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.Elapse(10)
			p.RecordSWKill(p.Machine().Proc(1), AbortConflict, 0x200, true)
			p.RecordSWCommit()
		},
		func(p *Proc) {
			p.Elapse(20)
			p.RecordSWAbortBy(-1, AbortConflict, 0, false)
		},
	})
	if len(rec.edges) != 2 {
		t.Fatalf("edges = %+v", rec.edges)
	}
	if e := rec.edges[0]; !e.SW || e.Aggressor != 0 || e.Victim != 1 || e.Addr != 0x200 || e.Cycle < 10 {
		t.Fatalf("sw kill edge = %+v", e)
	}
	if e := rec.edges[1]; !e.SW || e.Aggressor != -1 || e.Victim != 1 || e.HasAddr {
		t.Fatalf("sw abort-by edge = %+v", e)
	}
	if len(rec.commits) != 1 || rec.commits[0].hw || rec.commits[0].proc != 0 {
		t.Fatalf("commits = %+v", rec.commits)
	}
}

// TestConflictRecorderDetached: with no recorder attached the same
// collision runs identically and nothing panics (the nil fast path).
func TestConflictRecorderDetached(t *testing.T) {
	m := New(testParams(2))
	m.Run([]func(*Proc){
		func(p *Proc) {
			victimTx(p, true)
			p.RecordSWKill(p.Machine().Proc(1), AbortConflict, 0, true)
			p.RecordSWAbortBy(0, AbortConflict, 0, false)
			p.RecordSWCommit()
		},
		func(p *Proc) {
			p.Elapse(100)
			p.NTWrite(0, 5)
		},
	})
	if m.ConflictRecorder() != nil {
		t.Fatal("recorder attached unexpectedly")
	}
}
