package machine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// TraceSink consumes trace events, either streamed live from the machine
// (Machine.AddTraceSink) or replayed from a recorded ring (Trace.Export).
// Sinks buffer internally and surface I/O errors from Close, so the
// simulated hot path never blocks on error handling.
type TraceSink interface {
	// Event consumes one event. Implementations must not retain e.
	Event(e TraceEvent)
	// Close flushes the sink and returns the first error encountered.
	Close() error
}

// AddTraceSink streams every subsequent trace event into sink, in
// addition to (and independently of) the bounded ring enabled by
// EnableTrace. Add sinks before Run; the machine never closes them.
// Sinks are invoked from inside the machine's ordered operations, so
// they see the same deterministic event sequence under every scheduler
// and need no locking of their own.
func (m *Machine) AddTraceSink(sink TraceSink) {
	m.sinks = append(m.sinks, sink)
}

// Export replays the recorded events (oldest first) into sink and closes
// it. Events evicted from the ring are gone; ChromeSink handles the
// resulting orphaned commits/aborts gracefully.
func (t *Trace) Export(sink TraceSink) error {
	for _, e := range t.Events() {
		sink.Event(e)
	}
	return sink.Close()
}

// --- Text sink ---

// TextSink writes the human-readable event format (TraceEvent.String),
// one event per line — the same format Trace.Dump has always produced.
type TextSink struct {
	w   *bufio.Writer
	err error
}

// NewTextSink returns a text sink over w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: bufio.NewWriter(w)}
}

// Event implements TraceSink.
func (s *TextSink) Event(e TraceEvent) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintln(s.w, e)
}

// Close implements TraceSink.
func (s *TextSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// --- JSONL sink ---

// JSONLSink writes one JSON object per event, with a fixed field order:
//
//	{"cycle":12,"proc":0,"kind":"hw-abort","reason":"conflict","addr":"0x1c0","age":3}
//
// "reason" appears only on aborts; "addr" and "age" appear exactly when
// the event carries them (address 0 and age 0 included — see TraceFlags).
// The line format is stable and documented in OBSERVABILITY.md.
type JSONLSink struct {
	w   *bufio.Writer
	err error
}

// NewJSONLSink returns a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Event implements TraceSink.
func (s *JSONLSink) Event(e TraceEvent) {
	if s.err != nil {
		return
	}
	buf := make([]byte, 0, 96)
	buf = append(buf, `{"cycle":`...)
	buf = strconv.AppendUint(buf, e.Cycle, 10)
	buf = append(buf, `,"proc":`...)
	buf = strconv.AppendInt(buf, int64(e.Proc), 10)
	buf = append(buf, `,"kind":`...)
	buf = strconv.AppendQuote(buf, e.Kind.String())
	if e.Kind == TraceHWAbort || e.Kind == TraceSWAbort {
		buf = append(buf, `,"reason":`...)
		buf = strconv.AppendQuote(buf, e.Reason.String())
	}
	if e.HasAddr() {
		buf = append(buf, `,"addr":`...)
		buf = strconv.AppendQuote(buf, "0x"+strconv.FormatUint(e.Addr, 16))
	}
	if e.HasAge() {
		buf = append(buf, `,"age":`...)
		buf = strconv.AppendUint(buf, e.Age, 10)
	}
	if e.HasPath() {
		buf = append(buf, `,"path":`...)
		buf = strconv.AppendQuote(buf, TxPath(e.Age).String())
	}
	buf = append(buf, '}', '\n')
	_, s.err = s.w.Write(buf)
}

// Close implements TraceSink.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// --- Chrome trace_event sink ---

// chromeOpen tracks an in-flight transaction attempt on one simulated
// processor.
type chromeOpen struct {
	begin uint64
	age   uint64
	hw    bool
}

// chromeTx tracks an in-flight logical transaction (tx-begin → tx-commit)
// on one simulated processor: its start cycle, how many attempts it has
// made, and the abort reasons it accumulated along the way.
type chromeTx struct {
	begin    uint64
	attempts uint64
	aborts   [NumAbortReasons]uint64
}

// args renders the tx span's args object (attempt count, committing
// path, and per-reason abort counts in declaration order).
func (t *chromeTx) args(path string) string {
	args := fmt.Sprintf(`"path":%q,"attempts":%d`, path, t.attempts)
	aborts := ""
	for r := 1; r < NumAbortReasons; r++ {
		if t.aborts[r] == 0 {
			continue
		}
		if aborts != "" {
			aborts += ","
		}
		aborts += fmt.Sprintf(`%q:%d`, AbortReason(r).String(), t.aborts[r])
	}
	if aborts != "" {
		args += fmt.Sprintf(`,"aborts":{%s}`, aborts)
	}
	return args
}

// ChromeSink writes the Chrome trace_event JSON format (loadable in
// Perfetto / about://tracing), with one track ("thread") per simulated
// processor under a single "tmsim machine" process:
//
//   - HW and SW transaction lifetimes become complete ("X") duration
//     events named "hw-tx" / "sw-tx", spanning begin → commit/abort, with
//     the age, outcome, abort reason, and conflict address in args;
//   - tx-begin/tx-commit pairs (the Proc.TxLife* lifecycle hooks) become
//     enclosing per-transaction "tx" spans — begin through every aborted
//     attempt to the final commit — with the committing path, the attempt
//     count, and per-reason abort counts in args; and
//   - ufo-set, ufo-fault, nack, block, and wake become thread-scoped
//     instant ("i") events.
//
// Timestamps are simulated cycles written as microseconds (1 cycle =
// 1 µs), so Perfetto's time axis reads directly in cycles. Commits or
// aborts whose begin was evicted from a bounded ring are emitted as
// instant events rather than dropped.
type ChromeSink struct {
	w     *bufio.Writer
	err   error
	wrote bool // at least one event emitted
	open  map[int]chromeOpen
	tx    map[int]*chromeTx
	named map[int]bool
}

// NewChromeSink returns a Chrome trace_event sink over w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{
		w:     bufio.NewWriter(w),
		open:  make(map[int]chromeOpen),
		tx:    make(map[int]*chromeTx),
		named: make(map[int]bool),
	}
}

// emit writes one trace_event object, handling the array framing.
func (s *ChromeSink) emit(body string) {
	if s.err != nil {
		return
	}
	if !s.wrote {
		if _, s.err = s.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); s.err != nil {
			return
		}
		s.wrote = true
	} else {
		if _, s.err = s.w.WriteString(",\n"); s.err != nil {
			return
		}
	}
	_, s.err = s.w.WriteString(body)
}

// nameTrack emits the per-processor metadata events once per track.
func (s *ChromeSink) nameTrack(proc int) {
	if s.named[proc] {
		return
	}
	s.named[proc] = true
	if len(s.named) == 1 {
		s.emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"tmsim machine"}}`)
	}
	s.emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"proc %d"}}`, proc, proc))
	s.emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`, proc, proc))
}

// txArgs renders the args object for a completed transaction span.
func txArgs(e TraceEvent, open chromeOpen, outcome string) string {
	args := fmt.Sprintf(`"age":%d,"outcome":%q`, open.age, outcome)
	if outcome == "abort" {
		args += fmt.Sprintf(`,"reason":%q`, e.Reason.String())
		if e.HasAddr() {
			args += fmt.Sprintf(`,"addr":"0x%x"`, e.Addr)
		}
	}
	return args
}

// Event implements TraceSink.
func (s *ChromeSink) Event(e TraceEvent) {
	s.nameTrack(e.Proc)
	switch e.Kind {
	case TraceHWBegin, TraceSWBegin:
		// A begin while a transaction is open means the previous span's
		// end was lost (ring eviction); close it at this cycle.
		if prev, ok := s.open[e.Proc]; ok {
			s.closeSpan(e.Proc, prev, e.Cycle, `"outcome":"truncated"`)
		}
		s.open[e.Proc] = chromeOpen{begin: e.Cycle, age: e.Age, hw: e.Kind == TraceHWBegin}
		if tx, ok := s.tx[e.Proc]; ok {
			tx.attempts++
		}
	case TraceHWCommit, TraceSWCommit, TraceHWAbort, TraceSWAbort:
		outcome := "commit"
		if e.Kind == TraceHWAbort || e.Kind == TraceSWAbort {
			outcome = "abort"
			if tx, ok := s.tx[e.Proc]; ok && int(e.Reason) < NumAbortReasons {
				tx.aborts[e.Reason]++
			}
		}
		open, ok := s.open[e.Proc]
		if !ok {
			// Begin evicted from the ring: keep the event as an instant.
			s.instant(e)
			return
		}
		delete(s.open, e.Proc)
		s.closeSpan(e.Proc, open, e.Cycle, txArgs(e, open, outcome))
	case TraceTxBegin:
		// A tx-begin while a tx span is open means its commit was lost
		// (ring eviction); close it at this cycle.
		if prev, ok := s.tx[e.Proc]; ok {
			s.closeTx(e.Proc, prev, e.Cycle, "truncated")
		}
		s.tx[e.Proc] = &chromeTx{begin: e.Cycle}
	case TraceTxCommit:
		tx, ok := s.tx[e.Proc]
		if !ok {
			// tx-begin evicted from the ring: keep the event as an instant.
			s.instant(e)
			return
		}
		delete(s.tx, e.Proc)
		s.closeTx(e.Proc, tx, e.Cycle, TxPath(e.Age).String())
	default:
		s.instant(e)
	}
}

// closeTx emits the enclosing per-transaction ("tx") span.
func (s *ChromeSink) closeTx(proc int, tx *chromeTx, end uint64, path string) {
	s.emit(fmt.Sprintf(`{"name":"tx","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":{%s}}`,
		proc, tx.begin, end-tx.begin, tx.args(path)))
}

// closeSpan emits a complete ("X") event for a transaction span.
func (s *ChromeSink) closeSpan(proc int, open chromeOpen, end uint64, args string) {
	name := "hw-tx"
	if !open.hw {
		name = "sw-tx"
	}
	s.emit(fmt.Sprintf(`{"name":%q,"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":{%s}}`,
		name, proc, open.begin, end-open.begin, args))
}

// instant emits a thread-scoped instant ("i") event.
func (s *ChromeSink) instant(e TraceEvent) {
	args := ""
	if e.Kind == TraceHWAbort || e.Kind == TraceSWAbort {
		args = fmt.Sprintf(`"reason":%q`, e.Reason.String())
	}
	if e.HasAddr() {
		if args != "" {
			args += ","
		}
		args += fmt.Sprintf(`"addr":"0x%x"`, e.Addr)
	}
	if e.HasAge() {
		if args != "" {
			args += ","
		}
		args += fmt.Sprintf(`"age":%d`, e.Age)
	}
	s.emit(fmt.Sprintf(`{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d,"args":{%s}}`,
		e.Kind.String(), e.Proc, e.Cycle, args))
}

// Close implements TraceSink: still-open transaction spans are flushed as
// truncated (the run ended mid-transaction), the array is closed, and the
// writer flushed.
func (s *ChromeSink) Close() error {
	procs := make([]int, 0, len(s.open))
	for p := range s.open {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		open := s.open[p]
		s.closeSpan(p, open, open.begin, `"outcome":"truncated"`)
	}
	procs = procs[:0]
	for p := range s.tx {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		s.closeTx(p, s.tx[p], s.tx[p].begin, "truncated")
	}
	if s.err == nil {
		if !s.wrote {
			_, s.err = s.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
		}
		if s.err == nil {
			_, s.err = s.w.WriteString("\n]}\n")
		}
	}
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}
