package machine

import (
	"testing"

	"repro/internal/mem"
)

// testParams returns a small, fast configuration.
func testParams(procs int) Params {
	p := DefaultParams(procs)
	p.MemBytes = 1 << 20
	p.Quantum = 0 // most tests don't want timer interrupts
	return p
}

// run1 runs a single-processor workload.
func run1(t *testing.T, params Params, body func(*Proc)) *Machine {
	t.Helper()
	m := New(params)
	m.Run([]func(*Proc){body})
	return m
}

// victimTx runs a one-access hardware transaction followed by a long
// compute window, returning the first non-OK outcome. Asynchronous kills
// can surface at any transactional operation, so callers cannot assume
// the abort arrives exactly at commit.
func victimTx(p *Proc, write bool) Outcome {
	p.BeginHW(p.Machine().NextAge(), true)
	var out Outcome
	if write {
		out = p.TxWrite(0, 9)
	} else {
		_, out = p.TxRead(0)
	}
	p.Elapse(1000)
	if p.HW() != nil {
		c := p.CommitHW()
		if out.Kind == OK {
			out = c
		}
	}
	return out
}

func TestNTReadWriteRoundTrip(t *testing.T) {
	run1(t, testParams(1), func(p *Proc) {
		if out := p.NTWrite(64, 7); out.Kind != OK {
			t.Fatalf("write outcome %v", out)
		}
		v, out := p.NTRead(64)
		if out.Kind != OK || v != 7 {
			t.Fatalf("read = %d/%v, want 7/ok", v, out)
		}
	})
}

func TestTimingColdThenHot(t *testing.T) {
	params := testParams(1)
	m := New(params)
	var cold, hot uint64
	m.Run([]func(*Proc){func(p *Proc) {
		start := p.Now()
		p.NTRead(0)
		cold = p.Now() - start
		start = p.Now()
		p.NTRead(8) // same line: must be an L1 hit
		hot = p.Now() - start
	}})
	if cold != params.L1HitCycles+params.MemCycles {
		t.Fatalf("cold access cost %d, want %d", cold, params.L1HitCycles+params.MemCycles)
	}
	if hot != params.L1HitCycles {
		t.Fatalf("hot access cost %d, want %d", hot, params.L1HitCycles)
	}
}

func TestHWTxCommitPublishesWrites(t *testing.T) {
	m := run1(t, testParams(1), func(p *Proc) {
		p.Machine().Mem.Write64(128, 1)
		p.BeginHW(p.Machine().NextAge(), true)
		if out := p.TxWrite(128, 42); out.Kind != OK {
			t.Fatalf("TxWrite: %v", out)
		}
		// Speculative value visible to the transaction itself...
		if v, _ := p.TxRead(128); v != 42 {
			t.Fatalf("own spec read = %d", v)
		}
		// ...but not committed yet.
		if p.Machine().Mem.Read64(128) != 1 {
			t.Fatal("speculative store leaked to memory")
		}
		if out := p.CommitHW(); out.Kind != OK {
			t.Fatalf("commit: %v", out)
		}
	})
	if m.Mem.Read64(128) != 42 {
		t.Fatal("commit did not publish the store")
	}
	if m.Count.HWCommits != 1 {
		t.Fatalf("HWCommits = %d", m.Count.HWCommits)
	}
}

func TestHWTxAbortDiscardsWrites(t *testing.T) {
	m := run1(t, testParams(1), func(p *Proc) {
		p.Machine().Mem.Write64(128, 1)
		p.BeginHW(p.Machine().NextAge(), true)
		p.TxWrite(128, 42)
		p.AbortHW(AbortExplicit)
	})
	if m.Mem.Read64(128) != 1 {
		t.Fatal("aborted store reached memory")
	}
	if m.Count.HWAbortsByReason[AbortExplicit] != 1 {
		t.Fatal("explicit abort not counted")
	}
}

func TestOverflowAbort(t *testing.T) {
	params := testParams(1)
	params.L1Bytes = 4 * 64 // 4 lines
	params.L1Ways = 1       // direct-mapped: lines 0 and 4 collide
	m := run1(t, testParams(1), func(p *Proc) {})
	_ = m
	m2 := New(params)
	var got Outcome
	m2.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(p.Machine().NextAge(), true)
		if out := p.TxWrite(0, 1); out.Kind != OK {
			t.Fatalf("first write: %v", out)
		}
		got = p.TxWrite(4*64, 2) // maps to the same set, evicts line 0
	}})
	if got.Kind != HWAborted || got.Reason != AbortOverflow {
		t.Fatalf("outcome = %+v, want overflow abort", got)
	}
	if m2.Count.HWAbortsByReason[AbortOverflow] != 1 {
		t.Fatal("overflow not counted")
	}
}

func TestUnboundedTxSurvivesEviction(t *testing.T) {
	params := testParams(1)
	params.L1Bytes = 4 * 64
	params.L1Ways = 1
	m := New(params)
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(p.Machine().NextAge(), false) // unbounded
		p.TxWrite(0, 1)
		if out := p.TxWrite(4*64, 2); out.Kind != OK {
			t.Fatalf("eviction aborted unbounded tx: %v", out)
		}
		if out := p.CommitHW(); out.Kind != OK {
			t.Fatalf("commit: %v", out)
		}
	}})
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(4*64) != 2 {
		t.Fatal("unbounded commit lost writes")
	}
}

func TestConflictYoungerRequesterNacked(t *testing.T) {
	m := New(testParams(2))
	var out Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.BeginHW(p.Machine().NextAge(), true) // older (age 1)
			p.TxWrite(0, 1)
			p.Elapse(1000) // stay in flight while proc 1 runs
			p.CommitHW()
		},
		func(p *Proc) {
			p.Elapse(200)                          // let proc 0 write first
			p.BeginHW(p.Machine().NextAge(), true) // younger (age 2)
			_, out = p.TxRead(0)
			if p.HW() != nil {
				p.AbortHW(AbortExplicit)
			}
		},
	})
	if out.Kind != Nacked {
		t.Fatalf("younger requester outcome = %+v, want NACK", out)
	}
	if m.Count.Nacks != 1 {
		t.Fatalf("Nacks = %d", m.Count.Nacks)
	}
}

func TestConflictOlderRequesterAbortsOwner(t *testing.T) {
	m := New(testParams(2))
	var readerOut, victimOut Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			age := p.Machine().NextAge() // age 1: older
			p.Elapse(300)                // but begins execution later
			p.BeginHW(age, true)
			_, readerOut = p.TxRead(0)
			p.CommitHW()
		},
		func(p *Proc) {
			p.BeginHW(p.Machine().NextAge(), true) // age 2: younger
			victimOut = p.TxWrite(0, 9)
			p.Elapse(1000)
			if p.HW() != nil {
				out := p.CommitHW()
				if victimOut.Kind == OK {
					victimOut = out
				}
			}
		},
	})
	if readerOut.Kind != OK {
		t.Fatalf("older requester outcome = %+v, want OK", readerOut)
	}
	if victimOut.Kind != HWAborted || victimOut.Reason != AbortConflict {
		t.Fatalf("victim outcome = %+v, want conflict abort", victimOut)
	}
}

func TestRequesterWinsPolicy(t *testing.T) {
	params := testParams(2)
	params.HWPolicy = RequesterWins
	m := New(params)
	var out Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.BeginHW(p.Machine().NextAge(), true) // older owner
			p.TxWrite(0, 1)
			p.Elapse(1000)
			if p.HW() != nil {
				p.CommitHW()
			}
		},
		func(p *Proc) {
			p.Elapse(200)
			p.BeginHW(p.Machine().NextAge(), true) // younger requester
			_, out = p.TxRead(0)                   // requester-wins: no NACK
			p.CommitHW()
		},
	})
	if out.Kind != OK {
		t.Fatalf("requester-wins outcome = %+v, want OK", out)
	}
	if m.Count.HWAbortsByReason[AbortConflict] != 1 {
		t.Fatal("owner was not aborted")
	}
}

func TestNonTAccessAbortsHWTx(t *testing.T) {
	m := New(testParams(2))
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			victim = victimTx(p, false)
		},
		func(p *Proc) {
			p.Elapse(100)
			p.NTWrite(0, 5) // non-transactional conflicting write
		},
	})
	if victim.Kind != HWAborted || victim.Reason != AbortNonTConflict {
		t.Fatalf("victim = %+v, want nonT-conflict abort", victim)
	}
	if m.Mem.Read64(0) != 5 {
		t.Fatal("nonT write lost")
	}
}

func TestSetUFOKillsHWSharers(t *testing.T) {
	m := New(testParams(2))
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			victim = victimTx(p, false)
		},
		func(p *Proc) {
			p.Elapse(100)
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite) // STM read barrier on same line
		},
	})
	if victim.Kind != HWAborted || victim.Reason != AbortUFOKill {
		t.Fatalf("victim = %+v, want ufo-kill", victim)
	}
	if m.Count.UFOKillsFalse != 1 {
		t.Fatalf("UFOKillsFalse = %d, want 1 (reader killed by fault-on-write set)", m.Count.UFOKillsFalse)
	}
}

func TestTrueConflictLimitStudySparesFalseKills(t *testing.T) {
	params := testParams(2)
	params.TrueConflictUFOKills = true
	m := New(params)
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			victim = victimTx(p, false)
		},
		func(p *Proc) {
			p.Elapse(100)
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite) // reader vs fault-on-write: false conflict
		},
	})
	if victim.Kind != OK {
		t.Fatalf("victim = %+v, want survival under limit study", victim)
	}
	if m.Count.UFOKillsFalse != 1 {
		t.Fatal("false kill not classified")
	}
}

func TestUFOFaultBlocksAccess(t *testing.T) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.SetUFOEnabled(false)
		p.SetUFO(0, mem.UFOFaultAll)
		p.NTWrite(0, 3) // UFO disabled: proceeds
		p.SetUFOEnabled(true)
		v, out := p.NTRead(0)
		if out.Kind != UFOFault || out.Addr != 0 {
			t.Fatalf("read outcome = %+v, want UFO fault at 0", out)
		}
		if v != 0 {
			t.Fatal("faulting read returned data")
		}
		if out := p.NTWrite(0, 9); out.Kind != UFOFault {
			t.Fatalf("write outcome = %+v, want UFO fault", out)
		}
	}})
	if m.Mem.Read64(0) != 3 {
		t.Fatal("faulting write modified memory")
	}
	if m.Count.UFOFaults != 2 {
		t.Fatalf("UFOFaults = %d, want 2", m.Count.UFOFaults)
	}
}

func TestHWTxUFOFaultOutcome(t *testing.T) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.SetUFOEnabled(false)
		p.SetUFO(64, mem.UFOFaultOnWrite)
		p.SetUFOEnabled(true)
		p.BeginHW(p.Machine().NextAge(), true)
		// Reads of fault-on-write lines are allowed (shared read with STM).
		if _, out := p.TxRead(64); out.Kind != OK {
			t.Fatalf("read of FoW line: %v", out)
		}
		if out := p.TxWrite(64, 1); out.Kind != UFOFault {
			t.Fatalf("write of FoW line: %v, want UFO fault", out)
		}
		p.AbortHW(AbortUFOFault)
	}})
	if m.Count.HWAbortsByReason[AbortUFOFault] != 1 {
		t.Fatal("ufo-fault abort not counted")
	}
}

func TestTimerInterruptAbortsTx(t *testing.T) {
	params := testParams(1)
	params.Quantum = 500
	m := New(params)
	var out Outcome
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(p.Machine().NextAge(), true)
		p.TxWrite(0, 1)
		p.Elapse(600) // crosses the quantum
		out = p.CommitHW()
	}})
	if out.Kind != HWAborted || out.Reason != AbortInterrupt {
		t.Fatalf("outcome = %+v, want interrupt abort", out)
	}
}

func TestReadUFOAndAddUFO(t *testing.T) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.SetUFOEnabled(false)
		p.AddUFO(0, mem.UFOFaultOnRead)
		p.AddUFO(0, mem.UFOFaultOnWrite)
		if got := p.ReadUFO(0); got != mem.UFOFaultAll {
			t.Fatalf("ReadUFO = %v", got)
		}
	}})
	_ = m
}

func TestNextAgeMonotonic(t *testing.T) {
	m := New(testParams(1))
	a, b, c := m.NextAge(), m.NextAge(), m.NextAge()
	if !(a < b && b < c) {
		t.Fatalf("ages not monotonic: %d %d %d", a, b, c)
	}
}

func TestSTMAgeClassification(t *testing.T) {
	m := New(testParams(2))
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.Elapse(100)
			victimTx(p, false) // younger HW tx (age 2)
		},
		func(p *Proc) {
			age := p.Machine().NextAge() // age 1: STM tx is older
			p.SetSTM(true, age)
			p.SetUFOEnabled(false)
			p.Elapse(300)
			p.SetUFO(0, mem.UFOFaultAll) // STM write barrier kills the HW reader
			p.SetSTM(false, 0)
		},
	})
	if m.Count.ConflictSTMOlder != 1 {
		t.Fatalf("ConflictSTMOlder = %d, want 1", m.Count.ConflictSTMOlder)
	}
	if m.Count.UFOKillsTrue != 1 {
		t.Fatalf("UFOKillsTrue = %d, want 1", m.Count.UFOKillsTrue)
	}
}

func TestNonTAccessInsideHWTxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(p.Machine().NextAge(), true)
		p.NTRead(0)
	}})
}

func TestAbortReasonStrings(t *testing.T) {
	if AbortOverflow.String() != "overflow" || AbortNone.String() != "none" {
		t.Fatal("abort reason names wrong")
	}
	if AbortReason(200).String() == "" {
		t.Fatal("out-of-range reason must still format")
	}
	if OK.String() != "ok" || Nacked.String() != "nacked" {
		t.Fatal("outcome kind names wrong")
	}
}

func TestTxFootprint(t *testing.T) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(p.Machine().NextAge(), true)
		p.TxRead(0)
		p.TxRead(64)
		p.TxWrite(64, 1) // same line as a read: counted once
		p.TxWrite(128, 2)
		if got := p.HW().Footprint(); got != 3 {
			t.Fatalf("footprint = %d, want 3", got)
		}
		p.CommitHW()
	}})
	_ = m
}

func TestCacheTransferCostBetweenProcs(t *testing.T) {
	params := testParams(2)
	m := New(params)
	var cost uint64
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.NTWrite(0, 1)
			p.Elapse(10)
		},
		func(p *Proc) {
			p.Elapse(1000) // wait until proc 0 holds the line
			start := p.Now()
			p.NTRead(0)
			cost = p.Now() - start
		},
	})
	want := params.L1HitCycles + params.TransferCycles
	if cost != want {
		t.Fatalf("cache-to-cache read cost %d, want %d", cost, want)
	}
}

func TestOwnerStateUFOSparesReaders(t *testing.T) {
	params := testParams(2)
	params.OwnerStateUFO = true
	m := New(params)
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			victim = victimTx(p, false) // reader of line 0
		},
		func(p *Proc) {
			p.Elapse(100)
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite) // STM read barrier: FoW only
		},
	})
	if victim.Kind != OK {
		t.Fatalf("victim = %+v: owner-state install must spare readers", victim)
	}
	if m.Count.UFOKillsFalse != 1 {
		t.Fatal("false conflict not classified")
	}
}

func TestOwnerStateUFOStillKillsWriters(t *testing.T) {
	params := testParams(2)
	params.OwnerStateUFO = true
	m := New(params)
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			victim = victimTx(p, true) // writer of line 0
		},
		func(p *Proc) {
			p.Elapse(100)
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite)
		},
	})
	if victim.Kind != HWAborted || victim.Reason != AbortUFOKill {
		t.Fatalf("victim = %+v: a writer is a true conflict even under owner-state install", victim)
	}
}

func TestLazyUFOClearSparesReaders(t *testing.T) {
	params := testParams(2)
	params.LazyUFOClear = true
	m := New(params)
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.Elapse(500) // start after the bits exist
			victim = victimTx(p, false)
		},
		func(p *Proc) {
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite)
			p.Elapse(1000)
			p.SetUFO(0, mem.UFONone) // downgrade: lazy, kills nobody
		},
	})
	if victim.Kind != OK {
		t.Fatalf("victim = %+v: lazy clear must not kill readers", victim)
	}
	if m.Mem.UFO(0) != mem.UFONone {
		t.Fatal("clear not applied")
	}
}

func TestEagerClearKillsReaders(t *testing.T) {
	// The default (eager) clear is the false-conflict source the paper's
	// lazy-clearing mitigation addresses.
	m := New(testParams(2))
	var victim Outcome
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.Elapse(500)
			victim = victimTx(p, false)
		},
		func(p *Proc) {
			p.SetUFOEnabled(false)
			p.SetUFO(0, mem.UFOFaultOnWrite)
			p.Elapse(1000)
			p.SetUFO(0, mem.UFONone)
		},
	})
	if victim.Kind != HWAborted || victim.Reason != AbortUFOKill {
		t.Fatalf("victim = %+v: eager clear should kill the reader", victim)
	}
}

func TestFootprintHistogram(t *testing.T) {
	m := New(testParams(1))
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(m.NextAge(), true)
		p.TxWrite(0, 1)
		p.TxWrite(64, 2)
		p.TxRead(128)
		p.CommitHW() // footprint 3
		p.BeginHW(m.NextAge(), true)
		p.CommitHW() // footprint 0
	}})
	h := &m.Count.HWFootprint
	if h.Count != 2 || h.Max != 3 || h.Sum != 3 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 1.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if got := h.FracAtMost(4); got != 1.0 {
		t.Fatalf("FracAtMost(4) = %v", got)
	}
	if got := h.FracAtMost(0); got != 0.5 {
		t.Fatalf("FracAtMost(0) = %v (only the empty tx)", got)
	}
	if h.String() == "(empty)" {
		t.Fatal("String empty")
	}
	var empty Hist
	if empty.String() != "(empty)" || empty.Mean() != 0 || empty.FracAtMost(1) != 0 {
		t.Fatal("empty hist misbehaves")
	}
}

func TestElapseUntil(t *testing.T) {
	// Forward target: the clock advances exactly to the target. Past or
	// current target: no-op. Interleaving: two processors pinned to
	// alternating slot times land their writes in slot order regardless
	// of program structure.
	run1(t, testParams(1), func(p *Proc) {
		p.ElapseUntil(500)
		if p.Now() != 500 {
			t.Fatalf("clock = %d, want 500", p.Now())
		}
		p.ElapseUntil(500)
		p.ElapseUntil(100)
		if p.Now() != 500 {
			t.Fatalf("clock moved on stale target: %d", p.Now())
		}
	})

	m := New(testParams(2))
	order := make([]int, 0, 4)
	mk := func(id int, slots ...uint64) func(*Proc) {
		return func(p *Proc) {
			for _, s := range slots {
				p.ElapseUntil(s)
				order = append(order, id)
			}
		}
	}
	// Proc 0 owns slots 0 and 2000, proc 1 slots 1000 and 3000.
	m.Run([]func(*Proc){mk(0, 0, 2000), mk(1, 1000, 3000)})
	want := []int{0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("slot order = %v, want %v", order, want)
		}
	}
}
