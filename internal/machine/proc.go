package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// HWTx is the architectural state of an in-flight hardware transaction:
// the speculative read/write line-sets (the SR/SW bits of the paper,
// hoisted out of the cache array so the unbounded HTM can share the
// implementation) and the speculative store buffer that stands in for
// speculatively-dirty cache lines.
type HWTx struct {
	Age      uint64
	Bounded  bool // true for BTM (L1-limited), false for the unbounded HTM
	ReadSet  map[uint64]struct{}
	WriteSet map[uint64]struct{}
	Spec     map[uint64]uint64 // speculative word values, by address

	pendingAbort AbortReason
	abortAddr    uint64
	abortHasAddr bool
}

// Footprint returns the number of distinct lines read or written.
func (t *HWTx) Footprint() int {
	n := len(t.WriteSet)
	for l := range t.ReadSet {
		if _, w := t.WriteSet[l]; !w {
			n++
		}
	}
	return n
}

// Proc is one simulated processor plus its private L1 and transactional
// state. All methods must be called from the processor's own workload
// goroutine, except where noted. Every method that touches shared
// machine state brackets itself in an ordered section (BeginOrdered), so
// it executes at this processor's (cycle, id) slot of the deterministic
// schedule under all schedulers; methods documented as proc-local skip
// the bracket.
type Proc struct {
	m   *Machine
	sp  *sim.Proc
	l1  *cache.L1
	ufo bool // UFO faults enabled for the current thread

	hw    *HWTx // in-flight hardware transaction, or nil
	hwBuf *HWTx // pooled transaction state reused across BeginHW calls

	// Software-transaction identity, published by the STM layer so the
	// machine can classify STM-vs-HTM conflicts (Section 5.4's ">99%
	// STM-older" measurement).
	stmAge uint64
	inSTM  bool
	rng    *sim.Rand
}

// ID returns the processor number (immutable, proc-local).
func (p *Proc) ID() int { return p.sp.ID() }

// Machine returns the owning machine (immutable, proc-local). Shared
// fields reached through it (Mem, Count, Rand, NextAge) must only be
// touched from inside an ordered section under the parallel scheduler.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's local clock (proc-local; no ordered
// section needed).
func (p *Proc) Now() uint64 { return p.sp.Now() }

// Elapse charges pure-compute cycles. It is the scheduling point: the
// deterministic (cycle, id) order is defined over the clock values
// Elapse publishes. Pure compute between Elapse calls is what the
// parallel scheduler overlaps across host cores.
func (p *Proc) Elapse(c uint64) { p.sp.Elapse(c) }

// ElapseUntil advances the processor's local clock to at least cycle,
// yielding to the engine exactly like Elapse. It is the schedule-replay
// hook: the litmus executor pins every program operation to an absolute
// slot time, so one enumerated interleaving replays identically under
// both the reference and the run-ahead scheduler. A target at or before
// the current clock is a no-op — a re-executed (aborted) transaction
// body runs its remaining operations back to back.
func (p *Proc) ElapseUntil(cycle uint64) {
	if now := p.sp.Now(); cycle > now {
		p.sp.Elapse(cycle - now)
	}
}

// Block deschedules the processor until another wakes it; the engine
// orders the block at this processor's (cycle, id) schedule slot.
func (p *Proc) Block() { p.sp.Block() }

// Wake readies a blocked processor (callable from any running
// processor); the engine orders the wake deterministically at the
// waker's schedule slot.
func (p *Proc) Wake(q *Proc) { p.sp.Wake(q.sp) }

// SetNote attaches a diagnostic label shown in engine dumps (proc-local;
// never affects the schedule).
func (p *Proc) SetNote(format string, args ...any) { p.sp.SetNote(format, args...) }

// BeginOrdered opens an ordered section for the line containing addr:
// under the parallel scheduler (Params.ParallelScheduler) the call
// returns only when this processor is the global (cycle, id) minimum, so
// everything until the matching EndOrdered executes in exactly the
// serial schedulers' step order. Under the serial schedulers it is a
// no-op. Sections nest; every machine operation that touches shared
// simulated state already brackets itself, so layers above only need
// their own brackets around multi-operation critical sections that read
// or write shared host-side state (ownership tables, lock tables,
// statistics).
func (p *Proc) BeginOrdered(addr uint64) { p.sp.EnterOrdered(mem.LineOf(addr)) }

// EndOrdered closes the most recent BeginOrdered section.
func (p *Proc) EndOrdered() { p.sp.ExitOrdered() }

// Rand returns a per-processor deterministic random stream, seeded from
// Params.Seed and the processor ID. It is proc-local: drawing from it
// needs no ordered section (unlike the machine-wide Machine.Rand).
func (p *Proc) Rand() *sim.Rand {
	if p.rng == nil {
		p.rng = sim.NewRand(p.m.Seed*2654435761 + uint64(p.ID()) + 1)
	}
	return p.rng
}

// L1 exposes the occupancy model (for tests and statistics). The L1 is
// proc-local state; mid-run mutation happens only through this
// processor's own ordered operations.
func (p *Proc) L1() *cache.L1 { return p.l1 }

// --- UFO thread state (Table 2: enable_ufo / disable_ufo) ---

// SetUFOEnabled turns UFO faulting on or off for this thread. The flag
// is proc-local (only this processor's accesses consult it), so no
// ordered section is needed.
func (p *Proc) SetUFOEnabled(on bool) { p.ufo = on }

// UFOEnabled reports whether UFO faults are delivered to this thread
// (proc-local read).
func (p *Proc) UFOEnabled() bool { return p.ufo }

// SetSTM publishes that this processor is (or is no longer) executing a
// software transaction of the given age. Other processors read this
// state when classifying conflicts, so the update is an ordered section.
func (p *Proc) SetSTM(active bool, age uint64) {
	p.sp.EnterOrdered(0)
	p.inSTM = active
	p.stmAge = age
	p.sp.ExitOrdered()
}

// InSTM reports whether a software transaction is active on this
// processor. Reading one's own flag is proc-local; the cross-processor
// readers are the machine's conflict classifiers, which run inside
// ordered sections.
func (p *Proc) InSTM() bool { return p.inSTM }

// --- Hardware transactions ---

// HW returns the in-flight hardware transaction, or nil (proc-local
// read of this processor's own transaction slot).
func (p *Proc) HW() *HWTx { return p.hw }

// BeginHW starts a hardware transaction with the given age. bounded
// selects BTM semantics (L1-capacity-limited) versus the idealized
// unbounded HTM. Nesting is the caller's concern (BTM flattens).
// Self-bracketed in an ordered section; note that an age drawn from
// Machine.NextAge must itself be drawn inside an enclosing ordered
// section (the TM systems' Atomic wrappers arrange this).
func (p *Proc) BeginHW(age uint64, bounded bool) {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	if p.hw != nil {
		panic("machine: BeginHW with transaction already active")
	}
	// Transactions are frequent and short; reuse one HWTx (and its maps,
	// which keep their buckets across clears) per processor instead of
	// allocating fresh state on every begin.
	t := p.hwBuf
	if t == nil {
		t = &HWTx{
			ReadSet:  make(map[uint64]struct{}),
			WriteSet: make(map[uint64]struct{}),
			Spec:     make(map[uint64]uint64),
		}
		p.hwBuf = t
	}
	t.Age, t.Bounded = age, bounded
	t.pendingAbort, t.abortAddr, t.abortHasAddr = AbortNone, 0, false
	clear(t.ReadSet)
	clear(t.WriteSet)
	clear(t.Spec)
	p.hw = t
	p.record(TraceHWBegin, AbortNone, 0, age, FlagAge)
}

// CommitHW atomically publishes the transaction's speculative writes and
// ends it. If an abort was already pending the transaction is aborted
// instead and the outcome says so. Self-bracketed in an ordered section,
// so the publish is atomic at this processor's schedule slot.
func (p *Proc) CommitHW() Outcome {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	t := p.hw
	if t == nil {
		panic("machine: CommitHW with no transaction")
	}
	if t.pendingAbort != AbortNone {
		return p.consumeAbort()
	}
	for addr, val := range t.Spec {
		p.m.Mem.Write64(addr, val)
	}
	p.m.Count.HWCommits++
	p.m.Count.HWFootprint.Add(t.Footprint())
	if p.m.rec != nil {
		p.m.rec.RecordCommit(p.ID(), true, p.Now())
	}
	p.record(TraceHWCommit, AbortNone, 0, t.Age, FlagAge)
	p.hw = nil
	return okOutcome
}

// AbortHW aborts the in-flight transaction for a self-inflicted reason
// (explicit abort, syscall, I/O, exception marker). Speculative state is
// discarded; the caller unwinds. Self-bracketed in an ordered section.
func (p *Proc) AbortHW(reason AbortReason) {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	t := p.hw
	if t == nil {
		panic("machine: AbortHW with no transaction")
	}
	p.killHW(p, reason, 0, false)
	p.consumeAbort()
}

// AbortHWAttributed aborts the in-flight transaction like AbortHW, but
// attributes the who-aborted-whom edge to another processor and a
// conflicting line. Hybrid TMs use it when a software barrier detects a
// conflict on behalf of a software transaction running elsewhere (HyTM's
// otable check, PhTM's phase counter, SLE's held lock word): the abort is
// architecturally self-inflicted, but the contention belongs to the peer.
// aggressor -1 falls back to self-attribution. Self-bracketed in an
// ordered section on the conflicting line.
func (p *Proc) AbortHWAttributed(reason AbortReason, aggressor int, addr uint64) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	if p.hw == nil {
		panic("machine: AbortHWAttributed with no transaction")
	}
	p.killHWFrom(aggressor, p, reason, addr, true)
	p.consumeAbort()
}

// RecordSWKill notes with the conflict recorder (no-op when detached)
// that p's software transaction killed victim's software transaction over
// the line containing addr. The STM layers call this from their kill
// paths; the machine itself only sees SW conflicts indirectly.
// Self-bracketed in an ordered section so recorder events arrive in
// deterministic schedule order.
func (p *Proc) RecordSWKill(victim *Proc, reason AbortReason, addr uint64, hasAddr bool) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	if p.m.rec != nil {
		p.m.rec.RecordEdge(ConflictEdge{
			Aggressor: p.ID(), Victim: victim.ID(),
			Addr: addr, HasAddr: hasAddr, SW: true,
			Reason: reason, Cycle: p.Now(),
		})
	}
	if p.m.txrec != nil {
		p.m.txrec.TxConflict(victim.ID(), p.ID())
	}
}

// RecordSWAbortBy notes that p's own software transaction aborted because
// of aggressor (-1 when unknown, e.g. a TL2 stripe whose last writer has
// long released it). Used by STMs whose victims detect conflicts
// themselves rather than being killed. Self-bracketed in an ordered
// section so recorder events arrive in deterministic schedule order.
func (p *Proc) RecordSWAbortBy(aggressor int, reason AbortReason, addr uint64, hasAddr bool) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	if p.m.rec != nil {
		p.m.rec.RecordEdge(ConflictEdge{
			Aggressor: aggressor, Victim: p.ID(),
			Addr: addr, HasAddr: hasAddr, SW: true,
			Reason: reason, Cycle: p.Now(),
		})
	}
	if p.m.txrec != nil {
		p.m.txrec.TxConflict(p.ID(), aggressor)
	}
}

// RecordSWCommit notes a committed software transaction with the conflict
// recorder (no-op when detached). Self-bracketed in an ordered section.
func (p *Proc) RecordSWCommit() {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	if p.m.rec != nil {
		p.m.rec.RecordCommit(p.ID(), false, p.Now())
	}
}

// consumeAbort retires a pending abort: it records statistics, clears the
// transaction, and returns the HWAborted outcome.
func (p *Proc) consumeAbort() Outcome {
	t := p.hw
	reason, addr := t.pendingAbort, t.abortAddr
	p.m.Count.HWAbortsByReason[reason]++
	flags := FlagAge
	if t.abortHasAddr {
		flags |= FlagAddr
	}
	p.record(TraceHWAbort, reason, addr, t.Age, flags)
	p.hw = nil
	return Outcome{Kind: HWAborted, Reason: reason, Addr: addr}
}

// killHW flash-clears victim's transactional state and records the abort
// reason for delivery at the victim's next transactional operation. killer
// is the processor performing the conflicting action (may equal victim).
// hasAddr states whether addr names a real conflicting address — address
// 0 is a legal simulated address, so absence is tracked explicitly.
func (p *Proc) killHW(victim *Proc, reason AbortReason, addr uint64, hasAddr bool) {
	p.killHWFrom(p.ID(), victim, reason, addr, hasAddr)
}

// killHWFrom is killHW with an explicit aggressor processor ID for the
// attribution edge. p is always the processor performing the kill (whose
// clock timestamps the edge); aggressor may name another processor when a
// software barrier detects a conflict on that processor's behalf
// (AbortHWAttributed), or -1 for self-attribution.
func (p *Proc) killHWFrom(aggressor int, victim *Proc, reason AbortReason, addr uint64, hasAddr bool) {
	t := victim.hw
	if t == nil || t.pendingAbort != AbortNone {
		return
	}
	if aggressor < 0 {
		aggressor = victim.ID()
	}
	if p.m.rec != nil {
		p.m.rec.RecordEdge(ConflictEdge{
			Aggressor: aggressor, Victim: victim.ID(),
			Addr: addr, HasAddr: hasAddr,
			Reason: reason, Cycle: p.Now(),
		})
	}
	if p.m.txrec != nil {
		p.m.txrec.TxConflict(victim.ID(), aggressor)
	}
	t.pendingAbort = reason
	t.abortAddr = addr
	t.abortHasAddr = hasAddr
	// Speculatively written lines are invalidated on abort (they were
	// never globally visible); the read set simply loses its SR bits.
	for l := range t.WriteSet {
		victim.l1.Invalidate(l)
		p.m.dir.Remove(l, victim.ID())
	}
	clear(t.ReadSet)
	clear(t.WriteSet)
	clear(t.Spec)
}

// timerInterrupt models the scheduling-timer quantum: an in-flight
// hardware transaction cannot survive an interrupt (Section 3.1).
func (p *Proc) timerInterrupt() {
	if p.hw != nil {
		p.killHW(p, AbortInterrupt, 0, false)
	}
}

// checkPending delivers a pending asynchronous abort, if any.
func (p *Proc) checkPending() (Outcome, bool) {
	if p.hw != nil && p.hw.pendingAbort != AbortNone {
		return p.consumeAbort(), true
	}
	return okOutcome, false
}

// --- The memory operation core ---

// access performs the full architectural sequence for one memory
// operation: UFO protection check, conflict detection and resolution
// against other processors' hardware transactions, and cache/coherence
// timing. tx marks the access as part of p's hardware transaction.
func (p *Proc) access(addr uint64, write, tx bool) Outcome {
	if tx {
		if out, aborted := p.checkPending(); aborted {
			return out
		}
		if p.hw == nil {
			panic("machine: transactional access with no transaction")
		}
	} else if p.hw != nil {
		// BTM has no non-transactional loads/stores (paper, footnote 9).
		panic("machine: non-transactional access inside a hardware transaction")
	}

	// 1. UFO protection check: the fault is raised before the access
	// completes, so a faulting access has no architectural effect.
	if p.ufo && p.m.Mem.Faults(addr, write) {
		p.m.Count.UFOFaults++
		p.record(TraceUFOFault, AbortNone, addr, 0, FlagAddr)
		p.sp.Elapse(p.m.L1HitCycles) // the tag check that detected the fault
		return Outcome{Kind: UFOFault, Addr: addr}
	}

	// 2. Conflict detection against other processors' HW transactions.
	line := mem.LineOf(addr)
	if out, resolved := p.resolveConflicts(line, write, tx); !resolved {
		return out
	}

	// 3. Track the transactional footprint before the timing charge: the
	// coherence acquisition and the SR/SW-bit update are one atomic
	// hardware action, and the charge below may yield to other processors
	// whose conflicting actions must observe the updated footprint.
	if tx {
		if write {
			p.hw.WriteSet[line] = struct{}{}
		} else {
			p.hw.ReadSet[line] = struct{}{}
		}
	}

	// 4. Cache and coherence timing. This can self-abort (set overflow),
	// race with a timer interrupt, or lose the line to a concurrent
	// conflictor, so pending aborts are delivered before data moves.
	p.charge(line, write)
	if tx {
		if out, aborted := p.checkPending(); aborted {
			return out
		}
		return okOutcome
	}
	// 5. Completion-time conflict re-check: the charge above yields, and a
	// hardware transaction may have touched this line while the miss was in
	// flight — its footprint was empty at the issue-time check, but this
	// access's data lands now. In hardware the store's invalidation (or the
	// load's downgrade) snoops the SR/SW bits when the coherence transaction
	// completes, so such a transaction is killed; without the re-check a
	// hardware transaction could read a line mid-way through a
	// non-transactional store's miss and commit having seen both the old
	// and the new value. Victims killed at issue already carry a pending
	// abort and are skipped.
	p.resolveConflicts(line, write, false)
	if p.ufo && p.m.Mem.Faults(addr, write) {
		// 6. Protection re-check, same window: a software transaction may
		// have installed UFO protection on (and eagerly written) this line
		// during the miss. In hardware the permission check rides the
		// coherence response, so the access faults; without this re-check a
		// non-transactional reader could return the transaction's
		// uncommitted value — a strong-atomicity hole the litmus suite
		// catches. The timing was charged but no data moves; the handler's
		// retry will hit in L1.
		p.m.Count.UFOFaults++
		p.record(TraceUFOFault, AbortNone, addr, 0, FlagAddr)
		return Outcome{Kind: UFOFault, Addr: addr}
	}
	return okOutcome
}

// resolveConflicts applies the machine's contention policy to every
// hardware transaction whose footprint conflicts with this access.
// resolved=false means the access must not proceed (NACK or own abort).
func (p *Proc) resolveConflicts(line uint64, write, tx bool) (Outcome, bool) {
	var victims []*Proc
	for _, q := range p.m.procs {
		if q == p || q.hw == nil || q.hw.pendingAbort != AbortNone {
			continue
		}
		_, inW := q.hw.WriteSet[line]
		_, inR := q.hw.ReadSet[line]
		if inW || (write && inR) {
			victims = append(victims, q)
		}
	}
	if len(victims) == 0 {
		return okOutcome, true
	}
	if !tx {
		// A non-transactional (or STM) access always serializes against
		// hardware transactions by aborting them: HTMs are strongly atomic
		// through coherence. STM-vs-HTM conflicts are also classified for
		// the Section 5.4 measurement.
		for _, q := range victims {
			if p.inSTM {
				if p.stmAge < q.hw.Age {
					p.m.Count.ConflictSTMOlder++
				} else {
					p.m.Count.ConflictHTMOlder++
				}
			}
			p.killHW(q, AbortNonTConflict, mem.LineAddr(line), true)
		}
		return okOutcome, true
	}
	// HW-vs-HW: age-ordered resolution (or requester-wins for Figure 8).
	if p.m.HWPolicy == AgeOrdered {
		for _, q := range victims {
			if q.hw.Age < p.hw.Age {
				p.m.Count.Nacks++
				p.record(TraceNack, AbortNone, mem.LineAddr(line), p.hw.Age, FlagAddr|FlagAge)
				return Outcome{Kind: Nacked}, false
			}
		}
	}
	for _, q := range victims {
		p.killHW(q, AbortConflict, mem.LineAddr(line), true)
	}
	return okOutcome, true
}

// charge models the latency of the reference and maintains L1 occupancy
// and the directory. A write invalidates all other cached copies.
func (p *Proc) charge(line uint64, write bool) {
	hit, victim, evicted := p.l1.Touch(line)
	cost := p.m.L1HitCycles
	if !hit {
		if p.m.warm[line] {
			if len(p.m.dir.Others(line, p.ID())) > 0 {
				cost += p.m.TransferCycles
			} else {
				cost += p.m.L2HitCycles
			}
		} else {
			p.m.warm[line] = true
			cost += p.m.MemCycles
		}
		p.m.dir.Add(line, p.ID())
		if evicted {
			p.m.dir.Remove(victim, p.ID())
			if p.hw != nil && p.hw.Bounded {
				_, inR := p.hw.ReadSet[victim]
				_, inW := p.hw.WriteSet[victim]
				if inR || inW {
					// Evicting a transactional line overflows BTM.
					p.killHW(p, AbortOverflow, mem.LineAddr(victim), true)
				}
			}
		}
	}
	if write {
		others := p.m.dir.Others(line, p.ID())
		if len(others) > 0 {
			cost += p.m.TransferCycles // exclusive-permission upgrade
			for _, q := range others {
				p.m.procs[q].l1.Invalidate(line)
				p.m.dir.Remove(line, q)
			}
		}
	}
	p.sp.Elapse(cost)
}

// --- Data-path operations ---

// TxRead performs a transactional load. Self-bracketed in an ordered
// section on the accessed line: conflict detection, footprint update,
// and data read are atomic at this processor's schedule slot.
func (p *Proc) TxRead(addr uint64) (uint64, Outcome) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	out := p.access(addr, false, true)
	if out.Kind != OK {
		return 0, out
	}
	if v, ok := p.hw.Spec[addr]; ok {
		return v, okOutcome
	}
	return p.m.Mem.Read64(addr), okOutcome
}

// TxWrite performs a transactional store into the speculative buffer.
// Self-bracketed in an ordered section on the accessed line.
func (p *Proc) TxWrite(addr, val uint64) Outcome {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	out := p.access(addr, true, true)
	if out.Kind != OK {
		return out
	}
	p.hw.Spec[addr] = val
	return okOutcome
}

// NTRead performs a non-transactional load. Self-bracketed in an
// ordered section on the accessed line.
func (p *Proc) NTRead(addr uint64) (uint64, Outcome) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	out := p.access(addr, false, false)
	if out.Kind != OK {
		return 0, out
	}
	return p.m.Mem.Read64(addr), okOutcome
}

// NTWrite performs a non-transactional store. Self-bracketed in an
// ordered section on the accessed line.
func (p *Proc) NTWrite(addr, val uint64) Outcome {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	out := p.access(addr, true, false)
	if out.Kind != OK {
		return out
	}
	p.m.Mem.Write64(addr, val)
	return okOutcome
}

// --- UFO bit operations (Table 2) ---

// SetUFO installs protection bits on the line containing addr
// (set_ufo_bits). Because the bits must stay coherent, the instruction
// acquires exclusive permission, invalidating every other cached copy —
// and thereby killing any hardware transaction whose footprint includes
// the line (the BTM/UFO interaction of Section 4.3). Under the
// TrueConflictUFOKills limit study only genuinely conflicting
// transactions are killed. Self-bracketed in an ordered section on the
// protected line.
func (p *Proc) SetUFO(addr uint64, bits mem.UFOBits) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	p.ufoUpdate(addr, func() { p.m.Mem.SetUFO(addr, bits) }, bits)
}

// AddUFO ORs protection bits into the line containing addr
// (add_ufo_bits). Self-bracketed in an ordered section on the protected
// line, like SetUFO.
func (p *Proc) AddUFO(addr uint64, bits mem.UFOBits) {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	p.ufoUpdate(addr, func() { p.m.Mem.AddUFO(addr, bits) }, bits)
}

func (p *Proc) ufoUpdate(addr uint64, apply func(), bits mem.UFOBits) {
	line := mem.LineOf(addr)
	old := p.m.Mem.UFO(addr)
	cost := p.m.UFOOpCycles

	// The paper's two proposed mitigations for false UFO/BTM conflicts:
	// a pure downgrade under lazy clearing, or a fault-on-write-only
	// install under owner-state setting, need not blow every other copy
	// away. (Section 4.3: "setting UFO bits in the owner state" / "lazily
	// clearing UFO bits for read-mostly data".)
	downgrade := bits&^old == 0 // no new protection added
	fowOnly := bits&^old == mem.UFOFaultOnWrite
	if p.m.LazyUFOClear && downgrade {
		apply()
		p.sp.Elapse(cost)
		return
	}
	sharedInstall := p.m.OwnerStateUFO && fowOnly

	// Exclusive permission: invalidate all other copies (unless the
	// owner-state optimization keeps read-sharers valid).
	if !sharedInstall {
		others := p.m.dir.Others(line, p.ID())
		if len(others) > 0 {
			cost += p.m.TransferCycles
		}
		for _, qid := range others {
			q := p.m.procs[qid]
			q.l1.Invalidate(line)
			p.m.dir.Remove(line, qid)
		}
	}
	// Kill hardware transactions holding the line.
	for _, q := range p.m.procs {
		if q == p || q.hw == nil || q.hw.pendingAbort != AbortNone {
			continue
		}
		_, inR := q.hw.ReadSet[line]
		_, inW := q.hw.WriteSet[line]
		if !inR && !inW {
			continue
		}
		trueConflict := inW || bits&mem.UFOFaultOnRead != 0
		if trueConflict {
			p.m.Count.UFOKillsTrue++
		} else {
			p.m.Count.UFOKillsFalse++
			if p.m.TrueConflictUFOKills {
				continue // limit study: spare false conflicts
			}
			if sharedInstall {
				continue // owner-state install: readers survive
			}
		}
		if p.inSTM {
			if p.stmAge < q.hw.Age {
				p.m.Count.ConflictSTMOlder++
			} else {
				p.m.Count.ConflictHTMOlder++
			}
		}
		p.killHW(q, AbortUFOKill, mem.LineAddr(line), true)
	}
	apply()
	p.record(TraceUFOSet, AbortNone, addr, 0, FlagAddr)
	p.sp.Elapse(cost)
}

// ReadUFO returns the line's protection bits (read_ufo_bits).
// Self-bracketed in an ordered section on the line.
func (p *Proc) ReadUFO(addr uint64) mem.UFOBits {
	p.sp.EnterOrdered(mem.LineOf(addr))
	defer p.sp.ExitOrdered()
	p.sp.Elapse(p.m.UFOOpCycles)
	return p.m.Mem.UFO(addr)
}

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	return fmt.Sprintf("proc%d@%d", p.ID(), p.Now())
}
