package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceRingWraparoundExports drives the ring past its capacity with
// an odd limit (so the wrap point lands mid transaction) and exports the
// survivors through all three sinks: the ring must keep exactly the most
// recent events in order, every sink must stay well-formed, and the
// Chrome sink must turn the orphaned commit (whose begin was evicted)
// into an instant instead of a torn span.
func TestTraceRingWraparoundExports(t *testing.T) {
	m := New(testParams(1))
	tr := m.EnableTrace(7)
	m.Run([]func(*Proc){func(p *Proc) {
		for i := 0; i < 6; i++ {
			p.BeginHW(p.Machine().NextAge(), true)
			p.TxWrite(0, uint64(i))
			p.CommitHW()
		}
	}})

	// 6 transactions → 12 events through a 7-slot ring.
	if tr.Total() != 12 {
		t.Fatalf("total = %d, want 12", tr.Total())
	}
	events := tr.Events()
	if len(events) != 7 {
		t.Fatalf("retained = %d, want 7", len(events))
	}
	// Oldest survivor is event index 5: the commit of the 3rd transaction,
	// whose begin was evicted.
	if events[0].Kind != TraceHWCommit {
		t.Fatalf("first retained event = %v, want orphaned hw-commit", events[0].Kind)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("events out of order at %d: %v after %v", i, events[i], events[i-1])
		}
	}
	// The remaining six events are three intact begin/commit pairs.
	for i := 1; i < len(events); i += 2 {
		if events[i].Kind != TraceHWBegin || events[i+1].Kind != TraceHWCommit {
			t.Fatalf("pair at %d = %v,%v", i, events[i].Kind, events[i+1].Kind)
		}
	}

	// Text sink: one line per retained event.
	var text bytes.Buffer
	if err := tr.Export(NewTextSink(&text)); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(text.String(), "\n"); lines != 7 {
		t.Fatalf("text lines = %d, want 7:\n%s", lines, text.String())
	}

	// JSONL sink: every line is a valid JSON object.
	var jsonl bytes.Buffer
	if err := tr.Export(NewJSONLSink(&jsonl)); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(jl) != 7 {
		t.Fatalf("jsonl lines = %d, want 7", len(jl))
	}
	for i, line := range jl {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d invalid: %s", i, line)
		}
	}

	// Chrome sink: the whole document parses, spans are intact, and the
	// orphaned commit became an instant — nothing torn, nothing dropped.
	var chrome bytes.Buffer
	if err := tr.Export(NewChromeSink(&chrome)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   uint64          `json:"ts"`
			Dur  *int64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output invalid JSON: %v\n%s", err, chrome.String())
	}
	spans, instants := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Name != "hw-tx" {
				t.Errorf("span name = %q", e.Name)
			}
			if e.Dur == nil || *e.Dur < 0 {
				t.Errorf("span has bad duration: %+v", e)
			}
			if strings.Contains(string(e.Args), "truncated") {
				t.Errorf("intact pair rendered as truncated: %+v", e)
			}
		case "i":
			instants++
			if e.Name != "hw-commit" {
				t.Errorf("instant name = %q, want the orphaned hw-commit", e.Name)
			}
		}
	}
	if spans != 3 || instants != 1 {
		t.Fatalf("chrome export: %d spans, %d instants; want 3 intact spans and 1 orphan instant", spans, instants)
	}
}
