package machine

import (
	"fmt"
	"io"
)

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceHWBegin TraceKind = iota
	TraceHWCommit
	TraceHWAbort
	TraceSWBegin
	TraceSWCommit
	TraceSWAbort
	TraceUFOSet
	TraceUFOFault
	TraceNack
	TraceBlock
	TraceWake
	// TraceTxBegin and TraceTxCommit bracket one logical transaction (an
	// Atomic call spanning every attempt); the Chrome sink turns the pair
	// into a per-transaction span. TraceTxCommit carries the committing
	// path (TxPath) in the Age field with FlagPath set.
	TraceTxBegin
	TraceTxCommit
)

var traceKindNames = []string{
	"hw-begin", "hw-commit", "hw-abort", "sw-begin", "sw-commit",
	"sw-abort", "ufo-set", "ufo-fault", "nack", "block", "wake",
	"tx-begin", "tx-commit",
}

// String returns the trace-kind name used in text exports.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceFlags marks which optional TraceEvent fields carry real values.
// Address 0 and age 0 are legitimate values (the first line of simulated
// memory; pre-age bookkeeping events), so "present" must be recorded
// explicitly rather than inferred from zero.
type TraceFlags uint8

// The flag bits.
const (
	// FlagAddr: the Addr field is meaningful.
	FlagAddr TraceFlags = 1 << iota
	// FlagAge: the Age field is meaningful.
	FlagAge
	// FlagPath: the Age field carries a TxPath (tx-commit events).
	FlagPath
)

// TraceEvent is one recorded event.
type TraceEvent struct {
	Cycle  uint64
	Proc   int
	Kind   TraceKind
	Reason AbortReason // for aborts
	Addr   uint64      // for ufo-set / ufo-fault / conflict addresses
	Age    uint64      // transaction age, where applicable
	Flags  TraceFlags  // which of Addr/Age are set
}

// HasAddr reports whether Addr carries a real address (address 0 counts).
func (e TraceEvent) HasAddr() bool { return e.Flags&FlagAddr != 0 }

// HasAge reports whether Age carries a real transaction age.
func (e TraceEvent) HasAge() bool { return e.Flags&FlagAge != 0 }

// HasPath reports whether Age carries a TxPath (tx-commit events).
func (e TraceEvent) HasPath() bool { return e.Flags&FlagPath != 0 }

// String formats the event as one line of the text trace.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("%10d  p%-2d %-9s", e.Cycle, e.Proc, e.Kind)
	switch e.Kind {
	case TraceHWAbort, TraceSWAbort:
		s += fmt.Sprintf(" reason=%s", e.Reason)
	}
	if e.HasAddr() {
		s += fmt.Sprintf(" addr=%#x", e.Addr)
	}
	if e.HasAge() {
		s += fmt.Sprintf(" age=%d", e.Age)
	}
	if e.HasPath() {
		s += fmt.Sprintf(" path=%s", TxPath(e.Age))
	}
	return s
}

// Trace is a bounded in-memory event log. Enable it with
// Machine.EnableTrace; when full it keeps the most recent events (ring
// buffer), which is what post-mortem debugging wants.
type Trace struct {
	limit  int
	events []TraceEvent
	start  int // ring start when full
	total  uint64
}

// EnableTrace starts recording up to limit events (most recent kept).
// Events are appended from inside the machine's ordered operations, so
// the recorded sequence is deterministic and identical under every
// scheduler. Call EnableTrace itself before Run.
func (m *Machine) EnableTrace(limit int) *Trace {
	if limit <= 0 {
		limit = 4096
	}
	m.trace = &Trace{limit: limit}
	return m.trace
}

// Trace returns the machine's trace, or nil. Read it between runs; the
// machine appends to it during Run (in deterministic order).
func (m *Machine) Trace() *Trace { return m.trace }

// add records an event.
func (t *Trace) add(e TraceEvent) {
	t.total++
	if len(t.events) < t.limit {
		t.events = append(t.events, e)
		return
	}
	t.events[t.start] = e
	t.start = (t.start + 1) % t.limit
}

// Events returns the recorded events, oldest first.
func (t *Trace) Events() []TraceEvent {
	if t.start == 0 {
		return append([]TraceEvent(nil), t.events...)
	}
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Total reports how many events were recorded (including evicted ones).
func (t *Trace) Total() uint64 { return t.total }

// Dump writes the recorded events to w.
func (t *Trace) Dump(w io.Writer) {
	if t.total > uint64(len(t.events)) {
		fmt.Fprintf(w, "(%d earlier events evicted)\n", t.total-uint64(len(t.events)))
	}
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}

// record is the machine-side hook (no-op when tracing is off). flags
// states which of addr/age are meaningful for this event.
func (p *Proc) record(kind TraceKind, reason AbortReason, addr, age uint64, flags TraceFlags) {
	if p.m.trace == nil && len(p.m.sinks) == 0 {
		return
	}
	e := TraceEvent{
		Cycle: p.Now(), Proc: p.ID(), Kind: kind,
		Reason: reason, Addr: addr, Age: age, Flags: flags,
	}
	if p.m.trace != nil {
		p.m.trace.add(e)
	}
	for _, s := range p.m.sinks {
		s.Event(e)
	}
}

// RecordSW lets software TMs log their transaction lifecycle into the
// shared trace. Self-bracketed in an ordered section so trace events
// land in deterministic schedule order.
func (p *Proc) RecordSW(kind TraceKind, reason AbortReason, age uint64) {
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.record(kind, reason, 0, age, FlagAge)
}
