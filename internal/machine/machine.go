// Package machine composes the simulation engine, simulated memory, and
// cache models into the multiprocessor that every TM system in this
// repository runs on. It implements the two hardware primitives of the
// paper at the architectural level:
//
//   - the transactional-execution substrate used by BTM and the unbounded
//     HTM: per-processor speculative read/write line-sets, a speculative
//     store buffer, coherence-based eager conflict detection with
//     age-ordered NACK/abort resolution, and L1-occupancy-driven overflow
//     detection; and
//
//   - UFO, user-mode fine-grained memory protection: per-line
//     fault-on-read/fault-on-write bits (stored in package mem) whose
//     modification requires exclusive coherence permission — which is the
//     mechanism by which software transactions kill conflicting hardware
//     transactions.
//
// Higher layers (internal/btm, internal/ustm, internal/core, ...) express
// TM policy; this package only provides mechanism, following the paper's
// "primitives, not solutions" philosophy.
//
// Paper: §3 (the two primitives) and §4 (how the hybrid composes them).
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// AbortReason enumerates why a hardware transaction aborted, mirroring the
// BTM status register of Table 1 plus the UFO-interaction reasons the
// paper's Figure 6 reports.
type AbortReason uint8

const (
	// AbortNone means no abort is pending.
	AbortNone AbortReason = iota
	// AbortOverflow: a transactional line was evicted from the L1 set.
	AbortOverflow
	// AbortExplicit: software executed btm_abort.
	AbortExplicit
	// AbortInterrupt: a timer interrupt arrived mid-transaction.
	AbortInterrupt
	// AbortConflict: lost an age-ordered conflict with another HW transaction.
	AbortConflict
	// AbortException: the transaction raised a non-page-fault exception.
	AbortException
	// AbortSyscall: the transaction invoked a system call.
	AbortSyscall
	// AbortIO: the transaction performed I/O.
	AbortIO
	// AbortPageFault: the transaction touched an unmapped page (recoverable).
	AbortPageFault
	// AbortUFOKill: killed by another thread's set_ufo_bits needing
	// exclusive permission on a line in this transaction's footprint.
	AbortUFOKill
	// AbortUFOFault: the transaction accessed a UFO-protected line and the
	// policy chose to abort rather than stall.
	AbortUFOFault
	// AbortNonTConflict: a non-transactional access conflicted with this
	// transaction's footprint (HTM strong atomicity).
	AbortNonTConflict
	// AbortNesting: hardware nesting depth exceeded.
	AbortNesting

	numAbortReasons
)

var abortNames = [numAbortReasons]string{
	"none", "overflow", "explicit", "interrupt", "conflict", "exception",
	"syscall", "io", "page-fault", "ufo-kill", "ufo-fault", "nonT-conflict",
	"nesting",
}

// String returns the abort-reason name used in reports and traces.
func (r AbortReason) String() string {
	if int(r) < len(abortNames) {
		return abortNames[r]
	}
	return fmt.Sprintf("AbortReason(%d)", uint8(r))
}

// NumAbortReasons is the size of per-reason counter arrays.
const NumAbortReasons = int(numAbortReasons)

// OutcomeKind classifies the result of a memory operation.
type OutcomeKind uint8

const (
	// OK: the operation completed.
	OK OutcomeKind = iota
	// Nacked: the requester lost an age-ordered conflict and must back off
	// and retry (the paper's 20-cycle NACK).
	Nacked
	// UFOFault: the access hit a UFO-protected line with faults enabled;
	// the access did not complete.
	UFOFault
	// HWAborted: the processor's own hardware transaction has (or had) a
	// pending abort; the operation did not complete and the transaction
	// state is already flash-cleared.
	HWAborted
)

// String returns the outcome-kind name used in reports and traces.
func (k OutcomeKind) String() string {
	switch k {
	case OK:
		return "ok"
	case Nacked:
		return "nacked"
	case UFOFault:
		return "ufo-fault"
	case HWAborted:
		return "hw-aborted"
	}
	return fmt.Sprintf("OutcomeKind(%d)", uint8(k))
}

// Outcome is the result of a memory operation.
type Outcome struct {
	Kind   OutcomeKind
	Reason AbortReason // valid when Kind == HWAborted
	Addr   uint64      // faulting address when Kind == UFOFault
}

var okOutcome = Outcome{Kind: OK}

// ContentionPolicy selects how conflicting hardware transactions are
// resolved (the Figure 8 sensitivity axis).
type ContentionPolicy uint8

const (
	// AgeOrdered is the paper's policy: an older requester aborts the
	// owner; a younger requester is NACKed and retries.
	AgeOrdered ContentionPolicy = iota
	// RequesterWins always aborts the current owner (the naive policy the
	// paper shows performs like an STM under contention).
	RequesterWins
)

// Params is the machine configuration (the Table 4 analogue). Together
// with the workloads it fully determines a run: same Params, same seed,
// same results, bit-identical under every scheduler selection.
type Params struct {
	Procs   int
	L1Bytes int
	L1Ways  int

	L1HitCycles    uint64
	L2HitCycles    uint64
	MemCycles      uint64
	TransferCycles uint64
	NackCycles     uint64 // NACK retry delay
	UFOOpCycles    uint64 // set/add/read_ufo_bits instruction cost

	Quantum  uint64
	MemBytes uint64
	MaxSteps uint64
	Seed     uint64

	// ReferenceScheduler runs the machine on the engine's retained
	// reference scheduler instead of the run-ahead fast path (sim.Config.
	// Reference). Simulated results are bit-identical; differential tests
	// use it to pin the fast path to the specification.
	ReferenceScheduler bool
	// ParallelScheduler runs the machine on the engine's time-windowed
	// parallel scheduler (sim.Config.Parallel, DESIGN.md §14): processor
	// goroutines run concurrently and every machine operation serializes
	// through an ordered section in (cycle, proc id) order. Simulated
	// results are bit-identical to both serial schedulers. Mutually
	// exclusive with ReferenceScheduler.
	ParallelScheduler bool
	// WindowCycles is the parallel scheduler's window width in cycles
	// (zero selects sim.DefaultWindowCycles). Affects host-side
	// synchronization cadence only, never simulated results.
	WindowCycles uint64

	HWPolicy ContentionPolicy
	// TrueConflictUFOKills enables the Figure 8 limit study: set_ufo_bits
	// only aborts hardware transactions whose footprint truly conflicts
	// with the protection being installed.
	TrueConflictUFOKills bool
	// OwnerStateUFO enables the paper's first proposed mitigation for
	// UFO/BTM false conflicts: installing fault-on-write protection in
	// the coherence owner state, without invalidating (or killing)
	// read-only sharers.
	OwnerStateUFO bool
	// LazyUFOClear enables the second proposed mitigation: protection
	// downgrades (clears) take effect without eagerly invalidating other
	// copies, so releasing read-mostly data kills no hardware readers.
	LazyUFOClear bool
}

// DefaultParams returns the baseline configuration used throughout the
// evaluation, seeded so that runs are reproducible out of the box.
func DefaultParams(procs int) Params {
	return Params{
		Procs:          procs,
		L1Bytes:        32 * 1024,
		L1Ways:         4,
		L1HitCycles:    1,
		L2HitCycles:    20,
		MemCycles:      300,
		TransferCycles: 60,
		NackCycles:     20,
		UFOOpCycles:    6,
		Quantum:        200_000,
		MemBytes:       1 << 24,
		Seed:           1,
	}
}

// ConflictEdge is one who-aborted-whom attribution record: processor
// Aggressor performed the action that aborted (killed) processor Victim's
// transaction at the given simulated cycle. Self-inflicted aborts
// (explicit abort, syscall, overflow, interrupt) appear as self-loop
// edges with Aggressor == Victim. Aggressor is -1 when the conflicting
// party could not be identified (e.g. a TL2 validation failure against an
// already-released stripe). Address 0 is a legal simulated address, so
// HasAddr states explicitly whether Addr names a real conflicting line.
type ConflictEdge struct {
	Aggressor int
	Victim    int
	Addr      uint64
	HasAddr   bool
	SW        bool // the aborted (victim) transaction was a software transaction
	Reason    AbortReason
	Cycle     uint64
}

// ConflictRecorder receives conflict-attribution events from the machine
// and the TM systems running on it. Implementations must be cheap: the
// machine calls these from every abort and commit path. The engine
// serializes processors, so implementations need no locking.
// internal/contention provides the standard implementation; the machine
// only defines the interface so the dependency points outward.
type ConflictRecorder interface {
	// RecordEdge records one who-aborted-whom edge.
	RecordEdge(e ConflictEdge)
	// RecordCommit records a committed transaction (hw selects the
	// hardware/software mode) for abort-rate-over-time series.
	RecordCommit(proc int, hw bool, cycle uint64)
}

// SetConflictRecorder attaches (or with nil detaches) a conflict
// recorder. Recording costs one nil check per abort/commit when
// detached. Attach before Run; the machine then invokes the recorder
// from inside ordered operations, so it observes events in the
// deterministic schedule order without locking.
func (m *Machine) SetConflictRecorder(r ConflictRecorder) { m.rec = r }

// ConflictRecorder returns the attached recorder, or nil. The
// attachment is fixed before Run, so the read needs no ordered section.
func (m *Machine) ConflictRecorder() ConflictRecorder { return m.rec }

// TxPath classifies the execution mode of one transaction attempt for
// lifecycle accounting: the hardware fast path, the strongly-atomic
// software path (UFO-protected USTM), the weakly-atomic software path,
// or a serialized fallback (token holder, global lock, SLE real lock).
type TxPath uint8

// The attempt paths.
const (
	// PathHTM: a hardware (BTM / unbounded / elided) attempt.
	PathHTM TxPath = iota
	// PathUFO: a software attempt under UFO strong atomicity (§4).
	PathUFO
	// PathSW: a weakly-atomic software attempt (USTM without UFO, TL2,
	// the HyTM/PhTM software halves).
	PathSW
	// PathFallback: a serialized attempt — commit-token holder, global
	// lock, or SLE's real lock acquisition.
	PathFallback
	// NumTxPaths sizes per-path arrays.
	NumTxPaths = iota
)

var txPathNames = []string{"htm", "ufo", "sw", "fallback"}

// String returns the path name used in reports and trace exports.
func (p TxPath) String() string {
	if int(p) < len(txPathNames) {
		return txPathNames[p]
	}
	return fmt.Sprintf("TxPath(%d)", uint8(p))
}

// TxPathByName maps a report name back to its TxPath; ok is false for
// unknown names.
func TxPathByName(name string) (TxPath, bool) {
	for i, n := range txPathNames {
		if n == name {
			return TxPath(i), true
		}
	}
	return 0, false
}

// TxRecorder receives per-transaction lifecycle events from the TM
// systems running on the machine (via the Proc.TxLife* hooks).
// Implementations must be cheap and need no locking: the hooks bracket
// every call in an ordered section, so a recorder observes events in
// the deterministic schedule order under every scheduler.
// internal/txstats provides the standard implementation; the machine
// only defines the interface so the dependency points outward.
type TxRecorder interface {
	// TxBegin marks the start of one logical transaction (an Atomic
	// call) on proc at the given cycle.
	TxBegin(proc int, cycle uint64)
	// TxAttempt marks the start of one attempt on the given path.
	TxAttempt(proc int, path TxPath, cycle uint64)
	// TxAbort marks a failed attempt: the attempt started by the last
	// TxAttempt on proc ended at cycle for the given reason.
	TxAbort(proc int, path TxPath, reason AbortReason, cycle uint64)
	// TxRetryWait marks a Retry suspension (§6): the current attempt
	// undoes itself and the processor waits to be woken. Cycles from the
	// last TxAttempt until the next TxAttempt count as retry waiting.
	TxRetryWait(proc int, cycle uint64)
	// TxBackoff reports cycles spent in a contention-management delay
	// between attempts.
	TxBackoff(proc int, cycles uint64)
	// TxCommit marks the successful end of the transaction; path is the
	// path of the committing attempt.
	TxCommit(proc int, path TxPath, cycle uint64)
	// TxConflict reports that victim's in-flight attempt was killed by
	// aggressor (-1 unknown); it fires alongside the ConflictRecorder
	// edge so the next TxAbort can charge its wasted cycles to the
	// aggressor.
	TxConflict(victim, aggressor int)
}

// SetTxRecorder attaches (or with nil detaches) a per-transaction
// lifecycle recorder. Recording costs one nil check per lifecycle hook
// when detached. Attach before Run; the hooks then invoke the recorder
// from inside ordered sections, so it observes events in the
// deterministic schedule order without locking.
func (m *Machine) SetTxRecorder(r TxRecorder) { m.txrec = r }

// TxRecorder returns the attached lifecycle recorder, or nil. The
// attachment is fixed before Run, so the read needs no ordered section.
func (m *Machine) TxRecorder() TxRecorder { return m.txrec }

// Counters aggregates machine-level event counts.
type Counters struct {
	HWAbortsByReason [NumAbortReasons]uint64
	HWCommits        uint64
	Nacks            uint64
	UFOKillsTrue     uint64
	UFOKillsFalse    uint64
	UFOFaults        uint64
	ConflictSTMOlder uint64 // STM-vs-HTM conflicts where the STM tx was older
	ConflictHTMOlder uint64
	// Footprint histograms of committed transactions (distinct lines).
	HWFootprint Hist
	SWFootprint Hist
}

// Machine is the simulated multiprocessor. Its shared state (memory,
// directory, counters, trace, age sequence, Rand) is mutated only from
// Proc methods, which serialize deterministically: trivially under the
// serial schedulers, and through ordered sections in (cycle, proc id)
// order under the parallel scheduler. Results are therefore bit-identical
// across schedulers.
type Machine struct {
	Params
	Eng   *sim.Engine
	Mem   *mem.Memory
	Rand  *sim.Rand
	Count Counters

	dir   *cache.Directory
	warm  map[uint64]bool // lines that have been fetched at least once
	procs []*Proc
	txSeq uint64
	trace *Trace
	sinks []TraceSink
	rec   ConflictRecorder
	txrec TxRecorder
}

// New builds a machine from params. All state derives from params (the
// RNG from params.Seed), so equal Params build machines whose runs are
// deterministic replicas of each other.
func New(p Params) *Machine {
	if p.Procs <= 0 {
		panic("machine: Procs must be positive")
	}
	if p.Procs > cache.MaxProcs {
		panic(fmt.Sprintf("machine: Procs %d exceeds the directory's %d-processor limit", p.Procs, cache.MaxProcs))
	}
	if p.ReferenceScheduler && p.ParallelScheduler {
		panic("machine: ReferenceScheduler and ParallelScheduler are mutually exclusive")
	}
	m := &Machine{
		Params: p,
		Eng: sim.New(sim.Config{
			Procs:        p.Procs,
			Quantum:      p.Quantum,
			MaxSteps:     p.MaxSteps,
			Reference:    p.ReferenceScheduler,
			Parallel:     p.ParallelScheduler,
			WindowCycles: p.WindowCycles,
		}),
		Mem:  mem.New(p.MemBytes),
		Rand: sim.NewRand(p.Seed),
		dir:  cache.NewDirectory(),
		warm: make(map[uint64]bool),
	}
	// Reserve the first page so fixed low addresses used by small tests
	// and examples never collide with Sbrk-allocated metadata (otables,
	// lock tables, heaps).
	m.Mem.Sbrk(mem.PageBytes)
	for i := 0; i < p.Procs; i++ {
		mp := &Proc{
			m:   m,
			sp:  m.Eng.Proc(i),
			l1:  cache.NewL1(p.L1Bytes, mem.LineBytes, p.L1Ways),
			ufo: true, // threads start with UFO faults enabled
		}
		m.procs = append(m.procs, mp)
		mp.sp.OnInterrupt(mp.timerInterrupt)
	}
	return m
}

// Procs returns the machine's processors in ID order. The slice is
// fixed at construction; reading it needs no ordered section.
func (m *Machine) Procs() []*Proc { return m.procs }

// Proc returns processor id. The mapping is fixed at construction;
// reading it needs no ordered section.
func (m *Machine) Proc(id int) *Proc { return m.procs[id] }

// NextAge returns a fresh, globally ordered transaction age (smaller is
// older). Both HW and SW transactions draw from the same sequence so that
// cross-system age comparisons are meaningful. Under the parallel
// scheduler the caller must hold an ordered section (Proc.BeginOrdered):
// the sequence is shared, and the draw order must match the serial
// schedule. The TM systems' Atomic wrappers already satisfy this.
func (m *Machine) NextAge() uint64 {
	m.txSeq++
	return m.txSeq
}

// Run executes one workload per processor to completion under the
// scheduler Params selected; the observable result is identical for all
// of them. Run itself must not be called concurrently.
func (m *Machine) Run(workloads []func(*Proc)) {
	if len(workloads) != len(m.procs) {
		panic(fmt.Sprintf("machine: %d workloads for %d processors", len(workloads), len(m.procs)))
	}
	ws := make([]func(*sim.Proc), len(workloads))
	for i, w := range workloads {
		mp, body := m.procs[i], w
		ws[i] = func(*sim.Proc) { body(mp) }
	}
	m.Eng.Run(ws)
}

// Cycles returns the simulated duration so far. Like sim.Engine.Now it
// is meant for between-runs reads; mid-run reads under the parallel
// scheduler are racy snapshots unless made from inside an ordered
// section.
func (m *Machine) Cycles() uint64 { return m.Eng.Now() }

// CheckConsistency validates the machine's internal invariants: the
// directory and the per-processor L1s agree exactly, and speculative
// state only exists inside in-flight transactions. Tests call this after
// (and during) stress runs; it is not part of the simulated semantics.
// It reads shared state without brackets, so call it between runs, or
// mid-run only from a processor inside an ordered section.
func (m *Machine) CheckConsistency() error {
	// Every L1-resident line is registered in the directory...
	for _, p := range m.procs {
		for _, line := range p.l1.Lines() {
			if !m.dir.HeldBy(line, p.ID()) {
				return fmt.Errorf("machine: proc %d caches line %d but the directory disagrees", p.ID(), line)
			}
		}
	}
	// ...and every directory entry is backed by a resident line.
	var err error
	m.dir.ForEach(func(line uint64, sharers cache.ProcSet) {
		if err != nil {
			return
		}
		for _, i := range sharers.Procs() {
			if !m.procs[i].l1.Contains(line) {
				err = fmt.Errorf("machine: directory lists proc %d for line %d but its L1 disagrees", i, line)
			}
		}
	})
	if err != nil {
		return err
	}
	// Speculative values imply an in-flight transaction that wrote them.
	for _, p := range m.procs {
		if p.hw == nil {
			continue
		}
		for addr := range p.hw.Spec {
			line := mem.LineOf(addr)
			if _, ok := p.hw.WriteSet[line]; !ok {
				return fmt.Errorf("machine: proc %d has speculative data at %#x outside its write set", p.ID(), addr)
			}
		}
	}
	return nil
}
