package machine

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	m := New(testParams(1))
	tr := m.EnableTrace(100)
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(m.NextAge(), true)
		p.TxWrite(0, 1)
		p.CommitHW()
		p.BeginHW(m.NextAge(), true)
		p.TxWrite(0, 2)
		p.AbortHW(AbortExplicit)
	}})
	events := tr.Events()
	var kinds []TraceKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []TraceKind{TraceHWBegin, TraceHWCommit, TraceHWBegin, TraceHWAbort}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if events[3].Reason != AbortExplicit {
		t.Fatalf("abort reason = %v", events[3].Reason)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "hw-commit") {
		t.Fatalf("dump missing events:\n%s", sb.String())
	}
}

func TestTraceRingKeepsMostRecent(t *testing.T) {
	m := New(testParams(1))
	tr := m.EnableTrace(4)
	m.Run([]func(*Proc){func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.BeginHW(m.NextAge(), true)
			p.CommitHW()
		}
	}})
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("kept %d events, want 4", len(events))
	}
	if tr.Total() != 20 {
		t.Fatalf("total = %d, want 20", tr.Total())
	}
	// The last event must be the final commit with the largest age.
	last := events[len(events)-1]
	if last.Kind != TraceHWCommit || last.Age != 10 {
		t.Fatalf("last event = %+v", last)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "evicted") {
		t.Fatal("dump must mention evicted events")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(testParams(1))
	if m.Trace() != nil {
		t.Fatal("trace enabled by default")
	}
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(m.NextAge(), true)
		p.CommitHW()
	}})
}

func TestTraceUFOEvents(t *testing.T) {
	m := New(testParams(1))
	tr := m.EnableTrace(100)
	m.Run([]func(*Proc){func(p *Proc) {
		p.SetUFOEnabled(false)
		p.SetUFO(0, mem.UFOFaultAll)
		p.SetUFOEnabled(true)
		p.NTRead(0) // faults
	}})
	var sets, faults int
	for _, e := range tr.Events() {
		switch e.Kind {
		case TraceUFOSet:
			sets++
		case TraceUFOFault:
			faults++
		}
	}
	if sets != 1 || faults != 1 {
		t.Fatalf("sets=%d faults=%d, want 1/1", sets, faults)
	}
}
