package machine

// Per-transaction lifecycle hooks. TM systems call these from their
// Atomic loops to feed the attached TxRecorder (SetTxRecorder) and the
// per-transaction trace spans (TraceTxBegin / TraceTxCommit). Every hook
// is self-bracketed in an ordered section, so recorder calls and trace
// events land in the deterministic serial schedule order under every
// scheduler; with no recorder attached and tracing off each hook costs
// one or two nil checks and returns before entering the section (the
// attachment is fixed before Run, so the nil read itself needs no
// ordering — the same argument Machine.ConflictRecorder documents).
//
// The hooks never advance the simulated clock and never draw from any
// RNG: attaching a recorder observes a run without perturbing it, so
// instrumented and uninstrumented runs are cycle-identical.

// txTracing reports whether per-transaction trace events have anywhere
// to go. Proc-local read of attachments fixed before Run; no ordering
// needed.
func (p *Proc) txTracing() bool {
	return p.m.trace != nil || len(p.m.sinks) != 0
}

// TxLifeBegin marks the start of one logical transaction (an Atomic
// call) for lifecycle accounting and emits the tx-begin trace event.
// Self-bracketed in an ordered section; near-zero cost when no recorder
// or trace is attached.
func (p *Proc) TxLifeBegin() {
	rec, tr := p.m.txrec != nil, p.txTracing()
	if !rec && !tr {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	if rec {
		p.m.txrec.TxBegin(p.ID(), p.Now())
	}
	if tr {
		p.record(TraceTxBegin, AbortNone, 0, 0, 0)
	}
}

// TxLifeAttempt marks the start of one attempt on the given path.
// Self-bracketed in an ordered section; one nil check when no recorder
// is attached.
func (p *Proc) TxLifeAttempt(path TxPath) {
	if p.m.txrec == nil {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.m.txrec.TxAttempt(p.ID(), path, p.Now())
}

// TxLifeAbort marks the failure of the current attempt for the given
// reason. Self-bracketed in an ordered section; one nil check when no
// recorder is attached.
func (p *Proc) TxLifeAbort(path TxPath, reason AbortReason) {
	if p.m.txrec == nil {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.m.txrec.TxAbort(p.ID(), path, reason, p.Now())
}

// TxLifeRetryWait marks a Retry suspension (§6): cycles from the current
// attempt's start until the next TxLifeAttempt count as transactional
// waiting rather than wasted work. Self-bracketed in an ordered section;
// one nil check when no recorder is attached.
func (p *Proc) TxLifeRetryWait() {
	if p.m.txrec == nil {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.m.txrec.TxRetryWait(p.ID(), p.Now())
}

// TxLifeBackoff reports cycles just spent in a contention-management
// delay (cm calls it after Elapse). Self-bracketed in an ordered
// section; one nil check when no recorder is attached.
func (p *Proc) TxLifeBackoff(cycles uint64) {
	if p.m.txrec == nil {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	p.m.txrec.TxBackoff(p.ID(), cycles)
}

// TxLifeCommit marks the successful end of the transaction on the given
// path and emits the tx-commit trace event (the path rides in the Age
// field, FlagPath). Self-bracketed in an ordered section; near-zero cost
// when no recorder or trace is attached.
func (p *Proc) TxLifeCommit(path TxPath) {
	rec, tr := p.m.txrec != nil, p.txTracing()
	if !rec && !tr {
		return
	}
	p.sp.EnterOrdered(0)
	defer p.sp.ExitOrdered()
	if rec {
		p.m.txrec.TxCommit(p.ID(), path, p.Now())
	}
	if tr {
		p.record(TraceTxCommit, AbortNone, 0, uint64(path), FlagPath)
	}
}
