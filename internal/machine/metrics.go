package machine

import (
	"fmt"

	"repro/internal/obs"
)

// Metric names exported by RegisterMetrics. The full catalogue — units,
// meanings, and which paper figure consumes each — is documented in
// OBSERVABILITY.md; tests reference these constants so renames cannot
// silently desynchronize the schema.
const (
	MetricCycles        = "machine.cycles"
	MetricHWCommits     = "machine.hw_commits"
	MetricNacks         = "machine.nacks"
	MetricUFOKillsTrue  = "machine.ufo_kills.true"
	MetricUFOKillsFalse = "machine.ufo_kills.false"
	MetricUFOFaults     = "machine.ufo_faults"
	MetricSTMOlder      = "machine.conflicts.stm_older"
	MetricHTMOlder      = "machine.conflicts.htm_older"
	MetricHWFootprint   = "machine.footprint.hw"
	MetricSWFootprint   = "machine.footprint.sw"
	MetricL1Hits        = "machine.l1.hits"
	MetricL1Misses      = "machine.l1.misses"
	MetricTraceEvents   = "machine.trace.events"
	// MetricAbortPrefix + AbortReason.String() names the per-reason abort
	// counters, e.g. "machine.hw_aborts.overflow".
	MetricAbortPrefix = "machine.hw_aborts."
	// MetricProcPrefix + "NN." + {cycles,l1_hits,l1_misses} names the
	// per-processor breakdowns, e.g. "machine.proc.03.cycles". Processor
	// numbers are zero-padded to two digits so snapshots sort numerically.
	MetricProcPrefix = "machine.proc."
)

// histInto imports a machine Hist into the registry under name.
func histInto(reg *obs.Registry, name, help string, h *Hist) {
	reg.Histogram(name, "lines", help).Import(h.Count, h.Sum, h.Max, h.Buckets[:])
}

// RegisterMetrics registers the machine's hardware-side event counts into
// reg: global counters (commits, per-reason aborts, NACKs, UFO kills and
// faults, STM/HTM conflict ages), the committed-footprint histograms, the
// simulated cycle count, and per-processor cycle and L1 hit/miss
// breakdowns. Call it after Run (never mid-run — it reads shared
// counters without ordering); the registered values are copies.
func (m *Machine) RegisterMetrics(reg *obs.Registry) {
	reg.Counter(MetricCycles, "cycles", "simulated duration of the run (max over processors)").Add(m.Cycles())
	reg.Counter(MetricHWCommits, "transactions", "hardware transactions committed (Figures 5-6)").Add(m.Count.HWCommits)
	for reason := 1; reason < NumAbortReasons; reason++ {
		reg.Counter(MetricAbortPrefix+AbortReason(reason).String(), "aborts",
			"hardware aborts by reason (Figure 6)").Add(m.Count.HWAbortsByReason[reason])
	}
	reg.Counter(MetricNacks, "events", "age-ordered conflict NACKs (Section 3.1)").Add(m.Count.Nacks)
	reg.Counter(MetricUFOKillsTrue, "events", "set_ufo_bits kills with a true footprint conflict (Section 4.3)").Add(m.Count.UFOKillsTrue)
	reg.Counter(MetricUFOKillsFalse, "events", "set_ufo_bits kills without a true conflict (Section 4.3)").Add(m.Count.UFOKillsFalse)
	reg.Counter(MetricUFOFaults, "events", "accesses that hit UFO protection (Section 4.2)").Add(m.Count.UFOFaults)
	reg.Counter(MetricSTMOlder, "events", "STM-vs-HTM conflicts where the STM transaction was older (Section 5.4)").Add(m.Count.ConflictSTMOlder)
	reg.Counter(MetricHTMOlder, "events", "STM-vs-HTM conflicts where the HTM transaction was older (Section 5.4)").Add(m.Count.ConflictHTMOlder)
	histInto(reg, MetricHWFootprint, "footprint of committed hardware transactions", &m.Count.HWFootprint)
	histInto(reg, MetricSWFootprint, "footprint of committed software transactions", &m.Count.SWFootprint)

	var hits, misses uint64
	for _, p := range m.procs {
		hits += p.l1.Hits()
		misses += p.l1.Misses()
		pp := fmt.Sprintf("%s%02d.", MetricProcPrefix, p.ID())
		reg.Counter(pp+"cycles", "cycles", "per-processor local clock at end of run").Add(p.Now())
		reg.Counter(pp+"l1_hits", "references", "per-processor L1 hits").Add(p.l1.Hits())
		reg.Counter(pp+"l1_misses", "references", "per-processor L1 misses").Add(p.l1.Misses())
	}
	reg.Counter(MetricL1Hits, "references", "L1 hits summed over processors").Add(hits)
	reg.Counter(MetricL1Misses, "references", "L1 misses summed over processors").Add(misses)

	if m.trace != nil {
		reg.Counter(MetricTraceEvents, "events", "trace events recorded (including ring-evicted)").Add(m.trace.Total())
	}
}
