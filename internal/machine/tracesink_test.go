package machine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mem"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite trace sink golden files")

// goldenEvents is a handcrafted event stream covering every sink corner:
// commit and abort lifecycles on two processors, an abort at address 0
// and a UFO set at address 0 (real zeros — the TraceFlags bugfix), a
// NACK, software-transaction events, an age-0 begin, an orphaned commit
// (begin evicted from a bounded ring), and a transaction left open at the
// end of the stream.
func goldenEvents() []TraceEvent {
	return []TraceEvent{
		{Cycle: 10, Proc: 0, Kind: TraceHWBegin, Age: 1, Flags: FlagAge},
		{Cycle: 12, Proc: 1, Kind: TraceSWBegin, Age: 2, Flags: FlagAge},
		{Cycle: 15, Proc: 0, Kind: TraceNack, Addr: 0x1c0, Age: 1, Flags: FlagAddr | FlagAge},
		{Cycle: 20, Proc: 0, Kind: TraceHWCommit, Age: 1, Flags: FlagAge},
		{Cycle: 22, Proc: 1, Kind: TraceUFOSet, Addr: 0, Flags: FlagAddr},
		{Cycle: 25, Proc: 0, Kind: TraceHWBegin, Age: 3, Flags: FlagAge},
		{Cycle: 28, Proc: 0, Kind: TraceUFOFault, Addr: 0x200, Flags: FlagAddr},
		{Cycle: 30, Proc: 0, Kind: TraceHWAbort, Reason: AbortUFOKill, Addr: 0, Age: 3, Flags: FlagAddr | FlagAge},
		{Cycle: 34, Proc: 1, Kind: TraceSWCommit, Age: 2, Flags: FlagAge},
		{Cycle: 36, Proc: 2, Kind: TraceHWCommit, Age: 4, Flags: FlagAge}, // orphan: begin evicted
		{Cycle: 38, Proc: 1, Kind: TraceHWAbort, Reason: AbortInterrupt, Age: 0, Flags: FlagAge},
		{Cycle: 40, Proc: 2, Kind: TraceHWBegin, Age: 5, Flags: FlagAge}, // left open
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/machine -update-golden` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range goldenEvents() {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Every line must be valid standalone JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
	}
	checkGolden(t, "trace.jsonl.golden", buf.Bytes())
}

func TestChromeSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	for _, e := range goldenEvents() {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// The whole file must be a JSON object with a traceEvents array —
	// the shape Perfetto and about://tracing load.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	// Spans carry ph=X with ts/dur; the open transaction is flushed as
	// truncated at Close.
	var spans, truncated int
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			spans++
			args := e["args"].(map[string]any)
			if args["outcome"] == "truncated" {
				truncated++
			}
		}
	}
	// Spans: p0 commit, p0 abort, p1 sw commit, p2 truncated-at-close;
	// the orphaned commit and the orphaned abort become instants.
	if spans != 4 || truncated != 1 {
		t.Fatalf("spans=%d truncated=%d, want 4/1", spans, truncated)
	}
	checkGolden(t, "trace.chrome.golden.json", buf.Bytes())
}

// TestChromeSinkTxSpans: tx-begin/tx-commit lifecycle events become
// enclosing "tx" spans carrying the committing path, the attempt count,
// and per-reason abort counts; a tx left open at Close flushes as
// truncated.
func TestChromeSinkTxSpans(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 5, Proc: 0, Kind: TraceTxBegin},
		{Cycle: 6, Proc: 0, Kind: TraceHWBegin, Age: 1, Flags: FlagAge},
		{Cycle: 14, Proc: 0, Kind: TraceHWAbort, Reason: AbortConflict, Age: 1, Flags: FlagAge},
		{Cycle: 20, Proc: 0, Kind: TraceHWBegin, Age: 2, Flags: FlagAge},
		{Cycle: 30, Proc: 0, Kind: TraceHWCommit, Age: 2, Flags: FlagAge},
		{Cycle: 31, Proc: 0, Kind: TraceTxCommit, Age: uint64(PathHTM), Flags: FlagPath},
		{Cycle: 40, Proc: 1, Kind: TraceTxBegin}, // left open: truncated at Close
	}
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, truncated int
	for _, e := range doc.TraceEvents {
		if e["name"] != "tx" || e["ph"] != "X" {
			continue
		}
		args := e["args"].(map[string]any)
		if args["path"] == "truncated" {
			truncated++
			continue
		}
		spans++
		if args["path"] != "htm" {
			t.Errorf("tx span path = %v, want htm", args["path"])
		}
		if args["attempts"] != float64(2) {
			t.Errorf("tx span attempts = %v, want 2", args["attempts"])
		}
		aborts, ok := args["aborts"].(map[string]any)
		if !ok || aborts["conflict"] != float64(1) {
			t.Errorf("tx span aborts = %v, want conflict:1", args["aborts"])
		}
		if e["ts"] != float64(5) || e["dur"] != float64(26) {
			t.Errorf("tx span ts/dur = %v/%v, want 5/26", e["ts"], e["dur"])
		}
	}
	if spans != 1 || truncated != 1 {
		t.Fatalf("tx spans=%d truncated=%d, want 1/1\n%s", spans, truncated, buf.String())
	}
}

// TestJSONLSinkTxPath: tx-commit events carry the committing path by
// name (the Age field holds a TxPath when FlagPath is set).
func TestJSONLSinkTxPath(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Event(TraceEvent{Cycle: 31, Proc: 0, Kind: TraceTxCommit, Age: uint64(PathUFO), Flags: FlagPath})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"tx-commit"`) || !strings.Contains(buf.String(), `"path":"ufo"`) {
		t.Fatalf("JSONL tx-commit missing path: %q", buf.String())
	}
}

// TestMachineTxLifeSpansInTrace: a real run through the TxLife hooks
// lands tx-begin/tx-commit events in the ring alongside the hardware
// attempt events, without advancing the simulated clock.
func TestMachineTxLifeSpansInTrace(t *testing.T) {
	m := New(testParams(1))
	tr := m.EnableTrace(100)
	m.Run([]func(*Proc){func(p *Proc) {
		p.TxLifeBegin()
		p.TxLifeAttempt(PathHTM)
		p.BeginHW(m.NextAge(), true)
		p.TxWrite(64, 1)
		p.CommitHW()
		p.TxLifeCommit(PathHTM)
	}})
	var begin, commit *TraceEvent
	for i, e := range tr.Events() {
		switch e.Kind {
		case TraceTxBegin:
			begin = &tr.Events()[i]
		case TraceTxCommit:
			commit = &tr.Events()[i]
		}
	}
	if begin == nil || commit == nil {
		t.Fatalf("trace missing tx lifecycle events:\n%v", tr.Events())
	}
	if !commit.HasPath() || TxPath(commit.Age) != PathHTM {
		t.Errorf("tx-commit path = %+v, want htm", commit)
	}
	if commit.Cycle < begin.Cycle {
		t.Errorf("tx span inverted: begin @%d, commit @%d", begin.Cycle, commit.Cycle)
	}
}

func TestTextSinkMatchesDump(t *testing.T) {
	var viaSink, viaDump bytes.Buffer
	sink := NewTextSink(&viaSink)
	tr := &Trace{limit: 1 << 20}
	for _, e := range goldenEvents() {
		sink.Event(e)
		tr.add(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Dump(&viaDump)
	if viaSink.String() != viaDump.String() {
		t.Errorf("TextSink and Trace.Dump disagree:\n%s\nvs\n%s", viaSink.String(), viaDump.String())
	}
}

// TestTraceEventZeroAddrAndAge is the regression for the String()
// suppression bug: an abort at address 0 and an age-0 transaction are
// real values and must render, while genuinely unset fields must not.
func TestTraceEventZeroAddrAndAge(t *testing.T) {
	withZeros := TraceEvent{Cycle: 5, Proc: 0, Kind: TraceHWAbort, Reason: AbortUFOKill,
		Addr: 0, Age: 0, Flags: FlagAddr | FlagAge}
	s := withZeros.String()
	if !strings.Contains(s, "addr=0x0") || !strings.Contains(s, "age=0") {
		t.Errorf("zero-valued set fields suppressed: %q", s)
	}
	unset := TraceEvent{Cycle: 5, Proc: 0, Kind: TraceHWAbort, Reason: AbortInterrupt}
	s = unset.String()
	if strings.Contains(s, "addr=") || strings.Contains(s, "age=") {
		t.Errorf("unset fields rendered: %q", s)
	}

	var jl bytes.Buffer
	sink := NewJSONLSink(&jl)
	sink.Event(withZeros)
	sink.Event(unset)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if !strings.Contains(lines[0], `"addr":"0x0"`) || !strings.Contains(lines[0], `"age":0`) {
		t.Errorf("JSONL suppressed zero-valued set fields: %q", lines[0])
	}
	if strings.Contains(lines[1], `"addr"`) || strings.Contains(lines[1], `"age"`) {
		t.Errorf("JSONL rendered unset fields: %q", lines[1])
	}
}

// TestMachineRecordsFlags checks the machine sets TraceFlags correctly on
// real runs: an abort caused by a conflict at line-0 addresses carries
// addr 0 with FlagAddr set.
func TestMachineRecordsFlags(t *testing.T) {
	m := New(testParams(2))
	tr := m.EnableTrace(100)
	m.Run([]func(*Proc){
		func(p *Proc) {
			p.BeginHW(m.NextAge(), true)
			p.TxWrite(0, 1) // line 0: a real zero address
			p.Elapse(500)
			if p.HW() != nil {
				p.CommitHW()
			}
		},
		func(p *Proc) {
			p.Elapse(100) // let proc 0 claim line 0 first
			p.NTWrite(0, 2)
			p.Elapse(1000)
		},
	})
	var sawAbortAt0 bool
	for _, e := range tr.Events() {
		switch e.Kind {
		case TraceHWBegin, TraceHWCommit:
			if !e.HasAge() || e.HasAddr() {
				t.Errorf("%s flags = %b", e.Kind, e.Flags)
			}
		case TraceHWAbort:
			if e.HasAddr() && e.Addr == 0 {
				sawAbortAt0 = true
			}
		}
	}
	if !sawAbortAt0 {
		t.Errorf("no abort carrying address 0 recorded; events:\n%v", tr.Events())
	}
}

// TestStreamingSinkMatchesExport: events streamed live via AddTraceSink
// must equal the ring replayed through Trace.Export when nothing was
// evicted.
func TestStreamingSinkMatchesExport(t *testing.T) {
	var live bytes.Buffer
	m := New(testParams(1))
	tr := m.EnableTrace(1 << 16)
	m.AddTraceSink(NewJSONLSink(&live))
	m.Run([]func(*Proc){func(p *Proc) {
		p.BeginHW(m.NextAge(), true)
		p.TxWrite(64, 7)
		p.CommitHW()
		p.SetUFOEnabled(false)
		p.SetUFO(64, mem.UFOFaultAll)
		p.SetUFOEnabled(true)
		p.NTRead(64)
	}})
	// Flush the live sink (the machine never closes sinks itself).
	for _, s := range m.sinks {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var replay bytes.Buffer
	if err := tr.Export(NewJSONLSink(&replay)); err != nil {
		t.Fatal(err)
	}
	if live.String() != replay.String() {
		t.Errorf("streamed and exported traces differ:\n%s\nvs\n%s", live.String(), replay.String())
	}
	if !strings.Contains(live.String(), "ufo-fault") {
		t.Errorf("trace missing ufo-fault:\n%s", live.String())
	}
}
