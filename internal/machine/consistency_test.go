package machine

import (
	"testing"

	"repro/internal/mem"
)

func TestConsistencyAfterRandomStress(t *testing.T) {
	params := testParams(4)
	params.L1Bytes = 2 * 1024 // small: plenty of evictions
	params.L1Ways = 2
	m := New(params)
	var ws []func(*Proc)
	for i := 0; i < 4; i++ {
		ws = append(ws, func(p *Proc) {
			r := p.Rand()
			for n := 0; n < 400; n++ {
				addr := uint64(r.Intn(64)) * 64
				switch r.Intn(6) {
				case 0, 1:
					if p.HW() == nil {
						p.NTRead(addr)
					}
				case 2:
					if p.HW() == nil {
						p.NTWrite(addr, uint64(n))
					}
				case 3:
					if p.HW() == nil {
						p.BeginHW(p.Machine().NextAge(), true)
					}
					if out := p.TxWrite(addr, uint64(n)); out.Kind == OK {
						if r.Intn(3) == 0 {
							p.CommitHW()
						}
					}
					// Aborted/nacked transactions are cleaned up below.
				case 4:
					if p.HW() != nil {
						p.AbortHW(AbortExplicit)
					}
				case 5:
					if p.HW() == nil {
						p.SetUFOEnabled(false)
						p.SetUFO(addr, mem.UFOBits(r.Intn(4)))
						p.SetUFOEnabled(true)
					}
				}
				if p.HW() != nil && r.Intn(4) == 0 {
					switch p.CommitHW().Kind {
					case OK, HWAborted:
					}
				}
				if n%50 == 0 {
					if err := p.Machine().CheckConsistency(); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if p.HW() != nil {
				p.AbortHW(AbortExplicit)
			}
		})
	}
	m.Run(ws)
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyAfterMixedTMRun(t *testing.T) {
	// The conformance workloads exercise the machine through TM systems;
	// here just re-validate invariants post-run at machine level.
	m := New(testParams(2))
	m.Run([]func(*Proc){
		func(p *Proc) {
			for n := 0; n < 100; n++ {
				p.BeginHW(m.NextAge(), true)
				out := p.TxWrite(uint64(n%8)*64, uint64(n))
				if out.Kind == OK && p.HW() != nil {
					p.CommitHW()
				}
			}
		},
		func(p *Proc) {
			for n := 0; n < 100; n++ {
				p.NTWrite(uint64(n%8)*64, uint64(n))
			}
		},
	})
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
