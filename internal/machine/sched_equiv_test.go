package machine

import (
	"fmt"
	"testing"
)

// schedParams enumerates the scheduler configurations every machine-level
// differential test must agree across: the fast run-ahead path, the
// reference scheduler (the executable specification, DESIGN.md §12), and
// the windowed-parallel scheduler (DESIGN.md §14) at several window
// widths, including widths chosen to land window boundaries mid-
// transaction.
func schedParams(base Params) map[string]Params {
	mk := func(ref, par bool, window uint64) Params {
		p := base
		p.ReferenceScheduler = ref
		p.ParallelScheduler = par
		p.WindowCycles = window
		return p
	}
	return map[string]Params{
		"fast":         mk(false, false, 0),
		"reference":    mk(true, false, 0),
		"parallel":     mk(false, true, 0),
		"parallel-w64": mk(false, true, 64),
		"parallel-w1k": mk(false, true, 1000),
	}
}

// TestReferenceSchedulerBitIdentical runs a contended transactional
// workload under the fast-path, reference (Params.ReferenceScheduler),
// and windowed-parallel (Params.ParallelScheduler) schedulers and
// requires bit-identical simulated results: final cycle count, per-proc
// clocks, event counters, and committed memory. This is the
// machine-level differential test pinning both production schedulers to
// the specification.
//
// The workload draws from the machine's shared Rand, so each iteration
// brackets itself with BeginOrdered/EndOrdered — a no-op under the
// serial schedulers, and exactly what keeps the draw order schedule-
// deterministic under the parallel one.
func TestReferenceSchedulerBitIdentical(t *testing.T) {
	const procs = 4

	run := func(params Params) *Machine {
		params.Quantum = 500
		m := New(params)
		ws := make([]func(*Proc), procs)
		for i := 0; i < procs; i++ {
			ws[i] = func(p *Proc) {
				r := p.Machine().Rand
				for iter := 0; iter < 40; iter++ {
					p.BeginOrdered(0)
					addr := uint64(r.Intn(16)) * 64 // 16 hot lines
					p.BeginHW(p.Machine().NextAge(), true)
					_, out := p.TxRead(addr)
					if out.Kind == OK {
						out = p.TxWrite(addr, uint64(iter+1))
					}
					if p.HW() != nil {
						p.CommitHW()
					}
					pause := uint64(r.Intn(30))
					p.EndOrdered()
					p.Elapse(pause)
				}
			}
		}
		m.Run(ws)
		return m
	}

	base := testParams(procs)
	ref := run(schedParams(base)["reference"])
	for name, params := range schedParams(base) {
		if name == "reference" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			got := run(params)
			if got.Cycles() != ref.Cycles() {
				t.Errorf("total cycles: %s %d, reference %d", name, got.Cycles(), ref.Cycles())
			}
			for i := 0; i < procs; i++ {
				gn, rn := got.Proc(i).Now(), ref.Proc(i).Now()
				if gn != rn {
					t.Errorf("proc %d clock: %s %d, reference %d", i, name, gn, rn)
				}
			}
			if got.Count != ref.Count {
				t.Errorf("counters diverge:\n%-9s %+v\nreference %+v", name, got.Count, ref.Count)
			}
			for line := uint64(0); line < 16; line++ {
				addr := line * 64
				gv, rv := got.Mem.Read64(addr), ref.Mem.Read64(addr)
				if gv != rv {
					t.Errorf("mem[%#x]: %s %d, reference %d", addr, name, gv, rv)
				}
			}
		})
	}
}

// TestParallelSchedulerRepeatable re-runs the same parallel-mode workload
// several times: host goroutine scheduling varies between runs, the
// simulated outcome must not.
func TestParallelSchedulerRepeatable(t *testing.T) {
	run := func() string {
		params := testParams(3)
		params.ParallelScheduler = true
		params.WindowCycles = 256
		m := New(params)
		ws := make([]func(*Proc), 3)
		for i := 0; i < 3; i++ {
			ws[i] = func(p *Proc) {
				for iter := 0; iter < 25; iter++ {
					p.BeginOrdered(0)
					p.BeginHW(p.Machine().NextAge(), true)
					_, out := p.TxRead(uint64(iter%4) * 64)
					if out.Kind == OK {
						p.TxWrite(uint64(iter%4)*64, uint64(p.ID()*100+iter))
					}
					if p.HW() != nil {
						p.CommitHW()
					}
					p.EndOrdered()
					p.Elapse(uint64(7 * (p.ID() + 1)))
				}
			}
		}
		m.Run(ws)
		img := ""
		for line := uint64(0); line < 4; line++ {
			img += fmt.Sprintf("%d:%d ", line, m.Mem.Read64(line*64))
		}
		return fmt.Sprintf("cycles=%d count=%+v mem=%s", m.Cycles(), m.Count, img)
	}
	want := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d diverged:\ngot  %s\nwant %s", i, got, want)
		}
	}
}

// TestParallelSchedulerProcsLimit pins the Params validation added with
// the 256-processor directory: a machine beyond cache.MaxProcs must be
// rejected, and both schedulers cannot be selected at once.
func TestParallelSchedulerProcsLimit(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("procs over limit", func() {
		New(testParams(257))
	})
	expectPanic("both schedulers", func() {
		p := testParams(2)
		p.ReferenceScheduler = true
		p.ParallelScheduler = true
		New(p)
	})
}
