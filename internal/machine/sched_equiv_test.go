package machine

import (
	"testing"
)

// TestReferenceSchedulerBitIdentical runs a contended transactional
// workload under both the fast-path and reference schedulers
// (Params.ReferenceScheduler) and requires bit-identical simulated
// results: final cycle count, per-proc clocks, event counters, and
// committed memory. This is the machine-level differential test pinning
// the run-ahead scheduler (DESIGN.md §12) to the specification.
func TestReferenceSchedulerBitIdentical(t *testing.T) {
	const procs = 4

	run := func(reference bool) *Machine {
		params := testParams(procs)
		params.Quantum = 500
		params.ReferenceScheduler = reference
		m := New(params)
		ws := make([]func(*Proc), procs)
		for i := 0; i < procs; i++ {
			ws[i] = func(p *Proc) {
				r := p.Machine().Rand
				for iter := 0; iter < 40; iter++ {
					addr := uint64(r.Intn(16)) * 64 // 16 hot lines
					p.BeginHW(p.Machine().NextAge(), true)
					_, out := p.TxRead(addr)
					if out.Kind == OK {
						out = p.TxWrite(addr, uint64(iter+1))
					}
					if p.HW() != nil {
						p.CommitHW()
					}
					p.Elapse(uint64(r.Intn(30)))
				}
			}
		}
		m.Run(ws)
		return m
	}

	fast, ref := run(false), run(true)

	if fast.Cycles() != ref.Cycles() {
		t.Errorf("total cycles: fast %d, reference %d", fast.Cycles(), ref.Cycles())
	}
	for i := 0; i < procs; i++ {
		fn, rn := fast.Proc(i).Now(), ref.Proc(i).Now()
		if fn != rn {
			t.Errorf("proc %d clock: fast %d, reference %d", i, fn, rn)
		}
	}
	if fast.Count != ref.Count {
		t.Errorf("counters diverge:\nfast      %+v\nreference %+v", fast.Count, ref.Count)
	}
	for line := uint64(0); line < 16; line++ {
		addr := line * 64
		fv, rv := fast.Mem.Read64(addr), ref.Mem.Read64(addr)
		if fv != rv {
			t.Errorf("mem[%#x]: fast %d, reference %d", addr, fv, rv)
		}
	}
}
