package txlib_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/txlib"
	"repro/internal/ustm"
)

// ExampleTree builds a map in simulated memory and uses it both during
// setup (via the zero-cost Direct accessor) and inside a transaction.
func ExampleTree() {
	m := machine.New(machine.DefaultParams(1))
	sys := core.New(m, ustm.DefaultConfig(), core.DefaultPolicy())
	arena := txlib.NewArena(m, nil, 1<<16)
	d := txlib.Direct{M: m}

	tree := txlib.NewTree(d, arena)
	for _, k := range []uint64{30, 10, 20} {
		tree.Insert(d, arena, k, k*k)
	}

	ex := sys.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			if v, ok := tree.Get(tx, 20); ok {
				tree.Set(tx, arena, 40, v+1)
			}
		})
	}})

	v, _ := tree.Get(d, 40)
	fmt.Printf("len=%d tree[40]=%d\n", tree.Len(d), v)
	// Output: len=4 tree[40]=401
}

// ExampleQueue moves values through a transactional bounded queue.
func ExampleQueue() {
	m := machine.New(machine.DefaultParams(2))
	sys := core.New(m, ustm.DefaultConfig(), core.DefaultPolicy())
	arena := txlib.NewArena(m, nil, 1<<12)
	q := txlib.NewQueue(txlib.Direct{M: m}, arena, 2)

	ex0, ex1 := sys.Exec(m.Proc(0)), sys.Exec(m.Proc(1))
	var sum uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			for v := uint64(1); v <= 5; v++ {
				val := v
				ex0.Atomic(func(tx tm.Tx) { q.Push(tx, val) }) // waits when full
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 5; i++ {
				var v uint64
				ex1.Atomic(func(tx tm.Tx) { v = q.Pop(tx) }) // waits when empty
				sum += v
			}
		},
	})
	fmt.Println("sum:", sum)
	// Output: sum: 15
}
