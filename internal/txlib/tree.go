package txlib

// Tree is an unbalanced binary search tree mapping uint64 keys to uint64
// values — the stand-in for STAMP's red-black trees in vacation (with
// randomized insertion order the expected depth is O(log n), preserving
// the paper-relevant property: per-operation transactional footprints of
// a few dozen lines). Node layout (one line per node):
//
//	word 0: key
//	word 1: value
//	word 2: left-child address
//	word 3: right-child address
//
// The root pointer lives in its own cell so that root changes are
// transactional like any other link update.
type Tree struct {
	rootCell uint64 // address of the cell holding the root node address
}

const (
	treeKey   = 0
	treeVal   = 8
	treeLeft  = 16
	treeRight = 24
)

// NewTree allocates an empty tree.
func NewTree(via Mem, a *Arena) Tree {
	cell := a.Alloc(8)
	via.Store(cell, 0)
	return Tree{rootCell: cell}
}

// TreeAt adopts an existing tree by its root-cell address.
func TreeAt(rootCell uint64) Tree { return Tree{rootCell: rootCell} }

// RootCell returns the root-cell address (for embedding).
func (t Tree) RootCell() uint64 { return t.rootCell }

// Insert adds key→val; it returns false if key exists.
func (t Tree) Insert(via Mem, a *Arena, key, val uint64) bool {
	cell := t.rootCell
	for {
		n := via.Load(cell)
		if n == 0 {
			node := a.Alloc(32)
			via.Store(node+treeKey, key)
			via.Store(node+treeVal, val)
			via.Store(node+treeLeft, 0)
			via.Store(node+treeRight, 0)
			via.Store(cell, node)
			return true
		}
		k := via.Load(n + treeKey)
		switch {
		case key == k:
			return false
		case key < k:
			cell = n + treeLeft
		default:
			cell = n + treeRight
		}
	}
}

// Get returns the value for key.
func (t Tree) Get(via Mem, key uint64) (uint64, bool) {
	n := via.Load(t.rootCell)
	for n != 0 {
		k := via.Load(n + treeKey)
		switch {
		case key == k:
			return via.Load(n + treeVal), true
		case key < k:
			n = via.Load(n + treeLeft)
		default:
			n = via.Load(n + treeRight)
		}
	}
	return 0, false
}

// Set updates the value for an existing key, or inserts it.
func (t Tree) Set(via Mem, a *Arena, key, val uint64) {
	cell := t.rootCell
	for {
		n := via.Load(cell)
		if n == 0 {
			t.insertAt(via, a, cell, key, val)
			return
		}
		k := via.Load(n + treeKey)
		switch {
		case key == k:
			via.Store(n+treeVal, val)
			return
		case key < k:
			cell = n + treeLeft
		default:
			cell = n + treeRight
		}
	}
}

func (t Tree) insertAt(via Mem, a *Arena, cell, key, val uint64) {
	node := a.Alloc(32)
	via.Store(node+treeKey, key)
	via.Store(node+treeVal, val)
	via.Store(node+treeLeft, 0)
	via.Store(node+treeRight, 0)
	via.Store(cell, node)
}

// Delete removes key, reporting whether it was present. Two-child nodes
// are replaced by their in-order successor, as in the textbook algorithm.
func (t Tree) Delete(via Mem, key uint64) bool {
	cell := t.rootCell
	for {
		n := via.Load(cell)
		if n == 0 {
			return false
		}
		k := via.Load(n + treeKey)
		switch {
		case key < k:
			cell = n + treeLeft
		case key > k:
			cell = n + treeRight
		default:
			t.unlink(via, cell, n)
			return true
		}
	}
}

func (t Tree) unlink(via Mem, cell, n uint64) {
	left := via.Load(n + treeLeft)
	right := via.Load(n + treeRight)
	switch {
	case left == 0:
		via.Store(cell, right)
	case right == 0:
		via.Store(cell, left)
	default:
		// Find the in-order successor (leftmost of the right subtree),
		// splice it out, and move its payload into n.
		scell := n + treeRight
		s := via.Load(scell)
		for {
			l := via.Load(s + treeLeft)
			if l == 0 {
				break
			}
			scell = s + treeLeft
			s = l
		}
		via.Store(n+treeKey, via.Load(s+treeKey))
		via.Store(n+treeVal, via.Load(s+treeVal))
		via.Store(scell, via.Load(s+treeRight))
	}
}

// Scan visits pairs with key >= lo in ascending key order, passing each
// node's key, value, and node address to f, and stops when f returns
// false. It returns the number of pairs visited. Unlike ForEach it is
// meant to run inside transactions: the visit is bounded by f, so the
// transactional footprint is the root-to-lo path plus the visited nodes
// — the range-scan shape OLTP workloads need.
func (t Tree) Scan(via Mem, lo uint64, f func(key, val, node uint64) bool) int {
	visited := 0
	more := true
	t.scan(via, via.Load(t.rootCell), lo, f, &visited, &more)
	return visited
}

func (t Tree) scan(via Mem, n, lo uint64, f func(key, val, node uint64) bool, visited *int, more *bool) {
	if n == 0 || !*more {
		return
	}
	k := via.Load(n + treeKey)
	if k >= lo {
		// Left subtree can still hold keys >= lo.
		t.scan(via, via.Load(n+treeLeft), lo, f, visited, more)
		if !*more {
			return
		}
		*visited++
		if !f(k, via.Load(n+treeVal), n) {
			*more = false
			return
		}
	}
	t.scan(via, via.Load(n+treeRight), lo, f, visited, more)
}

// Max returns the largest key.
func (t Tree) Max(via Mem) (key, val uint64, ok bool) {
	n := via.Load(t.rootCell)
	if n == 0 {
		return 0, 0, false
	}
	for {
		r := via.Load(n + treeRight)
		if r == 0 {
			return via.Load(n + treeKey), via.Load(n + treeVal), true
		}
		n = r
	}
}

// Len counts nodes (validation only).
func (t Tree) Len(via Mem) int {
	return t.count(via, via.Load(t.rootCell))
}

func (t Tree) count(via Mem, n uint64) int {
	if n == 0 {
		return 0
	}
	return 1 + t.count(via, via.Load(n+treeLeft)) + t.count(via, via.Load(n+treeRight))
}

// Depth returns the tree height (validation/diagnostics).
func (t Tree) Depth(via Mem) int {
	return t.depth(via, via.Load(t.rootCell))
}

func (t Tree) depth(via Mem, n uint64) int {
	if n == 0 {
		return 0
	}
	l := t.depth(via, via.Load(n+treeLeft))
	r := t.depth(via, via.Load(n+treeRight))
	if l > r {
		return l + 1
	}
	return r + 1
}

// ForEach visits every pair in key order (validation only; recursive).
func (t Tree) ForEach(via Mem, f func(key, val uint64)) {
	t.walk(via, via.Load(t.rootCell), f)
}

func (t Tree) walk(via Mem, n uint64, f func(key, val uint64)) {
	if n == 0 {
		return
	}
	t.walk(via, via.Load(n+treeLeft), f)
	f(via.Load(n+treeKey), via.Load(n+treeVal))
	t.walk(via, via.Load(n+treeRight), f)
}
