package txlib

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func queueMachine(procs int) (*machine.Machine, *core.System) {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 20_000_000
	m := machine.New(p)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	return m, core.New(m, cfg, core.DefaultPolicy())
}

func TestQueueFIFOSingleThread(t *testing.T) {
	m, sys := queueMachine(1)
	a := NewArena(m, nil, 1<<12)
	d := Direct{M: m}
	q := NewQueue(d, a, 4)
	ex := sys.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			for i := uint64(1); i <= 3; i++ {
				q.Push(tx, i*10)
			}
		})
		if q.Len(d) != 3 {
			t.Errorf("Len = %d", q.Len(d))
		}
		var out []uint64
		ex.Atomic(func(tx tm.Tx) {
			out = out[:0] // idempotent across re-execution
			for i := 0; i < 3; i++ {
				out = append(out, q.Pop(tx))
			}
		})
		if len(out) != 3 || out[0] != 10 || out[1] != 20 || out[2] != 30 {
			t.Errorf("popped %v", out)
		}
	}})
}

func TestQueueTryOps(t *testing.T) {
	m, sys := queueMachine(1)
	a := NewArena(m, nil, 1<<12)
	q := NewQueue(Direct{M: m}, a, 2)
	ex := sys.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			if _, ok := q.TryPop(tx); ok {
				t.Error("TryPop on empty succeeded")
			}
			if !q.TryPush(tx, 1) || !q.TryPush(tx, 2) {
				t.Error("TryPush failed with room")
			}
			if q.TryPush(tx, 3) {
				t.Error("TryPush on full succeeded")
			}
			if v, ok := q.TryPop(tx); !ok || v != 1 {
				t.Errorf("TryPop = %d/%v", v, ok)
			}
		})
	}})
}

func TestQueueProducerConsumerBlocking(t *testing.T) {
	// A 2-slot queue between one producer and one consumer: both sides
	// must block (transactionally) and every element arrives in order.
	m, sys := queueMachine(2)
	a := NewArena(m, nil, 1<<12)
	q := NewQueue(Direct{M: m}, a, 2)
	const items = 40
	var received []uint64
	ex0, ex1 := sys.Exec(m.Proc(0)), sys.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			for i := uint64(1); i <= items; i++ {
				v := i
				ex0.Atomic(func(tx tm.Tx) { q.Push(tx, v) })
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < items; i++ {
				var v uint64
				ex1.Atomic(func(tx tm.Tx) { v = q.Pop(tx) })
				received = append(received, v)
				p.Elapse(uint64(p.Rand().Intn(200)))
			}
		},
	})
	if len(received) != items {
		t.Fatalf("received %d items", len(received))
	}
	for i, v := range received {
		if v != uint64(i+1) {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	if sys.Stats().Retries == 0 {
		t.Fatal("expected transactional waiting on the tiny queue")
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	m, _ := queueMachine(1)
	a := NewArena(m, nil, 1<<12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(Direct{M: m}, a, 0)
}
