package txlib

import (
	"fmt"

	"repro/internal/mem"
)

// Hash is a fixed-size chained hash map from uint64 keys to uint64
// values. Buckets are line-spaced so bucket heads never share a line
// (avoiding false conflicts between unrelated keys), and chain nodes
// reuse the List node layout. genome's segment-deduplication phase and
// its probe phase run on this structure.
type Hash struct {
	buckets uint64 // base address of the bucket array
	n       uint64 // bucket count (power of two)
}

// NewHash allocates a hash with n buckets (power of two).
func NewHash(via Mem, a *Arena, n uint64) Hash {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("txlib: hash buckets %d must be a power of two", n))
	}
	base := a.Alloc(n * mem.LineBytes)
	for i := uint64(0); i < n; i++ {
		via.Store(base+i*mem.LineBytes, 0)
	}
	return Hash{buckets: base, n: n}
}

func (h Hash) bucketAddr(key uint64) uint64 {
	idx := (key * 0x9E3779B97F4A7C15 >> 13) & (h.n - 1)
	return h.buckets + idx*mem.LineBytes
}

// Insert adds key→val; it returns false if key is already present.
func (h Hash) Insert(via Mem, a *Arena, key, val uint64) bool {
	b := h.bucketAddr(key)
	n := via.Load(b)
	for p := n; p != 0; p = via.Load(p + nodeNext) {
		if via.Load(p+nodeKey) == key {
			return false
		}
	}
	node := a.Alloc(24)
	via.Store(node+nodeKey, key)
	via.Store(node+nodeVal, val)
	via.Store(node+nodeNext, n)
	via.Store(b, node)
	return true
}

// Get returns the value for key.
func (h Hash) Get(via Mem, key uint64) (uint64, bool) {
	for p := via.Load(h.bucketAddr(key)); p != 0; p = via.Load(p + nodeNext) {
		if via.Load(p+nodeKey) == key {
			return via.Load(p + nodeVal), true
		}
	}
	return 0, false
}

// Contains reports key membership.
func (h Hash) Contains(via Mem, key uint64) bool {
	_, ok := h.Get(via, key)
	return ok
}

// Remove deletes key, reporting whether it was present.
func (h Hash) Remove(via Mem, key uint64) bool {
	b := h.bucketAddr(key)
	prev := uint64(0)
	for p := via.Load(b); p != 0; p = via.Load(p + nodeNext) {
		if via.Load(p+nodeKey) == key {
			next := via.Load(p + nodeNext)
			if prev == 0 {
				via.Store(b, next)
			} else {
				via.Store(prev+nodeNext, next)
			}
			return true
		}
		prev = p
	}
	return false
}

// Len counts entries (validation only).
func (h Hash) Len(via Mem) int {
	count := 0
	for i := uint64(0); i < h.n; i++ {
		for p := via.Load(h.buckets + i*mem.LineBytes); p != 0; p = via.Load(p + nodeNext) {
			count++
		}
	}
	return count
}
