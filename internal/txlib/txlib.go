// Package txlib provides an allocator and pointer-based data structures
// (sorted linked list, hash set, binary search tree) that live entirely in
// simulated memory and perform every access through a generic accessor —
// so the same structure code runs inside any TM system's transactions,
// non-transactionally, or during workload setup.
//
// Nodes are line-aligned: with cache-line-granularity conflict detection,
// packing multiple nodes per line would create false conflicts that STAMP's
// allocator avoids in practice.
//
// Paper: §5.2 (the STAMP workloads these structures serve) and §6
// (transactional data-structure composition).
package txlib

import (
	"repro/internal/machine"
	"repro/internal/mem"
)

// Mem is the minimal accessor the structures need. Both tm.Tx and tm.Exec
// satisfy it, as does Direct (zero-cost setup access).
type Mem interface {
	Load(addr uint64) uint64
	Store(addr, val uint64)
}

// Direct accesses simulated memory with no timing or protection checks;
// use it only for pre-run setup and post-run validation.
type Direct struct{ M *machine.Machine }

var _ Mem = Direct{}

// Load implements Mem.
func (d Direct) Load(addr uint64) uint64 { return d.M.Mem.Read64(addr) }

// Store implements Mem.
func (d Direct) Store(addr, val uint64) { d.M.Mem.Write64(addr, val) }

// Arena is a per-thread bump allocator over reserved regions. Because
// each thread allocates from its own arena, in-transaction allocation
// needs no shared state — mirroring a freelist-based malloc that almost
// never reaches the sbrk syscall. Memory allocated by aborted
// transactions is leaked, as in any eager-versioning TM without
// compensation, so arenas grow (reserving a fresh chunk) when exhausted.
type Arena struct {
	m    *machine.Machine
	base uint64
	off  uint64
	size uint64
	p    *machine.Proc // charged for allocation work; nil for setup arenas
}

// AllocCycles is the charged cost of one in-simulation allocation.
const AllocCycles = 8

// NewArena reserves size bytes of simulated memory. p may be nil for
// setup-time arenas (no cycles charged).
func NewArena(m *machine.Machine, p *machine.Proc, size uint64) *Arena {
	if size < mem.LineBytes {
		size = mem.LineBytes
	}
	return &Arena{m: m, base: m.Mem.Sbrk(size), size: size, p: p}
}

// Alloc returns a line-aligned block of at least bytes bytes.
func (a *Arena) Alloc(bytes uint64) uint64 {
	bytes = (bytes + mem.LineBytes - 1) / mem.LineBytes * mem.LineBytes
	if a.off+bytes > a.size {
		// Refill: reserve a fresh chunk (at least doubling, so refills
		// stay rare and cheap like a real allocator's).
		chunk := a.size
		if chunk < bytes {
			chunk = bytes
		}
		a.base = a.m.Mem.Sbrk(chunk)
		a.size = chunk
		a.off = 0
	}
	addr := a.base + a.off
	a.off += bytes
	if a.p != nil {
		a.p.Elapse(AllocCycles)
	}
	return addr
}

// Remaining reports unallocated bytes in the current chunk.
func (a *Arena) Remaining() uint64 { return a.size - a.off }
