package txlib

// List is a sorted singly-linked list of (key, value) pairs with a
// sentinel head node. Node layout (one line per node):
//
//	word 0: key
//	word 1: value
//	word 2: next-node address (0 = end)
//
// Insertion keeps keys strictly increasing; duplicate keys are rejected.
// This is the structure behind genome's high-contention sorted-insertion
// phase and vacation's per-customer reservation lists.
type List struct {
	head uint64 // sentinel node address
}

const (
	nodeKey  = 0
	nodeVal  = 8
	nodeNext = 16
)

// NewList allocates an empty list.
func NewList(via Mem, a *Arena) List {
	head := a.Alloc(24)
	via.Store(head+nodeNext, 0)
	return List{head: head}
}

// ListAt adopts an existing list by its sentinel address (for storing
// list handles inside other structures).
func ListAt(head uint64) List { return List{head: head} }

// Head returns the sentinel address.
func (l List) Head() uint64 { return l.head }

// Insert adds key→val in sorted position; it returns false (and leaves
// the list unchanged) if key is already present.
func (l List) Insert(via Mem, a *Arena, key, val uint64) bool {
	prev := l.head
	next := via.Load(prev + nodeNext)
	for next != 0 {
		k := via.Load(next + nodeKey)
		if k == key {
			return false
		}
		if k > key {
			break
		}
		prev = next
		next = via.Load(next + nodeNext)
	}
	n := a.Alloc(24)
	via.Store(n+nodeKey, key)
	via.Store(n+nodeVal, val)
	via.Store(n+nodeNext, next)
	via.Store(prev+nodeNext, n)
	return true
}

// Lookup returns the value for key.
func (l List) Lookup(via Mem, key uint64) (uint64, bool) {
	n := via.Load(l.head + nodeNext)
	for n != 0 {
		k := via.Load(n + nodeKey)
		if k == key {
			return via.Load(n + nodeVal), true
		}
		if k > key {
			return 0, false
		}
		n = via.Load(n + nodeNext)
	}
	return 0, false
}

// Remove deletes key, reporting whether it was present.
func (l List) Remove(via Mem, key uint64) bool {
	prev := l.head
	n := via.Load(prev + nodeNext)
	for n != 0 {
		k := via.Load(n + nodeKey)
		if k == key {
			via.Store(prev+nodeNext, via.Load(n+nodeNext))
			return true
		}
		if k > key {
			return false
		}
		prev = n
		n = via.Load(n + nodeNext)
	}
	return false
}

// Len counts elements (O(n); intended for setup and validation).
func (l List) Len(via Mem) int {
	count := 0
	for n := via.Load(l.head + nodeNext); n != 0; n = via.Load(n + nodeNext) {
		count++
	}
	return count
}

// Keys returns all keys in order (for validation).
func (l List) Keys(via Mem) []uint64 {
	var keys []uint64
	for n := via.Load(l.head + nodeNext); n != 0; n = via.Load(n + nodeNext) {
		keys = append(keys, via.Load(n+nodeKey))
	}
	return keys
}

// ForEach visits every (key, value) pair in order.
func (l List) ForEach(via Mem, f func(key, val uint64)) {
	for n := via.Load(l.head + nodeNext); n != 0; n = via.Load(n + nodeNext) {
		f(via.Load(n+nodeKey), via.Load(n+nodeVal))
	}
}
