package txlib

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func benchSetup(b *testing.B) (Direct, *Arena) {
	p := machine.DefaultParams(1)
	p.MemBytes = 1 << 26
	m := machine.New(p)
	return Direct{M: m}, NewArena(m, nil, 1<<24)
}

func BenchmarkTreeGet(b *testing.B) {
	d, a := benchSetup(b)
	tr := NewTree(d, a)
	r := sim.NewRand(1)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = r.Uint64()
		tr.Insert(d, a, keys[i], 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(d, keys[i%len(keys)])
	}
}

func BenchmarkHashInsert(b *testing.B) {
	d, a := benchSetup(b)
	h := NewHash(d, a, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(d, a, uint64(i), uint64(i))
	}
}

func BenchmarkListInsertSorted(b *testing.B) {
	d, a := benchSetup(b)
	l := NewList(d, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(d, a, uint64(i), 0) // append at tail: worst-case walk
		if i == 511 {
			b.StopTimer()
			l = NewList(d, a) // bound the walk; keep the bench honest
			b.StartTimer()
		}
	}
}
