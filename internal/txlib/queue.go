package txlib

import (
	"repro/internal/mem"
	"repro/internal/tm"
)

// Queue is a bounded FIFO of uint64 values in simulated memory, designed
// for transactional use with blocking semantics: Push and Pop call
// tm.Tx.Retry when the queue is full or empty, so producers and consumers
// wait by descheduling (Section 6's transactional waiting) rather than
// polling.
//
// Layout: head and tail counters on their own lines (so producers and
// consumers do not false-share), followed by capacity line-sized slots.
type Queue struct {
	head     uint64
	tail     uint64
	slots    uint64
	capacity uint64
}

// NewQueue allocates a queue with the given capacity (in elements).
func NewQueue(via Mem, a *Arena, capacity uint64) Queue {
	if capacity == 0 {
		panic("txlib: queue capacity must be positive")
	}
	q := Queue{
		head:     a.Alloc(mem.LineBytes),
		tail:     a.Alloc(mem.LineBytes),
		slots:    a.Alloc(capacity * mem.LineBytes),
		capacity: capacity,
	}
	via.Store(q.head, 0)
	via.Store(q.tail, 0)
	return q
}

// Cap returns the queue capacity.
func (q Queue) Cap() uint64 { return q.capacity }

// TailAddr exposes the tail counter's address (for zero-cost setup-time
// filling through a Direct accessor).
func (q Queue) TailAddr() uint64 { return q.tail }

// HeadAddr exposes the head counter's address.
func (q Queue) HeadAddr() uint64 { return q.head }

// SlotAddr returns the address of the slot logical index i maps to.
func (q Queue) SlotAddr(i uint64) uint64 {
	return q.slots + i%q.capacity*mem.LineBytes
}

// Len returns the current element count (via any accessor).
func (q Queue) Len(via Mem) uint64 {
	return via.Load(q.tail) - via.Load(q.head)
}

// Push appends v, waiting (transactionally) while the queue is full.
func (q Queue) Push(tx tm.Tx, v uint64) {
	head, tail := tx.Load(q.head), tx.Load(q.tail)
	if tail-head == q.capacity {
		tx.Retry()
	}
	tx.Store(q.slots+tail%q.capacity*mem.LineBytes, v)
	tx.Store(q.tail, tail+1)
}

// Pop removes and returns the oldest element, waiting (transactionally)
// while the queue is empty.
func (q Queue) Pop(tx tm.Tx) uint64 {
	head, tail := tx.Load(q.head), tx.Load(q.tail)
	if head == tail {
		tx.Retry()
	}
	v := tx.Load(q.slots + head%q.capacity*mem.LineBytes)
	tx.Store(q.head, head+1)
	return v
}

// TryPush appends v if there is room, reporting success; it never waits.
func (q Queue) TryPush(tx tm.Tx, v uint64) bool {
	head, tail := tx.Load(q.head), tx.Load(q.tail)
	if tail-head == q.capacity {
		return false
	}
	tx.Store(q.slots+tail%q.capacity*mem.LineBytes, v)
	tx.Store(q.tail, tail+1)
	return true
}

// TryPop removes the oldest element if present; it never waits.
func (q Queue) TryPop(tx tm.Tx) (uint64, bool) {
	head, tail := tx.Load(q.head), tx.Load(q.tail)
	if head == tail {
		return 0, false
	}
	v := tx.Load(q.slots + head%q.capacity*mem.LineBytes)
	tx.Store(q.head, head+1)
	return v, true
}
