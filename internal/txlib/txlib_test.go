package txlib

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

func setup(t *testing.T) (Direct, *Arena) {
	t.Helper()
	p := machine.DefaultParams(1)
	p.MemBytes = 1 << 24
	m := machine.New(p)
	return Direct{M: m}, NewArena(m, nil, 1<<22)
}

func TestArenaLineAlignment(t *testing.T) {
	d, a := setup(t)
	_ = d
	x := a.Alloc(1)
	y := a.Alloc(65)
	if x%64 != 0 || y%64 != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if y-x != 64 {
		t.Fatalf("1-byte alloc consumed %d bytes, want 64", y-x)
	}
}

func TestArenaGrowsWhenExhausted(t *testing.T) {
	p := machine.DefaultParams(1)
	m := machine.New(p)
	a := NewArena(m, nil, 128)
	a.Alloc(64)
	if a.Remaining() != 64 {
		t.Fatalf("Remaining = %d", a.Remaining())
	}
	addrs := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		addr := a.Alloc(128) // forces repeated refills
		if addrs[addr] {
			t.Fatalf("refill returned duplicate address %#x", addr)
		}
		addrs[addr] = true
		m.Mem.Write64(addr, uint64(i))
	}
}

func TestListSortedInsertLookupRemove(t *testing.T) {
	d, a := setup(t)
	l := NewList(d, a)
	keys := []uint64{5, 1, 9, 3, 7}
	for _, k := range keys {
		if !l.Insert(d, a, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if l.Insert(d, a, 5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	got := l.Keys(d)
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if v, ok := l.Lookup(d, 7); !ok || v != 70 {
		t.Fatalf("Lookup(7) = %d/%v", v, ok)
	}
	if _, ok := l.Lookup(d, 8); ok {
		t.Fatal("Lookup(8) found phantom")
	}
	if !l.Remove(d, 3) || l.Remove(d, 3) {
		t.Fatal("Remove misbehaved")
	}
	if l.Len(d) != 4 {
		t.Fatalf("Len = %d", l.Len(d))
	}
}

func TestListForEachOrder(t *testing.T) {
	d, a := setup(t)
	l := NewList(d, a)
	for _, k := range []uint64{4, 2, 8} {
		l.Insert(d, a, k, k)
	}
	var seen []uint64
	l.ForEach(d, func(k, v uint64) { seen = append(seen, k) })
	if len(seen) != 3 || seen[0] != 2 || seen[2] != 8 {
		t.Fatalf("ForEach order %v", seen)
	}
}

func TestListPropertySortedAndComplete(t *testing.T) {
	d, a := setup(t)
	if err := quick.Check(func(seed uint64) bool {
		l := NewList(d, a)
		r := sim.NewRand(seed)
		ref := map[uint64]bool{}
		for i := 0; i < 40; i++ {
			k := uint64(r.Intn(60))
			inserted := l.Insert(d, a, k, k)
			if inserted == ref[k] {
				return false // must succeed iff absent
			}
			ref[k] = true
		}
		keys := l.Keys(d)
		if len(keys) != len(ref) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHashInsertGetRemove(t *testing.T) {
	d, a := setup(t)
	h := NewHash(d, a, 16)
	for k := uint64(0); k < 100; k++ {
		if !h.Insert(d, a, k, k+1000) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if h.Insert(d, a, 50, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if h.Len(d) != 100 {
		t.Fatalf("Len = %d", h.Len(d))
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := h.Get(d, k); !ok || v != k+1000 {
			t.Fatalf("Get(%d) = %d/%v", k, v, ok)
		}
	}
	if h.Contains(d, 1000) {
		t.Fatal("phantom key")
	}
	if !h.Remove(d, 42) || h.Remove(d, 42) {
		t.Fatal("Remove misbehaved")
	}
	if h.Len(d) != 99 {
		t.Fatalf("Len after remove = %d", h.Len(d))
	}
}

func TestHashBadBucketCountPanics(t *testing.T) {
	d, a := setup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHash(d, a, 10)
}

func TestTreeInsertGetDelete(t *testing.T) {
	d, a := setup(t)
	tr := NewTree(d, a)
	keys := []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35}
	for _, k := range keys {
		if !tr.Insert(d, a, k, k*2) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if tr.Insert(d, a, 50, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if tr.Len(d) != len(keys) {
		t.Fatalf("Len = %d", tr.Len(d))
	}
	for _, k := range keys {
		if v, ok := tr.Get(d, k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d/%v", k, v, ok)
		}
	}
	// Delete a leaf, a one-child node, and a two-child node (the root).
	for _, k := range []uint64{25, 90, 50} {
		if !tr.Delete(d, k) {
			t.Fatalf("delete %d failed", k)
		}
		if _, ok := tr.Get(d, k); ok {
			t.Fatalf("key %d still present", k)
		}
	}
	if tr.Delete(d, 999) {
		t.Fatal("deleted phantom")
	}
	var inorder []uint64
	tr.ForEach(d, func(k, v uint64) { inorder = append(inorder, k) })
	if !sort.SliceIsSorted(inorder, func(i, j int) bool { return inorder[i] < inorder[j] }) {
		t.Fatalf("inorder not sorted: %v", inorder)
	}
	if len(inorder) != 6 {
		t.Fatalf("remaining = %d, want 6", len(inorder))
	}
}

func TestTreeScan(t *testing.T) {
	d, a := setup(t)
	tr := NewTree(d, a)
	for _, k := range []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35} {
		tr.Insert(d, a, k, k*2)
	}
	// Unbounded scan from lo visits exactly the keys >= lo, in order.
	var got []uint64
	n := tr.Scan(d, 30, func(k, v, node uint64) bool {
		if v != k*2 {
			t.Fatalf("Scan(%d) value %d", k, v)
		}
		if node == 0 {
			t.Fatal("Scan passed a zero node address")
		}
		got = append(got, k)
		return true
	})
	want := []uint64{30, 35, 50, 70, 80, 90}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("Scan visited %d pairs (%v), want %v", n, got, want)
	}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("Scan order %v, want %v", got, want)
		}
	}
	// Bounded scan stops as soon as f returns false.
	left := 3
	got = got[:0]
	n = tr.Scan(d, 0, func(k, _, _ uint64) bool { got = append(got, k); left--; return left > 0 })
	if n != 3 || len(got) != 3 || got[0] != 10 || got[2] != 25 {
		t.Fatalf("bounded Scan visited %v (n=%d), want first three keys", got, n)
	}
	// lo above the max key visits nothing.
	if n := tr.Scan(d, 1000, func(_, _, _ uint64) bool { return true }); n != 0 {
		t.Fatalf("Scan past max visited %d pairs", n)
	}
}

func TestTreeSetUpserts(t *testing.T) {
	d, a := setup(t)
	tr := NewTree(d, a)
	tr.Set(d, a, 5, 1)
	tr.Set(d, a, 5, 2)
	if v, _ := tr.Get(d, 5); v != 2 {
		t.Fatalf("Set did not update: %d", v)
	}
	if tr.Len(d) != 1 {
		t.Fatal("Set duplicated node")
	}
}

func TestTreeMax(t *testing.T) {
	d, a := setup(t)
	tr := NewTree(d, a)
	if _, _, ok := tr.Max(d); ok {
		t.Fatal("Max on empty tree")
	}
	for _, k := range []uint64{3, 9, 1} {
		tr.Insert(d, a, k, k)
	}
	if k, v, ok := tr.Max(d); !ok || k != 9 || v != 9 {
		t.Fatalf("Max = %d/%d/%v", k, v, ok)
	}
}

func TestTreePropertyMatchesMap(t *testing.T) {
	d, a := setup(t)
	if err := quick.Check(func(seed uint64) bool {
		tr := NewTree(d, a)
		r := sim.NewRand(seed)
		ref := map[uint64]uint64{}
		for i := 0; i < 120; i++ {
			k := uint64(r.Intn(80))
			switch r.Intn(3) {
			case 0:
				ins := tr.Insert(d, a, k, k)
				if _, exists := ref[k]; exists == ins {
					return false
				}
				ref[k] = k
			case 1:
				del := tr.Delete(d, k)
				if _, exists := ref[k]; exists != del {
					return false
				}
				delete(ref, k)
			case 2:
				_, got := tr.Get(d, k)
				if _, exists := ref[k]; exists != got {
					return false
				}
			}
		}
		return tr.Len(d) == len(ref)
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDepthReasonableWithRandomKeys(t *testing.T) {
	d, a := setup(t)
	tr := NewTree(d, a)
	r := sim.NewRand(7)
	n := 0
	for n < 1024 {
		if tr.Insert(d, a, r.Uint64(), 0) {
			n++
		}
	}
	if dep := tr.Depth(d); dep > 30 {
		t.Fatalf("depth %d too large for 1024 random keys", dep)
	}
}
