package oltp

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// zipf draws keys in [1, n] with Zipfian skew: key k has probability
// proportional to 1/k^theta, so key 1 is the hottest. theta = 0 is the
// uniform distribution; production key-popularity traces typically fit
// theta in [0.9, 1.3].
//
// The generator inverts the exact cumulative distribution (precomputed
// once per (n, theta) pair), so it is valid for every theta >= 0 —
// including theta >= 1, where the YCSB closed-form approximation breaks
// down. Draws consume exactly one value from the caller's seeded
// sim.Rand, so key sequences are a pure function of the seed.
type zipf struct {
	cum []float64 // cum[i] = P(key <= i+1), cum[n-1] == 1
	r   *sim.Rand
}

// newZipf builds the distribution table for n keys at skew theta and
// binds it to the seeded stream r.
func newZipf(n int, theta float64, r *sim.Rand) *zipf {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	cum := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		cum[i-1] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &zipf{cum: cum, r: r}
}

// next draws one key in [1, n].
func (z *zipf) next() uint64 {
	u := z.r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return uint64(i + 1)
}
