package oltp_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/oltp"
)

func testConfig() oltp.Config {
	return oltp.Config{
		Keys: 64, RequestsPerProc: 30, Theta: 0.9,
		ReadPct: 70, RMWPct: 25, ScanPct: 5,
		ScanLen: 4, MeanGap: 400, Arrival: oltp.ArrivalPoisson, Seed: 21,
	}
}

func testOptions() harness.Options {
	opt := harness.DefaultOptions()
	opt.Params.MemBytes = 1 << 24
	opt.OTableRows = 1 << 13
	opt.TxStats = true
	return opt
}

// TestWorkloadAllSystems runs the service workload on every system
// (including the sequential and lock baselines AllSystems adds) and
// requires the exact end-state invariant to hold: every request commits
// exactly once, so record values are fully determined by the traces.
func TestWorkloadAllSystems(t *testing.T) {
	for _, sys := range harness.AllSystems {
		threads := 2
		if sys == harness.Sequential {
			threads = 1
		}
		res := harness.Run(sys, oltp.New(testConfig()), threads, testOptions())
		if res.Err != nil {
			t.Errorf("%s: %v", sys, res.Err)
			continue
		}
		if res.TxStats == nil {
			t.Fatalf("%s: no txstats report", sys)
		}
		wantReqs := uint64(threads * testConfig().RequestsPerProc)
		if res.TxStats.Requests != wantReqs {
			t.Errorf("%s: %d arrival-tagged commits, want %d", sys, res.TxStats.Requests, wantReqs)
		}
		if res.TxStats.ResponsePercentiles == nil {
			t.Errorf("%s: no response-time percentiles", sys)
		}
	}
}

// TestResponseAtLeastServiceLatency: response time includes queueing, so
// for every system the mean response (arrival to commit) must be at
// least the mean service latency (begin to commit).
func TestResponseAtLeastServiceLatency(t *testing.T) {
	cfg := testConfig()
	cfg.MeanGap = 50 // overload: the backlog grows, queueing dominates
	res := harness.Run(harness.TL2, oltp.New(cfg), 2, testOptions())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ts := res.TxStats
	if ts.Response == nil || ts.Latency == nil || ts.Response.Count == 0 {
		t.Fatal("missing response/latency histograms")
	}
	meanResp := float64(ts.Response.Sum) / float64(ts.Response.Count)
	meanLat := float64(ts.Latency.Sum) / float64(ts.Latency.Count)
	if meanResp < meanLat {
		t.Fatalf("mean response %.0f < mean service latency %.0f; queueing lost", meanResp, meanLat)
	}
	if ts.QueueWait == nil || ts.QueueWait.Sum == 0 {
		t.Fatal("overloaded run recorded zero queueing delay")
	}
}

// TestRunDeterministicAcrossSchedulers: one oltp cell produces identical
// cycles, stats, and lifecycle reports under the fast, reference, and
// windowed-parallel engine schedulers.
func TestRunDeterministicAcrossSchedulers(t *testing.T) {
	type outcome struct {
		cycles    uint64
		requests  uint64
		committed uint64
	}
	run := func(reference, parallel bool) outcome {
		opt := testOptions()
		opt.Params.ReferenceScheduler = reference
		opt.Params.ParallelScheduler = parallel
		res := harness.Run(harness.UFOHybrid, oltp.New(testConfig()), 2, opt)
		if res.Err != nil {
			t.Fatalf("reference=%v parallel=%v: %v", reference, parallel, res.Err)
		}
		return outcome{res.Cycles, res.TxStats.Requests, res.TxStats.Committed}
	}
	fast := run(false, false)
	if ref := run(true, false); ref != fast {
		t.Errorf("reference scheduler diverged: %+v vs %+v", ref, fast)
	}
	if par := run(false, true); par != fast {
		t.Errorf("parallel scheduler diverged: %+v vs %+v", par, fast)
	}
}
