// Package oltp models a production transactional KV/OLTP service as an
// open-loop workload: simulated clients issue requests under Poisson or
// bursty MMPP arrival processes with Zipfian key skew over a txlib
// hash+tree store, mixing point-reads, read-modify-writes, and
// range-scans. Unlike the closed-loop STAMP ports (§5.2), arrivals are
// independent of completions — a request's arrival timestamp is fixed by
// the trace, so a backlogged processor accrues queueing delay and the
// txstats recorder can report true response time (queueing + service),
// the quantity a service SLO is written against. The hot-key skew and
// stampede-shaped bursts exercise exactly the contention regime where
// the paper's hybrid designs (§5.3's failover microbenchmark hints at
// it) differ most.
//
// Every request is serviced by exactly one committed transaction
// (tm.Exec.Atomic retries until commit), so the workload validates an
// exact invariant: each record's final value equals its initial value
// plus the sum of all RMW deltas addressed to it across every trace.
package oltp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Op is a request kind in the service mix.
type Op uint8

// The three request kinds: point-read of one record, read-modify-write
// of one record, and an ordered range-scan of ScanLen records.
const (
	OpRead Op = iota
	OpRMW
	OpScan
)

// Request is one pre-generated client request. Arrival is the cycle the
// simulated client issued it; the servicing processor may reach it later
// (queueing delay). Traces are a pure function of (Config, proc), so a
// proc's request stream is identical at every thread count, scheduler,
// and -parallel worker count.
type Request struct {
	Arrival uint64 // issue cycle of the open-loop client
	Op      Op
	Key     uint64 // Zipf-drawn key in [1, Keys]; scan lower bound for OpScan
	Delta   uint64 // RMW increment
}

// Config fixes the service shape. All randomness derives from Seed, so
// equal configs generate byte-identical traces.
type Config struct {
	Keys            int         // distinct records in the store
	RequestsPerProc int         // open-loop trace length per processor
	Theta           float64     // Zipfian skew (0 = uniform)
	ReadPct         int         // percentage of point-reads
	RMWPct          int         // percentage of read-modify-writes
	ScanPct         int         // percentage of range-scans (rest of 100)
	ScanLen         int         // records visited per range-scan
	MeanGap         uint64      // mean interarrival gap per client stream, cycles
	Arrival         ArrivalKind // poisson or mmpp
	Seed            uint64
}

// seed-stream salts: one independent sim.Rand stream per purpose, so
// adding a draw to one stream never shifts another.
const (
	seedTrace = 0x9E37_79B9 // per-proc request traces (salted by proc)
	seedStore = 0x7F4A_7C15 // store-population insertion order
)

// reqOverheadCycles is the charged non-transactional cost of picking up
// one request (parse + dispatch) before its transaction starts.
const reqOverheadCycles = 24

// norm fills defaults so zero-ish configs still run.
func (c Config) norm() Config {
	if c.Keys < 1 {
		c.Keys = 1
	}
	if c.RequestsPerProc < 0 {
		c.RequestsPerProc = 0
	}
	if c.ScanLen < 1 {
		c.ScanLen = 1
	}
	if c.MeanGap < 1 {
		c.MeanGap = 1
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.ReadPct+c.RMWPct+c.ScanPct != 100 {
		c.ReadPct, c.RMWPct, c.ScanPct = 80, 15, 5
	}
	return c
}

// Trace generates proc's request stream: interarrival gaps from the
// configured arrival process, keys from the Zipf distribution, ops from
// the mix percentages. Pure function of (Config, proc) — it allocates
// its own seeded generators — so harness-side load accounting and the
// in-run workload see identical streams.
func (c Config) Trace(proc int) []Request {
	c = c.norm()
	r := sim.NewRand(c.Seed*1_000_003 + uint64(proc)*2_654_435_761 + seedTrace)
	z := newZipf(c.Keys, c.Theta, r)
	ar := newArrival(c.Arrival, c.MeanGap, r)
	reqs := make([]Request, c.RequestsPerProc)
	now := uint64(0)
	for i := range reqs {
		now += ar.next()
		key := z.next()
		mix := r.Intn(100)
		delta := r.Uint64()%997 + 1
		var op Op
		switch {
		case mix < c.ReadPct:
			op = OpRead
		case mix < c.ReadPct+c.RMWPct:
			op = OpRMW
		default:
			op = OpScan
		}
		reqs[i] = Request{Arrival: now, Op: op, Key: key, Delta: delta}
	}
	return reqs
}

// Offered reports the realized offered load of a threads-proc run: the
// total request count and the span (cycles from 0 to the last arrival
// across all streams). Because it regenerates the same pure traces the
// run will execute, offered load derived from it is exact — and since a
// run cannot finish before its last arrival, goodput computed against
// run cycles can never exceed it.
func (c Config) Offered(threads int) (requests, span uint64) {
	for i := 0; i < threads; i++ {
		tr := c.Trace(i)
		requests += uint64(len(tr))
		if n := len(tr); n > 0 && tr[n-1].Arrival > span {
			span = tr[n-1].Arrival
		}
	}
	return requests, span
}

// Workload is the open-loop service benchmark; it satisfies
// stamp.Workload structurally, so the harness drives it like any STAMP
// port.
type Workload struct {
	cfg Config

	hash    txlib.Hash
	tree    txlib.Tree
	records []uint64 // records[k-1] = line address of key k's record
	traces  [][]Request
	threads int
}

// New builds the workload for cfg (normalized).
func New(cfg Config) *Workload { return &Workload{cfg: cfg.norm()} }

// Name identifies the workload in reports.
func (w *Workload) Name() string { return "oltp" }

// Config returns the normalized configuration the workload runs.
func (w *Workload) Config() Config { return w.cfg }

// RecordAddr returns the simulated address of key's record line (tests
// use it to assert contention attribution to the hot line).
func (w *Workload) RecordAddr(key uint64) uint64 { return w.records[key-1] }

// initialValue is key k's store value before any request runs.
func initialValue(key uint64) uint64 { return key*3 + 1 }

// Init populates the store: one line-aligned record per key (value at
// word 0) indexed by both a chained hash (point lookups) and a BST
// (ordered scans). Insertion order is a seeded shuffle so the unbalanced
// tree stays at its expected O(log n) depth.
func (w *Workload) Init(m *machine.Machine, threads int) {
	c := w.cfg
	w.threads = threads
	via := txlib.Direct{M: m}
	arena := txlib.NewArena(m, nil, uint64(c.Keys+64)*4*mem.LineBytes)

	buckets := uint64(1)
	for buckets*2 <= uint64(c.Keys) {
		buckets *= 2
	}
	w.hash = txlib.NewHash(via, arena, buckets)
	w.tree = txlib.NewTree(via, arena)

	order := make([]uint64, c.Keys)
	for i := range order {
		order[i] = uint64(i + 1)
	}
	r := sim.NewRand(c.Seed*1_000_003 + seedStore)
	for i := len(order) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}

	w.records = make([]uint64, c.Keys)
	for _, key := range order {
		rec := arena.Alloc(8) // line-aligned: one record per line
		via.Store(rec, initialValue(key))
		w.records[key-1] = rec
		w.hash.Insert(via, arena, key, rec)
		w.tree.Insert(via, arena, key, rec)
	}

	w.traces = make([][]Request, threads)
	for i := 0; i < threads; i++ {
		w.traces[i] = c.Trace(i)
	}
}

// Thread replays proc i's request trace. For each request the proc
// advances to the arrival cycle if idle (ElapseUntil is a no-op when
// backlogged — that is where queueing delay comes from), tags the
// transaction with the arrival timestamp for response-time accounting,
// then services the request in exactly one committed transaction. All
// randomness was pre-drawn into the trace, so transaction bodies are
// idempotent under re-execution.
func (w *Workload) Thread(i int, ex tm.Exec) {
	p := ex.Proc()
	scanLen := w.cfg.ScanLen
	for _, rq := range w.traces[i] {
		p.ElapseUntil(rq.Arrival)
		p.TxLifeArrival(rq.Arrival)
		p.Elapse(reqOverheadCycles)
		switch rq.Op {
		case OpRead:
			ex.Atomic(func(tx tm.Tx) {
				if rec, ok := w.hash.Get(tx, rq.Key); ok {
					_ = tx.Load(rec)
				}
			})
		case OpRMW:
			ex.Atomic(func(tx tm.Tx) {
				if rec, ok := w.hash.Get(tx, rq.Key); ok {
					tx.Store(rec, tx.Load(rec)+rq.Delta)
				}
			})
		case OpScan:
			ex.Atomic(func(tx tm.Tx) {
				left := scanLen
				w.tree.Scan(tx, rq.Key, func(_, rec, _ uint64) bool {
					_ = tx.Load(rec)
					left--
					return left > 0
				})
			})
		}
	}
}

// Validate checks the exact end-state invariant: every record holds its
// initial value plus the sum of all RMW deltas addressed to its key
// (each request commits exactly once), and the hash and tree agree with
// the record table.
func (w *Workload) Validate(m *machine.Machine) error {
	c := w.cfg
	via := txlib.Direct{M: m}

	want := make([]uint64, c.Keys)
	for k := range want {
		want[k] = initialValue(uint64(k + 1))
	}
	for i := 0; i < w.threads; i++ {
		for _, rq := range w.traces[i] {
			if rq.Op == OpRMW {
				want[rq.Key-1] += rq.Delta
			}
		}
	}

	for k := 0; k < c.Keys; k++ {
		key := uint64(k + 1)
		rec := w.records[k]
		if got := via.Load(rec); got != want[k] {
			return validErr("key %d: record value %d, want %d", key, got, want[k])
		}
		if hr, ok := w.hash.Get(via, key); !ok || hr != rec {
			return validErr("key %d: hash lookup (%d,%v), want record %d", key, hr, ok, rec)
		}
		if tr, ok := w.tree.Get(via, key); !ok || tr != rec {
			return validErr("key %d: tree lookup (%d,%v), want record %d", key, tr, ok, rec)
		}
	}
	if n := w.hash.Len(via); n != c.Keys {
		return validErr("hash has %d entries, want %d", n, c.Keys)
	}
	if n := w.tree.Len(via); n != c.Keys {
		return validErr("tree has %d entries, want %d", n, c.Keys)
	}
	return nil
}

func validErr(format string, args ...any) error {
	return fmt.Errorf("oltp: "+format, args...)
}
