package oltp

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalKind names a request arrival process.
type ArrivalKind string

// The arrival processes the service workload models.
const (
	// ArrivalPoisson is a memoryless open-loop arrival stream:
	// exponentially distributed interarrival gaps with the configured
	// mean. The classic M/G/k assumption for steady service traffic.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalMMPP is a two-state Markov-modulated Poisson process:
	// the stream alternates between a burst state (gaps mean/mmppBurstDiv)
	// and a calm state (gaps mean*mmppCalmMul), dwelling an exponential
	// mmppDwellMul*mean cycles in each. Same machinery real services use
	// to model stampedes and diurnal bursts; the time-averaged rate is
	// higher than Poisson at equal mean, so compare via the realized
	// offered load the report carries, not the configured mean.
	ArrivalMMPP ArrivalKind = "mmpp"
)

// ArrivalKinds lists the valid arrival-process names (flag validation).
var ArrivalKinds = []ArrivalKind{ArrivalPoisson, ArrivalMMPP}

// ParseArrival resolves a user-supplied arrival-process name, returning
// an error naming the valid set for unknown names (so tmsim can exit 2
// with a usable message).
func ParseArrival(name string) (ArrivalKind, error) {
	for _, k := range ArrivalKinds {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown arrival process %q (want one of %v)", name, ArrivalKinds)
}

// MMPP shape constants: the burst state arrives mmppBurstDiv times
// faster than the configured mean, the calm state mmppCalmMul times
// slower, and the process dwells ~mmppDwellMul mean gaps in each state.
const (
	mmppBurstDiv = 5
	mmppCalmMul  = 3
	mmppDwellMul = 25
)

// arrival generates successive interarrival gaps (simulated cycles) for
// one client stream. Gaps are a pure function of the seeded sim.Rand, so
// a stream's arrival timestamps are deterministic.
type arrival struct {
	kind ArrivalKind
	mean float64
	r    *sim.Rand

	burst bool    // MMPP state
	dwell float64 // cycles remaining in the current MMPP state
}

// newArrival binds an arrival process with the given mean gap to the
// seeded stream r.
func newArrival(kind ArrivalKind, meanGap uint64, r *sim.Rand) *arrival {
	a := &arrival{kind: kind, mean: float64(meanGap), r: r}
	if a.mean < 1 {
		a.mean = 1
	}
	if kind == ArrivalMMPP {
		a.dwell = a.expDraw(a.mean * mmppDwellMul)
	}
	return a
}

// expDraw samples an exponential with the given mean.
func (a *arrival) expDraw(mean float64) float64 {
	u := a.r.Float64()
	return -mean * math.Log(1-u)
}

// next returns the gap to the next arrival, at least 1 cycle.
func (a *arrival) next() uint64 {
	mean := a.mean
	if a.kind == ArrivalMMPP {
		if a.burst {
			mean = a.mean / mmppBurstDiv
		} else {
			mean = a.mean * mmppCalmMul
		}
	}
	g := a.expDraw(mean)
	if a.kind == ArrivalMMPP {
		// A gap straddling a state switch keeps the old state's rate;
		// the approximation is standard and keeps gaps one draw each.
		a.dwell -= g
		if a.dwell <= 0 {
			a.burst = !a.burst
			a.dwell = a.expDraw(a.mean * mmppDwellMul)
		}
	}
	if g < 1 {
		return 1
	}
	return uint64(g)
}
