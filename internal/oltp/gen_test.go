package oltp

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestZipfSkewHottestKey: at production-like skew the low keys dominate,
// and key 1 is the single most frequent draw.
func TestZipfSkewHottestKey(t *testing.T) {
	z := newZipf(1000, 1.2, sim.NewRand(7))
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.next()]++
	}
	for k, n := range counts {
		if k != 1 && n > counts[1] {
			t.Fatalf("key %d drawn %d times > key 1's %d", k, n, counts[1])
		}
	}
	// 1/H(1000, 1.2) ~= 0.18: the hot key should carry a visible share.
	if share := float64(counts[1]) / draws; share < 0.10 {
		t.Fatalf("key 1 share = %.3f, want >= 0.10 at theta 1.2", share)
	}
}

// TestZipfUniformAtZeroTheta: theta 0 is the uniform distribution; no
// key should stray far from the expected count.
func TestZipfUniformAtZeroTheta(t *testing.T) {
	const n, draws = 16, 32000
	z := newZipf(n, 0, sim.NewRand(9))
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		k := z.next()
		if k < 1 || k > n {
			t.Fatalf("key %d out of [1, %d]", k, n)
		}
		counts[k]++
	}
	want := float64(draws) / n
	for k := 1; k <= n; k++ {
		if math.Abs(float64(counts[k])-want) > want/2 {
			t.Fatalf("key %d drawn %d times, want ~%.0f", k, counts[k], want)
		}
	}
}

// TestZipfHandlesThetaOne: the exact-CDF generator must not degenerate
// at theta == 1, where closed-form approximations break down.
func TestZipfHandlesThetaOne(t *testing.T) {
	z := newZipf(100, 1.0, sim.NewRand(3))
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		seen[z.next()] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct keys at theta=1, want a spread distribution", len(seen))
	}
}

// TestPoissonMeanGap: the exponential sampler's empirical mean tracks
// the configured mean gap.
func TestPoissonMeanGap(t *testing.T) {
	const mean = 500
	a := newArrival(ArrivalPoisson, mean, sim.NewRand(11))
	var sum float64
	const draws = 50000
	for i := 0; i < draws; i++ {
		sum += float64(a.next())
	}
	got := sum / draws
	if got < 0.9*mean || got > 1.1*mean {
		t.Fatalf("empirical mean gap = %.1f, want ~%d", got, mean)
	}
}

// TestMMPPBurstierThanPoisson: at the same configured mean the two-state
// MMPP stream must have a higher coefficient of variation than the
// Poisson stream — that burstiness is its whole purpose.
func TestMMPPBurstierThanPoisson(t *testing.T) {
	cv := func(kind ArrivalKind) float64 {
		a := newArrival(kind, 400, sim.NewRand(13))
		const draws = 50000
		gaps := make([]float64, draws)
		var sum float64
		for i := range gaps {
			gaps[i] = float64(a.next())
			sum += gaps[i]
		}
		mean := sum / draws
		var varsum float64
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return math.Sqrt(varsum/draws) / mean
	}
	p, m := cv(ArrivalPoisson), cv(ArrivalMMPP)
	if m <= p {
		t.Fatalf("MMPP cv %.3f <= Poisson cv %.3f; expected burstier arrivals", m, p)
	}
}

// TestParseArrival: known names resolve, unknown names name the valid
// set.
func TestParseArrival(t *testing.T) {
	for _, k := range ArrivalKinds {
		got, err := ParseArrival(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseArrival(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Fatal("ParseArrival accepted an unknown process")
	}
}

// TestTraceDeterministic pins the generator contract the sweep's
// byte-identical reports rest on: equal configs produce identical
// traces, call after call; different procs and seeds produce different
// ones.
func TestTraceDeterministic(t *testing.T) {
	cfg := Config{Keys: 64, RequestsPerProc: 200, Theta: 0.9, ReadPct: 80, RMWPct: 15, ScanPct: 5,
		ScanLen: 4, MeanGap: 300, Arrival: ArrivalMMPP, Seed: 42}
	a, b := cfg.Trace(3), cfg.Trace(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, proc) generated different traces")
	}
	if reflect.DeepEqual(a, cfg.Trace(4)) {
		t.Fatal("different procs generated identical traces")
	}
	other := cfg
	other.Seed = 43
	if reflect.DeepEqual(a, other.Trace(3)) {
		t.Fatal("different seeds generated identical traces")
	}
}

// TestTraceShape: arrivals strictly increase, keys stay in range, and
// the op mix matches the configured percentages roughly.
func TestTraceShape(t *testing.T) {
	cfg := Config{Keys: 32, RequestsPerProc: 5000, Theta: 0.5, ReadPct: 70, RMWPct: 20, ScanPct: 10,
		ScanLen: 4, MeanGap: 100, Arrival: ArrivalPoisson, Seed: 5}
	tr := cfg.Trace(0)
	if len(tr) != cfg.RequestsPerProc {
		t.Fatalf("trace length %d, want %d", len(tr), cfg.RequestsPerProc)
	}
	var prev uint64
	counts := map[Op]int{}
	for _, rq := range tr {
		if rq.Arrival <= prev {
			t.Fatalf("arrival %d not after %d", rq.Arrival, prev)
		}
		prev = rq.Arrival
		if rq.Key < 1 || rq.Key > uint64(cfg.Keys) {
			t.Fatalf("key %d out of range", rq.Key)
		}
		counts[rq.Op]++
	}
	total := float64(len(tr))
	for op, wantPct := range map[Op]float64{OpRead: 70, OpRMW: 20, OpScan: 10} {
		got := 100 * float64(counts[op]) / total
		if math.Abs(got-wantPct) > 5 {
			t.Fatalf("op %d share %.1f%%, want ~%.0f%%", op, got, wantPct)
		}
	}
}

// TestOfferedMatchesTraces: Offered reports exactly the regenerated
// traces' request count and arrival span.
func TestOfferedMatchesTraces(t *testing.T) {
	cfg := Config{Keys: 16, RequestsPerProc: 50, ReadPct: 80, RMWPct: 15, ScanPct: 5,
		ScanLen: 2, MeanGap: 200, Arrival: ArrivalPoisson, Seed: 8}
	reqs, span := cfg.Offered(3)
	if reqs != 150 {
		t.Fatalf("requests = %d, want 150", reqs)
	}
	var wantSpan uint64
	for i := 0; i < 3; i++ {
		tr := cfg.Trace(i)
		if last := tr[len(tr)-1].Arrival; last > wantSpan {
			wantSpan = last
		}
	}
	if span != wantSpan {
		t.Fatalf("span = %d, want %d", span, wantSpan)
	}
}
