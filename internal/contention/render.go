package contention

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// Cell pairs a report with the label of the sweep cell it came from
// (typically "workload/system/threads"). The renderers take cells so a
// whole sweep exports into one document.
type Cell struct {
	Label  string
	Report *Report
}

// sparkRunes are the eight levels of a text sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as unicode block characters scaled to the
// series maximum ("·" for empty windows, so zeros and lows differ).
func sparkline(values []uint64) string {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		if v == 0 {
			sb.WriteRune('·')
			continue
		}
		i := int(v * uint64(len(sparkRunes)-1) / max)
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

func procLabel(p int) string {
	if p < 0 {
		return "?"
	}
	return fmt.Sprintf("p%d", p)
}

func reasonLine(rcs []ReasonCount) string {
	if len(rcs) == 0 {
		return "-"
	}
	parts := make([]string, len(rcs))
	for i, rc := range rcs {
		parts[i] = fmt.Sprintf("%s=%d", rc.Reason, rc.Count)
	}
	return strings.Join(parts, " ")
}

// WriteText renders the cells as a plain-text contention report: per cell
// a summary, the abort-reason breakdown, the hot-line table, the
// aggressor→victim matrix, and an abort-rate sparkline with per-window
// percentiles.
func WriteText(w io.Writer, cells []Cell) error {
	for ci, c := range cells {
		rep := c.Report
		if ci > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s ===\n", c.Label)
		if rep == nil {
			fmt.Fprintln(w, "  (no contention data)")
			continue
		}
		fmt.Fprintf(w, "  edges=%d (sw=%d, no-addr=%d, unknown-aggressor=%d)  commits hw=%d sw=%d\n",
			rep.Edges, rep.SWEdges, rep.NoAddrEdges, rep.UnknownAggressor, rep.HWCommits, rep.SWCommits)
		fmt.Fprintf(w, "  by reason: %s\n", reasonLine(rep.ByReason))
		if rep.CM != nil {
			fmt.Fprintf(w, "  cm: policy=%s delays=%d (%d cycles) pf-stalls=%d retry-polls=%d starvation-escalations=%d token-acqs=%d\n",
				rep.CM.Policy, rep.CM.Delays, rep.CM.DelayCycles, rep.CM.PageFaultStalls,
				rep.CM.RetryPolls, rep.CM.StarvationEscalations, rep.CM.TokenAcquisitions)
		}

		if len(rep.HotLines) > 0 {
			fmt.Fprintf(w, "  hot lines (top %d of %d):\n", len(rep.HotLines), len(rep.HotLines)+rep.DroppedLines)
			fmt.Fprintf(w, "    %-12s %8s  %-11s %-11s %s\n", "addr", "aborts", "aggressor", "victim", "reasons")
			for _, hl := range rep.HotLines {
				agg, vict := "-", "-"
				if len(hl.Aggressors) > 0 {
					agg = fmt.Sprintf("%s(%d)", procLabel(hl.Aggressors[0].Proc), hl.Aggressors[0].Count)
				}
				if len(hl.Victims) > 0 {
					vict = fmt.Sprintf("%s(%d)", procLabel(hl.Victims[0].Proc), hl.Victims[0].Count)
				}
				fmt.Fprintf(w, "    %-12s %8d  %-11s %-11s %s\n",
					fmt.Sprintf("%#x", hl.Addr), hl.Total, agg, vict, reasonLine(hl.ByReason))
			}
		}

		if rep.Edges > 0 {
			fmt.Fprintln(w, "  aggressor\\victim matrix:")
			fmt.Fprintf(w, "    %6s", "")
			for v := 0; v < rep.Procs; v++ {
				fmt.Fprintf(w, " %6s", procLabel(v))
			}
			fmt.Fprintln(w)
			for a := 0; a < rep.Procs; a++ {
				fmt.Fprintf(w, "    %6s", procLabel(a))
				for v := 0; v < rep.Procs; v++ {
					fmt.Fprintf(w, " %6d", rep.Matrix[a][v])
				}
				fmt.Fprintln(w)
			}
		}

		if len(rep.Windows) > 0 {
			aborts := make([]uint64, len(rep.Windows))
			for i, win := range rep.Windows {
				aborts[i] = win.Aborts
			}
			fmt.Fprintf(w, "  aborts/window (W=%d cycles, %d windows): %s\n",
				rep.WindowCycles, len(rep.Windows), sparkline(aborts))
			if h := rep.WindowAbortHist; h != nil {
				fmt.Fprintf(w, "  aborts/window percentiles: p50=%.1f p90=%.1f p99=%.1f max=%d\n",
					h.P50(), h.P90(), h.P99(), h.Max)
			}
		}
	}
	return nil
}

// WriteHTML renders the cells as one self-contained HTML document: inline
// CSS, inline SVG sparklines, no scripts, and no references to external
// assets, so the file can be archived or attached to CI runs and opened
// anywhere.
func WriteHTML(w io.Writer, cells []Cell) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>tmsim contention report</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.addr, td.reasons { text-align: left; }
.summary { color: #555; }
svg { display: block; margin: 0.5em 0; }
</style>
</head>
<body>
<h1>tmsim contention report</h1>
`)
	for _, c := range cells {
		rep := c.Report
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(c.Label))
		if rep == nil {
			b.WriteString("<p class=\"summary\">(no contention data)</p>\n")
			continue
		}
		fmt.Fprintf(&b, "<p class=\"summary\">edges %d (sw %d, no-addr %d, unknown-aggressor %d) &middot; commits hw %d / sw %d &middot; reasons: %s</p>\n",
			rep.Edges, rep.SWEdges, rep.NoAddrEdges, rep.UnknownAggressor,
			rep.HWCommits, rep.SWCommits, html.EscapeString(reasonLine(rep.ByReason)))
		if rep.CM != nil {
			fmt.Fprintf(&b, "<p class=\"summary\">cm: policy %s &middot; delays %d (%d cycles) &middot; pf-stalls %d &middot; retry-polls %d &middot; starvation escalations %d &middot; token acquisitions %d</p>\n",
				html.EscapeString(rep.CM.Policy), rep.CM.Delays, rep.CM.DelayCycles,
				rep.CM.PageFaultStalls, rep.CM.RetryPolls, rep.CM.StarvationEscalations, rep.CM.TokenAcquisitions)
		}

		if len(rep.HotLines) > 0 {
			fmt.Fprintf(&b, "<h3>Hot lines (top %d of %d)</h3>\n<table>\n<tr><th>addr</th><th>aborts</th><th>top aggressor</th><th>top victim</th><th>reasons</th></tr>\n",
				len(rep.HotLines), len(rep.HotLines)+rep.DroppedLines)
			for _, hl := range rep.HotLines {
				agg, vict := "-", "-"
				if len(hl.Aggressors) > 0 {
					agg = fmt.Sprintf("%s (%d)", procLabel(hl.Aggressors[0].Proc), hl.Aggressors[0].Count)
				}
				if len(hl.Victims) > 0 {
					vict = fmt.Sprintf("%s (%d)", procLabel(hl.Victims[0].Proc), hl.Victims[0].Count)
				}
				fmt.Fprintf(&b, "<tr><td class=\"addr\">%#x</td><td>%d</td><td>%s</td><td>%s</td><td class=\"reasons\">%s</td></tr>\n",
					hl.Addr, hl.Total, agg, vict, html.EscapeString(reasonLine(hl.ByReason)))
			}
			b.WriteString("</table>\n")
		}

		if rep.Edges > 0 {
			var matrixMax uint64
			for _, row := range rep.Matrix {
				for _, n := range row {
					if n > matrixMax {
						matrixMax = n
					}
				}
			}
			b.WriteString("<h3>Aggressor &rarr; victim</h3>\n<table>\n<tr><th></th>")
			for v := 0; v < rep.Procs; v++ {
				fmt.Fprintf(&b, "<th>%s</th>", procLabel(v))
			}
			b.WriteString("</tr>\n")
			for a := 0; a < rep.Procs; a++ {
				fmt.Fprintf(&b, "<tr><th>%s</th>", procLabel(a))
				for v := 0; v < rep.Procs; v++ {
					n := rep.Matrix[a][v]
					alpha := 0.0
					if matrixMax > 0 {
						alpha = 0.85 * float64(n) / float64(matrixMax)
					}
					fmt.Fprintf(&b, "<td style=\"background: rgba(200,60,40,%.3f)\">%d</td>", alpha, n)
				}
				b.WriteString("</tr>\n")
			}
			b.WriteString("</table>\n")
		}

		if len(rep.Windows) > 0 {
			fmt.Fprintf(&b, "<h3>Aborts per window (W = %d cycles, %d windows)</h3>\n", rep.WindowCycles, len(rep.Windows))
			writeSparkSVG(&b, rep.Windows)
			if h := rep.WindowAbortHist; h != nil {
				fmt.Fprintf(&b, "<p class=\"summary\">aborts/window p50 %.1f &middot; p90 %.1f &middot; p99 %.1f &middot; max %d</p>\n",
					h.P50(), h.P90(), h.P99(), h.Max)
			}
		}
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSparkSVG emits an inline SVG polyline of aborts per window.
func writeSparkSVG(b *strings.Builder, windows []Window) {
	const width, height = 640.0, 80.0
	var max uint64
	for _, win := range windows {
		if win.Aborts > max {
			max = win.Aborts
		}
	}
	if max == 0 {
		max = 1
	}
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"aborts per window\">\n",
		width, height, width, height)
	fmt.Fprintf(b, "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" fill=\"#f7f7f7\"/>\n", width, height)
	var pts strings.Builder
	n := len(windows)
	for i, win := range windows {
		x := width * float64(i) / float64(maxInt(n-1, 1))
		y := height - 4 - (height-8)*float64(win.Aborts)/float64(max)
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(b, "<polyline fill=\"none\" stroke=\"#c83c28\" stroke-width=\"1.5\" points=\"%s\"/>\n", pts.String())
	b.WriteString("</svg>\n")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
