package contention

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/obs"
)

// ReasonCount is one abort reason's edge count. Reasons appear in
// machine.AbortReason declaration order, zero counts omitted.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// ProcCount is one processor's edge count on a hot line. Proc is -1 for
// edges whose aggressor could not be identified.
type ProcCount struct {
	Proc  int    `json:"proc"`
	Count uint64 `json:"count"`
}

// HotLine is one contended cache line's profile. Aggressors and Victims
// are sorted by count (descending, processor ID breaking ties), so the
// first entries name the line's dominant conflict pair.
type HotLine struct {
	Addr       uint64        `json:"addr"`
	Total      uint64        `json:"total"`
	ByReason   []ReasonCount `json:"by_reason"`
	Aggressors []ProcCount   `json:"aggressors"`
	Victims    []ProcCount   `json:"victims"`
}

// Window is one time-series interval: events whose cycle c satisfies
// c/W == Index. The series is dense from window 0 through the last window
// with any event, so consumers can plot it without gap handling.
type Window struct {
	Index      uint64        `json:"index"`
	StartCycle uint64        `json:"start_cycle"`
	HWCommits  uint64        `json:"hw_commits"`
	SWCommits  uint64        `json:"sw_commits"`
	Aborts     uint64        `json:"aborts"`
	SWAborts   uint64        `json:"sw_aborts"`
	ByReason   []ReasonCount `json:"by_reason,omitempty"`
}

// Report is a frozen, deterministic view of a Profile: every internal map
// flattened into sorted slices with a fixed JSON field order, so equal
// profiles encode byte-identically (the same contract as obs.Snapshot).
type Report struct {
	Procs        int    `json:"procs"`
	WindowCycles uint64 `json:"window_cycles"`

	Edges            uint64 `json:"edges"`
	SWEdges          uint64 `json:"sw_edges"`
	NoAddrEdges      uint64 `json:"no_addr_edges"`
	UnknownAggressor uint64 `json:"unknown_aggressor_edges"`
	HWCommits        uint64 `json:"hw_commits"`
	SWCommits        uint64 `json:"sw_commits"`

	ByReason []ReasonCount `json:"by_reason"`
	// HotLines holds the top-K lines by edge count; DroppedLines counts
	// the contended lines beyond K (never silently truncated away).
	HotLines     []HotLine `json:"hot_lines"`
	DroppedLines int       `json:"dropped_lines"`
	// Matrix[a][v] counts edges where processor a aborted processor v.
	Matrix  [][]uint64 `json:"matrix"`
	Windows []Window   `json:"windows"`
	// WindowAbortHist is the distribution of aborts per window (including
	// empty windows), the input to the report's percentile lines.
	WindowAbortHist *obs.HistSnapshot `json:"window_abort_hist,omitempty"`
	// CM annotates the report with the run's contention-management
	// decisions (filled by the harness from the system's cm.Manager;
	// nil for systems without one).
	CM *CMAnnotation `json:"cm,omitempty"`
}

// CMAnnotation summarizes the contention-management policy's decisions
// for one run: what policy ran, how much simulated time it spent
// backing off, and how often it escalated instead (see internal/cm).
type CMAnnotation struct {
	Policy                string `json:"policy"`
	Delays                uint64 `json:"delays"`
	DelayCycles           uint64 `json:"delay_cycles"`
	PageFaultStalls       uint64 `json:"page_fault_stalls,omitempty"`
	RetryPolls            uint64 `json:"retry_polls,omitempty"`
	StarvationEscalations uint64 `json:"starvation_escalations,omitempty"`
	TokenAcquisitions     uint64 `json:"token_acquisitions,omitempty"`
}

// DefaultTopK is the hot-line cutoff used when Report is given topK <= 0.
const DefaultTopK = 16

// reasonCounts freezes a per-reason counter array (declaration order,
// zeros omitted).
func reasonCounts(a *[machine.NumAbortReasons]uint64) []ReasonCount {
	var out []ReasonCount
	for r, n := range a {
		if n != 0 {
			out = append(out, ReasonCount{Reason: machine.AbortReason(r).String(), Count: n})
		}
	}
	return out
}

// procCounts freezes a per-processor counter map sorted by count
// descending, processor ascending.
func procCounts(m map[int]uint64) []ProcCount {
	out := make([]ProcCount, 0, len(m))
	for p, n := range m {
		out = append(out, ProcCount{Proc: p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Report freezes the profile into its deterministic exportable form,
// keeping the topK hottest lines (DefaultTopK when topK <= 0).
func (pr *Profile) Report(topK int) *Report {
	if topK <= 0 {
		topK = DefaultTopK
	}
	rep := &Report{
		Procs:            pr.procs,
		WindowCycles:     pr.window,
		Edges:            pr.edges,
		SWEdges:          pr.swEdges,
		NoAddrEdges:      pr.noAddr,
		UnknownAggressor: pr.unknownAgg,
		HWCommits:        pr.hwCommits,
		SWCommits:        pr.swCommits,
		ByReason:         reasonCounts(&pr.byReason),
	}

	rep.Matrix = make([][]uint64, pr.procs)
	for a := 0; a < pr.procs; a++ {
		rep.Matrix[a] = append([]uint64(nil), pr.matrix[a*pr.procs:(a+1)*pr.procs]...)
	}

	addrs := make([]uint64, 0, len(pr.lines))
	for addr := range pr.lines {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		li, lj := pr.lines[addrs[i]], pr.lines[addrs[j]]
		if li.total != lj.total {
			return li.total > lj.total
		}
		return addrs[i] < addrs[j]
	})
	if len(addrs) > topK {
		rep.DroppedLines = len(addrs) - topK
		addrs = addrs[:topK]
	}
	for _, addr := range addrs {
		ls := pr.lines[addr]
		rep.HotLines = append(rep.HotLines, HotLine{
			Addr:       addr,
			Total:      ls.total,
			ByReason:   reasonCounts(&ls.byReason),
			Aggressors: procCounts(ls.aggr),
			Victims:    procCounts(ls.vict),
		})
	}

	if pr.window > 0 && len(pr.windows) > 0 {
		var maxIdx uint64
		for i := range pr.windows {
			if i > maxIdx {
				maxIdx = i
			}
		}
		var hist obs.Histogram
		for i := uint64(0); i <= maxIdx; i++ {
			w := Window{Index: i, StartCycle: i * pr.window}
			if ws := pr.windows[i]; ws != nil {
				w.HWCommits = ws.hwCommits
				w.SWCommits = ws.swCommits
				w.Aborts = ws.aborts
				w.SWAborts = ws.swAborts
				w.ByReason = reasonCounts(&ws.byReason)
			}
			hist.Observe(w.Aborts)
			rep.Windows = append(rep.Windows, w)
		}
		rep.WindowAbortHist = hist.Snapshot()
	}
	return rep
}

// Add merges other's headline totals into rep: edge counts, per-reason
// counts, commit counts, and the aggressor→victim matrix all sum (the
// matrix grows to the larger processor count). Hot lines and windows are
// per-cell artifacts — addresses and cycles are only meaningful within
// one machine run — so they are not merged; DroppedLines accumulates.
// Summation is commutative, so aggregating parallel sweep cells in job
// order stays deterministic.
func (rep *Report) Add(other *Report) {
	if other == nil {
		return
	}
	rep.Edges += other.Edges
	rep.SWEdges += other.SWEdges
	rep.NoAddrEdges += other.NoAddrEdges
	rep.UnknownAggressor += other.UnknownAggressor
	rep.HWCommits += other.HWCommits
	rep.SWCommits += other.SWCommits
	rep.ByReason = mergeReasons(rep.ByReason, other.ByReason)
	rep.DroppedLines += other.DroppedLines
	for len(rep.Matrix) < len(other.Matrix) {
		rep.Matrix = append(rep.Matrix, nil)
	}
	for a := range other.Matrix {
		for len(rep.Matrix[a]) < len(other.Matrix[a]) {
			rep.Matrix[a] = append(rep.Matrix[a], 0)
		}
		for v, n := range other.Matrix[a] {
			rep.Matrix[a][v] += n
		}
	}
	if other.Procs > rep.Procs {
		rep.Procs = other.Procs
	}
	if other.CM != nil {
		if rep.CM == nil {
			c := *other.CM
			rep.CM = &c
		} else {
			if rep.CM.Policy != other.CM.Policy {
				rep.CM.Policy = "mixed"
			}
			rep.CM.Delays += other.CM.Delays
			rep.CM.DelayCycles += other.CM.DelayCycles
			rep.CM.PageFaultStalls += other.CM.PageFaultStalls
			rep.CM.RetryPolls += other.CM.RetryPolls
			rep.CM.StarvationEscalations += other.CM.StarvationEscalations
			rep.CM.TokenAcquisitions += other.CM.TokenAcquisitions
		}
	}
}

// mergeReasons sums two frozen reason lists, preserving declaration order.
func mergeReasons(a, b []ReasonCount) []ReasonCount {
	var sum [machine.NumAbortReasons]uint64
	for _, rc := range a {
		sum[reasonIndex(rc.Reason)] += rc.Count
	}
	for _, rc := range b {
		sum[reasonIndex(rc.Reason)] += rc.Count
	}
	return reasonCounts(&sum)
}

// reasonIndex inverts machine.AbortReason.String (unknown names land on
// AbortNone, which real edges never carry).
func reasonIndex(name string) int {
	for r := 0; r < machine.NumAbortReasons; r++ {
		if machine.AbortReason(r).String() == name {
			return r
		}
	}
	return 0
}
