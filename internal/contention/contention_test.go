package contention

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

func edge(agg, vict int, addr uint64, reason machine.AbortReason, cycle uint64) machine.ConflictEdge {
	return machine.ConflictEdge{
		Aggressor: agg, Victim: vict, Addr: addr, HasAddr: true,
		Reason: reason, Cycle: cycle,
	}
}

// TestProfileAggregation: edges land in the right headline totals, the
// matrix, and (normalized to cache lines) the per-line stats.
func TestProfileAggregation(t *testing.T) {
	pr := New(2, 0)
	pr.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 10))
	pr.RecordEdge(edge(0, 1, 0x13f, machine.AbortConflict, 20)) // same 64B line as 0x100
	pr.RecordEdge(edge(1, 0, 0x200, machine.AbortOverflow, 30))
	pr.RecordEdge(edge(-1, 0, 0x200, machine.AbortConflict, 40)) // unknown aggressor
	swKill := machine.ConflictEdge{Aggressor: 1, Victim: 0, SW: true, Reason: machine.AbortConflict, Cycle: 50}
	pr.RecordEdge(swKill) // no address
	pr.RecordCommit(0, true, 60)
	pr.RecordCommit(1, false, 70)

	rep := pr.Report(0)
	if rep.Edges != 5 || rep.SWEdges != 1 || rep.NoAddrEdges != 1 || rep.UnknownAggressor != 1 {
		t.Fatalf("headline totals = %+v", rep)
	}
	if rep.HWCommits != 1 || rep.SWCommits != 1 {
		t.Fatalf("commits = hw %d sw %d", rep.HWCommits, rep.SWCommits)
	}
	if rep.Matrix[0][1] != 2 || rep.Matrix[1][0] != 2 || rep.Matrix[0][0] != 0 {
		t.Fatalf("matrix = %v", rep.Matrix)
	}
	if len(rep.HotLines) != 2 {
		t.Fatalf("hot lines = %+v", rep.HotLines)
	}
	// 0x100 and 0x13f merge into one line with 2 edges; 0x200 has 2.
	for _, hl := range rep.HotLines {
		if hl.Total != 2 {
			t.Errorf("line %#x total = %d, want 2", hl.Addr, hl.Total)
		}
		if hl.Addr%64 != 0 {
			t.Errorf("line addr %#x not line-aligned", hl.Addr)
		}
	}
	// The unknown aggressor appears as proc -1 on line 0x200.
	var line200 *HotLine
	for i := range rep.HotLines {
		if rep.HotLines[i].Addr == 0x200 {
			line200 = &rep.HotLines[i]
		}
	}
	if line200 == nil {
		t.Fatalf("line 0x200 missing: %+v", rep.HotLines)
	}
	found := false
	for _, pc := range line200.Aggressors {
		if pc.Proc == -1 && pc.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown aggressor not listed on line 0x200: %+v", line200.Aggressors)
	}
}

// TestReportHotLineOrdering: hot lines sort by total descending then
// address ascending; topK truncation is accounted in DroppedLines.
func TestReportHotLineOrdering(t *testing.T) {
	pr := New(2, 0)
	hit := func(addr uint64, n int) {
		for i := 0; i < n; i++ {
			pr.RecordEdge(edge(0, 1, addr, machine.AbortConflict, 0))
		}
	}
	hit(0x300, 1)
	hit(0x100, 3)
	hit(0x200, 3)
	hit(0x400, 5)

	rep := pr.Report(0)
	var got []uint64
	for _, hl := range rep.HotLines {
		got = append(got, hl.Addr)
	}
	want := []uint64{0x400, 0x100, 0x200, 0x300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hot line order = %#x, want %#x", got, want)
		}
	}

	top := pr.Report(2)
	if len(top.HotLines) != 2 || top.DroppedLines != 2 {
		t.Fatalf("topK=2: %d lines, %d dropped", len(top.HotLines), top.DroppedLines)
	}
	if top.HotLines[0].Addr != 0x400 {
		t.Fatalf("topK kept %#x first", top.HotLines[0].Addr)
	}
}

// TestReportWindows: the time series is dense from window 0 through the
// last active window, with correct start cycles and a histogram that
// includes the empty windows.
func TestReportWindows(t *testing.T) {
	pr := New(2, 100)
	pr.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 5))   // window 0
	pr.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 199)) // window 1
	pr.RecordEdge(edge(1, 0, 0x100, machine.AbortConflict, 430)) // window 4
	pr.RecordCommit(0, true, 150)                                // window 1
	pr.RecordCommit(1, false, 450)                               // window 4

	rep := pr.Report(0)
	if len(rep.Windows) != 5 {
		t.Fatalf("windows = %d, want dense 0..4", len(rep.Windows))
	}
	for i, w := range rep.Windows {
		if w.Index != uint64(i) || w.StartCycle != uint64(i)*100 {
			t.Fatalf("window %d = %+v", i, w)
		}
	}
	if rep.Windows[1].Aborts != 1 || rep.Windows[1].HWCommits != 1 {
		t.Fatalf("window 1 = %+v", rep.Windows[1])
	}
	if rep.Windows[2].Aborts != 0 || len(rep.Windows[2].ByReason) != 0 {
		t.Fatalf("empty window 2 = %+v", rep.Windows[2])
	}
	if rep.Windows[4].SWCommits != 1 {
		t.Fatalf("window 4 = %+v", rep.Windows[4])
	}
	h := rep.WindowAbortHist
	if h == nil || h.Count != 5 || h.Max != 1 {
		t.Fatalf("window hist = %+v", h)
	}

	// Window 0 disables the series entirely.
	off := New(2, 0)
	off.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 5))
	if rep := off.Report(0); len(rep.Windows) != 0 || rep.WindowAbortHist != nil {
		t.Fatalf("window=0 still produced a series: %+v", rep.Windows)
	}
}

// TestReportJSONDeterministic: equal edge multisets recorded in
// different orders encode byte-identically.
func TestReportJSONDeterministic(t *testing.T) {
	edges := []machine.ConflictEdge{
		edge(0, 1, 0x100, machine.AbortConflict, 10),
		edge(1, 0, 0x200, machine.AbortOverflow, 20),
		edge(0, 1, 0x300, machine.AbortConflict, 120),
		edge(1, 0, 0x100, machine.AbortConflict, 220),
	}
	render := func(order []int) []byte {
		pr := New(2, 100)
		for _, i := range order {
			pr.RecordEdge(edges[i])
		}
		b, err := json.Marshal(pr.Report(0))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := render([]int{0, 1, 2, 3})
	b := render([]int{3, 2, 1, 0})
	if !bytes.Equal(a, b) {
		t.Fatalf("insertion order leaked into JSON:\n%s\n%s", a, b)
	}
}

// TestReportAdd: headline totals, reasons, and the matrix sum; the
// matrix grows to the larger processor count.
func TestReportAdd(t *testing.T) {
	a := New(2, 0)
	a.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 0))
	a.RecordCommit(0, true, 0)
	b := New(4, 0)
	b.RecordEdge(edge(3, 2, 0x200, machine.AbortOverflow, 0))
	b.RecordCommit(1, false, 0)

	sum := &Report{}
	sum.Add(a.Report(0))
	sum.Add(b.Report(0))
	if sum.Edges != 2 || sum.HWCommits != 1 || sum.SWCommits != 1 || sum.Procs != 4 {
		t.Fatalf("sum = %+v", sum)
	}
	if len(sum.ByReason) != 2 {
		t.Fatalf("reasons = %+v", sum.ByReason)
	}
	if sum.Matrix[0][1] != 1 || sum.Matrix[3][2] != 1 {
		t.Fatalf("matrix = %v", sum.Matrix)
	}
	sum.Add(nil) // nil cells (contention disabled) are a no-op
	if sum.Edges != 2 {
		t.Fatalf("nil Add changed the report")
	}
}

// TestRegister: the profile's totals appear as contention.* metrics.
func TestRegister(t *testing.T) {
	pr := New(2, 0)
	pr.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 0))
	reg := obs.NewRegistry()
	pr.Register(reg)
	s := reg.Snapshot()
	if m := s.Get("contention.edges"); m == nil || m.Value != 1 {
		t.Fatalf("contention.edges = %+v", m)
	}
	if m := s.Get("contention.hot_lines"); m == nil || m.Value != 1 {
		t.Fatalf("contention.hot_lines = %+v", m)
	}
}

func sampleCells(t *testing.T) []Cell {
	t.Helper()
	pr := New(2, 100)
	pr.RecordEdge(edge(0, 1, 0x100, machine.AbortConflict, 10))
	pr.RecordEdge(edge(1, 0, 0x200, machine.AbortOverflow, 250))
	pr.RecordCommit(0, true, 50)
	return []Cell{
		{Label: "vacation-high/ufo-hybrid/4 threads", Report: pr.Report(0)},
		{Label: "cell <with & escapes>", Report: nil},
	}
}

// TestWriteText: the plain renderer shows the summary, matrix, and
// sparkline, and marks cells without data.
func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleCells(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"=== vacation-high/ufo-hybrid/4 threads ===",
		"edges=2",
		"aggressor\\victim matrix:",
		"aborts/window",
		"(no contention data)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestWriteHTMLSelfContained: the HTML document must carry everything
// inline — no scripts, no links, no external URLs — and escape labels.
func TestWriteHTMLSelfContained(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, sampleCells(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"http://", "https://", "<script", "src=", "href=", "@import", "url("} {
		if strings.Contains(out, banned) {
			t.Errorf("HTML report is not self-contained: found %q", banned)
		}
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "</html>", "cell &lt;with &amp; escapes&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

// TestSparkline: zeros render distinctly and the peak maps to the top
// glyph.
func TestSparkline(t *testing.T) {
	got := sparkline([]uint64{0, 1, 8, 4})
	if !strings.HasPrefix(got, "·") || !strings.Contains(got, "█") {
		t.Fatalf("sparkline = %q", got)
	}
	if sparkline(nil) != "" {
		t.Fatalf("empty sparkline = %q", sparkline(nil))
	}
}
