// Package contention implements conflict attribution for the simulated
// machine: a recorder of who-aborted-whom edges — (aggressor processor,
// victim processor, cache line, abort reason, simulated cycle) — fed by
// every hardware coherence abort, UFO kill, and software conflict kill,
// aggregated into a deterministic per-address contention profile (hot
// lines, aggressor→victim matrices) and a cycle-windowed time series of
// commit and abort rates.
//
// This is the measurement layer behind the paper's abort accounting: §5's
// evaluation explains performance through per-cause abort breakdowns
// (Figure 6) and the contention behaviour of the STAMP workloads, and §4.3
// attributes UFO/BTM interaction costs to specific conflicting lines. The
// profile generalizes those figures from whole-run totals to addresses,
// processor pairs, and time.
//
// Profile implements machine.ConflictRecorder (the machine defines the
// interface so the dependency points outward; attach with
// Machine.SetConflictRecorder). Aggregation is deterministic: the engine
// serializes processors within a run, and Report freezes every map into
// name/addr-sorted slices, so equal runs produce byte-identical reports.
package contention

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
)

// lineStat accumulates per-cache-line attribution.
type lineStat struct {
	total    uint64
	byReason [machine.NumAbortReasons]uint64
	aggr     map[int]uint64 // aggressor proc (-1 unknown) → edges
	vict     map[int]uint64 // victim proc → edges
}

// windowStat accumulates one time-series window.
type windowStat struct {
	hwCommits uint64
	swCommits uint64
	aborts    uint64
	swAborts  uint64
	byReason  [machine.NumAbortReasons]uint64
}

// Profile is the accumulating side of the attribution subsystem: one per
// machine run. It implements machine.ConflictRecorder. Like obs.Registry
// it is not safe for concurrent use — the simulation engine serializes
// processors, and parallel sweeps give every cell its own Profile.
type Profile struct {
	procs  int
	window uint64 // time-series window width in cycles; 0 disables the series

	edges      uint64
	swEdges    uint64
	noAddr     uint64
	unknownAgg uint64
	hwCommits  uint64
	swCommits  uint64
	byReason   [machine.NumAbortReasons]uint64
	matrix     []uint64 // procs×procs, aggressor-major
	lines      map[uint64]*lineStat
	windows    map[uint64]*windowStat
}

var _ machine.ConflictRecorder = (*Profile)(nil)

// New returns an empty profile for a machine with the given processor
// count. windowCycles sets the time-series window width W (every event at
// cycle c lands in window c/W); 0 disables the time series.
func New(procs int, windowCycles uint64) *Profile {
	if procs < 1 {
		procs = 1
	}
	return &Profile{
		procs:   procs,
		window:  windowCycles,
		matrix:  make([]uint64, procs*procs),
		lines:   make(map[uint64]*lineStat),
		windows: make(map[uint64]*windowStat),
	}
}

// RecordEdge implements machine.ConflictRecorder.
func (pr *Profile) RecordEdge(e machine.ConflictEdge) {
	pr.edges++
	if int(e.Reason) < len(pr.byReason) {
		pr.byReason[e.Reason]++
	}
	if e.SW {
		pr.swEdges++
	}
	agg := e.Aggressor
	if agg >= pr.procs {
		agg = -1
	}
	if agg >= 0 && e.Victim >= 0 && e.Victim < pr.procs {
		pr.matrix[agg*pr.procs+e.Victim]++
	} else {
		pr.unknownAgg++
	}
	if e.HasAddr {
		line := mem.LineAddr(mem.LineOf(e.Addr))
		ls := pr.lines[line]
		if ls == nil {
			ls = &lineStat{aggr: make(map[int]uint64), vict: make(map[int]uint64)}
			pr.lines[line] = ls
		}
		ls.total++
		if int(e.Reason) < len(ls.byReason) {
			ls.byReason[e.Reason]++
		}
		ls.aggr[agg]++
		ls.vict[e.Victim]++
	} else {
		pr.noAddr++
	}
	if pr.window > 0 {
		w := pr.win(e.Cycle)
		w.aborts++
		if e.SW {
			w.swAborts++
		}
		if int(e.Reason) < len(w.byReason) {
			w.byReason[e.Reason]++
		}
	}
}

// RecordCommit implements machine.ConflictRecorder.
func (pr *Profile) RecordCommit(proc int, hw bool, cycle uint64) {
	if hw {
		pr.hwCommits++
	} else {
		pr.swCommits++
	}
	if pr.window > 0 {
		w := pr.win(cycle)
		if hw {
			w.hwCommits++
		} else {
			w.swCommits++
		}
	}
}

func (pr *Profile) win(cycle uint64) *windowStat {
	i := cycle / pr.window
	w := pr.windows[i]
	if w == nil {
		w = &windowStat{}
		pr.windows[i] = w
	}
	return w
}

// Edges returns the total number of edges recorded so far.
func (pr *Profile) Edges() uint64 { return pr.edges }

// Register copies the profile's headline totals into reg under stable
// contention.* metric names, tying the attribution layer into the same
// obs registry snapshot the rest of the run reports through.
func (pr *Profile) Register(reg *obs.Registry) {
	reg.Counter("contention.edges", "aborts", "who-aborted-whom edges recorded (conflict attribution)").Add(pr.edges)
	reg.Counter("contention.sw_edges", "aborts", "edges whose victim was a software transaction").Add(pr.swEdges)
	reg.Counter("contention.hot_lines", "lines", "distinct cache lines with at least one attributed conflict").Add(uint64(len(pr.lines)))
}
