// Package cm is the contention-management layer shared by every TM
// system in the repo. The paper fixes one policy — capped exponential
// backoff driven by a saturating abort counter, with page faults
// resolved by a fixed stall (§4.4, Algorithm 3) — but treats the choice
// as a first-class design axis in its Figure 8 sensitivity study, and
// later hybrid-TM work (Alistarh et al.; Brown & Ravi, see PAPERS.md)
// shows progress policy can dominate hybrid performance. This package
// therefore makes the policy pluggable: a Policy decides how long an
// aborted transaction waits before retrying and when it should stop
// retrying and escalate, and a Manager binds one policy to one system
// instance, charges the simulated delays, and counts every decision for
// the observability layer.
//
// The default CappedExponential policy reproduces the paper's §4.4
// behaviour cycle-for-cycle: delay = Base << min(attempt, MaxShift)
// plus one uniform jitter draw in [0, Base). Construction funnels
// through Spec, the single validation site — a zero or absurd
// BackoffBase is defaulted here rather than reaching Rand.Intn(0) in
// six hand-rolled retry loops.
package cm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Defaults shared by every policy. DefaultBase and DefaultMaxShift are
// the paper's §4.4 constants (64-cycle unit, saturating 3-bit counter);
// the stall and poll cycles are the fixed costs the systems previously
// hard-coded inline.
const (
	DefaultBase      uint64 = 64
	DefaultMaxShift         = 7
	DefaultStarveK          = 8
	DefaultLinearCap        = 128

	// PageFaultStallCycles models resolving a page fault (touching the
	// page non-transactionally) before re-executing — not contention.
	PageFaultStallCycles uint64 = 500
	// RetryPollCycles is the poll interval for emulated transactional
	// waiting in systems with no native retry support.
	RetryPollCycles uint64 = 2000
	// TokenPollCycles is the spin interval while waiting for the global
	// serialization token.
	TokenPollCycles uint64 = 100
)

// Escalation is a policy's verdict on an aborted transaction: keep
// retrying after a delay, or stop burning attempts and force progress.
type Escalation int

// Escalation verdicts.
const (
	// EscalateNone: back off and retry as usual.
	EscalateNone Escalation = iota
	// EscalateSerialize: the transaction is starving; the system should
	// grant it exclusivity — hybrids fail over to their software path
	// early, systems with no fallback take the Manager's global token.
	EscalateSerialize
)

// Policy decides retry delays and escalation. Implementations must be
// deterministic: the only randomness source is the *sim.Rand handed to
// NextDelay, and exactly one Intn draw is made per call so RNG streams
// stay aligned with the pre-refactor systems. Policies are per machine
// run and are driven by the engine's cooperative scheduler, so they
// need no locking.
type Policy interface {
	// Name identifies the policy in reports and metrics.
	Name() string
	// NextDelay returns the backoff (cycles) before retry attempt
	// `attempt` (the caller's consecutive-abort count for this
	// transaction). It must draw exactly once from r.
	NextDelay(attempt int, reason machine.AbortReason, r *sim.Rand) uint64
	// OnAbort is the escalation hook, consulted before NextDelay. age is
	// the transaction's global begin timestamp (its conflict-resolution
	// priority).
	OnAbort(age uint64, attempt int, reason machine.AbortReason) Escalation
	// OnCommit tells the policy a transaction finished (committed, or
	// completed on an escalated path), so it can retire any state held
	// for it.
	OnCommit(age uint64)
}

// CappedExponential is the paper's policy: Base << min(attempt,
// MaxShift) plus uniform jitter in [0, Base). The clamp is what the
// hand-rolled SLE loop lacked — without it, attempt counts past 57
// overflow the uint64 shift into zero-or-absurd delays.
type CappedExponential struct {
	Base     uint64
	MaxShift int
}

// Name implements Policy.
func (c CappedExponential) Name() string { return "exp" }

// NextDelay implements Policy.
func (c CappedExponential) NextDelay(attempt int, _ machine.AbortReason, r *sim.Rand) uint64 {
	return c.Base<<uint(clamp(attempt, c.MaxShift)) + uint64(r.Intn(int(c.Base)))
}

// OnAbort implements Policy: pure backoff, never escalates.
func (c CappedExponential) OnAbort(uint64, int, machine.AbortReason) Escalation {
	return EscalateNone
}

// OnCommit implements Policy.
func (c CappedExponential) OnCommit(uint64) {}

// Linear backs off proportionally to the attempt count: Base *
// min(attempt, Cap) plus jitter. Gentler than exponential under
// moderate contention (retries stay frequent), at the cost of more
// wasted work when contention is heavy.
type Linear struct {
	Base uint64
	Cap  int
}

// Name implements Policy.
func (l Linear) Name() string { return "linear" }

// NextDelay implements Policy.
func (l Linear) NextDelay(attempt int, _ machine.AbortReason, r *sim.Rand) uint64 {
	n := attempt
	if n < 1 {
		n = 1
	}
	if n > l.Cap {
		n = l.Cap
	}
	return l.Base*uint64(n) + uint64(r.Intn(int(l.Base)))
}

// OnAbort implements Policy.
func (l Linear) OnAbort(uint64, int, machine.AbortReason) Escalation { return EscalateNone }

// OnCommit implements Policy.
func (l Linear) OnCommit(uint64) {}

// Karma is a Polka/Karma-style priority policy: every active
// transaction accrues karma with each abort, and a transaction's
// backoff grows with the karma advantage its strongest rival holds over
// it. A long-suffering transaction (high karma) therefore retries almost
// immediately while newcomers yield — the age-based priority idea of
// Scherer & Scott's contention managers, adapted to the simulator's
// deterministic setting.
type Karma struct {
	Base     uint64
	MaxShift int

	// active tracks (age, karma) for transactions currently retrying.
	// Bounded by the processor count; scanned linearly so iteration
	// order is deterministic.
	active []karmaEntry
}

type karmaEntry struct {
	age   uint64
	karma int
}

// Name implements Policy.
func (k *Karma) Name() string { return "karma" }

// OnAbort implements Policy: record the transaction's karma (its
// consecutive-abort count) so rivals can weigh themselves against it.
func (k *Karma) OnAbort(age uint64, attempt int, _ machine.AbortReason) Escalation {
	for i := range k.active {
		if k.active[i].age == age {
			k.active[i].karma = attempt
			return EscalateNone
		}
	}
	k.active = append(k.active, karmaEntry{age: age, karma: attempt})
	return EscalateNone
}

// OnCommit implements Policy: retire the transaction's karma.
func (k *Karma) OnCommit(age uint64) {
	for i := range k.active {
		if k.active[i].age == age {
			k.active = append(k.active[:i], k.active[i+1:]...)
			return
		}
	}
}

// NextDelay implements Policy. The caller's OnAbort immediately
// precedes this call (Manager guarantees the pairing), so exactly one
// active entry — ours — holds karma == attempt; the strongest remaining
// entry is the rival we yield to. A tied rival leaves deficit 0, i.e.
// the minimal delay.
func (k *Karma) NextDelay(attempt int, _ machine.AbortReason, r *sim.Rand) uint64 {
	rival := 0
	skippedSelf := false
	for _, e := range k.active {
		if !skippedSelf && e.karma == attempt {
			skippedSelf = true
			continue
		}
		if e.karma > rival {
			rival = e.karma
		}
	}
	deficit := rival - attempt
	if deficit < 0 {
		deficit = 0
	}
	return k.Base<<uint(clamp(deficit, k.MaxShift)) + uint64(r.Intn(int(k.Base)))
}

// SerializeOnStarvation wraps another policy and escalates once a
// transaction has aborted K consecutive times, bounding livelock: the
// starving transaction stops paying backoff and is granted exclusivity
// (software failover or the global token, per system).
type SerializeOnStarvation struct {
	Inner Policy
	K     int
}

// Name implements Policy.
func (s SerializeOnStarvation) Name() string {
	return fmt.Sprintf("serialize(%s,K=%d)", s.Inner.Name(), s.K)
}

// NextDelay implements Policy.
func (s SerializeOnStarvation) NextDelay(attempt int, reason machine.AbortReason, r *sim.Rand) uint64 {
	return s.Inner.NextDelay(attempt, reason, r)
}

// OnAbort implements Policy: detect starvation, otherwise defer to the
// inner policy.
func (s SerializeOnStarvation) OnAbort(age uint64, attempt int, reason machine.AbortReason) Escalation {
	if attempt >= s.K {
		return EscalateSerialize
	}
	return s.Inner.OnAbort(age, attempt, reason)
}

// OnCommit implements Policy.
func (s SerializeOnStarvation) OnCommit(age uint64) { s.Inner.OnCommit(age) }

// clamp bounds a shift exponent to [0, maxShift].
func clamp(n, maxShift int) int {
	if n < 0 {
		return 0
	}
	if n > maxShift {
		return maxShift
	}
	return n
}

// Kind names a policy family for Spec and the tmsim -policy flag.
type Kind string

// The selectable policy kinds.
const (
	KindExponential Kind = "exp"
	KindLinear      Kind = "linear"
	KindKarma       Kind = "karma"
	KindSerialize   Kind = "serialize"
)

// Kinds lists the -policy values in presentation order.
var Kinds = []Kind{KindExponential, KindLinear, KindKarma, KindSerialize}

// Spec is a value-type policy selection, safe to copy into every cell
// of a parallel sweep (each cell instantiates its own Policy, so no
// state is shared across machines). The zero Spec selects the default
// CappedExponential with the system's own BackoffBase.
type Spec struct {
	// Kind selects the policy family ("" = exp).
	Kind Kind
	// Base overrides the system's BackoffBase when nonzero.
	Base uint64
	// MaxShift bounds the exponential (and karma) shift; 0 means
	// DefaultMaxShift.
	MaxShift int
	// StarveK is the serialize kind's consecutive-abort threshold; 0
	// means DefaultStarveK.
	StarveK int
}

// ParseSpec resolves a -policy flag value.
func ParseSpec(name string) (Spec, error) {
	switch Kind(name) {
	case "", KindExponential:
		return Spec{Kind: KindExponential}, nil
	case KindLinear:
		return Spec{Kind: KindLinear}, nil
	case KindKarma:
		return Spec{Kind: KindKarma}, nil
	case KindSerialize:
		return Spec{Kind: KindSerialize}, nil
	}
	return Spec{}, fmt.Errorf("cm: unknown policy %q (want one of %v)", name, Kinds)
}

// Validate rejects nonsense knob values. Zero values are never errors —
// they select defaults.
func (s Spec) Validate() error {
	switch s.Kind {
	case "", KindExponential, KindLinear, KindKarma, KindSerialize:
	default:
		return fmt.Errorf("cm: unknown policy kind %q (want one of %v)", s.Kind, Kinds)
	}
	if s.MaxShift < 0 || s.MaxShift > 32 {
		return fmt.Errorf("cm: MaxShift %d out of range [0, 32]", s.MaxShift)
	}
	if s.StarveK < 0 {
		return fmt.Errorf("cm: StarveK %d must be >= 0", s.StarveK)
	}
	if s.Base > 1<<32 {
		return fmt.Errorf("cm: Base %d out of range [0, 2^32]", s.Base)
	}
	return nil
}

// Policy instantiates the spec. base is the owning system's legacy
// BackoffBase knob, overridden by Spec.Base; a zero effective base —
// which used to reach Rand.Intn(0) and panic — falls back to
// DefaultBase here, the single validation site for every system.
func (s Spec) Policy(base uint64) (Policy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Base != 0 {
		base = s.Base
	}
	if base == 0 {
		base = DefaultBase
	}
	shift := s.MaxShift
	if shift == 0 {
		shift = DefaultMaxShift
	}
	switch s.Kind {
	case "", KindExponential:
		return CappedExponential{Base: base, MaxShift: shift}, nil
	case KindLinear:
		return Linear{Base: base, Cap: DefaultLinearCap}, nil
	case KindKarma:
		return &Karma{Base: base, MaxShift: shift}, nil
	case KindSerialize:
		k := s.StarveK
		if k == 0 {
			k = DefaultStarveK
		}
		return SerializeOnStarvation{
			Inner: CappedExponential{Base: base, MaxShift: shift},
			K:     k,
		}, nil
	}
	return nil, fmt.Errorf("cm: unknown policy kind %q", s.Kind)
}

// Stats counts the Manager's decisions for one machine run.
type Stats struct {
	Delays                uint64 // backoff delays issued
	DelayCycles           uint64 // total cycles spent in backoff
	MaxDelay              uint64 // largest single backoff
	PageFaultStalls       uint64 // page-fault resolution stalls
	RetryPolls            uint64 // emulated-retry poll sleeps
	StarvationEscalations uint64 // OnAbort verdicts that escalated
	TokenAcquisitions     uint64 // global serialization token grants
	TokenWaitCycles       uint64 // cycles spent waiting for the token
}

// Manager binds one Policy to one system instance on one machine. The
// engine's cooperative scheduler serializes every processor of a
// machine, so the Manager's state needs no locking; parallel sweep
// cells each build their own Manager from a copied Spec.
type Manager struct {
	pol   Policy
	stats Stats

	tokenHeld  bool
	tokenOwner uint64
}

// NewManager instantiates spec over the system's legacy base. Spec
// errors panic: every Spec reaching a Manager comes from ParseSpec or a
// zero value, both always valid; a hand-built invalid Spec is a
// programming error.
func NewManager(spec Spec, base uint64) *Manager {
	pol, err := spec.Policy(base)
	if err != nil {
		panic(err.Error())
	}
	return &Manager{pol: pol}
}

// PolicyName names the bound policy.
func (m *Manager) PolicyName() string { return m.pol.Name() }

// Stats exposes the decision counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// OnAbort runs the policy for one abort of the transaction with the
// given age and consecutive-abort count. On EscalateNone it charges the
// policy's backoff delay to p and returns; on escalation it charges
// nothing — the caller serializes the transaction (failover or
// AcquireToken) instead of waiting.
func (m *Manager) OnAbort(p *machine.Proc, age uint64, attempt int, reason machine.AbortReason) Escalation {
	esc := m.pol.OnAbort(age, attempt, reason)
	if esc != EscalateNone {
		m.stats.StarvationEscalations++
		return esc
	}
	d := m.pol.NextDelay(attempt, reason, p.Rand())
	m.stats.Delays++
	m.stats.DelayCycles += d
	if d > m.stats.MaxDelay {
		m.stats.MaxDelay = d
	}
	p.Elapse(d)
	p.TxLifeBackoff(d)
	return EscalateNone
}

// PageFaultStall charges the fixed fault-resolution stall (the paper's
// "resolve the fault and retry" path) — not a contention decision, so
// no policy consultation and no abort-counter advance.
func (m *Manager) PageFaultStall(p *machine.Proc) {
	m.stats.PageFaultStalls++
	p.Elapse(PageFaultStallCycles)
	p.TxLifeBackoff(PageFaultStallCycles)
}

// RetryPoll charges one poll interval of emulated transactional waiting
// (systems with no native retry support re-execute periodically).
func (m *Manager) RetryPoll(p *machine.Proc) {
	m.stats.RetryPolls++
	p.Elapse(RetryPollCycles)
}

// AcquireToken grants the global serialization token to owner, spinning
// (in simulated time) while another transaction holds it. Re-entrant
// for the current holder. Callers must release via TxDone.
func (m *Manager) AcquireToken(p *machine.Proc, owner uint64) {
	if m.tokenHeld && m.tokenOwner == owner {
		return
	}
	start := p.Now()
	for m.tokenHeld {
		p.Elapse(TokenPollCycles)
	}
	m.tokenHeld = true
	m.tokenOwner = owner
	m.stats.TokenAcquisitions++
	m.stats.TokenWaitCycles += p.Now() - start
}

// TxDone tells the Manager a transaction completed: the token is
// released if that transaction held it, and the policy retires any
// per-transaction state.
func (m *Manager) TxDone(owner uint64) {
	if m.tokenHeld && m.tokenOwner == owner {
		m.tokenHeld = false
	}
	m.pol.OnCommit(owner)
}

// Register publishes the decision counters into an obs registry under
// cm.* (see OBSERVABILITY.md).
func (m *Manager) Register(reg *obs.Registry) {
	reg.Counter("cm.delays", "delays", "backoff delays issued by the contention-management policy").Add(m.stats.Delays)
	reg.Counter("cm.delay_cycles", "cycles", "total cycles spent in contention backoff").Add(m.stats.DelayCycles)
	reg.MaxGauge("cm.max_delay", "cycles", "largest single backoff delay issued (merges by max)").Set(float64(m.stats.MaxDelay))
	reg.Counter("cm.page_fault_stalls", "stalls", "page-fault resolution stalls (fixed cost, not contention)").Add(m.stats.PageFaultStalls)
	reg.Counter("cm.retry_polls", "polls", "emulated transactional-waiting poll sleeps").Add(m.stats.RetryPolls)
	reg.Counter("cm.starvation_escalations", "escalations", "aborts the policy escalated instead of backing off").Add(m.stats.StarvationEscalations)
	reg.Counter("cm.token_acquisitions", "grants", "global serialization token acquisitions").Add(m.stats.TokenAcquisitions)
	reg.Counter("cm.token_wait_cycles", "cycles", "cycles spent waiting for the serialization token").Add(m.stats.TokenWaitCycles)
}

// Tunable is implemented by systems whose backoff policy can be
// selected before their first transaction runs (harness.Build wires
// Options.CM through this).
type Tunable interface {
	SetBackoffPolicy(Spec)
}

// Instrumented is implemented by systems that expose their Manager so
// the harness can register cm.* metrics and annotate contention
// reports.
type Instrumented interface {
	CM() *Manager
}
