package cm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// TestSerializeBoundary pins the starvation-escalation boundary: every
// attempt strictly below K backs off normally (a delay is issued and
// charged to the processor), while attempts at and past K escalate
// without charging any backoff — the starving transaction must not pay
// to be serialized.
func TestSerializeBoundary(t *testing.T) {
	const K = 4
	cases := []struct {
		attempt int
		want    Escalation
	}{
		{1, EscalateNone},
		{K - 2, EscalateNone},
		{K - 1, EscalateNone},
		{K, EscalateSerialize},
		{K + 1, EscalateSerialize},
		{K + 100, EscalateSerialize},
	}
	m := testMachine(1)
	mgr := NewManager(Spec{Kind: KindSerialize, StarveK: K}, 64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for _, tc := range cases {
			before := p.Now()
			esc := mgr.OnAbort(p, 1, tc.attempt, machine.AbortConflict)
			if esc != tc.want {
				t.Errorf("attempt %d: escalation %v, want %v", tc.attempt, esc, tc.want)
			}
			charged := p.Now() - before
			if tc.want == EscalateNone && charged == 0 {
				t.Errorf("attempt %d: no backoff charged before the threshold", tc.attempt)
			}
			if tc.want == EscalateSerialize && charged != 0 {
				t.Errorf("attempt %d: escalation charged %d cycles, want 0", tc.attempt, charged)
			}
		}
	}})
	st := mgr.Stats()
	if st.Delays != 3 || st.StarvationEscalations != 3 {
		t.Fatalf("stats = %+v, want 3 delays and 3 escalations", st)
	}
}

// TestKarmaTies drives Karma.NextDelay through rival constellations,
// checking the deficit arithmetic at its edges: a tied rival (deficit
// 0), no rival at all, a weaker rival (negative deficit clamps to 0),
// and a stronger one. Base=64, so a zero deficit yields a delay in
// [64, 128) — the shift applies before the jitter draw.
func TestKarmaTies(t *testing.T) {
	const base = 64
	cases := []struct {
		name string
		// rivals are the karma values of other active transactions
		// (ages are assigned distinct from the subject's).
		rivals  []int
		attempt int
		wantLo  uint64 // inclusive
		wantHi  uint64 // exclusive
	}{
		{"no-rivals", nil, 3, base, 2 * base},
		{"tied-rival", []int{3}, 3, base, 2 * base},
		{"weaker-rival", []int{1}, 3, base, 2 * base},
		{"stronger-by-2", []int{5}, 3, base << 2, base<<2 + base},
		{"two-tied-rivals", []int{4, 4}, 4, base, 2 * base},
		{"strongest-wins", []int{2, 6, 4}, 3, base << 3, base<<3 + base},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := &Karma{Base: base, MaxShift: 7}
			k.OnAbort(1, tc.attempt, machine.AbortConflict) // the subject
			for i, rv := range tc.rivals {
				k.OnAbort(uint64(100+i), rv, machine.AbortConflict)
			}
			r := sim.NewRand(9)
			for i := 0; i < 16; i++ { // several jitter draws, same bounds
				d := k.NextDelay(tc.attempt, machine.AbortConflict, r)
				if d < tc.wantLo || d >= tc.wantHi {
					t.Fatalf("delay %d outside [%d, %d)", d, tc.wantLo, tc.wantHi)
				}
			}
		})
	}
}

// TestKarmaOnAbortUpdatesInPlace: repeated aborts of one transaction
// update its single active entry rather than accumulating duplicates
// (a duplicate would shadow the self-skip in NextDelay and make the
// transaction its own rival).
func TestKarmaOnAbortUpdatesInPlace(t *testing.T) {
	k := &Karma{Base: 64, MaxShift: 7}
	for attempt := 1; attempt <= 5; attempt++ {
		k.OnAbort(7, attempt, machine.AbortConflict)
	}
	if len(k.active) != 1 {
		t.Fatalf("%d active entries after 5 aborts of one tx, want 1", len(k.active))
	}
	if k.active[0].karma != 5 {
		t.Fatalf("karma %d, want 5 (latest attempt)", k.active[0].karma)
	}
	// With no rivals the veteran retries at the minimum delay.
	if d := k.NextDelay(5, machine.AbortConflict, sim.NewRand(1)); d >= 128 {
		t.Fatalf("lone veteran delay %d, want < 128", d)
	}
}

// TestTokenReentrancy pins the serialize path's token protocol around
// re-entry: nested acquisitions by the holder are free, TxDone by a
// non-holder must not release the token, and a fresh acquisition after
// release is a new grant.
func TestTokenReentrancy(t *testing.T) {
	m := testMachine(1)
	mgr := NewManager(Spec{Kind: KindSerialize, StarveK: 2}, 64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		mgr.AcquireToken(p, 1)
		mgr.AcquireToken(p, 1) // re-entrant: same owner, no second grant
		mgr.AcquireToken(p, 1)
		if got := mgr.Stats().TokenAcquisitions; got != 1 {
			t.Errorf("re-entrant acquisitions counted %d grants, want 1", got)
		}
		mgr.TxDone(2) // a non-holder completing must not release owner 1
		if !mgr.tokenHeld {
			t.Error("TxDone by non-holder released the token")
		}
		mgr.TxDone(1)
		if mgr.tokenHeld {
			t.Error("TxDone by holder left the token held")
		}
		mgr.TxDone(1)          // double release is a no-op
		mgr.AcquireToken(p, 2) // fresh grant after release
		if got := mgr.Stats().TokenAcquisitions; got != 2 {
			t.Errorf("acquisitions = %d after re-grant, want 2", got)
		}
		mgr.TxDone(2)
	}})
	if mgr.tokenHeld {
		t.Fatal("token leaked out of the run")
	}
}
