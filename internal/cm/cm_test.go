package cm

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	return machine.New(p)
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero spec", Spec{}, true},
		{"exp", Spec{Kind: KindExponential}, true},
		{"linear", Spec{Kind: KindLinear}, true},
		{"karma", Spec{Kind: KindKarma}, true},
		{"serialize", Spec{Kind: KindSerialize}, true},
		{"explicit knobs", Spec{Kind: KindExponential, Base: 32, MaxShift: 5}, true},
		{"zero base ok (defaulted)", Spec{Base: 0}, true},
		{"unknown kind", Spec{Kind: "polite"}, false},
		{"negative shift", Spec{MaxShift: -1}, false},
		{"huge shift", Spec{MaxShift: 33}, false},
		{"negative starveK", Spec{StarveK: -1}, false},
		{"absurd base", Spec{Base: 1 << 40}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
		// Policy must agree with Validate.
		if _, err := c.spec.Policy(64); (err == nil) != c.ok {
			t.Errorf("%s: Policy() error = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParseSpec(t *testing.T) {
	for _, k := range Kinds {
		s, err := ParseSpec(string(k))
		if err != nil || s.Kind != k {
			t.Fatalf("ParseSpec(%q) = %+v, %v", k, s, err)
		}
	}
	if s, err := ParseSpec(""); err != nil || s.Kind != KindExponential {
		t.Fatalf("ParseSpec(\"\") = %+v, %v; want exp", s, err)
	}
	if _, err := ParseSpec("bogus"); err == nil {
		t.Fatal("ParseSpec(bogus) must fail")
	}
}

// TestZeroBaseGuarded is the regression for the Rand().Intn(0) panic:
// before the shared constructor existed, a system configured with
// BackoffBase = 0 panicked on its first backoff. Every kind must accept
// a zero base (falling back to DefaultBase) and issue a sane delay.
func TestZeroBaseGuarded(t *testing.T) {
	r := sim.NewRand(1)
	for _, k := range Kinds {
		pol, err := Spec{Kind: k}.Policy(0)
		if err != nil {
			t.Fatalf("%s: Policy(0) error: %v", k, err)
		}
		d := pol.NextDelay(1, machine.AbortConflict, r) // panics without the guard
		if d == 0 || d > DefaultBase<<DefaultMaxShift+DefaultBase {
			t.Fatalf("%s: NextDelay with defaulted base = %d", k, d)
		}
	}
}

// TestCappedExponentialMonotoneCapped proves the delay schedule is
// monotone non-decreasing and saturates at Base << MaxShift — i.e. the
// SLE overflow (`Base << attempt` for attempt up to 80 wrapping the
// uint64) cannot recur. Base 1 makes the jitter draw Intn(1) == 0, so
// the schedule is exact.
func TestCappedExponentialMonotoneCapped(t *testing.T) {
	pol := CappedExponential{Base: 1, MaxShift: DefaultMaxShift}
	r := sim.NewRand(7)
	prev := uint64(0)
	for attempt := 0; attempt < 80; attempt++ {
		d := pol.NextDelay(attempt, machine.AbortConflict, r)
		if d < prev {
			t.Fatalf("attempt %d: delay %d < previous %d (not monotone)", attempt, d, prev)
		}
		if d > 1<<DefaultMaxShift {
			t.Fatalf("attempt %d: delay %d exceeds the cap %d", attempt, d, 1<<DefaultMaxShift)
		}
		if attempt >= DefaultMaxShift && d != 1<<DefaultMaxShift {
			t.Fatalf("attempt %d: delay %d, want saturated %d", attempt, d, 1<<DefaultMaxShift)
		}
		prev = d
	}
	// With the paper's base the jitter stays within [0, Base).
	pol = CappedExponential{Base: 64, MaxShift: 7}
	for _, attempt := range []int{1, 7, 60, 80} {
		d := pol.NextDelay(attempt, machine.AbortConflict, r)
		lo := uint64(64) << uint(clamp(attempt, 7))
		if d < lo || d >= lo+64 {
			t.Fatalf("attempt %d: delay %d outside [%d, %d)", attempt, d, lo, lo+64)
		}
	}
}

func TestLinearCapped(t *testing.T) {
	pol := Linear{Base: 1, Cap: DefaultLinearCap}
	r := sim.NewRand(3)
	if d := pol.NextDelay(0, machine.AbortConflict, r); d != 1 {
		t.Fatalf("attempt 0: delay %d, want 1 (floor)", d)
	}
	if d := pol.NextDelay(5, machine.AbortConflict, r); d != 5 {
		t.Fatalf("attempt 5: delay %d, want 5", d)
	}
	if d := pol.NextDelay(10_000, machine.AbortConflict, r); d != DefaultLinearCap {
		t.Fatalf("attempt 10000: delay %d, want capped %d", d, DefaultLinearCap)
	}
}

// TestKarmaPriority: the much-aborted transaction retries almost
// immediately; its fresh rival yields proportionally to the karma
// deficit. Base 1 zeroes the jitter.
func TestKarmaPriority(t *testing.T) {
	k := &Karma{Base: 1, MaxShift: 7}
	r := sim.NewRand(5)

	k.OnAbort(100, 1, machine.AbortConflict) // newcomer: karma 1
	k.OnAbort(200, 5, machine.AbortConflict) // veteran: karma 5

	if d := k.NextDelay(5, machine.AbortConflict, r); d != 1 {
		t.Fatalf("veteran delay %d, want 1 (no stronger rival)", d)
	}
	if d := k.NextDelay(1, machine.AbortConflict, r); d != 1<<4 {
		t.Fatalf("newcomer delay %d, want %d (deficit 4)", d, 1<<4)
	}

	// The veteran commits: the newcomer has no rivals left.
	k.OnCommit(200)
	if d := k.NextDelay(1, machine.AbortConflict, r); d != 1 {
		t.Fatalf("post-commit delay %d, want 1", d)
	}
	k.OnCommit(100)
	if len(k.active) != 0 {
		t.Fatalf("karma leaked entries: %v", k.active)
	}
}

func TestSerializeEscalatesAfterK(t *testing.T) {
	pol := SerializeOnStarvation{Inner: CappedExponential{Base: 64, MaxShift: 7}, K: 3}
	for attempt := 1; attempt < 3; attempt++ {
		if esc := pol.OnAbort(1, attempt, machine.AbortConflict); esc != EscalateNone {
			t.Fatalf("attempt %d escalated early", attempt)
		}
	}
	if esc := pol.OnAbort(1, 3, machine.AbortConflict); esc != EscalateSerialize {
		t.Fatal("attempt 3 must escalate")
	}
	if !strings.Contains(pol.Name(), "serialize") {
		t.Fatalf("name %q", pol.Name())
	}
}

func TestManagerBackoffStats(t *testing.T) {
	m := testMachine(1)
	mgr := NewManager(Spec{}, 64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for attempt := 1; attempt <= 3; attempt++ {
			if esc := mgr.OnAbort(p, 1, attempt, machine.AbortConflict); esc != EscalateNone {
				t.Errorf("default policy escalated on attempt %d", attempt)
			}
		}
		mgr.PageFaultStall(p)
		mgr.RetryPoll(p)
	}})
	st := mgr.Stats()
	if st.Delays != 3 || st.DelayCycles == 0 || st.MaxDelay < 64<<3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PageFaultStalls != 1 || st.RetryPolls != 1 {
		t.Fatalf("stall counters = %+v", st)
	}
	if mgr.PolicyName() != "exp" {
		t.Fatalf("policy name %q", mgr.PolicyName())
	}
}

func TestManagerStarvationEscalation(t *testing.T) {
	m := testMachine(1)
	mgr := NewManager(Spec{Kind: KindSerialize, StarveK: 2}, 64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		if esc := mgr.OnAbort(p, 1, 1, machine.AbortConflict); esc != EscalateNone {
			t.Error("attempt 1 escalated early")
		}
		if esc := mgr.OnAbort(p, 1, 2, machine.AbortConflict); esc != EscalateSerialize {
			t.Error("attempt 2 must escalate")
		}
	}})
	st := mgr.Stats()
	if st.StarvationEscalations != 1 || st.Delays != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestManagerToken: mutual exclusion, re-entrancy, release on TxDone,
// and simulated wait time for the blocked acquirer.
func TestManagerToken(t *testing.T) {
	m := testMachine(2)
	mgr := NewManager(Spec{}, 64)
	order := []int{}
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			mgr.AcquireToken(p, 1)
			mgr.AcquireToken(p, 1) // re-entrant: no second grant
			p.Elapse(1000)
			order = append(order, 0)
			mgr.TxDone(1)
		},
		func(p *machine.Proc) {
			p.Elapse(10) // let proc 0 win the token deterministically
			mgr.AcquireToken(p, 2)
			order = append(order, 1)
			mgr.TxDone(2)
		},
	})
	st := mgr.Stats()
	if st.TokenAcquisitions != 2 {
		t.Fatalf("acquisitions = %d, want 2", st.TokenAcquisitions)
	}
	if st.TokenWaitCycles == 0 {
		t.Fatal("proc 1 must have waited for the token")
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v: token did not serialize", order)
	}
	if mgr.tokenHeld {
		t.Fatal("token leaked")
	}
}

// TestMetricsRegistered: the cm.* counters land in an obs registry with
// the Manager's values (OBSERVABILITY.md contract).
func TestMetricsRegistered(t *testing.T) {
	m := testMachine(1)
	mgr := NewManager(Spec{Kind: KindSerialize, StarveK: 1}, 64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		mgr.OnAbort(p, 1, 1, machine.AbortConflict) // escalates immediately
		mgr.PageFaultStall(p)
	}})
	reg := obs.NewRegistry()
	mgr.Register(reg)
	snap := reg.Snapshot()
	if snap.Counter("cm.starvation_escalations") != 1 {
		t.Fatalf("cm.starvation_escalations = %d, want 1", snap.Counter("cm.starvation_escalations"))
	}
	if snap.Counter("cm.page_fault_stalls") != 1 {
		t.Fatalf("cm.page_fault_stalls = %d, want 1", snap.Counter("cm.page_fault_stalls"))
	}
}
