package txstats

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

// script drives a recorder through a hand-computed two-processor run:
//
//	proc 0: begin@10, HTM attempt@12, conflict(agg=1), abort coherence@20
//	        (wasted 8), backoff 5, HTM attempt@25, commit@40 (useful 15)
//	proc 1: begin@10, HTM attempt@10, commit@30 (useful 20)
//
// proc 0 latency 30 = useful 15 + wasted 8 + backoff 5 + overhead 2.
// proc 1 latency 20 = useful 20.
func script(r *Recorder) {
	r.TxBegin(0, 10)
	r.TxBegin(1, 10)
	r.TxAttempt(1, machine.PathHTM, 10)
	r.TxAttempt(0, machine.PathHTM, 12)
	r.TxConflict(0, 1)
	r.TxAbort(0, machine.PathHTM, machine.AbortConflict, 20)
	r.TxBackoff(0, 5)
	r.TxAttempt(0, machine.PathHTM, 25)
	r.TxCommit(1, machine.PathHTM, 30)
	r.TxCommit(0, machine.PathHTM, 40)
}

func TestRecorderAccounting(t *testing.T) {
	r := New(2)
	script(r)
	rep := r.Report()
	if rep.Begun != 2 || rep.Committed != 2 || rep.InFlight != 0 {
		t.Fatalf("counts = %d/%d/%d", rep.Begun, rep.Committed, rep.InFlight)
	}
	if rep.UsefulCycles != 35 || rep.WastedCycles != 8 || rep.BackoffCycles != 5 || rep.OverheadCycles != 2 {
		t.Fatalf("cycle split = useful %d wasted %d backoff %d overhead %d",
			rep.UsefulCycles, rep.WastedCycles, rep.BackoffCycles, rep.OverheadCycles)
	}
	// The identity: committed latencies sum to the full split.
	totalLat := rep.UsefulCycles + rep.WastedCycles + rep.BackoffCycles + rep.RetryWaitCycles + rep.OverheadCycles
	if totalLat != 30+20 {
		t.Fatalf("latency identity broken: split sums to %d, want 50", totalLat)
	}
	if rep.Latency.Count != 2 || rep.Latency.Sum != 50 || rep.Latency.Max != 30 {
		t.Fatalf("latency hist = %+v", rep.Latency)
	}
	if rep.LatencyPercentiles == nil || rep.LatencyPercentiles.P999 > float64(rep.Latency.Max) {
		t.Fatalf("percentiles = %+v", rep.LatencyPercentiles)
	}
	if rep.Attempts.Count != 2 || rep.Attempts.Sum != 3 {
		t.Fatalf("attempts hist = %+v", rep.Attempts)
	}
	if len(rep.CommitsByPath) != 1 || rep.CommitsByPath[0] != (PathCount{Path: "htm", Count: 2}) {
		t.Fatalf("commits by path = %+v", rep.CommitsByPath)
	}
	if len(rep.Aborts) != 1 {
		t.Fatalf("aborts = %+v", rep.Aborts)
	}
	ab := rep.Aborts[0]
	if ab.Path != "htm" || ab.Reason != machine.AbortConflict.String() || ab.Count != 1 || ab.WastedCycles != 8 {
		t.Fatalf("abort bucket = %+v", ab)
	}
	// The wasted 8 cycles are charged to aggressor proc 1.
	if len(rep.AggressorWasted) != 1 || rep.AggressorWasted[0] != (ProcCycles{Proc: 1, Cycles: 8}) {
		t.Fatalf("aggressor wasted = %+v (unknown %d)", rep.AggressorWasted, rep.UnknownWasted)
	}
}

func TestRecorderRetryWait(t *testing.T) {
	r := New(1)
	r.TxBegin(0, 0)
	r.TxAttempt(0, machine.PathSW, 0)
	r.TxRetryWait(0, 8)
	r.TxAttempt(0, machine.PathSW, 50) // waited 0..50
	r.TxCommit(0, machine.PathSW, 60)
	rep := r.Report()
	if rep.RetryWaits != 1 || rep.RetryWaitCycles != 50 {
		t.Fatalf("retry wait = %d waits, %d cycles", rep.RetryWaits, rep.RetryWaitCycles)
	}
	if rep.UsefulCycles != 10 || rep.WastedCycles != 0 || rep.OverheadCycles != 0 {
		t.Fatalf("split = useful %d wasted %d overhead %d",
			rep.UsefulCycles, rep.WastedCycles, rep.OverheadCycles)
	}
}

func TestRecorderInFlight(t *testing.T) {
	r := New(1)
	r.TxBegin(0, 0)
	r.TxAttempt(0, machine.PathUFO, 0)
	r.TxAbort(0, machine.PathUFO, machine.AbortExplicit, 30)
	rep := r.Report()
	if rep.Begun != 1 || rep.Committed != 0 || rep.InFlight != 1 {
		t.Fatalf("counts = %d/%d/%d", rep.Begun, rep.Committed, rep.InFlight)
	}
	// Wasted cycles of a never-committed tx still attribute; with no
	// conflict recorded they land in UnknownWasted.
	if rep.WastedCycles != 30 || rep.UnknownWasted != 30 {
		t.Fatalf("wasted = %d, unknown = %d", rep.WastedCycles, rep.UnknownWasted)
	}
	if rep.Latency != nil {
		t.Fatalf("latency hist should be absent with no commits: %+v", rep.Latency)
	}
}

// TestReportAddCommutative: merging cell reports in either order encodes
// byte-identically — the property parallel sweep aggregation relies on.
func TestReportAddCommutative(t *testing.T) {
	mk := func(n int) *Report {
		r := New(2)
		for i := 0; i < n; i++ {
			script(r)
		}
		return r.Report()
	}
	enc := func(rep *Report) []byte {
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ab, ba := mk(1), mk(3)
	ab.Add(mk(3))
	ba.Add(mk(1))
	if !bytes.Equal(enc(ab), enc(ba)) {
		t.Fatalf("merge order changed encoding:\n%s\nvs\n%s", enc(ab), enc(ba))
	}
	if ab.Committed != 8 {
		t.Fatalf("merged committed = %d, want 8", ab.Committed)
	}
	if ab.Latency.Count != 8 || ab.Latency.Sum != 4*50 {
		t.Fatalf("merged latency = %+v", ab.Latency)
	}
	if ab.LatencyPercentiles == nil {
		t.Fatal("merged report lost percentiles")
	}
	// Add into an empty report copies rather than aliasing.
	var zero Report
	zero.Add(mk(1))
	if zero.Committed != 2 || zero.Latency == nil {
		t.Fatalf("merge into zero report = %+v", zero)
	}
}

func TestRecorderRegister(t *testing.T) {
	r := New(2)
	script(r)
	reg := obs.NewRegistry()
	r.Register(reg)
	s := reg.Snapshot()
	if got := s.Get("txstats.committed"); got == nil || got.Value != 2 {
		t.Fatalf("txstats.committed = %+v", got)
	}
	if got := s.Get("txstats.wasted_cycles"); got == nil || got.Value != 8 {
		t.Fatalf("txstats.wasted_cycles = %+v", got)
	}
	lat := s.Get("txstats.latency")
	if lat == nil || lat.Hist == nil || lat.Hist.Count != 2 || lat.Hist.Max != 30 {
		t.Fatalf("txstats.latency = %+v", lat)
	}
}

// TestRecorderIgnoresStray: events for out-of-range processors or with
// no transaction in flight are dropped rather than corrupting state.
func TestRecorderIgnoresStray(t *testing.T) {
	r := New(1)
	r.TxAttempt(0, machine.PathHTM, 5) // no begin
	r.TxCommit(0, machine.PathHTM, 9)
	r.TxBegin(7, 0) // out of range
	r.TxAbort(-1, machine.PathHTM, machine.AbortConflict, 3)
	rep := r.Report()
	if rep.Begun != 0 || rep.Committed != 0 || rep.WastedCycles != 0 {
		t.Fatalf("stray events recorded: %+v", rep)
	}
}
