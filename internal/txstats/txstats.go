// Package txstats implements per-transaction lifecycle accounting for
// the simulated machine: a recorder of begin/attempt/abort/commit events
// — fed by every TM system's Atomic loop through the Proc.TxLife* hooks
// — aggregated into a deterministic profile of transaction latency
// (commit-to-commit wall cycles, wide power-of-two histogram),
// retries-to-commit, and a wasted-work breakdown that splits every
// committed transaction's cycles into useful work, wasted (aborted)
// attempts, contention-management backoff, Retry waiting, and residual
// overhead.
//
// This is the measurement layer behind the paper's §5 discussion of
// where hybrid-TM time goes: Figure 5 reports throughput, but explaining
// *why* a configuration wins needs the latency distribution and the
// cycles destroyed by each abort cause on each execution path (HTM, UFO,
// software, serialized fallback). The wasted-work attribution is
// cross-linked to the conflict edges internal/contention records: the
// recorder remembers each victim's most recent aggressor and charges the
// aborted attempt's cycles to that processor.
//
// Recorder implements machine.TxRecorder (the machine defines the
// interface so the dependency points outward; attach with
// Machine.SetTxRecorder). Aggregation is deterministic: the engine
// serializes the hooks in ordered sections, and Report freezes every
// accumulator into declaration-ordered or sorted slices, so equal runs
// produce byte-identical reports.
package txstats

import (
	"repro/internal/machine"
	"repro/internal/obs"
)

// txState tracks one processor's in-flight transaction.
type txState struct {
	active       bool
	hasArrival   bool   // open-loop request: arrival is valid
	arrival      uint64 // request arrival cycle (TxLifeArrival)
	begin        uint64 // cycle of TxBegin
	attempts     uint64 // attempts so far (including the current one)
	path         machine.TxPath
	attemptStart uint64 // cycle the current attempt (or Retry wait) started
	waiting      bool   // suspended in Retry: attemptStart..next attempt is wait time
	wasted       uint64 // cycles in aborted attempts so far
	backoff      uint64 // cycles in cm backoff so far
	retryWait    uint64 // cycles suspended in Retry so far
	aggressor    int    // most recent conflict aggressor, -1 if none
}

// Recorder is the accumulating side of the lifecycle subsystem: one per
// machine run. It implements machine.TxRecorder. Like obs.Registry it is
// not safe for concurrent use — the simulation engine serializes
// processors, and parallel sweeps give every cell its own Recorder.
type Recorder struct {
	procs int
	tx    []txState

	begun     uint64
	committed uint64

	commitsByPath  [machine.NumTxPaths]uint64
	attemptsByPath [machine.NumTxPaths]uint64
	aborts         [machine.NumTxPaths][machine.NumAbortReasons]uint64
	wastedBy       [machine.NumTxPaths][machine.NumAbortReasons]uint64

	usefulCycles    uint64
	wastedCycles    uint64
	backoffCycles   uint64
	retryWaitCycles uint64
	overheadCycles  uint64
	retryWaits      uint64

	aggressorWasted []uint64 // per aggressor proc: cycles their conflicts destroyed
	unknownWasted   uint64   // wasted cycles with no recorded aggressor

	latency  *obs.Histogram // per committed tx: commit cycle - begin cycle
	attempts obs.Histogram  // per committed tx: attempts to commit

	// Open-loop request accounting (fed by Proc.TxLifeArrival; zero for
	// closed-loop workloads, which never tag arrivals).
	pendingArrival []uint64 // per proc: arrival cycle awaiting the next TxBegin
	pendingValid   []bool
	requests       uint64
	response       *obs.Histogram // per request: commit cycle - arrival cycle
	queueWait      *obs.Histogram // per request: begin cycle - arrival cycle
}

var (
	_ machine.TxRecorder        = (*Recorder)(nil)
	_ machine.TxArrivalRecorder = (*Recorder)(nil)
)

// New returns an empty recorder for a machine with the given processor
// count.
func New(procs int) *Recorder {
	if procs < 1 {
		procs = 1
	}
	r := &Recorder{
		procs:           procs,
		tx:              make([]txState, procs),
		aggressorWasted: make([]uint64, procs),
		latency:         obs.NewWideHistogram(),
		pendingArrival:  make([]uint64, procs),
		pendingValid:    make([]bool, procs),
		response:        obs.NewWideHistogram(),
		queueWait:       obs.NewWideHistogram(),
	}
	for i := range r.tx {
		r.tx[i].aggressor = -1
	}
	return r
}

// TxBegin implements machine.TxRecorder.
func (r *Recorder) TxBegin(proc int, cycle uint64) {
	if proc < 0 || proc >= r.procs {
		return
	}
	r.begun++
	r.tx[proc] = txState{active: true, begin: cycle, attemptStart: cycle, aggressor: -1}
	if r.pendingValid[proc] {
		r.tx[proc].hasArrival = true
		r.tx[proc].arrival = r.pendingArrival[proc]
		r.pendingValid[proc] = false
	}
}

// TxArrival implements machine.TxArrivalRecorder: the next TxBegin on
// proc services an open-loop request that arrived at the given cycle.
func (r *Recorder) TxArrival(proc int, cycle uint64) {
	if proc < 0 || proc >= r.procs {
		return
	}
	r.pendingArrival[proc] = cycle
	r.pendingValid[proc] = true
}

// TxAttempt implements machine.TxRecorder.
func (r *Recorder) TxAttempt(proc int, path machine.TxPath, cycle uint64) {
	if proc < 0 || proc >= r.procs || !r.tx[proc].active {
		return
	}
	t := &r.tx[proc]
	if t.waiting {
		// The whole interval since the Retry attempt started counts as
		// transactional waiting, not wasted work.
		w := cycle - t.attemptStart
		t.retryWait += w
		r.retryWaitCycles += w
		t.waiting = false
	}
	t.attempts++
	t.path = path
	t.attemptStart = cycle
	if int(path) < len(r.attemptsByPath) {
		r.attemptsByPath[path]++
	}
}

// TxAbort implements machine.TxRecorder.
func (r *Recorder) TxAbort(proc int, path machine.TxPath, reason machine.AbortReason, cycle uint64) {
	if proc < 0 || proc >= r.procs || !r.tx[proc].active {
		return
	}
	t := &r.tx[proc]
	w := cycle - t.attemptStart
	t.wasted += w
	r.wastedCycles += w
	if int(path) < len(r.aborts) && int(reason) < len(r.aborts[path]) {
		r.aborts[path][reason]++
		r.wastedBy[path][reason] += w
	}
	if t.aggressor >= 0 && t.aggressor < r.procs {
		r.aggressorWasted[t.aggressor] += w
	} else {
		r.unknownWasted += w
	}
	t.aggressor = -1
	// Anything until the next attempt (backoff aside) is overhead.
	t.attemptStart = cycle
}

// TxRetryWait implements machine.TxRecorder.
func (r *Recorder) TxRetryWait(proc int, cycle uint64) {
	if proc < 0 || proc >= r.procs || !r.tx[proc].active {
		return
	}
	r.retryWaits++
	r.tx[proc].waiting = true
}

// TxBackoff implements machine.TxRecorder.
func (r *Recorder) TxBackoff(proc int, cycles uint64) {
	if proc < 0 || proc >= r.procs || !r.tx[proc].active {
		return
	}
	r.tx[proc].backoff += cycles
	r.backoffCycles += cycles
}

// TxCommit implements machine.TxRecorder.
func (r *Recorder) TxCommit(proc int, path machine.TxPath, cycle uint64) {
	if proc < 0 || proc >= r.procs || !r.tx[proc].active {
		return
	}
	t := &r.tx[proc]
	r.committed++
	if int(path) < len(r.commitsByPath) {
		r.commitsByPath[path]++
	}
	lat := cycle - t.begin
	useful := cycle - t.attemptStart
	r.usefulCycles += useful
	// The intervals are disjoint sub-ranges of [begin, commit], so the
	// residual is non-negative: begin-to-first-attempt setup plus
	// abort-to-retry gaps not spent in cm backoff.
	r.overheadCycles += lat - useful - t.wasted - t.backoff - t.retryWait
	r.latency.Observe(lat)
	r.attempts.Observe(t.attempts)
	if t.hasArrival {
		// Open-loop request: response time spans arrival to commit —
		// queueing delay (arrival to begin, accrued when the proc was
		// backlogged past the arrival cycle) plus service.
		r.requests++
		r.response.Observe(cycle - t.arrival)
		r.queueWait.Observe(t.begin - t.arrival)
	}
	r.tx[proc] = txState{aggressor: -1}
}

// TxConflict implements machine.TxRecorder.
func (r *Recorder) TxConflict(victim, aggressor int) {
	if victim < 0 || victim >= r.procs {
		return
	}
	r.tx[victim].aggressor = aggressor
}

// Committed returns the number of committed transactions recorded so far.
func (r *Recorder) Committed() uint64 { return r.committed }

// Register copies the recorder's headline totals into reg under stable
// txstats.* metric names, tying the lifecycle layer into the same obs
// registry snapshot the rest of the run reports through.
func (r *Recorder) Register(reg *obs.Registry) {
	reg.Counter("txstats.begun", "txs", "transactions started (lifecycle accounting)").Add(r.begun)
	reg.Counter("txstats.committed", "txs", "transactions committed (lifecycle accounting)").Add(r.committed)
	reg.Counter("txstats.useful_cycles", "cycles", "cycles in committing attempts").Add(r.usefulCycles)
	reg.Counter("txstats.wasted_cycles", "cycles", "cycles in aborted attempts").Add(r.wastedCycles)
	reg.Counter("txstats.backoff_cycles", "cycles", "cycles in contention-management backoff inside transactions").Add(r.backoffCycles)
	reg.Counter("txstats.retry_wait_cycles", "cycles", "cycles suspended in Retry inside transactions").Add(r.retryWaitCycles)
	reg.Counter("txstats.overhead_cycles", "cycles", "committed-tx cycles outside attempts, backoff, and waiting").Add(r.overheadCycles)
	reg.Counter("txstats.retry_waits", "waits", "Retry suspensions recorded").Add(r.retryWaits)
	ls := r.latency.Snapshot()
	reg.WideHistogram("txstats.latency", "cycles", "committed transaction latency, begin to commit").
		Import(ls.Count, ls.Sum, ls.Max, ls.Buckets)
	as := r.attempts.Snapshot()
	reg.Histogram("txstats.attempts", "attempts", "attempts needed per committed transaction").
		Import(as.Count, as.Sum, as.Max, as.Buckets)
	// Open-loop metrics appear only when the workload tagged arrivals, so
	// closed-loop runs' metric snapshots are unchanged byte-for-byte.
	if r.requests > 0 {
		reg.Counter("txstats.requests", "requests", "open-loop requests serviced (arrival-tagged commits)").Add(r.requests)
		rs := r.response.Snapshot()
		reg.WideHistogram("txstats.response", "cycles", "open-loop response time, arrival to commit (queueing + service)").
			Import(rs.Count, rs.Sum, rs.Max, rs.Buckets)
		qs := r.queueWait.Snapshot()
		reg.WideHistogram("txstats.queue_wait", "cycles", "open-loop queueing delay, arrival to transaction begin").
			Import(qs.Count, qs.Sum, qs.Max, qs.Buckets)
	}
}
