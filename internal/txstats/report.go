package txstats

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/obs"
)

// PathCount is one execution path's count (commits or attempts). Paths
// appear in machine.TxPath declaration order, zero counts omitted.
type PathCount struct {
	Path  string `json:"path"`
	Count uint64 `json:"count"`
}

// AbortBucket is one (path, reason) cell of the wasted-work breakdown:
// how many attempts aborted there and how many simulated cycles they
// burned. Cells appear in path-major declaration order, empty cells
// omitted.
type AbortBucket struct {
	Path         string `json:"path"`
	Reason       string `json:"reason"`
	Count        uint64 `json:"count"`
	WastedCycles uint64 `json:"wasted_cycles"`
}

// ProcCycles is one processor's share of destroyed cycles: the wasted
// cycles of aborted attempts whose most recent conflict named this
// processor as the aggressor (the cross-link to internal/contention's
// who-aborted-whom edges).
type ProcCycles struct {
	Proc   int    `json:"proc"`
	Cycles uint64 `json:"cycles"`
}

// Percentiles is the latency summary rendered from the wide histogram,
// in simulated cycles.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// Report is a frozen, deterministic view of a Recorder: every internal
// array flattened into declaration-ordered or sorted slices with a fixed
// JSON field order, so equal recorders encode byte-identically (the same
// contract as obs.Snapshot and contention.Report).
type Report struct {
	Procs int `json:"procs"`

	Begun     uint64 `json:"begun"`
	Committed uint64 `json:"committed"`
	// InFlight counts transactions begun but not committed when the run
	// ended; their partial cycles appear in the wasted/backoff totals but
	// not in the latency histogram.
	InFlight uint64 `json:"in_flight"`

	CommitsByPath  []PathCount `json:"commits_by_path"`
	AttemptsByPath []PathCount `json:"attempts_by_path"`

	// The cycle split across committed work: Useful is the committing
	// attempts, Wasted the aborted attempts, Backoff the cm delays,
	// RetryWait the Retry suspensions, Overhead the committed-tx residual
	// (setup and abort-to-retry gaps). Wasted and Backoff include
	// in-flight transactions; Useful and Overhead only committed ones.
	UsefulCycles    uint64 `json:"useful_cycles"`
	WastedCycles    uint64 `json:"wasted_cycles"`
	BackoffCycles   uint64 `json:"backoff_cycles"`
	RetryWaitCycles uint64 `json:"retry_wait_cycles"`
	OverheadCycles  uint64 `json:"overhead_cycles"`
	RetryWaits      uint64 `json:"retry_waits"`

	Aborts []AbortBucket `json:"aborts"`

	// AggressorWasted ranks processors by the cycles their conflicts
	// destroyed (descending, processor ID breaking ties); zero entries
	// omitted. UnknownWasted counts wasted cycles with no recorded
	// aggressor.
	AggressorWasted []ProcCycles `json:"aggressor_wasted"`
	UnknownWasted   uint64       `json:"unknown_wasted"`

	// Latency is the wide per-commit latency histogram;
	// LatencyPercentiles its rendered summary. Attempts is the
	// attempts-to-commit distribution.
	Latency            *obs.HistSnapshot `json:"latency,omitempty"`
	LatencyPercentiles *Percentiles      `json:"latency_percentiles,omitempty"`
	Attempts           *obs.HistSnapshot `json:"attempts,omitempty"`

	// Open-loop request accounting: Requests counts arrival-tagged
	// commits, Response is the arrival-to-commit distribution (queueing +
	// service — what a service SLO is written against; compare with
	// Latency, which starts at begin and so excludes queueing), QueueWait
	// the arrival-to-begin share. All zero/absent for closed-loop
	// workloads.
	Requests            uint64            `json:"requests,omitempty"`
	Response            *obs.HistSnapshot `json:"response,omitempty"`
	ResponsePercentiles *Percentiles      `json:"response_percentiles,omitempty"`
	QueueWait           *obs.HistSnapshot `json:"queue_wait,omitempty"`
}

// pathCounts freezes a per-path counter array (declaration order, zeros
// omitted).
func pathCounts(a *[machine.NumTxPaths]uint64) []PathCount {
	var out []PathCount
	for p, n := range a {
		if n != 0 {
			out = append(out, PathCount{Path: machine.TxPath(p).String(), Count: n})
		}
	}
	return out
}

// percentiles renders the latency summary, nil for an empty histogram.
func percentiles(h *obs.HistSnapshot) *Percentiles {
	if h == nil || h.Count == 0 {
		return nil
	}
	return &Percentiles{P50: h.P50(), P90: h.P90(), P99: h.P99(), P999: h.P999()}
}

// Report freezes the recorder into its deterministic exportable form.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Procs:           r.procs,
		Begun:           r.begun,
		Committed:       r.committed,
		InFlight:        r.begun - r.committed,
		CommitsByPath:   pathCounts(&r.commitsByPath),
		AttemptsByPath:  pathCounts(&r.attemptsByPath),
		UsefulCycles:    r.usefulCycles,
		WastedCycles:    r.wastedCycles,
		BackoffCycles:   r.backoffCycles,
		RetryWaitCycles: r.retryWaitCycles,
		OverheadCycles:  r.overheadCycles,
		RetryWaits:      r.retryWaits,
		UnknownWasted:   r.unknownWasted,
	}
	for p := 0; p < machine.NumTxPaths; p++ {
		for reason := 0; reason < machine.NumAbortReasons; reason++ {
			if r.aborts[p][reason] == 0 && r.wastedBy[p][reason] == 0 {
				continue
			}
			rep.Aborts = append(rep.Aborts, AbortBucket{
				Path:         machine.TxPath(p).String(),
				Reason:       machine.AbortReason(reason).String(),
				Count:        r.aborts[p][reason],
				WastedCycles: r.wastedBy[p][reason],
			})
		}
	}
	for proc, c := range r.aggressorWasted {
		if c != 0 {
			rep.AggressorWasted = append(rep.AggressorWasted, ProcCycles{Proc: proc, Cycles: c})
		}
	}
	sortProcCycles(rep.AggressorWasted)
	if r.latency.Count() > 0 {
		rep.Latency = r.latency.Snapshot()
		rep.LatencyPercentiles = percentiles(rep.Latency)
	}
	if r.attempts.Count() > 0 {
		rep.Attempts = r.attempts.Snapshot()
	}
	if r.requests > 0 {
		rep.Requests = r.requests
		rep.Response = r.response.Snapshot()
		rep.ResponsePercentiles = percentiles(rep.Response)
		rep.QueueWait = r.queueWait.Snapshot()
	}
	return rep
}

// sortProcCycles orders by cycles descending, processor ascending.
func sortProcCycles(s []ProcCycles) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cycles != s[j].Cycles {
			return s[i].Cycles > s[j].Cycles
		}
		return s[i].Proc < s[j].Proc
	})
}

// Add merges other into rep: counts and cycle totals sum, per-path and
// per-(path,reason) breakdowns sum in declaration order, the
// aggressor-wasted ranking sums per processor and re-sorts, and the
// latency/attempts histograms merge bucket-wise with percentiles
// recomputed from the merged latency histogram. Summation is
// commutative, so aggregating parallel sweep cells in job order stays
// deterministic.
func (rep *Report) Add(other *Report) {
	if other == nil {
		return
	}
	if other.Procs > rep.Procs {
		rep.Procs = other.Procs
	}
	rep.Begun += other.Begun
	rep.Committed += other.Committed
	rep.InFlight += other.InFlight
	rep.CommitsByPath = mergePaths(rep.CommitsByPath, other.CommitsByPath)
	rep.AttemptsByPath = mergePaths(rep.AttemptsByPath, other.AttemptsByPath)
	rep.UsefulCycles += other.UsefulCycles
	rep.WastedCycles += other.WastedCycles
	rep.BackoffCycles += other.BackoffCycles
	rep.RetryWaitCycles += other.RetryWaitCycles
	rep.OverheadCycles += other.OverheadCycles
	rep.RetryWaits += other.RetryWaits
	rep.Aborts = mergeAborts(rep.Aborts, other.Aborts)
	rep.UnknownWasted += other.UnknownWasted

	perProc := make(map[int]uint64, len(rep.AggressorWasted)+len(other.AggressorWasted))
	for _, pc := range rep.AggressorWasted {
		perProc[pc.Proc] += pc.Cycles
	}
	for _, pc := range other.AggressorWasted {
		perProc[pc.Proc] += pc.Cycles
	}
	rep.AggressorWasted = rep.AggressorWasted[:0]
	for proc, c := range perProc {
		rep.AggressorWasted = append(rep.AggressorWasted, ProcCycles{Proc: proc, Cycles: c})
	}
	sortProcCycles(rep.AggressorWasted)

	rep.Latency = mergeHists(rep.Latency, other.Latency)
	rep.LatencyPercentiles = percentiles(rep.Latency)
	rep.Attempts = mergeHists(rep.Attempts, other.Attempts)
	rep.Requests += other.Requests
	rep.Response = mergeHists(rep.Response, other.Response)
	rep.ResponsePercentiles = percentiles(rep.Response)
	rep.QueueWait = mergeHists(rep.QueueWait, other.QueueWait)
}

// mergePaths sums two frozen path lists, preserving declaration order.
func mergePaths(a, b []PathCount) []PathCount {
	var sum [machine.NumTxPaths]uint64
	for _, lst := range [][]PathCount{a, b} {
		for _, pc := range lst {
			if p, ok := machine.TxPathByName(pc.Path); ok {
				sum[p] += pc.Count
			}
		}
	}
	return pathCounts(&sum)
}

// mergeAborts sums two frozen abort breakdowns, preserving path-major
// declaration order.
func mergeAborts(a, b []AbortBucket) []AbortBucket {
	var count, wasted [machine.NumTxPaths][machine.NumAbortReasons]uint64
	for _, lst := range [][]AbortBucket{a, b} {
		for _, ab := range lst {
			p, ok := machine.TxPathByName(ab.Path)
			if !ok {
				continue
			}
			reason := reasonIndex(ab.Reason)
			count[p][reason] += ab.Count
			wasted[p][reason] += ab.WastedCycles
		}
	}
	var out []AbortBucket
	for p := 0; p < machine.NumTxPaths; p++ {
		for reason := 0; reason < machine.NumAbortReasons; reason++ {
			if count[p][reason] == 0 && wasted[p][reason] == 0 {
				continue
			}
			out = append(out, AbortBucket{
				Path:         machine.TxPath(p).String(),
				Reason:       machine.AbortReason(reason).String(),
				Count:        count[p][reason],
				WastedCycles: wasted[p][reason],
			})
		}
	}
	return out
}

// reasonIndex inverts machine.AbortReason.String (unknown names land on
// AbortNone, which real aborts never carry).
func reasonIndex(name string) int {
	for r := 0; r < machine.NumAbortReasons; r++ {
		if machine.AbortReason(r).String() == name {
			return r
		}
	}
	return 0
}

// mergeHists sums two frozen histograms bucket-wise (the shorter bucket
// list zero-padded), nil-tolerant.
func mergeHists(a, b *obs.HistSnapshot) *obs.HistSnapshot {
	if b == nil || b.Count == 0 {
		return a
	}
	if a == nil || a.Count == 0 {
		c := *b
		c.Buckets = append([]uint64(nil), b.Buckets...)
		return &c
	}
	out := &obs.HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Max: a.Max}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	out.Buckets = make([]uint64, n)
	copy(out.Buckets, a.Buckets)
	for i, v := range b.Buckets {
		out.Buckets[i] += v
	}
	return out
}
