package tl2

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

func testSystem(procs int) (*machine.Machine, *System) {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 24
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	m := machine.New(p)
	cfg := DefaultConfig()
	cfg.Stripes = 1 << 12
	return m, New(m, cfg)
}

func TestCommitPublishesLazily(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 42)
			// Lazy versioning: memory unchanged until commit...
			if m.Mem.Read64(0) != 0 {
				t.Error("TL2 wrote to memory before commit")
			}
			// ...but the transaction sees its own write via the redo log.
			if tx.Load(0) != 42 {
				t.Error("read-own-write failed")
			}
		})
	}})
	if m.Mem.Read64(0) != 42 {
		t.Fatal("commit did not publish")
	}
	if s.Stats().SWCommits != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestReadOnlyFastPath(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Mem.Write64(0, 9)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		var v uint64
		ex.Atomic(func(tx tm.Tx) { v = tx.Load(0) })
		if v != 9 {
			t.Errorf("read %d", v)
		}
	}})
	if s.clock != 0 {
		t.Fatal("read-only commit must not advance the global clock")
	}
}

func TestStaleReadAborts(t *testing.T) {
	// Thread 1 reads a stripe, stalls, and re-reads after thread 0 has
	// committed a new version: the second transaction-begin must see a
	// consistent snapshot (no torn pairs).
	m, s := testSystem(2)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	// Two words on different lines, kept equal by every writer.
	const a, b = 0, 512
	var pairs [][2]uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			for i := uint64(1); i <= 20; i++ {
				ex0.Atomic(func(tx tm.Tx) {
					tx.Store(a, i)
					tx.Store(b, i)
				})
				p.Elapse(300)
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 20; i++ {
				var x, y uint64
				ex1.Atomic(func(tx tm.Tx) {
					x = tx.Load(a)
					p.Elapse(200) // widen the window for a racing writer
					y = tx.Load(b)
				})
				pairs = append(pairs, [2]uint64{x, y})
				p.Elapse(100)
			}
		},
	})
	for _, pr := range pairs {
		if pr[0] != pr[1] {
			t.Fatalf("torn read: %v", pr)
		}
	}
	if s.Stats().SWAborts == 0 {
		t.Log("note: no aborts occurred; the race window may need widening")
	}
}

func TestWriteLockConflictRetries(t *testing.T) {
	m, s := testSystem(2)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			for i := 0; i < 30; i++ {
				ex0.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
			}
		},
		func(p *machine.Proc) {
			for i := 0; i < 30; i++ {
				ex1.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
			}
		},
	})
	if got := m.Mem.Read64(0); got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
}

func TestClockAdvancesPerWriteCommit(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for i := 0; i < 7; i++ {
			ex.Atomic(func(tx tm.Tx) { tx.Store(uint64(i)*64, 1) })
		}
	}})
	if s.clock != 7 {
		t.Fatalf("clock = %d, want 7", s.clock)
	}
}

func TestBadStripesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := machine.DefaultParams(1)
	New(machine.New(p), Config{Stripes: 3})
}

func TestName(t *testing.T) {
	_, s := testSystem(1)
	if s.Name() != "tl2" {
		t.Fatal("name wrong")
	}
}

func TestNestedPartialAbortOverRedoLog(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Mem.Write64(0, 100)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 1) // pre-nest buffered write
			ok := tx.Nested(func() {
				tx.Store(0, 2)  // overwrite inside the nest
				tx.Store(64, 3) // fresh write inside the nest
				tx.Abort()
			})
			if ok {
				t.Error("nest should have aborted")
			}
			if tx.Load(0) != 1 {
				t.Errorf("redo value = %d, want the pre-nest 1", tx.Load(0))
			}
			if tx.Load(64) != 0 {
				t.Error("nested fresh write survived its abort")
			}
		})
	}})
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(64) != 0 {
		t.Fatalf("memory = %d/%d, want 1/0", m.Mem.Read64(0), m.Mem.Read64(64))
	}
}

func TestNestedCommitFoldsIntoParent(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			outer := tx.Nested(func() {
				tx.Store(0, 5)
				inner := tx.Nested(func() { tx.Store(64, 6) })
				if !inner {
					t.Error("inner nest failed")
				}
				// Now abort nothing: both fold into the parent.
			})
			if !outer {
				t.Error("outer nest failed")
			}
		})
	}})
	if m.Mem.Read64(0) != 5 || m.Mem.Read64(64) != 6 {
		t.Fatal("nested commits lost")
	}
}
