// Package tl2 implements the TL2 software TM of Dice, Shalev, and Shavit,
// which the paper's §5 evaluation uses to link USTM's performance to
// published results.
// TL2 is the algorithmic opposite of USTM on both axes: lazy versioning
// (writes buffer in a redo log until commit) and commit-time conflict
// detection (a global version clock plus per-stripe versioned write
// locks). It is weakly atomic.
//
// The global clock and the lock table live at simulated addresses so
// their traffic is charged like any other memory traffic.
package tl2

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

// Config carries TL2 parameters and cost constants.
type Config struct {
	// Stripes is the lock-table size (power of two).
	Stripes int

	BeginCycles    uint64
	BarrierCycles  uint64
	CommitCycles   uint64
	PerWriteCycles uint64 // lock + write-back + unlock logic per stripe
	// BackoffBase is the exponential-backoff unit between attempts. Zero
	// selects cm.DefaultBase (64).
	BackoffBase uint64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Stripes:        1 << 16,
		BeginCycles:    12,
		BarrierCycles:  8,
		CommitCycles:   20,
		PerWriteCycles: 10,
	}
}

type stripe struct {
	version uint64
	owner   int // processor ID, valid when locked
	writer  int // 1 + ID of the processor that last committed, 0 if none
	locked  bool
}

// System implements tm.System.
type System struct {
	m     *machine.Machine
	cfg   Config
	stats tm.Stats

	clock     uint64
	clockAddr uint64
	stripes   []stripe
	lockBase  uint64
	mask      uint64

	backoff cm.Spec
	cmgr    *cm.Manager
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so cfg.BackoffBase tweaks
// after New still take effect).
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.cfg.BackoffBase)
	}
	return s.cmgr
}

// New builds a TL2 instance over the machine.
func New(m *machine.Machine, cfg Config) *System {
	if cfg.Stripes <= 0 || cfg.Stripes&(cfg.Stripes-1) != 0 {
		panic(fmt.Sprintf("tl2: Stripes %d must be a positive power of two", cfg.Stripes))
	}
	s := &System{
		m:         m,
		cfg:       cfg,
		clockAddr: m.Mem.Sbrk(mem.LineBytes),
		stripes:   make([]stripe, cfg.Stripes),
		lockBase:  m.Mem.Sbrk(uint64(cfg.Stripes) * mem.LineBytes),
		mask:      uint64(cfg.Stripes - 1),
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "tl2" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec { return tm.Ordered(&exec{s: s, p: p}) }

func (s *System) stripeOf(addr uint64) uint64 {
	return (mem.LineOf(addr) * 0x9E3779B97F4A7C15 >> 19) & s.mask
}

func (s *System) stripeAddr(i uint64) uint64 { return s.lockBase + i*mem.LineBytes }

type exec struct {
	s *System
	p *machine.Proc

	rv        uint64            // read version (clock sample at begin)
	redo      map[uint64]uint64 // addr → buffered value (lazy versioning)
	redoOrder []uint64          // insertion order, for deterministic write-back
	writeSet  []uint64          // stripe indices, deduplicated
	readSet   []uint64          // stripe indices, deduplicated
	inTx      bool
	onCommit  []func()
	nestSaves []tl2Save
	nestUndo  []redoUndo

	// txSeq numbers this context's transactions; combined with the
	// processor ID it identifies a transaction to the contention manager
	// (TL2 has no hardware age to reuse).
	txSeq uint64
}

// tl2Save is a closed-nest savepoint over the speculative state.
type tl2Save struct {
	redoLen, readLen, writeLen, undoLen int
}

// redoUndo records a redo-log overwrite made inside a nest.
type redoUndo struct {
	addr    uint64
	hadPrev bool
	prev    uint64
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.p }

func (e *exec) Load(addr uint64) uint64 {
	v, out := e.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic("tl2: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic("tl2: write outcome " + out.Kind.String())
	}
}

// Atomic implements tm.Exec: the standard TL2 loop — speculate, validate,
// commit; abort restarts with backoff.
func (e *exec) Atomic(body func(tm.Tx)) {
	cmgr := e.s.CM()
	id := uint64(e.p.ID())<<32 | e.txSeq
	e.txSeq++
	e.p.TxLifeBegin()
	// Attempts are plain software-path attempts until the starvation
	// escalation takes the global token; then they are serialized
	// fallback attempts.
	path := machine.PathSW
	attempts := 0
	for {
		e.p.TxLifeAttempt(path)
		e.begin()
		reason, retryReq, aborted := tm.Catch(func() { body(tl2Tx{e}) })
		if !aborted {
			if e.commit() {
				e.s.stats.SWCommits++
				e.p.RecordSWCommit()
				e.p.TxLifeCommit(path)
				cmgr.TxDone(id)
				for _, f := range e.onCommit {
					f()
				}
				return
			}
			aborted = true
			reason = machine.AbortConflict
		}
		e.inTx = false
		if retryReq {
			// Poll-based retry emulation (TL2 has no native waiting).
			e.s.stats.Retries++
			e.p.TxLifeRetryWait()
			cmgr.RetryPoll(e.p)
			continue
		}
		e.s.stats.SWAborts++
		e.p.TxLifeAbort(path, reason)
		attempts++ // the policy clamps the shift (saturating counter)
		if cmgr.OnAbort(e.p, id, attempts, reason) != cm.EscalateNone {
			// Starving per the policy: with no other fallback, take the
			// global serialization token (released at commit).
			cmgr.AcquireToken(e.p, id)
			path = machine.PathFallback
		}
	}
}

func (e *exec) begin() {
	e.rv = e.s.clock
	e.readClock()
	if e.redo == nil {
		e.redo = make(map[uint64]uint64)
	} else {
		clear(e.redo)
	}
	e.redoOrder = e.redoOrder[:0]
	e.writeSet = e.writeSet[:0]
	e.readSet = e.readSet[:0]
	e.onCommit = e.onCommit[:0]
	e.nestSaves = e.nestSaves[:0]
	e.nestUndo = e.nestUndo[:0]
	e.inTx = true
	e.p.Elapse(e.s.cfg.BeginCycles)
}

func (e *exec) readClock() {
	if _, out := e.p.NTRead(e.s.clockAddr); out.Kind != machine.OK {
		panic("tl2: clock read outcome " + out.Kind.String())
	}
}

// load implements the TL2 read barrier: sample the stripe lock, read the
// data, resample — abort if the stripe is locked or newer than rv.
func (e *exec) load(addr uint64) uint64 {
	if v, ok := e.redo[addr]; ok {
		return v
	}
	si := e.s.stripeOf(addr)
	st := &e.s.stripes[si]
	e.touchStripe(si)
	e.p.Elapse(e.s.cfg.BarrierCycles)
	if st.locked || st.version > e.rv {
		e.recordStripeConflict(st, mem.LineAddr(mem.LineOf(addr)), true)
		tm.Unwind(machine.AbortConflict)
	}
	v := e.Load(addr)
	// Post-validation (the stripe may have changed while the data load
	// paid its latency).
	if st.locked || st.version > e.rv {
		e.recordStripeConflict(st, mem.LineAddr(mem.LineOf(addr)), true)
		tm.Unwind(machine.AbortConflict)
	}
	e.noteStripe(&e.readSet, si)
	return v
}

func (e *exec) store(addr, val uint64) {
	e.p.Elapse(e.s.cfg.BarrierCycles)
	prev, seen := e.redo[addr]
	if !seen {
		e.redoOrder = append(e.redoOrder, addr)
	}
	if len(e.nestSaves) > 0 {
		e.nestUndo = append(e.nestUndo, redoUndo{addr: addr, hadPrev: seen, prev: prev})
	}
	e.redo[addr] = val
	e.noteStripe(&e.writeSet, e.s.stripeOf(addr))
}

func (e *exec) noteStripe(set *[]uint64, si uint64) {
	for _, x := range *set {
		if x == si {
			return
		}
	}
	*set = append(*set, si)
}

func (e *exec) touchStripe(si uint64) {
	if _, out := e.p.NTRead(e.s.stripeAddr(si)); out.Kind != machine.OK {
		panic("tl2: stripe read outcome " + out.Kind.String())
	}
}

func (e *exec) writeStripe(si uint64) {
	if out := e.p.NTWrite(e.s.stripeAddr(si), e.s.stripes[si].version); out.Kind != machine.OK {
		panic("tl2: stripe write outcome " + out.Kind.String())
	}
}

// commit implements TL2's commit protocol. Returns false on validation or
// lock-acquisition failure (the transaction retries).
func (e *exec) commit() bool {
	if len(e.writeSet) == 0 {
		// Read-only fast path: reads were validated against rv as they
		// happened.
		e.p.Elapse(e.s.cfg.CommitCycles)
		return true
	}
	// 1. Lock the write set (bounded spin: fail fast to avoid deadlock).
	locked := e.writeSet[:0:0]
	for _, si := range e.writeSet {
		st := &e.s.stripes[si]
		e.touchStripe(si)
		e.p.Elapse(e.s.cfg.PerWriteCycles)
		if st.locked && st.owner != e.p.ID() {
			e.recordStripeConflict(st, 0, false)
			e.unlock(locked)
			return false
		}
		st.locked = true
		st.owner = e.p.ID()
		e.writeStripe(si)
		locked = append(locked, si)
	}
	// 2. Increment the global clock.
	e.s.clock++
	wv := e.s.clock
	if out := e.p.NTWrite(e.s.clockAddr, wv); out.Kind != machine.OK {
		panic("tl2: clock write outcome " + out.Kind.String())
	}
	// 3. Validate the read set (skippable when rv+1 == wv, the standard
	// optimization; modeled by still charging the loop when needed).
	if e.rv+1 != wv {
		for _, si := range e.readSet {
			st := &e.s.stripes[si]
			e.touchStripe(si)
			if (st.locked && st.owner != e.p.ID()) || st.version > e.rv {
				e.recordStripeConflict(st, 0, false)
				e.unlock(locked)
				return false
			}
		}
	}
	// 4. Write back the redo log (in insertion order, keeping the
	// simulation deterministic) and release locks at version wv.
	for _, addr := range e.redoOrder {
		e.Store(addr, e.redo[addr])
	}
	for _, si := range locked {
		st := &e.s.stripes[si]
		st.version = wv
		st.locked = false
		st.writer = e.p.ID() + 1
		e.writeStripe(si)
	}
	e.p.Elapse(e.s.cfg.CommitCycles)
	return true
}

// recordStripeConflict records a who-aborted-whom edge against the
// stripe's lock owner (or, when unlocked, its last committer — the
// transaction whose version bump invalidated us; -1 when no one has
// committed the stripe yet).
func (e *exec) recordStripeConflict(st *stripe, addr uint64, hasAddr bool) {
	agg := st.writer - 1
	if st.locked {
		agg = st.owner
	}
	e.p.RecordSWAbortBy(agg, machine.AbortConflict, addr, hasAddr)
}

func (e *exec) unlock(locked []uint64) {
	for _, si := range locked {
		e.s.stripes[si].locked = false
		e.writeStripe(si)
	}
}

// beginNest/endNest/abortNest implement closed nesting over the redo log
// (lazy versioning makes partial abort a pure buffer operation).
func (e *exec) beginNest() {
	e.nestSaves = append(e.nestSaves, tl2Save{
		redoLen: len(e.redoOrder), readLen: len(e.readSet),
		writeLen: len(e.writeSet), undoLen: len(e.nestUndo),
	})
	e.p.Elapse(4)
}

func (e *exec) endNest() {
	e.nestSaves = e.nestSaves[:len(e.nestSaves)-1]
	e.p.Elapse(2)
}

func (e *exec) abortNest() {
	sv := e.nestSaves[len(e.nestSaves)-1]
	e.nestSaves = e.nestSaves[:len(e.nestSaves)-1]
	for i := len(e.nestUndo) - 1; i >= sv.undoLen; i-- {
		u := e.nestUndo[i]
		if u.hadPrev {
			e.redo[u.addr] = u.prev
		} else {
			delete(e.redo, u.addr)
		}
	}
	e.nestUndo = e.nestUndo[:sv.undoLen]
	e.redoOrder = e.redoOrder[:sv.redoLen]
	e.readSet = e.readSet[:sv.readLen]
	e.writeSet = e.writeSet[:sv.writeLen]
}

type tl2Tx struct{ e *exec }

var _ tm.Tx = tl2Tx{}

func (t tl2Tx) Load(addr uint64) uint64 { return t.e.load(addr) }
func (t tl2Tx) Store(addr, val uint64)  { t.e.store(addr, val) }
func (t tl2Tx) OnCommit(f func())       { t.e.onCommit = append(t.e.onCommit, f) }
func (t tl2Tx) Abort() {
	if len(t.e.nestSaves) > 0 {
		tm.UnwindNested()
	}
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx with real partial abort (a redo-log savepoint).
func (t tl2Tx) Nested(body func()) bool {
	t.e.beginNest()
	if tm.CatchNested(body) {
		t.e.abortNest()
		return false
	}
	t.e.endNest()
	return true
}
func (t tl2Tx) Retry()   { tm.UnwindRetry() }
func (t tl2Tx) Syscall() { t.e.p.Elapse(1) }
