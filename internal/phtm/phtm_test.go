package phtm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func testSystem(procs int) (*machine.Machine, *System) {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	m := machine.New(p)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	return m, New(m, cfg)
}

func TestSmallTxCommitsInHardware(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			ex.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
		}
	}})
	if s.Stats().HWCommits != 5 || s.Stats().Failovers != 0 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestSyscallEntersSTMPhase(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Syscall()
			tx.Store(0, 7)
		})
	}})
	if s.Stats().SWCommits != 1 || s.Stats().Failovers != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
	if s.numSTM != 0 || s.numMustSTM != 0 {
		t.Fatalf("phase counters leaked: %d/%d", s.numSTM, s.numMustSTM)
	}
	if m.Mem.Read64(0) != 7 {
		t.Fatal("write lost")
	}
}

// TestSTMPhaseDragsHardwareTxToSoftware checks PhTM's defining pathology:
// while one transaction runs in software, concurrently started
// transactions cannot commit in hardware even when they could have.
func TestSTMPhaseDragsHardwareTxToSoftware(t *testing.T) {
	m, s := testSystem(2)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Syscall() // long software transaction over line 0
				tx.Store(0, 1)
				p.Elapse(60_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(5_000) // land inside the STM phase
			// Disjoint data: would commit in hardware under the UFO
			// hybrid, but PhTM must run it in software (numMustSTM > 0).
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(512, 2)
			})
		},
	})
	st := s.Stats()
	if st.SWCommits != 2 {
		t.Fatalf("stats = %v: the disjoint tx must be dragged into software", st)
	}
	if st.HWCommits != 0 {
		t.Fatalf("stats = %v", st)
	}
}

// TestCounterUpdateKillsConcurrentHardwareTx checks the coherence-based
// phase detection: starting a software transaction writes numSTM, which
// aborts hardware transactions that transactionally read it at begin.
func TestCounterUpdateKillsConcurrentHardwareTx(t *testing.T) {
	m, s := testSystem(2)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			// A long-running hardware transaction...
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
				p.Elapse(40_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(3_000)
			// ...interrupted by a software phase starting mid-flight.
			ex1.Atomic(func(tx tm.Tx) {
				tx.Syscall()
				tx.Store(512, 5)
			})
		},
	})
	if m.Count.HWAbortsByReason[machine.AbortNonTConflict] == 0 {
		t.Fatal("expected the counter write to kill the hardware reader")
	}
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(512) != 5 {
		t.Fatal("values wrong")
	}
}

func TestPhaseRecoversToHardware(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) { tx.Syscall(); tx.Store(0, 1) }) // STM phase
		for i := 0; i < 5; i++ {                                   // back to HW
			ex.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
		}
	}})
	st := s.Stats()
	if st.HWCommits != 5 || st.SWCommits != 1 {
		t.Fatalf("stats = %v: hardware phase must resume after the STM drains", st)
	}
}

func TestName(t *testing.T) {
	_, s := testSystem(1)
	if s.Name() != "phtm" {
		t.Fatal("name wrong")
	}
}
