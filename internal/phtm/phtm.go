// Package phtm implements the PhTM baseline (Lev et al., as modeled in
// the paper's §5): a phased hybrid that never runs hardware and
// software transactions concurrently. Hardware transactions read a global
// count of in-flight software transactions transactionally at begin; any
// transaction that must run in software flips the whole system into an
// STM phase, dragging every concurrent hardware transaction along with it
// — the pathology the paper's vacation results expose.
//
// Two counters implement the phases, both in simulated memory:
//
//   - numSTM: software transactions currently executing. Hardware
//     transactions read it (transactionally) at begin and abort if it is
//     non-zero; updates to it kill in-flight hardware readers via
//     coherence (the "nonT conflicts on the counter" of Figure 6).
//   - numMustSTM: in-flight transactions that failed over for a condition
//     hardware cannot run (overflow, syscall, ...). While non-zero, new
//     transactions start directly in software; once it drains, waiting
//     transactions stall until numSTM reaches zero, then resume in
//     hardware.
package phtm

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

// System implements tm.System.
type System struct {
	m   *machine.Machine
	stm *ustm.STM

	numSTMAddr     uint64
	numMustSTMAddr uint64
	numSTM         int
	numMustSTM     int
	// lastSTMProc is the processor that most recently entered the STM
	// phase (-1 before any has): the party phase aborts are attributed to.
	lastSTMProc int

	// BackoffBase is the exponential-backoff unit for hardware retries.
	// Zero selects cm.DefaultBase (64).
	BackoffBase uint64
	// PhasePollCycles is the stall interval while waiting for an STM
	// phase to drain.
	PhasePollCycles uint64

	backoff cm.Spec
	cmgr    *cm.Manager
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so BackoffBase tweaks
// after New still take effect).
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.BackoffBase)
	}
	return s.cmgr
}

// New builds a PhTM over the machine. The embedded USTM is weakly atomic
// (PhTM's phase exclusion replaces conflict detection between modes).
func New(m *machine.Machine, cfg ustm.Config) *System {
	cfg.StrongAtomicity = false
	return &System{
		m:               m,
		stm:             ustm.New(m, cfg),
		numSTMAddr:      m.Mem.Sbrk(64),
		numMustSTMAddr:  m.Mem.Sbrk(64),
		lastSTMProc:     -1,
		PhasePollCycles: 60,
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "phtm" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return s.stm.Stats() }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{s: s, u: btm.New(p), t: s.stm.Thread(p)})
}

type exec struct {
	s *System
	u *btm.Unit
	t *ustm.Thread

	// phaseAbort marks that the last hardware attempt aborted because a
	// software phase was (or became) active — retry after the phase
	// drains rather than failing over.
	phaseAbort bool
	onCommit   []func()
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.u.Proc() }

func (e *exec) Load(addr uint64) uint64 {
	v, out := e.Proc().NTRead(addr)
	if out.Kind != machine.OK {
		panic("phtm: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.Proc().NTWrite(addr, val); out.Kind != machine.OK {
		panic("phtm: write outcome " + out.Kind.String())
	}
}

// counter updates: the Go-side integer is authoritative; the simulated
// write provides the timing and — critically — the coherence kill of
// hardware transactions that read the counter transactionally.
func (e *exec) bumpSTM(d int) {
	e.s.numSTM += d
	if d > 0 {
		e.s.lastSTMProc = e.Proc().ID()
	}
	e.Store(e.s.numSTMAddr, uint64(e.s.numSTM))
}

func (e *exec) bumpMustSTM(d int) {
	e.s.numMustSTM += d
	e.Store(e.s.numMustSTMAddr, uint64(e.s.numMustSTM))
}

// Atomic implements tm.Exec with PhTM's phase logic.
func (e *exec) Atomic(body func(tm.Tx)) {
	age := e.s.m.NextAge()
	stats := e.s.Stats()
	cmgr := e.s.CM()
	p := e.Proc()
	p.TxLifeBegin()
	aborts := 0
	for {
		if e.s.numMustSTM > 0 {
			// An STM phase is in force: start directly in software.
			e.runSW(age, body, false)
			cmgr.TxDone(age)
			return
		}
		if e.s.numSTM > 0 {
			// Phase shifting back toward hardware: stall rather than add
			// more software transactions.
			e.Proc().Elapse(e.s.PhasePollCycles)
			continue
		}
		p.TxLifeAttempt(machine.PathHTM)
		reason, committed := e.tryHW(age, body)
		if committed {
			stats.HWCommits++
			p.TxLifeCommit(machine.PathHTM)
			cmgr.TxDone(age)
			for _, f := range e.onCommit {
				f()
			}
			return
		}
		p.TxLifeAbort(machine.PathHTM, reason)
		if e.phaseAbort {
			// Software transactions are in flight: loop to the phase
			// checks (stall or start in software as they dictate).
			continue
		}
		switch reason {
		case machine.AbortOverflow, machine.AbortSyscall, machine.AbortIO,
			machine.AbortException, machine.AbortNesting, machine.AbortExplicit:
			// Hardware cannot run this transaction: enter an STM phase.
			e.runSW(age, body, true)
			cmgr.TxDone(age)
			return
		case machine.AbortPageFault:
			cmgr.PageFaultStall(e.Proc())
			continue
		default:
			// Conflict, nonT-conflict (including the counter kill),
			// interrupt: retry; the phase checks above handle mode.
		}
		aborts++ // the policy clamps the shift (saturating counter)
		stats.HWRetries++
		if cmgr.OnAbort(e.Proc(), age, aborts, reason) != cm.EscalateNone {
			// Starving per the policy: a must-STM phase is PhTM's
			// serialization mechanism — it holds hardware out until this
			// transaction completes.
			e.runSW(age, body, true)
			cmgr.TxDone(age)
			return
		}
	}
}

// runSW executes the transaction in the STM, maintaining the phase
// counters. must marks a transaction that hardware cannot run (it holds
// the system in the STM phase until it completes).
func (e *exec) runSW(age uint64, body func(tm.Tx), must bool) {
	e.s.Stats().Failovers++
	e.bumpSTM(1)
	if must {
		e.bumpMustSTM(1)
	}
	ustm.RunTx(e.t, age, body)
	if must {
		e.bumpMustSTM(-1)
	}
	e.bumpSTM(-1)
}

func (e *exec) tryHW(age uint64, body func(tm.Tx)) (machine.AbortReason, bool) {
	e.phaseAbort = false
	e.onCommit = e.onCommit[:0]
	if !e.u.Begin(age) {
		return machine.AbortNesting, false
	}
	reason, retryReq, aborted := tm.Catch(func() {
		// Read the software-transaction count transactionally: if any
		// software transaction starts before we commit, the counter
		// update kills us (nonT conflict).
		v, out := e.u.Load(e.s.numSTMAddr)
		switch out.Kind {
		case machine.OK:
		case machine.HWAborted:
			tm.Unwind(out.Reason)
		default:
			panic("phtm: counter read outcome " + out.Kind.String())
		}
		if v != 0 {
			e.phaseAbort = true
			// The in-flight software phase caused this abort: attribute
			// it to the processor that last entered the phase.
			e.u.AbortAttributed(machine.AbortExplicit, e.s.lastSTMProc, e.s.numSTMAddr)
			tm.Unwind(machine.AbortExplicit)
		}
		body(hwTx{e})
	})
	if aborted {
		if retryReq {
			reason = machine.AbortExplicit
		}
		return reason, false
	}
	out := e.u.End()
	if out.Kind == machine.HWAborted {
		return out.Reason, false
	}
	return machine.AbortNone, true
}

// hwTx is PhTM's hardware handle: accesses are uninstrumented (phase
// exclusion replaces barriers).
type hwTx struct{ e *exec }

var _ tm.Tx = hwTx{}

func (h hwTx) Load(addr uint64) uint64 {
	v, out := h.e.u.Load(addr)
	switch out.Kind {
	case machine.OK:
		return v
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("phtm: load outcome " + out.Kind.String())
}

func (h hwTx) Store(addr, val uint64) {
	out := h.e.u.Store(addr, val)
	switch out.Kind {
	case machine.OK:
		return
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("phtm: store outcome " + out.Kind.String())
}

func (h hwTx) OnCommit(f func()) { h.e.onCommit = append(h.e.onCommit, f) }

func (h hwTx) Abort() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx: hardware transactions flatten closed nesting
// (as BTM does); an inner abort therefore aborts the whole transaction —
// which, under a hybrid, fails over to software where partial abort is
// supported.
func (h hwTx) Nested(body func()) bool {
	if !h.e.u.Begin(0) {
		tm.Unwind(machine.AbortNesting)
	}
	if tm.CatchNested(body) {
		h.e.u.Abort(machine.AbortExplicit)
		tm.Unwind(machine.AbortExplicit)
	}
	h.e.u.End()
	return true
}

func (h hwTx) Retry() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.UnwindRetry()
}

func (h hwTx) Syscall() {
	h.e.u.Abort(machine.AbortSyscall)
	tm.Unwind(machine.AbortSyscall)
}
