package tm

import (
	"testing"

	"repro/internal/machine"
)

func TestCatchNoAbort(t *testing.T) {
	reason, retry, aborted := Catch(func() {})
	if aborted || retry || reason != machine.AbortNone {
		t.Fatalf("clean run reported %v/%v/%v", reason, retry, aborted)
	}
}

func TestCatchUnwind(t *testing.T) {
	reason, retry, aborted := Catch(func() { Unwind(machine.AbortConflict) })
	if !aborted || retry || reason != machine.AbortConflict {
		t.Fatalf("got %v/%v/%v", reason, retry, aborted)
	}
}

func TestCatchRetry(t *testing.T) {
	_, retry, aborted := Catch(func() { UnwindRetry() })
	if !aborted || !retry {
		t.Fatal("retry unwind not caught")
	}
}

func TestCatchPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Catch(func() { panic("boom") })
}

func TestCatchNested(t *testing.T) {
	// An inner Catch must not swallow an outer body's unwind twice.
	reason, _, aborted := Catch(func() {
		r, _, a := Catch(func() { Unwind(machine.AbortOverflow) })
		if !a || r != machine.AbortOverflow {
			t.Fatal("inner catch failed")
		}
		Unwind(machine.AbortSyscall)
	})
	if !aborted || reason != machine.AbortSyscall {
		t.Fatalf("outer catch got %v/%v", reason, aborted)
	}
}

func TestStatsAddAndCommits(t *testing.T) {
	a := Stats{HWCommits: 1, SWCommits: 2, Failovers: 3, SWAborts: 4, SWStalls: 5, NTStalls: 6, Retries: 7, HWRetries: 8}
	b := a
	a.Add(&b)
	if a.HWCommits != 2 || a.SWCommits != 4 || a.Failovers != 6 || a.SWAborts != 8 ||
		a.SWStalls != 10 || a.NTStalls != 12 || a.Retries != 14 || a.HWRetries != 16 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Commits() != 6 {
		t.Fatalf("Commits = %d, want 6", a.Commits())
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}
