// Package tm defines the system-agnostic transactional-memory interfaces
// that every TM implementation in this repository (the UFO hybrid, HyTM,
// PhTM, USTM, TL2, the unbounded HTM, and the sequential/lock baselines)
// provides, and that every workload is written against. Keeping workloads
// generic over tm.System is what lets the harness reproduce the paper's
// cross-system comparisons from a single workload implementation.
//
// Paper: §2 (programming interface and atomicity semantics) and §6 (the
// retry waiting primitive).
package tm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Tx is the handle a transaction body uses for its shared-memory accesses.
// Bodies must route every access to shared simulated memory through Load
// and Store, keep all other state local, and be safe to re-execute: the TM
// runtime re-runs the body after an abort, which is the software analogue
// of the hardware register checkpoint.
type Tx interface {
	// Load returns the 64-bit word at addr within the transaction.
	Load(addr uint64) uint64
	// Store writes the word at addr within the transaction.
	Store(addr, val uint64)
	// Abort explicitly aborts the transaction; it will be re-executed
	// (in software, for hybrid systems, mirroring the paper's translation
	// of explicit aborts into failover).
	Abort()
	// Retry implements transactional waiting (Section 6 of the paper):
	// the transaction's effects are undone and it is descheduled until
	// another transaction commits an update to something it read, then
	// re-executed.
	Retry()
	// Syscall marks an idempotent system call. Hardware transactions
	// cannot contain system calls and abort to software; software
	// transactions proceed.
	Syscall()
	// OnCommit registers f to run exactly once, immediately after this
	// transaction commits; registrations from aborted attempts are
	// discarded. This is the deferral mechanism for side-effecting
	// operations (Section 6): buffer the output inside the transaction,
	// perform it once the transaction is durable.
	OnCommit(f func())
	// Nested runs body as a closed nested transaction and reports whether
	// it committed. Inside body, Abort aborts only the innermost nest
	// where the TM supports partial rollback (USTM, TL2); hardware
	// transactions flatten nesting (as BTM does), so an inner abort
	// aborts the whole transaction there — under the hybrid that means
	// failing over to software, where partial abort works. This is
	// another instance of the paper's extensibility argument: richer
	// semantics live in the STM, and hardware accelerates the subset it
	// can.
	Nested(body func()) bool
}

// nestedAbortSignal unwinds to the innermost Nested boundary.
type nestedAbortSignal struct{}

// UnwindNested aborts the innermost nested transaction. TM
// implementations call this from Abort when a nest is active and partial
// rollback is supported.
func UnwindNested() {
	panic(nestedAbortSignal{})
}

// CatchNested runs body, converting an UnwindNested panic into
// aborted=true. Other panics (including whole-transaction unwinds)
// propagate.
func CatchNested(body func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nestedAbortSignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	body()
	return false
}

// Exec is the per-simulated-thread execution context.
type Exec interface {
	// Atomic runs body as one transaction, retrying until it commits.
	Atomic(body func(Tx))
	// Load performs a non-transactional read. Under strongly atomic
	// systems this may stall on a UFO fault until the conflicting
	// software transaction completes.
	Load(addr uint64) uint64
	// Store performs a non-transactional write, with the same strong
	// atomicity behaviour as Load.
	Store(addr, val uint64)
	// Proc exposes the underlying simulated processor (for timing and
	// workload-local randomness).
	Proc() *machine.Proc
}

// Ordered wraps an execution context so that Atomic, Load, and Store each
// run inside one machine ordered section (machine.Proc.BeginOrdered).
// Under the serial schedulers the brackets are no-ops; under the parallel
// scheduler they guarantee that a TM implementation's host-side shared
// state (statistics, lock tables, ownership maps) is only ever touched by
// the processor holding the global (cycle, id) minimum — i.e. in exactly
// the order the serial schedulers would have produced. Every System.Exec
// in this module returns an Ordered-wrapped context, so workloads need no
// brackets of their own around TM operations.
func Ordered(ex Exec) Exec { return orderedExec{inner: ex} }

type orderedExec struct{ inner Exec }

func (o orderedExec) Atomic(body func(Tx)) {
	p := o.inner.Proc()
	p.BeginOrdered(0)
	defer p.EndOrdered()
	o.inner.Atomic(body)
}

func (o orderedExec) Load(addr uint64) uint64 {
	p := o.inner.Proc()
	p.BeginOrdered(addr)
	defer p.EndOrdered()
	return o.inner.Load(addr)
}

func (o orderedExec) Store(addr, val uint64) {
	p := o.inner.Proc()
	p.BeginOrdered(addr)
	defer p.EndOrdered()
	o.inner.Store(addr, val)
}

func (o orderedExec) Proc() *machine.Proc { return o.inner.Proc() }

// Unwrap returns the execution context inside an Ordered wrapper (used by
// in-package tests that reach into system internals); other contexts are
// returned unchanged.
func Unwrap(ex Exec) Exec {
	if o, ok := ex.(orderedExec); ok {
		return o.inner
	}
	return ex
}

// System is a transactional memory implementation bound to one machine.
type System interface {
	// Name identifies the system in reports ("ufo-hybrid", "hytm", ...).
	Name() string
	// Exec returns the execution context for one simulated processor.
	// It must be called at most once per processor.
	Exec(p *machine.Proc) Exec
	// Stats returns the system's software-side counters. Hardware-side
	// counters live in the machine (machine.Counters).
	Stats() *Stats
}

// Stats counts software-visible transactional events. The simulation
// engine serializes processors, so plain integers are safe.
type Stats struct {
	// HWCommits and SWCommits count transactions that committed in
	// hardware and software respectively.
	HWCommits uint64
	SWCommits uint64
	// Failovers counts transactions that moved from hardware to software.
	Failovers uint64
	// SWAborts counts software-transaction aborts (conflict kills).
	SWAborts uint64
	// SWStalls counts times a software transaction stalled for an older
	// conflictor.
	SWStalls uint64
	// NTStalls counts non-transactional accesses that stalled on a UFO
	// fault (the strong-atomicity serialization path).
	NTStalls uint64
	// Retries counts Retry (transactional waiting) suspensions.
	Retries uint64
	// HWRetries counts re-executions in hardware after a recoverable
	// abort.
	HWRetries uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.HWCommits += other.HWCommits
	s.SWCommits += other.SWCommits
	s.Failovers += other.Failovers
	s.SWAborts += other.SWAborts
	s.SWStalls += other.SWStalls
	s.NTStalls += other.NTStalls
	s.Retries += other.Retries
	s.HWRetries += other.HWRetries
}

// Commits returns total committed transactions.
func (s *Stats) Commits() uint64 { return s.HWCommits + s.SWCommits }

// Metric names exported by Register. OBSERVABILITY.md carries the full
// field → metric cross-reference table.
const (
	MetricHWCommits = "tm.hw_commits"
	MetricSWCommits = "tm.sw_commits"
	MetricFailovers = "tm.failovers"
	MetricSWAborts  = "tm.sw_aborts"
	MetricSWStalls  = "tm.sw_stalls"
	MetricNTStalls  = "tm.nt_stalls"
	MetricRetries   = "tm.retries"
	MetricHWRetries = "tm.hw_retries"
)

// Register copies the software-side counters into reg under the stable
// tm.* metric names (see OBSERVABILITY.md for the schema).
func (s *Stats) Register(reg *obs.Registry) {
	reg.Counter(MetricHWCommits, "transactions", "transactions committed in hardware (Figure 5)").Add(s.HWCommits)
	reg.Counter(MetricSWCommits, "transactions", "transactions committed in software (Figure 5)").Add(s.SWCommits)
	reg.Counter(MetricFailovers, "transactions", "hardware-to-software failovers (Figure 7)").Add(s.Failovers)
	reg.Counter(MetricSWAborts, "aborts", "software-transaction conflict kills").Add(s.SWAborts)
	reg.Counter(MetricSWStalls, "events", "software-transaction stalls for an older conflictor").Add(s.SWStalls)
	reg.Counter(MetricNTStalls, "events", "non-transactional accesses stalled on a UFO fault (Section 4.2)").Add(s.NTStalls)
	reg.Counter(MetricRetries, "events", "Retry (transactional waiting) suspensions (Section 6)").Add(s.Retries)
	reg.Counter(MetricHWRetries, "events", "hardware re-executions after a recoverable abort").Add(s.HWRetries)
}

func (s *Stats) String() string {
	return fmt.Sprintf("hw=%d sw=%d failover=%d swAbort=%d stall=%d ntStall=%d retry=%d",
		s.HWCommits, s.SWCommits, s.Failovers, s.SWAborts, s.SWStalls, s.NTStalls, s.Retries)
}

// unwindSignal is the panic value used to unwind a transaction body back
// to its Atomic wrapper. It never escapes this module's Atomic
// implementations.
type unwindSignal struct {
	reason machine.AbortReason
	retry  bool
}

// Unwind aborts the currently executing transaction body by panicking
// with an internal signal; the system's Atomic wrapper recovers it. Only
// TM implementations call this.
func Unwind(reason machine.AbortReason) {
	panic(unwindSignal{reason: reason})
}

// UnwindRetry unwinds the body for transactional waiting.
func UnwindRetry() {
	panic(unwindSignal{retry: true})
}

// Catch runs f, converting an Unwind panic into a return value. Panics
// that are not transaction unwinds propagate unchanged.
func Catch(f func()) (reason machine.AbortReason, retry bool, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			u, ok := r.(unwindSignal)
			if !ok {
				panic(r)
			}
			reason, retry, aborted = u.reason, u.retry, true
		}
	}()
	f()
	return machine.AbortNone, false, false
}
