package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1 << 16)
	m.Write64(0, 42)
	m.Write64(8, 99)
	m.Write64(1<<15, 7)
	if m.Read64(0) != 42 || m.Read64(8) != 99 || m.Read64(1<<15) != 7 {
		t.Fatal("round trip failed")
	}
}

func TestReadWriteProperty(t *testing.T) {
	m := New(1 << 20)
	if err := quick.Check(func(addr, val uint64) bool {
		a := addr % (1 << 20) / WordBytes * WordBytes
		m.Write64(a, val)
		return m.Read64(a) == val
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1 << 12).Read64(3)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1<<12).Write64(1<<12, 1)
}

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf wrong")
	}
	if LineAddr(2) != 128 {
		t.Fatal("LineAddr wrong")
	}
}

func TestUFOBitsPerLine(t *testing.T) {
	m := New(1 << 12)
	m.SetUFO(64, UFOFaultOnWrite)
	// Every address within the line shares the bits.
	for a := uint64(64); a < 128; a += 8 {
		if m.UFO(a) != UFOFaultOnWrite {
			t.Fatalf("UFO(%d) = %v", a, m.UFO(a))
		}
		if m.Faults(a, false) {
			t.Fatal("read should not fault under fault-on-write")
		}
		if !m.Faults(a, true) {
			t.Fatal("write should fault under fault-on-write")
		}
	}
	// Neighboring lines are unaffected.
	if m.UFO(0) != UFONone || m.UFO(128) != UFONone {
		t.Fatal("UFO bits leaked to neighbor lines")
	}
}

func TestAddUFOBitsORs(t *testing.T) {
	m := New(1 << 12)
	m.AddUFO(0, UFOFaultOnWrite)
	m.AddUFO(0, UFOFaultOnRead)
	if m.UFO(0) != UFOFaultAll {
		t.Fatalf("UFO = %v, want all", m.UFO(0))
	}
	m.SetUFO(0, UFONone)
	if m.UFO(0) != UFONone {
		t.Fatal("SetUFO did not clear")
	}
}

func TestFaultsMatrix(t *testing.T) {
	m := New(1 << 12)
	cases := []struct {
		bits        UFOBits
		read, write bool
	}{
		{UFONone, false, false},
		{UFOFaultOnRead, true, false},
		{UFOFaultOnWrite, false, true},
		{UFOFaultAll, true, true},
	}
	for _, c := range cases {
		m.SetUFO(0, c.bits)
		if m.Faults(0, false) != c.read {
			t.Errorf("bits %v: read fault = %v, want %v", c.bits, m.Faults(0, false), c.read)
		}
		if m.Faults(0, true) != c.write {
			t.Errorf("bits %v: write fault = %v, want %v", c.bits, m.Faults(0, true), c.write)
		}
	}
}

func TestUFOBitsString(t *testing.T) {
	for b, want := range map[UFOBits]string{
		UFONone:         "none",
		UFOFaultOnRead:  "fault-on-read",
		UFOFaultOnWrite: "fault-on-write",
		UFOFaultAll:     "fault-on-read|write",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestSbrkGrowsMemory(t *testing.T) {
	m := New(PageBytes)
	a := m.Sbrk(100)
	b := m.Sbrk(100)
	if a == b {
		t.Fatal("Sbrk returned the same region twice")
	}
	if b%LineBytes != 0 {
		t.Fatal("Sbrk regions must be line-aligned")
	}
	// Allocate well past the initial size; memory must grow.
	var last uint64
	for i := 0; i < 200; i++ {
		last = m.Sbrk(PageBytes)
	}
	m.Write64(last, 5)
	if m.Read64(last) != 5 {
		t.Fatal("grown memory not accessible")
	}
}

func TestSbrkLineAligned(t *testing.T) {
	m := New(PageBytes)
	if err := quick.Check(func(n uint16) bool {
		return m.Sbrk(uint64(n)+1)%LineBytes == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrowPreservesUFO(t *testing.T) {
	m := New(PageBytes)
	m.SetUFO(0, UFOFaultAll)
	m.Write64(0, 123)
	for i := 0; i < 50; i++ {
		m.Sbrk(PageBytes) // force several grows
	}
	if m.UFO(0) != UFOFaultAll || m.Read64(0) != 123 {
		t.Fatal("grow lost data or UFO bits")
	}
}
