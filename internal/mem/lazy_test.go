package mem

import "testing"

// These tests pin the lazy page-granular storage semantics: a nil page
// must be indistinguishable from an explicitly zeroed one through every
// accessor, and pages must materialize only when a write actually needs
// to record non-zero state.

func TestUntouchedPagesReadZero(t *testing.T) {
	m := New(8 * PageBytes)
	for _, addr := range []uint64{0, PageBytes, 3*PageBytes + 512, 7*PageBytes + PageBytes - WordBytes} {
		if v := m.Read64(addr); v != 0 {
			t.Fatalf("Read64(%#x) = %d on untouched memory", addr, v)
		}
		if b := m.UFO(addr); b != UFONone {
			t.Fatalf("UFO(%#x) = %v on untouched memory", addr, b)
		}
		if m.Faults(addr, false) || m.Faults(addr, true) {
			t.Fatalf("Faults(%#x) true on untouched memory", addr)
		}
	}
}

func TestZeroWriteDoesNotMaterialize(t *testing.T) {
	m := New(4 * PageBytes)
	m.Write64(PageBytes+64, 0)
	m.SetUFO(PageBytes+64, UFONone)
	m.AddUFO(PageBytes+64, UFONone)
	if m.pages[1] != nil {
		t.Fatal("writing zero materialized a data page")
	}
	if m.ufoPages[1] != nil {
		t.Fatal("setting UFONone materialized a UFO page")
	}
}

func TestNonZeroWriteMaterializesOnlyItsPage(t *testing.T) {
	m := New(4 * PageBytes)
	m.Write64(2*PageBytes+8, 42)
	for i, pg := range m.pages {
		if (pg != nil) != (i == 2) {
			t.Fatalf("page %d materialized=%v after single write to page 2", i, pg != nil)
		}
	}
	if v := m.Read64(2*PageBytes + 8); v != 42 {
		t.Fatalf("read back %d, want 42", v)
	}
	// The rest of the materialized page must read zero.
	if v := m.Read64(2 * PageBytes); v != 0 {
		t.Fatalf("neighbor word on materialized page reads %d", v)
	}
	// Overwriting with zero keeps the page (no demotion) and reads zero.
	m.Write64(2*PageBytes+8, 0)
	if v := m.Read64(2*PageBytes + 8); v != 0 {
		t.Fatalf("after zero overwrite, read %d", v)
	}
}

func TestUFOWriteMaterializesUFOPageOnly(t *testing.T) {
	m := New(4 * PageBytes)
	m.AddUFO(PageBytes, UFOFaultOnRead)
	if m.ufoPages[1] == nil {
		t.Fatal("AddUFO did not materialize the UFO page")
	}
	if m.pages[1] != nil {
		t.Fatal("AddUFO materialized a data page")
	}
	if b := m.UFO(PageBytes); b != UFOFaultOnRead {
		t.Fatalf("UFO = %v, want fault-on-read", b)
	}
	if !m.Faults(PageBytes, false) {
		t.Fatal("Faults(read) false after AddUFO fault-on-read")
	}
}

func TestGrowSharesMaterializedPages(t *testing.T) {
	m := New(2 * PageBytes)
	m.Write64(0, 7)
	m.SetUFO(64, UFOFaultOnWrite)
	before := &m.pages[0][0]
	m.Sbrk(8 * PageBytes) // forces grow
	if m.Size() < 8*PageBytes {
		t.Fatalf("size %d after growth", m.Size())
	}
	if &m.pages[0][0] != before {
		t.Fatal("grow copied a page instead of sharing it")
	}
	if v := m.Read64(0); v != 7 {
		t.Fatalf("data lost across grow: %d", v)
	}
	if b := m.UFO(64); b != UFOFaultOnWrite {
		t.Fatalf("UFO bits lost across grow: %v", b)
	}
	// New tail is lazily untouched.
	if v := m.Read64(m.Size() - WordBytes); v != 0 {
		t.Fatalf("grown tail reads %d", v)
	}
}

func TestNewRoundsUpToWholePages(t *testing.T) {
	m := New(PageBytes + 1)
	if m.Size() != 2*PageBytes {
		t.Fatalf("size %d, want %d", m.Size(), 2*PageBytes)
	}
	if m2 := New(0); m2.Size() != PageBytes {
		t.Fatalf("zero-size memory rounds to %d", m2.Size())
	}
}
