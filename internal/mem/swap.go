package mem

import "fmt"

// Swapper models the paper's Appendix-A kernel modification: when a
// physical page is swapped to disk, its UFO bits are saved to a side array
// (one element per swap slot) and restored when the page is swapped back
// in. A per-page "all bits clear" bitmap optimizes the common case where a
// page carries no protection, which is the optimization the paper credits
// with eliminating most of the swap-path overhead.
type Swapper struct {
	mem   *Memory
	slots map[uint64]*swapSlot
}

type swapSlot struct {
	data     [PageBytes / WordBytes]uint64
	ufo      [PageLines]UFOBits
	anyUFO   bool // the "all clear" bitmap entry for this page
	ufoSaves int
}

// NewSwapper wraps a memory with swap support.
func NewSwapper(m *Memory) *Swapper {
	return &Swapper{mem: m, slots: make(map[uint64]*swapSlot)}
}

// SwapOut copies the page containing addr to its swap slot, saving UFO
// bits only when any are set, then clears the resident copy (modeling the
// frame being reused). It returns the page base address as the slot key.
func (s *Swapper) SwapOut(addr uint64) uint64 {
	base := addr / PageBytes * PageBytes
	if base >= s.mem.Size() {
		panic(fmt.Sprintf("mem: swap-out of unmapped page %#x", base))
	}
	slot := &swapSlot{}
	for i := range slot.data {
		a := base + uint64(i)*WordBytes
		slot.data[i] = s.mem.Read64(a)
		s.mem.Write64(a, 0)
	}
	for i := 0; i < PageLines; i++ {
		a := base + uint64(i)*LineBytes
		if b := s.mem.UFO(a); b != UFONone {
			slot.ufo[i] = b
			slot.anyUFO = true
		}
		s.mem.SetUFO(a, UFONone)
	}
	if slot.anyUFO {
		slot.ufoSaves = 1
	}
	s.slots[base] = slot
	return base
}

// SwapIn restores the page previously swapped out at base, including its
// UFO bits (skipping the restore loop entirely when the all-clear bitmap
// says the page carried none).
func (s *Swapper) SwapIn(base uint64) {
	slot, ok := s.slots[base]
	if !ok {
		panic(fmt.Sprintf("mem: swap-in of page %#x that is not swapped out", base))
	}
	for i := range slot.data {
		s.mem.Write64(base+uint64(i)*WordBytes, slot.data[i])
	}
	if slot.anyUFO {
		for i := 0; i < PageLines; i++ {
			s.mem.SetUFO(base+uint64(i)*LineBytes, slot.ufo[i])
		}
	}
	delete(s.slots, base)
}

// Resident reports whether the page at base is in memory (not swapped
// out).
func (s *Swapper) Resident(base uint64) bool {
	_, out := s.slots[base/PageBytes*PageBytes]
	return !out
}

// UFOSaveCount reports how many currently swapped-out pages needed their
// UFO bits saved — the slow path the all-clear bitmap avoids.
func (s *Swapper) UFOSaveCount() int {
	n := 0
	for _, slot := range s.slots {
		n += slot.ufoSaves
	}
	return n
}
