// Package mem models the simulated machine's physical memory, including
// the paper's UFO extension (§3.2, §4): two user-fault-on bits
// (fault-on-read and fault-on-write) per 64-byte line that travel with
// the data through the whole memory hierarchy — caches, DRAM, and the
// swap file (Appendix A of the paper).
//
// Addresses are byte addresses; data is accessed at 64-bit-word
// granularity and must be 8-byte aligned. The UFO bits here are the single
// architectural copy: the cache layer keeps them coherent by requiring
// exclusive coherence permission to modify them, exactly as the paper's
// set_ufo_bits instruction does.
package mem

import "fmt"

const (
	// WordBytes is the access granularity.
	WordBytes = 8
	// LineBytes is the cache-line (and UFO-bit) granularity.
	LineBytes = 64
	// LineWords is the number of words per line.
	LineWords = LineBytes / WordBytes
	// PageBytes is the page size used by the swap model.
	PageBytes = 4096
	// PageLines is the number of lines per page.
	PageLines = PageBytes / LineBytes
)

// UFOBits is the per-line protection state (Table 2 of the paper).
type UFOBits uint8

const (
	// UFONone means accesses proceed normally.
	UFONone UFOBits = 0
	// UFOFaultOnRead raises a fault before a read completes.
	UFOFaultOnRead UFOBits = 1 << 0
	// UFOFaultOnWrite raises a fault before a write completes.
	UFOFaultOnWrite UFOBits = 1 << 1
	// UFOFaultAll faults on any access.
	UFOFaultAll = UFOFaultOnRead | UFOFaultOnWrite
)

func (b UFOBits) String() string {
	switch b {
	case UFONone:
		return "none"
	case UFOFaultOnRead:
		return "fault-on-read"
	case UFOFaultOnWrite:
		return "fault-on-write"
	case UFOFaultAll:
		return "fault-on-read|write"
	}
	return fmt.Sprintf("UFOBits(%d)", uint8(b))
}

// LineOf returns the line index containing addr.
func LineOf(addr uint64) uint64 { return addr / LineBytes }

// LineAddr returns the base byte address of line index l.
func LineAddr(l uint64) uint64 { return l * LineBytes }

// Memory is the simulated physical memory plus per-line UFO bit storage.
// The zero value is not usable; call New.
type Memory struct {
	words []uint64
	ufo   []UFOBits // one entry per line
	brk   uint64    // sbrk-style allocation frontier, in bytes
}

// New creates a memory of the given size in bytes (rounded up to a whole
// page).
func New(sizeBytes uint64) *Memory {
	if sizeBytes == 0 {
		sizeBytes = PageBytes
	}
	pages := (sizeBytes + PageBytes - 1) / PageBytes
	sizeBytes = pages * PageBytes
	return &Memory{
		words: make([]uint64, sizeBytes/WordBytes),
		ufo:   make([]UFOBits, sizeBytes/LineBytes),
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.words)) * WordBytes }

// Sbrk extends the allocation frontier by n bytes (rounded up to a line)
// and returns the base address of the new region, growing physical memory
// if needed. It is the substrate for the transactional allocator.
func (m *Memory) Sbrk(n uint64) uint64 {
	n = (n + LineBytes - 1) / LineBytes * LineBytes
	base := m.brk
	m.brk += n
	for m.brk > m.Size() {
		m.grow()
	}
	return base
}

func (m *Memory) grow() {
	newWords := make([]uint64, len(m.words)*2)
	copy(newWords, m.words)
	m.words = newWords
	newUFO := make([]UFOBits, len(m.ufo)*2)
	copy(newUFO, m.ufo)
	m.ufo = newUFO
}

func (m *Memory) checkAddr(addr uint64) {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	if addr >= m.Size() {
		panic(fmt.Sprintf("mem: access at %#x beyond memory size %#x", addr, m.Size()))
	}
}

// Read64 returns the committed word at addr.
func (m *Memory) Read64(addr uint64) uint64 {
	m.checkAddr(addr)
	return m.words[addr/WordBytes]
}

// Write64 stores a committed word at addr.
func (m *Memory) Write64(addr, val uint64) {
	m.checkAddr(addr)
	m.words[addr/WordBytes] = val
}

// UFO returns the UFO bits for the line containing addr
// (read_ufo_bits).
func (m *Memory) UFO(addr uint64) UFOBits {
	return m.ufo[LineOf(addr)]
}

// SetUFO replaces the UFO bits for the line containing addr
// (set_ufo_bits). Coherence actions are the cache layer's job.
func (m *Memory) SetUFO(addr uint64, bits UFOBits) {
	m.ufo[LineOf(addr)] = bits
}

// AddUFO ORs bits into the line containing addr (add_ufo_bits).
func (m *Memory) AddUFO(addr uint64, bits UFOBits) {
	m.ufo[LineOf(addr)] |= bits
}

// Faults reports whether an access of the given kind to addr would raise
// a UFO fault, assuming UFO faults are enabled on the accessing thread.
func (m *Memory) Faults(addr uint64, write bool) bool {
	b := m.ufo[LineOf(addr)]
	if write {
		return b&UFOFaultOnWrite != 0
	}
	return b&UFOFaultOnRead != 0
}
