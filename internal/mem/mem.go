// Package mem models the simulated machine's physical memory, including
// the paper's UFO extension (§3.2, §4): two user-fault-on bits
// (fault-on-read and fault-on-write) per 64-byte line that travel with
// the data through the whole memory hierarchy — caches, DRAM, and the
// swap file (Appendix A of the paper).
//
// Addresses are byte addresses; data is accessed at 64-bit-word
// granularity and must be 8-byte aligned. The UFO bits here are the single
// architectural copy: the cache layer keeps them coherent by requiring
// exclusive coherence permission to modify them, exactly as the paper's
// set_ufo_bits instruction does.
package mem

import "fmt"

const (
	// WordBytes is the access granularity.
	WordBytes = 8
	// LineBytes is the cache-line (and UFO-bit) granularity.
	LineBytes = 64
	// LineWords is the number of words per line.
	LineWords = LineBytes / WordBytes
	// PageBytes is the page size used by the swap model.
	PageBytes = 4096
	// PageLines is the number of lines per page.
	PageLines = PageBytes / LineBytes
)

// UFOBits is the per-line protection state (Table 2 of the paper).
type UFOBits uint8

const (
	// UFONone means accesses proceed normally.
	UFONone UFOBits = 0
	// UFOFaultOnRead raises a fault before a read completes.
	UFOFaultOnRead UFOBits = 1 << 0
	// UFOFaultOnWrite raises a fault before a write completes.
	UFOFaultOnWrite UFOBits = 1 << 1
	// UFOFaultAll faults on any access.
	UFOFaultAll = UFOFaultOnRead | UFOFaultOnWrite
)

func (b UFOBits) String() string {
	switch b {
	case UFONone:
		return "none"
	case UFOFaultOnRead:
		return "fault-on-read"
	case UFOFaultOnWrite:
		return "fault-on-write"
	case UFOFaultAll:
		return "fault-on-read|write"
	}
	return fmt.Sprintf("UFOBits(%d)", uint8(b))
}

// LineOf returns the line index containing addr.
func LineOf(addr uint64) uint64 { return addr / LineBytes }

// LineAddr returns the base byte address of line index l.
func LineAddr(l uint64) uint64 { return l * LineBytes }

const (
	// PageWords is the number of words per page.
	PageWords = PageBytes / WordBytes
)

// Memory is the simulated physical memory plus per-line UFO bit storage.
// The zero value is not usable; call New.
//
// Storage is page-granular and lazily allocated: a nil page reads as
// all-zero words (and all-clear UFO bits) and is materialized only on the
// first write that needs it. Simulations configure tens of megabytes of
// architectural memory per sweep cell but touch a small fraction of it, so
// eager allocation — one zeroed slab per cell — used to dominate the whole
// sweep's wall-clock (the memclr was ~half the Figure 5 sweep benchmark).
type Memory struct {
	pages    [][]uint64  // PageWords words per entry; nil = untouched (zero)
	ufoPages [][]UFOBits // PageLines bits per entry; nil = all clear
	size     uint64      // architectural size in bytes
	brk      uint64      // sbrk-style allocation frontier, in bytes
}

// New creates a memory of the given size in bytes (rounded up to a whole
// page). No data pages are allocated until first written.
func New(sizeBytes uint64) *Memory {
	if sizeBytes == 0 {
		sizeBytes = PageBytes
	}
	pages := (sizeBytes + PageBytes - 1) / PageBytes
	return &Memory{
		pages:    make([][]uint64, pages),
		ufoPages: make([][]UFOBits, pages),
		size:     pages * PageBytes,
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Sbrk extends the allocation frontier by n bytes (rounded up to a line)
// and returns the base address of the new region, growing physical memory
// if needed. It is the substrate for the transactional allocator.
func (m *Memory) Sbrk(n uint64) uint64 {
	n = (n + LineBytes - 1) / LineBytes * LineBytes
	base := m.brk
	m.brk += n
	for m.brk > m.size {
		m.grow()
	}
	return base
}

// grow doubles the architectural size. Existing pages are shared, not
// copied; the new tail is lazily materialized like everything else.
func (m *Memory) grow() {
	m.size *= 2
	pages := m.size / PageBytes
	newPages := make([][]uint64, pages)
	copy(newPages, m.pages)
	m.pages = newPages
	newUFO := make([][]UFOBits, pages)
	copy(newUFO, m.ufoPages)
	m.ufoPages = newUFO
}

func (m *Memory) checkAddr(addr uint64) {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	if addr >= m.size {
		panic(fmt.Sprintf("mem: access at %#x beyond memory size %#x", addr, m.size))
	}
}

// Read64 returns the committed word at addr.
func (m *Memory) Read64(addr uint64) uint64 {
	m.checkAddr(addr)
	pg := m.pages[addr/PageBytes]
	if pg == nil {
		return 0
	}
	return pg[addr%PageBytes/WordBytes]
}

// Write64 stores a committed word at addr.
func (m *Memory) Write64(addr, val uint64) {
	m.checkAddr(addr)
	pg := m.pages[addr/PageBytes]
	if pg == nil {
		if val == 0 {
			return // writing zero to an untouched page changes nothing
		}
		pg = make([]uint64, PageWords)
		m.pages[addr/PageBytes] = pg
	}
	pg[addr%PageBytes/WordBytes] = val
}

// UFO returns the UFO bits for the line containing addr
// (read_ufo_bits).
func (m *Memory) UFO(addr uint64) UFOBits {
	line := LineOf(addr)
	pg := m.ufoPages[line/PageLines]
	if pg == nil {
		return UFONone
	}
	return pg[line%PageLines]
}

// SetUFO replaces the UFO bits for the line containing addr
// (set_ufo_bits). Coherence actions are the cache layer's job.
func (m *Memory) SetUFO(addr uint64, bits UFOBits) {
	line := LineOf(addr)
	pg := m.ufoPages[line/PageLines]
	if pg == nil {
		if bits == UFONone {
			return
		}
		pg = make([]UFOBits, PageLines)
		m.ufoPages[line/PageLines] = pg
	}
	pg[line%PageLines] = bits
}

// AddUFO ORs bits into the line containing addr (add_ufo_bits).
func (m *Memory) AddUFO(addr uint64, bits UFOBits) {
	if bits == UFONone {
		return
	}
	line := LineOf(addr)
	pg := m.ufoPages[line/PageLines]
	if pg == nil {
		pg = make([]UFOBits, PageLines)
		m.ufoPages[line/PageLines] = pg
	}
	pg[line%PageLines] |= bits
}

// Faults reports whether an access of the given kind to addr would raise
// a UFO fault, assuming UFO faults are enabled on the accessing thread.
func (m *Memory) Faults(addr uint64, write bool) bool {
	line := LineOf(addr)
	pg := m.ufoPages[line/PageLines]
	if pg == nil {
		return false
	}
	b := pg[line%PageLines]
	if write {
		return b&UFOFaultOnWrite != 0
	}
	return b&UFOFaultOnRead != 0
}
