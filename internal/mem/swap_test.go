package mem

import "testing"

func TestSwapRoundTripPreservesData(t *testing.T) {
	m := New(4 * PageBytes)
	s := NewSwapper(m)
	for i := uint64(0); i < PageBytes/WordBytes; i++ {
		m.Write64(PageBytes+i*WordBytes, i*3+1)
	}
	base := s.SwapOut(PageBytes + 128) // any address within the page
	if base != PageBytes {
		t.Fatalf("base = %#x, want %#x", base, PageBytes)
	}
	if s.Resident(PageBytes) {
		t.Fatal("page still resident after swap-out")
	}
	if m.Read64(PageBytes) != 0 {
		t.Fatal("swap-out did not clear the frame")
	}
	s.SwapIn(base)
	for i := uint64(0); i < PageBytes/WordBytes; i++ {
		if m.Read64(PageBytes+i*WordBytes) != i*3+1 {
			t.Fatalf("word %d lost across swap", i)
		}
	}
	if !s.Resident(PageBytes) {
		t.Fatal("page not resident after swap-in")
	}
}

func TestSwapPreservesUFOBits(t *testing.T) {
	m := New(2 * PageBytes)
	s := NewSwapper(m)
	m.SetUFO(0, UFOFaultOnWrite)
	m.SetUFO(192, UFOFaultAll)
	base := s.SwapOut(0)
	if m.UFO(0) != UFONone {
		t.Fatal("frame UFO bits not cleared at swap-out")
	}
	s.SwapIn(base)
	if m.UFO(0) != UFOFaultOnWrite {
		t.Fatalf("UFO(0) = %v after swap round trip", m.UFO(0))
	}
	if m.UFO(192) != UFOFaultAll {
		t.Fatalf("UFO(192) = %v after swap round trip", m.UFO(192))
	}
	if m.UFO(64) != UFONone {
		t.Fatal("clear line gained UFO bits")
	}
}

func TestSwapAllClearFastPath(t *testing.T) {
	m := New(4 * PageBytes)
	s := NewSwapper(m)
	s.SwapOut(0) // no UFO bits: fast path
	m.SetUFO(PageBytes, UFOFaultOnRead)
	s.SwapOut(PageBytes) // has UFO bits: slow path
	if got := s.UFOSaveCount(); got != 1 {
		t.Fatalf("UFOSaveCount = %d, want 1 (all-clear bitmap must skip clean pages)", got)
	}
}

func TestSwapInUnknownPagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSwapper(New(PageBytes)).SwapIn(0)
}

func TestSwapOutUnmappedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSwapper(New(PageBytes)).SwapOut(10 * PageBytes)
}
