package hytm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func testSystem(procs int) (*machine.Machine, *System) {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	m := machine.New(p)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	return m, New(m, cfg)
}

func TestSmallTxCommitsInHardware(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			ex.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
		}
	}})
	if s.Stats().HWCommits != 5 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

// TestBarrierPutsOTableRowInFootprint verifies the defining HyTM cost:
// each hardware access transactionally reads the covering otable row, so
// otable rows inflate the transactional footprint.
func TestBarrierPutsOTableRowInFootprint(t *testing.T) {
	m, s := testSystem(1)
	ex := tm.Unwrap(s.Exec(m.Proc(0))).(*exec)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.u.Begin(m.NextAge())
		hwTx{ex}.Store(0, 1)
		fp := p.HW().Footprint()
		// One data line + one otable row line.
		if fp != 2 {
			t.Fatalf("footprint = %d, want 2 (data + otable row)", fp)
		}
		row := mem.LineOf(s.stm.RowAddr(0))
		if _, ok := p.HW().ReadSet[row]; !ok {
			t.Fatal("otable row not in the transactional read set")
		}
		ex.u.End()
	}})
}

// TestSTMActivityOnAliasedRowKillsHardwareTx reproduces HyTM's
// false-conflict pathology: an STM transaction touching an unrelated line
// that hashes to an otable row a hardware transaction read will kill it.
func TestSTMActivityOnAliasedRowKillsHardwareTx(t *testing.T) {
	m, s := testSystem(2)
	ex0 := s.Exec(m.Proc(0))
	// Find a line that aliases line 0's otable row but is a different
	// data line.
	target := s.stm.RowAddr(0)
	var alias uint64
	for l := uint64(1); ; l++ {
		if s.stm.RowAddr(l) == target {
			alias = l
			break
		}
	}
	th := s.stm.Thread(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, 1) // barrier reads otable row for line 0
				p.Elapse(30_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(3_000)
			// A software transaction acquires the aliasing line: its
			// otable insert writes the shared row, killing the HW reader.
			th.Begin(m.NextAge())
			th.Store(mem.LineAddr(alias), 9)
			th.End()
		},
	})
	if m.Count.HWAbortsByReason[machine.AbortNonTConflict] == 0 {
		t.Fatal("aliased otable update did not kill the hardware transaction")
	}
	if m.Mem.Read64(0) != 1 {
		t.Fatal("hardware tx eventually failed to commit")
	}
}

// TestBarrierDetectsSTMOwnership verifies the instrumented check: a
// hardware transaction touching a line owned by a software transaction
// must abort rather than violate its atomicity.
func TestBarrierDetectsSTMOwnership(t *testing.T) {
	m, s := testSystem(2)
	ex0 := s.Exec(m.Proc(0))
	th := s.stm.Thread(m.Proc(1))
	var collided uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Elapse(2_000) // let the STM tx acquire the line first
			ex0.Atomic(func(tx tm.Tx) {
				collided = tx.Load(0) // must not see the uncommitted 555
			})
		},
		func(p *machine.Proc) {
			th.Begin(m.NextAge())
			th.Store(0, 555)
			p.Elapse(30_000)
			// Kill our own doomed transaction; rollback restores 0.
			// (Standing in for an aborted long transaction.)
			func() {
				defer func() { recover() }()
				th.Rollback()
			}()
		},
	})
	if collided != 0 {
		t.Fatalf("hardware tx read uncommitted STM state: %d", collided)
	}
	if s.Stats().HWRetries == 0 && m.Count.HWAbortsByReason[machine.AbortExplicit] == 0 {
		t.Fatal("expected barrier-detected conflicts")
	}
}

func TestRepeatedSTMConflictFailsOver(t *testing.T) {
	m, s := testSystem(2)
	s.MaxConflictRetries = 2
	ex0 := s.Exec(m.Proc(0))
	th := s.stm.Thread(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Elapse(1_000)
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		},
		func(p *machine.Proc) {
			// Hold the line in a software transaction for a long time.
			th.Begin(m.NextAge())
			th.Store(0, 100)
			p.Elapse(200_000)
			th.End()
		},
	})
	if s.Stats().Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (persistent STM conflict must fail over)", s.Stats().Failovers)
	}
	if got := m.Mem.Read64(0); got != 101 {
		t.Fatalf("value = %d, want 101", got)
	}
}

func TestWeakAtomicity(t *testing.T) {
	m, s := testSystem(1)
	if s.stm.Config().StrongAtomicity {
		t.Fatal("HyTM's STM must be weakly atomic")
	}
	if s.Name() != "hytm" {
		t.Fatal("name wrong")
	}
	_ = m
}
