// Package hytm implements the HyTM baseline (Damron et al., as modeled in
// the paper's §5): a hybrid whose hardware transactions are
// instrumented with read/write barriers that inspect the STM's ownership
// table to avoid violating software-transaction atomicity.
//
// The barriers read otable rows *transactionally*, which is the source of
// HyTM's three measured pathologies: per-access instrumentation overhead,
// transactional-footprint inflation (otable rows compete with data for L1
// sets, causing extra overflows), and false conflicts when unrelated STM
// activity updates an otable row a hardware transaction previously read.
// Its STM half is USTM without strong atomicity (HyTM predates UFO).
package hytm

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
	"repro/internal/ustm"
)

// System implements tm.System.
type System struct {
	m   *machine.Machine
	stm *ustm.STM

	// BarrierCycles is the instrumentation logic charged per hardware
	// barrier, on top of the transactional otable-row access.
	BarrierCycles uint64
	// BackoffBase is the exponential-backoff unit for hardware retries.
	// Zero selects cm.DefaultBase (64).
	BackoffBase uint64
	// MaxConflictRetries bounds in-hardware retries of barrier-detected
	// conflicts before failing over (HyTM retries in hardware, but must
	// eventually yield to the blocking STM transaction).
	MaxConflictRetries int

	backoff cm.Spec
	cmgr    *cm.Manager
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so BackoffBase tweaks
// after New still take effect).
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.BackoffBase)
	}
	return s.cmgr
}

// New builds a HyTM over the machine. The embedded USTM is weakly atomic.
func New(m *machine.Machine, cfg ustm.Config) *System {
	cfg.StrongAtomicity = false
	return &System{
		m:                  m,
		stm:                ustm.New(m, cfg),
		BarrierCycles:      6,
		MaxConflictRetries: 8,
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "hytm" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return s.stm.Stats() }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{s: s, u: btm.New(p), t: s.stm.Thread(p)})
}

type exec struct {
	s        *System
	u        *btm.Unit
	t        *ustm.Thread
	onCommit []func()
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.u.Proc() }

// Load / Store: HyTM is weakly atomic; non-transactional accesses are
// uninstrumented (that is its semantic weakness).
func (e *exec) Load(addr uint64) uint64 {
	v, out := e.Proc().NTRead(addr)
	if out.Kind != machine.OK {
		panic("hytm: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.Proc().NTWrite(addr, val); out.Kind != machine.OK {
		panic("hytm: write outcome " + out.Kind.String())
	}
}

// Atomic implements tm.Exec with the same abort-handler skeleton as the
// UFO hybrid, plus failover after repeated barrier-detected conflicts.
func (e *exec) Atomic(body func(tm.Tx)) {
	age := e.s.m.NextAge()
	stats := e.s.Stats()
	cmgr := e.s.CM()
	p := e.Proc()
	p.TxLifeBegin()
	conflicts := 0
	aborts := 0
	for {
		p.TxLifeAttempt(machine.PathHTM)
		reason, committed := e.tryHW(age, body)
		if committed {
			stats.HWCommits++
			p.TxLifeCommit(machine.PathHTM)
			cmgr.TxDone(age)
			for _, f := range e.onCommit {
				f()
			}
			return
		}
		p.TxLifeAbort(machine.PathHTM, reason)
		switch reason {
		case machine.AbortOverflow, machine.AbortSyscall, machine.AbortIO,
			machine.AbortException, machine.AbortNesting:
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		case machine.AbortExplicit:
			// Barrier-detected STM conflict: retry in hardware, but the
			// STM transaction may be long-lived — fail over eventually.
			conflicts++
			if conflicts >= e.s.MaxConflictRetries {
				e.failover(age, body)
				cmgr.TxDone(age)
				return
			}
		case machine.AbortPageFault:
			cmgr.PageFaultStall(e.Proc())
			continue
		default:
			// Conflict, nonT-conflict, interrupt: retry in hardware.
		}
		aborts++ // the policy clamps the shift (saturating counter)
		stats.HWRetries++
		if cmgr.OnAbort(e.Proc(), age, aborts, reason) != cm.EscalateNone {
			// Starving per the policy: serialize through the STM early.
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		}
	}
}

func (e *exec) failover(age uint64, body func(tm.Tx)) {
	e.s.Stats().Failovers++
	ustm.RunTx(e.t, age, body)
}

func (e *exec) tryHW(age uint64, body func(tm.Tx)) (machine.AbortReason, bool) {
	e.onCommit = e.onCommit[:0]
	if !e.u.Begin(age) {
		return machine.AbortNesting, false
	}
	reason, retryReq, aborted := tm.Catch(func() { body(hwTx{e}) })
	if aborted {
		if retryReq {
			reason = machine.AbortExplicit
		}
		return reason, false
	}
	out := e.u.End()
	if out.Kind == machine.HWAborted {
		return out.Reason, false
	}
	return machine.AbortNone, true
}

// hwTx is HyTM's *instrumented* hardware transaction handle: every access
// is preceded by a barrier that transactionally reads the otable row
// covering the line and aborts if a conflicting STM record exists.
type hwTx struct{ e *exec }

var _ tm.Tx = hwTx{}

// barrier returns normally when no conflicting otable record exists; the
// row read joins the hardware transaction's read set.
func (h hwTx) barrier(addr uint64, write bool) {
	e := h.e
	line := mem.LineOf(addr)
	e.Proc().Elapse(e.s.BarrierCycles)
	_, out := e.u.Load(e.s.stm.RowAddr(line)) // transactional otable read
	switch out.Kind {
	case machine.OK:
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	default:
		panic("hytm: otable read outcome " + out.Kind.String())
	}
	if e.s.stm.LineConflicts(line, write) {
		// Attribute the abort to the software transaction owning the
		// conflicting otable record, not to ourselves: the contention is
		// between this hardware transaction and that STM peer.
		agg := e.s.stm.ConflictingOwnerProc(line, write)
		e.u.AbortAttributed(machine.AbortExplicit, agg, mem.LineAddr(line))
		tm.Unwind(machine.AbortExplicit)
	}
}

func (h hwTx) Load(addr uint64) uint64 {
	h.barrier(addr, false)
	v, out := h.e.u.Load(addr)
	switch out.Kind {
	case machine.OK:
		return v
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("hytm: load outcome " + out.Kind.String())
}

func (h hwTx) Store(addr, val uint64) {
	h.barrier(addr, true)
	out := h.e.u.Store(addr, val)
	switch out.Kind {
	case machine.OK:
		return
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("hytm: store outcome " + out.Kind.String())
}

func (h hwTx) OnCommit(f func()) { h.e.onCommit = append(h.e.onCommit, f) }

func (h hwTx) Abort() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx: hardware transactions flatten closed nesting
// (as BTM does); an inner abort therefore aborts the whole transaction —
// which, under a hybrid, fails over to software where partial abort is
// supported.
func (h hwTx) Nested(body func()) bool {
	if !h.e.u.Begin(0) {
		tm.Unwind(machine.AbortNesting)
	}
	if tm.CatchNested(body) {
		h.e.u.Abort(machine.AbortExplicit)
		tm.Unwind(machine.AbortExplicit)
	}
	h.e.u.End()
	return true
}

func (h hwTx) Retry() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.UnwindRetry()
}

func (h hwTx) Syscall() {
	h.e.u.Abort(machine.AbortSyscall)
	tm.Unwind(machine.AbortSyscall)
}
