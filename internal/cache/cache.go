// Package cache models the parts of the cache hierarchy that the paper's
// results depend on: a per-processor set-associative L1 occupancy model
// (which determines BTM's transactional capacity and therefore its
// overflow aborts) and a directory that tracks which processors hold a
// copy of each line (which drives invalidations, conflict detection, and
// transfer timing).
//
// Data never lives here — the single architectural copy of memory contents
// and UFO bits is in package mem; because the simulation engine serializes
// processors at memory-operation granularity, caches only need to model
// presence, not values.
//
// Paper: §3.1 (L1 capacity bounds BTM) and §5.1 (simulated hierarchy,
// Table 4 parameters).
package cache

import "fmt"

// L1 is a set-associative occupancy model with LRU replacement.
type L1 struct {
	ways   int
	sets   int
	lines  [][]way // [set][way]
	clock  uint64
	misses uint64
	hits   uint64
}

type way struct {
	line  uint64
	valid bool
	lru   uint64
}

// NewL1 builds a cache of sizeBytes with the given associativity over
// 64-byte lines. Both the set count and associativity must be positive
// and size must divide evenly.
func NewL1(sizeBytes, lineBytes, ways int) *L1 {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeBytes / lineBytes
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", lines, ways))
	}
	sets := lines / ways
	c := &L1{ways: ways, sets: sets, lines: make([][]way, sets)}
	for i := range c.lines {
		c.lines[i] = make([]way, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *L1) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *L1) Ways() int { return c.ways }

func (c *L1) set(line uint64) []way { return c.lines[line%uint64(c.sets)] }

// Contains reports whether line is resident.
func (c *L1) Contains(line uint64) bool {
	for i := range c.set(line) {
		if w := &c.set(line)[i]; w.valid && w.line == line {
			return true
		}
	}
	return false
}

// Touch references line, returning whether it hit and, on a miss that
// required replacement, the victim line that was evicted.
func (c *L1) Touch(line uint64) (hit bool, victim uint64, evicted bool) {
	c.clock++
	set := c.set(line)
	var lruIdx int
	var freeIdx = -1
	for i := range set {
		w := &set[i]
		if w.valid && w.line == line {
			w.lru = c.clock
			c.hits++
			return true, 0, false
		}
		if !w.valid {
			freeIdx = i
		} else if set[lruIdx].lru > w.lru || !set[lruIdx].valid {
			lruIdx = i
		}
	}
	c.misses++
	if freeIdx >= 0 {
		set[freeIdx] = way{line: line, valid: true, lru: c.clock}
		return false, 0, false
	}
	victim = set[lruIdx].line
	set[lruIdx] = way{line: line, valid: true, lru: c.clock}
	return false, victim, true
}

// Invalidate removes line if resident.
func (c *L1) Invalidate(line uint64) {
	set := c.set(line)
	for i := range set {
		if w := &set[i]; w.valid && w.line == line {
			w.valid = false
			return
		}
	}
}

// InvalidateAll empties the cache (used when modeling context switches in
// stress tests; BTM itself only flash-clears transactional state).
func (c *L1) InvalidateAll() {
	for s := range c.lines {
		for i := range c.lines[s] {
			c.lines[s][i].valid = false
		}
	}
}

// Hits and Misses report reference counts since construction.
func (c *L1) Hits() uint64   { return c.hits }
func (c *L1) Misses() uint64 { return c.misses }

// MaxProcs is the largest processor count the directory's sharer sets
// (and therefore the machine) support.
const MaxProcs = 256

// ProcSet is a fixed-width bitmask over processor IDs 0..MaxProcs-1,
// the directory's sharer-set representation.
type ProcSet [MaxProcs / 64]uint64

// Set records processor p as a member.
func (s *ProcSet) Set(p int) { s[uint(p)/64] |= 1 << (uint(p) % 64) }

// Clear removes processor p.
func (s *ProcSet) Clear(p int) { s[uint(p)/64] &^= 1 << (uint(p) % 64) }

// Has reports whether processor p is a member.
func (s ProcSet) Has(p int) bool { return s[uint(p)/64]&(1<<(uint(p)%64)) != 0 }

// Empty reports whether no processor is a member.
func (s ProcSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Procs returns the member processor IDs in ascending order.
func (s ProcSet) Procs() []int {
	var out []int
	for wi, w := range s {
		for i := 0; w != 0; i++ {
			if w&1 != 0 {
				out = append(out, wi*64+i)
			}
			w >>= 1
		}
	}
	return out
}

// Directory tracks, for every line, the set of processors holding a
// cached copy. It supports up to MaxProcs processors.
type Directory struct {
	sharers map[uint64]ProcSet
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{sharers: make(map[uint64]ProcSet)}
}

// Sharers returns the sharer set for line (zero value when unshared).
func (d *Directory) Sharers(line uint64) ProcSet { return d.sharers[line] }

// Add records that processor p holds line.
func (d *Directory) Add(line uint64, p int) {
	s := d.sharers[line]
	s.Set(p)
	d.sharers[line] = s
}

// Remove records that processor p no longer holds line.
func (d *Directory) Remove(line uint64, p int) {
	if s, ok := d.sharers[line]; ok {
		s.Clear(p)
		if s.Empty() {
			delete(d.sharers, line)
		} else {
			d.sharers[line] = s
		}
	}
}

// Others returns the processors other than p that hold line.
func (d *Directory) Others(line uint64, p int) []int {
	s := d.sharers[line]
	if s.Empty() {
		return nil
	}
	s.Clear(p)
	return s.Procs()
}

// HeldBy reports whether processor p holds line.
func (d *Directory) HeldBy(line uint64, p int) bool {
	return d.sharers[line].Has(p)
}

// Lines returns every resident line (for consistency checking).
func (c *L1) Lines() []uint64 {
	var out []uint64
	for s := range c.lines {
		for i := range c.lines[s] {
			if c.lines[s][i].valid {
				out = append(out, c.lines[s][i].line)
			}
		}
	}
	return out
}

// ForEach visits every line with at least one sharer.
func (d *Directory) ForEach(f func(line uint64, sharers ProcSet)) {
	for line, set := range d.sharers {
		f(line, set)
	}
}
