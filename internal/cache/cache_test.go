package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := NewL1(32*1024, 64, 4)
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Fatalf("geometry = %d sets × %d ways, want 128×4", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewL1(0, 64, 4)
}

func TestHitAfterTouch(t *testing.T) {
	c := NewL1(4096, 64, 2)
	if hit, _, _ := c.Touch(7); hit {
		t.Fatal("first touch must miss")
	}
	if hit, _, _ := c.Touch(7); !hit {
		t.Fatal("second touch must hit")
	}
	if !c.Contains(7) || c.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 2 sets. Lines 0,2,4 map to set 0.
	c := NewL1(4*64, 64, 2)
	c.Touch(0)
	c.Touch(2)
	c.Touch(0) // line 0 is now MRU; line 2 is LRU
	_, victim, evicted := c.Touch(4)
	if !evicted || victim != 2 {
		t.Fatalf("evicted=%v victim=%d, want eviction of line 2", evicted, victim)
	}
	if c.Contains(2) {
		t.Fatal("victim still resident")
	}
	if !c.Contains(0) || !c.Contains(4) {
		t.Fatal("survivors missing")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewL1(4096, 64, 4)
	c.Touch(3)
	c.Invalidate(3)
	if c.Contains(3) {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(99) // absent line: no-op
}

func TestInvalidateAll(t *testing.T) {
	c := NewL1(4096, 64, 4)
	for i := uint64(0); i < 30; i++ {
		c.Touch(i)
	}
	c.InvalidateAll()
	for i := uint64(0); i < 30; i++ {
		if c.Contains(i) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
}

func TestCapacityBound(t *testing.T) {
	// Property: a cache never holds more than sets*ways lines.
	if err := quick.Check(func(seed uint64) bool {
		c := NewL1(8*64, 64, 2) // 8 lines total
		for i := 0; i < 100; i++ {
			seed = seed*6364136223846793005 + 1
			c.Touch(seed % 64)
		}
		count := 0
		for l := uint64(0); l < 64; l++ {
			if c.Contains(l) {
				count++
			}
		}
		return count <= 8
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetConflictsEvenWhenCacheNotFull(t *testing.T) {
	// 4 sets × 2 ways. Lines 0,4,8 all map to set 0: the third must evict
	// even though the cache holds only 2 of 8 possible lines.
	c := NewL1(8*64, 64, 2)
	c.Touch(0)
	c.Touch(4)
	_, _, evicted := c.Touch(8)
	if !evicted {
		t.Fatal("expected set-conflict eviction")
	}
}

func TestDirectorySharers(t *testing.T) {
	d := NewDirectory()
	d.Add(5, 0)
	d.Add(5, 2)
	d.Add(5, 3)
	if !d.HeldBy(5, 0) || d.HeldBy(5, 1) {
		t.Fatal("HeldBy wrong")
	}
	others := d.Others(5, 2)
	if len(others) != 2 || others[0] != 0 || others[1] != 3 {
		t.Fatalf("Others = %v, want [0 3]", others)
	}
	d.Remove(5, 0)
	d.Remove(5, 2)
	d.Remove(5, 3)
	if !d.Sharers(5).Empty() {
		t.Fatal("sharers not empty after removals")
	}
	if _, ok := d.sharers[5]; ok {
		t.Fatal("empty entry not garbage-collected")
	}
}

func TestDirectoryRemoveAbsent(t *testing.T) {
	d := NewDirectory()
	d.Remove(9, 1) // must not panic
	if !d.Sharers(9).Empty() {
		t.Fatal("phantom sharer")
	}
}

func TestDirectoryOthersEmpty(t *testing.T) {
	d := NewDirectory()
	d.Add(1, 4)
	if got := d.Others(1, 4); got != nil {
		t.Fatalf("Others = %v, want nil", got)
	}
}
