// Package watch implements iWatcher-style data watchpoints on top of UFO
// — the application fine-grained memory protection was originally
// proposed for, and the paper's evidence that UFO is a multi-purpose
// primitive (§3.2): zero-overhead monitoring of arbitrary memory
// in the common case of no triggers, with a software handler invoked on
// watched accesses.
package watch

import (
	"repro/internal/machine"
	"repro/internal/mem"
)

// Event describes a triggered watchpoint.
type Event struct {
	Addr  uint64
	Write bool
	Proc  int
	Cycle uint64
}

// Handler observes watchpoint hits.
type Handler func(Event)

// Watcher manages watchpoints over one machine. Watched-line bookkeeping
// is program-level (the handler table), while the detection itself is the
// hardware UFO bits — so unwatched accesses cost nothing.
type Watcher struct {
	m *machine.Machine
	// HandlerCycles is the charged cost of a watchpoint trap.
	HandlerCycles uint64

	watched map[uint64]watchKind // by line
	handler Handler
	hits    uint64
}

type watchKind struct{ read, write bool }

// New creates a watcher with the given hit handler.
func New(m *machine.Machine, h Handler) *Watcher {
	return &Watcher{
		m:             m,
		HandlerCycles: 40,
		watched:       make(map[uint64]watchKind),
		handler:       h,
	}
}

// Watch monitors the line containing addr. The installing processor pays
// the UFO bit cost.
func (w *Watcher) Watch(p *machine.Proc, addr uint64, onRead, onWrite bool) {
	line := mem.LineOf(addr)
	w.watched[line] = watchKind{read: onRead, write: onWrite}
	var bits mem.UFOBits
	if onRead {
		bits |= mem.UFOFaultOnRead
	}
	if onWrite {
		bits |= mem.UFOFaultOnWrite
	}
	p.SetUFO(mem.LineAddr(line), bits)
}

// Unwatch removes monitoring from the line containing addr.
func (w *Watcher) Unwatch(p *machine.Proc, addr uint64) {
	line := mem.LineOf(addr)
	delete(w.watched, line)
	p.SetUFO(mem.LineAddr(line), mem.UFONone)
}

// Hits reports how many watchpoints have fired.
func (w *Watcher) Hits() uint64 { return w.hits }

// Load performs a monitored read: on a watched line the handler runs
// first (charged), then the access completes under masked faults.
func (w *Watcher) Load(p *machine.Proc, addr uint64) uint64 {
	for {
		v, out := p.NTRead(addr)
		switch out.Kind {
		case machine.OK:
			return v
		case machine.UFOFault:
			w.trap(p, addr, false)
			p.SetUFOEnabled(false)
			v, out = p.NTRead(addr)
			p.SetUFOEnabled(true)
			if out.Kind != machine.OK {
				panic("watch: masked read failed: " + out.Kind.String())
			}
			return v
		default:
			panic("watch: unexpected read outcome " + out.Kind.String())
		}
	}
}

// Store performs a monitored write.
func (w *Watcher) Store(p *machine.Proc, addr, val uint64) {
	for {
		out := p.NTWrite(addr, val)
		switch out.Kind {
		case machine.OK:
			return
		case machine.UFOFault:
			w.trap(p, addr, true)
			p.SetUFOEnabled(false)
			out = p.NTWrite(addr, val)
			p.SetUFOEnabled(true)
			if out.Kind != machine.OK {
				panic("watch: masked write failed: " + out.Kind.String())
			}
			return
		default:
			panic("watch: unexpected write outcome " + out.Kind.String())
		}
	}
}

func (w *Watcher) trap(p *machine.Proc, addr uint64, write bool) {
	w.hits++
	p.Elapse(w.HandlerCycles)
	if w.handler != nil {
		w.handler(Event{Addr: addr, Write: write, Proc: p.ID(), Cycle: p.Now()})
	}
}
