package watch

import (
	"testing"

	"repro/internal/machine"
)

func testMachine() *machine.Machine {
	p := machine.DefaultParams(2)
	p.MemBytes = 1 << 20
	p.Quantum = 0
	p.MaxSteps = 5_000_000
	return machine.New(p)
}

func TestWriteWatchpointFires(t *testing.T) {
	m := testMachine()
	var events []Event
	w := New(m, func(e Event) { events = append(events, e) })
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			w.Watch(p, 128, false, true)
			w.Store(p, 128, 7)       // fires
			if w.Load(p, 128) != 7 { // read not watched: silent
				t.Error("value lost")
			}
			w.Store(p, 256, 1) // different line: silent
		},
		func(p *machine.Proc) {},
	})
	if len(events) != 1 {
		t.Fatalf("events = %v, want exactly one", events)
	}
	if events[0].Addr != 128 || !events[0].Write || events[0].Proc != 0 {
		t.Fatalf("event = %+v", events[0])
	}
	if w.Hits() != 1 {
		t.Fatalf("hits = %d", w.Hits())
	}
}

func TestReadWatchpointFires(t *testing.T) {
	m := testMachine()
	var reads int
	w := New(m, func(e Event) {
		if !e.Write {
			reads++
		}
	})
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			w.Watch(p, 0, true, false)
			w.Load(p, 0)
			w.Load(p, 8)     // same line: fires again
			w.Store(p, 0, 1) // write not watched
		},
		func(p *machine.Proc) {},
	})
	if reads != 2 {
		t.Fatalf("read hits = %d, want 2", reads)
	}
}

func TestUnwatchStopsFiring(t *testing.T) {
	m := testMachine()
	w := New(m, nil)
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			w.Watch(p, 0, true, true)
			w.Store(p, 0, 1)
			w.Unwatch(p, 0)
			w.Store(p, 0, 2)
			w.Load(p, 0)
		},
		func(p *machine.Proc) {},
	})
	if w.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", w.Hits())
	}
	if m.Mem.Read64(0) != 2 {
		t.Fatal("writes lost")
	}
}

func TestCrossProcessorDetection(t *testing.T) {
	// Processor 0 installs the watchpoint; processor 1 trips it — the UFO
	// bits are coherent machine state, not per-processor.
	m := testMachine()
	var culprit int
	w := New(m, func(e Event) { culprit = e.Proc })
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			w.Watch(p, 512, false, true)
			p.Elapse(10_000)
		},
		func(p *machine.Proc) {
			p.Elapse(1_000)
			w.Store(p, 512, 99) // the "buggy" write
		},
	})
	if w.Hits() != 1 || culprit != 1 {
		t.Fatalf("hits=%d culprit=%d", w.Hits(), culprit)
	}
	if m.Mem.Read64(512) != 99 {
		t.Fatal("monitored write lost")
	}
}

func TestUnwatchedAccessesAreFree(t *testing.T) {
	// The pay-per-use property: without watchpoints, monitored accessors
	// cost the same as raw accesses.
	m := testMachine()
	w := New(m, nil)
	var monitored, raw uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			start := p.Now()
			for i := uint64(0); i < 64; i++ {
				w.Store(p, i*64, i)
			}
			monitored = p.Now() - start
		},
		func(p *machine.Proc) {
			start := p.Now()
			for i := uint64(64); i < 128; i++ {
				p.NTWrite(i*64, i)
			}
			raw = p.Now() - start
		},
	})
	if monitored != raw {
		t.Fatalf("monitored %d cycles vs raw %d: unwatched accesses must be free", monitored, raw)
	}
}
