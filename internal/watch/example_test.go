package watch_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/watch"
)

// Example installs a write watchpoint and catches the culprit store.
func Example() {
	m := machine.New(machine.DefaultParams(2))
	w := watch.New(m, func(e watch.Event) {
		fmt.Printf("watchpoint: proc %d wrote %#x\n", e.Proc, e.Addr)
	})
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			w.Watch(p, 0x100, false, true) // fault on writes to that line
			p.Elapse(10_000)
		},
		func(p *machine.Proc) {
			p.Elapse(1_000)
			w.Store(p, 0x100, 42) // the "bug"
		},
	})
	fmt.Println("hits:", w.Hits())
	// Output:
	// watchpoint: proc 1 wrote 0x100
	// hits: 1
}
