package stamp

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// KMeans models STAMP's kmeans: many small transactions that add a point
// into its nearest cluster's accumulator. Cluster centers are fixed for
// the measured kernel (the reduction between k-means iterations is not
// the transactional part), so assignment is deterministic and the final
// accumulators are exactly checkable.
//
// Contention is set by the cluster count: the paper's high-contention
// configuration uses few clusters (every transaction fights over the same
// accumulator lines), the low-contention one many.
type KMeans struct {
	Points     int
	Clusters   int
	Dims       int
	Iterations int
	Seed       uint64
	// DistCycles is the compute charged per point-to-center distance.
	DistCycles uint64

	threads    int
	pointsBase uint64
	accBase    uint64
	accStride  uint64
	coords     [][]int64 // Go-side copy for assignment + validation
	centers    [][]int64
	assign     []int
}

// KMeansHigh returns the paper's high-contention configuration, scaled.
func KMeansHigh(points int) *KMeans {
	return &KMeans{Points: points, Clusters: 4, Dims: 4, Iterations: 1, Seed: 11, DistCycles: 20}
}

// KMeansLow returns the low-contention configuration, scaled.
func KMeansLow(points int) *KMeans {
	return &KMeans{Points: points, Clusters: 48, Dims: 4, Iterations: 1, Seed: 11, DistCycles: 20}
}

// Name implements Workload.
func (k *KMeans) Name() string {
	if k.Clusters <= 8 {
		return "kmeans-high"
	}
	return "kmeans-low"
}

// Init implements Workload.
func (k *KMeans) Init(m *machine.Machine, threads int) {
	if k.Iterations == 0 {
		k.Iterations = 1
	}
	if k.DistCycles == 0 {
		k.DistCycles = 20
	}
	k.threads = threads
	r := sim.NewRand(k.Seed)
	d := txlib.Direct{M: m}

	// Points: one line each (Dims ≤ 8 words).
	k.pointsBase = m.Mem.Sbrk(uint64(k.Points) * mem.LineBytes)
	k.coords = make([][]int64, k.Points)
	for i := range k.coords {
		k.coords[i] = make([]int64, k.Dims)
		for j := 0; j < k.Dims; j++ {
			v := int64(r.Intn(1000))
			k.coords[i][j] = v
			d.Store(k.pointsBase+uint64(i)*mem.LineBytes+uint64(j)*8, uint64(v))
		}
	}
	// Fixed centers.
	k.centers = make([][]int64, k.Clusters)
	for c := range k.centers {
		k.centers[c] = make([]int64, k.Dims)
		for j := 0; j < k.Dims; j++ {
			k.centers[c][j] = int64(r.Intn(1000))
		}
	}
	// Deterministic assignment (used by both the workload and Validate).
	k.assign = make([]int, k.Points)
	for i := range k.assign {
		k.assign[i] = k.nearest(k.coords[i])
	}
	// Accumulators: one line per cluster: [count, sum_0..sum_{D-1}].
	k.accStride = mem.LineBytes
	k.accBase = m.Mem.Sbrk(uint64(k.Clusters) * k.accStride)
	for c := 0; c < k.Clusters; c++ {
		for w := uint64(0); w < 8; w++ {
			d.Store(k.accBase+uint64(c)*k.accStride+w*8, 0)
		}
	}
}

func (k *KMeans) nearest(p []int64) int {
	best, bestD := 0, int64(1)<<62
	for c, ctr := range k.centers {
		var dist int64
		for j := range ctr {
			dd := p[j] - ctr[j]
			dist += dd * dd
		}
		if dist < bestD {
			bestD = dist
			best = c
		}
	}
	return best
}

// Thread implements Workload.
func (k *KMeans) Thread(i int, ex tm.Exec) {
	lo, hi := split(k.Points, k.threads, i)
	for it := 0; it < k.Iterations; it++ {
		for pt := lo; pt < hi; pt++ {
			// Read the point (non-transactional: points are read-only).
			base := k.pointsBase + uint64(pt)*mem.LineBytes
			for j := 0; j < k.Dims; j++ {
				ex.Load(base + uint64(j)*8)
			}
			// Distance computation against every center.
			ex.Proc().Elapse(k.DistCycles * uint64(k.Clusters))
			c := k.assign[pt]
			acc := k.accBase + uint64(c)*k.accStride
			// The transactional kernel: fold the point into its cluster.
			ex.Atomic(func(tx tm.Tx) {
				tx.Store(acc, tx.Load(acc)+1)
				for j := 0; j < k.Dims; j++ {
					a := acc + 8 + uint64(j)*8
					tx.Store(a, tx.Load(a)+uint64(k.coords[pt][j]))
				}
			})
		}
	}
}

// Validate implements Workload: the accumulators must hold exactly
// Iterations× the per-cluster counts and coordinate sums.
func (k *KMeans) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	for c := 0; c < k.Clusters; c++ {
		var count uint64
		sums := make([]uint64, k.Dims)
		for pt := 0; pt < k.Points; pt++ {
			if k.assign[pt] == c {
				count++
				for j := 0; j < k.Dims; j++ {
					sums[j] += uint64(k.coords[pt][j])
				}
			}
		}
		acc := k.accBase + uint64(c)*k.accStride
		it := uint64(k.Iterations)
		if got := d.Load(acc); got != count*it {
			return validErr(k.Name(), "cluster %d count = %d, want %d", c, got, count*it)
		}
		for j := 0; j < k.Dims; j++ {
			if got := d.Load(acc + 8 + uint64(j)*8); got != sums[j]*it {
				return validErr(k.Name(), "cluster %d dim %d sum = %d, want %d", c, j, got, sums[j]*it)
			}
		}
	}
	return nil
}
