package stamp

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Labyrinth models STAMP's maze router (an extension beyond the paper's
// three benchmarks): threads claim paths through a shared grid, each
// claim one transaction that reads and writes every cell on the route.
// Routes span hundreds of cells (one line each), so almost every
// transaction exceeds BTM's capacity — the workload runs essentially
// entirely in the software TM, the regime where a hybrid is only as good
// as its STM. (STAMP: "large footprint, long transactions".)
type Labyrinth struct {
	Width, Height  int
	PathsPerThread int
	PathLen        int
	Seed           uint64

	threads    int
	grid       uint64 // base address: one line per cell
	routes     [][][]uint64
	claimed    []int    // per-thread successful claims
	claimedIdx [][]bool // which routes were claimed (validation)
}

// NewLabyrinth returns a scaled configuration.
func NewLabyrinth(width, height, pathsPerThread int) *Labyrinth {
	return &Labyrinth{
		Width: width, Height: height,
		PathsPerThread: pathsPerThread,
		PathLen:        96,
		Seed:           71,
	}
}

// Name implements Workload.
func (l *Labyrinth) Name() string { return "labyrinth" }

func (l *Labyrinth) cellAddr(x, y int) uint64 {
	return l.grid + uint64(y*l.Width+x)*mem.LineBytes
}

// Init implements Workload: allocate the grid and pre-plan candidate
// routes (monotone staircase walks between random endpoints; planning is
// outside transactions in STAMP too).
func (l *Labyrinth) Init(m *machine.Machine, threads int) {
	l.threads = threads
	l.grid = m.Mem.Sbrk(uint64(l.Width*l.Height) * mem.LineBytes)
	r := sim.NewRand(l.Seed)
	l.routes = make([][][]uint64, threads)
	for t := 0; t < threads; t++ {
		l.routes[t] = make([][]uint64, l.PathsPerThread)
		for p := 0; p < l.PathsPerThread; p++ {
			l.routes[t][p] = l.planRoute(r)
		}
	}
	l.claimed = make([]int, threads)
	l.claimedIdx = make([][]bool, threads)
	for t := range l.claimedIdx {
		l.claimedIdx[t] = make([]bool, l.PathsPerThread)
	}
}

// planRoute walks a staircase of ~PathLen cells.
func (l *Labyrinth) planRoute(r *sim.Rand) []uint64 {
	x, y := r.Intn(l.Width), r.Intn(l.Height)
	route := make([]uint64, 0, l.PathLen)
	seen := map[uint64]bool{}
	for len(route) < l.PathLen {
		a := l.cellAddr(x, y)
		if !seen[a] {
			seen[a] = true
			route = append(route, a)
		}
		if r.Intn(2) == 0 {
			x = (x + 1) % l.Width
		} else {
			y = (y + 1) % l.Height
		}
	}
	return route
}

// Thread implements Workload: claim each planned route atomically; a
// route crossing an already-claimed cell is skipped (STAMP re-plans; we
// count the outcome either way, keeping total work fixed).
func (l *Labyrinth) Thread(i int, ex tm.Exec) {
	claimed := 0
	marker := uint64(i) + 1
	for ri, route := range l.routes[i] {
		rt := route
		var ok bool
		ex.Atomic(func(tx tm.Tx) {
			ok = true
			for _, cell := range rt {
				if tx.Load(cell) != 0 {
					ok = false
					return // free cells only; no writes performed yet
				}
			}
			for _, cell := range rt {
				tx.Store(cell, marker)
			}
		})
		if ok {
			claimed++
			l.claimedIdx[i][ri] = true
		}
		ex.Proc().Elapse(300) // next-route planning
	}
	l.claimed[i] = claimed
}

// Validate implements Workload: successfully claimed routes (which are
// mutually disjoint, since a claim requires every cell free) must be
// fully owned by their claimer, and no cell outside a claimed route may
// be marked.
func (l *Labyrinth) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	wantOwner := map[uint64]uint64{} // cell → marker
	for t := 0; t < l.threads; t++ {
		marker := uint64(t) + 1
		count := 0
		for ri, route := range l.routes[t] {
			if !l.claimedIdx[t][ri] {
				continue
			}
			count++
			for _, cell := range route {
				if prev, dup := wantOwner[cell]; dup {
					return validErr("labyrinth", "cell %#x claimed by markers %d and %d", cell, prev, marker)
				}
				wantOwner[cell] = marker
			}
		}
		if count != l.claimed[t] {
			return validErr("labyrinth", "thread %d claim bookkeeping inconsistent", t)
		}
	}
	marked := 0
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			cell := l.cellAddr(x, y)
			got := d.Load(cell)
			want := wantOwner[cell]
			if got != want {
				return validErr("labyrinth", "cell (%d,%d) owner = %d, want %d", x, y, got, want)
			}
			if got != 0 {
				marked++
			}
		}
	}
	if marked != len(wantOwner) {
		return validErr("labyrinth", "marked cells %d != claimed cells %d", marked, len(wantOwner))
	}
	return nil
}
