package stamp

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Intruder models STAMP's network-intrusion-detection pipeline (an
// extension beyond the paper's three benchmarks). Packet fragments
// arrive in a shared transactional queue; worker threads pop a fragment,
// insert it into the per-flow reassembly state (a shared hash of
// per-flow lists), and when a flow completes, remove it and scan it.
// The queue head is a serialization hotspot and the reassembly hash sees
// medium contention — STAMP's "moderate transactions, moderate
// contention" point.
type Intruder struct {
	Flows        int
	FragsPerFlow int
	Seed         uint64

	threads   int
	queue     txlib.Queue
	flows     txlib.Hash // flowID → reassembly list head
	doneCount uint64     // simulated address: completed flows
	arenas    []*txlib.Arena
	scanned   []int // per-thread flows scanned (validation)
	frags     []uint64
}

// NewIntruder returns a scaled configuration.
func NewIntruder(flows, fragsPerFlow int) *Intruder {
	return &Intruder{Flows: flows, FragsPerFlow: fragsPerFlow, Seed: 61}
}

// Name implements Workload.
func (w *Intruder) Name() string { return "intruder" }

// fragment encoding: flowID*256 + fragment index.
func (w *Intruder) flowOf(frag uint64) uint64  { return frag / 256 }
func (w *Intruder) indexOf(frag uint64) uint64 { return frag % 256 }

// Init implements Workload.
func (w *Intruder) Init(m *machine.Machine, threads int) {
	w.threads = threads
	d := txlib.Direct{M: m}
	total := w.Flows * w.FragsPerFlow
	setupA := txlib.NewArena(m, nil, uint64(total+1024)*64+1<<14)
	w.queue = txlib.NewQueue(d, setupA, uint64(total)) // pre-sized: producers never block
	w.flows = txlib.NewHash(d, setupA, 1<<8)
	w.doneCount = m.Mem.Sbrk(64)

	// Pre-shuffle all fragments into the queue (the "capture" phase is
	// sequential in STAMP too).
	r := sim.NewRand(w.Seed)
	w.frags = make([]uint64, 0, total)
	for f := 1; f <= w.Flows; f++ {
		for i := 0; i < w.FragsPerFlow; i++ {
			w.frags = append(w.frags, uint64(f)*256+uint64(i))
		}
	}
	for i := len(w.frags) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		w.frags[i], w.frags[j] = w.frags[j], w.frags[i]
	}
	for _, frag := range w.frags {
		// Direct pushes via the queue layout (setup time).
		tail := d.Load(w.queueTailAddr())
		d.Store(w.queueSlotAddr(tail), frag)
		d.Store(w.queueTailAddr(), tail+1)
	}
	w.arenas = make([]*txlib.Arena, threads)
	for i := range w.arenas {
		w.arenas[i] = txlib.NewArena(m, nil, uint64(total/threads+32)*2*64+1<<12)
	}
	w.scanned = make([]int, threads)
}

// queue internals for setup (the Queue type's fields are package-local
// to txlib; recompute the addresses from its accessors).
func (w *Intruder) queueTailAddr() uint64 { return w.queue.TailAddr() }
func (w *Intruder) queueSlotAddr(i uint64) uint64 {
	return w.queue.SlotAddr(i)
}

// Thread implements Workload: pop-decode-insert-maybe-scan until the
// queue drains.
func (w *Intruder) Thread(i int, ex tm.Exec) {
	a := w.arenas[i]
	scanned := 0
	for {
		var frag uint64
		var ok bool
		ex.Atomic(func(tx tm.Tx) {
			frag, ok = w.queue.TryPop(tx)
		})
		if !ok {
			break // drained
		}
		ex.Proc().Elapse(40) // decode the fragment
		flow := w.flowOf(frag)
		complete := false
		ex.Atomic(func(tx tm.Tx) {
			complete = false
			listHead, have := w.flows.Get(tx, flow)
			if !have {
				l := txlib.NewList(tx, a)
				listHead = l.Head()
				w.flows.Insert(tx, a, flow, listHead)
			}
			l := txlib.ListAt(listHead)
			l.Insert(tx, a, w.indexOf(frag), frag)
			if l.Len(tx) == w.FragsPerFlow {
				// Flow complete: claim it for scanning.
				w.flows.Remove(tx, flow)
				tx.Store(w.doneCount, tx.Load(w.doneCount)+1)
				complete = true
			}
		})
		if complete {
			ex.Proc().Elapse(uint64(60 * w.FragsPerFlow)) // signature scan
			scanned++
		}
	}
	w.scanned[i] = scanned
}

// Validate implements Workload: every flow completes exactly once, the
// reassembly table drains, and the scans partition the flows.
func (w *Intruder) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	if got := d.Load(w.doneCount); got != uint64(w.Flows) {
		return validErr("intruder", "completed flows = %d, want %d", got, w.Flows)
	}
	if got := w.flows.Len(d); got != 0 {
		return validErr("intruder", "reassembly table retains %d flows", got)
	}
	total := 0
	for _, s := range w.scanned {
		total += s
	}
	if total != w.Flows {
		return validErr("intruder", "scanned %d flows, want %d", total, w.Flows)
	}
	if w.queue.Len(d) != 0 {
		return validErr("intruder", "queue retains %d fragments", w.queue.Len(d))
	}
	return nil
}
