package stamp

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// SSCA2 models STAMP's ssca2 graph kernel (an extension beyond the
// paper's three benchmarks): threads insert directed edges into
// per-node adjacency lists. Transactions are tiny (one list insert) and
// contention is low because edges scatter across many nodes — the
// workload STAMP characterizes as "small footprint, low contention",
// where every TM should scale near-linearly.
type SSCA2 struct {
	Nodes int
	Edges int // total edge draws (duplicates rejected by the lists)
	Seed  uint64

	threads int
	adj     []txlib.List // one list per node
	arenas  []*txlib.Arena
	edges   [][2]uint64 // the drawn edges (for validation)
}

// NewSSCA2 returns a scaled configuration.
func NewSSCA2(nodes, edges int) *SSCA2 {
	return &SSCA2{Nodes: nodes, Edges: edges, Seed: 53}
}

// Name implements Workload.
func (s *SSCA2) Name() string { return "ssca2" }

// Init implements Workload.
func (s *SSCA2) Init(m *machine.Machine, threads int) {
	s.threads = threads
	d := txlib.Direct{M: m}
	setupA := txlib.NewArena(m, nil, uint64(s.Nodes)*64+1<<12)
	s.adj = make([]txlib.List, s.Nodes)
	for i := range s.adj {
		s.adj[i] = txlib.NewList(d, setupA)
	}
	r := sim.NewRand(s.Seed)
	s.edges = make([][2]uint64, s.Edges)
	for i := range s.edges {
		u := uint64(r.Intn(s.Nodes))
		v := uint64(r.Intn(s.Nodes))
		s.edges[i] = [2]uint64{u, v}
	}
	s.arenas = make([]*txlib.Arena, threads)
	for i := range s.arenas {
		s.arenas[i] = txlib.NewArena(m, nil, uint64(s.Edges/threads+16)*64+1<<12)
	}
}

// Thread implements Workload.
func (s *SSCA2) Thread(i int, ex tm.Exec) {
	a := s.arenas[i]
	lo, hi := split(s.Edges, s.threads, i)
	for _, e := range s.edges[lo:hi] {
		u, v := e[0], e[1]
		ex.Atomic(func(tx tm.Tx) {
			s.adj[u].Insert(tx, a, v, 1) // duplicate edges rejected
		})
		ex.Proc().Elapse(uint64(15 + i%7)) // per-edge preprocessing
	}
}

// Validate implements Workload: each adjacency list must hold exactly the
// distinct targets drawn for that node, sorted.
func (s *SSCA2) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	want := make([]map[uint64]bool, s.Nodes)
	for i := range want {
		want[i] = map[uint64]bool{}
	}
	for _, e := range s.edges {
		want[e[0]][e[1]] = true
	}
	for u := range s.adj {
		keys := s.adj[u].Keys(d)
		if len(keys) != len(want[u]) {
			return validErr("ssca2", "node %d has %d edges, want %d", u, len(keys), len(want[u]))
		}
		for i, k := range keys {
			if !want[u][k] {
				return validErr("ssca2", "node %d has foreign edge %d", u, k)
			}
			if i > 0 && keys[i-1] >= k {
				return validErr("ssca2", "node %d adjacency unsorted", u)
			}
		}
	}
	return nil
}
