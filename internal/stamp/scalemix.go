package stamp

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

// ScaleMix is the scaling-study workload behind `tmsim -experiment
// scale`: compute-heavy, low-contention, and sized for the 64/128/256
// simulated-processor sweeps the windowed-parallel scheduler (DESIGN.md
// §14) exists for. Each thread's share of the work is dominated by real
// host-side computation (a hash chain whose digest the run commits and
// Validate recomputes, so it cannot be optimized away) charged to
// simulated time via Elapse; transactions are short and touch mostly
// per-thread lines, with a shared counter bumped every SharePeriod
// iterations to keep the coherence machinery honest. Host computation
// between TM operations is exactly what the parallel scheduler overlaps
// across cores, so this workload is also the wall-clock benchmark for
// that scheduler.
//
// Like every workload in this package, total work is fixed independent
// of the thread count, so simulated speedups over the sequential
// baseline are well-defined.
type ScaleMix struct {
	// TotalIters is the total iteration count, divided among threads.
	TotalIters int
	// Work is the number of hash rounds (host compute) per iteration.
	Work int
	// WorkCycles is the simulated cost charged per iteration's compute.
	WorkCycles uint64
	// SharePeriod bumps the shared counter every SharePeriod-th
	// iteration of each thread (0 disables the shared line).
	SharePeriod int

	threads    int
	slotBase   uint64
	digestBase uint64
	sharedAddr uint64
}

// NewScaleMix builds the workload with the default mix shape.
func NewScaleMix(totalIters, work int) *ScaleMix {
	return &ScaleMix{
		TotalIters:  totalIters,
		Work:        work,
		WorkCycles:  120,
		SharePeriod: 16,
	}
}

// Name implements Workload.
func (w *ScaleMix) Name() string { return "scalemix" }

// Init implements Workload.
func (w *ScaleMix) Init(m *machine.Machine, threads int) {
	w.threads = threads
	w.slotBase = m.Mem.Sbrk(uint64(threads) * mem.LineBytes)
	w.digestBase = m.Mem.Sbrk(uint64(threads) * mem.LineBytes)
	w.sharedAddr = m.Mem.Sbrk(mem.LineBytes)
}

// mix64 is the SplitMix64 finalizer — cheap, statistically strong, and
// loop-carried so the compiler cannot elide the work.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 32
	return h
}

// digest replays thread i's hash chain over its iteration share.
func (w *ScaleMix) digest(i, lo, hi int) uint64 {
	h := uint64(i)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for iter := lo; iter < hi; iter++ {
		for r := 0; r < w.Work; r++ {
			h = mix64(h + uint64(iter*w.Work+r))
		}
	}
	return h
}

// Thread implements Workload.
func (w *ScaleMix) Thread(i int, ex tm.Exec) {
	p := ex.Proc()
	lo, hi := split(w.TotalIters, w.threads, i)
	slot := w.slotBase + uint64(i)*mem.LineBytes
	h := uint64(i)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for iter := lo; iter < hi; iter++ {
		for r := 0; r < w.Work; r++ {
			h = mix64(h + uint64(iter*w.Work+r))
		}
		p.Elapse(w.WorkCycles)
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(slot, tx.Load(slot)+1)
		})
		// Keyed on the global iteration index: the bump points fall at
		// different offsets within each thread's share, so threads do not
		// all hit the shared line at the same simulated instant.
		if w.SharePeriod > 0 && iter%w.SharePeriod == 0 {
			ex.Atomic(func(tx tm.Tx) {
				tx.Store(w.sharedAddr, tx.Load(w.sharedAddr)+1)
			})
		}
	}
	ex.Store(w.digestBase+uint64(i)*mem.LineBytes, h)
}

// Validate implements Workload: per-thread counters must equal the
// iteration shares, the shared counter their SharePeriod quotients, and
// each committed digest the replayed hash chain — so a run that skipped
// or misordered compute fails even if the counters add up.
func (w *ScaleMix) Validate(m *machine.Machine) error {
	var wantShared uint64
	for i := 0; i < w.threads; i++ {
		lo, hi := split(w.TotalIters, w.threads, i)
		if got, want := m.Mem.Read64(w.slotBase+uint64(i)*mem.LineBytes), uint64(hi-lo); got != want {
			return validErr("scalemix", "thread %d committed %d iterations, want %d", i, got, want)
		}
		if got, want := m.Mem.Read64(w.digestBase+uint64(i)*mem.LineBytes), w.digest(i, lo, hi); got != want {
			return validErr("scalemix", "thread %d digest %#x, want %#x", i, got, want)
		}
		if w.SharePeriod > 0 {
			for iter := lo; iter < hi; iter++ {
				if iter%w.SharePeriod == 0 {
					wantShared++
				}
			}
		}
	}
	if got := m.Mem.Read64(w.sharedAddr); got != wantShared {
		return validErr("scalemix", "shared counter %d, want %d", got, wantShared)
	}
	return nil
}
