package stamp

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Genome models STAMP's gene-sequencing application in the three phases
// the paper's analysis leans on:
//
//  1. Segment deduplication: threads insert chunks of segment keys (with
//     duplicates) into one shared hash set, a whole chunk per
//     transaction — STAMP's batched hashtable insertions, whose multi-line
//     footprints are what periodically overflow BTM's cache.
//  2. Sorted insertion: unique segments are inserted in sorted order into
//     a small set of shared linked lists (key-range buckets) — the
//     high-contention phase the paper calls out ("a data structure not
//     well suited for concurrent writes by transactions"): every insert
//     reads a list prefix that concurrent writers invalidate, so writers
//     kill every younger reader behind them and contention management is
//     make-or-break (Figure 8).
//  3. Matching: threads probe the hash for each unique segment's
//     successor (read-only transactions) and count chain links.
type Genome struct {
	Segments int // total segment draws (with duplicates)
	KeySpace int // distinct possible keys (controls the duplicate rate)
	Buckets  uint64
	// ListBuckets is the number of key-range-bucketed sorted lists in
	// phase 2 (fewer buckets = hotter).
	ListBuckets int
	// Chunk is the number of segments deduplicated per phase-1
	// transaction.
	Chunk int
	Seed  uint64

	threads  int
	hash     txlib.Hash
	lists    []txlib.List
	arenas   []*txlib.Arena
	barrier  *Barrier
	keys     []uint64 // the drawn segment keys
	matchCnt []int    // per-thread phase-3 results
}

// NewGenome returns a scaled genome configuration.
func NewGenome(segments int) *Genome {
	return &Genome{
		Segments:    segments,
		KeySpace:    segments * 3 / 4,
		Buckets:     1 << 10,
		ListBuckets: 16,
		Chunk:       8,
		Seed:        31,
	}
}

// Name implements Workload.
func (g *Genome) Name() string { return "genome" }

// Init implements Workload.
func (g *Genome) Init(m *machine.Machine, threads int) {
	g.threads = threads
	if g.Buckets == 0 {
		g.Buckets = 1 << 10
	}
	if g.ListBuckets == 0 {
		g.ListBuckets = 16
	}
	if g.Chunk == 0 {
		g.Chunk = 8
	}
	d := txlib.Direct{M: m}
	setupA := txlib.NewArena(m, nil, g.Buckets*64+uint64(g.ListBuckets)*64+1<<12)
	g.hash = txlib.NewHash(d, setupA, g.Buckets)
	g.lists = make([]txlib.List, g.ListBuckets)
	for i := range g.lists {
		g.lists[i] = txlib.NewList(d, setupA)
	}
	g.barrier = NewBarrier(m, threads)
	r := sim.NewRand(g.Seed)
	g.keys = make([]uint64, g.Segments)
	for i := range g.keys {
		g.keys[i] = uint64(1 + r.Intn(g.KeySpace))
	}
	g.arenas = make([]*txlib.Arena, threads)
	for i := range g.arenas {
		g.arenas[i] = txlib.NewArena(m, nil, uint64(g.Segments/threads+16)*2*64+1<<12)
	}
	g.matchCnt = make([]int, threads)
}

// listFor maps a key to its phase-2 bucket.
func (g *Genome) listFor(key uint64) txlib.List {
	idx := int(key) * g.ListBuckets / (g.KeySpace + 2)
	if idx >= g.ListBuckets {
		idx = g.ListBuckets - 1
	}
	return g.lists[idx]
}

// Thread implements Workload.
func (g *Genome) Thread(i int, ex tm.Exec) {
	a := g.arenas[i]
	lo, hi := split(g.Segments, g.threads, i)

	// Phase 1: deduplicate chunk-by-chunk into the shared hash set.
	// Remember which keys this thread inserted first; it owns their
	// phase-2 insertion and phase-3 probe.
	var mine []uint64
	chunkFirst := make([]bool, g.Chunk)
	ex.Proc().SetNote("genome phase1")
	for base := lo; base < hi; base += g.Chunk {
		end := base + g.Chunk
		if end > hi {
			end = hi
		}
		chunk := g.keys[base:end]
		ex.Atomic(func(tx tm.Tx) {
			for j, k := range chunk {
				chunkFirst[j] = g.hash.Insert(tx, a, k, k)
			}
		})
		for j := range chunk {
			if chunkFirst[j] {
				mine = append(mine, chunk[j])
			}
		}
		ex.Proc().Elapse(uint64(30 * len(chunk))) // segment preprocessing
	}
	g.barrier.Wait(ex)

	// Phase 2: sorted insertion into the bucketed lists (high contention).
	ex.Proc().SetNote("genome phase2")
	for _, k := range mine {
		key := k
		ex.Atomic(func(tx tm.Tx) {
			g.listFor(key).Insert(tx, a, key, key)
		})
		ex.Proc().Elapse(20)
	}
	g.barrier.Wait(ex)

	// Phase 3: probe for successor segments (read-only transactions).
	ex.Proc().SetNote("genome phase3")
	count := 0
	for _, k := range mine {
		key := k
		var found bool // assigned, not accumulated: safe across re-execution
		ex.Atomic(func(tx tm.Tx) {
			found = g.hash.Contains(tx, key+1)
		})
		if found {
			count++
		}
		ex.Proc().Elapse(40) // overlap scoring
	}
	g.matchCnt[i] = count
}

// Validate implements Workload: the lists and hash must both hold exactly
// the distinct keys, each list sorted and in its key range, and the
// phase-3 match count must equal the reference count.
func (g *Genome) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	distinct := map[uint64]bool{}
	for _, k := range g.keys {
		distinct[k] = true
	}
	if got := g.hash.Len(d); got != len(distinct) {
		return validErr("genome", "hash has %d keys, want %d", got, len(distinct))
	}
	totalListed := 0
	for li, l := range g.lists {
		keys := l.Keys(d)
		totalListed += len(keys)
		for i, k := range keys {
			if i > 0 && keys[i-1] >= k {
				return validErr("genome", "list %d unsorted at %d", li, i)
			}
			if !distinct[k] {
				return validErr("genome", "list %d holds foreign key %d", li, k)
			}
			if g.listFor(k).Head() != l.Head() {
				return validErr("genome", "key %d landed in wrong bucket %d", k, li)
			}
		}
	}
	if totalListed != len(distinct) {
		return validErr("genome", "lists hold %d keys, want %d", totalListed, len(distinct))
	}
	wantMatches := 0
	for k := range distinct {
		if distinct[k+1] {
			wantMatches++
		}
	}
	gotMatches := 0
	for _, c := range g.matchCnt {
		gotMatches += c
	}
	if gotMatches != wantMatches {
		return validErr("genome", "matches = %d, want %d", gotMatches, wantMatches)
	}
	return nil
}
