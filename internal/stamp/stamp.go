// Package stamp re-implements the STAMP benchmarks the paper evaluates —
// kmeans, vacation, and genome — against the generic tm.Exec interface,
// plus the software-failover microbenchmark of §5.3. Each workload
// fixes its total work independently of the thread count (work is divided
// among threads), so speedups against the sequential baseline are
// well-defined, and each workload validates a global invariant after the
// run so that every cross-system comparison is also a correctness check.
package stamp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tm"
)

// Workload is a benchmark program runnable on any TM system.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Init builds the shared state in simulated memory (zero simulated
	// cost; it happens before timing starts). threads is the number of
	// worker threads the run will use.
	Init(m *machine.Machine, threads int)
	// Thread runs thread i's share of the work on the given execution
	// context.
	Thread(i int, ex tm.Exec)
	// Validate checks the workload's global invariant after the run.
	Validate(m *machine.Machine) error
}

// Barrier is a flag-based master-collects phase barrier built entirely
// from non-transactional loads and stores: each arriving thread publishes
// the new generation in its own flag line, thread 0 collects the flags
// and advances the shared generation, and everyone else spins on it.
//
// Deliberately NOT transactional: a transactional arrival whose footprint
// includes the generation word would be killed by every spinner's
// non-transactional poll (strong atomicity makes nonT accesses win) — a
// deterministic livelock under HTMs and a real pitfall of mixing spin
// synchronization with transactions.
type Barrier struct {
	flagBase uint64 // n line-spaced per-thread flags
	genAddr  uint64
	n        int
	// SpinCycles is the poll interval while waiting.
	SpinCycles uint64
}

// NewBarrier allocates a barrier for n threads; waiters must be the
// processors with IDs 0..n-1.
func NewBarrier(m *machine.Machine, n int) *Barrier {
	return &Barrier{
		flagBase:   m.Mem.Sbrk(uint64(n) * 64),
		genAddr:    m.Mem.Sbrk(64),
		n:          n,
		SpinCycles: 200,
	}
}

func (b *Barrier) flag(i int) uint64 { return b.flagBase + uint64(i)*64 }

// Wait blocks until all n threads have arrived.
func (b *Barrier) Wait(ex tm.Exec) {
	p := ex.Proc()
	id := p.ID()
	gen := ex.Load(b.genAddr)
	ex.Store(b.flag(id), gen+1)
	if id == 0 {
		// Master: collect every flag, then release the generation.
		p.SetNote("barrier collect gen=%d", gen)
		for i := 1; i < b.n; i++ {
			for ex.Load(b.flag(i)) != gen+1 {
				p.Elapse(b.SpinCycles)
			}
		}
		ex.Store(b.genAddr, gen+1)
	} else {
		p.SetNote("barrier spin gen=%d", gen)
		for ex.Load(b.genAddr) == gen {
			p.Elapse(b.SpinCycles)
		}
	}
	p.SetNote("barrier passed gen=%d", gen)
}

// split returns thread i's half-open share [lo, hi) of total items.
func split(total, threads, i int) (lo, hi int) {
	lo = total * i / threads
	hi = total * (i + 1) / threads
	return lo, hi
}

// validErr builds a formatted validation error.
func validErr(workload, format string, args ...any) error {
	return fmt.Errorf("%s: %s", workload, fmt.Sprintf(format, args...))
}
