package stamp

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/txlib"
)

// Vacation models STAMP's travel-reservation system: four tables (cars,
// rooms, flights as resource trees; customers with per-customer
// reservation lists) and three task types — make-reservation, delete-
// customer, and update-tables — in STAMP's proportions. Its transactions
// are long-running and walk trees, giving the large footprints that
// sometimes overflow BTM's L1 and drive the hybrids apart (Figure 5).
//
// Parameters mirror STAMP's: QueriesPerTask (-n), QueryRangePct (-q, the
// fraction of each table tasks touch — smaller is hotter), PctUser (-u,
// the make-reservation share).
type Vacation struct {
	Relations      int
	TasksPerThread int
	QueriesPerTask int
	QueryRangePct  int
	PctUser        int
	Seed           uint64

	threads   int
	resources [3]txlib.Tree // cars, rooms, flights: id → resource addr
	customers txlib.Tree    // customer id → reservation-list head
	arenas    []*txlib.Arena
	setupA    *txlib.Arena
}

// resource block layout (one line): [total, used, price].
const (
	resTotal = 0
	resUsed  = 8
	resPrice = 16
)

// VacationHigh returns the paper's high-contention configuration, scaled:
// more queries per task over a narrower slice of the tables.
func VacationHigh(relations, tasksPerThread int) *Vacation {
	return &Vacation{
		Relations: relations, TasksPerThread: tasksPerThread,
		QueriesPerTask: 4, QueryRangePct: 60, PctUser: 90, Seed: 23,
	}
}

// VacationLow returns the low-contention configuration, scaled.
func VacationLow(relations, tasksPerThread int) *Vacation {
	return &Vacation{
		Relations: relations, TasksPerThread: tasksPerThread,
		QueriesPerTask: 2, QueryRangePct: 90, PctUser: 98, Seed: 23,
	}
}

// Name implements Workload.
func (v *Vacation) Name() string {
	if v.QueryRangePct <= 75 {
		return "vacation-high"
	}
	return "vacation-low"
}

// Init implements Workload.
func (v *Vacation) Init(m *machine.Machine, threads int) {
	v.threads = threads
	d := txlib.Direct{M: m}
	// Setup arena: trees + resources + customer list sentinels.
	setupBytes := uint64(v.Relations)*8*mem.LineBytes + 1<<16
	v.setupA = txlib.NewArena(m, nil, setupBytes)
	r := sim.NewRand(v.Seed)
	// Insert ids in random order so the unbalanced trees stay shallow.
	ids := make([]uint64, v.Relations)
	for i := range ids {
		ids[i] = uint64(i) + 1
	}
	for t := 0; t < 3; t++ {
		v.resources[t] = txlib.NewTree(d, v.setupA)
		for i := len(ids) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			ids[i], ids[j] = ids[j], ids[i]
		}
		for _, id := range ids {
			res := v.setupA.Alloc(mem.LineBytes)
			d.Store(res+resTotal, uint64(1+r.Intn(5)))
			d.Store(res+resUsed, 0)
			d.Store(res+resPrice, uint64(50+r.Intn(500)))
			v.resources[t].Insert(d, v.setupA, id, res)
		}
	}
	v.customers = txlib.NewTree(d, v.setupA)
	// Pre-populate every customer with an empty reservation list (as
	// STAMP does): steady-state reservations then only read the customer
	// tree, keeping its hot root region write-free.
	for i := len(ids) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		ids[i], ids[j] = ids[j], ids[i]
	}
	for _, id := range ids {
		l := txlib.NewList(d, v.setupA)
		v.customers.Insert(d, v.setupA, id, l.Head())
	}
	// Per-thread arenas for in-transaction allocation.
	v.arenas = make([]*txlib.Arena, threads)
	perThread := uint64(v.TasksPerThread*8+64) * mem.LineBytes
	for i := range v.arenas {
		v.arenas[i] = txlib.NewArena(m, nil, perThread)
	}
}

// Thread implements Workload.
func (v *Vacation) Thread(i int, ex tm.Exec) {
	r := sim.NewRand(v.Seed*1_000_003 + uint64(i))
	a := v.arenas[i]
	hot := v.Relations * v.QueryRangePct / 100
	if hot < 1 {
		hot = 1
	}
	for task := 0; task < v.TasksPerThread; task++ {
		pct := r.Intn(100)
		custID := uint64(1 + r.Intn(v.Relations))
		switch {
		case pct < v.PctUser:
			v.makeReservation(ex, a, r, custID, hot)
		case pct < v.PctUser+(100-v.PctUser)/2:
			v.deleteCustomer(ex, custID)
		default:
			v.updateTables(ex, a, r, hot)
		}
		ex.Proc().Elapse(uint64(50 + r.Intn(100))) // think time
	}
}

// makeReservation queries several resources across the tables and
// reserves the best-priced available one per table, recording each
// reservation in the customer's list.
func (v *Vacation) makeReservation(ex tm.Exec, a *txlib.Arena, r *sim.Rand, custID uint64, hot int) {
	// Pre-draw the random choices so the transaction body is idempotent
	// across re-execution.
	type query struct {
		table int
		id    uint64
	}
	queries := make([]query, v.QueriesPerTask)
	for q := range queries {
		queries[q] = query{table: r.Intn(3), id: uint64(1 + r.Intn(hot))}
	}
	ex.Atomic(func(tx tm.Tx) {
		var bestRes [3]uint64
		var bestPrice [3]uint64
		for _, q := range queries {
			res, ok := v.resources[q.table].Get(tx, q.id)
			if !ok {
				continue
			}
			total := tx.Load(res + resTotal)
			used := tx.Load(res + resUsed)
			price := tx.Load(res + resPrice)
			if used < total && price > bestPrice[q.table] {
				bestPrice[q.table] = price
				bestRes[q.table] = res
			}
		}
		reserved := false
		var listHead uint64
		for t := 0; t < 3; t++ {
			if bestRes[t] == 0 {
				continue
			}
			if !reserved {
				// Materialize the customer on first reservation.
				var ok bool
				listHead, ok = v.customers.Get(tx, custID)
				if !ok {
					l := txlib.NewList(tx, a)
					listHead = l.Head()
					v.customers.Insert(tx, a, custID, listHead)
				}
				reserved = true
			}
			res := bestRes[t]
			tx.Store(res+resUsed, tx.Load(res+resUsed)+1)
			// Key reservations by resource address (unique per resource;
			// duplicate reservations of one resource collapse, releasing
			// nothing extra at delete time because Insert reports it).
			if !txlib.ListAt(listHead).Insert(tx, a, res, 1) {
				// Already reserved by this customer: undo the extra use.
				tx.Store(res+resUsed, tx.Load(res+resUsed)-1)
			}
		}
	})
}

// deleteCustomer releases all of a customer's reservations.
func (v *Vacation) deleteCustomer(ex tm.Exec, custID uint64) {
	ex.Atomic(func(tx tm.Tx) {
		listHead, ok := v.customers.Get(tx, custID)
		if !ok {
			return
		}
		l := txlib.ListAt(listHead)
		l.ForEach(tx, func(res, _ uint64) {
			tx.Store(res+resUsed, tx.Load(res+resUsed)-1)
		})
		v.customers.Delete(tx, custID)
	})
}

// updateTables re-prices random resources (STAMP's manager updates).
func (v *Vacation) updateTables(ex tm.Exec, a *txlib.Arena, r *sim.Rand, hot int) {
	type upd struct {
		table    int
		id       uint64
		newPrice uint64
	}
	ups := make([]upd, v.QueriesPerTask)
	for q := range ups {
		ups[q] = upd{table: r.Intn(3), id: uint64(1 + r.Intn(hot)), newPrice: uint64(50 + r.Intn(500))}
	}
	ex.Atomic(func(tx tm.Tx) {
		for _, u := range ups {
			if res, ok := v.resources[u.table].Get(tx, u.id); ok {
				tx.Store(res+resPrice, u.newPrice)
			}
		}
	})
}

// Validate implements Workload: every resource's used count must equal
// the number of live customer reservations referencing it, and never
// exceed its capacity.
func (v *Vacation) Validate(m *machine.Machine) error {
	d := txlib.Direct{M: m}
	refs := map[uint64]uint64{}
	v.customers.ForEach(d, func(_, listHead uint64) {
		txlib.ListAt(listHead).ForEach(d, func(res, _ uint64) {
			refs[res]++
		})
	})
	for t := 0; t < 3; t++ {
		var err error
		v.resources[t].ForEach(d, func(id, res uint64) {
			if err != nil {
				return
			}
			total, used := d.Load(res+resTotal), d.Load(res+resUsed)
			if used > total {
				err = validErr(v.Name(), "table %d id %d: used %d > total %d", t, id, used, total)
				return
			}
			if refs[res] != used {
				err = validErr(v.Name(), "table %d id %d: used %d but %d reservations", t, id, used, refs[res])
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
