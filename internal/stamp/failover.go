package stamp

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tm"
)

// Failover is the Section 5.3 microbenchmark: transactions touch only
// thread-private lines (so they never conflict) but fail over to software
// at a prescribed random rate, isolating each hybrid's cost of software
// execution from contention effects. The failover is forced with a
// transactional syscall marker, which every hybrid must run in software;
// the coin-flip check itself is charged to every system, matching the
// paper's note that the forcing code costs all configurations alike.
type Failover struct {
	TasksPerThread int
	LinesPerTx     int
	// RatePct is the percentage of transactions forced to software.
	RatePct int
	Seed    uint64
	// CheckCycles is the cost of the forced-failover coin flip inside
	// each transaction.
	CheckCycles uint64
	// WorkCycles is in-transaction compute, diluting per-access overheads
	// the way real transaction bodies do.
	WorkCycles uint64

	threads int
	bases   []uint64
	done    []uint64 // per-thread completed-task counts (validation)
}

// NewFailover returns the microbenchmark at the given failover rate.
func NewFailover(tasksPerThread, ratePct int) *Failover {
	return &Failover{
		TasksPerThread: tasksPerThread,
		LinesPerTx:     6,
		RatePct:        ratePct,
		Seed:           41,
		CheckCycles:    12,
		WorkCycles:     300,
	}
}

// Name implements Workload.
func (f *Failover) Name() string { return "failover-microbench" }

// Init implements Workload.
func (f *Failover) Init(m *machine.Machine, threads int) {
	f.threads = threads
	if f.LinesPerTx == 0 {
		f.LinesPerTx = 4
	}
	f.bases = make([]uint64, threads)
	for i := range f.bases {
		// Thread-private working sets, line-disjoint.
		f.bases[i] = m.Mem.Sbrk(uint64(f.LinesPerTx) * mem.LineBytes)
	}
	f.done = make([]uint64, threads)
}

// Thread implements Workload.
func (f *Failover) Thread(i int, ex tm.Exec) {
	r := sim.NewRand(f.Seed*7_368_787 + uint64(i))
	base := f.bases[i]
	for task := 0; task < f.TasksPerThread; task++ {
		force := r.Intn(100) < f.RatePct
		ex.Atomic(func(tx tm.Tx) {
			ex.Proc().Elapse(f.CheckCycles) // the forced-failover check
			if force {
				tx.Syscall()
			}
			ex.Proc().Elapse(f.WorkCycles)
			for j := 0; j < f.LinesPerTx; j++ {
				a := base + uint64(j)*mem.LineBytes
				tx.Store(a, tx.Load(a)+1)
			}
		})
		ex.Proc().Elapse(uint64(20 + r.Intn(40)))
	}
	f.done[i] = uint64(f.TasksPerThread)
}

// Validate implements Workload: every private line must have been
// incremented exactly TasksPerThread times.
func (f *Failover) Validate(m *machine.Machine) error {
	for i := 0; i < f.threads; i++ {
		for j := 0; j < f.LinesPerTx; j++ {
			a := f.bases[i] + uint64(j)*mem.LineBytes
			if got := m.Mem.Read64(a); got != uint64(f.TasksPerThread) {
				return validErr(f.Name(), "thread %d line %d = %d, want %d", i, j, got, f.TasksPerThread)
			}
		}
	}
	return nil
}
