package stamp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/seq"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 26
	p.MaxSteps = 100_000_000
	return machine.New(p)
}

// runOn executes a workload on the given system factory and validates.
func runOn(t *testing.T, wl Workload, threads int, mkSys func(*machine.Machine) tm.System) {
	t.Helper()
	m := testMachine(threads)
	sys := mkSys(m)
	wl.Init(m, threads)
	bodies := make([]func(*machine.Proc), threads)
	for i := 0; i < threads; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	if err := wl.Validate(m); err != nil {
		t.Fatalf("validation on %s: %v", sys.Name(), err)
	}
}

func hybridSys(m *machine.Machine) tm.System {
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 13
	return core.New(m, cfg, core.DefaultPolicy())
}

func stmSys(m *machine.Machine) tm.System {
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 13
	return ustm.New(m, cfg)
}

func lockSys(m *machine.Machine) tm.System { return seq.New(m, seq.GlobalLock) }

func TestKMeansHighOnHybrid(t *testing.T) {
	runOn(t, KMeansHigh(200), 4, hybridSys)
}

func TestKMeansLowOnSTM(t *testing.T) {
	runOn(t, KMeansLow(200), 2, stmSys)
}

func TestKMeansSingleThread(t *testing.T) {
	runOn(t, KMeansHigh(100), 1, lockSys)
}

func TestKMeansMultipleIterations(t *testing.T) {
	k := KMeansHigh(80)
	k.Iterations = 3
	runOn(t, k, 2, hybridSys)
}

func TestVacationHighOnHybrid(t *testing.T) {
	runOn(t, VacationHigh(128, 20), 4, hybridSys)
}

func TestVacationLowOnSTM(t *testing.T) {
	runOn(t, VacationLow(128, 15), 2, stmSys)
}

func TestVacationOnLock(t *testing.T) {
	runOn(t, VacationHigh(96, 15), 2, lockSys)
}

func TestVacationNames(t *testing.T) {
	if VacationHigh(10, 1).Name() != "vacation-high" || VacationLow(10, 1).Name() != "vacation-low" {
		t.Fatal("vacation names wrong")
	}
}

func TestGenomeOnHybrid(t *testing.T) {
	runOn(t, NewGenome(150), 4, hybridSys)
}

func TestGenomeOnSTM(t *testing.T) {
	runOn(t, NewGenome(120), 2, stmSys)
}

func TestGenomeSingleThread(t *testing.T) {
	runOn(t, NewGenome(100), 1, hybridSys)
}

func TestFailoverWorkload(t *testing.T) {
	for _, rate := range []int{0, 50, 100} {
		runOn(t, NewFailover(25, rate), 3, hybridSys)
	}
}

func TestFailoverForcesSoftware(t *testing.T) {
	m := testMachine(2)
	sys := hybridSys(m)
	wl := NewFailover(30, 100) // every transaction forced to software
	wl.Init(m, 2)
	bodies := make([]func(*machine.Proc), 2)
	for i := 0; i < 2; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	st := sys.Stats()
	if st.SWCommits != 60 || st.HWCommits != 0 {
		t.Fatalf("stats = %v: 100%% rate must run everything in software", st)
	}
	if err := wl.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansNames(t *testing.T) {
	if KMeansHigh(10).Name() != "kmeans-high" || KMeansLow(10).Name() != "kmeans-low" {
		t.Fatal("kmeans names wrong")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := testMachine(3)
	sys := hybridSys(m)
	b := NewBarrier(m, 3)
	arrivals := make([]uint64, 3)
	departures := make([]uint64, 3)
	var bodies []func(*machine.Proc)
	for i := 0; i < 3; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies = append(bodies, func(p *machine.Proc) {
			p.Elapse(uint64(1000 * (tid + 1))) // stagger arrivals
			arrivals[tid] = p.Now()
			b.Wait(ex)
			departures[tid] = p.Now()
		})
	}
	m.Run(bodies)
	var lastArrival uint64
	for _, a := range arrivals {
		if a > lastArrival {
			lastArrival = a
		}
	}
	for i, d := range departures {
		if d < lastArrival {
			t.Fatalf("thread %d departed at %d before last arrival %d", i, d, lastArrival)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := testMachine(2)
	sys := hybridSys(m)
	b := NewBarrier(m, 2)
	var bodies []func(*machine.Proc)
	for i := 0; i < 2; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies = append(bodies, func(p *machine.Proc) {
			for round := 0; round < 5; round++ {
				p.Elapse(uint64(100 * (tid + 1)))
				b.Wait(ex)
			}
		})
	}
	m.Run(bodies) // completing at all proves generations advance
}

func TestSplitCoversAllWork(t *testing.T) {
	for _, total := range []int{1, 7, 100} {
		for _, threads := range []int{1, 3, 8} {
			covered := 0
			prevHi := 0
			for i := 0; i < threads; i++ {
				lo, hi := split(total, threads, i)
				if lo != prevHi {
					t.Fatalf("split gap at thread %d", i)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != total || prevHi != total {
				t.Fatalf("split(%d,%d) covered %d", total, threads, covered)
			}
		}
	}
}

func TestSSCA2OnHybrid(t *testing.T) {
	runOn(t, NewSSCA2(64, 400), 4, hybridSys)
}

func TestSSCA2OnSTM(t *testing.T) {
	runOn(t, NewSSCA2(48, 200), 2, stmSys)
}

func TestSSCA2ScalesWell(t *testing.T) {
	// The "small txs, low contention" workload: 4 threads on the hybrid
	// should get a real speedup over 1 thread.
	cycles := func(threads int) uint64 {
		m := testMachine(threads)
		sys := hybridSys(m)
		wl := NewSSCA2(96, 600)
		wl.Init(m, threads)
		bodies := make([]func(*machine.Proc), threads)
		for i := 0; i < threads; i++ {
			ex := sys.Exec(m.Proc(i))
			tid := i
			bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
		}
		m.Run(bodies)
		if err := wl.Validate(m); err != nil {
			t.Fatal(err)
		}
		return m.Cycles()
	}
	one, four := cycles(1), cycles(4)
	if speedup := float64(one) / float64(four); speedup < 2.5 {
		t.Fatalf("ssca2 speedup at 4 threads = %.2f, want ≥2.5", speedup)
	}
}

func TestIntruderOnHybrid(t *testing.T) {
	runOn(t, NewIntruder(24, 4), 4, hybridSys)
}

func TestIntruderOnSTM(t *testing.T) {
	runOn(t, NewIntruder(16, 3), 2, stmSys)
}

func TestIntruderOnLock(t *testing.T) {
	runOn(t, NewIntruder(16, 4), 2, lockSys)
}

func TestLabyrinthOnHybrid(t *testing.T) {
	runOn(t, NewLabyrinth(24, 24, 4), 4, hybridSys)
}

func TestLabyrinthMostlyFailsOver(t *testing.T) {
	// Routes of ~96 lines overwhelm a shrunken L1: nearly every claim
	// must run in software.
	params := machine.DefaultParams(2)
	params.MemBytes = 1 << 26
	params.L1Bytes = 4 * 1024
	params.L1Ways = 2
	params.MaxSteps = 100_000_000
	m := machine.New(params)
	sys := hybridSys(m)
	wl := NewLabyrinth(32, 32, 5)
	wl.Init(m, 2)
	bodies := make([]func(*machine.Proc), 2)
	for i := 0; i < 2; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	if err := wl.Validate(m); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.SWCommits < st.HWCommits {
		t.Fatalf("stats = %v: labyrinth claims should mostly run in software", st)
	}
}

func TestLabyrinthOnSTM(t *testing.T) {
	runOn(t, NewLabyrinth(20, 20, 3), 2, stmSys)
}
