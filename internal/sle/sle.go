// Package sle implements speculative lock elision on top of BTM — the
// paper's point that its hardware-atomicity primitive is useful beyond
// transactional memory (§3.1, citing Rajwar/Goodman): lock-based
// critical sections execute as hardware transactions that merely *read*
// the lock word, so disjoint critical sections under the same lock run
// concurrently; on repeated aborts the lock is acquired for real.
package sle

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/tm"
)

// Mem is the accessor handed to critical-section bodies (identical shape
// to txlib.Mem, so the shared data structures work under elision too).
type Mem interface {
	Load(addr uint64) uint64
	Store(addr, val uint64)
}

// Manager owns the elidable locks of one machine.
type Manager struct {
	m *machine.Machine
	// MaxAttempts is how many elision attempts precede falling back to
	// real acquisition.
	MaxAttempts int
	// BackoffBase is the exponential backoff unit between attempts. Zero
	// selects cm.DefaultBase (64).
	BackoffBase uint64
	// SpinCycles is the poll interval when waiting for a held lock.
	SpinCycles uint64

	backoff cm.Spec
	cmgr    *cm.Manager
	stats   Stats
	locks   map[uint64]*lockState
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first critical section runs.
func (mgr *Manager) SetBackoffPolicy(spec cm.Spec) {
	mgr.backoff = spec
	mgr.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so MaxAttempts and
// BackoffBase tweaks after New still take effect).
func (mgr *Manager) CM() *cm.Manager {
	if mgr.cmgr == nil {
		mgr.cmgr = cm.NewManager(mgr.backoff, mgr.BackoffBase)
	}
	return mgr.cmgr
}

// Stats counts elision outcomes.
type Stats struct {
	Elided    uint64 // critical sections completed speculatively
	Acquired  uint64 // critical sections that fell back to the real lock
	Aborts    uint64 // speculative attempts that failed
	LockWaits uint64 // spins on a held lock
}

type lockState struct {
	addr   uint64
	held   bool
	holder int // processor holding (or last to hold) the lock, -1 if none
}

// New creates a manager.
func New(m *machine.Machine) *Manager {
	return &Manager{
		m:           m,
		MaxAttempts: 3,
		SpinCycles:  40,
		locks:       make(map[uint64]*lockState),
	}
}

// Stats returns the elision counters.
func (mgr *Manager) Stats() *Stats { return &mgr.stats }

// NewLock allocates an elidable lock (one simulated line).
func (mgr *Manager) NewLock() Lock {
	addr := mgr.m.Mem.Sbrk(64)
	mgr.locks[addr] = &lockState{addr: addr, holder: -1}
	return Lock{addr: addr}
}

// Lock names an elidable lock.
type Lock struct {
	addr uint64
}

// Exec is the per-processor elision context.
type Exec struct {
	mgr *Manager
	u   *btm.Unit
	p   *machine.Proc

	// seq numbers this context's critical sections; combined with the
	// processor ID it identifies one to the contention manager.
	seq uint64
}

// Exec returns the context for one processor.
func (mgr *Manager) Exec(p *machine.Proc) *Exec {
	return &Exec{mgr: mgr, u: btm.New(p), p: p}
}

// Critical runs body under l, speculatively when possible. The body
// accesses shared data only through the provided accessor and must be
// safe to re-execute (attempts can abort).
func (e *Exec) Critical(l Lock, body func(Mem)) {
	e.p.BeginOrdered(l.addr)
	defer e.p.EndOrdered()
	st := e.mgr.locks[l.addr]
	cmgr := e.mgr.CM()
	id := uint64(e.p.ID())<<32 | e.seq
	e.seq++
	e.p.TxLifeBegin()
	for attempt := 0; attempt < e.mgr.MaxAttempts; attempt++ {
		e.p.TxLifeAttempt(machine.PathHTM)
		ok, reason := e.tryElide(st, body)
		if ok {
			e.mgr.stats.Elided++
			e.p.TxLifeCommit(machine.PathHTM)
			cmgr.TxDone(id)
			return
		}
		e.mgr.stats.Aborts++
		e.p.TxLifeAbort(machine.PathHTM, reason)
		// attempt is 0-based here (the first failed elision backs off by
		// one Base unit), matching the original loop; the policy clamps
		// the shift, which the original `Base << attempt` did not — any
		// MaxAttempts > 57 used to overflow the uint64 into zero-or-absurd
		// delays.
		if cmgr.OnAbort(e.p, id, attempt, reason) != cm.EscalateNone {
			// Starving per the policy: stop speculating now and take the
			// real lock below.
			break
		}
	}
	// Fall back: take the lock for real. The write to the lock word
	// aborts every concurrent elider (their speculative read of the word
	// conflicts), which is exactly SLE's correctness argument.
	e.p.TxLifeAttempt(machine.PathFallback)
	e.acquire(st)
	func() {
		defer e.release(st)
		body(direct{e.p})
	}()
	e.mgr.stats.Acquired++
	e.p.TxLifeCommit(machine.PathFallback)
	cmgr.TxDone(id)
}

// tryElide attempts the critical section as a hardware transaction,
// reporting the abort reason on failure.
func (e *Exec) tryElide(st *lockState, body func(Mem)) (bool, machine.AbortReason) {
	e.u.Begin(e.mgr.m.NextAge())
	reason, _, aborted := tm.Catch(func() {
		// Speculatively read the lock word: it must be free, and it
		// joins the read set so a real acquisition kills this attempt.
		v, out := e.u.Load(st.addr)
		if out.Kind == machine.HWAborted {
			tm.Unwind(out.Reason)
		}
		check(out)
		if v != 0 {
			// The lock holder is the party this failed elision conflicts
			// with; attribute the abort edge accordingly.
			e.u.AbortAttributed(machine.AbortExplicit, st.holder, st.addr)
			tm.Unwind(machine.AbortExplicit)
		}
		body(speculative{e})
	})
	if aborted {
		return false, reason
	}
	out := e.u.End()
	if out.Kind == machine.OK {
		return true, machine.AbortNone
	}
	return false, out.Reason
}

func (e *Exec) acquire(st *lockState) {
	for {
		_, out := e.p.NTRead(st.addr)
		check(out)
		if !st.held {
			st.held = true
			st.holder = e.p.ID()
			check(e.p.NTWrite(st.addr, 1))
			return
		}
		e.mgr.stats.LockWaits++
		e.p.Elapse(e.mgr.SpinCycles)
	}
}

func (e *Exec) release(st *lockState) {
	st.held = false
	check(e.p.NTWrite(st.addr, 0))
}

// speculative routes body accesses through the hardware transaction.
type speculative struct{ e *Exec }

func (s speculative) Load(addr uint64) uint64 {
	v, out := s.e.u.Load(addr)
	if out.Kind == machine.HWAborted {
		tm.Unwind(out.Reason)
	}
	check(out)
	return v
}

func (s speculative) Store(addr, val uint64) {
	out := s.e.u.Store(addr, val)
	if out.Kind == machine.HWAborted {
		tm.Unwind(out.Reason)
	}
	check(out)
}

// direct routes body accesses straight to memory (lock held).
type direct struct{ p *machine.Proc }

func (d direct) Load(addr uint64) uint64 {
	v, out := d.p.NTRead(addr)
	check(out)
	return v
}

func (d direct) Store(addr, val uint64) {
	check(d.p.NTWrite(addr, val))
}

func check(out machine.Outcome) {
	if out.Kind != machine.OK {
		panic("sle: unexpected outcome " + out.Kind.String())
	}
}
