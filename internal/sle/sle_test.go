package sle

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/machine"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 20_000_000
	return machine.New(p)
}

func TestDisjointCriticalSectionsRunConcurrently(t *testing.T) {
	// Four threads, one lock, disjoint data: with elision the lock never
	// serializes them, so the elapsed time is far below 4× the serial
	// critical-section time.
	m := testMachine(4)
	mgr := New(m)
	l := mgr.NewLock()
	base := m.Mem.Sbrk(4 * 64)
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		e := mgr.Exec(m.Proc(i))
		mine := base + uint64(i)*64
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 25; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(mine, mem.Load(mine)+1)
					p.Elapse(200)
				})
			}
		})
	}
	m.Run(ws)
	for i := uint64(0); i < 4; i++ {
		if got := m.Mem.Read64(base + i*64); got != 25 {
			t.Fatalf("slot %d = %d, want 25", i, got)
		}
	}
	st := mgr.Stats()
	if st.Elided != 100 || st.Acquired != 0 {
		t.Fatalf("stats = %+v: disjoint sections must all elide", st)
	}
	// 100 sections of ≥200 cycles serialized would exceed 20k cycles;
	// concurrent execution should be well under half that.
	if m.Cycles() > 12_000 {
		t.Fatalf("elapsed %d cycles: elision did not overlap the sections", m.Cycles())
	}
}

func TestConflictingSectionsStayCorrect(t *testing.T) {
	m := testMachine(4)
	mgr := New(m)
	l := mgr.NewLock()
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		e := mgr.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 25; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(0, mem.Load(0)+1)
				})
				p.Elapse(uint64(10 + p.Rand().Intn(60)))
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestFallbackAcquiresLock(t *testing.T) {
	// A persistently conflicting pair with zero backoff room forces at
	// least some sections to the real lock; the counter must stay exact.
	m := testMachine(2)
	mgr := New(m)
	mgr.MaxAttempts = 1 // fall back after a single failed attempt
	l := mgr.NewLock()
	var ws []func(*machine.Proc)
	for i := 0; i < 2; i++ {
		e := mgr.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 30; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(0, mem.Load(0)+1)
					p.Elapse(150) // widen the conflict window
				})
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
	if mgr.Stats().Acquired == 0 {
		t.Fatal("expected some real acquisitions under persistent conflict")
	}
}

func TestLargeMaxAttemptsDelaysStayCapped(t *testing.T) {
	// Regression for the backoff shift overflow: the loop used to back
	// off by `Base << attempt`, so MaxAttempts = 80 shifted a uint64 by
	// up to 79 bits — wrapping to zero-or-absurd delays. The policy now
	// clamps the exponent (min(attempt, 7)); 80 failed elisions must
	// terminate promptly with every delay ≤ Base<<7 + jitter.
	m := testMachine(1)
	mgr := New(m)
	mgr.MaxAttempts = 80
	l := mgr.NewLock()
	// Set the lock word nonzero without marking it held: every elision
	// attempt sees a "taken" lock and aborts, but the final fallback can
	// still acquire for real.
	m.Mem.Write64(l.addr, 1)
	e := mgr.Exec(m.Proc(0))
	slot := m.Mem.Sbrk(64)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		e.Critical(l, func(mem Mem) {
			mem.Store(slot, mem.Load(slot)+1)
		})
	}})
	if got := m.Mem.Read64(slot); got != 1 {
		t.Fatalf("slot = %d, want 1", got)
	}
	st := mgr.Stats()
	if st.Aborts != 80 || st.Acquired != 1 {
		t.Fatalf("stats = %+v: want 80 failed elisions then one real acquisition", st)
	}
	cs := mgr.CM().Stats()
	if cs.Delays != 80 {
		t.Fatalf("delays = %d, want 80 (one per failed attempt)", cs.Delays)
	}
	if max := cm.DefaultBase<<cm.DefaultMaxShift + cm.DefaultBase - 1; cs.MaxDelay > max {
		t.Fatalf("max delay %d exceeds the capped schedule's bound %d", cs.MaxDelay, max)
	}
	// 80 capped delays sum well under 80 * (64<<7 + 63) ≈ 666k cycles;
	// an overflowing shift would either stall forever or finish with a
	// huge wrapped Elapse.
	if m.Cycles() > 1_000_000 {
		t.Fatalf("elapsed %d cycles: delays not capped", m.Cycles())
	}
}

func TestRealAcquisitionAbortsEliders(t *testing.T) {
	m := testMachine(2)
	mgr := New(m)
	l := mgr.NewLock()
	st := mgr.locks[l.addr]
	var sawLockHeld bool
	e0 := mgr.Exec(m.Proc(0))
	e1 := mgr.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			e0.Critical(l, func(mem Mem) {
				mem.Store(0, 1)
				p.Elapse(5_000) // long speculative section
			})
		},
		func(p *machine.Proc) {
			p.Elapse(500)
			// Take the lock for real mid-speculation.
			e1.acquire(st)
			sawLockHeld = true
			p.Elapse(1_000)
			e1.release(st)
		},
	})
	if !sawLockHeld {
		t.Fatal("locker never ran")
	}
	if mgr.Stats().Aborts == 0 {
		t.Fatal("real acquisition must abort the concurrent elider")
	}
	if m.Mem.Read64(0) != 1 {
		t.Fatal("critical section lost")
	}
}
