package sle

import (
	"testing"

	"repro/internal/machine"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 20_000_000
	return machine.New(p)
}

func TestDisjointCriticalSectionsRunConcurrently(t *testing.T) {
	// Four threads, one lock, disjoint data: with elision the lock never
	// serializes them, so the elapsed time is far below 4× the serial
	// critical-section time.
	m := testMachine(4)
	mgr := New(m)
	l := mgr.NewLock()
	base := m.Mem.Sbrk(4 * 64)
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		e := mgr.Exec(m.Proc(i))
		mine := base + uint64(i)*64
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 25; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(mine, mem.Load(mine)+1)
					p.Elapse(200)
				})
			}
		})
	}
	m.Run(ws)
	for i := uint64(0); i < 4; i++ {
		if got := m.Mem.Read64(base + i*64); got != 25 {
			t.Fatalf("slot %d = %d, want 25", i, got)
		}
	}
	st := mgr.Stats()
	if st.Elided != 100 || st.Acquired != 0 {
		t.Fatalf("stats = %+v: disjoint sections must all elide", st)
	}
	// 100 sections of ≥200 cycles serialized would exceed 20k cycles;
	// concurrent execution should be well under half that.
	if m.Cycles() > 12_000 {
		t.Fatalf("elapsed %d cycles: elision did not overlap the sections", m.Cycles())
	}
}

func TestConflictingSectionsStayCorrect(t *testing.T) {
	m := testMachine(4)
	mgr := New(m)
	l := mgr.NewLock()
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		e := mgr.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 25; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(0, mem.Load(0)+1)
				})
				p.Elapse(uint64(10 + p.Rand().Intn(60)))
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestFallbackAcquiresLock(t *testing.T) {
	// A persistently conflicting pair with zero backoff room forces at
	// least some sections to the real lock; the counter must stay exact.
	m := testMachine(2)
	mgr := New(m)
	mgr.MaxAttempts = 1 // fall back after a single failed attempt
	l := mgr.NewLock()
	var ws []func(*machine.Proc)
	for i := 0; i < 2; i++ {
		e := mgr.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 30; n++ {
				e.Critical(l, func(mem Mem) {
					mem.Store(0, mem.Load(0)+1)
					p.Elapse(150) // widen the conflict window
				})
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
	if mgr.Stats().Acquired == 0 {
		t.Fatal("expected some real acquisitions under persistent conflict")
	}
}

func TestRealAcquisitionAbortsEliders(t *testing.T) {
	m := testMachine(2)
	mgr := New(m)
	l := mgr.NewLock()
	st := mgr.locks[l.addr]
	var sawLockHeld bool
	e0 := mgr.Exec(m.Proc(0))
	e1 := mgr.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			e0.Critical(l, func(mem Mem) {
				mem.Store(0, 1)
				p.Elapse(5_000) // long speculative section
			})
		},
		func(p *machine.Proc) {
			p.Elapse(500)
			// Take the lock for real mid-speculation.
			e1.acquire(st)
			sawLockHeld = true
			p.Elapse(1_000)
			e1.release(st)
		},
	})
	if !sawLockHeld {
		t.Fatal("locker never ran")
	}
	if mgr.Stats().Aborts == 0 {
		t.Fatal("real acquisition must abort the concurrent elider")
	}
	if m.Mem.Read64(0) != 1 {
		t.Fatal("critical section lost")
	}
}
