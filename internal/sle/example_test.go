package sle_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sle"
)

// Example elides a lock around two disjoint critical sections: both run
// speculatively and neither serializes on the lock.
func Example() {
	m := machine.New(machine.DefaultParams(2))
	mgr := sle.New(m)
	l := mgr.NewLock()
	base := m.Mem.Sbrk(2 * 64)

	e0, e1 := mgr.Exec(m.Proc(0)), mgr.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			e0.Critical(l, func(mem sle.Mem) { mem.Store(base, 1) })
		},
		func(p *machine.Proc) {
			e1.Critical(l, func(mem sle.Mem) { mem.Store(base+64, 2) })
		},
	})
	st := mgr.Stats()
	fmt.Printf("elided=%d acquired=%d\n", st.Elided, st.Acquired)
	// Output: elided=2 acquired=0
}
