package tmtest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryInternalPackageCitesPaperSection enforces the documentation
// contract: every package under internal/ carries a package doc comment
// that cites the paper section it implements ("§" notation), so a reader
// can always navigate from code to the paper and back.
func TestEveryInternalPackageCitesPaperSection(t *testing.T) {
	internalDir := filepath.Join("..", "..", "internal")
	entries, err := os.ReadDir(internalDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(internalDir, e.Name())
		if e.Name() == "testdata" {
			continue
		}
		fset := token.NewFileSet()
		// ParseDir includes _test.go files, which matters: test-only
		// packages (internal/conformance) keep their doc comment in a
		// _test.go file.
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var doc string
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
		}
		switch {
		case doc == "":
			t.Errorf("internal/%s has no package doc comment", e.Name())
		case !strings.Contains(doc, "§"):
			t.Errorf("internal/%s package doc does not cite a paper section (want a \"§\" reference)", e.Name())
		}
	}
}
