package tmtest

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// determinismKeyword matches doc comments that state a determinism
// contract: either how the symbol participates in the deterministic
// schedule (ordered sections, (cycle, id) serialization, seeds, replay,
// bit-identical results) or why it does not need to (proc-local state,
// no shared state). The vocabulary is deliberately the one DESIGN.md §14
// uses, so godoc and the design document stay in the same language.
var determinismKeyword = regexp.MustCompile(
	`(?i)determinis|bit-identical|ordered|ordering|serializ|schedul|reproduc|replay|` +
		`same seed|seeded|program order|\(cycle|-local\b|local to |no shared`)

// contractTypes lists, per package directory, the receiver types whose
// exported methods (plus the types themselves and their constructors)
// must state their determinism contract: the API through which workloads
// and TM systems interact with the scheduler. Everything else in these
// packages still needs a doc comment, just not the contract keyword.
var contractTypes = map[string]map[string]bool{
	filepath.Join("..", "sim"):     {"Engine": true, "Proc": true, "Rand": true, "Config": true},
	filepath.Join("..", "machine"): {"Machine": true, "Proc": true, "Params": true},
}

// TestSchedulerAPIDocumentsDeterminismContract is the godoc audit gate
// for internal/sim and internal/machine: every exported symbol carries a
// doc comment, and the scheduler-facing surface (contractTypes, plus all
// top-level functions in internal/sim) states its determinism contract —
// needs an ordered section, is proc-local, is seeded, and so on. A new
// exported method with an undocumented contract fails CI here.
func TestSchedulerAPIDocumentsDeterminismContract(t *testing.T) {
	for dir, contract := range contractTypes {
		pkg := parsePackage(t, dir)
		short := filepath.Base(dir)

		check := func(kind, name, docText string, needContract bool) {
			docText = strings.TrimSpace(docText)
			switch {
			case docText == "":
				t.Errorf("internal/%s: exported %s %s has no doc comment", short, kind, name)
			case needContract && !determinismKeyword.MatchString(docText):
				t.Errorf("internal/%s: %s %s does not state its determinism contract "+
					"(say whether it needs an ordered section, is proc-local, seeded, ...)", short, kind, name)
			}
		}

		for _, v := range append(append([]*doc.Value{}, pkg.Consts...), pkg.Vars...) {
			check("const/var", strings.Join(v.Names, ","), valueDoc(v), short == "sim")
		}
		for _, f := range pkg.Funcs {
			check("func", f.Name, f.Doc, short == "sim")
		}
		for _, typ := range pkg.Types {
			needs := contract[typ.Name]
			check("type", typ.Name, typ.Doc, needs)
			for _, v := range append(append([]*doc.Value{}, typ.Consts...), typ.Vars...) {
				check("const/var", strings.Join(v.Names, ","), valueDoc(v), false)
			}
			for _, f := range typ.Funcs { // constructors
				check("func", f.Name, f.Doc, needs)
			}
			for _, m := range typ.Methods {
				// Stringers are pure formatting; no contract to state.
				check("method", typ.Name+"."+m.Name, m.Doc, needs && m.Name != "String")
			}
		}
	}
}

// valueDoc collects a const/var group's documentation: the group comment
// plus each member's own comment, so a group documented per-constant
// (idiomatic for enums) passes without a redundant group comment.
func valueDoc(v *doc.Value) string {
	parts := []string{v.Doc}
	for _, spec := range v.Decl.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok && vs.Doc != nil {
			parts = append(parts, vs.Doc.Text())
		}
	}
	return strings.TrimSpace(strings.Join(parts, " "))
}

// parsePackage loads the non-test files of one package with docs.
func parsePackage(t *testing.T, dir string) *doc.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		var files []*ast.File
		for _, f := range p.Files {
			files = append(files, f)
		}
		d, err := doc.NewFromFiles(fset, files, "repro/internal/"+filepath.Base(dir))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	t.Fatalf("no package found in %s", dir)
	return nil
}
