package tmtest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownRelativeLinksResolve checks every relative link in the
// repository's markdown files points at a file that exists, so the doc
// set (README, DESIGN, EXPERIMENTS, OBSERVABILITY, ...) can't silently
// rot as files move.
func TestMarkdownRelativeLinksResolve(t *testing.T) {
	root := filepath.Join("..", "..")
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, md)
				t.Errorf("%s: broken relative link %q", rel, m[1])
			}
		}
	}
}
