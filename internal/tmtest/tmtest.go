// Package tmtest provides black-box correctness tooling for TM systems:
// a recording wrapper that captures every committed transaction's reads
// and writes, and a serializability checker that searches for a serial
// order explaining the recorded history. Any TM implementation in this
// repository can be dropped under the recorder and fuzzed.
//
// Paper: §2 (the serializability and strong-atomicity semantics the
// checker enforces).
package tmtest

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tm"
)

// Access is one (address, value) observation.
type Access struct {
	Addr uint64
	Val  uint64
}

// TxRecord is one committed transaction: the values it observed for the
// addresses it read before writing them, and the final values it wrote.
type TxRecord struct {
	Proc   int
	Reads  []Access
	Writes []Access
}

// Recorder wraps a tm.System and captures the history of committed
// transactions. The simulation engine serializes processors, so no
// locking is needed.
type Recorder struct {
	inner   tm.System
	History []TxRecord
}

// NewRecorder wraps sys.
func NewRecorder(sys tm.System) *Recorder { return &Recorder{inner: sys} }

// Name implements tm.System.
func (r *Recorder) Name() string { return r.inner.Name() + "+recorded" }

// Stats implements tm.System.
func (r *Recorder) Stats() *tm.Stats { return r.inner.Stats() }

// Exec implements tm.System.
func (r *Recorder) Exec(p *machine.Proc) tm.Exec {
	return &recExec{r: r, inner: r.inner.Exec(p), proc: p.ID()}
}

type recExec struct {
	r     *Recorder
	inner tm.Exec
	proc  int

	// current attempt's observations (reset on each body invocation,
	// since aborted attempts re-execute).
	reads    map[uint64]uint64
	readIdx  []uint64
	writes   map[uint64]uint64
	writeIdx []uint64

	// closed-nesting savepoints over the observation state.
	nestSaves []recSave
	wUndo     []recWUndo
}

type recSave struct{ writeLen, undoLen int }

type recWUndo struct {
	addr    uint64
	hadPrev bool
	prev    uint64
}

var _ tm.Exec = (*recExec)(nil)

func (e *recExec) Proc() *machine.Proc  { return e.inner.Proc() }
func (e *recExec) Load(a uint64) uint64 { return e.inner.Load(a) }
func (e *recExec) Store(a, v uint64)    { e.inner.Store(a, v) }

// Atomic implements tm.Exec: the inner body is wrapped so that each
// (re-)execution starts a fresh observation set; the record of the final
// (committed) execution is appended after Atomic returns. No simulated
// time passes between the inner commit's completion and the append for
// systems whose Atomic returns without further scheduling points after
// commit; for eager STMs whose entry release yields, the checker's
// order search (rather than strict append order) absorbs the skew.
func (e *recExec) Atomic(body func(tm.Tx)) {
	p := e.inner.Proc()
	p.BeginOrdered(0)
	defer p.EndOrdered()
	e.inner.Atomic(func(tx tm.Tx) {
		e.reads = map[uint64]uint64{}
		e.readIdx = e.readIdx[:0]
		e.writes = map[uint64]uint64{}
		e.writeIdx = e.writeIdx[:0]
		e.nestSaves = e.nestSaves[:0]
		e.wUndo = e.wUndo[:0]
		body(recTx{e: e, inner: tx})
	})
	rec := TxRecord{Proc: e.proc}
	for _, a := range e.readIdx {
		rec.Reads = append(rec.Reads, Access{Addr: a, Val: e.reads[a]})
	}
	for _, a := range e.writeIdx {
		rec.Writes = append(rec.Writes, Access{Addr: a, Val: e.writes[a]})
	}
	e.r.History = append(e.r.History, rec)
}

type recTx struct {
	e     *recExec
	inner tm.Tx
}

var _ tm.Tx = recTx{}

func (t recTx) Load(addr uint64) uint64 {
	v := t.inner.Load(addr)
	e := t.e
	// Record only reads of values this transaction did not itself write,
	// and only the first such read per address (later reads of the same
	// address must return the same value under isolation anyway).
	if _, wrote := e.writes[addr]; !wrote {
		if _, seen := e.reads[addr]; !seen {
			e.reads[addr] = v
			e.readIdx = append(e.readIdx, addr)
		}
	}
	return v
}

func (t recTx) Store(addr, val uint64) {
	t.inner.Store(addr, val)
	e := t.e
	prev, seen := e.writes[addr]
	if !seen {
		e.writeIdx = append(e.writeIdx, addr)
	}
	if len(e.nestSaves) > 0 {
		e.wUndo = append(e.wUndo, recWUndo{addr: addr, hadPrev: seen, prev: prev})
	}
	e.writes[addr] = val
}

func (t recTx) Abort() { t.inner.Abort() }

// Nested records through the nest, keeping a savepoint over the write
// observations: a partial abort reverts recorded writes (the data never
// committed) while keeping recorded reads (the transaction really did
// observe those values).
func (t recTx) Nested(body func()) bool {
	e := t.e
	e.nestSaves = append(e.nestSaves, recSave{writeLen: len(e.writeIdx), undoLen: len(e.wUndo)})
	committed := t.inner.Nested(body)
	sv := e.nestSaves[len(e.nestSaves)-1]
	e.nestSaves = e.nestSaves[:len(e.nestSaves)-1]
	if !committed {
		for i := len(e.wUndo) - 1; i >= sv.undoLen; i-- {
			u := e.wUndo[i]
			if u.hadPrev {
				e.writes[u.addr] = u.prev
			} else {
				delete(e.writes, u.addr)
			}
		}
		e.writeIdx = e.writeIdx[:sv.writeLen]
		e.wUndo = e.wUndo[:sv.undoLen]
	}
	// On commit the nest's undo entries are kept: they now belong to the
	// enclosing nest, which may still abort past them.
	return committed
}
func (t recTx) Retry()            { t.inner.Retry() }
func (t recTx) Syscall()          { t.inner.Syscall() }
func (t recTx) OnCommit(f func()) { t.inner.OnCommit(f) }

// CheckSerializable searches for a serial order of the history that is
// consistent with every transaction's observed reads, starting from the
// given initial memory image (addresses absent from the map read as
// zero). It returns nil if such an order exists. The search is a
// depth-first backtracking over candidate next-transactions (those whose
// reads match the current replay state), biased toward history order; a
// step budget bounds pathological cases.
func CheckSerializable(history []TxRecord, initial map[uint64]uint64) error {
	state := make(map[uint64]uint64, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	used := make([]bool, len(history))
	steps := 0
	const maxSteps = 2_000_000
	var search func(done int) bool
	search = func(done int) bool {
		if done == len(history) {
			return true
		}
		for i, rec := range history {
			if used[i] {
				continue
			}
			steps++
			if steps > maxSteps {
				return false
			}
			if !readsMatch(rec, state) {
				continue
			}
			// Apply, recurse, undo.
			undo := make([]Access, 0, len(rec.Writes))
			for _, w := range rec.Writes {
				undo = append(undo, Access{Addr: w.Addr, Val: state[w.Addr]})
				state[w.Addr] = w.Val
			}
			used[i] = true
			if search(done + 1) {
				return true
			}
			used[i] = false
			for j := len(undo) - 1; j >= 0; j-- {
				state[undo[j].Addr] = undo[j].Val
			}
		}
		return false
	}
	if search(0) {
		return nil
	}
	if steps > maxSteps {
		return fmt.Errorf("tmtest: serializability search exceeded %d steps (inconclusive)", maxSteps)
	}
	return fmt.Errorf("tmtest: no serial order explains the %d-transaction history", len(history))
}

func readsMatch(rec TxRecord, state map[uint64]uint64) bool {
	for _, r := range rec.Reads {
		if state[r.Addr] != r.Val {
			return false
		}
	}
	return true
}
