package tmtest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hytm"
	"repro/internal/machine"
	"repro/internal/phtm"
	"repro/internal/seq"
	"repro/internal/tl2"
	"repro/internal/tm"
	"repro/internal/unbounded"
	"repro/internal/ustm"
)

// --- checker unit tests on crafted histories ---

func TestCheckerAcceptsSequentialHistory(t *testing.T) {
	h := []TxRecord{
		{Writes: []Access{{0, 1}}},
		{Reads: []Access{{0, 1}}, Writes: []Access{{0, 2}}},
		{Reads: []Access{{0, 2}}},
	}
	if err := CheckSerializable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerAcceptsReorderedHistory(t *testing.T) {
	// Appended out of serial order: tx reading 5 recorded before the tx
	// that wrote 5.
	h := []TxRecord{
		{Reads: []Access{{0, 5}}},
		{Writes: []Access{{0, 5}}},
	}
	if err := CheckSerializable(h, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerRejectsLostUpdate(t *testing.T) {
	// Two increments both read 0 and both wrote 1: no serial order.
	h := []TxRecord{
		{Reads: []Access{{0, 0}}, Writes: []Access{{0, 1}}},
		{Reads: []Access{{0, 0}}, Writes: []Access{{0, 1}}},
		{Reads: []Access{{0, 2}}}, // someone observed 2: contradiction
	}
	if err := CheckSerializable(h, nil); err == nil {
		t.Fatal("lost update not detected")
	}
}

func TestCheckerRejectsTornRead(t *testing.T) {
	// A transaction saw x=1,y=0 although x and y are only ever written
	// together.
	h := []TxRecord{
		{Writes: []Access{{0, 1}, {8, 1}}},
		{Reads: []Access{{0, 1}, {8, 0}}},
	}
	if err := CheckSerializable(h, nil); err == nil {
		t.Fatal("torn read not detected")
	}
}

func TestCheckerUsesInitialState(t *testing.T) {
	h := []TxRecord{{Reads: []Access{{0, 7}}}}
	if err := CheckSerializable(h, map[uint64]uint64{0: 7}); err != nil {
		t.Fatal(err)
	}
	if err := CheckSerializable(h, nil); err == nil {
		t.Fatal("initial state ignored")
	}
}

// --- recorded fuzzing across every TM system ---

func fuzzSystem(t *testing.T, name string, mk func(*machine.Machine) tm.System, seed uint64) {
	t.Helper()
	params := machine.DefaultParams(4)
	params.MemBytes = 1 << 22
	params.Quantum = 0
	params.MaxSteps = 30_000_000
	params.Seed = seed
	m := machine.New(params)
	rec := NewRecorder(mk(m))
	base := m.Mem.Sbrk(8 * 64)
	initial := map[uint64]uint64{}
	for i := uint64(0); i < 8; i++ {
		m.Mem.Write64(base+i*64, i*100)
		initial[base+i*64] = i * 100
	}
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		ex := rec.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			r := p.Rand()
			for n := 0; n < 15; n++ {
				a := base + uint64(r.Intn(8))*64
				b := base + uint64(r.Intn(8))*64
				kind := r.Intn(3)
				ex.Atomic(func(tx tm.Tx) {
					switch kind {
					case 0: // increment
						tx.Store(a, tx.Load(a)+1)
					case 1: // swap
						va, vb := tx.Load(a), tx.Load(b)
						tx.Store(a, vb)
						tx.Store(b, va)
					case 2: // read pair
						_ = tx.Load(a) + tx.Load(b)
					}
				})
				p.Elapse(uint64(10 + r.Intn(150)))
			}
		})
	}
	m.Run(ws)
	if got := len(rec.History); got != 60 {
		t.Fatalf("history has %d transactions, want 60", got)
	}
	if err := CheckSerializable(rec.History, initial); err != nil {
		t.Fatalf("%s (seed %d): %v", name, seed, err)
	}
}

func TestSerializabilityFuzzAllSystems(t *testing.T) {
	systems := map[string]func(*machine.Machine) tm.System{
		"ufo-hybrid": func(m *machine.Machine) tm.System {
			cfg := ustm.DefaultConfig()
			cfg.OTableRows = 1 << 12
			return core.New(m, cfg, core.DefaultPolicy())
		},
		"hytm": func(m *machine.Machine) tm.System {
			cfg := ustm.DefaultConfig()
			cfg.OTableRows = 1 << 12
			return hytm.New(m, cfg)
		},
		"phtm": func(m *machine.Machine) tm.System {
			cfg := ustm.DefaultConfig()
			cfg.OTableRows = 1 << 12
			return phtm.New(m, cfg)
		},
		"ustm+ufo": func(m *machine.Machine) tm.System {
			cfg := ustm.DefaultConfig()
			cfg.OTableRows = 1 << 12
			return ustm.New(m, cfg)
		},
		"tl2": func(m *machine.Machine) tm.System {
			return tl2.New(m, tl2.DefaultConfig())
		},
		"unbounded-htm": func(m *machine.Machine) tm.System {
			return unbounded.New(m)
		},
		"global-lock": func(m *machine.Machine) tm.System {
			return seq.New(m, seq.GlobalLock)
		},
	}
	for name, mk := range systems {
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				fuzzSystem(t, name, mk, seed)
			})
		}
	}
}

func TestRecorderCapturesReadYourWritesCorrectly(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 20
	m := machine.New(params)
	rec := NewRecorder(seq.New(m, seq.GlobalLock))
	ex := rec.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 9)
			_ = tx.Load(0) // own write: must NOT be recorded as a read
			_ = tx.Load(64)
			_ = tx.Load(64) // duplicate read: recorded once
		})
	}})
	if len(rec.History) != 1 {
		t.Fatalf("history = %d", len(rec.History))
	}
	r := rec.History[0]
	if len(r.Reads) != 1 || r.Reads[0].Addr != 64 {
		t.Fatalf("reads = %v", r.Reads)
	}
	if len(r.Writes) != 1 || r.Writes[0] != (Access{0, 9}) {
		t.Fatalf("writes = %v", r.Writes)
	}
}

func TestRecorderHandlesNestedAborts(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 20
	m := machine.New(params)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 10
	rec := NewRecorder(ustm.New(m, cfg))
	ex := rec.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 1)
			tx.Nested(func() {
				tx.Store(64, 2)
				tx.Abort() // nested write must vanish from the record
			})
			tx.Nested(func() {
				tx.Store(128, 3) // kept
			})
		})
	}})
	if len(rec.History) != 1 {
		t.Fatalf("history = %d", len(rec.History))
	}
	r := rec.History[0]
	got := map[uint64]uint64{}
	for _, w := range r.Writes {
		got[w.Addr] = w.Val
	}
	if len(got) != 2 || got[0] != 1 || got[128] != 3 {
		t.Fatalf("recorded writes = %v, want {0:1 128:3}", r.Writes)
	}
	if err := CheckSerializable(rec.History, nil); err != nil {
		t.Fatal(err)
	}
}
