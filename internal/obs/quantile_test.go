package obs

import (
	"math"
	"testing"
)

func histOf(values ...uint64) *HistSnapshot {
	var h Histogram
	for _, v := range values {
		h.Observe(v)
	}
	return h.Snapshot()
}

// TestQuantileUniform checks the estimator against the uniform
// distribution 1..100 (one observation each), whose exact percentiles
// are known: the power-of-two interpolation must land within one
// bucket's resolution of them.
func TestQuantileUniform(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Hand-computed from the bucket layout: rank 50 interpolates inside
	// [32,63] to 50.40625; ranks 90 and 99 inside [64,100].
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 32 + 19.0/32*31}, // 50.40625
		{0.90, 64 + 27.0/37*36}, // ≈90.27
		{0.99, 64 + 36.0/37*36}, // ≈99.03
		{1.00, 100},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if p50, p90, p99 := s.P50(), s.P90(), s.P99(); !(p50 <= p90 && p90 <= p99 && p99 <= float64(s.Max)) {
		t.Errorf("percentiles not monotone: p50=%v p90=%v p99=%v max=%d", p50, p90, p99, s.Max)
	}
	// The estimates track the true percentiles within a bucket width.
	if math.Abs(s.P50()-50) > 1 || math.Abs(s.P90()-90) > 1 || math.Abs(s.P99()-99) > 1 {
		t.Errorf("estimates drifted: p50=%v p90=%v p99=%v", s.P50(), s.P90(), s.P99())
	}
}

// TestQuantileZerosAndOnes: a 90/10 zero/one mix has exactly known
// percentiles (bucket 0 and bucket 1 are both single-valued).
func TestQuantileZerosAndOnes(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if got := s.P50(); got != 0 {
		t.Errorf("P50 = %v, want 0", got)
	}
	if got := s.P90(); got != 0 {
		t.Errorf("P90 = %v, want 0 (rank 90 is the last zero)", got)
	}
	if got := s.P99(); got != 1 {
		t.Errorf("P99 = %v, want 1", got)
	}
}

// TestQuantileSingleObservation: with one sample every quantile is that
// sample, exactly — the bucket top is clamped to Max.
func TestQuantileSingleObservation(t *testing.T) {
	s := histOf(1000)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got != 1000 {
			t.Errorf("Quantile(%v) = %v, want 1000", q, got)
		}
	}
}

// TestQuantileConstant: repeated identical samples stay inside the
// sample's bucket, and never exceed Max.
func TestQuantileConstant(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(7)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		if got < 4 || got > 7 {
			t.Errorf("Quantile(%v) = %v, want within bucket [4,7]", q, got)
		}
	}
	if s.Quantile(1) > float64(s.Max) {
		t.Errorf("Quantile(1) = %v exceeds max %d", s.Quantile(1), s.Max)
	}
}

// TestQuantileEmptyAndNil: degenerate snapshots report 0 rather than
// panicking (renderers call these unconditionally).
func TestQuantileEmptyAndNil(t *testing.T) {
	var nilSnap *HistSnapshot
	if got := nilSnap.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v", got)
	}
	if got := histOf().P99(); got != 0 {
		t.Errorf("empty P99 = %v", got)
	}
}

// TestQuantileWideRange: the wide (2^32) histogram keeps resolution for
// cycle-scale values that the default range clamps into its last bucket.
func TestQuantileWideRange(t *testing.T) {
	wide := NewWideHistogram()
	var narrow Histogram
	for _, v := range []uint64{1 << 17, 1 << 20, 1 << 24, 1 << 28, 1 << 31} {
		wide.Observe(v)
		narrow.Observe(v)
	}
	ws, ns := wide.Snapshot(), narrow.Snapshot()
	if len(ns.Buckets) != DefaultHistBuckets {
		t.Fatalf("narrow buckets = %d, want clamped at %d", len(ns.Buckets), DefaultHistBuckets)
	}
	if ns.Buckets[DefaultHistBuckets-1] != 5 {
		t.Fatalf("narrow histogram should clamp all 5 samples into the last bucket: %v", ns.Buckets)
	}
	if len(ws.Buckets) != 33 {
		t.Fatalf("wide buckets trimmed to %d, want 33 (2^31 has bit length 32)", len(ws.Buckets))
	}
	// Each sample lands in its own bucket, so the median is interpolated
	// inside [2^24, 2^25-1] (the bucket holding the 2^24 sample) — a
	// range the narrow histogram cannot see.
	if got := ws.P50(); got < 1<<24 || got > 1<<25 {
		t.Errorf("wide P50 = %v, want within [2^24, 2^25]", got)
	}
	if got := ws.Quantile(1); got != float64(uint64(1)<<31) {
		t.Errorf("wide Quantile(1) = %v, want 2^31", got)
	}
}

// TestQuantileP999: the 99.9th percentile separates a 1-in-1000 tail
// that P99 misses, given the wide bucket range.
func TestQuantileP999(t *testing.T) {
	h := NewWideHistogram()
	for i := 0; i < 995; i++ {
		h.Observe(100)
	}
	for i := 0; i < 5; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snapshot()
	if p99 := s.P99(); p99 > 128 {
		t.Errorf("P99 = %v, want inside the body bucket", p99)
	}
	if p999 := s.P999(); p999 < 1<<19 {
		t.Errorf("P999 = %v, want inside the tail bucket (>= 2^19)", p999)
	}
	if got := s.P999(); got > float64(s.Max) {
		t.Errorf("P999 = %v exceeds max %d", got, s.Max)
	}
}
