// Package obs is the observability substrate of the reproduction: a
// registry of named, typed metrics (counters, gauges, power-of-two
// histograms) that the machine, the TM systems, and the harness all
// register their event counts into, snapshotable to a stable,
// deterministic JSON schema (documented in OBSERVABILITY.md). Every
// number in the paper's evaluation — commits by mode, abort reasons,
// failovers, UFO faults, footprints — flows through here, so a sweep's
// results can be archived, diffed, and re-plotted without rerunning the
// simulator.
//
// Determinism is a design requirement, not an accident: snapshots order
// metrics by name, JSON encoding has a fixed field order, and merging is
// commutative over counter sums and histogram bucket sums, so the
// aggregate of a parallel sweep is byte-identical for every worker count.
//
// Paper: §5 (the evaluation's measurement infrastructure; Figures 5–8).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the snapshot JSON schema. Consumers should
// reject snapshots with an unknown schema string.
const SchemaVersion = "tmsim-metrics/v1"

// MetricType enumerates the metric kinds.
type MetricType string

// The metric kinds.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v uint64
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// GaugeMerge selects how a gauge combines across snapshots in
// Snapshot.Add. The zero value is MergeSum.
type GaugeMerge string

// The gauge merge rules. Each registered gauge picks one explicitly
// (Registry.Gauge registers sum-merged gauges, Registry.MaxGauge
// max-merged ones); OBSERVABILITY.md documents the rule per metric.
const (
	// MergeSum: values add across cells (extensive quantities).
	MergeSum GaugeMerge = ""
	// MergeMax: the aggregate keeps the largest cell value (peaks,
	// high-water marks). Encoded as "merge":"max" in snapshot JSON.
	MergeMax GaugeMerge = "max"
)

// Gauge is a point-in-time float64 metric. Every gauge declares its
// aggregation rule at registration: sum-merged gauges (Registry.Gauge)
// add across sweep cells like counters and so must hold extensive
// quantities; max-merged gauges (Registry.MaxGauge) keep the largest
// cell value and so suit peaks and high-water marks. Ratios belong to
// the consumer.
type Gauge struct {
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// DefaultHistBuckets covers observations 1 .. 2^16 in power-of-two
// buckets, mirroring machine.Hist so footprint histograms import
// losslessly.
const DefaultHistBuckets = 17

// WideHistBuckets covers observations 1 .. 2^32: the variant for
// cycle-scale values (transaction latencies), where the default range
// would clamp everything above ~65k cycles into one bucket.
const WideHistBuckets = 33

// Histogram is a power-of-two histogram: bucket i counts observations in
// (2^(i-1), 2^i]; bucket 0 counts zero observations. The zero value is a
// ready-to-use histogram with the default bucket range; NewWideHistogram
// (or Registry.WideHistogram) widens the range to 2^32.
type Histogram struct {
	count   uint64
	sum     uint64
	max     uint64
	width   int // 0 means DefaultHistBuckets, keeping the zero value usable
	buckets []uint64
}

// NewWideHistogram returns a histogram whose buckets cover 1 .. 2^32
// (WideHistBuckets) instead of the default 2^16 range.
func NewWideHistogram() *Histogram {
	return &Histogram{width: WideHistBuckets}
}

// Width returns the histogram's bucket count.
func (h *Histogram) Width() int {
	if h.width == 0 {
		return DefaultHistBuckets
	}
	return h.width
}

// grow lazily allocates the bucket slice (so zero-value Histograms work).
func (h *Histogram) grow() {
	if h.buckets == nil {
		h.buckets = make([]uint64, h.Width())
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.grow()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := 0
	for x := v; x > 0; x >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

// Import adds pre-aggregated histogram state (count, sum, max, and
// per-bucket counts) into h. Buckets beyond h's range accumulate into the
// last bucket. This is how machine.Hist instances register losslessly.
func (h *Histogram) Import(count, sum, max uint64, buckets []uint64) {
	h.grow()
	h.count += count
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	for i, n := range buckets {
		if i >= len(h.buckets) {
			h.buckets[len(h.buckets)-1] += n
			continue
		}
		h.buckets[i] += n
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// metric is one registered entry.
type metric struct {
	name  string
	typ   MetricType
	unit  string
	help  string
	merge GaugeMerge // gauges only

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry holds named metrics. It is not safe for concurrent use: the
// simulation engine serializes processors within a run, and parallel
// sweeps give every cell its own registry (merged afterwards in job
// order), so no locking is needed anywhere.
type Registry struct {
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name string, typ MetricType) *metric {
	if m, ok := r.byName[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, m.typ, typ))
		}
		return m
	}
	m := &metric{name: name, typ: typ}
	r.byName[name] = m
	return m
}

// Counter registers (or returns the existing) counter under name. unit
// and help document the metric; they are recorded on first registration.
func (r *Registry) Counter(name, unit, help string) *Counter {
	m := r.lookup(name, TypeCounter)
	if m.c == nil {
		m.c, m.unit, m.help = &Counter{}, unit, help
	}
	return m.c
}

// Gauge registers (or returns the existing) gauge under name, merging
// by summation across snapshots (MergeSum).
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	m := r.lookup(name, TypeGauge)
	if m.g == nil {
		m.g, m.unit, m.help = &Gauge{}, unit, help
	}
	return m.g
}

// MaxGauge registers (or returns the existing) gauge under name, merging
// by maximum across snapshots (MergeMax) — for peaks and high-water
// marks, where summing cells would fabricate a value no run observed.
func (r *Registry) MaxGauge(name, unit, help string) *Gauge {
	m := r.lookup(name, TypeGauge)
	if m.g == nil {
		m.g, m.unit, m.help, m.merge = &Gauge{}, unit, help, MergeMax
	}
	return m.g
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name, unit, help string) *Histogram {
	m := r.lookup(name, TypeHistogram)
	if m.h == nil {
		m.h, m.unit, m.help = &Histogram{}, unit, help
	}
	return m.h
}

// WideHistogram registers (or returns the existing) histogram under
// name with the wide 2^32 bucket range (WideHistBuckets) — for
// cycle-scale values such as transaction latencies.
func (r *Registry) WideHistogram(name, unit, help string) *Histogram {
	m := r.lookup(name, TypeHistogram)
	if m.h == nil {
		m.h, m.unit, m.help = NewWideHistogram(), unit, help
	}
	return m.h
}

// Snapshot freezes the histogram's state (trailing zero buckets trimmed),
// matching the per-metric representation Registry.Snapshot produces.
func (h *Histogram) Snapshot() *HistSnapshot {
	hs := &HistSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	end := len(h.buckets)
	for end > 0 && h.buckets[end-1] == 0 {
		end--
	}
	hs.Buckets = append([]uint64(nil), h.buckets[:end]...)
	return hs
}

// HistSnapshot is the frozen state of a histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets"` // trailing zero buckets trimmed
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations from
// the power-of-two buckets: it locates the bucket containing the rank
// ceil(q*count) and interpolates linearly across the bucket's value range
// [2^(i-1), 2^i - 1] (bucket 0 holds exactly the zero observations). The
// top of the last populated bucket is clamped to the recorded maximum, so
// high quantiles never exceed an observed value. The estimate is exact to
// within one bucket width, which is what a power-of-two histogram can
// promise.
func (h *HistSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	last := len(h.Buckets) - 1
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == last {
			var lo, hi float64
			if i > 0 {
				lo = float64(uint64(1) << (i - 1))
				hi = float64(uint64(1)<<i - 1)
			}
			if m := float64(h.Max); hi > m {
				hi = m
			}
			if hi < lo {
				hi = lo
			}
			return lo + (rank-cum)/float64(n)*(hi-lo)
		}
		cum = next
	}
	return float64(h.Max)
}

// P50 estimates the median.
func (h *HistSnapshot) P50() float64 { return h.Quantile(0.50) }

// P90 estimates the 90th percentile.
func (h *HistSnapshot) P90() float64 { return h.Quantile(0.90) }

// P99 estimates the 99th percentile.
func (h *HistSnapshot) P99() float64 { return h.Quantile(0.99) }

// P999 estimates the 99.9th percentile (tail latencies need the wide
// histogram range to be meaningful above ~65k cycles).
func (h *HistSnapshot) P999() float64 { return h.Quantile(0.999) }

// Metric is one frozen metric in a snapshot.
type Metric struct {
	Name  string
	Type  MetricType
	Unit  string
	Help  string
	Merge GaugeMerge // gauges only; MergeSum encodes as absent

	Value  uint64        // counter value
	FValue float64       // gauge value
	Hist   *HistSnapshot // histogram state
}

// MarshalJSON encodes the metric with a fixed field order and only the
// value field matching its type, keeping the schema stable and the bytes
// deterministic.
func (m Metric) MarshalJSON() ([]byte, error) {
	buf := []byte(`{"name":`)
	buf = strconv.AppendQuote(buf, m.Name)
	buf = append(buf, `,"type":`...)
	buf = strconv.AppendQuote(buf, string(m.Type))
	if m.Unit != "" {
		buf = append(buf, `,"unit":`...)
		buf = strconv.AppendQuote(buf, m.Unit)
	}
	if m.Help != "" {
		buf = append(buf, `,"help":`...)
		buf = strconv.AppendQuote(buf, m.Help)
	}
	if m.Merge != MergeSum {
		buf = append(buf, `,"merge":`...)
		buf = strconv.AppendQuote(buf, string(m.Merge))
	}
	switch m.Type {
	case TypeCounter:
		buf = append(buf, `,"value":`...)
		buf = strconv.AppendUint(buf, m.Value, 10)
	case TypeGauge:
		buf = append(buf, `,"value":`...)
		b, err := json.Marshal(m.FValue)
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	case TypeHistogram:
		buf = append(buf, `,"count":`...)
		buf = strconv.AppendUint(buf, m.Hist.Count, 10)
		buf = append(buf, `,"sum":`...)
		buf = strconv.AppendUint(buf, m.Hist.Sum, 10)
		buf = append(buf, `,"max":`...)
		buf = strconv.AppendUint(buf, m.Hist.Max, 10)
		buf = append(buf, `,"buckets":[`...)
		for i, n := range m.Hist.Buckets {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendUint(buf, n, 10)
		}
		buf = append(buf, ']')
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON decodes a metric (the inverse of MarshalJSON), so
// archived snapshots can be re-read for offline analysis.
func (m *Metric) UnmarshalJSON(data []byte) error {
	var raw struct {
		Name    string          `json:"name"`
		Type    MetricType      `json:"type"`
		Unit    string          `json:"unit"`
		Help    string          `json:"help"`
		Merge   GaugeMerge      `json:"merge"`
		Value   json.RawMessage `json:"value"`
		Count   uint64          `json:"count"`
		Sum     uint64          `json:"sum"`
		Max     uint64          `json:"max"`
		Buckets []uint64        `json:"buckets"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	m.Name, m.Type, m.Unit, m.Help, m.Merge = raw.Name, raw.Type, raw.Unit, raw.Help, raw.Merge
	switch raw.Type {
	case TypeCounter:
		if raw.Value != nil {
			if err := json.Unmarshal(raw.Value, &m.Value); err != nil {
				return err
			}
		}
	case TypeGauge:
		if raw.Value != nil {
			if err := json.Unmarshal(raw.Value, &m.FValue); err != nil {
				return err
			}
		}
	case TypeHistogram:
		m.Hist = &HistSnapshot{Count: raw.Count, Sum: raw.Sum, Max: raw.Max, Buckets: raw.Buckets}
	default:
		return fmt.Errorf("obs: unknown metric type %q", raw.Type)
	}
	return nil
}

// Snapshot is a frozen, name-ordered view of a registry.
type Snapshot struct {
	Schema  string   `json:"schema"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot freezes the registry. Metrics are ordered by name, so two
// registries with the same contents produce byte-identical encodings.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Schema: SchemaVersion}
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.byName[name]
		out := Metric{Name: m.name, Type: m.typ, Unit: m.unit, Help: m.help, Merge: m.merge}
		switch m.typ {
		case TypeCounter:
			out.Value = m.c.v
		case TypeGauge:
			out.FValue = m.g.v
		case TypeHistogram:
			hs := &HistSnapshot{Count: m.h.count, Sum: m.h.sum, Max: m.h.max}
			end := len(m.h.buckets)
			for end > 0 && m.h.buckets[end-1] == 0 {
				end--
			}
			hs.Buckets = append([]uint64(nil), m.h.buckets[:end]...)
			out.Hist = hs
		}
		s.Metrics = append(s.Metrics, out)
	}
	return s
}

// Get returns the metric with the given name, or nil.
func (s *Snapshot) Get(name string) *Metric {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Counter returns the named counter's value, or 0 when the metric is
// absent — convenient for report tables over heterogeneous cells.
func (s *Snapshot) Counter(name string) uint64 {
	if m := s.Get(name); m != nil {
		return m.Value
	}
	return 0
}

// Add merges other into s: counters sum, gauges follow their declared
// merge rule (MergeSum adds, MergeMax keeps the larger value),
// histograms merge bucket-wise, and metrics present in only one side
// carry over. The two sides must agree on the type of any shared name.
func (s *Snapshot) Add(other *Snapshot) {
	byName := make(map[string]int, len(s.Metrics))
	for i := range s.Metrics {
		byName[s.Metrics[i].Name] = i
	}
	for _, om := range other.Metrics {
		i, ok := byName[om.Name]
		if !ok {
			c := om
			if om.Hist != nil {
				h := *om.Hist
				h.Buckets = append([]uint64(nil), om.Hist.Buckets...)
				c.Hist = &h
			}
			s.Metrics = append(s.Metrics, c)
			continue
		}
		m := &s.Metrics[i]
		if m.Type != om.Type {
			panic(fmt.Sprintf("obs: merging metric %q: %s vs %s", om.Name, m.Type, om.Type))
		}
		switch m.Type {
		case TypeCounter:
			m.Value += om.Value
		case TypeGauge:
			if m.Merge == MergeMax {
				if om.FValue > m.FValue {
					m.FValue = om.FValue
				}
			} else {
				m.FValue += om.FValue
			}
		case TypeHistogram:
			m.Hist.Count += om.Hist.Count
			m.Hist.Sum += om.Hist.Sum
			if om.Hist.Max > m.Hist.Max {
				m.Hist.Max = om.Hist.Max
			}
			for len(m.Hist.Buckets) < len(om.Hist.Buckets) {
				m.Hist.Buckets = append(m.Hist.Buckets, 0)
			}
			for j, n := range om.Hist.Buckets {
				m.Hist.Buckets[j] += n
			}
		}
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
}

// String renders the snapshot compactly and deterministically
// ("name=value ..."), so harness results containing snapshots render by
// value (not pointer address) under %v/%+v and can be compared as
// strings in determinism regressions.
func (s *Snapshot) String() string {
	var sb strings.Builder
	sb.WriteString(s.Schema)
	for _, m := range s.Metrics {
		sb.WriteByte(' ')
		sb.WriteString(m.Name)
		sb.WriteByte('=')
		switch m.Type {
		case TypeCounter:
			sb.WriteString(strconv.FormatUint(m.Value, 10))
		case TypeGauge:
			sb.WriteString(strconv.FormatFloat(m.FValue, 'g', -1, 64))
		case TypeHistogram:
			fmt.Fprintf(&sb, "hist(n=%d,sum=%d,max=%d)", m.Hist.Count, m.Hist.Sum, m.Hist.Max)
		}
	}
	return sb.String()
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
