package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count", "events", "help text")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("a.gauge", "cycles", "")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("a.hist", "lines", "")
	for _, v := range []uint64{0, 1, 2, 3, 8, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d", h.Count())
	}

	// Re-registration returns the same instance.
	if r.Counter("a.count", "", "") != c {
		t.Fatal("re-registered counter is a different instance")
	}

	s := r.Snapshot()
	if s.Schema != SchemaVersion {
		t.Fatalf("schema = %q", s.Schema)
	}
	if got := s.Get("a.count"); got == nil || got.Value != 4 || got.Unit != "events" {
		t.Fatalf("snapshot counter = %+v", got)
	}
	hs := s.Get("a.hist")
	if hs == nil || hs.Hist.Count != 6 || hs.Hist.Max != 1<<20 {
		t.Fatalf("snapshot hist = %+v", hs)
	}
	// Buckets: 0 → b0; 1 → b1; 2 → b2; 3 → b2; 8 → b4; 2^20 → clamped last.
	if hs.Hist.Buckets[0] != 1 || hs.Hist.Buckets[1] != 1 || hs.Hist.Buckets[2] != 2 || hs.Hist.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", hs.Hist.Buckets)
	}
	if hs.Hist.Buckets[len(hs.Hist.Buckets)-1] != 1 {
		t.Fatalf("overflow bucket: %v", hs.Hist.Buckets)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "", "")
	r.Gauge("x", "", "")
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n, "events", "").Add(7)
		}
		r.Histogram("h", "lines", "footprints").Observe(5)
		r.Gauge("g", "ratio", "").Set(0.25)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	if !bytes.Equal(a, b) {
		t.Fatalf("registration order changed encoding:\n%s\nvs\n%s", a, b)
	}
	// The encoding must be valid JSON with fields in documented order.
	var raw map[string]any
	if err := json.Unmarshal(a, &raw); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !strings.Contains(string(a), `"schema": "`+SchemaVersion+`"`) {
		t.Fatalf("schema missing:\n%s", a)
	}
}

func TestMetricRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "events", "a counter").Add(9)
	r.Gauge("g", "", "").Set(1.5)
	h := r.Histogram("h", "lines", "")
	h.Observe(3)
	h.Observe(100)
	s := r.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed encoding:\n%s\nvs\n%s", b, b2)
	}
}

func TestSnapshotAdd(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("shared", "", "").Add(2)
	r1.Counter("only1", "", "").Add(1)
	h1 := r1.Histogram("h", "lines", "")
	h1.Observe(4)

	r2 := NewRegistry()
	r2.Counter("shared", "", "").Add(5)
	r2.Counter("only2", "", "").Add(3)
	h2 := r2.Histogram("h", "lines", "")
	h2.Observe(1000)

	s := r1.Snapshot()
	s.Add(r2.Snapshot())
	if got := s.Get("shared").Value; got != 7 {
		t.Fatalf("shared = %d, want 7", got)
	}
	if s.Get("only1").Value != 1 || s.Get("only2").Value != 3 {
		t.Fatal("one-sided metrics lost")
	}
	h := s.Get("h").Hist
	if h.Count != 2 || h.Sum != 1004 || h.Max != 1000 {
		t.Fatalf("merged hist = %+v", h)
	}
	// Merge order must not matter for the encoded bytes.
	s2 := r2.Snapshot()
	s2.Add(r1.Snapshot())
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merge order changed encoding:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestHistogramImport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "lines", "")
	h.Import(3, 10, 8, []uint64{1, 1, 0, 0, 1})
	// A source with more buckets than we keep clamps into the last bucket.
	long := make([]uint64, DefaultHistBuckets+4)
	long[DefaultHistBuckets+3] = 2
	h.Import(2, 100, 50, long)
	s := r.Snapshot().Get("h").Hist
	if s.Count != 5 || s.Sum != 110 || s.Max != 50 {
		t.Fatalf("imported hist = %+v", s)
	}
	if s.Buckets[len(s.Buckets)-1] != 2 {
		t.Fatalf("clamped buckets = %v", s.Buckets)
	}
}

// TestGaugeMergeRules pins the per-metric gauge merge semantics: gauges
// registered with Gauge sum across snapshots, gauges registered with
// MaxGauge keep the largest value, and the rule survives JSON round
// trips (the "merge":"max" field).
func TestGaugeMergeRules(t *testing.T) {
	mk := func(sum, max float64) *Snapshot {
		r := NewRegistry()
		r.Gauge("g.sum", "", "").Set(sum)
		r.MaxGauge("g.max", "", "").Set(max)
		return r.Snapshot()
	}
	a, b := mk(2, 5), mk(3, 4)
	a.Add(b)
	if got := a.Get("g.sum").FValue; got != 5 {
		t.Errorf("sum gauge merged to %v, want 5", got)
	}
	if got := a.Get("g.max").FValue; got != 5 {
		t.Errorf("max gauge merged to %v, want 5", got)
	}
	// Commutativity: merging the other way yields the same values.
	c, d := mk(2, 5), mk(3, 4)
	d.Add(c)
	if d.Get("g.sum").FValue != 5 || d.Get("g.max").FValue != 5 {
		t.Errorf("merge not commutative: %v %v", d.Get("g.sum").FValue, d.Get("g.max").FValue)
	}

	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"merge": "max"`) {
		t.Fatalf("max gauge missing merge field:\n%s", buf.String())
	}
	if strings.Contains(strings.Split(buf.String(), `"g.sum"`)[1], `"merge"`) {
		t.Fatal("sum gauge must not carry a merge field")
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Get("g.max").Merge != MergeMax || back.Get("g.sum").Merge != MergeSum {
		t.Fatalf("merge rule lost in round trip: %+v", back.Metrics)
	}
	// A re-read snapshot still merges by its rule.
	back.Add(mk(1, 9))
	if back.Get("g.max").FValue != 9 || back.Get("g.sum").FValue != 6 {
		t.Fatalf("re-read snapshot merged wrong: max=%v sum=%v",
			back.Get("g.max").FValue, back.Get("g.sum").FValue)
	}
}

// TestWideHistogramRegistry: WideHistogram registers a 2^32-range
// histogram that snapshots and merges like any other.
func TestWideHistogramRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.WideHistogram("lat", "cycles", "")
	h.Observe(1 << 25)
	s := r.Snapshot()
	if got := s.Get("lat").Hist.Max; got != 1<<25 {
		t.Fatalf("wide hist max = %d", got)
	}
	if n := len(s.Get("lat").Hist.Buckets); n != 27 {
		t.Fatalf("bucket count = %d, want 27 (bit length of 2^25 is 26)", n)
	}
	// Merging wide into narrow pads buckets rather than truncating.
	r2 := NewRegistry()
	r2.Histogram("lat", "cycles", "").Observe(3)
	s2 := r2.Snapshot()
	s2.Add(s)
	if got := s2.Get("lat").Hist.Count; got != 2 {
		t.Fatalf("merged count = %d", got)
	}
	if n := len(s2.Get("lat").Hist.Buckets); n != 27 {
		t.Fatalf("merged bucket count = %d, want 27", n)
	}
}
