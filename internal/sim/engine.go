// Package sim provides a deterministic, execution-driven multiprocessor
// simulation engine, the foundation of the paper's §5.1 simulation
// methodology.
//
// Each simulated processor runs its workload on a dedicated goroutine, but
// the engine globally serializes execution: exactly one processor goroutine
// runs at any instant, and the engine always resumes the runnable processor
// with the smallest local clock (ties broken by processor ID). Memory
// operations performed by the layers above are therefore atomic at their
// timestamp, interleavings are bit-reproducible for a given configuration,
// and no locking is needed anywhere in the simulated machine.
//
// Time is measured in cycles. Workload code advances its processor's clock
// with Proc.Elapse, which is also the engine's only scheduling point: a
// processor that never elapses time never yields. All layers above charge
// every modeled action (cache hits, coherence transfers, instruction
// overhead) through Elapse.
//
// # Scheduling hot path
//
// The default scheduler is a run-ahead fast path (DESIGN.md §12). The
// engine keeps every ready, not-currently-executing processor in an
// indexed min-heap ordered by (clock, id); the heap minimum is the
// "horizon" — the earliest instant at which any other processor could be
// entitled to run. The executing processor compares its clock against the
// horizon on every Elapse and keeps executing inline, with zero channel
// operations, for as long as it remains the strict (clock, id) minimum.
// Only when its clock crosses the horizon does it take the slow path:
// push itself back into the heap, pop the new minimum, and hand the
// execution token directly to that processor's goroutine (the engine
// goroutine in Run only participates at startup and termination). The
// schedule this produces is exactly the one the naive
// pick-the-global-minimum-every-Elapse scheduler produces; the retained
// reference implementation (Config.Reference) is the executable
// specification, and differential tests pin the two to identical step
// sequences.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// State describes what a processor is currently doing, from the engine's
// point of view.
type State uint8

const (
	// Ready means the processor can be scheduled.
	Ready State = iota
	// Blocked means the processor is descheduled until another processor
	// wakes it (used for transactional waiting).
	Blocked
	// Done means the processor's workload function returned.
	Done
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config holds engine-wide settings. The configuration fully determines
// the schedule: two runs with equal Config and workloads produce
// bit-identical step sequences regardless of which scheduler
// (fast/Reference/Parallel) executes them.
type Config struct {
	// Procs is the number of simulated processors.
	Procs int
	// Quantum is the scheduling-timer period in cycles. Every time a
	// processor's clock crosses a multiple of Quantum, its interrupt hook
	// fires (modeling a timer interrupt). Zero disables timer interrupts.
	Quantum uint64
	// MaxSteps bounds the total number of scheduling steps before the
	// engine panics with a livelock diagnostic. Zero selects a large
	// default.
	MaxSteps uint64
	// Reference selects the retained reference scheduler: every Elapse
	// yields to the engine goroutine, which re-picks the minimum
	// (clock, id) processor by linear scan. It is the executable
	// specification of the scheduling order — slow but obviously correct —
	// kept for differential testing of the run-ahead fast path. Simulated
	// results are bit-identical between the two.
	Reference bool
	// Parallel selects the time-windowed parallel scheduler (DESIGN.md
	// §14): processors run concurrently on real goroutines, free compute
	// overlaps, and shared-state stretches serialize through ordered
	// sections in exactly the serial schedulers' (clock, id) step order.
	// Simulated results are bit-identical to both serial schedulers.
	// Mutually exclusive with Reference.
	Parallel bool
	// WindowCycles is the parallel scheduler's window width in cycles
	// (zero selects DefaultWindowCycles). Window width only changes
	// host-side synchronization cadence, never simulated results.
	WindowCycles uint64
}

const defaultMaxSteps = 2_000_000_000

// Engine owns the simulated processors and the global clock ordering.
type Engine struct {
	cfg      Config
	procs    []*Proc
	steps    uint64
	panicked any

	// Fast-path scheduler state. ready holds every Ready processor that
	// is not currently executing, ordered by (clock, id); ready[0] is the
	// run-ahead horizon. Entries never change their key while in the heap
	// (only the executing processor advances its own clock, and Wake bumps
	// a sleeper's clock before pushing it), so the heap needs push and pop
	// but never a decrease-key. All of this state is owned by whichever
	// goroutine currently holds the execution token; token handoffs are
	// channel-synchronized, so no locking is needed.
	ready   []*Proc
	notDone int
	doneCh  chan struct{}
	termMsg string

	// par is the parallel scheduler's state; nil under the serial
	// schedulers, which makes EnterOrdered/ExitOrdered no-ops there.
	par *parEngine
}

// New creates an engine with cfg.Procs processors, all at cycle 0. The
// engine holds no hidden state beyond cfg: constructing two engines from
// the same Config yields identical (deterministic) schedules.
func New(cfg Config) *Engine {
	if cfg.Procs <= 0 {
		panic("sim: Config.Procs must be positive")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if cfg.Parallel && cfg.Reference {
		panic("sim: Config.Parallel and Config.Reference are mutually exclusive")
	}
	// The parallel scheduler's grants are sent with its mutex held
	// (including self-grants), so its park channels must be buffered;
	// the serial schedulers keep the unbuffered rendezvous handoff.
	grantBuf := 0
	if cfg.Parallel {
		grantBuf = 1
	}
	e := &Engine{cfg: cfg}
	for i := 0; i < cfg.Procs; i++ {
		e.procs = append(e.procs, &Proc{
			id:      i,
			eng:     e,
			state:   Ready,
			heapIdx: -1,
			grant:   make(chan struct{}, grantBuf),
			yield:   make(chan struct{}),
			quantum: cfg.Quantum,
		})
	}
	return e
}

// Procs returns the engine's processors in ID order. The slice is fixed
// at construction; reading it requires no scheduling coordination.
func (e *Engine) Procs() []*Proc { return e.procs }

// Proc returns the processor with the given ID. The mapping is fixed at
// construction; reading it requires no scheduling coordination.
func (e *Engine) Proc(id int) *Proc { return e.procs[id] }

// Run executes one workload function per processor and returns when every
// workload has returned. Workload i runs on processor i; len(workloads)
// must equal the processor count. Run panics (with a state dump) if all
// unfinished processors are blocked, which would otherwise deadlock, or if
// the step budget is exhausted, which indicates livelock. A workload panic
// is captured by the panicking processor (first panic in schedule order
// wins, deterministically) and re-raised from Run.
func (e *Engine) Run(workloads []func(*Proc)) {
	if len(workloads) != len(e.procs) {
		panic(fmt.Sprintf("sim: %d workloads for %d processors", len(workloads), len(e.procs)))
	}
	if e.cfg.Reference {
		e.runReference(workloads)
		return
	}
	if e.cfg.Parallel {
		e.runParallel(workloads)
		return
	}
	e.runFast(workloads)
}

// runFast is the run-ahead scheduler. The engine goroutine seeds the heap,
// grants the first processor, and then parks until the processors —
// passing the execution token directly among themselves — signal
// termination (all done, deadlock, livelock, or a workload panic).
func (e *Engine) runFast(workloads []func(*Proc)) {
	e.doneCh = make(chan struct{})
	e.termMsg = ""
	e.notDone = 0
	e.ready = e.ready[:0]
	for _, p := range e.procs {
		if p.state != Done {
			e.notDone++
		}
		if p.state == Ready {
			e.heapPush(p)
		}
	}
	for i, w := range workloads {
		p, body := e.procs[i], w
		go func() {
			defer p.finish()
			<-p.grant
			body(p)
		}()
	}
	first := e.heapPop()
	if first == nil {
		if e.notDone == 0 {
			return
		}
		panic("sim: deadlock — all unfinished processors are blocked\n" + e.dump())
	}
	e.steps++
	first.grant <- struct{}{}
	<-e.doneCh
	if e.panicked != nil {
		panic(e.panicked)
	}
	if e.termMsg != "" {
		panic(e.termMsg)
	}
}

// runReference is the retained reference scheduler: the engine goroutine
// re-picks the minimum (clock, id) ready processor by linear scan after
// every single Elapse, paying two channel handoffs per scheduling step.
func (e *Engine) runReference(workloads []func(*Proc)) {
	for i, w := range workloads {
		p, body := e.procs[i], w
		go func() {
			defer func() {
				// Workload panics are captured per processor; only the
				// engine goroutine promotes one to e.panicked, so the
				// capture is single-writer and first-in-schedule-order.
				if r := recover(); r != nil {
					p.panicVal = r
				}
				p.state = Done
				p.yield <- struct{}{}
			}()
			<-p.grant
			body(p)
		}()
	}
	for {
		p := e.pick()
		if p == nil {
			return
		}
		e.steps++
		if e.steps > e.cfg.MaxSteps {
			panic("sim: step budget exhausted (livelock?)\n" + e.dump())
		}
		p.grant <- struct{}{}
		<-p.yield
		if p.state == Done && p.panicVal != nil {
			if e.panicked == nil {
				e.panicked = p.panicVal
			}
			panic(e.panicked)
		}
	}
}

// pick returns the ready processor with the smallest clock (ties broken by
// ID), nil if every processor is done, and panics on deadlock. It is the
// reference scheduler's O(n) selection; the fast path replaces it with the
// ready heap.
func (e *Engine) pick() *Proc {
	var best *Proc
	allDone := true
	for _, p := range e.procs {
		if p.state != Done {
			allDone = false
		}
		if p.state != Ready {
			continue
		}
		if best == nil || p.now < best.now {
			best = p
		}
	}
	if best == nil {
		if allDone {
			return nil
		}
		panic("sim: deadlock — all unfinished processors are blocked\n" + e.dump())
	}
	return best
}

// Now returns the maximum clock across all processors: the simulated
// duration of the run so far. Call it between runs (or from the
// processor holding the execution token); under the parallel scheduler
// other processors' clocks advance concurrently, so a mid-run reading
// from outside an ordered section is a racy snapshot.
func (e *Engine) Now() uint64 {
	var max uint64
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// Steps reports how many scheduling steps the engine has performed.
func (e *Engine) Steps() uint64 { return e.steps }

func (e *Engine) dump() string {
	var b strings.Builder
	ps := append([]*Proc(nil), e.procs...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	for _, p := range ps {
		fmt.Fprintf(&b, "  proc %d: %s at cycle %d (%s)\n", p.id, p.state, p.now, p.note)
	}
	return b.String()
}
