package sim

// The ready heap: an indexed binary min-heap over (clock, id). Processors
// carry their own heap position (Proc.heapIdx, -1 when absent) so
// membership checks and removals are O(1)+sift. Keys are immutable while a
// processor is in the heap — only the executing processor (never in the
// heap) advances its clock, and Wake bumps a sleeper's clock before
// pushing — so push and pop are the only operations.

// schedBefore reports whether a precedes b in the engine's total
// scheduling order.
func schedBefore(a, b *Proc) bool {
	return a.now < b.now || (a.now == b.now && a.id < b.id)
}

// horizon returns the earliest other ready processor — the clock frontier
// the executing processor may run ahead to — or nil when no other
// processor is runnable.
func (e *Engine) horizon() *Proc {
	if len(e.ready) == 0 {
		return nil
	}
	return e.ready[0]
}

func (e *Engine) heapPush(p *Proc) {
	p.heapIdx = len(e.ready)
	e.ready = append(e.ready, p)
	e.siftUp(p.heapIdx)
}

func (e *Engine) heapPop() *Proc {
	n := len(e.ready)
	if n == 0 {
		return nil
	}
	top := e.ready[0]
	last := e.ready[n-1]
	e.ready[n-1] = nil
	e.ready = e.ready[:n-1]
	if n > 1 {
		e.ready[0] = last
		last.heapIdx = 0
		e.siftDown(0)
	}
	top.heapIdx = -1
	return top
}

func (e *Engine) siftUp(i int) {
	h := e.ready
	p := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !schedBefore(p, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].heapIdx = i
		i = parent
	}
	h[i] = p
	p.heapIdx = i
}

func (e *Engine) siftDown(i int) {
	h := e.ready
	n := len(h)
	p := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && schedBefore(h[r], h[child]) {
			child = r
		}
		if !schedBefore(h[child], p) {
			break
		}
		h[i] = h[child]
		h[i].heapIdx = i
		i = child
	}
	h[i] = p
	p.heapIdx = i
}
