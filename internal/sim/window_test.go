package sim

import (
	"strings"
	"testing"
)

// Window-boundary edge cases for the parallel scheduler (DESIGN.md §14).
// Each table entry runs a script whose critical event lands on or around
// a window boundary and checks the schedule is bit-identical to the
// reference scheduler for window widths that put the boundary exactly on,
// just before, and just after the event.

func TestWindowBoundaryEdgeCases(t *testing.T) {
	type tc struct {
		name    string
		windows []uint64 // widths to stress; all must match the reference
		script  func(e *Engine, trace *[]step) []func(*Proc)
	}
	record := func(trace *[]step) func(p *Proc) {
		return func(p *Proc) {
			p.EnterOrdered(0)
			*trace = append(*trace, step{p.ID(), p.Now()})
			p.ExitOrdered()
		}
	}
	cases := []tc{
		{
			// A processor's next event lands exactly on the window end
			// (clock == base+W): it must park and resume in the next
			// window without perturbing the schedule.
			name:    "event exactly on window end",
			windows: []uint64{10, 20, 21, 19},
			script: func(e *Engine, trace *[]step) []func(*Proc) {
				at := record(trace)
				return []func(*Proc){
					func(p *Proc) {
						at(p)
						p.Elapse(10) // == end for W=10, mid-window otherwise
						at(p)
						p.Elapse(10) // == end for W=10 (second window) and W=20
						at(p)
					},
					func(p *Proc) {
						at(p)
						p.Elapse(9)
						at(p)
						p.Elapse(12)
						at(p)
					},
				}
			},
		},
		{
			// A wakeup delivered in the same cycle the window closes: the
			// waker reaches the window-end cycle, wakes the sleeper at
			// exactly base+W, and the sleeper must be parked into the
			// next window (its wake time is outside the current one).
			name:    "wake lands on window close",
			windows: []uint64{10, 11, 9},
			script: func(e *Engine, trace *[]step) []func(*Proc) {
				at := record(trace)
				sleeper := e.Proc(1)
				return []func(*Proc){
					func(p *Proc) {
						at(p)
						p.Elapse(10) // reaches the W=10 boundary exactly
						at(p)
						p.Wake(sleeper) // wake time == window close for W=10
						p.Elapse(5)
						at(p)
					},
					func(p *Proc) {
						at(p)
						p.Block()
						at(p)
						p.Elapse(2)
						at(p)
					},
				}
			},
		},
		{
			// A shared-state "kill" written in the same cycle another
			// processor's window-closing step reads it: proc 0 sets a
			// flag at cycle 10 (== window end), proc 1 checks it at the
			// same cycle; the (cycle, id) order must decide, not the
			// host-side window close.
			name:    "shared write at window-close cycle",
			windows: []uint64{10, 5, 13},
			script: func(e *Engine, trace *[]step) []func(*Proc) {
				at := record(trace)
				var killed int
				return []func(*Proc){
					func(p *Proc) {
						p.Elapse(10)
						p.EnterOrdered(7)
						killed = 1 // id 0 writes first at cycle 10
						p.ExitOrdered()
						at(p)
						p.Elapse(1)
					},
					func(p *Proc) {
						p.Elapse(10)
						p.EnterOrdered(7)
						*trace = append(*trace, step{100 + killed, p.Now()})
						p.ExitOrdered()
						at(p)
						p.Elapse(1)
					},
				}
			},
		},
		{
			// Blocked processors straddling a window close: the window
			// drains because everyone else parked, and the blocked
			// processor is woken into a later window.
			name:    "sleeper survives window turnover",
			windows: []uint64{3, 50},
			script: func(e *Engine, trace *[]step) []func(*Proc) {
				at := record(trace)
				sleeper := e.Proc(1)
				return []func(*Proc){
					func(p *Proc) {
						at(p)
						p.Elapse(40) // several W=3 windows turn over while 1 sleeps
						at(p)
						p.Wake(sleeper)
						p.Elapse(1)
						at(p)
					},
					func(p *Proc) {
						at(p)
						p.Block()
						at(p)
					},
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := func(cfg Config) []step {
				cfg.Procs = 2
				e := New(cfg)
				var trace []step
				e.Run(c.script(e, &trace))
				return trace
			}
			ref := run(Config{Reference: true})
			for _, w := range c.windows {
				got := run(Config{Parallel: true, WindowCycles: w})
				diffTraces(t, got, ref, c.name)
			}
		})
	}
}

// TestEmptyWindowAllBlocked: when every unfinished processor is blocked
// at a window boundary there is no next window to open — the manager
// must raise the deadlock diagnostic, matching the serial schedulers.
func TestEmptyWindowAllBlocked(t *testing.T) {
	for _, w := range []uint64{1, 10, DefaultWindowCycles} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("window=%d: expected deadlock panic", w)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "deadlock") {
					t.Fatalf("window=%d: panic %v, want deadlock diagnostic", w, r)
				}
			}()
			e := New(Config{Procs: 3, Parallel: true, WindowCycles: w})
			e.Run([]func(*Proc){
				func(p *Proc) { p.Elapse(2); p.Block() },
				func(p *Proc) { p.Elapse(5); p.Block() },
				func(p *Proc) { p.Elapse(9); p.Block() },
			})
		}()
	}
}

// TestParallelExactWindowMultipleRuns re-runs one script many times under
// the parallel scheduler: host-side goroutine scheduling varies between
// runs, simulated results must not.
func TestParallelExactWindowMultipleRuns(t *testing.T) {
	ref := runRandomScript(Config{Reference: true}, 4, 33, 7)
	for i := 0; i < 25; i++ {
		got := runRandomScript(Config{Parallel: true, WindowCycles: 33}, 4, 33, 7)
		diffTraces(t, got, ref, "repeat run")
	}
}
