package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestSingleProcRuns(t *testing.T) {
	e := New(Config{Procs: 1})
	var ran bool
	e.Run([]func(*Proc){func(p *Proc) {
		p.Elapse(10)
		p.Elapse(5)
		ran = true
	}})
	if !ran {
		t.Fatal("workload did not run")
	}
	if got := e.Proc(0).Now(); got != 15 {
		t.Fatalf("proc clock = %d, want 15", got)
	}
	if got := e.Now(); got != 15 {
		t.Fatalf("engine Now = %d, want 15", got)
	}
}

func TestLowestClockRunsFirst(t *testing.T) {
	e := New(Config{Procs: 2})
	var order []int
	step := func(p *Proc, c uint64) {
		order = append(order, p.ID())
		p.Elapse(c)
	}
	e.Run([]func(*Proc){
		func(p *Proc) { step(p, 10); step(p, 10); step(p, 10) }, // runs at 0,10,20
		func(p *Proc) { step(p, 5); step(p, 5); step(p, 25) },   // runs at 0,5,10
	})
	// Expected interleaving by (time, id): p0@0, p1@0, p1@5, p0@10, p1@10, p0@20.
	want := []int{0, 1, 1, 0, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := New(Config{Procs: 4})
		var order []int
		mk := func(id int) func(*Proc) {
			r := NewRand(uint64(id + 1))
			return func(p *Proc) {
				for i := 0; i < 50; i++ {
					order = append(order, p.ID())
					p.Elapse(uint64(1 + r.Intn(20)))
				}
			}
		}
		e.Run([]func(*Proc){mk(0), mk(1), mk(2), mk(3)})
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	e := New(Config{Procs: 2})
	var wokeAt uint64
	sleeper := e.Proc(0)
	e.Run([]func(*Proc){
		func(p *Proc) {
			p.Elapse(1)
			p.Block()
			wokeAt = p.Now()
		},
		func(p *Proc) {
			p.Elapse(100)
			p.Wake(sleeper)
			p.Elapse(1)
		},
	})
	if wokeAt != 100 {
		t.Fatalf("sleeper resumed at cycle %d, want 100", wokeAt)
	}
}

func TestWakeNonBlockedIsNoop(t *testing.T) {
	e := New(Config{Procs: 2})
	target := e.Proc(0)
	e.Run([]func(*Proc){
		func(p *Proc) { p.Elapse(3) },
		func(p *Proc) {
			p.Wake(target) // target is ready, not blocked
			p.Elapse(1)
		},
	})
	if target.Now() != 3 {
		t.Fatalf("target clock = %d, want 3", target.Now())
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := New(Config{Procs: 2})
	e.Run([]func(*Proc){
		func(p *Proc) { p.Block() },
		func(p *Proc) { p.Block() },
	})
}

func TestLivelockWatchdog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected watchdog panic")
		}
	}()
	e := New(Config{Procs: 2, MaxSteps: 1000})
	e.Run([]func(*Proc){
		func(p *Proc) {
			for {
				p.Elapse(1)
			}
		},
		func(p *Proc) {
			for {
				p.Elapse(1)
			}
		},
	})
}

func TestQuantumInterrupts(t *testing.T) {
	e := New(Config{Procs: 1, Quantum: 100})
	var fired int32
	e.Run([]func(*Proc){func(p *Proc) {
		p.OnInterrupt(func() { atomic.AddInt32(&fired, 1) })
		for i := 0; i < 35; i++ {
			p.Elapse(10) // 350 cycles total: crosses 100, 200, 300
		}
	}})
	if fired != 3 {
		t.Fatalf("interrupts fired %d times, want 3", fired)
	}
}

func TestQuantumCrossingMultipleBoundariesInOneElapse(t *testing.T) {
	e := New(Config{Procs: 1, Quantum: 10})
	var fired int
	e.Run([]func(*Proc){func(p *Proc) {
		p.OnInterrupt(func() { fired++ })
		p.Elapse(35) // crosses 10, 20, 30
	}})
	if fired != 3 {
		t.Fatalf("interrupts fired %d times, want 3", fired)
	}
}

func TestZeroQuantumDisablesInterrupts(t *testing.T) {
	e := New(Config{Procs: 1})
	var fired int
	e.Run([]func(*Proc){func(p *Proc) {
		p.OnInterrupt(func() { fired++ })
		p.Elapse(1_000_000)
	}})
	if fired != 0 {
		t.Fatalf("interrupts fired %d times, want 0", fired)
	}
}

func TestEngineStepsAdvance(t *testing.T) {
	e := New(Config{Procs: 2})
	e.Run([]func(*Proc){
		func(p *Proc) { p.Elapse(1); p.Elapse(1) },
		func(p *Proc) { p.Elapse(1); p.Elapse(1) },
	})
	if e.Steps() == 0 {
		t.Fatal("engine recorded no steps")
	}
}

func TestProcsAccessors(t *testing.T) {
	e := New(Config{Procs: 3})
	if len(e.Procs()) != 3 {
		t.Fatalf("Procs() length = %d, want 3", len(e.Procs()))
	}
	for i := 0; i < 3; i++ {
		if e.Proc(i).ID() != i {
			t.Fatalf("Proc(%d).ID() = %d", i, e.Proc(i).ID())
		}
	}
}

func TestNewPanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Procs=0")
		}
	}()
	New(Config{})
}

func TestWorkloadPanicPropagatesToRun(t *testing.T) {
	defer func() {
		if r := recover(); r != "workload exploded" {
			t.Fatalf("recovered %v", r)
		}
	}()
	e := New(Config{Procs: 2})
	e.Run([]func(*Proc){
		func(p *Proc) { p.Elapse(5); panic("workload exploded") },
		func(p *Proc) { p.Elapse(100) },
	})
}

func TestRunPanicsOnWorkloadCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Procs: 2}).Run([]func(*Proc){func(*Proc) {}})
}

func TestNotesAppearInDeadlockDump(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "waiting-for-godot") {
			t.Fatalf("dump missing note: %v", r)
		}
	}()
	e := New(Config{Procs: 1})
	e.Run([]func(*Proc){func(p *Proc) {
		p.SetNote("waiting-for-godot")
		p.Block()
	}})
}

func TestStateStrings(t *testing.T) {
	if Ready.String() != "ready" || Blocked.String() != "blocked" || Done.String() != "done" {
		t.Fatal("state names wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state must format")
	}
}

func TestManyProcsFairProgress(t *testing.T) {
	const procs = 16
	e := New(Config{Procs: procs})
	finish := make([]uint64, procs)
	var ws []func(*Proc)
	for i := 0; i < procs; i++ {
		tid := i
		ws = append(ws, func(p *Proc) {
			for n := 0; n < 100; n++ {
				p.Elapse(10)
			}
			finish[tid] = p.Now()
		})
	}
	e.Run(ws)
	for i, f := range finish {
		if f != 1000 {
			t.Fatalf("proc %d finished at %d, want 1000 (identical work)", i, f)
		}
	}
}
