package sim

// Conservative time-windowed parallel execution (DESIGN.md §14).
//
// The serial schedulers (fast path and reference) maintain one invariant:
// simulated work is a sequence of *steps* — the execution between two
// scheduling points — performed in ascending (clock, id) order. The
// parallel scheduler keeps exactly that order for every step that can
// touch shared simulated state, but lets the pure host-side compute
// between such steps run concurrently on real goroutines (bounded, like
// any Go program, by GOMAXPROCS).
//
// Mechanically:
//
//   - Each processor continuously publishes its *frontier* — its local
//     clock — through an atomic (Proc.pub). A blocked or finished
//     processor publishes parkedPub (infinity).
//   - Shared-state stretches execute inside *ordered sections*
//     (Proc.EnterOrdered / Proc.ExitOrdered). At most one ordered section
//     runs at a time, and entry is granted only to the processor that is
//     the global minimum in (frontier, id) order — i.e. exactly the
//     processor the serial schedulers would run next. Waiting entrants
//     queue in per-cache-line shards (parEngine.shards); grants scan the
//     shard minima, so the ordering key is (cycle, proc id) exactly as in
//     the serial schedulers.
//   - Elapse is a step boundary: an ordered section spanning an Elapse
//     releases the entry token at the old frontier, publishes the new
//     one, and re-acquires — so every ordered stretch between two Elapses
//     occupies exactly one (clock, id) slot of the serial schedule.
//   - Execution proceeds in time windows [base, base+WindowCycles). A
//     processor whose clock reaches the window end parks at a barrier;
//     when every in-flight processor has parked, blocked, or finished,
//     the manager (the Run goroutine) opens the next window at the
//     minimum parked clock. Windows bound skew, give the manager a
//     deterministic point to detect deadlock and select panic winners,
//     and never affect simulated results — the window size only changes
//     host-side scheduling.
//
// Determinism argument: ordered sections are totally ordered by
// (frontier, id), which is the serial schedulers' step order; free
// compute between steps touches only processor-local host state, so it
// commutes with everything. Block and Wake are themselves ordered
// sections, so sleep/wakeup races resolve in the serial order. The
// differential tests in sched_equiv_test.go and the machine- and
// harness-level golden tests pin this equivalence bit-for-bit.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// OrderShards is the number of per-cache-line waiter shards used by the
// parallel scheduler's ordered-entry queue. Waiters are bucketed by
// line % OrderShards; grants scan the shard minima, so sharding never
// changes the grant order — it is the structural hook for relaxing
// independent-line ordering later.
const OrderShards = 64

// DefaultWindowCycles is the window width used when Config.WindowCycles
// is zero. Window width affects only host-side synchronization cadence;
// simulated results stay bit-identical at any width.
const DefaultWindowCycles = 10_000

// parkedPub is the frontier published by blocked and finished
// processors: later than every real clock, so they never gate a grant.
const parkedPub = math.MaxUint64

// parEngine is the parallel scheduler's shared state. All fields except
// the atomics are guarded by mu.
type parEngine struct {
	mu sync.Mutex

	// winEnd is the current window's end cycle (exclusive). Atomic so
	// free-running processors can test it without taking mu.
	winEnd atomic.Uint64
	// nwait counts queued ordered-entry waiters. Atomic so the free
	// Elapse fast path can skip the lock when nobody is waiting.
	nwait atomic.Int64

	live    int                  // released processors not yet parked, blocked, or done
	running *Proc                // current ordered-section holder, nil if none
	shards  [OrderShards][]*Proc // ordered-entry waiters, bucketed by line
	barrier []*Proc              // processors parked until the next window
	drained chan struct{}        // capacity 1: window empty or fatal diagnostic
	aborted bool                 // a workload panic was captured this run
}

func (par *parEngine) signalDrained() {
	select {
	case par.drained <- struct{}{}:
	default:
	}
}

// runParallel executes the workloads under the windowed-parallel
// scheduler. The Run goroutine acts as the window manager: it opens each
// window, parks until the window drains, and performs the deterministic
// termination checks (all done, deadlock, livelock, panic winner).
func (e *Engine) runParallel(workloads []func(*Proc)) {
	par := &parEngine{drained: make(chan struct{}, 1)}
	e.par = par
	window := e.cfg.WindowCycles
	if window == 0 {
		window = DefaultWindowCycles
	}
	e.notDone = 0
	par.barrier = par.barrier[:0]
	for _, p := range e.procs {
		if p.state != Done {
			e.notDone++
		}
		switch p.state {
		case Ready:
			p.pub.Store(p.now)
			par.barrier = append(par.barrier, p)
		case Blocked:
			p.pub.Store(parkedPub)
		}
	}
	for i, w := range workloads {
		p, body := e.procs[i], w
		go func() {
			defer p.parFinish()
			<-p.grant
			body(p)
		}()
	}
	for {
		par.mu.Lock()
		if e.termMsg != "" {
			msg := e.termMsg
			par.mu.Unlock()
			panic(msg)
		}
		if par.aborted {
			e.panicked = e.parPanicWinnerLocked().panicVal
			par.mu.Unlock()
			panic(e.panicked)
		}
		if e.notDone == 0 {
			par.mu.Unlock()
			return
		}
		if len(par.barrier) == 0 {
			msg := "sim: deadlock — all unfinished processors are blocked\n" + e.parDumpLocked()
			par.mu.Unlock()
			panic(msg)
		}
		// Each window is at least one scheduling step; counting it here
		// keeps the livelock watchdog live even when every elapse
		// crosses the barrier (tiny windows), where the free-path
		// coarse counter never runs.
		e.steps++
		if e.steps > e.cfg.MaxSteps {
			msg := "sim: step budget exhausted (livelock?)\n" + e.parDumpLocked()
			par.mu.Unlock()
			panic(msg)
		}
		// Open the next window at the earliest parked clock.
		base := par.barrier[0].now
		for _, p := range par.barrier[1:] {
			if p.now < base {
				base = p.now
			}
		}
		end := base + window
		if end < base { // saturate on overflow
			end = math.MaxUint64
		}
		par.winEnd.Store(end)
		release := par.barrier[:0]
		var stay []*Proc
		for _, p := range par.barrier {
			if p.now < end {
				release = append(release, p)
			} else {
				stay = append(stay, p)
			}
		}
		par.barrier = stay
		par.live = len(release)
		select { // clear any stale drain signal before releasing
		case <-par.drained:
		default:
		}
		for _, p := range release {
			p.grant <- struct{}{}
		}
		par.mu.Unlock()
		<-par.drained
	}
}

// parPanicWinnerLocked selects the deterministic panic winner: the
// captured panic with the smallest (clock, id) step key — the first
// panic the serial schedulers would have reached.
func (e *Engine) parPanicWinnerLocked() *Proc {
	var win *Proc
	for _, p := range e.procs {
		if p.panicVal == nil {
			continue
		}
		if win == nil || p.panicAt < win.panicAt || (p.panicAt == win.panicAt && p.id < win.id) {
			win = p
		}
	}
	return win
}

// parDumpLocked renders processor states for fatal diagnostics using
// only mu-guarded and atomic fields (the live processors' plain fields
// may be in flight).
func (e *Engine) parDumpLocked() string {
	var b []byte
	for _, p := range e.procs {
		f := p.pub.Load()
		front := fmt.Sprintf("%d", f)
		if f == parkedPub {
			front = "parked"
		}
		b = fmt.Appendf(b, "  proc %d: %s at frontier %s\n", p.id, p.state, front)
	}
	return string(b)
}

// EnterOrdered begins an ordered section keyed on (current frontier,
// processor id) for the given cache line. It returns once no other
// ordered section is running and no processor's published frontier
// precedes this one's — i.e. when this processor is exactly the serial
// schedulers' next pick. Sections nest (reentrant); only the outermost
// Enter acquires. In the serial scheduling modes this is a no-op, so
// layers above may bracket shared-state work unconditionally.
func (p *Proc) EnterOrdered(line uint64) {
	// Inlinable fast path: under the serial schedulers the bracket is this
	// nil check and nothing else, so hot memory-op paths pay ~zero.
	if p.eng.par == nil {
		return
	}
	p.enterOrderedSlow(line)
}

// enterOrderedSlow is the parallel-mode body of EnterOrdered, split out
// so the serial no-op path stays within the inlining budget.
func (p *Proc) enterOrderedSlow(line uint64) {
	p.parDepth++
	if p.parDepth > 1 {
		return
	}
	e := p.eng
	p.parLine = line
	par := e.par
	par.mu.Lock()
	p.enqueueLocked()
	e.parEvalLocked()
	par.mu.Unlock()
	<-p.grant
}

// ExitOrdered ends the ordered section begun by the matching
// EnterOrdered, releasing the entry token at the outermost level. In the
// serial scheduling modes it is a no-op.
func (p *Proc) ExitOrdered() {
	// Inlinable fast path; see EnterOrdered.
	if p.eng.par == nil {
		return
	}
	p.exitOrderedSlow()
}

// exitOrderedSlow is the parallel-mode body of ExitOrdered.
func (p *Proc) exitOrderedSlow() {
	if p.parDepth == 0 {
		panic("sim: ExitOrdered without matching EnterOrdered")
	}
	p.parDepth--
	if p.parDepth > 0 {
		return
	}
	e := p.eng
	par := e.par
	par.mu.Lock()
	if par.running == p {
		par.running = nil
	}
	e.parEvalLocked()
	par.mu.Unlock()
}

// enqueueLocked adds p to its line's waiter shard.
func (p *Proc) enqueueLocked() {
	par := p.eng.par
	s := p.parLine % OrderShards
	p.parShard = int(s)
	par.shards[s] = append(par.shards[s], p)
	par.nwait.Add(1)
}

// parEvalLocked grants the ordered-entry token if possible: no section
// may be running, and the minimum-keyed waiter must precede every other
// processor's published frontier in (frontier, id) order. Called after
// every event that can change eligibility (frontier publish, release,
// block, finish, barrier arrival).
func (e *Engine) parEvalLocked() {
	par := e.par
	if par.running != nil || par.nwait.Load() == 0 || e.termMsg != "" {
		return
	}
	var best *Proc
	var bestKey uint64
	for s := range par.shards {
		for _, w := range par.shards[s] {
			k := w.pub.Load()
			if best == nil || k < bestKey || (k == bestKey && w.id < best.id) {
				best, bestKey = w, k
			}
		}
	}
	for _, q := range e.procs {
		if q == best {
			continue
		}
		qp := q.pub.Load()
		if qp < bestKey || (qp == bestKey && q.id < best.id) {
			return // an earlier-keyed processor is still in flight
		}
	}
	// Dequeue and grant.
	shard := par.shards[best.parShard]
	for i, w := range shard {
		if w == best {
			shard[i] = shard[len(shard)-1]
			shard[len(shard)-1] = nil
			par.shards[best.parShard] = shard[:len(shard)-1]
			break
		}
	}
	par.nwait.Add(-1)
	e.steps++
	if e.steps > e.cfg.MaxSteps {
		// Fatal diagnostic: route through the manager. Waiters stay
		// parked (the run is over), mirroring the serial livelock path.
		e.termMsg = "sim: step budget exhausted (livelock?)\n" + e.parDumpLocked()
		par.signalDrained()
		return
	}
	par.running = best
	best.grant <- struct{}{}
}

// parElapse is Elapse under the parallel scheduler: fire quantum hooks
// (inside an ordered section — they belong to the step that is ending),
// publish the new frontier, park at the window barrier if the clock
// crossed the window end, and — when inside an ordered section — release
// and re-acquire the entry token so the section's next stretch occupies
// its own (clock, id) slot.
func (p *Proc) parElapse() {
	e := p.eng
	par := e.par
	if p.quantum > 0 {
		if p.nextQuantum == 0 {
			p.nextQuantum = p.quantum
		}
		if p.now >= p.nextQuantum {
			wrapped := false
			if p.parDepth == 0 {
				p.EnterOrdered(0)
				wrapped = true
			}
			for p.now >= p.nextQuantum {
				p.nextQuantum += p.quantum
				for _, fn := range p.interruptFns {
					fn()
				}
			}
			if wrapped {
				p.ExitOrdered()
			}
		}
	}
	if p.parDepth > 0 {
		// Step boundary inside an ordered section.
		par.mu.Lock()
		if par.running == p {
			par.running = nil
		}
		p.pub.Store(p.now)
		if p.now >= par.winEnd.Load() {
			p.arriveBarrierLocked() // unlocks, parks, returns in next window
			par.mu.Lock()
		}
		p.enqueueLocked()
		e.parEvalLocked()
		par.mu.Unlock()
		<-p.grant
		return
	}
	// Free compute: publish, then synchronize only if the window closed
	// or someone is waiting on an ordered grant.
	p.pub.Store(p.now)
	if p.now >= par.winEnd.Load() {
		par.mu.Lock()
		p.arriveBarrierLocked()
		return
	}
	if par.nwait.Load() > 0 {
		par.mu.Lock()
		e.parEvalLocked()
		par.mu.Unlock()
	}
	// Coarse step accounting so a lone spinning processor still trips
	// the livelock watchdog, as on the serial fast path.
	p.fastSkips++
	if p.fastSkips&1023 == 0 {
		par.mu.Lock()
		e.steps++
		if e.steps > e.cfg.MaxSteps && e.termMsg == "" {
			e.termMsg = "sim: step budget exhausted (livelock?)\n" + e.parDumpLocked()
			par.signalDrained()
		}
		tripped := e.termMsg != ""
		par.mu.Unlock()
		if tripped {
			panic(e.termMsg)
		}
	}
}

// arriveBarrierLocked parks p until the manager opens a window that
// includes p's clock. Called with par.mu held and p's new frontier
// already published; it unlocks and blocks, returning once released.
func (p *Proc) arriveBarrierLocked() {
	e := p.eng
	par := e.par
	par.barrier = append(par.barrier, p)
	par.live--
	e.parEvalLocked()
	if par.live == 0 {
		par.signalDrained()
	}
	par.mu.Unlock()
	<-p.grant
}

// parBlock is Block under the parallel scheduler. Blocking is itself an
// ordered step (the serial schedulers order a Block against every other
// step, so sleep/wakeup races must resolve identically here): the
// processor acquires the ordered token, publishes a parked frontier, and
// releases everything until a Wake re-admits it, at which point it
// re-acquires any ordered section it was inside.
func (p *Proc) parBlock() {
	e := p.eng
	par := e.par
	wrapped := false
	if p.parDepth == 0 {
		p.EnterOrdered(0)
		wrapped = true
	}
	par.mu.Lock()
	p.state = Blocked
	p.pub.Store(parkedPub)
	if par.running == p {
		par.running = nil
	}
	par.live--
	e.parEvalLocked()
	if par.live == 0 {
		par.signalDrained()
	}
	par.mu.Unlock()
	<-p.grant
	// Woken: the waker (or the window manager, if the wake time fell
	// beyond the window) has set state, clock, and frontier. Re-acquire
	// the ordered token before resuming the interrupted section.
	par.mu.Lock()
	p.enqueueLocked()
	e.parEvalLocked()
	par.mu.Unlock()
	<-p.grant
	if wrapped {
		p.ExitOrdered()
	}
}

// parWake is Wake under the parallel scheduler: an ordered step that
// re-admits the target at the waker's clock, either into the current
// window or parked at the barrier when the wake time lies beyond it.
func (p *Proc) parWake(target *Proc) {
	e := p.eng
	par := e.par
	wrapped := false
	if p.parDepth == 0 {
		p.EnterOrdered(0)
		wrapped = true
	}
	par.mu.Lock()
	if target.state == Blocked {
		target.state = Ready
		if target.now < p.now {
			target.now = p.now
		}
		target.pub.Store(target.now)
		if target.now < par.winEnd.Load() {
			par.live++
			target.grant <- struct{}{}
		} else {
			par.barrier = append(par.barrier, target)
		}
	}
	par.mu.Unlock()
	if wrapped {
		p.ExitOrdered()
	}
}

// parFinish runs deferred on each workload goroutine under the parallel
// scheduler: it captures a workload panic with its (clock, id) step key
// — the manager later selects the minimum-keyed panic, reproducing the
// serial schedulers' first-panic-in-schedule-order rule — and retires
// the processor from the window.
func (p *Proc) parFinish() {
	e := p.eng
	par := e.par
	if r := recover(); r != nil {
		p.panicVal = r
		p.panicAt = p.now
	}
	par.mu.Lock()
	p.state = Done
	p.pub.Store(parkedPub)
	p.parDepth = 0
	e.notDone--
	if par.running == p {
		par.running = nil
	}
	if p.panicVal != nil {
		par.aborted = true
	}
	par.live--
	e.parEvalLocked()
	if par.live == 0 {
		par.signalDrained()
	}
	par.mu.Unlock()
}
