package sim

import (
	"fmt"
	"testing"
)

// These tests pin the run-ahead fast path (DESIGN.md §12) to the retained
// reference scheduler (Config.Reference): both must produce exactly the
// same step sequence — the interleaving of (processor, clock) pairs across
// every scheduling point — on the same script. The engine serializes
// execution, so workloads may append to a shared trace without locking.

type step struct {
	id  int
	now uint64
}

func diffTraces(t *testing.T, fast, ref []step, label string) {
	t.Helper()
	n := len(fast)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if fast[i] != ref[i] {
			t.Fatalf("%s: schedules diverge at step %d: fast %+v, reference %+v", label, i, fast[i], ref[i])
		}
	}
	if len(fast) != len(ref) {
		t.Fatalf("%s: schedule lengths differ: fast %d, reference %d", label, len(fast), len(ref))
	}
}

// TestScheduleTraceEquivalenceFixedScript drives a handcrafted script
// through both schedulers: clock ties (ID tie-break), zero-cycle elapses,
// a block/wake chain, and quantum-boundary crossings.
func TestScheduleTraceEquivalenceFixedScript(t *testing.T) {
	run := func(reference bool) []step {
		e := New(Config{Procs: 3, Quantum: 64, Reference: reference})
		var trace []step
		at := func(p *Proc) { trace = append(trace, step{p.ID(), p.Now()}) }
		sleeper := e.Proc(2)
		e.Run([]func(*Proc){
			func(p *Proc) {
				at(p)
				p.Elapse(10) // tie with proc 1 at 10
				at(p)
				p.Elapse(0) // zero advance: tie-break must still hold
				at(p)
				p.Elapse(100) // crosses the quantum boundary at 64
				at(p)
				p.Wake(sleeper)
				p.Elapse(5)
				at(p)
			},
			func(p *Proc) {
				at(p)
				p.Elapse(10)
				at(p)
				p.Elapse(10)
				at(p)
				p.Elapse(200)
				at(p)
			},
			func(p *Proc) {
				at(p)
				p.Elapse(1)
				at(p)
				p.Block() // woken by proc 0 at cycle 110
				at(p)
				p.Elapse(3)
				at(p)
			},
		})
		return trace
	}
	diffTraces(t, run(false), run(true), "fixed script")
}

// TestScheduleTraceEquivalenceRandomScripts is the property test: seeded
// random Elapse/Block/Wake scripts must schedule identically under both
// implementations. Blocking is only chosen when another processor is
// neither done nor blocked (so someone can deliver the wakeup), and every
// finishing processor drains the sleeper list; both schedulers see the
// same shared state exactly because the schedules match — any divergence
// shows up as a trace mismatch.
func TestScheduleTraceEquivalenceRandomScripts(t *testing.T) {
	for _, procs := range []int{2, 3, 5, 8} {
		for _, quantum := range []uint64{0, 97} {
			for seed := uint64(1); seed <= 5; seed++ {
				label := fmt.Sprintf("procs=%d quantum=%d seed=%d", procs, quantum, seed)
				fast := runRandomScript(false, procs, quantum, seed)
				ref := runRandomScript(true, procs, quantum, seed)
				diffTraces(t, fast, ref, label)
				if len(fast) != procs*scriptOps {
					t.Fatalf("%s: trace has %d steps, want %d", label, len(fast), procs*scriptOps)
				}
			}
		}
	}
}

const scriptOps = 300

func runRandomScript(reference bool, procs int, quantum, seed uint64) []step {
	e := New(Config{Procs: procs, Quantum: quantum, Reference: reference})
	var trace []step
	var sleepers []*Proc
	active := procs // processors neither Done nor Blocked
	ws := make([]func(*Proc), procs)
	for i := 0; i < procs; i++ {
		r := NewRand(seed + uint64(i)*1_000_003)
		ws[i] = func(p *Proc) {
			for op := 0; op < scriptOps; op++ {
				trace = append(trace, step{p.ID(), p.Now()})
				switch k := r.Intn(10); {
				case k < 6:
					p.Elapse(uint64(r.Intn(50))) // includes 0: exercises ID tie-breaks
				case k < 8:
					if len(sleepers) > 0 {
						idx := r.Intn(len(sleepers))
						target := sleepers[idx]
						sleepers = append(sleepers[:idx], sleepers[idx+1:]...)
						active++
						p.Wake(target)
						p.Elapse(1)
					} else {
						p.Elapse(3)
					}
				default:
					if active > 1 {
						active--
						sleepers = append(sleepers, p)
						p.Block()
						// A waker removed us from sleepers and restored
						// the active count before calling Wake.
					} else {
						p.Elapse(7)
					}
				}
			}
			// Strand no one: the finishing processor wakes every sleeper.
			active--
			for len(sleepers) > 0 {
				target := sleepers[0]
				sleepers = sleepers[1:]
				active++
				p.Wake(target)
			}
		}
	}
	e.Run(ws)
	return trace
}

// TestReferenceSchedulerMatchesSimulatedResults double-checks the cheap
// invariants beyond the step trace: final clocks and step-visible state
// agree between the two schedulers.
func TestReferenceSchedulerFinalClocksMatch(t *testing.T) {
	run := func(reference bool) []uint64 {
		e := New(Config{Procs: 4, Quantum: 50, Reference: reference})
		ws := make([]func(*Proc), 4)
		for i := range ws {
			r := NewRand(uint64(i) + 42)
			ws[i] = func(p *Proc) {
				for n := 0; n < 500; n++ {
					p.Elapse(uint64(1 + r.Intn(9)))
				}
			}
		}
		e.Run(ws)
		clocks := make([]uint64, 4)
		for i, p := range e.Procs() {
			clocks[i] = p.Now()
		}
		return clocks
	}
	fast, ref := run(false), run(true)
	for i := range fast {
		if fast[i] != ref[i] {
			t.Fatalf("proc %d final clock: fast %d, reference %d", i, fast[i], ref[i])
		}
	}
}

// TestTwoPanickingWorkloadsFirstWins is the regression test for the panic
// capture rewrite: with two panicking workloads the engine must
// deterministically re-raise the panic of whichever processor panics
// first in schedule order, on both schedulers. Proc 1 reaches its panic
// at cycle 5 while proc 0 is still run-ahead at cycle 10, so "B" wins.
func TestTwoPanickingWorkloadsFirstWins(t *testing.T) {
	for _, reference := range []bool{false, true} {
		name := "fast"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != "B" {
					t.Fatalf("recovered %v, want the first-scheduled panic \"B\"", r)
				}
			}()
			e := New(Config{Procs: 2, Reference: reference})
			e.Run([]func(*Proc){
				func(p *Proc) { p.Elapse(10); panic("A") },
				func(p *Proc) { p.Elapse(5); panic("B") },
			})
		})
	}
}

// TestPanicBeforeFirstElapse covers a workload that panics without ever
// reaching a scheduling point.
func TestPanicBeforeFirstElapse(t *testing.T) {
	for _, reference := range []bool{false, true} {
		func() {
			defer func() {
				if r := recover(); r != "immediately" {
					t.Fatalf("reference=%v: recovered %v", reference, r)
				}
			}()
			e := New(Config{Procs: 2, Reference: reference})
			e.Run([]func(*Proc){
				func(p *Proc) { panic("immediately") },
				func(p *Proc) { p.Elapse(1) },
			})
		}()
	}
}

// TestReferenceSchedulerDeadlockAndLivelock pins the diagnostic panics on
// the reference path too.
func TestReferenceSchedulerDeadlockAndLivelock(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected deadlock panic")
			}
		}()
		e := New(Config{Procs: 2, Reference: true})
		e.Run([]func(*Proc){func(p *Proc) { p.Block() }, func(p *Proc) { p.Block() }})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected livelock panic")
			}
		}()
		e := New(Config{Procs: 1, MaxSteps: 100, Reference: true})
		e.Run([]func(*Proc){func(p *Proc) {
			for {
				p.Elapse(1)
			}
		}})
	}()
}

// TestLoneSpinnerTripsWatchdogOnFastPath: a single runnable processor
// never crosses the horizon, so the watchdog must still count (coarsely)
// on the inline path.
func TestLoneSpinnerTripsWatchdogOnFastPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic from the inline watchdog")
		}
	}()
	e := New(Config{Procs: 1, MaxSteps: 100})
	e.Run([]func(*Proc){func(p *Proc) {
		for {
			p.Elapse(1)
		}
	}})
}

// TestReadyHeapOrdering unit-tests the indexed heap directly.
func TestReadyHeapOrdering(t *testing.T) {
	e := New(Config{Procs: 7})
	clocks := []uint64{9, 3, 3, 12, 0, 7, 3}
	for i, p := range e.procs {
		p.now = clocks[i]
		p.heapIdx = -1
	}
	e.ready = e.ready[:0]
	for _, p := range e.procs {
		e.heapPush(p)
	}
	for i, p := range e.ready {
		if p.heapIdx != i {
			t.Fatalf("heap index out of sync at %d: %d", i, p.heapIdx)
		}
	}
	wantOrder := []int{4, 1, 2, 6, 5, 0, 3} // by (clock, id)
	for _, want := range wantOrder {
		got := e.heapPop()
		if got == nil || got.id != want {
			t.Fatalf("heapPop = %v, want proc %d", got, want)
		}
		if got.heapIdx != -1 {
			t.Fatalf("popped proc %d keeps heap index %d", got.id, got.heapIdx)
		}
	}
	if e.heapPop() != nil {
		t.Fatal("heap should be empty")
	}
}
