package sim

import (
	"fmt"
	"testing"
)

// These tests pin the run-ahead fast path (DESIGN.md §12) and the
// time-windowed parallel scheduler (DESIGN.md §14) to the retained
// reference scheduler (Config.Reference): all must produce exactly the
// same step sequence — the interleaving of (processor, clock) pairs across
// every scheduling point — on the same script. The serial schedulers
// serialize execution outright; under the parallel scheduler the scripts
// bracket every shared-state action in EnterOrdered/ExitOrdered (no-ops in
// the serial modes), which is exactly the contract the machine layers
// follow.

type step struct {
	id  int
	now uint64
}

// schedConfigs enumerates the scheduler implementations under test on top
// of base. The reference scheduler is the executable specification; the
// parallel entries include stress window widths (1 cycle forces a barrier
// crossing at nearly every elapse) because window width must never affect
// the schedule.
func schedConfigs(base Config) map[string]Config {
	ref := base
	ref.Reference = true
	par := base
	par.Parallel = true
	parW1 := par
	parW1.WindowCycles = 1
	parW7 := par
	parW7.WindowCycles = 7
	return map[string]Config{
		"fast":        base,
		"reference":   ref,
		"parallel":    par,
		"parallel-w1": parW1,
		"parallel-w7": parW7,
	}
}

func diffTraces(t *testing.T, got, ref []step, label string) {
	t.Helper()
	n := len(got)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if got[i] != ref[i] {
			t.Fatalf("%s: schedules diverge at step %d: got %+v, reference %+v", label, i, got[i], ref[i])
		}
	}
	if len(got) != len(ref) {
		t.Fatalf("%s: schedule lengths differ: got %d, reference %d", label, len(got), len(ref))
	}
}

// TestScheduleTraceEquivalenceFixedScript drives a handcrafted script
// through every scheduler: clock ties (ID tie-break), zero-cycle elapses,
// a block/wake chain, and quantum-boundary crossings.
func TestScheduleTraceEquivalenceFixedScript(t *testing.T) {
	run := func(cfg Config) []step {
		cfg.Procs, cfg.Quantum = 3, 64
		e := New(cfg)
		var trace []step
		at := func(p *Proc) {
			p.EnterOrdered(0)
			trace = append(trace, step{p.ID(), p.Now()})
			p.ExitOrdered()
		}
		sleeper := e.Proc(2)
		e.Run([]func(*Proc){
			func(p *Proc) {
				at(p)
				p.Elapse(10) // tie with proc 1 at 10
				at(p)
				p.Elapse(0) // zero advance: tie-break must still hold
				at(p)
				p.Elapse(100) // crosses the quantum boundary at 64
				at(p)
				p.Wake(sleeper)
				p.Elapse(5)
				at(p)
			},
			func(p *Proc) {
				at(p)
				p.Elapse(10)
				at(p)
				p.Elapse(10)
				at(p)
				p.Elapse(200)
				at(p)
			},
			func(p *Proc) {
				at(p)
				p.Elapse(1)
				at(p)
				p.Block() // woken by proc 0 at cycle 110
				at(p)
				p.Elapse(3)
				at(p)
			},
		})
		return trace
	}
	ref := run(Config{Reference: true})
	for name, cfg := range schedConfigs(Config{}) {
		diffTraces(t, run(cfg), ref, "fixed script/"+name)
	}
}

// TestScheduleTraceEquivalenceRandomScripts is the property test: seeded
// random Elapse/Block/Wake scripts must schedule identically under every
// implementation. Blocking is only chosen when another processor is
// neither done nor blocked (so someone can deliver the wakeup), and every
// finishing processor drains the sleeper list; all schedulers see the
// same shared state exactly because the schedules match — any divergence
// shows up as a trace mismatch.
func TestScheduleTraceEquivalenceRandomScripts(t *testing.T) {
	for _, procs := range []int{2, 3, 5, 8} {
		for _, quantum := range []uint64{0, 97} {
			for seed := uint64(1); seed <= 5; seed++ {
				base := fmt.Sprintf("procs=%d quantum=%d seed=%d", procs, quantum, seed)
				ref := runRandomScript(Config{Reference: true}, procs, quantum, seed)
				if len(ref) != procs*scriptOps {
					t.Fatalf("%s: trace has %d steps, want %d", base, len(ref), procs*scriptOps)
				}
				for name, cfg := range schedConfigs(Config{}) {
					got := runRandomScript(cfg, procs, quantum, seed)
					diffTraces(t, got, ref, base+"/"+name)
				}
			}
		}
	}
}

const scriptOps = 300

func runRandomScript(cfg Config, procs int, quantum, seed uint64) []step {
	cfg.Procs, cfg.Quantum = procs, quantum
	e := New(cfg)
	var trace []step
	var sleepers []*Proc
	active := procs // processors neither Done nor Blocked
	ws := make([]func(*Proc), procs)
	for i := 0; i < procs; i++ {
		r := NewRand(seed + uint64(i)*1_000_003)
		ws[i] = func(p *Proc) {
			for op := 0; op < scriptOps; op++ {
				p.EnterOrdered(0)
				trace = append(trace, step{p.ID(), p.Now()})
				switch k := r.Intn(10); {
				case k < 6:
					p.ExitOrdered()
					p.Elapse(uint64(r.Intn(50))) // includes 0: exercises ID tie-breaks
				case k < 8:
					if len(sleepers) > 0 {
						idx := r.Intn(len(sleepers))
						target := sleepers[idx]
						sleepers = append(sleepers[:idx], sleepers[idx+1:]...)
						active++
						p.Wake(target)
						p.ExitOrdered()
						p.Elapse(1)
					} else {
						p.ExitOrdered()
						p.Elapse(3)
					}
				default:
					if active > 1 {
						active--
						sleepers = append(sleepers, p)
						p.Block()
						// A waker removed us from sleepers and restored
						// the active count before calling Wake.
						p.ExitOrdered()
					} else {
						p.ExitOrdered()
						p.Elapse(7)
					}
				}
			}
			// Strand no one: the finishing processor wakes every sleeper.
			p.EnterOrdered(0)
			active--
			for len(sleepers) > 0 {
				target := sleepers[0]
				sleepers = sleepers[1:]
				active++
				p.Wake(target)
			}
			p.ExitOrdered()
		}
	}
	e.Run(ws)
	return trace
}

// TestSchedulerFinalClocksMatch double-checks the cheap invariants beyond
// the step trace: final clocks agree across every scheduler.
func TestSchedulerFinalClocksMatch(t *testing.T) {
	run := func(cfg Config) []uint64 {
		cfg.Procs, cfg.Quantum = 4, 50
		e := New(cfg)
		ws := make([]func(*Proc), 4)
		for i := range ws {
			r := NewRand(uint64(i) + 42)
			ws[i] = func(p *Proc) {
				for n := 0; n < 500; n++ {
					p.Elapse(uint64(1 + r.Intn(9)))
				}
			}
		}
		e.Run(ws)
		clocks := make([]uint64, 4)
		for i, p := range e.Procs() {
			clocks[i] = p.Now()
		}
		return clocks
	}
	ref := run(Config{Reference: true})
	for name, cfg := range schedConfigs(Config{}) {
		got := run(cfg)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s: proc %d final clock: got %d, reference %d", name, i, got[i], ref[i])
			}
		}
	}
}

// TestTwoPanickingWorkloadsFirstWins is the regression test for panic
// capture: with two panicking workloads the engine must deterministically
// re-raise the panic of whichever processor panics first in schedule
// order, on every scheduler. Proc 1 reaches its panic at cycle 5 while
// proc 0 is still run-ahead at cycle 10, so "B" wins.
func TestTwoPanickingWorkloadsFirstWins(t *testing.T) {
	for name, cfg := range schedConfigs(Config{Procs: 2}) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != "B" {
					t.Fatalf("recovered %v, want the first-scheduled panic \"B\"", r)
				}
			}()
			e := New(cfg)
			e.Run([]func(*Proc){
				func(p *Proc) { p.Elapse(10); panic("A") },
				func(p *Proc) { p.Elapse(5); panic("B") },
			})
		})
	}
}

// TestPanicBeforeFirstElapse covers a workload that panics without ever
// reaching a scheduling point.
func TestPanicBeforeFirstElapse(t *testing.T) {
	for name, cfg := range schedConfigs(Config{Procs: 2}) {
		func() {
			defer func() {
				if r := recover(); r != "immediately" {
					t.Fatalf("%s: recovered %v", name, r)
				}
			}()
			e := New(cfg)
			e.Run([]func(*Proc){
				func(p *Proc) { panic("immediately") },
				func(p *Proc) { p.Elapse(1) },
			})
		}()
	}
}

// TestSchedulerDeadlockAndLivelock pins the diagnostic panics on every
// scheduler.
func TestSchedulerDeadlockAndLivelock(t *testing.T) {
	for name, cfg := range schedConfigs(Config{}) {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected deadlock panic", name)
				}
			}()
			c := cfg
			c.Procs = 2
			e := New(c)
			e.Run([]func(*Proc){func(p *Proc) { p.Block() }, func(p *Proc) { p.Block() }})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected livelock panic", name)
				}
			}()
			c := cfg
			c.Procs, c.MaxSteps = 1, 100
			e := New(c)
			e.Run([]func(*Proc){func(p *Proc) {
				for {
					p.Elapse(1)
				}
			}})
		}()
	}
}

// TestLoneSpinnerTripsWatchdogOnFastPath: a single runnable processor
// never crosses the horizon, so the watchdog must still count (coarsely)
// on the inline path.
func TestLoneSpinnerTripsWatchdogOnFastPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic from the inline watchdog")
		}
	}()
	e := New(Config{Procs: 1, MaxSteps: 100})
	e.Run([]func(*Proc){func(p *Proc) {
		for {
			p.Elapse(1)
		}
	}})
}

// TestReadyHeapOrdering unit-tests the indexed heap directly.
func TestReadyHeapOrdering(t *testing.T) {
	e := New(Config{Procs: 7})
	clocks := []uint64{9, 3, 3, 12, 0, 7, 3}
	for i, p := range e.procs {
		p.now = clocks[i]
		p.heapIdx = -1
	}
	e.ready = e.ready[:0]
	for _, p := range e.procs {
		e.heapPush(p)
	}
	for i, p := range e.ready {
		if p.heapIdx != i {
			t.Fatalf("heap index out of sync at %d: %d", i, p.heapIdx)
		}
	}
	wantOrder := []int{4, 1, 2, 6, 5, 0, 3} // by (clock, id)
	for _, want := range wantOrder {
		got := e.heapPop()
		if got == nil || got.id != want {
			t.Fatalf("heapPop = %v, want proc %d", got, want)
		}
		if got.heapIdx != -1 {
			t.Fatalf("popped proc %d keeps heap index %d", got.id, got.heapIdx)
		}
	}
	if e.heapPop() != nil {
		t.Fatal("heap should be empty")
	}
}
