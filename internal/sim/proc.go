package sim

import "fmt"

// Proc is one simulated processor. All methods must be called from the
// workload goroutine that the engine started for this processor (except
// Wake, which is called by whichever processor is currently running).
type Proc struct {
	id    int
	eng   *Engine
	now   uint64
	state State
	note  string // diagnostic label shown in deadlock/livelock dumps

	grant chan struct{}
	yield chan struct{}

	quantum      uint64
	nextQuantum  uint64
	interruptFns []func()
	fastSkips    uint32
}

// ID returns the processor number.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's local clock in cycles.
func (p *Proc) Now() uint64 { return p.now }

// SetNote attaches a diagnostic label that appears in engine state dumps.
func (p *Proc) SetNote(format string, args ...any) {
	p.note = fmt.Sprintf(format, args...)
}

// OnInterrupt registers fn to run (on the workload goroutine, during
// Elapse) every time this processor's clock crosses a scheduling-quantum
// boundary. The TM layers use this to model timer-interrupt aborts.
func (p *Proc) OnInterrupt(fn func()) {
	p.interruptFns = append(p.interruptFns, fn)
}

// Elapse advances the local clock by cycles and yields to the engine so a
// processor with a smaller clock can run. It fires timer-interrupt hooks
// for every quantum boundary crossed.
func (p *Proc) Elapse(cycles uint64) {
	p.now += cycles
	if p.quantum > 0 {
		if p.nextQuantum == 0 {
			p.nextQuantum = p.quantum
		}
		for p.now >= p.nextQuantum {
			p.nextQuantum += p.quantum
			for _, fn := range p.interruptFns {
				fn()
			}
		}
	}
	p.reschedule()
}

// Block deschedules the processor until another processor calls Wake. The
// caller resumes inside Block once woken; no cycles elapse while blocked
// (the waker's Wake advances the sleeper's clock to the wake time).
func (p *Proc) Block() {
	p.state = Blocked
	p.reschedule()
}

// Wake makes a blocked processor runnable again, advancing its clock to
// the waker's current time (it cannot resume in the past). Waking a
// processor that is not blocked is a no-op, so wakeups can race benignly
// with the sleeper deciding to block.
func (p *Proc) Wake(target *Proc) {
	if target.state != Blocked {
		return
	}
	target.state = Ready
	if target.now < p.now {
		target.now = p.now
	}
}

// reschedule hands control back to the engine unless this processor would
// be scheduled next anyway (a pure-performance fast path that preserves
// the engine's scheduling order exactly: we skip the handoff only when no
// other ready processor precedes us in the engine's ordering).
func (p *Proc) reschedule() {
	if p.state == Ready && !p.otherReadyFirst() {
		// Yield to the engine occasionally anyway so the livelock
		// watchdog keeps counting while a lone processor spins.
		p.fastSkips++
		if p.fastSkips&1023 != 0 {
			return
		}
	}
	p.yield <- struct{}{}
	<-p.grant
}

func (p *Proc) otherReadyFirst() bool {
	for _, q := range p.eng.procs {
		if q == p || q.state != Ready {
			continue
		}
		if q.now < p.now || (q.now == p.now && q.id < p.id) {
			return true
		}
	}
	return false
}
