package sim

import (
	"fmt"
	"sync/atomic"
)

// Proc is one simulated processor. All methods must be called from the
// workload goroutine that the engine started for this processor (except
// Wake, which is called by whichever processor is currently running).
// Under the serial schedulers that discipline alone makes every method
// race-free; under the parallel scheduler, methods that touch another
// processor's state (Wake) or shared engine state additionally
// participate in ordered sections, so the observable schedule stays
// bit-identical across all three schedulers.
type Proc struct {
	id    int
	eng   *Engine
	now   uint64
	state State
	note  string // diagnostic label shown in deadlock/livelock dumps

	heapIdx  int    // position in the engine's ready heap, -1 when absent
	panicVal any    // captured workload panic; written only by this proc's goroutine
	panicAt  uint64 // clock at panic capture (parallel panic-winner key)

	grant chan struct{}
	yield chan struct{} // reference scheduler only

	quantum      uint64
	nextQuantum  uint64
	interruptFns []func()
	fastSkips    uint32

	// Parallel-scheduler state (DESIGN.md §14). pub is the published
	// frontier other processors order against; parDepth tracks ordered-
	// section nesting; parLine/parShard locate this processor in the
	// ordered-entry waiter shards while queued.
	pub      atomic.Uint64
	parDepth int
	parLine  uint64
	parShard int
}

// ID returns the processor number. It is immutable, so the read is
// proc-local and needs no ordered section.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's local clock in cycles. The clock is
// proc-local (only this processor's goroutine advances it mid-run), so
// the read needs no ordered section.
func (p *Proc) Now() uint64 { return p.now }

// SetNote attaches a diagnostic label that appears in engine state
// dumps. The note is proc-local; it never influences the schedule.
func (p *Proc) SetNote(format string, args ...any) {
	p.note = fmt.Sprintf(format, args...)
}

// OnInterrupt registers fn to run (on the workload goroutine, during
// Elapse) every time this processor's clock crosses a scheduling-quantum
// boundary. The TM layers use this to model timer-interrupt aborts.
func (p *Proc) OnInterrupt(fn func()) {
	p.interruptFns = append(p.interruptFns, fn)
}

// Elapse advances the local clock by cycles and yields to the engine so a
// processor with a smaller clock can run. It fires timer-interrupt hooks
// for every quantum boundary crossed. Elapse is the only scheduling
// point: the engine's deterministic (clock, id) order is defined over
// the steps Elapse creates, identically under all three schedulers.
func (p *Proc) Elapse(cycles uint64) {
	p.now += cycles
	if p.eng.cfg.Parallel {
		p.parElapse() // fires quantum hooks inside an ordered section
		return
	}
	if p.quantum > 0 {
		if p.nextQuantum == 0 {
			p.nextQuantum = p.quantum
		}
		for p.now >= p.nextQuantum {
			p.nextQuantum += p.quantum
			for _, fn := range p.interruptFns {
				fn()
			}
		}
	}
	e := p.eng
	if e.cfg.Reference {
		p.refYield()
		return
	}
	// Run-ahead fast path: while this processor stays strictly before the
	// horizon in (clock, id) order it is still the engine's unique next
	// pick, so it keeps executing inline with zero channel operations.
	// (The horizon can only have moved earlier through this processor's
	// own actions — Wake, interrupt hooks — all of which happened above or
	// on a previous slow path, so the comparison is always current.)
	if h := e.horizon(); h != nil && schedBefore(h, p) {
		p.yieldNext()
		return
	}
	// Coarse inline step accounting keeps the livelock watchdog counting
	// while a lone runnable processor spins below the horizon.
	p.fastSkips++
	if p.fastSkips&1023 == 0 {
		e.steps++
		if e.steps > e.cfg.MaxSteps {
			panic("sim: step budget exhausted (livelock?)\n" + e.dump())
		}
	}
}

// Block deschedules the processor until another processor calls Wake. The
// caller resumes inside Block once woken; no cycles elapse while blocked
// (the waker's Wake advances the sleeper's clock to the wake time).
func (p *Proc) Block() {
	if p.eng.cfg.Parallel {
		p.parBlock()
		return
	}
	p.state = Blocked
	if p.eng.cfg.Reference {
		p.refYield()
		return
	}
	p.yieldNext()
}

// Wake makes a blocked processor runnable again, advancing its clock to
// the waker's current time (it cannot resume in the past). Waking a
// processor that is not blocked is a no-op, so wakeups compose benignly
// with the sleeper deciding to block. Wake mutates the target's state, so
// under the parallel scheduler it runs inside an ordered section
// (parWake), keeping the wake deterministic in (clock, id) step order.
// On the fast path the woken processor
// enters the ready heap, which lowers the horizon so the waker yields at
// its next Elapse if the sleeper now precedes it.
func (p *Proc) Wake(target *Proc) {
	if p.eng.cfg.Parallel {
		p.parWake(target)
		return
	}
	if target.state != Blocked {
		return
	}
	target.state = Ready
	if target.now < p.now {
		target.now = p.now
	}
	if !p.eng.cfg.Reference {
		p.eng.heapPush(target)
	}
}

// yieldNext is the scheduling slow path: hand the execution token to the
// next processor in (clock, id) order, or terminate the run. Called when
// the executing processor crosses the horizon, blocks, or finishes.
func (p *Proc) yieldNext() {
	e := p.eng
	e.steps++
	if e.steps > e.cfg.MaxSteps {
		msg := "sim: step budget exhausted (livelock?)\n" + e.dump()
		if p.state == Done {
			// Called from finish's defer: a panic here would escape the
			// goroutine uncaught, so route the diagnostic through Run.
			e.termMsg = msg
			close(e.doneCh)
			return
		}
		panic(msg)
	}
	// Latch the departing state now: the moment the token is handed to
	// next, that processor may Wake this one, writing p.state and p.now
	// concurrently with anything we still read here.
	parked := p.state != Done
	if p.state == Ready {
		e.heapPush(p)
	}
	next := e.heapPop()
	switch {
	case next == p:
		// No other ready processor precedes us after all; keep running.
		return
	case next != nil:
		next.grant <- struct{}{}
	case e.notDone == 0:
		close(e.doneCh) // every workload returned
		return
	default:
		// No runnable processor but unfinished ones remain: deadlock.
		e.termMsg = "sim: deadlock — all unfinished processors are blocked\n" + e.dump()
		close(e.doneCh)
		// fall through to park this (blocked) processor forever
	}
	if parked {
		<-p.grant
	}
}

// finish runs deferred on the workload goroutine. It captures a workload
// panic into the per-processor slot (each goroutine writes only its own,
// so capture is race-free), marks the processor Done, and either
// terminates the run — the first panicking processor in schedule order
// wins, deterministically, because it holds the execution token and no
// other processor resumes afterwards — or hands the token onward.
func (p *Proc) finish() {
	e := p.eng
	if r := recover(); r != nil {
		p.panicVal = r
	}
	p.state = Done
	e.notDone--
	if p.panicVal != nil {
		e.panicked = p.panicVal
		close(e.doneCh)
		return
	}
	p.yieldNext()
}

// refYield is the reference scheduler's unconditional handoff to the
// engine goroutine.
func (p *Proc) refYield() {
	p.yield <- struct{}{}
	<-p.grant
}
