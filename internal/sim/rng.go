package sim

// Rand is a small deterministic xorshift64* generator. Every source of
// randomness in the simulator (workload inputs, backoff jitter, failover
// coin flips) draws from explicitly seeded Rand instances so that runs are
// bit-reproducible.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped, since an
// all-zero xorshift state is absorbing).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random value. The sequence is a pure
// function of the seed, so draw order determines the values; callers
// sharing a Rand across processors must draw inside ordered sections
// (machine.Machine.Rand's accessors arrange this).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n), consuming one Uint64 draw from the
// seeded sequence. It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1), consuming one Uint64 draw from the
// seeded sequence.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator, useful for giving each simulated
// thread its own proc-local stream without sharing state (and therefore
// without needing ordered sections to draw).
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xD1B54A32D192ED03)
}
