package sim

import "testing"

// BenchmarkElapseSingleProc measures the engine's fast path (no handoff).
func BenchmarkElapseSingleProc(b *testing.B) {
	e := New(Config{Procs: 1, MaxSteps: 1 << 62})
	e.Run([]func(*Proc){func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Elapse(1)
		}
	}})
}

// BenchmarkElapseTwoProcs measures the full scheduling handoff.
func BenchmarkElapseTwoProcs(b *testing.B) {
	e := New(Config{Procs: 2, MaxSteps: 1 << 62})
	body := func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Elapse(1)
		}
	}
	b.ResetTimer()
	e.Run([]func(*Proc){body, body})
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
