package sim

import (
	"fmt"
	"testing"
)

// BenchmarkElapseSingleProc measures the engine's fast path (no handoff).
func BenchmarkElapseSingleProc(b *testing.B) {
	e := New(Config{Procs: 1, MaxSteps: 1 << 62})
	e.Run([]func(*Proc){func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Elapse(1)
		}
	}})
}

// BenchmarkElapseTwoProcs measures the full scheduling handoff.
func BenchmarkElapseTwoProcs(b *testing.B) {
	e := New(Config{Procs: 2, MaxSteps: 1 << 62})
	body := func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Elapse(1)
		}
	}
	b.ResetTimer()
	e.Run([]func(*Proc){body, body})
}

// BenchmarkElapseFastPath measures run-ahead Elapse calls that never
// cross the horizon: many procs exist, but one runs far behind the rest,
// so every call stays inline (no goroutine handoff).
func BenchmarkElapseFastPath(b *testing.B) {
	e := New(Config{Procs: 4, MaxSteps: 1 << 62})
	parked := func(p *Proc) {
		p.Elapse(1 << 40) // park far in the future
	}
	e.Run([]func(*Proc){
		func(p *Proc) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Elapse(1)
			}
			b.StopTimer()
			p.Elapse(1 << 41) // let the parked procs drain
		},
		parked, parked, parked,
	})
}

// BenchmarkElapseContended measures the worst case for the scheduler: all
// procs advance in lockstep, so every Elapse crosses the horizon and pays
// a heap push/pop plus a goroutine handoff.
func BenchmarkElapseContended(b *testing.B) {
	for _, procs := range []int{2, 8, 32} {
		b.Run(benchName(procs), func(b *testing.B) {
			e := New(Config{Procs: procs, MaxSteps: 1 << 62})
			ws := make([]func(*Proc), procs)
			for i := range ws {
				ws[i] = func(p *Proc) {
					for n := 0; n < b.N; n++ {
						p.Elapse(1)
					}
				}
			}
			b.ResetTimer()
			e.Run(ws)
		})
	}
}

// BenchmarkElapseReference is the same contended workload on the retained
// reference scheduler, for before/after comparison.
func BenchmarkElapseReference(b *testing.B) {
	for _, procs := range []int{2, 8} {
		b.Run(benchName(procs), func(b *testing.B) {
			e := New(Config{Procs: procs, MaxSteps: 1 << 62, Reference: true})
			ws := make([]func(*Proc), procs)
			for i := range ws {
				ws[i] = func(p *Proc) {
					for n := 0; n < b.N; n++ {
						p.Elapse(1)
					}
				}
			}
			b.ResetTimer()
			e.Run(ws)
		})
	}
}

func benchName(procs int) string { return fmt.Sprintf("procs=%d", procs) }

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
