package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(9)
	child := parent.Fork()
	// Distinct streams: the pair should not be identical over a window.
	same := true
	for i := 0; i < 100; i++ {
		if parent.Uint64() != child.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked generator mirrors its parent")
	}
}

func TestUint64Distribution(t *testing.T) {
	// Coarse sanity check: each of the top 4 bit-pairs should appear.
	r := NewRand(123)
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		seen[r.Uint64()>>62] = true
	}
	if len(seen) != 4 {
		t.Fatalf("top bit-pairs seen = %d, want 4", len(seen))
	}
}
