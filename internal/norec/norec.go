// Package norec implements HybridNOrec (Dalessandro, Carouge, White,
// Dice, Scott, Spear), the value-validating hybrid the paper's related
// work positions against HyTM/PhTM-style designs (§5's evaluation axis;
// ROADMAP head-to-head): best-effort hardware transactions over an
// uninstrumented fast path, with a NOrec software fallback whose commits
// serialize through a single seqlock and validate by value instead of by
// per-stripe locks.
//
// Two commit counters coordinate the paths:
//
//   - the seqlock (odd = a software write-back is in progress) doubles as
//     the STM→STM notification counter — every software commit advances
//     it by two;
//   - a separate HTM commit counter is bumped transactionally by every
//     writing hardware transaction, so a hardware commit invalidates
//     software snapshots atomically with its own commit.
//
// Hardware transactions subscribe to the seqlock by reading it
// transactionally at begin: the software committer's lock-acquisition
// write then aborts every in-flight hardware transaction through
// ordinary coherence, so hardware never observes a torn write-back.
// Software readers log (address, value) pairs and revalidate the whole
// log whenever either counter moves; write-back is a lazy redo log
// applied under the seqlock.
//
// Both counters live at simulated addresses so the polling and
// subscription traffic is charged like any other memory traffic. The
// exemplar's RETRY template knob maps onto Config.MaxHTMRetries and its
// CM knob onto the cm.Spec policy layer (cm.Tunable).
package norec

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

// Config carries HybridNOrec parameters and cost constants.
type Config struct {
	BeginCycles    uint64
	BarrierCycles  uint64 // software read/write barrier logic
	ValidateCycles uint64 // value-log validation setup, per validation pass
	CommitCycles   uint64
	PerWriteCycles uint64 // redo-log write-back logic per entry
	// LockSpinCycles is charged per poll while waiting out a concurrent
	// software write-back (the seqlock is odd).
	LockSpinCycles uint64
	// MaxHTMRetries bounds hardware retries of transient aborts before
	// failing over to the software path (the exemplar's RETRY knob).
	MaxHTMRetries int
	// BackoffBase is the exponential-backoff unit between attempts. Zero
	// selects cm.DefaultBase (64).
	BackoffBase uint64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		BeginCycles:    10,
		BarrierCycles:  6,
		ValidateCycles: 6,
		CommitCycles:   16,
		PerWriteCycles: 8,
		LockSpinCycles: 20,
		MaxHTMRetries:  8,
	}
}

// System implements tm.System.
type System struct {
	m     *machine.Machine
	cfg   Config
	stats tm.Stats

	// lockAddr holds the seqlock / software commit counter; htmAddr holds
	// the hardware commit counter. Each gets its own cache line so the
	// hardware subscription (lockAddr only) is not invalidated by
	// hardware-counter bumps.
	lockAddr uint64
	htmAddr  uint64

	// Host-side shadow of the protocol state (safe: tm.Ordered brackets
	// every Exec, so system state is only touched inside ordered
	// sections). seq mirrors the seqlock value; lockOwner is the
	// processor holding it (-1 when free); lastWriter is the processor
	// whose commit most recently advanced either counter (-1 when none),
	// used to attribute value-validation failures.
	seq        uint64
	lockOwner  int
	lastWriter int

	backoff cm.Spec
	cmgr    *cm.Manager
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so cfg.BackoffBase tweaks
// after New still take effect).
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.cfg.BackoffBase)
	}
	return s.cmgr
}

// New builds a HybridNOrec instance over the machine.
func New(m *machine.Machine, cfg Config) *System {
	return &System{
		m:          m,
		cfg:        cfg,
		lockAddr:   m.Mem.Sbrk(mem.LineBytes),
		htmAddr:    m.Mem.Sbrk(mem.LineBytes),
		lockOwner:  -1,
		lastWriter: -1,
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "hybrid-norec" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{s: s, p: p, u: btm.New(p)})
}

// logEntry is one value-log record: the value this transaction observed
// at the address. Validation re-reads the address and compares values —
// NOrec's conflict detection has no per-location metadata at all.
type logEntry struct {
	addr uint64
	val  uint64
}

type exec struct {
	s *System
	p *machine.Proc
	u *btm.Unit

	// Hardware-attempt state.
	hwWrote bool

	// Software-attempt state.
	lockSnap  uint64 // seqlock sample the value log is valid against
	htmSnap   uint64 // hardware-counter sample ditto
	valuelog  []logEntry
	redo      map[uint64]uint64 // addr → buffered value (lazy versioning)
	redoOrder []uint64          // insertion order, for deterministic write-back
	nestSaves []norecSave
	nestUndo  []redoUndo

	onCommit []func()
}

// norecSave is a closed-nest savepoint over the speculative state.
type norecSave struct {
	logLen, redoLen, undoLen int
}

// redoUndo records a redo-log overwrite made inside a nest.
type redoUndo struct {
	addr    uint64
	hadPrev bool
	prev    uint64
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.p }

// Load / Store: HybridNOrec is weakly atomic; non-transactional accesses
// are uninstrumented and never consult the counters.
func (e *exec) Load(addr uint64) uint64 {
	v, out := e.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic("norec: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic("norec: write outcome " + out.Kind.String())
	}
}

// Atomic implements tm.Exec: hardware attempts with the seqlock
// subscription, failing over to the NOrec software path on capacity,
// persistent conflicts, retry requests, or policy escalation.
func (e *exec) Atomic(body func(tm.Tx)) {
	age := e.s.m.NextAge()
	stats := &e.s.stats
	cmgr := e.s.CM()
	p := e.p
	p.TxLifeBegin()
	htmFails := 0
	aborts := 0
	for {
		p.TxLifeAttempt(machine.PathHTM)
		reason, retryReq, committed := e.tryHW(age, body)
		if committed {
			stats.HWCommits++
			p.TxLifeCommit(machine.PathHTM)
			cmgr.TxDone(age)
			for _, f := range e.onCommit {
				f()
			}
			return
		}
		p.TxLifeAbort(machine.PathHTM, reason)
		if retryReq {
			// Hardware cannot wait for a condition: fail over to the
			// software path, where retry is modeled as polling.
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		}
		switch reason {
		case machine.AbortOverflow, machine.AbortSyscall, machine.AbortIO,
			machine.AbortException, machine.AbortNesting:
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		case machine.AbortPageFault:
			cmgr.PageFaultStall(p)
			continue
		default:
			// Conflict (including the seqlock subscription firing during
			// a software write-back): retry in hardware, bounded.
			htmFails++
			if htmFails >= e.s.cfg.MaxHTMRetries {
				e.failover(age, body)
				cmgr.TxDone(age)
				return
			}
		}
		aborts++ // the policy clamps the shift (saturating counter)
		stats.HWRetries++
		if cmgr.OnAbort(p, age, aborts, reason) != cm.EscalateNone {
			// Starving per the policy: serialize through software early.
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		}
	}
}

// tryHW runs one hardware attempt. The transactional seqlock read at
// begin is the subscription: the line stays in the hardware read set, so
// a software committer's lock-acquisition write aborts this transaction
// through coherence before any torn write-back state is visible.
func (e *exec) tryHW(age uint64, body func(tm.Tx)) (machine.AbortReason, bool, bool) {
	e.onCommit = e.onCommit[:0]
	e.hwWrote = false
	if !e.u.Begin(age) {
		return machine.AbortNesting, false, false
	}
	lv, out := e.u.Load(e.s.lockAddr)
	if out.Kind == machine.HWAborted {
		return out.Reason, false, false
	}
	if lv&1 == 1 {
		// A software write-back is in progress: abort (do not stall) and
		// blame the lock holder.
		e.u.AbortAttributed(machine.AbortConflict, e.s.lockOwner, e.s.lockAddr)
		return machine.AbortConflict, false, false
	}
	reason, retryReq, aborted := tm.Catch(func() { body(hwTx{e}) })
	if aborted {
		return reason, retryReq, false
	}
	if e.hwWrote {
		// Bump the hardware commit counter inside the transaction, so the
		// notification to software snapshots commits atomically with the
		// data. Read-only hardware transactions skip the bump (they
		// invalidate nobody) — see DESIGN.md §16 for this divergence from
		// the exemplar.
		hv, out := e.u.Load(e.s.htmAddr)
		if out.Kind == machine.HWAborted {
			return out.Reason, false, false
		}
		if out := e.u.Store(e.s.htmAddr, hv+1); out.Kind == machine.HWAborted {
			return out.Reason, false, false
		}
	}
	if out := e.u.End(); out.Kind == machine.HWAborted {
		return out.Reason, false, false
	}
	if e.hwWrote {
		e.s.lastWriter = e.p.ID()
	}
	return machine.AbortNone, false, true
}

func (e *exec) failover(age uint64, body func(tm.Tx)) {
	e.s.stats.Failovers++
	e.runSW(age, body)
}

// runSW is the NOrec software path: snapshot the counters, speculate
// against a redo log and value log, then commit under the seqlock.
func (e *exec) runSW(age uint64, body func(tm.Tx)) {
	cmgr := e.s.CM()
	path := machine.PathSW
	attempts := 0
	for {
		e.p.TxLifeAttempt(path)
		e.swBegin(age)
		reason, retryReq, aborted := tm.Catch(func() { body(swTx{e}) })
		if !aborted {
			if e.swCommit() {
				e.p.SetSTM(false, 0)
				e.s.stats.SWCommits++
				e.p.RecordSWCommit()
				e.p.TxLifeCommit(path)
				for _, f := range e.onCommit {
					f()
				}
				return
			}
			aborted = true
			reason = machine.AbortConflict
		}
		e.p.SetSTM(false, 0)
		if retryReq {
			// Poll-based retry emulation (NOrec has no native waiting).
			e.s.stats.Retries++
			e.p.TxLifeRetryWait()
			cmgr.RetryPoll(e.p)
			continue
		}
		e.s.stats.SWAborts++
		e.p.TxLifeAbort(path, reason)
		attempts++ // the policy clamps the shift (saturating counter)
		if cmgr.OnAbort(e.p, age, attempts, reason) != cm.EscalateNone {
			// Starving per the policy: with no other fallback, take the
			// global serialization token (released at commit).
			cmgr.AcquireToken(e.p, age)
			path = machine.PathFallback
		}
	}
}

func (e *exec) swBegin(age uint64) {
	// Wait out any in-progress write-back, then snapshot both counters:
	// the value log is valid exactly as long as neither moves.
	for {
		lv := e.ntRead(e.s.lockAddr)
		if lv&1 == 0 {
			e.lockSnap = lv
			break
		}
		e.s.stats.SWStalls++
		e.p.Elapse(e.s.cfg.LockSpinCycles)
	}
	e.htmSnap = e.ntRead(e.s.htmAddr)
	if e.redo == nil {
		e.redo = make(map[uint64]uint64)
	} else {
		clear(e.redo)
	}
	e.redoOrder = e.redoOrder[:0]
	e.valuelog = e.valuelog[:0]
	e.onCommit = e.onCommit[:0]
	e.nestSaves = e.nestSaves[:0]
	e.nestUndo = e.nestUndo[:0]
	e.p.SetSTM(true, age)
	e.p.Elapse(e.s.cfg.BeginCycles)
}

func (e *exec) ntRead(addr uint64) uint64 {
	v, out := e.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic("norec: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) ntWrite(addr, val uint64) {
	if out := e.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic("norec: write outcome " + out.Kind.String())
	}
}

// swLoad is the NOrec read barrier: redo-log hit, else read the value
// and poll both counters — if either moved since the snapshot, the whole
// value log revalidates before the read is accepted and logged.
func (e *exec) swLoad(addr uint64) uint64 {
	if v, ok := e.redo[addr]; ok {
		return v
	}
	e.p.Elapse(e.s.cfg.BarrierCycles)
	v := e.ntRead(addr)
	for e.ntRead(e.s.lockAddr) != e.lockSnap || e.ntRead(e.s.htmAddr) != e.htmSnap {
		e.revalidate()
		v = e.ntRead(addr)
	}
	e.valuelog = append(e.valuelog, logEntry{addr: addr, val: v})
	return v
}

// revalidate re-reads every value-log entry against memory once the
// seqlock is quiescent, unwinding with a conflict abort on the first
// value mismatch; on success the snapshots advance to the new counter
// values (NOrec's snapshot extension).
func (e *exec) revalidate() {
	for {
		lv := e.ntRead(e.s.lockAddr)
		if lv&1 == 1 {
			e.s.stats.SWStalls++
			e.p.Elapse(e.s.cfg.LockSpinCycles)
			continue
		}
		hv := e.ntRead(e.s.htmAddr)
		e.p.Elapse(e.s.cfg.ValidateCycles)
		for _, ent := range e.valuelog {
			if e.ntRead(ent.addr) != ent.val {
				e.abortConflict(ent.addr)
			}
		}
		// The log only stays valid if no commit landed while we re-read.
		if e.ntRead(e.s.lockAddr) == lv && e.ntRead(e.s.htmAddr) == hv {
			e.lockSnap, e.htmSnap = lv, hv
			return
		}
	}
}

// abortConflict records a who-aborted-whom edge against the most recent
// committer (value-based validation has no per-location metadata naming
// the writer; the last committed writer is the transaction whose
// write-back invalidated us) and unwinds.
func (e *exec) abortConflict(addr uint64) {
	e.p.RecordSWAbortBy(e.s.lastWriter, machine.AbortConflict,
		mem.LineAddr(mem.LineOf(addr)), true)
	tm.Unwind(machine.AbortConflict)
}

func (e *exec) swStore(addr, val uint64) {
	e.p.Elapse(e.s.cfg.BarrierCycles)
	prev, seen := e.redo[addr]
	if !seen {
		e.redoOrder = append(e.redoOrder, addr)
	}
	if len(e.nestSaves) > 0 {
		e.nestUndo = append(e.nestUndo, redoUndo{addr: addr, hadPrev: seen, prev: prev})
	}
	e.redo[addr] = val
}

// swCommit implements the NOrec commit protocol. Returns false on
// value-validation failure (the transaction retries).
func (e *exec) swCommit() bool {
	if len(e.redoOrder) == 0 {
		// Read-only fast path: reads were validated as they happened.
		e.p.Elapse(e.s.cfg.CommitCycles)
		return true
	}
	// 1. Acquire the seqlock (odd = held). The NT write invalidates the
	// line in every subscribed hardware transaction's read set, aborting
	// them before the write-back begins.
	for {
		lv := e.ntRead(e.s.lockAddr)
		if lv&1 == 0 && e.s.lockOwner == -1 {
			break
		}
		e.s.stats.SWStalls++
		e.p.Elapse(e.s.cfg.LockSpinCycles)
	}
	pre := e.s.seq
	e.s.lockOwner = e.p.ID()
	e.s.seq++
	e.ntWrite(e.s.lockAddr, e.s.seq)
	// 2. Validate if anything committed since the snapshot.
	hv := e.ntRead(e.s.htmAddr)
	if pre != e.lockSnap || hv != e.htmSnap {
		e.p.Elapse(e.s.cfg.ValidateCycles)
		for _, ent := range e.valuelog {
			if e.ntRead(ent.addr) != ent.val {
				e.releaseLock()
				e.p.RecordSWAbortBy(e.s.lastWriter, machine.AbortConflict,
					mem.LineAddr(mem.LineOf(ent.addr)), true)
				return false
			}
		}
	}
	// 3. Write back the redo log (in insertion order, keeping the
	// simulation deterministic). Each NT write also kills any hardware
	// transaction speculating on the line.
	for _, addr := range e.redoOrder {
		e.ntWrite(addr, e.redo[addr])
		e.p.Elapse(e.s.cfg.PerWriteCycles)
	}
	// 4. Release the seqlock (back to even = one software commit
	// notification) and become the attribution target for the values we
	// just changed.
	e.releaseLock()
	e.s.lastWriter = e.p.ID()
	e.p.Elapse(e.s.cfg.CommitCycles)
	return true
}

func (e *exec) releaseLock() {
	e.s.seq++
	e.ntWrite(e.s.lockAddr, e.s.seq)
	e.s.lockOwner = -1
}

// beginNest/endNest/abortNest implement closed nesting over the redo log
// (lazy versioning makes partial abort a pure buffer operation; the
// value log never rolls back — reads stay validated regardless).
func (e *exec) beginNest() {
	e.nestSaves = append(e.nestSaves, norecSave{
		logLen: len(e.valuelog), redoLen: len(e.redoOrder), undoLen: len(e.nestUndo),
	})
	e.p.Elapse(4)
}

func (e *exec) endNest() {
	e.nestSaves = e.nestSaves[:len(e.nestSaves)-1]
	e.p.Elapse(2)
}

func (e *exec) abortNest() {
	sv := e.nestSaves[len(e.nestSaves)-1]
	e.nestSaves = e.nestSaves[:len(e.nestSaves)-1]
	for i := len(e.nestUndo) - 1; i >= sv.undoLen; i-- {
		u := e.nestUndo[i]
		if u.hadPrev {
			e.redo[u.addr] = u.prev
		} else {
			delete(e.redo, u.addr)
		}
	}
	e.nestUndo = e.nestUndo[:sv.undoLen]
	e.redoOrder = e.redoOrder[:sv.redoLen]
	e.valuelog = e.valuelog[:sv.logLen]
}

// hwTx is the uninstrumented hardware handle: plain transactional
// accesses, with the seqlock subscription (taken at begin) standing in
// for all software-path coordination.
type hwTx struct{ e *exec }

var _ tm.Tx = hwTx{}

func (h hwTx) Load(addr uint64) uint64 {
	v, out := h.e.u.Load(addr)
	switch out.Kind {
	case machine.OK:
		return v
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("norec: load outcome " + out.Kind.String())
}

func (h hwTx) Store(addr, val uint64) {
	out := h.e.u.Store(addr, val)
	switch out.Kind {
	case machine.OK:
		h.e.hwWrote = true
		return
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("norec: store outcome " + out.Kind.String())
}

func (h hwTx) OnCommit(f func()) { h.e.onCommit = append(h.e.onCommit, f) }

func (h hwTx) Abort() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx: hardware transactions flatten closed nesting
// (as BTM does); an inner abort therefore aborts the whole transaction —
// which fails over to software where partial abort is supported.
func (h hwTx) Nested(body func()) bool {
	if !h.e.u.Begin(0) {
		tm.Unwind(machine.AbortNesting)
	}
	if tm.CatchNested(body) {
		h.e.u.Abort(machine.AbortExplicit)
		tm.Unwind(machine.AbortExplicit)
	}
	h.e.u.End()
	return true
}

func (h hwTx) Retry() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.UnwindRetry()
}

func (h hwTx) Syscall() {
	h.e.u.Abort(machine.AbortSyscall)
	tm.Unwind(machine.AbortSyscall)
}

// swTx is the NOrec software handle.
type swTx struct{ e *exec }

var _ tm.Tx = swTx{}

func (t swTx) Load(addr uint64) uint64 { return t.e.swLoad(addr) }
func (t swTx) Store(addr, val uint64)  { t.e.swStore(addr, val) }
func (t swTx) OnCommit(f func())       { t.e.onCommit = append(t.e.onCommit, f) }

func (t swTx) Abort() {
	if len(t.e.nestSaves) > 0 {
		tm.UnwindNested()
	}
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx with real partial abort (a redo-log savepoint).
func (t swTx) Nested(body func()) bool {
	t.e.beginNest()
	if tm.CatchNested(body) {
		t.e.abortNest()
		return false
	}
	t.e.endNest()
	return true
}

func (t swTx) Retry()   { tm.UnwindRetry() }
func (t swTx) Syscall() { t.e.p.Elapse(1) }
