package norec

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/txstats"
)

func newMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	return machine.New(p)
}

// run executes one body per proc through the system's Exec handles.
func run(m *machine.Machine, s *System, bodies ...func(tm.Exec)) {
	fns := make([]func(*machine.Proc), len(bodies))
	for i, body := range bodies {
		ex := s.Exec(m.Proc(i))
		b := body
		fns[i] = func(*machine.Proc) { b(ex) }
	}
	m.Run(fns)
}

// TestSingleProcCommitsInHardware: an uncontended read-modify-write loop
// stays entirely on the hardware path, and each writing commit bumps the
// hardware notification counter.
func TestSingleProcCommitsInHardware(t *testing.T) {
	m := newMachine(1)
	s := New(m, DefaultConfig())
	addr := m.Mem.Sbrk(64)
	run(m, s, func(ex tm.Exec) {
		for i := 0; i < 10; i++ {
			ex.Atomic(func(tx tm.Tx) {
				tx.Store(addr, tx.Load(addr)+1)
			})
		}
	})
	if got := m.Mem.Read64(addr); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if s.stats.HWCommits != 10 || s.stats.SWCommits != 0 || s.stats.Failovers != 0 {
		t.Fatalf("stats = %+v, want 10 pure hardware commits", s.stats)
	}
	if got := m.Mem.Read64(s.htmAddr); got != 10 {
		t.Fatalf("hardware commit counter = %d, want 10", got)
	}
	if got := m.Mem.Read64(s.lockAddr); got != 0 {
		t.Fatalf("seqlock moved to %d with no software commit", got)
	}
	if s.lastWriter != 0 {
		t.Fatalf("lastWriter = %d, want 0", s.lastWriter)
	}
}

// TestReadOnlyHardwareSkipsCounterBump: read-only hardware transactions
// invalidate no software snapshot, so they must not advance the hardware
// commit counter (the documented divergence from the exemplar).
func TestReadOnlyHardwareSkipsCounterBump(t *testing.T) {
	m := newMachine(1)
	s := New(m, DefaultConfig())
	addr := m.Mem.Sbrk(64)
	var got uint64
	run(m, s, func(ex tm.Exec) {
		ex.Atomic(func(tx tm.Tx) { got = tx.Load(addr) })
	})
	if got != 0 {
		t.Fatalf("load = %d", got)
	}
	if s.stats.HWCommits != 1 {
		t.Fatalf("stats = %+v, want one hardware commit", s.stats)
	}
	if v := m.Mem.Read64(s.htmAddr); v != 0 {
		t.Fatalf("hardware commit counter = %d after a read-only commit, want 0", v)
	}
}

// TestSoftwareCommitAdvancesSeqlock: a syscall forces the software path;
// its writing commit advances the seqlock by two (acquire + release),
// leaves it free, and writes back the redo log.
func TestSoftwareCommitAdvancesSeqlock(t *testing.T) {
	m := newMachine(1)
	s := New(m, DefaultConfig())
	addr := m.Mem.Sbrk(64)
	run(m, s, func(ex tm.Exec) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Syscall()
			tx.Store(addr, 7)
		})
	})
	if s.stats.SWCommits != 1 || s.stats.Failovers != 1 {
		t.Fatalf("stats = %+v, want one failover and one software commit", s.stats)
	}
	if got := m.Mem.Read64(addr); got != 7 {
		t.Fatalf("write-back missing: mem = %d", got)
	}
	if s.seq != 2 || m.Mem.Read64(s.lockAddr) != 2 {
		t.Fatalf("seqlock = %d (mem %d), want 2", s.seq, m.Mem.Read64(s.lockAddr))
	}
	if s.lockOwner != -1 {
		t.Fatalf("lock still owned by %d", s.lockOwner)
	}
	if s.lastWriter != 0 {
		t.Fatalf("lastWriter = %d, want 0", s.lastWriter)
	}
	if v := m.Mem.Read64(s.htmAddr); v != 0 {
		t.Fatalf("hardware counter = %d, want 0 (no hardware commit)", v)
	}
}

// TestSoftwareNestedPartialAbort: an aborted closed nest rolls back only
// its own redo-log entries (lazy versioning partial abort).
func TestSoftwareNestedPartialAbort(t *testing.T) {
	m := newMachine(1)
	s := New(m, DefaultConfig())
	a := m.Mem.Sbrk(64)
	b := m.Mem.Sbrk(64)
	var nested bool
	run(m, s, func(ex tm.Exec) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Syscall() // force the software path (nests flatten in hardware)
			tx.Store(a, 1)
			nested = tx.Nested(func() {
				tx.Store(b, 2)
				tx.Abort()
			})
		})
	})
	if nested {
		t.Fatal("aborted nest reported success")
	}
	if m.Mem.Read64(a) != 1 || m.Mem.Read64(b) != 0 {
		t.Fatalf("mem = a:%d b:%d, want a:1 b:0 (partial abort)", m.Mem.Read64(a), m.Mem.Read64(b))
	}
}

// TestRetryFailsOverAndPolls: Retry aborts the hardware attempt (hardware
// cannot wait), fails over, and polls in software until the producer's
// store makes the condition pass.
func TestRetryFailsOverAndPolls(t *testing.T) {
	m := newMachine(2)
	s := New(m, DefaultConfig())
	flag := m.Mem.Sbrk(64)
	done := m.Mem.Sbrk(64)
	run(m, s,
		func(ex tm.Exec) {
			ex.Proc().Elapse(20_000)
			ex.Atomic(func(tx tm.Tx) { tx.Store(flag, 1) })
		},
		func(ex tm.Exec) {
			ex.Atomic(func(tx tm.Tx) {
				if tx.Load(flag) == 0 {
					tx.Retry()
				}
				tx.Store(done, 1)
			})
		})
	if m.Mem.Read64(done) != 1 {
		t.Fatal("consumer never committed")
	}
	if s.stats.Retries == 0 {
		t.Fatalf("stats = %+v, want retry polls", s.stats)
	}
	if s.stats.Failovers == 0 {
		t.Fatal("Retry should fail over to the software path")
	}
}

// edgeLog captures raw conflict edges and commits for tuple assertions.
type edgeLog struct {
	edges     []machine.ConflictEdge
	hwCommits uint64
	swCommits uint64
}

func (l *edgeLog) RecordEdge(e machine.ConflictEdge) { l.edges = append(l.edges, e) }
func (l *edgeLog) RecordCommit(proc int, hw bool, cycle uint64) {
	if hw {
		l.hwCommits++
	} else {
		l.swCommits++
	}
}

// TestHTMAbortsNotStallsDuringWriteback pins the subscription protocol:
// while proc 0's software commits hold the seqlock and write back a long
// redo log, proc 1's hardware transactions (touching disjoint data)
// abort and retry — they never stall, never fail over, and every abort
// is attributed to the software committer.
func TestHTMAbortsNotStallsDuringWriteback(t *testing.T) {
	m := newMachine(2)
	cfg := DefaultConfig()
	// Unbounded hardware retries: the pin is that hardware rides out the
	// write-back purely by aborting and retrying.
	cfg.MaxHTMRetries = 1 << 30
	s := New(m, cfg)
	log := &edgeLog{}
	m.SetConflictRecorder(log)
	const lines, swTxs, hwTxs = 16, 4, 60
	base := m.Mem.Sbrk(64 * lines)
	mine := m.Mem.Sbrk(64)
	run(m, s,
		func(ex tm.Exec) {
			for k := 0; k < swTxs; k++ {
				ex.Atomic(func(tx tm.Tx) {
					tx.Syscall() // force the software path
					for i := uint64(0); i < lines; i++ {
						tx.Store(base+64*i, uint64(k)+1)
					}
				})
			}
		},
		func(ex tm.Exec) {
			for k := 0; k < hwTxs; k++ {
				ex.Atomic(func(tx tm.Tx) {
					tx.Store(mine, tx.Load(mine)+1)
				})
			}
		})
	if m.Mem.Read64(mine) != hwTxs {
		t.Fatalf("proc 1 counter = %d, want %d", m.Mem.Read64(mine), hwTxs)
	}
	if log.swCommits != swTxs || s.stats.SWCommits != swTxs {
		t.Fatalf("software commits = %d/%d, want %d", log.swCommits, s.stats.SWCommits, swTxs)
	}
	// The pin: every proc-1 transaction still commits in hardware...
	if log.hwCommits != hwTxs || s.stats.HWCommits != hwTxs {
		t.Fatalf("hardware commits = %d/%d, want %d (no failover, no stall)",
			log.hwCommits, s.stats.HWCommits, hwTxs)
	}
	if s.stats.Failovers != uint64(swTxs) {
		t.Fatalf("failovers = %d, want only proc 0's forced %d", s.stats.Failovers, swTxs)
	}
	// ...but only after aborting during the write-back windows.
	if s.stats.HWRetries == 0 {
		t.Fatal("no hardware retries: the write-back never aborted a hardware transaction")
	}
	sawLockEdge := false
	conflicts := 0
	for _, e := range log.edges {
		if e.Reason == machine.AbortSyscall {
			continue // proc 0's forced-failover self-edge
		}
		conflicts++
		if e.Victim != 1 || e.Aggressor != 0 {
			t.Fatalf("unexpected edge direction: %+v", e)
		}
		if e.Reason != machine.AbortConflict && e.Reason != machine.AbortNonTConflict {
			t.Fatalf("unexpected abort reason: %+v", e)
		}
		if e.HasAddr && e.Addr == s.lockAddr {
			sawLockEdge = true
		}
	}
	if conflicts == 0 {
		t.Fatal("no conflict edges recorded")
	}
	if !sawLockEdge {
		t.Fatalf("no edge on the seqlock line %#x; edges = %+v", s.lockAddr, log.edges)
	}
}

// TestColliderAccountingIdentities: a two-proc same-line collision with
// lifecycle accounting attached satisfies the exact txstats identities
// (everything begun commits; the cycle split sums to total latency;
// attributed plus unknown wasted cycles equal total wasted) and records
// one commit per transaction with the contention recorder.
func TestColliderAccountingIdentities(t *testing.T) {
	m := newMachine(2)
	s := New(m, DefaultConfig())
	log := &edgeLog{}
	m.SetConflictRecorder(log)
	rec := txstats.New(2)
	m.SetTxRecorder(rec)
	const iters = 12
	addr := m.Mem.Sbrk(64)
	body := func(ex tm.Exec) {
		for k := 0; k < iters; k++ {
			ex.Atomic(func(tx tm.Tx) {
				v := tx.Load(addr)
				ex.Proc().Elapse(200)
				tx.Store(addr, v+1)
			})
		}
	}
	run(m, s, body, body)
	if got := m.Mem.Read64(addr); got != 2*iters {
		t.Fatalf("collider count = %d, want %d", got, 2*iters)
	}
	if total := log.hwCommits + log.swCommits; total != 2*iters {
		t.Fatalf("%d commits recorded, want %d", total, 2*iters)
	}
	rep := rec.Report()
	if rep.Begun != 2*iters || rep.Committed != 2*iters || rep.InFlight != 0 {
		t.Fatalf("begun/committed/in-flight = %d/%d/%d, want %d/%d/0",
			rep.Begun, rep.Committed, rep.InFlight, 2*iters, 2*iters)
	}
	split := rep.UsefulCycles + rep.WastedCycles + rep.BackoffCycles +
		rep.RetryWaitCycles + rep.OverheadCycles
	if rep.Latency == nil || split != rep.Latency.Sum {
		t.Fatalf("cycle split %d != latency sum %v", split, rep.Latency)
	}
	var attributed uint64
	for _, pc := range rep.AggressorWasted {
		attributed += pc.Cycles
	}
	if attributed+rep.UnknownWasted != rep.WastedCycles {
		t.Fatalf("attributed %d + unknown %d != wasted %d",
			attributed, rep.UnknownWasted, rep.WastedCycles)
	}
	for _, e := range log.edges {
		if e.Victim < 0 || e.Victim > 1 || e.Aggressor < -1 || e.Aggressor > 1 {
			t.Fatalf("malformed edge: %+v", e)
		}
		if e.Reason == machine.AbortNone {
			t.Fatalf("edge without reason: %+v", e)
		}
	}
}
