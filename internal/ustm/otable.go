package ustm

import (
	"repro/internal/machine"
	"repro/internal/mem"
)

// otable is the ownership table of Figure 3: a chained hash table with one
// record per transactionally-held cache line. Row contents are Go values
// (the simulation engine serializes processors, so no locking is needed
// for correctness), but each row also owns a distinct simulated-memory
// line so that every lookup and update generates the cache and coherence
// traffic a real otable would — which is exactly what HyTM's instrumented
// hardware transactions and its false-conflict pathology depend on.
//
// The row lock models the paper's locked head-entry state: it is held
// across multi-step chain updates, and other transactions that find a row
// locked back off and retry, paying for the contention in simulated time.
type otable struct {
	rows []row
	base uint64 // simulated address of row 0; rows are line-spaced
	mask uint64
}

type row struct {
	locked  bool
	entries []*entry
}

// entry is one ownership record: the owned line (tag), the permission
// held, and the owning transactions (multiple only for read-sharing).
type entry struct {
	tag    uint64
	write  bool
	owners []*Thread
}

func newOTable(m *machine.Machine, rows int) *otable {
	base := m.Mem.Sbrk(uint64(rows) * mem.LineBytes)
	return &otable{
		rows: make([]row, rows),
		base: base,
		mask: uint64(rows - 1),
	}
}

// index hashes a data line to a row (GET_INDEX of Algorithm 1).
func (o *otable) index(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15 >> 17) & o.mask
}

// rowAddr returns the simulated address of row i.
func (o *otable) rowAddr(i uint64) uint64 { return o.base + i*mem.LineBytes }

// row returns row i's Go-side state.
func (o *otable) row(i uint64) *row { return &o.rows[i] }

// find returns the entry for line in this row's chain, or nil.
func (r *row) find(line uint64) *entry {
	for _, e := range r.entries {
		if e.tag == line {
			return e
		}
	}
	return nil
}

// remove deletes e from the chain.
func (r *row) remove(e *entry) {
	for i, x := range r.entries {
		if x == e {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return
		}
	}
}

// hasOwner reports whether t is among e's owners.
func (e *entry) hasOwner(t *Thread) bool {
	for _, o := range e.owners {
		if o == t {
			return true
		}
	}
	return false
}

// soleOwner reports whether t is the only owner.
func (e *entry) soleOwner(t *Thread) bool {
	return len(e.owners) == 1 && e.owners[0] == t
}

// dropOwner removes t from e's owners; returns true if e has no owners
// left.
func (e *entry) dropOwner(t *Thread) bool {
	for i, o := range e.owners {
		if o == t {
			e.owners = append(e.owners[:i], e.owners[i+1:]...)
			break
		}
	}
	return len(e.owners) == 0
}
