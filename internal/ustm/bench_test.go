package ustm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

// BenchmarkSWTxRoundTrip measures a one-store software transaction with
// strong atomicity (barrier + UFO install/clear + logging).
func BenchmarkSWTxRoundTrip(b *testing.B) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.Atomic(func(tx tm.Tx) { tx.Store(0, uint64(i)) })
		}
	}})
}

// BenchmarkWriteBarrierOwned measures the barrier fast path (entry
// already owned with write permission).
func BenchmarkWriteBarrierOwned(b *testing.B) {
	m := testMachine(1)
	s := testSTM(m, true)
	th := s.Thread(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		th.Begin(m.NextAge())
		th.WriteBarrier(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.WriteBarrier(0)
		}
		b.StopTimer()
		th.End()
	}})
}
