package ustm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

type status uint8

const (
	statusIdle status = iota
	statusRunning
	statusRetrying
)

// Thread is the per-processor USTM transaction context (the paper's
// per-thread transactional status structure, including the log).
type Thread struct {
	stm *STM
	p   *machine.Proc

	status status
	age    uint64
	killed bool
	// killer bookkeeping for the reissue-after-killer-retires policy.
	killer      *Thread
	killerEpoch uint64
	epoch       uint64 // bumps every time a transaction of ours ends

	undo        []undoRec
	owned       []ownedRec
	toWake      []*Thread
	wakePending bool
	onCommit    []func()
	// nestSave stacks undo-log lengths at nest entry. Entries acquired
	// inside an aborted nest are retained until transaction end (lazy
	// release: conservative isolation is always safe), so a savepoint is
	// just an undo-log position.
	nestSave []int
}

type undoRec struct {
	addr uint64
	old  uint64
}

type ownedRec struct {
	line  uint64
	write bool
}

// Proc returns the thread's processor.
func (t *Thread) Proc() *machine.Proc { return t.p }

// Active reports whether a transaction is in flight (running or retrying).
func (t *Thread) Active() bool { return t.status != statusIdle }

// Age returns the current transaction's age.
func (t *Thread) Age() uint64 { return t.age }

// Begin starts a software transaction with the given age (ustm_begin):
// clear the log, record the sequence number, set the transaction state,
// and disable UFO faults so the transaction does not fault on its own
// protected data.
func (t *Thread) Begin(age uint64) {
	if t.status != statusIdle {
		panic("ustm: Begin with transaction already active")
	}
	t.status = statusRunning
	t.age = age
	t.killed = false
	t.killer = nil
	t.undo = t.undo[:0]
	t.owned = t.owned[:0]
	t.toWake = t.toWake[:0]
	t.wakePending = false
	t.onCommit = t.onCommit[:0]
	t.nestSave = t.nestSave[:0]
	t.p.SetSTM(true, age)
	t.p.SetUFOEnabled(false)
	t.p.RecordSW(machine.TraceSWBegin, machine.AbortNone, age)
	t.p.Elapse(t.stm.cfg.BeginCycles)
}

// End commits the transaction (ustm_end): release ownership, wake any
// retrying transactions whose reads we overwrote, re-enable UFO faults,
// and discard the checkpoint. It reports false (and rolls back) if the
// transaction was killed after its last barrier.
func (t *Thread) End() bool {
	if t.status != statusRunning {
		panic("ustm: End with no running transaction")
	}
	if t.killed {
		t.Rollback()
		return false
	}
	t.p.RecordSWFootprint(len(t.owned))
	t.releaseAll()
	for _, w := range t.toWake {
		w.wake(t.p)
	}
	t.p.Elapse(t.stm.cfg.CommitCycles)
	t.p.RecordSW(machine.TraceSWCommit, machine.AbortNone, t.age)
	t.p.RecordSWCommit()
	t.finish()
	t.runDeferred()
	return true
}

// OnCommit registers a deferred side effect (Section 6); it runs once,
// after this transaction commits, and is dropped if it aborts.
func (t *Thread) OnCommit(f func()) {
	t.onCommit = append(t.onCommit, f)
}

// runDeferred executes and clears the deferred side effects.
func (t *Thread) runDeferred() {
	for _, f := range t.onCommit {
		f()
	}
	t.onCommit = t.onCommit[:0]
}

// Rollback aborts the transaction (ustm_abort): undo writes in reverse
// order, release ownership, and restore the pre-transaction state.
func (t *Thread) Rollback() {
	if t.status == statusIdle {
		panic("ustm: Rollback with no transaction")
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		t.ntWriteMustOK(r.addr, r.old)
		t.p.Elapse(t.stm.cfg.LogCycles)
	}
	t.releaseAll()
	for _, w := range t.toWake {
		w.wake(t.p) // spurious wake-ups are safe; retriers re-check
	}
	t.p.RecordSW(machine.TraceSWAbort, machine.AbortConflict, t.age)
	t.p.Elapse(t.stm.cfg.CommitCycles)
	t.finish()
}

// finish retires the transaction: status idle, epoch bumped, UFO faults
// re-enabled.
func (t *Thread) finish() {
	t.status = statusIdle
	t.epoch++
	t.p.SetSTM(false, 0)
	t.p.SetUFOEnabled(true)
}

// WaitForKiller stalls until the transaction that aborted us has retired,
// the paper's anti-livelock reissue policy. Call after Rollback.
func (t *Thread) WaitForKiller() {
	if t.killer == nil {
		return
	}
	// Wait only while the killer is still running the transaction that
	// killed us; an idle or descheduled (retrying) killer has effectively
	// retired.
	for t.killer.status == statusRunning && t.killer.epoch == t.killerEpoch {
		t.p.Elapse(t.stm.cfg.StallCycles)
	}
	t.killer = nil
}

// kill marks victim as aborted by t over the conflicting line. The victim
// notices at its next barrier (or stall poll) and unwinds; a blocked
// (retrying) victim is woken so it can unwind.
func (t *Thread) kill(victim *Thread, line uint64) {
	if victim.killed || victim.status == statusIdle {
		return
	}
	t.p.RecordSWKill(victim.p, machine.AbortConflict, mem.LineAddr(line), true)
	victim.killed = true
	victim.killer = t
	victim.killerEpoch = t.epoch
	if victim.status == statusRetrying {
		victim.wakePending = true
		t.p.Wake(victim.p)
	}
}

// checkKilled unwinds the transaction body if another transaction has
// signaled us to abort.
func (t *Thread) checkKilled() {
	if t.killed {
		tm.Unwind(machine.AbortConflict)
	}
}

// --- Barriers (Algorithm 1 / Algorithm 2) ---

// ReadBarrier acquires read permission for addr, stalling or killing
// conflictors per the age policy, and installs fault-on-write protection
// when strong atomicity is enabled.
func (t *Thread) ReadBarrier(addr uint64) {
	t.barrier(addr, false)
}

// WriteBarrier acquires write permission for addr and installs
// fault-on-read and fault-on-write protection when strong atomicity is
// enabled.
func (t *Thread) WriteBarrier(addr uint64) {
	t.barrier(addr, true)
}

func (t *Thread) barrier(addr uint64, write bool) {
	if t.status != statusRunning {
		panic(fmt.Sprintf("ustm: barrier outside a transaction (status %d)", t.status))
	}
	line := mem.LineOf(addr)
	idx := t.stm.ot.index(line)
	r := t.stm.ot.row(idx)
	rowAddr := t.stm.ot.rowAddr(idx)
	for {
		t.checkKilled()
		// Inspect the row head (one otable memory reference plus the
		// barrier's fixed logic).
		t.ntReadMustOK(rowAddr)
		t.p.Elapse(t.stm.cfg.BarrierCycles)
		if r.locked {
			t.stall()
			continue
		}
		e := r.find(line)
		switch {
		case e == nil:
			// Insert a fresh entry (compare&swap on the head; the chain
			// is locked while UFO bits are installed so that the bits can
			// never disagree with the otable — Algorithm 2).
			r.locked = true
			t.ntWriteMustOK(rowAddr, 1)
			t.p.Elapse(t.stm.cfg.CASCycles)
			r.entries = append(r.entries, &entry{tag: line, write: write, owners: []*Thread{t}})
			t.owned = append(t.owned, ownedRec{line: line, write: write})
			t.installUFO(line, write)
			r.locked = false
			return
		case e.hasOwner(t) && e.soleOwner(t):
			if write && !e.write {
				// Upgrade read → write permission.
				r.locked = true
				t.p.Elapse(t.stm.cfg.CASCycles)
				e.write = true
				t.upgradeOwned(line)
				t.installUFO(line, true)
				r.locked = false
			}
			return
		case e.hasOwner(t) && !write && !e.write:
			// Already a reader among readers.
			return
		case e.hasOwner(t) && e.write:
			// Already the writer (write entries are exclusive, so being
			// an owner of a write entry means being the writer).
			return
		default:
			// Conflict: some other transaction owns the entry (or we are
			// a reader needing an upgrade past other readers).
			if !t.resolveConflict(r, e, write) {
				continue // stalled for an older conflictor; re-examine
			}
			// Conflictors killed and drained; re-examine the row.
		}
	}
}

// resolveConflict applies the age policy against e's other owners.
// It returns false if we stalled (caller re-examines), true once every
// other active owner has been killed and has released the entry.
func (t *Thread) resolveConflict(r *row, e *entry, write bool) bool {
	// A read-read sharing situation is not a conflict: join the readers.
	if !write && !e.write {
		r.locked = true
		t.p.Elapse(t.stm.cfg.CASCycles)
		e.owners = append(e.owners, t)
		t.owned = append(t.owned, ownedRec{line: e.tag, write: false})
		// First reader installed protection already; joining readers
		// share it.
		r.locked = false
		return true
	}
	// Retrying owners do not block anyone: steal their ownership and
	// schedule their wake-up for our commit (Section 6).
	var active []*Thread
	for _, o := range append([]*Thread(nil), e.owners...) {
		if o == t {
			continue
		}
		if o.status == statusRetrying {
			e.dropOwner(o)
			t.noteWake(o)
			continue
		}
		active = append(active, o)
	}
	if len(active) == 0 {
		if len(e.owners) == 0 || e.soleOwner(t) {
			if e.hasOwner(t) {
				return true // loop will take the upgrade path
			}
			// Entry empty: remove it; the retry of the outer loop will
			// insert fresh.
			r.remove(e)
			if t.stm.cfg.StrongAtomicity {
				t.p.SetUFO(mem.LineAddr(e.tag), mem.UFONone)
			}
			return true
		}
		return true
	}
	// Stall if any active conflictor is older.
	for _, o := range active {
		if o.age < t.age {
			t.stm.stats.SWStalls++
			t.stall()
			return false
		}
	}
	// We are the oldest: kill the younger conflictors and wait for each
	// to release its ownership (blocking STM: victims unwind themselves).
	for _, o := range active {
		t.kill(o, e.tag)
	}
	for _, o := range active {
		for e.hasOwner(o) {
			t.checkKilled()
			t.p.Elapse(t.stm.cfg.StallCycles)
		}
	}
	return true
}

// stall charges one conflict-poll interval, checking for our own death
// first so that stalled victims unwind promptly.
func (t *Thread) stall() {
	t.checkKilled()
	t.p.Elapse(t.stm.cfg.StallCycles)
}

// noteWake records a retrying transaction to wake at commit.
func (t *Thread) noteWake(o *Thread) {
	for _, w := range t.toWake {
		if w == o {
			return
		}
	}
	t.toWake = append(t.toWake, o)
}

// installUFO applies Algorithm 2's protection rule: read entries install
// fault-on-write; write entries install fault-on-read and fault-on-write.
func (t *Thread) installUFO(line uint64, write bool) {
	if !t.stm.cfg.StrongAtomicity {
		return
	}
	bits := mem.UFOFaultOnWrite
	if write {
		bits = mem.UFOFaultAll
	}
	t.p.SetUFO(mem.LineAddr(line), bits)
}

func (t *Thread) upgradeOwned(line uint64) {
	for i := range t.owned {
		if t.owned[i].line == line {
			t.owned[i].write = true
			return
		}
	}
}

// releaseAll removes this transaction from every otable entry it owns,
// clearing UFO protection when the last owner leaves (the reverse of
// Algorithm 2, with the same row-locking discipline).
func (t *Thread) releaseAll() {
	for _, rec := range t.owned {
		idx := t.stm.ot.index(rec.line)
		r := t.stm.ot.row(idx)
		t.ntWriteMustOK(t.stm.ot.rowAddr(idx), 1)
		t.p.Elapse(t.stm.cfg.ReleaseCycles)
		e := r.find(rec.line)
		if e == nil || !e.hasOwner(t) {
			continue // ownership was stolen while we were retrying
		}
		if e.dropOwner(t) {
			r.remove(e)
			if t.stm.cfg.StrongAtomicity {
				t.p.SetUFO(mem.LineAddr(rec.line), mem.UFONone)
			}
		}
	}
	t.owned = t.owned[:0]
}

// --- Transactional data accesses ---

// Load reads addr inside the transaction (read barrier + data read).
func (t *Thread) Load(addr uint64) uint64 {
	t.ReadBarrier(addr)
	return t.ntReadMustOK(addr)
}

// Store writes addr inside the transaction (write barrier + undo logging
// + in-place data write: eager versioning). Under LineGranularUndo the
// first write to a line checkpoints all of its words.
func (t *Thread) Store(addr, val uint64) {
	t.WriteBarrier(addr)
	if t.stm.cfg.LineGranularUndo {
		t.logLine(mem.LineOf(addr))
	} else {
		old := t.ntReadMustOK(addr)
		t.undo = append(t.undo, undoRec{addr: addr, old: old})
		t.p.Elapse(t.stm.cfg.LogCycles)
	}
	t.ntWriteMustOK(addr, val)
}

// logLine checkpoints every word of line once per transaction.
func (t *Thread) logLine(line uint64) {
	for _, r := range t.undo {
		if mem.LineOf(r.addr) == line {
			return // already checkpointed
		}
	}
	base := mem.LineAddr(line)
	for w := uint64(0); w < mem.LineWords; w++ {
		a := base + w*8
		t.undo = append(t.undo, undoRec{addr: a, old: t.ntReadMustOK(a)})
		t.p.Elapse(t.stm.cfg.LogCycles)
	}
}

// NestDepth reports how many closed nests are open.
func (t *Thread) NestDepth() int { return len(t.nestSave) }

// BeginNest opens a closed nested transaction (a savepoint).
func (t *Thread) BeginNest() {
	t.nestSave = append(t.nestSave, len(t.undo))
	t.p.Elapse(4)
}

// EndNest commits the innermost nest into its parent (closed-nesting
// semantics: effects stay speculative until the outermost commit).
func (t *Thread) EndNest() {
	t.nestSave = t.nestSave[:len(t.nestSave)-1]
	t.p.Elapse(2)
}

// AbortNest rolls the innermost nest back to its savepoint: data writes
// are undone; ownership acquired inside the nest is retained until the
// transaction ends (lazy release).
func (t *Thread) AbortNest() {
	save := t.nestSave[len(t.nestSave)-1]
	t.nestSave = t.nestSave[:len(t.nestSave)-1]
	for i := len(t.undo) - 1; i >= save; i-- {
		r := t.undo[i]
		t.ntWriteMustOK(r.addr, r.old)
		t.p.Elapse(t.stm.cfg.LogCycles)
	}
	t.undo = t.undo[:save]
}

// Retry implements transactional waiting: undo speculative writes,
// convert held write entries to reads, deschedule until a committing
// writer wakes us, then unwind for re-execution.
func (t *Thread) Retry() {
	t.checkKilled()
	for i := len(t.undo) - 1; i >= 0; i-- {
		r := t.undo[i]
		t.ntWriteMustOK(r.addr, r.old)
		t.p.Elapse(t.stm.cfg.LogCycles)
	}
	t.undo = t.undo[:0]
	// Downgrade write entries to read entries (fault-on-write only).
	for i := range t.owned {
		if !t.owned[i].write {
			continue
		}
		line := t.owned[i].line
		e := t.stm.ot.row(t.stm.ot.index(line)).find(line)
		if e != nil && e.hasOwner(t) {
			e.write = false
		}
		t.owned[i].write = false
		if t.stm.cfg.StrongAtomicity {
			t.p.SetUFO(mem.LineAddr(line), mem.UFOFaultOnWrite)
		}
	}
	t.stm.stats.Retries++
	// A conflictor may have signaled us to abort during the downgrade
	// writes above; unwinding now (rather than blocking) keeps the killer
	// from waiting forever on a descheduled victim. No scheduling point
	// separates this check from Block, so the check cannot go stale.
	t.checkKilled()
	t.status = statusRetrying
	if !t.wakePending {
		t.p.Block()
	}
	t.wakePending = false
	t.status = statusRunning
	t.checkKilled() // a kill may have woken us instead of a writer
	tm.UnwindRetry()
}

// FinishRetryWake cleans up after a retry wake-up: remaining (read)
// ownership is released and the transaction retires so it can be
// re-issued. Any wake-ups we owed are delivered spuriously — retriers
// re-check their condition, so early wake-ups are safe.
func (t *Thread) FinishRetryWake() {
	t.releaseAll()
	for _, w := range t.toWake {
		w.wake(t.p)
	}
	t.finish()
}

// wake readies a retrying transaction (called by committers after their
// update is visible). Safe to call from any running processor.
func (t *Thread) wake(from *machine.Proc) {
	if t.status != statusRetrying {
		return
	}
	t.wakePending = true
	from.Wake(t.p)
}

// --- helpers ---

// ntReadMustOK performs a non-transactional read that must succeed (UFO
// faults are disabled inside software transactions; non-transactional
// reads are never NACKed).
func (t *Thread) ntReadMustOK(addr uint64) uint64 {
	v, out := t.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic(fmt.Sprintf("ustm: unexpected outcome %v for STM-internal read at %#x", out, addr))
	}
	return v
}

func (t *Thread) ntWriteMustOK(addr, val uint64) {
	if out := t.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic(fmt.Sprintf("ustm: unexpected outcome %v for STM-internal write at %#x", out, addr))
	}
}
