package ustm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 3_000_000
	return machine.New(p)
}

func testSTM(m *machine.Machine, strong bool) *STM {
	cfg := DefaultConfig()
	cfg.OTableRows = 1 << 12
	cfg.StrongAtomicity = strong
	return New(m, cfg)
}

func TestSingleThreadCommit(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 11)
			tx.Store(64, 22)
			if tx.Load(0) != 11 {
				t.Error("tx does not see own write")
			}
		})
	}})
	if m.Mem.Read64(0) != 11 || m.Mem.Read64(64) != 22 {
		t.Fatal("commit lost writes")
	}
	if s.Stats().SWCommits != 1 {
		t.Fatalf("SWCommits = %d", s.Stats().SWCommits)
	}
	// All otable entries must be released and UFO bits cleared.
	if m.Mem.UFO(0) != mem.UFONone || m.Mem.UFO(64) != mem.UFONone {
		t.Fatal("UFO bits leaked after commit")
	}
}

func TestStrongAtomicityInstallsUFOBitsDuringTx(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Load(0)      // read barrier: fault-on-write
			tx.Store(64, 1) // write barrier: fault-on-read|write
			if m.Mem.UFO(0) != mem.UFOFaultOnWrite {
				t.Errorf("read-held line UFO = %v", m.Mem.UFO(0))
			}
			if m.Mem.UFO(64) != mem.UFOFaultAll {
				t.Errorf("write-held line UFO = %v", m.Mem.UFO(64))
			}
		})
	}})
}

func TestWeakModeInstallsNoUFOBits(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, false)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 1)
			if m.Mem.UFO(0) != mem.UFONone {
				t.Error("weak USTM set UFO bits")
			}
		})
	}})
}

func TestReadUpgradeToWrite(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			_ = tx.Load(0)
			if m.Mem.UFO(0) != mem.UFOFaultOnWrite {
				t.Error("after read: want fault-on-write")
			}
			tx.Store(0, 5)
			if m.Mem.UFO(0) != mem.UFOFaultAll {
				t.Error("after upgrade: want fault-all")
			}
		})
	}})
	if m.Mem.Read64(0) != 5 {
		t.Fatal("upgraded write lost")
	}
}

func TestAbortRollsBackEagerWrites(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		m.Mem.Write64(0, 100)
		first := true
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 200)
			if first {
				first = false
				// Eager versioning: the write is already in memory.
				if m.Mem.Read64(0) != 200 {
					t.Error("eager write not in place")
				}
				tx.Abort()
			}
		})
	}})
	if m.Mem.Read64(0) != 200 {
		t.Fatalf("final value %d, want 200 (second attempt commits)", m.Mem.Read64(0))
	}
	if s.Stats().SWAborts != 1 || s.Stats().SWCommits != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestConflictYoungerWriterIsKilled(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var order []int
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			// Older transaction: long-running, eventually writes line 0.
			ex0.Atomic(func(tx tm.Tx) {
				p.Elapse(2000) // let the younger tx grab the line first
				tx.Store(0, 1)
			})
			order = append(order, 0)
		},
		func(p *machine.Proc) {
			p.Elapse(100)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, 2)
				p.Elapse(10_000) // hold it long enough to be the victim
			})
			order = append(order, 1)
		},
	})
	if s.Stats().SWAborts == 0 {
		t.Fatal("expected the younger transaction to be killed at least once")
	}
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("commit order %v, want older first", order)
	}
	if s.Stats().SWCommits != 2 {
		t.Fatalf("SWCommits = %d", s.Stats().SWCommits)
	}
}

func TestConflictYoungerRequesterStalls(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var youngerSawCommitted uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, 42) // older grabs the line immediately
				p.Elapse(5000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(500)
			ex1.Atomic(func(tx tm.Tx) {
				youngerSawCommitted = tx.Load(0) // must stall until older commits
			})
		},
	})
	if youngerSawCommitted != 42 {
		t.Fatalf("younger read %d, want 42 (committed value)", youngerSawCommitted)
	}
	if s.Stats().SWStalls == 0 {
		t.Fatal("expected the younger transaction to stall")
	}
}

func TestReadSharing(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Mem.Write64(0, 9)
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				if tx.Load(0) != 9 {
					t.Error("reader 0 wrong value")
				}
				p.Elapse(3000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(500)
			ex1.Atomic(func(tx tm.Tx) {
				if tx.Load(0) != 9 {
					t.Error("reader 1 wrong value")
				}
			})
		},
	})
	if s.Stats().SWAborts != 0 || s.Stats().SWStalls != 0 {
		t.Fatalf("read sharing caused conflicts: %v", s.Stats())
	}
}

// TestPrivatizationAnomalyWeak reproduces Figure 2a's lost update: a
// doomed transaction's rollback can clobber a non-transactional write
// that happened after privatization — when the STM is weakly atomic.
// The strongly-atomic variant (next test) serializes the nonT write
// behind the rollback, preserving it.
func TestPrivatizationAnomalyWeak(t *testing.T) {
	if got := privatizationFinalValue(t, false); got != 100 {
		t.Fatalf("weak USTM: final = %d; expected the anomaly (rollback clobbers the nonT write back to 100)", got)
	}
}

func TestPrivatizationSafeUnderStrongAtomicity(t *testing.T) {
	if got := privatizationFinalValue(t, true); got != 777 {
		t.Fatalf("strong USTM: final = %d, want 777 (nonT write preserved)", got)
	}
}

// privatizationFinalValue runs the Figure 2a scenario and returns the
// final value of the contended word. Proc 1's transaction writes the word
// and is killed; proc 0 then writes 777 non-transactionally while proc
// 1's rollback is still pending.
func privatizationFinalValue(t *testing.T, strong bool) uint64 {
	t.Helper()
	m := testMachine(2)
	s := testSTM(m, strong)
	ex1 := s.Exec(m.Proc(1))
	m.Mem.Write64(0, 100)
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Elapse(2000)
			// Kill proc 1's transaction directly (standing in for a
			// privatizing transaction), then immediately write the word
			// non-transactionally. The victim has not rolled back yet.
			victim := s.Thread(m.Proc(1))
			me := s.Thread(p)
			me.age = 0 // pretend to be the oldest
			me.kill(victim, 0)
			if strong {
				NTStore(s, p, 0, 777)
			} else {
				for {
					if out := p.NTWrite(0, 777); out.Kind == machine.OK {
						break
					}
					p.Elapse(10)
				}
			}
		},
		func(p *machine.Proc) {
			done := false
			ex1.Atomic(func(tx tm.Tx) {
				if done {
					return // commit empty on the re-execution
				}
				done = true
				tx.Store(0, 555)
				p.Elapse(20_000) // window in which the kill + nonT write land
			})
		},
	})
	return m.Mem.Read64(0)
}

func TestNTStallsUntilCommit(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0 := s.Exec(m.Proc(0))
	var observed uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, 321)
				p.Elapse(5000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(500)
			observed = NTLoad(s, p, 0) // faults until the tx commits
		},
	})
	if observed != 321 {
		t.Fatalf("nonT read observed %d, want the committed 321", observed)
	}
	if s.Stats().NTStalls == 0 {
		t.Fatal("nonT access did not stall")
	}
}

func TestRetryWaitsForWriter(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var got uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				if tx.Load(0) == 0 {
					tx.Retry() // wait until someone publishes a value
				}
				got = tx.Load(0)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(20_000)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, 5)
			})
		},
	})
	if got != 5 {
		t.Fatalf("retrying tx read %d, want 5", got)
	}
	if s.Stats().Retries == 0 {
		t.Fatal("Retry not counted")
	}
}

func TestOTableChainCollisions(t *testing.T) {
	m := testMachine(1)
	cfg := DefaultConfig()
	cfg.OTableRows = 2 // force heavy chaining
	s := New(m, cfg)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			for i := uint64(0); i < 16; i++ {
				tx.Store(i*64, i)
			}
		})
	}})
	for i := uint64(0); i < 16; i++ {
		if m.Mem.Read64(i*64) != i {
			t.Fatalf("line %d lost under chaining", i)
		}
	}
	// All entries released.
	for i := range s.ot.rows {
		if len(s.ot.rows[i].entries) != 0 {
			t.Fatalf("row %d retains %d entries", i, len(s.ot.rows[i].entries))
		}
	}
}

func TestBadOTableSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(testMachine(1), Config{OTableRows: 1000})
}

func TestSystemNames(t *testing.T) {
	m := testMachine(1)
	if testSTM(m, true).Name() != "ustm+ufo" || testSTM(m, false).Name() != "ustm" {
		t.Fatal("names wrong")
	}
}

func TestLineConflictsSemantics(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	th := s.Thread(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		th.Begin(m.NextAge())
		th.ReadBarrier(0)
		if s.LineConflicts(0, false) {
			t.Error("read entry must not conflict with a read probe")
		}
		if !s.LineConflicts(0, true) {
			t.Error("read entry must conflict with a write probe")
		}
		th.WriteBarrier(64)
		if !s.LineConflicts(1, false) || !s.LineConflicts(1, true) {
			t.Error("write entry must conflict with any probe")
		}
		if s.LineConflicts(2, true) {
			t.Error("unowned line must not conflict")
		}
		if !th.End() {
			t.Error("commit failed")
		}
	}})
}

func TestMultiThreadedCounterInvariant(t *testing.T) {
	// Four threads each increment a shared counter 50 times; the final
	// value must be exactly 200 under any interleaving.
	m := testMachine(4)
	s := testSTM(m, true)
	var execs []tm.Exec
	for i := 0; i < 4; i++ {
		execs = append(execs, s.Exec(m.Proc(i)))
	}
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		ex := execs[i]
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 50; n++ {
				ex.Atomic(func(tx tm.Tx) {
					tx.Store(0, tx.Load(0)+1)
				})
				p.Elapse(uint64(10 + p.Rand().Intn(100)))
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
	if s.Stats().SWCommits != 200 {
		t.Fatalf("SWCommits = %d, want 200", s.Stats().SWCommits)
	}
}

func TestDisjointThreadsNoConflicts(t *testing.T) {
	m := testMachine(4)
	s := testSTM(m, true)
	arena := m.Mem.Sbrk(4 * 4096)
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		ex := s.Exec(m.Proc(i))
		base := arena + uint64(i)*4096
		ws = append(ws, func(p *machine.Proc) {
			for n := uint64(0); n < 20; n++ {
				ex.Atomic(func(tx tm.Tx) {
					tx.Store(base+n*64, n)
				})
			}
		})
	}
	m.Run(ws)
	if s.Stats().SWAborts != 0 {
		t.Fatalf("disjoint workloads aborted %d times", s.Stats().SWAborts)
	}
}

// TestFigure2bLostWriteUnderLineGranularity reproduces the paper's
// Figure 2b: with line-granular write handling and weak atomicity, a
// non-transactional write to a *neighboring word of the same line* is
// destroyed by an aborting transaction's rollback. Strong atomicity
// (next test) serializes the neighbor write behind the transaction.
func TestFigure2bLostWriteUnderLineGranularity(t *testing.T) {
	if got := figure2bNeighborValue(t, false); got != 0 {
		t.Fatalf("weak line-granular USTM: neighbor word = %d; expected the lost write (0)", got)
	}
}

func TestFigure2bSafeUnderStrongAtomicity(t *testing.T) {
	if got := figure2bNeighborValue(t, true); got != 999 {
		t.Fatalf("strong line-granular USTM: neighbor word = %d, want 999", got)
	}
}

// figure2bNeighborValue: proc 1's transaction writes word 0 of a line
// and aborts; mid-flight, proc 0 writes word 1 of the same line
// non-transactionally. Returns the final value of word 1.
func figure2bNeighborValue(t *testing.T, strong bool) uint64 {
	t.Helper()
	m := testMachine(2)
	cfg := DefaultConfig()
	cfg.OTableRows = 1 << 12
	cfg.StrongAtomicity = strong
	cfg.LineGranularUndo = true
	s := New(m, cfg)
	ex1 := s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Elapse(2000)
			if strong {
				NTStore(s, p, 8, 999) // word 1 of line 0
			} else {
				for {
					if out := p.NTWrite(8, 999); out.Kind == machine.OK {
						break
					}
					p.Elapse(10)
				}
			}
		},
		func(p *machine.Proc) {
			doomed := true
			ex1.Atomic(func(tx tm.Tx) {
				if !doomed {
					return
				}
				doomed = false
				tx.Store(0, 555) // word 0: checkpoints the whole line
				p.Elapse(20_000) // the neighbor write lands here
				tx.Abort()       // rollback restores all 8 words
			})
		},
	})
	return m.Mem.Read64(8)
}

func TestLineGranularUndoRestoresWholeLine(t *testing.T) {
	m := testMachine(1)
	cfg := DefaultConfig()
	cfg.OTableRows = 1 << 12
	cfg.LineGranularUndo = true
	s := New(m, cfg)
	ex := s.Exec(m.Proc(0))
	for w := uint64(0); w < 8; w++ {
		m.Mem.Write64(w*8, 100+w)
	}
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		first := true
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 1)
			tx.Store(16, 2) // same line: no second checkpoint
			if first {
				first = false
				tx.Abort()
			}
		})
	}})
	// After the abort + successful retry, words 0 and 16 hold the retry's
	// values and the rest hold their originals.
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(16) != 2 {
		t.Fatal("retry writes lost")
	}
	for _, w := range []uint64{1, 3, 4, 5, 6, 7} {
		if got := m.Mem.Read64(w * 8); got != 100+w {
			t.Fatalf("word %d = %d, want %d", w, got, 100+w)
		}
	}
}

func TestNestedPartialAbort(t *testing.T) {
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 1)
			// Two levels of nesting: the inner one aborts, the outer one
			// commits.
			ok := tx.Nested(func() {
				tx.Store(64, 2)
				inner := tx.Nested(func() {
					tx.Store(128, 3)
					tx.Abort()
				})
				if inner {
					t.Error("inner nest should have aborted")
				}
				if tx.Load(128) != 0 {
					t.Error("inner nest effects visible after its abort")
				}
			})
			if !ok {
				t.Error("outer nest should have committed")
			}
		})
	}})
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(64) != 2 || m.Mem.Read64(128) != 0 {
		t.Fatalf("state = %d/%d/%d, want 1/2/0",
			m.Mem.Read64(0), m.Mem.Read64(64), m.Mem.Read64(128))
	}
}

func TestNestedAbortKeepsOwnershipUntilEnd(t *testing.T) {
	// Lazy release: a line written only inside an aborted nest stays
	// protected (and otable-owned) until the transaction ends.
	m := testMachine(1)
	s := testSTM(m, true)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Nested(func() {
				tx.Store(256, 9)
				tx.Abort()
			})
			if m.Mem.UFO(256) == mem.UFONone {
				t.Error("ownership released at nested abort (should be lazy)")
			}
		})
	}})
	if m.Mem.UFO(256) != mem.UFONone {
		t.Fatal("ownership leaked past commit")
	}
	if m.Mem.Read64(256) != 0 {
		t.Fatal("aborted nested write leaked")
	}
}

func TestWholeTxAbortInsideNestUnwindsFully(t *testing.T) {
	m := testMachine(2)
	s := testSTM(m, true)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	// A conflict kill arriving while inside a nest must unwind the whole
	// transaction (not just the nest) and still converge.
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				p.Elapse(2000)
				tx.Store(0, tx.Load(0)+1) // older: will kill the younger
			})
		},
		func(p *machine.Proc) {
			p.Elapse(100)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Nested(func() {
					tx.Store(0, tx.Load(0)+10)
					p.Elapse(10_000) // hold the line; get killed mid-nest
				})
			})
		},
	})
	if got := m.Mem.Read64(0); got != 11 {
		t.Fatalf("value = %d, want 11", got)
	}
}

func TestOTableStats(t *testing.T) {
	m := testMachine(1)
	cfg := DefaultConfig()
	cfg.OTableRows = 4 // force chains
	s := New(m, cfg)
	th := s.Thread(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		th.Begin(m.NextAge())
		for i := uint64(0); i < 12; i++ {
			th.WriteBarrier(i * 64)
		}
		st := s.OTableStats()
		if st.Rows != 4 || st.Entries != 12 {
			t.Errorf("stats = %+v", st)
		}
		if st.MaxChain < 3 {
			t.Errorf("MaxChain = %d, expected chaining with 4 rows", st.MaxChain)
		}
		th.End()
	}})
	if st := s.OTableStats(); st.Entries != 0 {
		t.Fatalf("entries leaked: %+v", st)
	}
}
