// Package ustm implements USTM, the paper's eager-versioning,
// eager-conflict-detection, cache-line-granularity software transactional
// memory (§4.1), together with its strong-atomicity extension via
// UFO memory protection (§4.2) and the retry transactional-waiting
// primitive (§6).
//
// USTM's shared state is an ownership table (otable): a chained hash table
// with one record per cache line currently read or written by any software
// transaction. Each otable row occupies its own simulated-memory cache
// line, so the timing (and, for HyTM, the transactional footprint) of
// otable traffic is modeled faithfully.
//
// Conflict resolution is age-based and blocking: a transaction that
// conflicts with an older transaction stalls; one that conflicts only with
// younger transactions signals them to abort and waits until they have
// unwound (releasing their otable entries) before proceeding. An aborted
// transaction waits until its killer has retired before reissuing,
// avoiding otable contention and livelock — both policies straight from
// the paper.
package ustm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tm"
)

// Config carries USTM tuning parameters and cost constants (cycles
// charged for the software logic of each operation, on top of the memory
// traffic the operations generate).
type Config struct {
	// OTableRows is the number of hash rows; the paper notes realistic
	// implementations use at least tens of thousands. Must be a power of
	// two.
	OTableRows int
	// StrongAtomicity installs UFO protection on transactionally-held
	// lines (Section 4.2). Disable to model the baseline (weakly atomic)
	// USTM or HyTM's STM half.
	StrongAtomicity bool
	// LineGranularUndo logs (and on abort restores) the *whole* cache
	// line on the first write to it, instead of just the written words —
	// the "granularity for handling writes larger than the minimum-sized
	// write" that produces Figure 2b's lost non-transactional updates in
	// weakly-atomic systems. Off by default; enable to demonstrate the
	// anomaly (and that strong atomicity prevents it).
	LineGranularUndo bool

	BeginCycles   uint64 // ustm_begin bookkeeping
	CommitCycles  uint64 // ustm_end bookkeeping
	BarrierCycles uint64 // fixed logic per read/write barrier
	CASCycles     uint64 // compare&swap on an otable row
	ReleaseCycles uint64 // per-entry release at end of transaction
	LogCycles     uint64 // per logged word (eager versioning)
	StallCycles   uint64 // poll interval while stalling on a conflictor
	NTStallCycles uint64 // poll interval for a faulting nonT access
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		OTableRows:      1 << 16,
		StrongAtomicity: true,
		BeginCycles:     30,
		CommitCycles:    20,
		BarrierCycles:   10,
		CASCycles:       4,
		ReleaseCycles:   6,
		LogCycles:       3,
		StallCycles:     40,
		NTStallCycles:   60,
	}
}

// STM is one USTM instance: the otable plus per-thread transaction state.
// It implements tm.System.
type STM struct {
	m     *machine.Machine
	cfg   Config
	ot    *otable
	stats *tm.Stats

	threads map[int]*Thread
}

// New creates a USTM over the machine, reserving simulated memory for the
// otable rows.
func New(m *machine.Machine, cfg Config) *STM {
	if cfg.OTableRows <= 0 || cfg.OTableRows&(cfg.OTableRows-1) != 0 {
		panic(fmt.Sprintf("ustm: OTableRows %d must be a positive power of two", cfg.OTableRows))
	}
	return &STM{
		m:       m,
		cfg:     cfg,
		ot:      newOTable(m, cfg.OTableRows),
		stats:   new(tm.Stats),
		threads: make(map[int]*Thread),
	}
}

// Name implements tm.System.
func (s *STM) Name() string {
	if s.cfg.StrongAtomicity {
		return "ustm+ufo"
	}
	return "ustm"
}

// Stats implements tm.System.
func (s *STM) Stats() *tm.Stats { return s.stats }

// Machine returns the underlying machine.
func (s *STM) Machine() *machine.Machine { return s.m }

// Config returns the STM's configuration.
func (s *STM) Config() Config { return s.cfg }

// Thread returns (creating on first use) the per-processor transaction
// context. The hybrid TM uses this to share one STM across paths.
func (s *STM) Thread(p *machine.Proc) *Thread {
	if t, ok := s.threads[p.ID()]; ok {
		return t
	}
	t := &Thread{stm: s, p: p}
	s.threads[p.ID()] = t
	return t
}

// Exec implements tm.System.
func (s *STM) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{t: s.Thread(p)})
}

// RowAddr exposes the simulated address of the otable row covering line;
// HyTM's hardware barriers read it transactionally.
func (s *STM) RowAddr(line uint64) uint64 { return s.ot.rowAddr(s.ot.index(line)) }

// LineConflicts reports whether the otable holds a record that conflicts
// with an access of the given kind to line (HyTM's hardware-barrier
// check): any record conflicts with a write; only write records conflict
// with a read.
func (s *STM) LineConflicts(line uint64, write bool) bool {
	e := s.ot.row(s.ot.index(line)).find(line)
	if e == nil {
		return false
	}
	return write || e.write
}

// ConflictingOwnerProc returns the processor ID of the first software
// transaction whose otable record conflicts with an access of the given
// kind to line, or -1 when no conflicting record exists. HyTM's hardware
// barriers use it to attribute barrier-detected aborts to the software
// transaction that caused them.
func (s *STM) ConflictingOwnerProc(line uint64, write bool) int {
	e := s.ot.row(s.ot.index(line)).find(line)
	if e == nil || len(e.owners) == 0 {
		return -1
	}
	if !write && !e.write {
		return -1
	}
	return e.owners[0].p.ID()
}

// OwnersAllRetrying reports whether line has at least one owner and every
// owner is a retrying (descheduled) transaction. The hybrid's UFO-fault
// handler uses this to distinguish waiting transactions from active
// conflicts (Section 6).
func (s *STM) OwnersAllRetrying(line uint64) bool {
	e := s.ot.row(s.ot.index(line)).find(line)
	if e == nil || len(e.owners) == 0 {
		return false
	}
	for _, o := range e.owners {
		if o.status != statusRetrying {
			return false
		}
	}
	return true
}

// RetryingOwners returns the retrying owners of line (for wake-up
// scheduling by hardware transactions and non-transactional writers).
func (s *STM) RetryingOwners(line uint64) []*Thread {
	e := s.ot.row(s.ot.index(line)).find(line)
	if e == nil {
		return nil
	}
	var out []*Thread
	for _, o := range e.owners {
		if o.status == statusRetrying {
			out = append(out, o)
		}
	}
	return out
}

// WakeRetriers wakes the given retrying transactions; callers invoke this
// after making their conflicting update visible (after a hardware commit
// or a non-transactional store).
func (s *STM) WakeRetriers(p *machine.Proc, ts []*Thread) {
	for _, t := range ts {
		t.wake(p)
	}
}

// OTableStats summarizes current ownership-table occupancy (diagnostics
// for the otable-size ablation: small tables alias many lines per row).
type OTableStats struct {
	Rows     int
	Entries  int
	MaxChain int
}

// OTableStats reports the table's current occupancy.
func (s *STM) OTableStats() OTableStats {
	st := OTableStats{Rows: len(s.ot.rows)}
	for i := range s.ot.rows {
		n := len(s.ot.rows[i].entries)
		st.Entries += n
		if n > st.MaxChain {
			st.MaxChain = n
		}
	}
	return st
}
