package ustm

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
)

// exec adapts a Thread to the generic tm.Exec interface, providing the
// Atomic retry loop (with the paper's reissue-after-killer-retires
// policy) and the strong-atomicity treatment of non-transactional
// accesses.
type exec struct {
	t *Thread
}

var _ tm.Exec = (*exec)(nil)

// Proc implements tm.Exec.
func (e *exec) Proc() *machine.Proc { return e.t.p }

// Atomic implements tm.Exec: run body as a software transaction until it
// commits.
func (e *exec) Atomic(body func(tm.Tx)) {
	t := e.t
	age := t.stm.m.NextAge()
	t.p.TxLifeBegin()
	RunTx(t, age, body)
}

// RunTx runs body as one software transaction of the given age, retrying
// until commit. The hybrid TM calls this directly so a failed-over
// transaction keeps the age it was assigned at its first hardware
// attempt (which is what makes software transactions "generally older").
func RunTx(t *Thread, age uint64, body func(tm.Tx)) {
	// Lifecycle accounting: a strongly-atomic USTM is the hybrid's UFO
	// failover path; a weakly-atomic one is a plain software path.
	path := machine.PathSW
	if t.stm.cfg.StrongAtomicity {
		path = machine.PathUFO
	}
	for {
		t.p.TxLifeAttempt(path)
		t.Begin(age)
		reason, retry, aborted := tm.Catch(func() { body(txHandle{t}) })
		switch {
		case !aborted:
			if t.End() {
				t.stm.stats.SWCommits++
				t.p.TxLifeCommit(path)
				return
			}
			// Killed between last barrier and commit: aborted and rolled
			// back inside End.
			t.stm.stats.SWAborts++
			t.p.TxLifeAbort(path, machine.AbortConflict)
			t.WaitForKiller()
		case retry:
			// Woken from transactional waiting: clean up and re-execute.
			t.p.TxLifeRetryWait()
			t.FinishRetryWake()
		default:
			if reason == machine.AbortNone {
				reason = machine.AbortConflict
			}
			t.Rollback()
			t.stm.stats.SWAborts++
			t.p.TxLifeAbort(path, reason)
			t.WaitForKiller()
		}
	}
}

// Load implements tm.Exec's non-transactional read. Under strong
// atomicity a UFO fault means a software transaction holds the line with
// write permission; the registered handler stalls until the protection is
// removed (or, for lines held only by retrying transactions, wakes them).
func (e *exec) Load(addr uint64) uint64 {
	return NTLoad(e.t.stm, e.t.p, addr)
}

// Store implements tm.Exec's non-transactional write.
func (e *exec) Store(addr, val uint64) {
	NTStore(e.t.stm, e.t.p, addr, val)
}

// NTLoad performs a non-transactional read with USTM's fault-handler
// policy. Shared by every system built on USTM.
func NTLoad(s *STM, p *machine.Proc, addr uint64) uint64 {
	for {
		v, out := p.NTRead(addr)
		switch out.Kind {
		case machine.OK:
			return v
		case machine.UFOFault:
			if handleNTFault(s, p, addr) {
				// Retrying owners hold at most read permission, so a
				// faulting read here is a leftover protection edge; the
				// data is stable and may be read under masked faults.
				p.SetUFOEnabled(false)
				v, out = p.NTRead(addr)
				p.SetUFOEnabled(true)
				if out.Kind != machine.OK {
					panic("ustm: masked nonT read failed: " + out.Kind.String())
				}
				return v
			}
		default:
			panic("ustm: unexpected non-transactional read outcome " + out.Kind.String())
		}
	}
}

// NTStore performs a non-transactional write with USTM's fault-handler
// policy.
func NTStore(s *STM, p *machine.Proc, addr, val uint64) {
	for {
		out := p.NTWrite(addr, val)
		switch out.Kind {
		case machine.OK:
			return
		case machine.UFOFault:
			if handleNTFault(s, p, addr) {
				// All owners were retrying: their ownership does not
				// isolate data, so complete the access with faults
				// masked, then let the sleepers re-check the world.
				p.SetUFOEnabled(false)
				if out := p.NTWrite(addr, val); out.Kind != machine.OK {
					panic("ustm: masked nonT write failed: " + out.Kind.String())
				}
				p.SetUFOEnabled(true)
				s.WakeRetriers(p, s.RetryingOwners(mem.LineOf(addr)))
				return
			}
		default:
			panic("ustm: unexpected non-transactional write outcome " + out.Kind.String())
		}
	}
}

// handleNTFault is the UFO fault handler the STM registers for
// non-transactional code (Section 4.2): by default it stalls the access
// until the conflicting transaction commits or aborts. It returns true
// when the line is held only by retrying transactions, in which case the
// caller may proceed under masked faults.
func handleNTFault(s *STM, p *machine.Proc, addr uint64) (allRetrying bool) {
	line := mem.LineOf(addr)
	if s.OwnersAllRetrying(line) {
		return true
	}
	s.stats.NTStalls++
	p.Elapse(s.cfg.NTStallCycles)
	return false
}

// txHandle exposes a Thread as a tm.Tx.
type txHandle struct{ t *Thread }

var _ tm.Tx = txHandle{}

func (h txHandle) Load(addr uint64) uint64 { return h.t.Load(addr) }
func (h txHandle) Store(addr, val uint64)  { h.t.Store(addr, val) }
func (h txHandle) Retry()                  { h.t.Retry() }
func (h txHandle) OnCommit(f func())       { h.t.OnCommit(f) }

// Abort explicitly aborts: the innermost nest when one is open (USTM
// supports partial rollback), otherwise the whole transaction (which
// rolls back and reissues).
func (h txHandle) Abort() {
	if h.t.NestDepth() > 0 {
		tm.UnwindNested()
	}
	tm.Unwind(machine.AbortExplicit)
}

// Nested runs body as a closed nested transaction with partial abort.
func (h txHandle) Nested(body func()) bool {
	h.t.BeginNest()
	if tm.CatchNested(body) {
		h.t.AbortNest()
		return false
	}
	h.t.EndNest()
	return true
}

// Syscall is a no-op for software transactions: USTM supports idempotent
// system calls directly (Section 6).
func (h txHandle) Syscall() { h.t.p.Elapse(1) }
