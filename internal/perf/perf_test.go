package perf

import (
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

func TestMeasureCountsIterationsAndCycles(t *testing.T) {
	var ops int
	e := Measure(Bench{Name: "toy", Op: func() uint64 { ops++; return 100 }}, time.Millisecond)
	if e.Iterations < 1 {
		t.Fatalf("iterations = %d", e.Iterations)
	}
	if ops != e.Iterations+1 { // +1 warm-up
		t.Fatalf("ops = %d, iterations = %d", ops, e.Iterations)
	}
	if e.SimCyclesPerOp != 100 {
		t.Fatalf("SimCyclesPerOp = %v, want 100", e.SimCyclesPerOp)
	}
	if e.NsPerOp <= 0 || e.SimCyclesPerSec <= 0 {
		t.Fatalf("non-positive rates: %+v", e)
	}
}

func TestReportRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := NewReport("2026-08-05")
	r.Add(Entry{Name: "b", NsPerOp: 2})
	r.Add(Entry{Name: "a", NsPerOp: 1})
	if r.Entries[0].Name != "a" {
		t.Fatal("entries not sorted by name")
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 2 || got.Date != "2026-08-05" {
		t.Fatalf("round trip mangled report: %+v", got)
	}

	bad := &Report{Schema: "other/v9"}
	badPath := filepath.Join(dir, "bad.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

func TestCompareGate(t *testing.T) {
	gate := regexp.MustCompile("^Figure5Sweep$")
	base := NewReport("d")
	base.Add(Entry{Name: "Figure5Sweep", NsPerOp: 1000, SimCyclesPerOp: 50})
	base.Add(Entry{Name: "fig5/x", NsPerOp: 100})

	// Within tolerance: pass, even though the ungated entry doubled.
	cur := NewReport("d")
	cur.Add(Entry{Name: "Figure5Sweep", NsPerOp: 1100, SimCyclesPerOp: 50})
	cur.Add(Entry{Name: "fig5/x", NsPerOp: 200})
	if regs := Regressions(Compare(base, cur, gate, 0.15)); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}

	// Beyond tolerance on the gated entry: fail.
	slow := NewReport("d")
	slow.Add(Entry{Name: "Figure5Sweep", NsPerOp: 1200, SimCyclesPerOp: 50})
	regs := Regressions(Compare(base, slow, gate, 0.15))
	if len(regs) != 1 || regs[0].Name != "Figure5Sweep" || regs[0].Missing {
		t.Fatalf("regressions = %+v", regs)
	}

	// Gated entry missing from the current report: fail.
	empty := NewReport("d")
	regs = Regressions(Compare(base, empty, gate, 0.15))
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("missing gated entry not flagged: %+v", regs)
	}

	// Exercise the formatter on every status.
	out := Format(Compare(base, slow, gate, 0.15), 0.15)
	if out == "" {
		t.Fatal("empty format output")
	}
}

// TestSuiteSmoke runs the two cheapest suite entries once each to keep
// the suite wiring honest without paying for a full sweep in unit tests.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test is slow")
	}
	benches := Suite()
	if len(benches) == 0 {
		t.Fatal("empty suite")
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	if _, ok := byName[GateBenchmark]; !ok {
		t.Fatalf("suite lacks the gate benchmark %q", GateBenchmark)
	}
	if cycles := byName["engine/handoff/t2"].Op(); cycles == 0 {
		t.Fatal("engine benchmark reported zero simulated cycles")
	}
	if cycles := byName["fig5/kmeans-low/tl2/t4"].Op(); cycles == 0 {
		t.Fatal("cell benchmark reported zero simulated cycles")
	}
}
