// Package perf is the repo's benchmark-regression suite: it times the
// simulation workloads with a controllable measurement budget, emits a
// deterministic-schema JSON report (BENCH_<date>.json), and compares a
// fresh report against a checked-in baseline with a tolerance gate.
//
// Paper: §5 (evaluation methodology) — this package times the repo's
// reproduction of that evaluation (the Figure 5 sweep) in wall-clock
// terms, so the simulator itself stays fast enough to iterate on.
//
// The schema is versioned (Schema) and entries are sorted by name, so
// reports diff cleanly and CI can parse them without guessing. Two kinds
// of numbers appear side by side:
//
//   - wall-clock metrics (NsPerOp, AllocsPerOp, BytesPerOp,
//     SimCyclesPerSec) depend on the hardware that ran the suite;
//   - SimCyclesPerOp is the simulated-cycle cost of one operation, which
//     is bit-identical on every machine because the simulator is
//     deterministic.
//
// The CI gate compares NsPerOp with a generous tolerance (same runner
// family run to run); SimCyclesPerOp changing at all means the simulated
// behavior changed and should be explained by the commit. See
// EXPERIMENTS.md for the baseline-refresh procedure.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Schema identifies the report format.
const Schema = "tmsim-bench/v1"

// Entry is one benchmark measurement.
type Entry struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	SimCyclesPerOp  float64 `json:"sim_cycles_per_op"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Report is the on-disk benchmark artifact.
type Report struct {
	Schema    string  `json:"schema"`
	Date      string  `json:"date"` // YYYY-MM-DD, day the report was taken
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
}

// NewReport stamps an empty report with the environment.
func NewReport(date string) *Report {
	return &Report{
		Schema:    Schema,
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// Add appends an entry, keeping Entries sorted by name.
func (r *Report) Add(e Entry) {
	r.Entries = append(r.Entries, e)
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
}

// Lookup returns the entry with the given name.
func (r *Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a report and validates its schema tag.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Bench is one benchmark: Op runs a single operation and returns how many
// simulated cycles it executed (0 for benchmarks without a simulated
// component).
type Bench struct {
	Name string
	Op   func() uint64
}

// Measure times b until at least benchtime has elapsed (always at least
// one iteration), returning the per-op averages. Allocation figures come
// from the runtime's global counters, so run measurements sequentially.
func Measure(b Bench, benchtime time.Duration) Entry {
	b.Op() // warm-up: page in code and steady-state pools
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var (
		iters  int
		cycles uint64
	)
	start := time.Now()
	for {
		cycles += b.Op()
		iters++
		if time.Since(start) >= benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	sec := elapsed.Seconds()
	e := Entry{
		Name:           b.Name,
		Iterations:     iters,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		SimCyclesPerOp: float64(cycles) / float64(iters),
	}
	if sec > 0 {
		e.SimCyclesPerSec = float64(cycles) / sec
	}
	return e
}

// RunSuite measures every benchmark sequentially into a report, invoking
// progress (if non-nil) before each measurement.
func RunSuite(benches []Bench, benchtime time.Duration, date string, progress func(name string)) *Report {
	r := NewReport(date)
	for _, b := range benches {
		if progress != nil {
			progress(b.Name)
		}
		r.Add(Measure(b, benchtime))
	}
	return r
}
