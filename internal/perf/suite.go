package perf

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
)

// GateBenchmark is the entry the CI regression gate protects: the full
// small-scale Figure 5 sweep, mirroring BenchmarkFigure5Sweep in
// internal/harness. One op = every workload x every Figure 5 system x
// every small thread count.
const GateBenchmark = "Figure5Sweep"

// SuiteOptions mirrors the harness test configuration: small enough for
// CI, big enough to exercise every system's hot paths.
func SuiteOptions() harness.Options {
	opt := harness.DefaultOptions()
	opt.Params.MemBytes = 1 << 24
	opt.OTableRows = 1 << 13
	return opt
}

// Suite returns the benchmark suite: the gated full sweep, one
// workload-x-system cell benchmark per Figure 5 pair (at the largest
// small-scale thread count), and the engine handoff microbenchmark.
func Suite() []Bench {
	opt := SuiteOptions()
	scale := harness.ScaleSmall
	threadCounts := harness.ThreadCounts(scale)
	maxThreads := threadCounts[len(threadCounts)-1]

	benches := []Bench{{
		Name: GateBenchmark,
		Op: func() uint64 {
			var cycles uint64
			for _, f := range harness.Benchmarks(scale) {
				for _, sys := range harness.Figure5Systems {
					for _, threads := range threadCounts {
						cycles += runCell(sys, f, threads, opt)
					}
				}
			}
			return cycles
		},
	}}

	// The same sweep with per-transaction lifecycle accounting enabled:
	// the ns/op ratio against the gated entry is what -txstats-out costs.
	// Informational, not gated — the gate pattern anchors on Figure5Sweep
	// exactly, and the disabled-path cost of the lifecycle hooks is
	// bounded by the gated entry itself (they reduce to a nil check when
	// no recorder is attached).
	topt := opt
	topt.TxStats = true
	benches = append(benches, Bench{
		Name: "Figure5Sweep/txstats",
		Op: func() uint64 {
			var cycles uint64
			for _, f := range harness.Benchmarks(scale) {
				for _, sys := range harness.Figure5Systems {
					for _, threads := range threadCounts {
						cycles += runCell(sys, f, threads, topt)
					}
				}
			}
			return cycles
		},
	})

	for _, f := range harness.Benchmarks(scale) {
		for _, sys := range harness.Figure5Systems {
			f, sys := f, sys
			benches = append(benches, Bench{
				Name: fmt.Sprintf("fig5/%s/%s/t%d", f.Name, sys, maxThreads),
				Op:   func() uint64 { return runCell(sys, f, maxThreads, opt) },
			})
		}
	}

	// Wall-clock comparison for the windowed-parallel scheduler: the same
	// scalemix cell under the single-token scheduler and under -sched
	// parallel. Results are bit-identical by construction (the golden and
	// litmus differential tests enforce it), so the ns/op ratio of these
	// two entries is purely the host-side speedup from overlapping the
	// workload's compute across cores. The ratio is hardware-conditional:
	// on a single-core runner the parallel entry is expected to be slower
	// (goroutine handoff without any overlap to pay for it); at 8+ cores
	// it is the scheduler's headline number. Neither entry is gated.
	scaleF := harness.ScaleBenchmark(scale)
	scaleProcs := harness.ScaleProcCounts(scale)
	scaleMax := scaleProcs[len(scaleProcs)-1]
	for _, sch := range []struct {
		name     string
		parallel bool
	}{{"single-token", false}, {"parallel", true}} {
		sch := sch
		sopt := opt
		sopt.Params.ParallelScheduler = sch.parallel
		benches = append(benches, Bench{
			Name: fmt.Sprintf("scale/%s/%s/t%d/%s", scaleF.Name, harness.UFOHybrid, scaleMax, sch.name),
			Op:   func() uint64 { return runCell(harness.UFOHybrid, scaleF, scaleMax, sopt) },
		})
	}

	// Service-workload entries: the whole small oltp sweep (all three
	// axes x all systems, the -experiment oltp hot path) plus one
	// per-system cell at the default sweep shape. Informational for now —
	// ungated until a few BENCH_*.json snapshots establish how noisy the
	// open-loop cells are (the later-gating plan is in EXPERIMENTS.md).
	benches = append(benches, Bench{
		Name: "oltp/sweep",
		Op: func() uint64 {
			rep, err := harness.Serial().OLTP(opt, scale, harness.DefaultOLTPSweep())
			if err != nil {
				panic(fmt.Sprintf("perf: oltp sweep failed: %v", err))
			}
			var cycles uint64
			for _, pt := range rep.Points {
				cycles += pt.Cycles
			}
			return cycles
		},
	})
	oltpF := harness.OLTPBenchmark(scale)
	oltpThreads := harness.OLTPThreads(scale)
	oopt := opt
	oopt.TxStats = true
	for _, sys := range harness.Figure5Systems {
		sys := sys
		benches = append(benches, Bench{
			Name: fmt.Sprintf("oltp/cell/%s/t%d", sys, oltpThreads),
			Op:   func() uint64 { return runCell(sys, oltpF, oltpThreads, oopt) },
		})
	}

	benches = append(benches, Bench{
		Name: "engine/handoff/t2",
		Op: func() uint64 {
			const steps = 200_000
			e := sim.New(sim.Config{Procs: 2, MaxSteps: 1 << 62})
			body := func(p *sim.Proc) {
				for i := 0; i < steps; i++ {
					p.Elapse(1)
				}
			}
			e.Run([]func(*sim.Proc){body, body})
			return e.Now()
		},
	})
	return benches
}

func runCell(sys harness.SystemKind, f harness.WorkloadFactory, threads int, opt harness.Options) uint64 {
	res := harness.Run(sys, f.New(), threads, opt)
	if res.Err != nil {
		panic(fmt.Sprintf("perf: %s/%s/%d failed validation: %v", f.Name, sys, threads, res.Err))
	}
	return res.Cycles
}
