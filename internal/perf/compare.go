package perf

import (
	"fmt"
	"regexp"
	"strings"
)

// Delta is a baseline-vs-current comparison for one entry.
type Delta struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	Ratio      float64 // CurNs / BaseNs; >1 is slower
	BaseCycles float64
	CurCycles  float64
	Gated      bool // matched the gate pattern
	Regressed  bool // gated and slower than tolerance allows
	Missing    bool // gated but absent from the current report
}

// Compare matches every baseline entry against the current report. Gate
// selects which entries are enforced: a gated entry regresses when its
// ns/op exceeds baseline*(1+tolerance), or when it is missing from the
// current report (a silently dropped benchmark must not pass the gate).
// Non-gated entries are reported informationally only.
func Compare(base, cur *Report, gate *regexp.Regexp, tolerance float64) []Delta {
	deltas := make([]Delta, 0, len(base.Entries))
	for _, b := range base.Entries {
		d := Delta{Name: b.Name, BaseNs: b.NsPerOp, BaseCycles: b.SimCyclesPerOp}
		if gate != nil && gate.MatchString(b.Name) {
			d.Gated = true
		}
		c, ok := cur.Lookup(b.Name)
		if !ok {
			d.Missing = true
			d.Regressed = d.Gated
			deltas = append(deltas, d)
			continue
		}
		d.CurNs = c.NsPerOp
		d.CurCycles = c.SimCyclesPerOp
		if b.NsPerOp > 0 {
			d.Ratio = c.NsPerOp / b.NsPerOp
		}
		if d.Gated && d.Ratio > 1+tolerance {
			d.Regressed = true
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters the deltas that fail the gate.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Format renders a comparison table.
func Format(deltas []Delta, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %14s %14s %8s %7s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "gate")
	for _, d := range deltas {
		status := ""
		switch {
		case d.Missing:
			status = "MISSING"
		case d.Regressed:
			status = "FAIL"
		case d.Gated:
			status = "ok"
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %8.3f %7s\n", d.Name, d.BaseNs, d.CurNs, d.Ratio, status)
		if d.CurCycles != d.BaseCycles && !d.Missing {
			fmt.Fprintf(&sb, "    note: sim cycles/op changed %.0f -> %.0f (simulated behavior differs)\n",
				d.BaseCycles, d.CurCycles)
		}
	}
	fmt.Fprintf(&sb, "gate tolerance: +%.0f%% ns/op\n", tolerance*100)
	return sb.String()
}
