package seq

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 20
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	return machine.New(p)
}

func TestSequentialDirectExecution(t *testing.T) {
	m := testMachine(1)
	s := New(m, Sequential)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 5)
			if tx.Load(0) != 5 {
				t.Error("read-own-write failed")
			}
		})
		ex.Store(64, 6)
		if ex.Load(64) != 6 {
			t.Error("nonT round trip failed")
		}
	}})
	if s.Stats().SWCommits != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestGlobalLockMutualExclusion(t *testing.T) {
	m := testMachine(4)
	s := New(m, GlobalLock)
	var inside, maxInside int
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		ex := s.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 25; n++ {
				ex.Atomic(func(tx tm.Tx) {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					tx.Store(0, tx.Load(0)+1)
					p.Elapse(uint64(50 + p.Rand().Intn(100)))
					inside--
				})
				p.Elapse(uint64(10 + p.Rand().Intn(50)))
			}
		})
	}
	m.Run(ws)
	if maxInside != 1 {
		t.Fatalf("critical-section occupancy reached %d, want 1", maxInside)
	}
	if got := m.Mem.Read64(0); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestGlobalLockSerializesButAllowsProgress(t *testing.T) {
	m := testMachine(2)
	s := New(m, GlobalLock)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Store(0, 1)
				p.Elapse(5_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(1_000) // arrive once the lock is firmly held
			start := p.Now()
			ex1.Atomic(func(tx tm.Tx) { tx.Store(64, 2) })
			if p.Now()-start < 3_000 {
				t.Error("second thread did not wait for the lock")
			}
		},
	})
	if m.Mem.Read64(0) != 1 || m.Mem.Read64(64) != 2 {
		t.Fatal("writes lost")
	}
}

func TestRetryPollsUnderLock(t *testing.T) {
	m := testMachine(2)
	s := New(m, GlobalLock)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var got uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				if tx.Load(0) == 0 {
					tx.Retry() // must drop the lock while polling
				}
				got = tx.Load(0)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(10_000)
			ex1.Atomic(func(tx tm.Tx) { tx.Store(0, 3) })
		},
	})
	if got != 3 {
		t.Fatalf("consumer read %d", got)
	}
}

func TestNames(t *testing.T) {
	m := testMachine(1)
	if New(m, Sequential).Name() != "sequential" || New(m, GlobalLock).Name() != "global-lock" {
		t.Fatal("names wrong")
	}
}
