// Package seq provides the two non-transactional baselines: a sequential
// executor (the denominator of every speedup in the paper's §5 Figure 5)
// and a global-lock executor. Neither instruments memory accesses; Atomic
// bodies run directly against simulated memory.
package seq

import (
	"repro/internal/machine"
	"repro/internal/tm"
)

// Mode selects the baseline flavor.
type Mode uint8

const (
	// Sequential runs Atomic bodies with no synchronization at all; it is
	// only meaningful on a single-processor machine.
	Sequential Mode = iota
	// GlobalLock serializes Atomic bodies behind one test-and-set lock
	// (with the lock word in simulated memory, so lock contention costs
	// coherence traffic).
	GlobalLock
)

// System implements tm.System for both baselines.
type System struct {
	m     *machine.Machine
	mode  Mode
	stats tm.Stats

	lockAddr uint64
	locked   bool
	// SpinCycles is the poll interval while waiting for the lock.
	SpinCycles uint64
}

// New builds a baseline executor.
func New(m *machine.Machine, mode Mode) *System {
	s := &System{m: m, mode: mode, SpinCycles: 30}
	if mode == GlobalLock {
		s.lockAddr = m.Mem.Sbrk(64)
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string {
	if s.mode == GlobalLock {
		return "global-lock"
	}
	return "sequential"
}

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec { return tm.Ordered(&exec{s: s, p: p}) }

type exec struct {
	s        *System
	p        *machine.Proc
	onCommit []func()
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.p }

func (e *exec) Load(addr uint64) uint64 {
	v, out := e.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic("seq: read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic("seq: write outcome " + out.Kind.String())
	}
}

// Atomic implements tm.Exec. Explicit aborts restart the body; Retry
// polls (there is nothing to coordinate a real sleep with).
func (e *exec) Atomic(body func(tm.Tx)) {
	e.p.TxLifeBegin()
	if e.s.mode == GlobalLock {
		e.acquire()
		defer e.release()
	}
	for {
		// Both baselines serialize rather than speculate, so every
		// attempt is a fallback-path attempt.
		e.p.TxLifeAttempt(machine.PathFallback)
		e.onCommit = e.onCommit[:0]
		_, retry, aborted := tm.Catch(func() { body(directTx{e}) })
		if !aborted {
			e.s.stats.SWCommits++
			e.p.TxLifeCommit(machine.PathFallback)
			defer func() {
				for _, f := range e.onCommit {
					f()
				}
			}()
			return
		}
		if retry {
			e.p.TxLifeRetryWait()
			// Poll-based waiting: drop and re-take the lock so writers
			// can make progress.
			if e.s.mode == GlobalLock {
				e.release()
			}
			e.p.Elapse(2000)
			if e.s.mode == GlobalLock {
				e.acquire()
			}
		} else {
			// Explicit abort is the only way a direct body unwinds.
			e.p.TxLifeAbort(machine.PathFallback, machine.AbortExplicit)
		}
		e.s.stats.SWAborts++
	}
}

// acquire takes the global lock with a test-and-set loop. The
// read-check-set sequence is atomic because the simulation engine yields
// only at memory operations and the decision happens between them.
func (e *exec) acquire() {
	for {
		e.Load(e.s.lockAddr)
		if !e.s.locked {
			e.s.locked = true
			e.Store(e.s.lockAddr, 1)
			return
		}
		e.p.Elapse(e.s.SpinCycles)
	}
}

func (e *exec) release() {
	e.s.locked = false
	e.Store(e.s.lockAddr, 0)
}

// directTx runs body accesses straight against memory.
type directTx struct{ e *exec }

var _ tm.Tx = directTx{}

func (d directTx) Load(addr uint64) uint64 { return d.e.Load(addr) }
func (d directTx) Store(addr, val uint64)  { d.e.Store(addr, val) }
func (d directTx) OnCommit(f func())       { d.e.onCommit = append(d.e.onCommit, f) }

// Nested implements tm.Tx: the non-TM baselines flatten nesting and
// cannot roll back, so an inner abort restarts the whole body.
func (d directTx) Nested(body func()) bool {
	if tm.CatchNested(body) {
		tm.Unwind(0)
	}
	return true
}
func (d directTx) Abort()   { tm.Unwind(0) }
func (d directTx) Retry()   { tm.UnwindRetry() }
func (d directTx) Syscall() { d.e.p.Elapse(1) }
