package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

// Example shows the hybrid's two execution paths: a small transaction
// commits in hardware; a transaction containing a system call fails over
// to the strongly-atomic software TM. Runs are deterministic.
func Example() {
	m := machine.New(machine.DefaultParams(1))
	sys := core.New(m, ustm.DefaultConfig(), core.DefaultPolicy())
	addr := m.Mem.Sbrk(64)

	ex := sys.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) { // hardware fast path
			tx.Store(addr, tx.Load(addr)+1)
		})
		ex.Atomic(func(tx tm.Tx) { // syscall: software fallback
			tx.Syscall()
			tx.Store(addr, tx.Load(addr)+1)
		})
	}})

	st := sys.Stats()
	fmt.Printf("value=%d hw=%d sw=%d failovers=%d\n",
		m.Mem.Read64(addr), st.HWCommits, st.SWCommits, st.Failovers)
	// Output: value=2 hw=1 sw=1 failovers=1
}
