// Package core implements the paper's primary contribution: the UFO
// hybrid transactional memory (§4.3). Transactions first execute
// as zero-instrumentation BTM hardware transactions; transactions that
// hardware cannot complete fail over to the strongly-atomic USTM.
//
// Because USTM protects everything it touches with UFO memory-protection
// bits, hardware transactions detect conflicts with concurrent software
// transactions for free: a conflicting access raises a UFO fault before
// it completes, and software's set_ufo_bits operations (which need
// exclusive coherence permission) kill hardware transactions that already
// hold the line. No software checks are added to the hardware path — the
// paper's pay-per-use principle.
//
// The BTM abort handler (Algorithm 3) classifies every abort into
// fail-to-software (overflow, syscall, I/O, exception, nesting, explicit),
// retry-in-hardware with exponential backoff (interrupt, conflict,
// UFO-kill, UFO-fault, nonT-conflict), or resolve-then-retry (page
// fault). §4.4's contention-management findings are exposed as
// Policy knobs so the Figure 8 sensitivity study can be reproduced.
package core

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/tm"
	"repro/internal/ustm"
)

// Policy collects the hybrid's contention-management knobs (Section 4.4 /
// Figure 8).
type Policy struct {
	// FailoverOnNthConflict, when positive, fails a transaction over to
	// software after that many conflict-family aborts (Figure 8's second
	// bar). Zero — the paper's recommended policy — never fails over on
	// contention.
	FailoverOnNthConflict int
	// StallOnUFOFault retries a faulting hardware access after a stall
	// instead of aborting the hardware transaction (Figure 8's third
	// bar). The access is retried up to UFOFaultStallTries times before
	// the transaction aborts anyway.
	StallOnUFOFault bool
	// UFOFaultStallTries bounds StallOnUFOFault retries (default 16).
	UFOFaultStallTries int
	// BackoffBase is the exponential-backoff unit for hardware retries
	// (cycles). The backoff is BackoffBase << min(aborts, 7), the paper's
	// saturating abort counter. Zero selects cm.DefaultBase (64); the
	// delay schedule itself is pluggable via SetBackoffPolicy.
	BackoffBase uint64
	// UFOFaultStallCycles is the per-try stall under StallOnUFOFault.
	UFOFaultStallCycles uint64
}

// DefaultPolicy is the configuration the paper recommends.
func DefaultPolicy() Policy {
	return Policy{
		FailoverOnNthConflict: 0,
		StallOnUFOFault:       false,
		UFOFaultStallTries:    16,
		BackoffBase:           64,
		UFOFaultStallCycles:   60,
	}
}

// System is the UFO hybrid TM. It implements tm.System.
type System struct {
	m   *machine.Machine
	stm *ustm.STM
	pol Policy

	backoff cm.Spec
	cmgr    *cm.Manager
}

// New builds a hybrid over the machine with the given USTM configuration
// and policy. The USTM must be strongly atomic — the hybrid's correctness
// depends on it — so cfg.StrongAtomicity is forced on.
func New(m *machine.Machine, cfg ustm.Config, pol Policy) *System {
	cfg.StrongAtomicity = true
	// BackoffBase is deliberately not defaulted here: zero means "use the
	// contention-management default" and is resolved at the single
	// validation site, cm.Spec.Policy.
	if pol.UFOFaultStallTries == 0 {
		pol.UFOFaultStallTries = 16
	}
	if pol.UFOFaultStallCycles == 0 {
		pol.UFOFaultStallCycles = 60
	}
	return &System{m: m, stm: ustm.New(m, cfg), pol: pol}
}

// Name implements tm.System.
func (s *System) Name() string { return "ufo-hybrid" }

// Stats implements tm.System. Hardware- and software-side counts share
// one structure (the software side is maintained by the embedded USTM).
func (s *System) Stats() *tm.Stats { return s.stm.Stats() }

// STM exposes the embedded software TM (tests and the retry machinery
// use it).
func (s *System) STM() *ustm.STM { return s.stm }

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented. The manager is built lazily so the
// BackoffBase knob and SetBackoffPolicy both take effect regardless of
// call order, as long as they precede the first transaction.
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.pol.BackoffBase)
	}
	return s.cmgr
}

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{
		s: s,
		u: btm.New(p),
		t: s.stm.Thread(p),
	})
}

// exec is the per-thread hybrid execution context.
type exec struct {
	s *System
	u *btm.Unit
	t *ustm.Thread

	// toWake accumulates retrying software transactions whose lines this
	// hardware transaction touched under masked faults; they are woken
	// after the hardware commit makes the update visible (Section 6).
	toWake []*ustm.Thread
	// onCommit accumulates deferred side effects registered by the
	// current hardware attempt (software attempts defer through USTM).
	onCommit []func()
	// ufoFaultTries counts consecutive stall-retries for one access under
	// the StallOnUFOFault policy.
	ufoFaultTries int
}

var _ tm.Exec = (*exec)(nil)

// Proc implements tm.Exec.
func (e *exec) Proc() *machine.Proc { return e.u.Proc() }

// Load implements tm.Exec's non-transactional access with USTM's strong
// atomicity fault handling.
func (e *exec) Load(addr uint64) uint64 { return ustm.NTLoad(e.s.stm, e.Proc(), addr) }

// Store implements tm.Exec.
func (e *exec) Store(addr, val uint64) { ustm.NTStore(e.s.stm, e.Proc(), addr, val) }

// Atomic implements tm.Exec: the hybrid transaction structure of
// Figure 4 — try BTM, run the abort handler, retry in hardware or fail
// over to USTM.
func (e *exec) Atomic(body func(tm.Tx)) {
	age := e.s.m.NextAge()
	stats := e.s.Stats()
	cmgr := e.s.CM()
	p := e.Proc()
	p.TxLifeBegin()
	conflictAborts := 0
	totalAborts := 0
	for {
		p.TxLifeAttempt(machine.PathHTM)
		reason, committed := e.tryHW(age, body)
		if committed {
			stats.HWCommits++
			p.TxLifeCommit(machine.PathHTM)
			cmgr.TxDone(age)
			e.wakeRetriers()
			e.runDeferred()
			return
		}
		p.TxLifeAbort(machine.PathHTM, reason)
		// The BTM abort handler (Algorithm 3).
		switch reason {
		case machine.AbortOverflow, machine.AbortSyscall, machine.AbortIO,
			machine.AbortException, machine.AbortNesting, machine.AbortExplicit:
			// Conditions hardware will never satisfy: fail over now.
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		case machine.AbortPageFault:
			// Resolve the fault (touch the page non-transactionally) and
			// retry in hardware without counting an abort.
			cmgr.PageFaultStall(e.Proc())
			continue
		case machine.AbortConflict, machine.AbortUFOKill,
			machine.AbortNonTConflict, machine.AbortUFOFault:
			conflictAborts++
			if e.s.pol.FailoverOnNthConflict > 0 && conflictAborts >= e.s.pol.FailoverOnNthConflict {
				e.failover(age, body)
				cmgr.TxDone(age)
				return
			}
		case machine.AbortInterrupt:
			// Likely transient: retry after the backoff.
		default:
			panic("core: unclassified abort reason " + reason.String())
		}
		totalAborts++ // the policy clamps the shift (saturating counter)
		stats.HWRetries++
		if cmgr.OnAbort(e.Proc(), age, totalAborts, reason) != cm.EscalateNone {
			// The policy declared this transaction starving: stop burning
			// hardware attempts and serialize it through the software path.
			e.failover(age, body)
			cmgr.TxDone(age)
			return
		}
	}
}

// failover runs the transaction in the STM with the age it was assigned
// at its first hardware attempt — which is why software transactions are
// almost always older than the hardware transactions they meet (§4.4).
func (e *exec) failover(age uint64, body func(tm.Tx)) {
	e.s.Stats().Failovers++
	e.toWake = e.toWake[:0]
	ustm.RunTx(e.t, age, body)
}

// tryHW attempts the transaction in BTM once.
func (e *exec) tryHW(age uint64, body func(tm.Tx)) (machine.AbortReason, bool) {
	e.toWake = e.toWake[:0]
	e.onCommit = e.onCommit[:0]
	if !e.u.Begin(age) {
		return machine.AbortNesting, false
	}
	reason, retryReq, aborted := tm.Catch(func() { body(hwTx{e}) })
	if aborted {
		if retryReq {
			// retry (transactional waiting) inside a hardware transaction
			// compiles to an explicit abort so the transaction fails over
			// to software, where waiting is supported (Section 6).
			reason = machine.AbortExplicit
		}
		return reason, false
	}
	out := e.u.End()
	if out.Kind == machine.HWAborted {
		return out.Reason, false
	}
	return machine.AbortNone, true
}

// runDeferred executes side effects registered by the committed hardware
// attempt.
func (e *exec) runDeferred() {
	for _, f := range e.onCommit {
		f()
	}
	e.onCommit = e.onCommit[:0]
}

// wakeRetriers delivers post-commit wake-ups owed to retrying software
// transactions.
func (e *exec) wakeRetriers() {
	if len(e.toWake) == 0 {
		return
	}
	e.s.stm.WakeRetriers(e.Proc(), e.toWake)
	e.toWake = e.toWake[:0]
}

// hwTx is the zero-instrumentation hardware transaction handle: loads and
// stores go straight to the transactional cache path with no otable
// lookups — the hybrid's whole point.
type hwTx struct{ e *exec }

var _ tm.Tx = hwTx{}

func (h hwTx) Load(addr uint64) uint64 {
	e := h.e
	for {
		v, out := e.u.Load(addr)
		switch out.Kind {
		case machine.OK:
			e.ufoFaultTries = 0
			return v
		case machine.HWAborted:
			tm.Unwind(out.Reason)
		case machine.UFOFault:
			if e.faultAllowsMaskedAccess(addr) {
				v, out = e.u.LoadMasked(addr)
				mustCompleteMasked(out)
				return v
			}
			// Stalled; loop retries the access.
		}
	}
}

func (h hwTx) Store(addr, val uint64) {
	e := h.e
	for {
		out := e.u.Store(addr, val)
		switch out.Kind {
		case machine.OK:
			e.ufoFaultTries = 0
			return
		case machine.HWAborted:
			tm.Unwind(out.Reason)
		case machine.UFOFault:
			if e.faultAllowsMaskedAccess(addr) {
				mustCompleteMasked(e.u.StoreMasked(addr, val))
				return
			}
		}
	}
}

// faultAllowsMaskedAccess is the user-mode UFO fault handler, executed
// while still inside the hardware transaction. It inspects the otable:
// if every protection owner is a retrying (descheduled) transaction, the
// access may complete under masked faults and the retriers are woken
// after commit (Section 6). An active software owner is a real conflict:
// stall and retry (StallOnUFOFault policy) or abort the hardware
// transaction. Returns true to take the masked path; on a stall it
// returns false and the caller retries the access; on abort it unwinds.
func (e *exec) faultAllowsMaskedAccess(addr uint64) bool {
	e.Proc().Elapse(30) // handler dispatch + otable inspection
	line := mem.LineOf(addr)
	if e.s.stm.OwnersAllRetrying(line) {
		e.noteRetriers(line)
		return true
	}
	if e.s.pol.StallOnUFOFault && e.ufoFaultTries < e.s.pol.UFOFaultStallTries {
		e.ufoFaultTries++
		e.Proc().Elapse(e.s.pol.UFOFaultStallCycles)
		return false
	}
	e.ufoFaultTries = 0
	e.u.Abort(machine.AbortUFOFault)
	tm.Unwind(machine.AbortUFOFault)
	return false // unreachable
}

// mustCompleteMasked validates a masked access's outcome: it may still
// abort asynchronously (unwound here) but can no longer fault.
func mustCompleteMasked(out machine.Outcome) {
	switch out.Kind {
	case machine.OK:
		return
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("core: masked access returned " + out.Kind.String())
}

func (e *exec) noteRetriers(line uint64) {
	for _, r := range e.s.stm.RetryingOwners(line) {
		dup := false
		for _, w := range e.toWake {
			if w == r {
				dup = true
				break
			}
		}
		if !dup {
			e.toWake = append(e.toWake, r)
		}
	}
}

func (h hwTx) OnCommit(f func()) { h.e.onCommit = append(h.e.onCommit, f) }

func (h hwTx) Abort() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx: hardware transactions flatten closed nesting
// (as BTM does); an inner abort therefore aborts the whole transaction —
// which, under a hybrid, fails over to software where partial abort is
// supported.
func (h hwTx) Nested(body func()) bool {
	if !h.e.u.Begin(0) {
		tm.Unwind(machine.AbortNesting)
	}
	if tm.CatchNested(body) {
		h.e.u.Abort(machine.AbortExplicit)
		tm.Unwind(machine.AbortExplicit)
	}
	h.e.u.End()
	return true
}

func (h hwTx) Retry() {
	// Translated to an explicit abort; the abort handler fails over to
	// software where retry is fully supported.
	h.e.u.Abort(machine.AbortExplicit)
	tm.UnwindRetry()
}

func (h hwTx) Syscall() {
	h.e.u.Abort(machine.AbortSyscall)
	tm.Unwind(machine.AbortSyscall)
}
