package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 5_000_000
	return machine.New(p)
}

func testHybrid(m *machine.Machine) *System {
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	return New(m, cfg, DefaultPolicy())
}

func TestSmallTxCommitsInHardware(t *testing.T) {
	m := testMachine(1)
	s := testHybrid(m)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for i := 0; i < 10; i++ {
			ex.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		}
	}})
	st := s.Stats()
	if st.HWCommits != 10 || st.SWCommits != 0 || st.Failovers != 0 {
		t.Fatalf("stats = %v: small transactions must all commit in hardware", st)
	}
	if m.Mem.Read64(0) != 10 {
		t.Fatalf("counter = %d", m.Mem.Read64(0))
	}
}

func TestOverflowFailsOverToSoftware(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 22
	params.Quantum = 0
	params.L1Bytes = 8 * 64 // 8 lines: tiny transactional capacity
	params.L1Ways = 1
	params.MaxSteps = 5_000_000
	m := machine.New(params)
	s := testHybrid(m)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			for i := uint64(0); i < 32; i++ {
				tx.Store(i*64, i)
			}
		})
	}})
	st := s.Stats()
	if st.Failovers != 1 || st.SWCommits != 1 || st.HWCommits != 0 {
		t.Fatalf("stats = %v: overflowing tx must fail over exactly once", st)
	}
	for i := uint64(0); i < 32; i++ {
		if m.Mem.Read64(i*64) != i {
			t.Fatalf("word %d lost", i)
		}
	}
	if m.Count.HWAbortsByReason[machine.AbortOverflow] == 0 {
		t.Fatal("no overflow abort recorded")
	}
}

func TestSyscallFailsOver(t *testing.T) {
	m := testMachine(1)
	s := testHybrid(m)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Syscall()
			tx.Store(0, 1)
		})
	}})
	st := s.Stats()
	if st.Failovers != 1 || st.SWCommits != 1 {
		t.Fatalf("stats = %v", st)
	}
	if m.Mem.Read64(0) != 1 {
		t.Fatal("post-syscall write lost")
	}
}

func TestHWAndSWTransactionsCoexist(t *testing.T) {
	// Proc 0 runs a long software transaction (forced via syscall) over
	// line A; proc 1 runs many small hardware transactions over line B.
	// The hardware transactions must keep committing in hardware while
	// the software transaction is in flight — the hybrid's headline
	// property.
	m := testMachine(2)
	s := testHybrid(m)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	const lineA, lineB = 0, 512 // distinct lines, both in the reserved page
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Syscall() // force software
				tx.Store(lineA, 7)
				p.Elapse(50_000) // stay in flight a long time
			})
		},
		func(p *machine.Proc) {
			p.Elapse(2000) // start inside the software transaction's window
			for i := 0; i < 20; i++ {
				ex1.Atomic(func(tx tm.Tx) {
					tx.Store(lineB, tx.Load(lineB)+1)
				})
			}
		},
	})
	st := s.Stats()
	if st.HWCommits != 20 {
		t.Fatalf("HWCommits = %d, want 20 (disjoint HW txs must not be disturbed)", st.HWCommits)
	}
	if st.SWCommits != 1 {
		t.Fatalf("SWCommits = %d", st.SWCommits)
	}
	if m.Mem.Read64(lineB) != 20 || m.Mem.Read64(lineA) != 7 {
		t.Fatal("values wrong")
	}
}

func TestHWTxKilledBySTMConflictRetriesInHW(t *testing.T) {
	// A hardware transaction conflicting with a software transaction is
	// killed by the STM's UFO-bit installation, retries in hardware, and
	// eventually commits in hardware (never failing over on contention —
	// the paper's key policy).
	m := testMachine(2)
	s := testHybrid(m)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Syscall() // software
				tx.Store(0, tx.Load(0)+100)
				p.Elapse(20_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(3000) // collide with the SW tx mid-flight
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		},
	})
	st := s.Stats()
	if st.HWCommits != 1 || st.SWCommits != 1 {
		t.Fatalf("stats = %v", st)
	}
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (conflicts must not cause failover)", st.Failovers)
	}
	if got := m.Mem.Read64(0); got != 101 {
		t.Fatalf("value = %d, want 101", got)
	}
	kills := m.Count.HWAbortsByReason[machine.AbortUFOKill] +
		m.Count.HWAbortsByReason[machine.AbortUFOFault] +
		m.Count.HWAbortsByReason[machine.AbortNonTConflict]
	if kills == 0 {
		t.Fatal("expected the HW tx to lose at least one round to the SW tx")
	}
}

func TestFailoverOnNthConflictPolicy(t *testing.T) {
	m := testMachine(2)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	pol := DefaultPolicy()
	pol.FailoverOnNthConflict = 1 // fail over on the first conflict abort
	s := New(m, cfg, pol)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Syscall()
				tx.Store(0, 1)
				p.Elapse(30_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(3000)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		},
	})
	if s.Stats().Failovers < 2 {
		t.Fatalf("Failovers = %d, want ≥2 (policy forces conflicted tx to software)", s.Stats().Failovers)
	}
	if m.Mem.Read64(0) != 2 {
		t.Fatalf("value = %d, want 2", m.Mem.Read64(0))
	}
}

func TestStallOnUFOFaultPolicy(t *testing.T) {
	m := testMachine(2)
	cfg := ustm.DefaultConfig()
	cfg.OTableRows = 1 << 12
	pol := DefaultPolicy()
	pol.StallOnUFOFault = true
	pol.UFOFaultStallTries = 1000
	s := New(m, cfg, pol)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				tx.Syscall()
				tx.Store(0, 10)
				p.Elapse(10_000)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(2000)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		},
	})
	if m.Mem.Read64(0) != 11 {
		t.Fatalf("value = %d, want 11", m.Mem.Read64(0))
	}
	if m.Count.HWAbortsByReason[machine.AbortUFOFault] != 0 {
		t.Fatal("stall policy must avoid UFO-fault aborts here")
	}
}

func TestRetryAcrossHWAndSW(t *testing.T) {
	// A consumer transaction retries (failing over from hardware to
	// software to wait); a hardware producer commits the flag and must
	// wake it.
	m := testMachine(2)
	s := testHybrid(m)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var got uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				if tx.Load(0) == 0 {
					tx.Retry()
				}
				got = tx.Load(0)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(30_000)
			ex1.Atomic(func(tx tm.Tx) {
				tx.Store(0, 9)
			})
		},
	})
	if got != 9 {
		t.Fatalf("consumer read %d, want 9", got)
	}
	if s.Stats().Retries == 0 {
		t.Fatal("no retry recorded")
	}
}

func TestDefaultPolicyValues(t *testing.T) {
	p := DefaultPolicy()
	if p.FailoverOnNthConflict != 0 || p.StallOnUFOFault {
		t.Fatal("default policy must match the paper's recommendations")
	}
	// New must default zero-valued knobs. BackoffBase stays zero on the
	// Policy struct — the contention-management layer resolves it (to
	// cm.DefaultBase) at its single validation site, exercised via CM().
	s := New(testMachine(1), ustm.DefaultConfig(), Policy{})
	if s.pol.UFOFaultStallTries == 0 {
		t.Fatal("zero policy not defaulted")
	}
	if s.CM().PolicyName() != "exp" {
		t.Fatalf("default backoff policy = %q, want exp", s.CM().PolicyName())
	}
	if s.Name() != "ufo-hybrid" {
		t.Fatal("name wrong")
	}
}
