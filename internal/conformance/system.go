// Package conformance runs identical transactional workloads across every
// TM system in the repository and checks that they all preserve the same
// invariants — the property that lets the harness compare them fairly.
//
// Paper: §2 (the atomicity semantics every system must agree on).
package conformance

import (
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/tm"
)

// NewSystem builds the named TM system over m. It is the single system
// builder shared by the conformance tests, the litmus executor, and the
// fuzz targets (previously three test-only copies of the same switch).
// name is a harness.SystemKind string; unknown names panic.
//
// The otable-backed systems get a 4096-row table: small enough that the
// thousands of machines a litmus sweep builds stay cheap, large enough
// that the tests' footprints effectively never alias rows.
func NewSystem(name string, m *machine.Machine) tm.System {
	opt := harness.DefaultOptions()
	opt.OTableRows = 1 << 12
	return harness.Build(harness.SystemKind(name), m, opt)
}
