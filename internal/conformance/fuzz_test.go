package conformance

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/tmtest"
)

// TestFuzzSerializabilityAllSystems drives every buildable SystemKind
// through tmtest.Recorder and the serializability checker across a seed
// matrix: 8 machine seeds × 2 thread counts (the sequential baseline is
// single-threaded by definition and runs at 1). The table iterates
// harness.AllSystems, so a newly added system is fuzzed automatically.
// Each run executes randomized read-modify-write transactions over a
// small shared address set — enough overlap to force real conflicts,
// failovers, and UFO kills — and then requires a serial order that
// explains every committed transaction's observations.
func TestFuzzSerializabilityAllSystems(t *testing.T) {
	const (
		seeds     = 8
		addrs     = 6
		txsPerThr = 10
	)
	for _, kind := range harness.AllSystems {
		threadCounts := []int{2, 3}
		if kind == harness.Sequential {
			threadCounts = []int{1}
		}
		for _, procs := range threadCounts {
			for seed := uint64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("%s/p%d/seed%d", kind, procs, seed), func(t *testing.T) {
					params := machine.DefaultParams(procs)
					params.MemBytes = 1 << 22
					params.MaxSteps = 30_000_000
					params.Seed = seed
					m := machine.New(params)
					rec := tmtest.NewRecorder(NewSystem(string(kind), m))
					base := m.Mem.Sbrk(addrs * 64)
					var ws []func(*machine.Proc)
					for i := 0; i < procs; i++ {
						ex := rec.Exec(m.Proc(i))
						ws = append(ws, func(p *machine.Proc) {
							r := p.Rand()
							for n := 0; n < txsPerThr; n++ {
								ex.Atomic(func(tx tm.Tx) {
									for k, ops := 0, 1+r.Intn(3); k < ops; k++ {
										src := base + uint64(r.Intn(addrs))*64
										dst := base + uint64(r.Intn(addrs))*64
										tx.Store(dst, tx.Load(dst)+tx.Load(src)+1)
									}
								})
								p.Elapse(uint64(10 + r.Intn(150)))
							}
						})
					}
					m.Run(ws)
					if got, want := len(rec.History), procs*txsPerThr; got != want {
						t.Fatalf("recorded %d transactions, want %d", got, want)
					}
					// All fuzzed addresses start at zero; reads of base+i
					// must be explained from the zero image.
					if err := tmtest.CheckSerializable(rec.History, nil); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
