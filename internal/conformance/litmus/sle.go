package litmus

import (
	"repro/internal/machine"
	"repro/internal/sle"
	"repro/internal/tm"
)

// sleSystem adapts speculative lock elision to tm.System so the litmus
// executor (and tmtest.Recorder) can drive it like the real TM systems:
// Atomic becomes a critical section under one program-wide elidable
// lock. SLE is the paper's §3.1 aside that hardware atomicity is useful
// beyond TM, and it is exactly the kind of system the litmus suite needs
// to separate — elided sections are strongly atomic (they run as
// hardware transactions the coherence protocol defends), but the
// lock-acquisition fallback writes in place where a non-transactional
// reader can see intermediate state.
type sleSystem struct {
	mgr   *sle.Manager
	lock  sle.Lock
	stats tm.Stats
}

func newSLESystem(m *machine.Machine) *sleSystem {
	mgr := sle.New(m)
	return &sleSystem{mgr: mgr, lock: mgr.NewLock()}
}

func (s *sleSystem) Name() string     { return "sle" }
func (s *sleSystem) Stats() *tm.Stats { return &s.stats }

func (s *sleSystem) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&sleExec{sys: s, e: s.mgr.Exec(p), p: p})
}

type sleExec struct {
	sys *sleSystem
	e   *sle.Exec
	p   *machine.Proc
}

var _ tm.Exec = (*sleExec)(nil)

func (e *sleExec) Proc() *machine.Proc { return e.p }

func (e *sleExec) Load(addr uint64) uint64 {
	v, out := e.p.NTRead(addr)
	if out.Kind != machine.OK {
		panic("litmus/sle: read outcome " + out.Kind.String())
	}
	return v
}

func (e *sleExec) Store(addr, val uint64) {
	if out := e.p.NTWrite(addr, val); out.Kind != machine.OK {
		panic("litmus/sle: write outcome " + out.Kind.String())
	}
}

func (e *sleExec) Atomic(body func(tm.Tx)) {
	e.e.Critical(e.sys.lock, func(mem sle.Mem) {
		body(sleTx{mem: mem})
	})
	e.sys.stats.HWCommits++ // counted as one critical section; split in sle.Stats
}

// sleTx exposes the critical-section accessor as a tm.Tx. Litmus bodies
// use only Load and Store; the transactional extensions have no lock
// analogue and panic if reached.
type sleTx struct{ mem sle.Mem }

var _ tm.Tx = sleTx{}

func (t sleTx) Load(addr uint64) uint64 { return t.mem.Load(addr) }
func (t sleTx) Store(addr, val uint64)  { t.mem.Store(addr, val) }

func (t sleTx) Abort()          { panic("litmus/sle: Abort unsupported under lock elision") }
func (t sleTx) Retry()          { panic("litmus/sle: Retry unsupported under lock elision") }
func (t sleTx) Syscall()        { panic("litmus/sle: Syscall unsupported under lock elision") }
func (t sleTx) OnCommit(func()) { panic("litmus/sle: OnCommit unsupported under lock elision") }
func (t sleTx) Nested(body func()) bool {
	panic("litmus/sle: Nested unsupported under lock elision")
}
