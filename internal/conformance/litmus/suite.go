package litmus

// The curated suite: the classic shapes from the litmus-test literature,
// adapted to the transactional/non-transactional boundary that strong
// atomicity is about. Each program's Forbidden states are outcomes no
// strongly-atomic serializable execution can produce (the suite tests
// assert they lie outside the oracle), and Witnesses records which
// systems actually exhibit one somewhere in the default schedule space —
// verified empirically by TestCuratedWitnesses, so a semantics change in
// any system shows up as a diff here.
//
// Paper: §2 (Table 1's programming-model discussion is exactly the
// mp-nt-witness and intermediate-value shapes: non-transactional code
// observing a transaction's partial effects).

// Curated returns the hand-written litmus programs.
func Curated() []*Program {
	return []*Program{
		{
			Name: "sb-tx",
			Doc: "Store buffering, fully transactional: both threads write one " +
				"variable and read the other inside single transactions. Plain " +
				"serializability already forbids both loads returning 0, so every " +
				"system — including the weakly-atomic ones — must refuse it.",
			Vars: 2,
			Threads: []Thread{
				T("writer-x", Atomic(W(0, 1), R(1))),
				T("writer-y", Atomic(W(1, 1), R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t0:r0": 0, "t1:r0": 0}},
			},
		},
		{
			Name: "sb-nt",
			Doc: "Store buffering, fully non-transactional. The simulated machine " +
				"is sequentially consistent (processors interleave at memory " +
				"operations; there are no store buffers), so the classic relaxed " +
				"outcome r0=r1=0 is unreachable on every system. The test pins " +
				"down that baseline: TM anomalies in the other programs come from " +
				"the TM runtimes, not the memory system.",
			Vars: 2,
			Threads: []Thread{
				T("writer-x", NT(W(0, 1)), NT(R(1))),
				T("writer-y", NT(W(1, 1)), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t0:r0": 0, "t1:r0": 0}},
			},
		},
		{
			Name: "sb-nt-fence",
			Doc: "Store buffering with a fence between the store and the load. On " +
				"this SC machine the fence is a schedulable no-op; the outcome set " +
				"must match sb-nt exactly (the enumerator's fence handling is what " +
				"is under test).",
			Vars: 2,
			Threads: []Thread{
				T("writer-x", NT(W(0, 1)), NT(F()), NT(R(1))),
				T("writer-y", NT(W(1, 1)), NT(F()), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t0:r0": 0, "t1:r0": 0}},
			},
		},
		{
			Name: "mp-nt-witness",
			Doc: "Message passing with a non-transactional observer: one " +
				"transaction writes flag y then payload x; a non-transactional " +
				"reader loads y then x. Seeing y=1 but x=0 means the reader " +
				"caught the transaction between its two stores — the canonical " +
				"strong-atomicity violation. Eager in-place systems without UFO " +
				"(ustm, global-lock) witness it; UFO systems stall the reader " +
				"until the transaction is done.",
			Vars: 2,
			Threads: []Thread{
				T("tx-writer", Atomic(W(1, 1), W(0, 1))),
				T("nt-reader", NT(R(1)), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t1:r0": 1, "t1:r1": 0}},
				Witnesses: []string{"global-lock", "ustm"},
			},
		},
		{
			Name: "mp-writeback",
			Doc: "Message passing against a lazy commit: the transaction writes " +
				"flag y, padding z, then payload x, so TL2's in-insertion-order " +
				"write-back publishes y well before x. A non-transactional reader " +
				"that loads y=1 and then x=0 has straddled the write-back window " +
				"— invisible to transactions (the locks are still held) but not " +
				"to non-transactional code. The eager in-place systems witness " +
				"the same state through their store gap.",
			Vars: 3,
			Threads: []Thread{
				T("tx-writer", Atomic(W(1, 1), W(2, 1), W(0, 1))),
				T("nt-reader", NT(R(1)), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t1:r0": 1, "t1:r1": 0}},
				Witnesses: []string{"global-lock", "tl2", "ustm"},
			},
		},
		{
			Name: "intermediate-value",
			Doc: "Dirty read of a value that never commits: the transaction " +
				"writes x=1 then overwrites it with x=2, so 1 exists only inside " +
				"the transaction. A non-transactional reader returning 1 has seen " +
				"eager uncommitted state — this is the shape that separates " +
				"eager-update weak atomicity (ustm, global-lock: witness) from " +
				"lazy weak atomicity (tl2: the redo log deduplicates, 1 is never " +
				"in memory).",
			Vars: 1,
			Threads: []Thread{
				T("tx-writer", Atomic(W(0, 1), W(0, 2))),
				T("nt-reader", NT(R(0)), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t1:r0": 1}, {"t1:r1": 1}},
				Witnesses: []string{"global-lock", "ustm"},
			},
		},
		{
			Name: "privatization",
			Doc: "Privatization: thread 0 transactionally raises a flag that " +
				"logically privatizes x, then accesses x non-transactionally; " +
				"thread 1's transaction reads the flag down (serializing before " +
				"the privatizer) and writes x. If thread 1's write lands in " +
				"memory after thread 0's private read — a delayed lazy write-back " +
				"— the private read misses an update from a transaction that " +
				"committed before the privatization: t1 saw y=0 yet t0's read of " +
				"x returned 0. TL2 is the only candidate (its commit write-back " +
				"is the delayed write), but its window here is one store wide " +
				"(~a line transfer) and the privatizer's own commit has to fit " +
				"inside it, so no schedule in the default space reaches it — the " +
				"anomaly is documented as unreachable in this simulation.",
			Vars: 2,
			Threads: []Thread{
				T("privatizer", Atomic(W(1, 1)), NT(R(0))),
				T("updater", Atomic(R(1), W(0, 42))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t1:r0": 0, "t0:r0": 0}},
			},
		},
		{
			Name: "publication",
			Doc: "Publication: thread 0 initializes x non-transactionally, then " +
				"transactionally publishes it by raising y; thread 1 " +
				"transactionally reads the flag and, having seen it up, reads x " +
				"non-transactionally. Seeing y=1 but x=0 would reorder the " +
				"publisher's initialization after its publishing transaction. " +
				"Unreachable on every system here: the initialization completes " +
				"before the publishing transaction begins on the same processor, " +
				"and the machine is SC.",
			Vars: 2,
			Threads: []Thread{
				T("publisher", NT(W(0, 1)), Atomic(W(1, 1))),
				T("subscriber", Atomic(R(1)), NT(R(0))),
			},
			Expect: Expect{
				Forbidden: []Cond{{"t1:r0": 1, "t1:r1": 0}},
			},
		},
	}
}
