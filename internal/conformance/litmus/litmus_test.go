package litmus

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"no vars", Program{Name: "x", Vars: 0, Threads: []Thread{T("a", NT(R(0)))}}},
		{"too many vars", Program{Name: "x", Vars: 5, Threads: []Thread{T("a", NT(R(0)))}}},
		{"no threads", Program{Name: "x", Vars: 1}},
		{"empty thread", Program{Name: "x", Vars: 1, Threads: []Thread{{Name: "a"}}}},
		{"empty step", Program{Name: "x", Vars: 1, Threads: []Thread{{Name: "a", Steps: []Step{{Tx: true}}}}}},
		{"multi-op nt step", Program{Name: "x", Vars: 1, Threads: []Thread{{Name: "a", Steps: []Step{{Ops: []Op{R(0), R(0)}}}}}}},
		{"var out of range", Program{Name: "x", Vars: 1, Threads: []Thread{T("a", NT(R(1)))}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed program", tc.name)
		}
	}
	for _, p := range Curated() {
		if err := p.Validate(); err != nil {
			t.Errorf("curated %s: %v", p.Name, err)
		}
	}
}

func TestStateKeyAndCond(t *testing.T) {
	s := State{Mem: []uint64{1, 0}, Regs: [][]uint64{{2}, {0, 7}}}
	if got, want := s.Key(), "x=1 y=0 t0:r0=2 t1:r0=0 t1:r1=7"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if !(Cond{"x": 1, "t1:r1": 7}).Matches(s) {
		t.Error("matching cond rejected")
	}
	if (Cond{"x": 0}).Matches(s) {
		t.Error("wrong value matched")
	}
	if (Cond{"nosuch": 0}).Matches(s) {
		t.Error("unknown observable matched")
	}
	if got, want := (Cond{"y": 2, "x": 1}).Key(), "x=1 y=2"; got != want {
		t.Fatalf("Cond.Key() = %q, want %q", got, want)
	}
}

// TestOracleSB pins the oracle on the fully-transactional store-buffering
// shape: two serializable orders, and never both loads zero.
func TestOracleSB(t *testing.T) {
	var sb *Program
	for _, p := range Curated() {
		if p.Name == "sb-tx" {
			sb = p
		}
	}
	oracle := Oracle(sb)
	want := []string{
		"x=1 y=1 t0:r0=0 t1:r0=1",
		"x=1 y=1 t0:r0=1 t1:r0=0",
	}
	if got := oracle.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("oracle = %v, want %v", got, want)
	}
}

// TestOracleFenceIsNoOp: the fence variant of store buffering has the
// same oracle as the plain one (SC machine, fences schedulable no-ops).
func TestOracleFenceIsNoOp(t *testing.T) {
	byName := map[string]*Program{}
	for _, p := range Curated() {
		byName[p.Name] = p
	}
	plain := Oracle(byName["sb-nt"]).Keys()
	fenced := Oracle(byName["sb-nt-fence"]).Keys()
	if !reflect.DeepEqual(plain, fenced) {
		t.Fatalf("fenced oracle %v differs from plain %v", fenced, plain)
	}
}

// TestForbiddenOutsideOracle: every curated Forbidden condition must be
// unreachable under strong atomicity — matching no oracle state. A
// condition that matched would make the whole verdict table vacuous.
func TestForbiddenOutsideOracle(t *testing.T) {
	for _, p := range Curated() {
		oracle := Oracle(p)
		for _, cond := range p.Expect.Forbidden {
			for _, key := range oracle.Keys() {
				st, _ := oracle.Get(key)
				if cond.Matches(st) {
					t.Errorf("%s: forbidden %q matches oracle state %q", p.Name, cond.Key(), key)
				}
			}
		}
	}
}

// TestEnumOrders checks exhaustive enumeration, the cap, and sampling
// determinism.
func TestEnumOrders(t *testing.T) {
	orders, total := EnumOrders([]int{2, 2}, 0, 1)
	if total != 6 || len(orders) != 6 {
		t.Fatalf("got %d orders (total %d), want 6", len(orders), total)
	}
	for _, o := range orders {
		n0, n1 := 0, 0
		for _, ti := range o {
			if ti == 0 {
				n0++
			} else {
				n1++
			}
		}
		if n0 != 2 || n1 != 2 {
			t.Fatalf("order %v is not a multiset permutation of {0,0,1,1}", o)
		}
	}
	capped, total := EnumOrders([]int{3, 3, 3}, 16, 42)
	if total <= 16 || len(capped) != 16 {
		t.Fatalf("cap: got %d orders (total %d)", len(capped), total)
	}
	again, _ := EnumOrders([]int{3, 3, 3}, 16, 42)
	if !reflect.DeepEqual(capped, again) {
		t.Fatal("sampled orders differ across identical calls")
	}
}

// TestExecuteDeterministic: one (system, program, schedule) triple is a
// pure function — byte-identical state and histories across replays.
func TestExecuteDeterministic(t *testing.T) {
	p := Curated()[3] // mp-nt-witness
	orders, _ := EnumOrders(p.OpCounts(), 0, 1)
	for _, sys := range Systems() {
		for _, order := range orders[:2] {
			sch := Schedule{Order: order, Gap: 130}
			a := Execute(sys, p, sch)
			b := Execute(sys, p, sch)
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s: run errors %v / %v", sys, a.Err, b.Err)
			}
			if a.State.Key() != b.State.Key() {
				t.Fatalf("%s: state %q != %q across replays", sys, a.State.Key(), b.State.Key())
			}
			if !reflect.DeepEqual(a.Committed, b.Committed) || !reflect.DeepEqual(a.NT, b.NT) {
				t.Fatalf("%s: histories differ across replays", sys)
			}
		}
	}
}

// TestCuratedSuite is the conformance gate: the full curated suite on
// every system (the whole harness matrix plus sle), with the CI-sized
// schedule space. Any class-check violation or witness-expectation
// mismatch — a strong system escaping the oracle, a weak system's
// documented anomaly disappearing or a new one appearing — fails here.
func TestCuratedSuite(t *testing.T) {
	cfg := SmallConfig()
	cfg.Enums = nil
	rep := Run(cfg)
	for _, f := range rep.Failures {
		t.Error(f)
	}
	// The expected strong/weak split, stated positively: these witnesses
	// must be present (Run already checks exact per-program match).
	wantWitness := map[string][]string{ // sorted
		"mp-nt-witness":      {"global-lock", "ustm"},
		"mp-writeback":       {"global-lock", "tl2", "ustm"},
		"intermediate-value": {"global-lock", "ustm"},
	}
	for _, pr := range rep.Programs {
		var got []string
		for _, v := range pr.Systems {
			if len(v.Witnessed) > 0 {
				got = append(got, v.System)
			}
			if ClassOf(v.System) == ClassStrong && len(v.Extras) > 0 {
				t.Errorf("%s: strong system %s escaped the oracle: %v", pr.Name, v.System, v.Extras)
			}
		}
		sort.Strings(got)
		want := wantWitness[pr.Name]
		if len(got) != len(want) {
			t.Errorf("%s: witnessing systems %v, want %v", pr.Name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: witnessing systems %v, want %v", pr.Name, got, want)
			}
		}
	}
}

// TestEnumerate pins the enumerator's determinism and filters.
func TestEnumerate(t *testing.T) {
	cfg := EnumConfig{Threads: 2, Vars: 2, MaxTxOps: 1, MaxNTOps: 1, Seed: 3}
	a := Enumerate(cfg)
	b := Enumerate(cfg)
	if a.Total == 0 {
		t.Fatal("enumeration is empty")
	}
	if len(a.Programs) != len(b.Programs) {
		t.Fatalf("non-deterministic: %d vs %d programs", len(a.Programs), len(b.Programs))
	}
	seen := map[string]bool{}
	for i, p := range a.Programs {
		if p.Name != b.Programs[i].Name {
			t.Fatalf("program %d named %q vs %q across runs", i, p.Name, b.Programs[i].Name)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if seen[p.Doc] {
			t.Fatalf("duplicate shape %q", p.Doc)
		}
		seen[p.Doc] = true
		txs, reads, writes := 0, 0, 0
		for _, th := range p.Threads {
			for _, st := range th.Steps {
				if st.Tx {
					txs++
				}
				for _, op := range st.Ops {
					switch op.Kind {
					case OpRead:
						reads++
					case OpWrite:
						writes++
					}
				}
			}
		}
		if txs == 0 || reads == 0 || writes == 0 {
			t.Fatalf("%s: uninteresting program survived the filter (tx=%d r=%d w=%d)", p.Name, txs, reads, writes)
		}
	}
	// The cap drops deterministically and reports the drop.
	capped := Enumerate(EnumConfig{Threads: 2, Vars: 2, MaxTxOps: 1, MaxNTOps: 1, MaxPrograms: 5, Seed: 3})
	if len(capped.Programs) != 5 || capped.Dropped != capped.Total-5 {
		t.Fatalf("cap: kept %d dropped %d of %d", len(capped.Programs), capped.Dropped, capped.Total)
	}
}

// TestReportDeterminism: the JSON report is byte-identical across runs
// and across worker counts (the acceptance criterion for the sweep's
// reproducibility).
func TestReportDeterminism(t *testing.T) {
	cfg := SmallConfig()
	cfg.Enums = []EnumConfig{{Threads: 2, Vars: 2, MaxTxOps: 1, MaxNTOps: 1, MaxPrograms: 4, Seed: 7}}
	render := func(workers int) []byte {
		c := cfg
		c.Workers = workers
		var b bytes.Buffer
		if err := Run(c).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	one := render(1)
	eight := render(8)
	if !bytes.Equal(one, eight) {
		t.Fatal("report JSON differs between 1 and 8 workers")
	}
	if !bytes.Equal(one, render(1)) {
		t.Fatal("report JSON differs across identical runs")
	}
}

// TestClassOf pins the class table against the live system list.
func TestClassOf(t *testing.T) {
	want := map[string]Class{
		"sequential":    ClassStrong,
		"global-lock":   ClassWeak,
		"unbounded-htm": ClassStrong,
		"ufo-hybrid":    ClassStrong,
		"hytm":          ClassWeak,
		"phtm":          ClassStrong,
		"ustm":          ClassWeak,
		"ustm+ufo":      ClassStrong,
		"tl2":           ClassSerializable,
		"hybrid-norec":  ClassSerializable,
		"sle":           ClassWeak,
	}
	systems := Systems()
	if len(systems) != len(want) {
		t.Fatalf("Systems() lists %d systems, class table has %d — update both", len(systems), len(want))
	}
	for _, sys := range systems {
		w, ok := want[sys]
		if !ok {
			t.Errorf("system %s missing from class expectations", sys)
			continue
		}
		if got := ClassOf(sys); got != w {
			t.Errorf("ClassOf(%s) = %s, want %s", sys, got, w)
		}
	}
	if ClassOf("some-future-system") != ClassWeak {
		t.Error("unknown systems must default to the weakest class")
	}
}

// TestSweepSequentialBaseline: the sequential executor runs threads back
// to back on one processor, so it observes exactly one outcome, and that
// outcome is in the oracle.
func TestSweepSequentialBaseline(t *testing.T) {
	for _, p := range Curated() {
		oracle := Oracle(p)
		orders, _ := EnumOrders(p.OpCounts(), 4, 1)
		sw := Sweep("sequential", p, oracle, orders, []uint64{0, 300})
		if sw.Observed.Len() != 1 {
			t.Errorf("%s: sequential observed %d states, want 1", p.Name, sw.Observed.Len())
		}
		if !sw.StrongOK {
			t.Errorf("%s: sequential escaped the oracle: %v", p.Name, sw.Extras)
		}
	}
}

func ExampleProgram() {
	p := &Program{
		Name: "example",
		Vars: 2,
		Threads: []Thread{
			T("writer", Atomic(W(0, 1), W(1, 1))),
			T("reader", NT(R(1)), NT(R(0))),
		},
	}
	fmt.Println(Oracle(p).Keys())
	// Output:
	// [x=1 y=1 t1:r0=0 t1:r1=0 x=1 y=1 t1:r0=0 t1:r1=1 x=1 y=1 t1:r0=1 t1:r1=1]
}

// TestCuratedSuiteParallelScheduler re-runs the conformance gate with
// every cell's machine under the windowed-parallel scheduler (DESIGN.md
// §14) and requires the report — verdicts, observed states, witnesses,
// everything — to be byte-identical to the serial-scheduler report.
// This is the litmus half of the parallel scheduler's proof obligation:
// not merely "still passes", but "indistinguishable".
func TestCuratedSuiteParallelScheduler(t *testing.T) {
	cfg := SmallConfig()
	cfg.Enums = nil
	render := func(sd Sched) []byte {
		c := cfg
		c.Sched = sd
		var buf bytes.Buffer
		if err := Run(c).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(Sched{})
	for _, sd := range []Sched{{Parallel: true}, {Parallel: true, WindowCycles: 97}} {
		got := render(sd)
		if !bytes.Equal(got, serial) {
			t.Errorf("window=%d: parallel-scheduler report differs from serial report", sd.WindowCycles)
		}
	}
}
