// Package litmus is the strong-atomicity conformance engine: a small
// litmus-test DSL (named threads of transactional and non-transactional
// reads, writes, and fences over a handful of cache lines), a sequential
// oracle that enumerates the outcomes a strongly-atomic serializable
// system may produce, and a deterministic executor that replays every
// program across an enumerated interleaving space on each TM system and
// classifies the observed outcome sets per atomicity class.
//
// The paper's core semantic claim is that UFO-based systems give strong
// atomicity — non-transactional accesses are ordered against
// transactions — while TL2/SLE-style systems are only weakly atomic.
// This package pins that split down as machine-checked verdict tables,
// in the litmus-test style of Chong, Sorensen & Wickerson (PAPERS.md).
//
// Paper: §2 (strong-atomicity semantics), §3.1 (the UFO mechanism that
// provides them), §4.2 (the USTM extension under test).
package litmus

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind is the kind of one DSL operation.
type OpKind uint8

// The operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpFence
)

// Op is one memory operation on a program variable. Every variable
// occupies its own cache line in the executed program, so Var doubles as
// a line index.
type Op struct {
	Kind OpKind
	Var  int
	Val  uint64 // value stored; writes only
}

// R reads variable v.
func R(v int) Op { return Op{Kind: OpRead, Var: v} }

// W writes val to variable v.
func W(v int, val uint64) Op { return Op{Kind: OpWrite, Var: v, Val: val} }

// F is a fence: a schedulable no-op. The simulated machine is
// sequentially consistent, so fences never change outcomes; they exist
// so classic weak-memory shapes can be written down verbatim and shown
// to collapse to their SC outcome sets.
func F() Op { return Op{Kind: OpFence} }

// Step is one schedulable unit of a thread: a transaction (Tx true,
// Ops its body) or a single non-transactional operation.
type Step struct {
	Tx  bool
	Ops []Op
}

// Atomic wraps ops into one transactional step.
func Atomic(ops ...Op) Step { return Step{Tx: true, Ops: ops} }

// NT wraps one non-transactional operation into a step.
func NT(op Op) Step { return Step{Ops: []Op{op}} }

// Thread is one named thread: a program-ordered sequence of steps.
type Thread struct {
	Name  string
	Steps []Step
}

// T builds a thread.
func T(name string, steps ...Step) Thread { return Thread{Name: name, Steps: steps} }

// Cond is a partial final-state predicate: every named observable (a
// variable name like "x", or a read register like "t1:r0") must hold the
// given value. An Expect lists Conds; a state matching any of them is a
// forbidden outcome.
type Cond map[string]uint64

// Expect is a program's expected-outcomes spec. Allowed outcomes are
// implicit — the oracle enumerates them — so the spec names the
// interesting *forbidden* states (outcomes outside the oracle set that a
// weakly-atomic system can exhibit) and the systems expected to actually
// witness one in this simulation.
type Expect struct {
	// Forbidden lists partial states that no strongly-atomic
	// serializable execution can produce. Each entry must lie outside
	// the oracle set (the curated-suite tests verify this).
	Forbidden []Cond
	// Witnesses names the systems expected to observe at least one
	// Forbidden state somewhere in the enumerated schedule space.
	// Weakly-atomic systems absent from this list have their anomaly
	// documented as unreachable in this simulation (e.g. SLE's
	// fallback path needs more consecutive aborts than a small litmus
	// program can provoke).
	Witnesses []string
}

// Program is one litmus test.
type Program struct {
	Name    string
	Doc     string
	Vars    int // number of variables (one cache line each), 1..4
	Threads []Thread
	Expect  Expect
}

// Validate rejects malformed programs.
func (p *Program) Validate() error {
	if p.Vars < 1 || p.Vars > 4 {
		return fmt.Errorf("litmus %s: Vars %d out of range [1, 4]", p.Name, p.Vars)
	}
	if len(p.Threads) < 1 || len(p.Threads) > 4 {
		return fmt.Errorf("litmus %s: %d threads out of range [1, 4]", p.Name, len(p.Threads))
	}
	for ti, th := range p.Threads {
		if len(th.Steps) == 0 {
			return fmt.Errorf("litmus %s: thread %d has no steps", p.Name, ti)
		}
		for si, st := range th.Steps {
			if len(st.Ops) == 0 {
				return fmt.Errorf("litmus %s: thread %d step %d has no ops", p.Name, ti, si)
			}
			if !st.Tx && len(st.Ops) != 1 {
				return fmt.Errorf("litmus %s: thread %d step %d: non-tx steps hold exactly one op", p.Name, ti, si)
			}
			for _, op := range st.Ops {
				if op.Kind != OpFence && (op.Var < 0 || op.Var >= p.Vars) {
					return fmt.Errorf("litmus %s: thread %d step %d: var %d out of range", p.Name, ti, si, op.Var)
				}
			}
		}
	}
	return nil
}

// OpCounts returns the number of schedulable operations per thread
// (every op, including each op inside a transaction, occupies one
// schedule slot — that is what lets non-transactional operations land
// between a transaction's operations).
func (p *Program) OpCounts() []int {
	counts := make([]int, len(p.Threads))
	for i, th := range p.Threads {
		for _, st := range th.Steps {
			counts[i] += len(st.Ops)
		}
	}
	return counts
}

// ReadCounts returns the number of read observations per thread.
func (p *Program) ReadCounts() []int {
	counts := make([]int, len(p.Threads))
	for i, th := range p.Threads {
		for _, st := range th.Steps {
			for _, op := range st.Ops {
				if op.Kind == OpRead {
					counts[i]++
				}
			}
		}
	}
	return counts
}

// VarName names variable i ("x", "y", "z", "w").
func VarName(i int) string {
	const names = "xyzw"
	if i >= 0 && i < len(names) {
		return names[i : i+1]
	}
	return fmt.Sprintf("v%d", i)
}

// State is one final outcome: the final memory value of every variable
// plus every read observation, per thread in program order.
type State struct {
	Mem  []uint64
	Regs [][]uint64
}

// Key renders the canonical form, e.g. "x=1 y=0 t0:r0=1 t1:r0=0".
// Memory values come first, then registers in (thread, read) order.
func (s State) Key() string {
	var b strings.Builder
	for i, v := range s.Mem {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", VarName(i), v)
	}
	for t, rs := range s.Regs {
		for r, v := range rs {
			fmt.Fprintf(&b, " t%d:r%d=%d", t, r, v)
		}
	}
	return b.String()
}

// lookup resolves an observable name against the state.
func (s State) lookup(name string) (uint64, bool) {
	for i := range s.Mem {
		if VarName(i) == name {
			return s.Mem[i], true
		}
	}
	var t, r int
	if n, err := fmt.Sscanf(name, "t%d:r%d", &t, &r); err == nil && n == 2 {
		if t >= 0 && t < len(s.Regs) && r >= 0 && r < len(s.Regs[t]) {
			return s.Regs[t][r], true
		}
	}
	return 0, false
}

// Matches reports whether the state satisfies every constraint of c.
func (c Cond) Matches(s State) bool {
	for name, want := range c {
		got, ok := s.lookup(name)
		if !ok || got != want {
			return false
		}
	}
	return true
}

// Key renders a Cond canonically (sorted by observable name).
func (c Cond) Key() string {
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, c[n])
	}
	return strings.Join(parts, " ")
}

// OutcomeSet is a deduplicated set of final states.
type OutcomeSet struct {
	states map[string]State
}

// NewOutcomeSet returns an empty set.
func NewOutcomeSet() *OutcomeSet {
	return &OutcomeSet{states: make(map[string]State)}
}

// Add inserts a state (copying its storage).
func (o *OutcomeSet) Add(s State) {
	key := s.Key()
	if _, ok := o.states[key]; ok {
		return
	}
	cp := State{Mem: append([]uint64(nil), s.Mem...), Regs: make([][]uint64, len(s.Regs))}
	for i, rs := range s.Regs {
		cp.Regs[i] = append([]uint64(nil), rs...)
	}
	o.states[key] = cp
}

// Has reports membership by canonical key.
func (o *OutcomeSet) Has(key string) bool {
	_, ok := o.states[key]
	return ok
}

// Get returns the state stored under key.
func (o *OutcomeSet) Get(key string) (State, bool) {
	s, ok := o.states[key]
	return s, ok
}

// Keys returns the sorted canonical keys.
func (o *OutcomeSet) Keys() []string {
	keys := make([]string, 0, len(o.states))
	for k := range o.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of distinct states.
func (o *OutcomeSet) Len() int { return len(o.states) }

// Class is an atomicity class: the guarantee the engine enforces for a
// system's observed outcomes.
type Class string

// The atomicity classes.
const (
	// ClassStrong: every observed outcome must lie inside the oracle
	// set — transactions atomic, non-transactional operations
	// individually atomic, program order respected (sequential
	// consistency, which the simulated machine provides).
	ClassStrong Class = "strong"
	// ClassSerializable ("serializable-only"): some single atomic order
	// of the committed transactions and the non-transactional
	// operations must explain every observation, but program order
	// across a thread's operations need not be respected by that order.
	// Lazy-versioning systems land here: a non-transactional reader can
	// straddle a commit's write-back, but it never sees data that was
	// not (or will not be) committed.
	ClassSerializable Class = "serializable-only"
	// ClassWeak: only transaction-vs-transaction isolation is
	// guaranteed (committed transactions plus non-transactional writes
	// must be serializable); non-transactional reads may observe
	// uncommitted eager state.
	ClassWeak Class = "weak"
)

// ClassOf assigns each system its atomicity class. Systems not listed
// (a future addition iterated via harness.AllSystems) default to
// ClassWeak — the weakest sound requirement — and still get a verdict
// table, so a new system cannot merge unclassified and unchecked.
//
// global-lock and sle sit in the weak class because both can run a
// critical section's stores in place while holding a real lock
// (global-lock always, sle on its acquisition fallback), where a
// concurrent non-transactional reader observes intermediate state. tl2
// and hybrid-norec are serializable-only, not weak: their lazy redo
// logs never expose uncommitted data, but their commit-time write-backs
// can be straddled by a non-transactional reader (hybrid-norec's
// seqlock only protects transactional peers — hardware transactions
// abort on the lock-acquisition write, software transactions
// revalidate — not uninstrumented code).
func ClassOf(system string) Class {
	switch system {
	case "sequential", "unbounded-htm", "ufo-hybrid", "phtm", "ustm+ufo":
		return ClassStrong
	case "tl2", "hybrid-norec":
		return ClassSerializable
	default: // ustm, hytm, global-lock, sle, and anything new
		return ClassWeak
	}
}
