package litmus

// The sequential oracle: the ground-truth outcome set for a strongly
// atomic, serializable, sequentially consistent system. It enumerates
// every interleaving of the program's atomic units — a whole transaction
// is one unit, each non-transactional operation is its own unit —
// respecting program order within each thread, and collects the distinct
// final states. Observed ⊆ oracle is exactly the strong-atomicity check.
//
// The unit counts are tiny (≤ 4 threads × ≤ 4 steps), so exhaustive DFS
// is cheap: the worst curated shape has well under 10⁴ interleavings.

// oracleState is the mutable interpreter state threaded through the DFS.
type oracleState struct {
	mem     []uint64
	regs    [][]uint64
	stepIdx []int // next step per thread
	readIdx []int // next read register per thread
}

// Oracle returns the exact outcome set of p under strong atomicity.
func Oracle(p *Program) *OutcomeSet {
	out := NewOutcomeSet()
	st := &oracleState{
		mem:     make([]uint64, p.Vars),
		regs:    make([][]uint64, len(p.Threads)),
		stepIdx: make([]int, len(p.Threads)),
		readIdx: make([]int, len(p.Threads)),
	}
	for i, n := range p.ReadCounts() {
		st.regs[i] = make([]uint64, n)
	}
	oracleDFS(p, st, out)
	return out
}

func oracleDFS(p *Program, st *oracleState, out *OutcomeSet) {
	done := true
	for ti := range p.Threads {
		if st.stepIdx[ti] >= len(p.Threads[ti].Steps) {
			continue
		}
		done = false
		step := p.Threads[ti].Steps[st.stepIdx[ti]]

		// Apply the unit, remembering enough to undo it.
		savedMem := make([]uint64, len(st.mem))
		copy(savedMem, st.mem)
		savedRead := st.readIdx[ti]
		for _, op := range step.Ops {
			switch op.Kind {
			case OpRead:
				st.regs[ti][st.readIdx[ti]] = st.mem[op.Var]
				st.readIdx[ti]++
			case OpWrite:
				st.mem[op.Var] = op.Val
			case OpFence:
				// No-op on a sequentially consistent machine.
			}
		}
		st.stepIdx[ti]++

		oracleDFS(p, st, out)

		// Undo.
		st.stepIdx[ti]--
		st.readIdx[ti] = savedRead
		copy(st.mem, savedMem)
	}
	if done {
		out.Add(State{Mem: st.mem, Regs: st.regs})
	}
}
