package litmus

import (
	"fmt"
	"sort"

	"repro/internal/conformance"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/tmtest"
)

// Systems returns every system the litmus engine drives: the full
// harness matrix plus the SLE adapter (lock elision is not a tm.System
// in the harness, but the paper's strong-atomicity story covers it).
func Systems() []string {
	out := make([]string, 0, len(harness.AllSystems)+1)
	for _, k := range harness.AllSystems {
		out = append(out, string(k))
	}
	return append(out, "sle")
}

// newSystem builds one system over m, routing "sle" to the adapter and
// everything else through the shared conformance builder.
func newSystem(name string, m *machine.Machine) tm.System {
	if name == "sle" {
		return newSLESystem(m)
	}
	return conformance.NewSystem(name, m)
}

// RunResult is one program execution under one schedule: the final
// state, the committed-transaction history, and each non-transactional
// operation as a single-op pseudo-record (for the serializability
// checks). A panic anywhere in the run lands in Err instead of crashing
// the sweep.
type RunResult struct {
	State     State
	Committed []tmtest.TxRecord
	NT        []tmtest.TxRecord
	Err       error
}

// AtomicHistory is the extended history for the serializable-only
// check: committed transactions plus every non-transactional operation
// as its own atomic unit. A system passes when some single serial order
// of all of them explains every observation (thread program order is
// deliberately not required — see ClassSerializable).
func (r RunResult) AtomicHistory() []tmtest.TxRecord {
	h := make([]tmtest.TxRecord, 0, len(r.Committed)+len(r.NT))
	h = append(h, r.Committed...)
	return append(h, r.NT...)
}

// WeakHistory is the history for the weak check: committed transactions
// plus non-transactional writes only. Non-transactional reads are
// unconstrained — a weakly-atomic system may let them observe
// uncommitted eager state — but transaction-vs-transaction isolation
// must still hold.
func (r RunResult) WeakHistory() []tmtest.TxRecord {
	h := make([]tmtest.TxRecord, 0, len(r.Committed)+len(r.NT))
	h = append(h, r.Committed...)
	for _, rec := range r.NT {
		if len(rec.Writes) > 0 {
			h = append(h, rec)
		}
	}
	return h
}

// Sched selects which engine scheduler litmus machines run under. The
// zero value is the serial fast path; Parallel selects the windowed-
// parallel scheduler (machine.Params.ParallelScheduler) with the given
// window width (0 = engine default). Conformance verdicts must not
// depend on this choice.
type Sched struct {
	Parallel     bool
	WindowCycles uint64
}

// Execute runs p on the named system under sch, on a fresh machine.
//
// Every operation is pinned to its schedule slot's absolute time with
// Proc.ElapseUntil, so the run is a pure function of (system, program,
// schedule): the engine's determinism does the rest. Aborted transaction
// attempts re-execute with their slot times already in the past, so
// retries run back to back — only the first attempt is schedule-shaped,
// which is exactly what a litmus test wants (the anomaly window is the
// first attempt; convergence after an abort just has to terminate).
func Execute(system string, p *Program, sch Schedule) (res RunResult) {
	return ExecuteSched(system, p, sch, Sched{})
}

// ExecuteSched is Execute under an explicit engine-scheduler choice.
func ExecuteSched(system string, p *Program, sch Schedule, sd Sched) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("litmus %s on %s: panic: %v", p.Name, system, r)
		}
	}()

	nthreads := len(p.Threads)
	procs := nthreads
	if system == "sequential" {
		// The sequential baseline is single-processor by definition; its
		// threads run back to back and the schedule degenerates.
		procs = 1
	}
	params := machine.DefaultParams(procs)
	params.MemBytes = 1 << 20
	params.Quantum = 0 // no timer interrupts: the schedule is the only control flow
	params.MaxSteps = 5_000_000
	params.ParallelScheduler = sd.Parallel
	params.WindowCycles = sd.WindowCycles
	m := machine.New(params)
	sys := newSystem(system, m)
	rec := tmtest.NewRecorder(sys)
	base := m.Mem.Sbrk(uint64(p.Vars) * 64) // one line per variable
	addr := func(v int) uint64 { return base + uint64(v)*64 }

	times := sch.slotTimes(p.OpCounts())
	regs := make([][]uint64, nthreads)
	ntRecs := make([][]tmtest.TxRecord, nthreads)

	threadBody := func(ti int, ex tm.Exec, proc *machine.Proc) {
		opIdx := 0
		for _, st := range p.Threads[ti].Steps {
			if st.Tx {
				ops, start := st.Ops, opIdx
				var tmp []uint64
				ex.Atomic(func(tx tm.Tx) {
					tmp = tmp[:0] // aborted attempts re-execute; keep the last
					for oi, op := range ops {
						proc.ElapseUntil(times[ti][start+oi])
						switch op.Kind {
						case OpRead:
							tmp = append(tmp, tx.Load(addr(op.Var)))
						case OpWrite:
							tx.Store(addr(op.Var), op.Val)
						}
					}
				})
				regs[ti] = append(regs[ti], tmp...)
				opIdx += len(ops)
			} else {
				op := st.Ops[0]
				proc.ElapseUntil(times[ti][opIdx])
				switch op.Kind {
				case OpRead:
					v := ex.Load(addr(op.Var))
					regs[ti] = append(regs[ti], v)
					ntRecs[ti] = append(ntRecs[ti], tmtest.TxRecord{
						Proc:  proc.ID(),
						Reads: []tmtest.Access{{Addr: addr(op.Var), Val: v}},
					})
				case OpWrite:
					ex.Store(addr(op.Var), op.Val)
					ntRecs[ti] = append(ntRecs[ti], tmtest.TxRecord{
						Proc:   proc.ID(),
						Writes: []tmtest.Access{{Addr: addr(op.Var), Val: op.Val}},
					})
				}
				opIdx++
			}
		}
	}

	var ws []func(*machine.Proc)
	if procs == 1 {
		ex := rec.Exec(m.Proc(0))
		ws = []func(*machine.Proc){func(proc *machine.Proc) {
			for ti := 0; ti < nthreads; ti++ {
				threadBody(ti, ex, proc)
			}
		}}
	} else {
		for ti := 0; ti < nthreads; ti++ {
			ti := ti
			ex := rec.Exec(m.Proc(ti))
			ws = append(ws, func(proc *machine.Proc) { threadBody(ti, ex, proc) })
		}
	}
	m.Run(ws)

	st := State{Mem: make([]uint64, p.Vars), Regs: regs}
	for v := 0; v < p.Vars; v++ {
		st.Mem[v] = m.Mem.Read64(addr(v))
	}
	res.State = st
	res.Committed = rec.History
	for _, rs := range ntRecs {
		res.NT = append(res.NT, rs...)
	}
	return res
}

// SweepResult aggregates one (program, system) cell over the whole
// schedule space.
type SweepResult struct {
	// Observed is the set of distinct final states seen.
	Observed *OutcomeSet
	// Extras are observed outcome keys outside the oracle set (sorted).
	// Non-empty Extras is exactly a strong-atomicity violation.
	Extras []string
	// Witnessed are the Expect.Forbidden conditions (by Cond.Key) that
	// matched at least one observed state (sorted).
	Witnessed []string
	// StrongOK, AtomicOK, WeakOK are the three class checks, each over
	// every run of the sweep.
	StrongOK bool
	AtomicOK bool
	WeakOK   bool
	// Errs collects distinct run errors (a run that panics fails the
	// sweep but not the process).
	Errs []string
	// Schedules is the number of (order, gap) pairs executed.
	Schedules int
}

// Check returns whether the sweep satisfies the named class's guarantee.
func (s SweepResult) Check(c Class) bool {
	if len(s.Errs) > 0 {
		return false
	}
	switch c {
	case ClassStrong:
		return s.StrongOK
	case ClassSerializable:
		return s.AtomicOK
	default:
		return s.WeakOK
	}
}

// Sweep executes p on system under every (order, gap) schedule and
// aggregates outcomes and checks against the oracle.
func Sweep(system string, p *Program, oracle *OutcomeSet, orders [][]int, gaps []uint64) SweepResult {
	return SweepSched(system, p, oracle, orders, gaps, Sched{})
}

// SweepSched is Sweep under an explicit engine-scheduler choice.
func SweepSched(system string, p *Program, oracle *OutcomeSet, orders [][]int, gaps []uint64, sd Sched) SweepResult {
	res := SweepResult{
		Observed: NewOutcomeSet(),
		StrongOK: true,
		AtomicOK: true,
		WeakOK:   true,
	}
	extras := map[string]bool{}
	witnessed := map[string]bool{}
	errs := map[string]bool{}
	for _, order := range orders {
		for _, gap := range gaps {
			res.Schedules++
			run := ExecuteSched(system, p, Schedule{Order: order, Gap: gap}, sd)
			if run.Err != nil {
				errs[run.Err.Error()] = true
				continue
			}
			res.Observed.Add(run.State)
			key := run.State.Key()
			if !oracle.Has(key) {
				res.StrongOK = false
				extras[key] = true
			}
			for _, cond := range p.Expect.Forbidden {
				if cond.Matches(run.State) {
					witnessed[cond.Key()] = true
				}
			}
			if tmtest.CheckSerializable(run.AtomicHistory(), nil) != nil {
				res.AtomicOK = false
			}
			if tmtest.CheckSerializable(run.WeakHistory(), nil) != nil {
				res.WeakOK = false
			}
		}
	}
	res.Extras = sortedKeys(extras)
	res.Witnessed = sortedKeys(witnessed)
	res.Errs = sortedKeys(errs)
	return res
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
