package litmus

import (
	"testing"
)

// FuzzLitmus is the native fuzz target: arbitrary bytes decode to a
// valid litmus program, which runs on every system across a small
// schedule sample and is cross-checked against the sequential oracle —
// strong systems must stay inside it, and every system must satisfy its
// atomicity class's serializability check. The committed corpus under
// testdata/fuzz/FuzzLitmus holds the curated programs' encodings; CI
// runs a 30-second smoke on top of the corpus.
func FuzzLitmus(f *testing.F) {
	for _, p := range Curated() {
		f.Add(EncodeProgram(p))
	}
	gaps := []uint64{0, 300}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid program: %v", err)
		}
		oracle := Oracle(p)
		orders, _ := EnumOrders(p.OpCounts(), 3, DecodeSeed(data))
		for _, sys := range Systems() {
			sw := Sweep(sys, p, oracle, orders, gaps)
			if len(sw.Errs) > 0 {
				t.Fatalf("%s on %s: %v", sys, p.Doc, sw.Errs)
			}
			class := ClassOf(sys)
			if !sw.Check(class) {
				t.Errorf("%s violates its %s-class check on %s (strong=%v atomic=%v weak=%v, extras=%v)",
					sys, class, p.Doc, sw.StrongOK, sw.AtomicOK, sw.WeakOK, sw.Extras)
			}
		}
	})
}

// TestCodecRoundTrip: encoding a curated program and decoding it back
// preserves the shape (structure, kinds, variables — values are
// positional by design).
func TestCodecRoundTrip(t *testing.T) {
	for _, p := range Curated() {
		q := DecodeProgram(EncodeProgram(p))
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: round-trip invalid: %v", p.Name, err)
		}
		if len(q.Threads) != len(p.Threads) || q.Vars != p.Vars {
			t.Fatalf("%s: round-trip changed dimensions", p.Name)
		}
		for ti := range p.Threads {
			if got, want := shapeKey(q.Threads[ti].Steps), shapeKey(p.Threads[ti].Steps); got != want {
				t.Errorf("%s thread %d: shape %q round-tripped to %q", p.Name, ti, want, got)
			}
		}
	}
}

// TestDecodeTotal: every input, including empty and short ones, decodes
// to a valid program.
func TestDecodeTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		{255},
		{0, 0, 0},
		{255, 255, 255, 255, 255, 255, 255, 255, 255, 255},
		{1, 2, 63, 17, 42, 63, 0, 9},
	}
	for _, in := range inputs {
		p := DecodeProgram(in)
		if err := p.Validate(); err != nil {
			t.Errorf("input %v: %v", in, err)
		}
	}
}
