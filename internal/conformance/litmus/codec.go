package litmus

// The fuzz codec: a byte encoding of litmus programs for the native
// go-fuzz target. Decoding is total — every byte string maps to a valid
// program via clamping, with zeros supplied when the input runs out — so
// the fuzzer's mutations always land on executable programs.
//
// Layout: [threads-2][vars-1] then per thread a shape byte (tx op count,
// non-transactional op count, transaction position) followed by one byte
// per operation (kind + 3*variable). Write values are not encoded; they
// are assigned positionally, like the enumerator's, so distinct writes
// stay distinguishable in outcome states.

// codecMaxOps bounds ops per transaction and non-transactional ops per
// thread — large enough to express every curated program.
const codecMaxOps = 3

type byteReader struct {
	data []byte
	pos  int
}

// next returns the next byte, or zero once the input is exhausted.
func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// DecodeProgram builds a valid program from arbitrary bytes.
func DecodeProgram(data []byte) *Program {
	r := &byteReader{data: data}
	threads := 2 + int(r.next())%2
	vars := 1 + int(r.next())%3
	p := &Program{Name: "fuzz", Vars: vars}
	decodeOp := func(pos int) Op {
		b := int(r.next())
		v := (b / 3) % vars
		switch b % 3 {
		case 0:
			return R(v)
		case 1:
			return W(v, 0) // value assigned below, positionally
		default:
			return F()
		}
	}
	for ti := 0; ti < threads; ti++ {
		s := int(r.next())
		txOps := s % (codecMaxOps + 1)
		ntOps := (s >> 2) % (codecMaxOps + 1)
		if txOps == 0 && ntOps == 0 {
			ntOps = 1
		}
		txPos := (s >> 4) % (ntOps + 1)

		var txBody []Op
		for i := 0; i < txOps; i++ {
			txBody = append(txBody, decodeOp(i))
		}
		var ntSeq []Op
		for i := 0; i < ntOps; i++ {
			ntSeq = append(ntSeq, decodeOp(txOps+i))
		}

		var steps []Step
		for _, op := range ntSeq[:txPos] {
			steps = append(steps, NT(op))
		}
		if txOps > 0 {
			steps = append(steps, Atomic(txBody...))
		}
		for _, op := range ntSeq[txPos:] {
			steps = append(steps, NT(op))
		}

		// Positional write values, as in the enumerator.
		pos := 0
		for si := range steps {
			for oi := range steps[si].Ops {
				if steps[si].Ops[oi].Kind == OpWrite {
					steps[si].Ops[oi].Val = uint64(ti*8 + pos + 1)
				}
				pos++
			}
		}
		p.Threads = append(p.Threads, Thread{Name: threadName(ti), Steps: steps})
	}
	p.Doc = "fuzz-decoded shape " + shapeDoc(p)
	return p
}

// DecodeSeed folds the remaining bytes (and the whole input) into a
// schedule-sampling seed, so mutating the tail explores new orders even
// with an unchanged program.
func DecodeSeed(data []byte) uint64 {
	var seed uint64 = 0x9e3779b97f4a7c15
	for _, b := range data {
		seed = seed*1099511628211 + uint64(b)
	}
	return seed
}

// EncodeProgram is the decoder's inverse for corpus seeding. It supports
// programs in codec range (2-3 threads, 1-3 vars, at most one
// transaction of up to codecMaxOps ops per thread, up to codecMaxOps
// non-transactional ops); it panics on anything else. Write values do
// not round-trip — decoding re-assigns them positionally — which is fine
// for seeds: the fuzzer cares about shapes, not constants.
func EncodeProgram(p *Program) []byte {
	if len(p.Threads) < 2 || len(p.Threads) > 3 || p.Vars > 3 {
		panic("litmus: program outside codec range")
	}
	out := []byte{byte(len(p.Threads) - 2), byte(p.Vars - 1)}
	encodeOp := func(op Op) byte {
		switch op.Kind {
		case OpRead:
			return byte(3 * op.Var)
		case OpWrite:
			return byte(1 + 3*op.Var)
		default:
			return 2
		}
	}
	for _, th := range p.Threads {
		var txBody, ntSeq []Op
		txPos, sawTx := 0, false
		for _, st := range th.Steps {
			if st.Tx {
				if sawTx {
					panic("litmus: codec supports one transaction per thread")
				}
				sawTx = true
				txPos = len(ntSeq)
				txBody = st.Ops
			} else {
				ntSeq = append(ntSeq, st.Ops[0])
			}
		}
		if len(txBody) > codecMaxOps || len(ntSeq) > codecMaxOps {
			panic("litmus: program outside codec range")
		}
		out = append(out, byte(len(txBody)|len(ntSeq)<<2|txPos<<4))
		for _, op := range txBody {
			out = append(out, encodeOp(op))
		}
		for _, op := range ntSeq {
			out = append(out, encodeOp(op))
		}
	}
	return out
}

func threadName(ti int) string { return string(rune('a' + ti)) }

func shapeDoc(p *Program) string {
	keys := make([]string, len(p.Threads))
	for i, th := range p.Threads {
		keys[i] = shapeKey(th.Steps)
	}
	s := keys[0]
	for _, k := range keys[1:] {
		s += " | " + k
	}
	return s
}
