package litmus

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// ReportSchema versions the JSON layout.
const ReportSchema = "tmsim-litmus-report/v1"

// Config selects what a litmus sweep runs.
type Config struct {
	// Systems to drive (defaults to Systems()).
	Systems []string
	// Workers is the number of concurrent (program, system) cells; the
	// report is byte-identical regardless (cells are assembled by
	// index, and every cell is internally deterministic).
	Workers int
	// Curated includes the hand-written suite.
	Curated bool
	// Enums adds auto-enumerated program sets.
	Enums []EnumConfig
	// OrderCap bounds interleaving orders per program (seeded sample
	// beyond it); Gaps is the slot-spacing sweep.
	OrderCap int
	Gaps     []uint64
	// Seed drives order sampling.
	Seed uint64
	// Sched selects the engine scheduler every cell's machine runs
	// under. The report must be byte-identical for every choice —
	// running the gate under the windowed-parallel scheduler is part of
	// that scheduler's determinism proof obligation (DESIGN.md §14).
	Sched Sched
}

// SmallConfig is the CI-sized sweep: the full curated suite plus a
// sampled 2-thread enumeration, on a reduced gap grid.
func SmallConfig() Config {
	return Config{
		Systems: Systems(),
		Curated: true,
		Enums: []EnumConfig{
			{Threads: 2, Vars: 2, MaxTxOps: 2, MaxNTOps: 1, MaxPrograms: 12, Seed: 7},
		},
		OrderCap: 12,
		Gaps:     []uint64{0, 130, 800},
		Seed:     1,
	}
}

// FullConfig is the exhaustive sweep: wider enumerations (including
// 3-thread shapes), the full gap grid, and a higher order cap.
func FullConfig() Config {
	return Config{
		Systems: Systems(),
		Curated: true,
		Enums: []EnumConfig{
			{Threads: 2, Vars: 2, MaxTxOps: 2, MaxNTOps: 2, MaxPrograms: 48, Seed: 7},
			{Threads: 3, Vars: 2, MaxTxOps: 1, MaxNTOps: 1, MaxPrograms: 16, Seed: 11},
		},
		OrderCap: 24,
		Gaps:     DefaultGaps,
		Seed:     1,
	}
}

// SystemVerdict is one (program, system) cell of the report.
type SystemVerdict struct {
	System   string   `json:"system"`
	Class    string   `json:"class"`
	Observed []string `json:"observed"`
	// Extras are observed states outside the oracle (strong-atomicity
	// violations); Witnessed are the matched forbidden conditions.
	Extras    []string `json:"extras,omitempty"`
	Witnessed []string `json:"witnessed,omitempty"`
	StrongOK  bool     `json:"strong_ok"`
	AtomicOK  bool     `json:"atomic_ok"`
	WeakOK    bool     `json:"weak_ok"`
	// Pass is the class check: strong systems must stay inside the
	// oracle, serializable-only systems must have an explaining serial
	// order over transactions and non-transactional ops, weak systems
	// over transactions and non-transactional writes.
	Pass bool     `json:"pass"`
	Errs []string `json:"errs,omitempty"`
}

// ProgramReport is one program's verdict table.
type ProgramReport struct {
	Name      string          `json:"name"`
	Source    string          `json:"source"` // "curated" or "enum"
	Doc       string          `json:"doc,omitempty"`
	Oracle    []string        `json:"oracle"`
	Orders    int             `json:"orders"`
	OrderSpc  int             `json:"order_space"`
	Schedules int             `json:"schedules"`
	Systems   []SystemVerdict `json:"systems"`
}

// EnumSummary reports one enumeration's coverage accounting.
type EnumSummary struct {
	Threads  int `json:"threads"`
	Vars     int `json:"vars"`
	MaxTxOps int `json:"max_tx_ops"`
	MaxNTOps int `json:"max_nt_ops"`
	Total    int `json:"total"`
	Kept     int `json:"kept"`
	Dropped  int `json:"dropped"`
}

// Report is the full sweep result.
type Report struct {
	Schema   string          `json:"schema"`
	Systems  []string        `json:"systems"`
	Gaps     []uint64        `json:"gaps"`
	OrderCap int             `json:"order_cap"`
	Enums    []EnumSummary   `json:"enums,omitempty"`
	Programs []ProgramReport `json:"programs"`
	// Separators are programs where at least one non-strong system
	// escaped the oracle — the shapes that actually distinguish strong
	// from weak atomicity in this simulation.
	Separators []string `json:"separators,omitempty"`
	// Failures gate CI: class-check violations, execution errors, and
	// curated witness-expectation mismatches.
	Failures []string `json:"failures,omitempty"`
}

// Run executes the configured sweep.
func Run(cfg Config) *Report {
	if len(cfg.Systems) == 0 {
		cfg.Systems = Systems()
	}
	if len(cfg.Gaps) == 0 {
		cfg.Gaps = DefaultGaps
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}

	type progEntry struct {
		p      *Program
		source string
	}
	var progs []progEntry
	if cfg.Curated {
		for _, p := range Curated() {
			progs = append(progs, progEntry{p, "curated"})
		}
	}
	rep := &Report{
		Schema:   ReportSchema,
		Systems:  cfg.Systems,
		Gaps:     cfg.Gaps,
		OrderCap: cfg.OrderCap,
	}
	for _, ec := range cfg.Enums {
		er := Enumerate(ec)
		rep.Enums = append(rep.Enums, EnumSummary{
			Threads: ec.Threads, Vars: ec.Vars,
			MaxTxOps: ec.MaxTxOps, MaxNTOps: ec.MaxNTOps,
			Total: er.Total, Kept: len(er.Programs), Dropped: er.Dropped,
		})
		for _, p := range er.Programs {
			progs = append(progs, progEntry{p, "enum"})
		}
	}

	// Per-program fixed inputs, computed up front (cheap, pure Go).
	oracles := make([]*OutcomeSet, len(progs))
	orders := make([][][]int, len(progs))
	spaces := make([]int, len(progs))
	for i, pe := range progs {
		if err := pe.p.Validate(); err != nil {
			panic(err) // program construction bug, not a runtime condition
		}
		oracles[i] = Oracle(pe.p)
		orders[i], spaces[i] = EnumOrders(pe.p.OpCounts(), cfg.OrderCap, cfg.Seed)
	}

	// The worker pool runs (program, system) cells; results land in a
	// pre-indexed matrix, so worker count and completion order cannot
	// change the report.
	type cell struct{ pi, si int }
	cells := make([]cell, 0, len(progs)*len(cfg.Systems))
	for pi := range progs {
		for si := range cfg.Systems {
			cells = append(cells, cell{pi, si})
		}
	}
	verdicts := make([][]SystemVerdict, len(progs))
	for pi := range verdicts {
		verdicts[pi] = make([]SystemVerdict, len(cfg.Systems))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(cells) {
					return
				}
				c := cells[n]
				pe, system := progs[c.pi], cfg.Systems[c.si]
				sw := SweepSched(system, pe.p, oracles[c.pi], orders[c.pi], cfg.Gaps, cfg.Sched)
				class := ClassOf(system)
				verdicts[c.pi][c.si] = SystemVerdict{
					System:    system,
					Class:     string(class),
					Observed:  sw.Observed.Keys(),
					Extras:    sw.Extras,
					Witnessed: sw.Witnessed,
					StrongOK:  sw.StrongOK,
					AtomicOK:  sw.AtomicOK,
					WeakOK:    sw.WeakOK,
					Pass:      sw.Check(class),
					Errs:      sw.Errs,
				}
			}
		}()
	}
	wg.Wait()

	sepSet := map[string]bool{}
	for pi, pe := range progs {
		pr := ProgramReport{
			Name:      pe.p.Name,
			Source:    pe.source,
			Doc:       pe.p.Doc,
			Oracle:    oracles[pi].Keys(),
			Orders:    len(orders[pi]),
			OrderSpc:  spaces[pi],
			Schedules: len(orders[pi]) * len(cfg.Gaps),
			Systems:   verdicts[pi],
		}
		for _, v := range pr.Systems {
			if !v.Pass {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s on %s: %s-class check failed (strong=%v atomic=%v weak=%v errs=%d)",
						pe.p.Name, v.System, v.Class, v.StrongOK, v.AtomicOK, v.WeakOK, len(v.Errs)))
			}
			if len(v.Extras) > 0 && ClassOf(v.System) != ClassStrong {
				sepSet[pe.p.Name] = true
			}
			if pe.source == "curated" {
				expected := contains(pe.p.Expect.Witnesses, v.System)
				if expected && len(v.Witnessed) == 0 {
					rep.Failures = append(rep.Failures,
						fmt.Sprintf("%s on %s: expected forbidden-state witness not observed", pe.p.Name, v.System))
				}
				if !expected && len(v.Witnessed) > 0 {
					rep.Failures = append(rep.Failures,
						fmt.Sprintf("%s on %s: unexpected forbidden-state witness %v", pe.p.Name, v.System, v.Witnessed))
				}
			}
		}
		rep.Programs = append(rep.Programs, pr)
	}
	rep.Separators = sortedKeys(sepSet)
	return rep
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// WriteJSON writes the canonical JSON form (stable field order, sorted
// slices — byte-identical across runs and worker counts).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human verdict tables.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "litmus sweep: %d programs x %d systems, %d gaps, order cap %d\n",
		len(r.Programs), len(r.Systems), len(r.Gaps), r.OrderCap)
	for _, e := range r.Enums {
		fmt.Fprintf(w, "enum t=%d vars=%d tx<=%d nt<=%d: %d shapes, kept %d (dropped %d)\n",
			e.Threads, e.Vars, e.MaxTxOps, e.MaxNTOps, e.Total, e.Kept, e.Dropped)
	}
	for _, pr := range r.Programs {
		fmt.Fprintf(w, "\n%s (%s): oracle %d states, %d orders of %d, %d schedules\n",
			pr.Name, pr.Source, len(pr.Oracle), pr.Orders, pr.OrderSpc, pr.Schedules)
		for _, v := range pr.Systems {
			status := "pass"
			if !v.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  %-14s %-17s %s  observed=%d extras=%d",
				v.System, v.Class, status, len(v.Observed), len(v.Extras))
			if len(v.Witnessed) > 0 {
				fmt.Fprintf(w, " witnessed=%v", v.Witnessed)
			}
			if len(v.Errs) > 0 {
				fmt.Fprintf(w, " errs=%d", len(v.Errs))
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Separators) > 0 {
		fmt.Fprintf(w, "\nseparators (weak systems escaped the oracle): %v\n", r.Separators)
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "\nFAILURES (%d):\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
	} else {
		fmt.Fprintf(w, "\nall class checks passed\n")
	}
}
