package litmus

import "repro/internal/sim"

// A Schedule pins every operation of a program to an absolute point in
// simulated time. Order is a multiset permutation of thread indices —
// Order[i] names the thread whose next operation owns global slot i —
// and each slot i is pinned to time i*Gap via machine.Proc.ElapseUntil.
// Replaying the same Schedule therefore yields the same machine-level
// interleaving under both the reference and the run-ahead scheduler,
// which is what makes the whole sweep deterministic.
//
// Gap is swept over several magnitudes because the interesting anomalies
// live at different timescales: a 0-cycle gap piles every operation onto
// the same instant (maximum overlap inside the memory system), while a
// gap larger than a miss-to-memory (300 cycles) or a TL2 commit
// write-back separates operations enough that a non-transactional reader
// can land between a transaction's eager stores or mid write-back.
type Schedule struct {
	Order []int
	Gap   uint64
}

// DefaultGaps is the standard gap sweep: same-instant, around an L2 hit
// and a line transfer (20/60), around a memory miss (300), and two
// settings that dwarf any single access so consecutive slots cannot
// overlap in the memory system at all.
var DefaultGaps = []uint64{0, 60, 130, 300, 800, 2500}

// slotTimes returns, per thread, the pinned slot time of each of its
// operations under sch (thread-local operation order).
func (sch Schedule) slotTimes(opCounts []int) [][]uint64 {
	times := make([][]uint64, len(opCounts))
	for i, n := range opCounts {
		times[i] = make([]uint64, 0, n)
	}
	for slot, ti := range sch.Order {
		times[ti] = append(times[ti], uint64(slot)*sch.Gap)
	}
	return times
}

// EnumOrders enumerates multiset permutations of thread indices for the
// given per-thread operation counts, in lexicographic order. When the
// space exceeds cap, it returns a deterministic seeded sample of cap
// orders instead (always including the all-thread-0-first and reversed
// extremes, which DFS would otherwise be biased toward or away from).
// The total size of the space is returned alongside.
func EnumOrders(opCounts []int, cap int, seed uint64) (orders [][]int, total int) {
	total = multinomial(opCounts)
	if cap <= 0 || total <= cap {
		orders = make([][]int, 0, total)
		remaining := append([]int(nil), opCounts...)
		prefix := make([]int, 0, sum(opCounts))
		enumOrdersDFS(remaining, prefix, &orders)
		return orders, total
	}
	// Sample: draw random multiset permutations by weighted choice at
	// each position. Dedup so the cap buys distinct schedules.
	rng := sim.NewRand(seed)
	seen := make(map[string]bool, cap)
	orders = make([][]int, 0, cap)
	add := func(o []int) {
		k := orderKey(o)
		if !seen[k] {
			seen[k] = true
			orders = append(orders, o)
		}
	}
	add(firstOrder(opCounts, false))
	add(firstOrder(opCounts, true))
	for tries := 0; len(orders) < cap && tries < cap*64; tries++ {
		add(randomOrder(opCounts, rng))
	}
	return orders, total
}

func enumOrdersDFS(remaining []int, prefix []int, out *[][]int) {
	done := true
	for ti, n := range remaining {
		if n == 0 {
			continue
		}
		done = false
		remaining[ti]--
		prefix = append(prefix, ti)
		enumOrdersDFS(remaining, prefix, out)
		prefix = prefix[:len(prefix)-1]
		remaining[ti]++
	}
	if done {
		*out = append(*out, append([]int(nil), prefix...))
	}
}

// firstOrder lays threads out back to back (thread 0's ops, then thread
// 1's, ...), or in reverse thread order when rev is set.
func firstOrder(opCounts []int, rev bool) []int {
	order := make([]int, 0, sum(opCounts))
	for i := range opCounts {
		ti := i
		if rev {
			ti = len(opCounts) - 1 - i
		}
		for k := 0; k < opCounts[ti]; k++ {
			order = append(order, ti)
		}
	}
	return order
}

func randomOrder(opCounts []int, rng *sim.Rand) []int {
	remaining := append([]int(nil), opCounts...)
	left := sum(remaining)
	order := make([]int, 0, left)
	for left > 0 {
		pick := rng.Intn(left)
		for ti, n := range remaining {
			if pick < n {
				order = append(order, ti)
				remaining[ti]--
				break
			}
			pick -= n
		}
		left--
	}
	return order
}

func orderKey(o []int) string {
	b := make([]byte, len(o))
	for i, ti := range o {
		b[i] = byte('0' + ti)
	}
	return string(b)
}

func multinomial(counts []int) int {
	// (n choose c0) * (n-c0 choose c1) * ... with overflow clamping:
	// anything past a million is "way beyond any cap" already.
	const clamp = 1 << 20
	n := sum(counts)
	total := 1
	for _, c := range counts {
		total *= choose(n, c)
		if total >= clamp || total < 0 {
			return clamp
		}
		n -= c
	}
	return total
}

func choose(n, k int) int {
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
