package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// The auto-enumerator: systematically generates every small litmus shape
// — threads holding at most one transaction of up to MaxTxOps operations
// plus up to MaxNTOps non-transactional operations, over a small shared
// variable set — so the curated suite's hand-picked anomalies are backed
// by a sweep that cannot miss a shape nobody thought of. Thread-order
// duplicates are canonicalized away, uninteresting programs (no sharing,
// no write, no read, or no transaction) are filtered, and when the space
// still exceeds MaxPrograms a seeded deterministic sample is taken and
// the drop is reported — never silent.

// EnumConfig bounds one enumeration.
type EnumConfig struct {
	// Threads is the number of threads per program (2 or 3).
	Threads int
	// Vars is the number of shared variables ops range over.
	Vars int
	// MaxTxOps bounds the single transaction's body (0 = no transaction
	// allowed in a thread shape).
	MaxTxOps int
	// MaxNTOps bounds the non-transactional operations per thread.
	MaxNTOps int
	// MaxPrograms caps how many programs are kept; 0 keeps everything.
	MaxPrograms int
	// Seed drives the deterministic sample when the cap binds.
	Seed uint64
}

// EnumResult is the generated program set plus accounting of what the
// cap dropped.
type EnumResult struct {
	Programs []*Program
	// Total is the number of distinct interesting programs enumerated
	// before sampling.
	Total int
	// Dropped is Total - len(Programs).
	Dropped int
}

// Enumerate generates cfg's program space.
func Enumerate(cfg EnumConfig) EnumResult {
	shapes := enumThreadShapes(cfg)
	// Odometer over one shape choice per thread.
	idx := make([]int, cfg.Threads)
	var programs []*Program
	seen := map[string]bool{}
	for {
		threads := make([]threadShape, cfg.Threads)
		for i, s := range idx {
			threads[i] = shapes[s]
		}
		if interesting(threads) {
			key := canonicalKey(threads)
			if !seen[key] {
				seen[key] = true
				programs = append(programs, buildProgram(cfg, threads, len(programs)))
			}
		}
		// Advance the odometer.
		pos := cfg.Threads - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < len(shapes) {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			break
		}
	}
	res := EnumResult{Programs: programs, Total: len(programs)}
	if cfg.MaxPrograms > 0 && len(programs) > cfg.MaxPrograms {
		res.Programs = samplePrograms(programs, cfg.MaxPrograms, cfg.Seed)
		res.Dropped = res.Total - len(res.Programs)
	}
	return res
}

// threadShape is one thread's structure before variables get addresses.
type threadShape struct {
	steps []Step
	key   string
}

// enumThreadShapes lists every distinct thread shape under cfg: an
// optional transaction of 1..MaxTxOps operations placed at any position
// among 0..MaxNTOps non-transactional operations (or no transaction and
// 1..MaxNTOps non-transactional operations).
func enumThreadShapes(cfg EnumConfig) []threadShape {
	ops := enumOps(cfg.Vars)
	var shapes []threadShape
	add := func(steps []Step) {
		shapes = append(shapes, threadShape{steps: steps, key: shapeKey(steps)})
	}
	// Non-transactional op sequences, by length.
	ntSeqs := make([][][]Op, cfg.MaxNTOps+1)
	ntSeqs[0] = [][]Op{{}}
	for n := 1; n <= cfg.MaxNTOps; n++ {
		for _, prefix := range ntSeqs[n-1] {
			for _, op := range ops {
				ntSeqs[n] = append(ntSeqs[n], append(append([]Op(nil), prefix...), op))
			}
		}
	}
	// Transaction bodies, 1..MaxTxOps ops.
	var txBodies [][]Op
	cur := [][]Op{{}}
	for n := 1; n <= cfg.MaxTxOps; n++ {
		var next [][]Op
		for _, prefix := range cur {
			for _, op := range ops {
				body := append(append([]Op(nil), prefix...), op)
				next = append(next, body)
				txBodies = append(txBodies, body)
			}
		}
		cur = next
	}
	// Pure non-transactional threads.
	for n := 1; n <= cfg.MaxNTOps; n++ {
		for _, seq := range ntSeqs[n] {
			steps := make([]Step, 0, n)
			for _, op := range seq {
				steps = append(steps, NT(op))
			}
			add(steps)
		}
	}
	// One transaction at each position among the NT ops.
	for _, body := range txBodies {
		for n := 0; n <= cfg.MaxNTOps; n++ {
			for _, seq := range ntSeqs[n] {
				for pos := 0; pos <= n; pos++ {
					steps := make([]Step, 0, n+1)
					for _, op := range seq[:pos] {
						steps = append(steps, NT(op))
					}
					steps = append(steps, Atomic(body...))
					for _, op := range seq[pos:] {
						steps = append(steps, NT(op))
					}
					add(steps)
				}
			}
		}
	}
	return shapes
}

// enumOps lists the op alphabet: read or write of each variable. Write
// values are placeholders; buildProgram assigns distinct values.
func enumOps(vars int) []Op {
	out := make([]Op, 0, vars*2)
	for v := 0; v < vars; v++ {
		out = append(out, R(v), W(v, 0))
	}
	return out
}

// interesting filters program skeletons worth running: some variable is
// touched by two threads, at least one write, at least one read, and at
// least one transaction (purely non-transactional programs only test
// the SC machine, which sb-nt in the curated suite already covers).
func interesting(threads []threadShape) bool {
	varThreads := map[int]map[int]bool{}
	writes, reads, txs := 0, 0, 0
	for ti, th := range threads {
		for _, st := range th.steps {
			if st.Tx {
				txs++
			}
			for _, op := range st.Ops {
				if varThreads[op.Var] == nil {
					varThreads[op.Var] = map[int]bool{}
				}
				varThreads[op.Var][ti] = true
				switch op.Kind {
				case OpRead:
					reads++
				case OpWrite:
					writes++
				}
			}
		}
	}
	if txs == 0 || writes == 0 || reads == 0 {
		return false
	}
	for _, ts := range varThreads {
		if len(ts) >= 2 {
			return true
		}
	}
	return false
}

func shapeKey(steps []Step) string {
	var b strings.Builder
	for _, st := range steps {
		if st.Tx {
			b.WriteByte('[')
		}
		for _, op := range st.Ops {
			switch op.Kind {
			case OpRead:
				fmt.Fprintf(&b, "R%d", op.Var)
			case OpWrite:
				fmt.Fprintf(&b, "W%d", op.Var)
			case OpFence:
				b.WriteByte('F')
			}
		}
		if st.Tx {
			b.WriteByte(']')
		}
		b.WriteByte('.')
	}
	return b.String()
}

// canonicalKey sorts the per-thread shape keys so thread-permuted
// duplicates (threads are symmetric up to register naming) collapse.
func canonicalKey(threads []threadShape) string {
	keys := make([]string, len(threads))
	for i, th := range threads {
		keys[i] = th.key
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// buildProgram turns shapes into a runnable program, assigning each
// write a value unique to its (thread, op) position so outcome states
// identify which write a read observed.
func buildProgram(cfg EnumConfig, threads []threadShape, serial int) *Program {
	p := &Program{
		Name: fmt.Sprintf("gen-t%d-%04d", cfg.Threads, serial),
		Vars: cfg.Vars,
	}
	var keys []string
	for ti, th := range threads {
		keys = append(keys, th.key)
		pos := 0
		steps := make([]Step, len(th.steps))
		for si, st := range th.steps {
			ops := make([]Op, len(st.Ops))
			for oi, op := range st.Ops {
				if op.Kind == OpWrite {
					op.Val = uint64(ti*8 + pos + 1)
				}
				ops[oi] = op
				pos++
			}
			steps[si] = Step{Tx: st.Tx, Ops: ops}
		}
		p.Threads = append(p.Threads, Thread{Name: fmt.Sprintf("t%d", ti), Steps: steps})
	}
	p.Doc = "auto-enumerated shape " + strings.Join(keys, " | ")
	return p
}

// samplePrograms keeps a deterministic seeded sample of max programs
// (preserving enumeration order within the sample).
func samplePrograms(programs []*Program, max int, seed uint64) []*Program {
	rng := sim.NewRand(seed)
	// Partial Fisher-Yates over the index space, then sort the kept
	// indices to preserve order.
	idx := make([]int, len(programs))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < max; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	kept := append([]int(nil), idx[:max]...)
	sort.Ints(kept)
	out := make([]*Program, max)
	for i, k := range kept {
		out[i] = programs[k]
	}
	return out
}
