package conformance

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/seq"
	"repro/internal/stamp"
	"repro/internal/tm"
)

// concurrentSystems are the systems meaningful with >1 processor.
var concurrentSystems = []string{
	"ufo-hybrid", "hytm", "phtm", "ustm+ufo", "ustm", "tl2",
	"unbounded-htm", "global-lock",
}

func newMachine(procs int, quantum uint64) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = quantum
	p.MaxSteps = 30_000_000
	return machine.New(p)
}

func TestCounterInvariantAllSystems(t *testing.T) {
	for _, name := range concurrentSystems {
		for _, procs := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/p%d", name, procs), func(t *testing.T) {
				m := newMachine(procs, 0)
				sys := NewSystem(name, m)
				const perThread = 30
				var ws []func(*machine.Proc)
				for i := 0; i < procs; i++ {
					ex := sys.Exec(m.Proc(i))
					ws = append(ws, func(p *machine.Proc) {
						for n := 0; n < perThread; n++ {
							ex.Atomic(func(tx tm.Tx) {
								tx.Store(0, tx.Load(0)+1)
							})
							p.Elapse(uint64(10 + p.Rand().Intn(200)))
						}
					})
				}
				m.Run(ws)
				want := uint64(procs * perThread)
				if got := m.Mem.Read64(0); got != want {
					t.Fatalf("counter = %d, want %d", got, want)
				}
				st := sys.Stats()
				if st.Commits() != want {
					t.Fatalf("commits = %d, want %d", st.Commits(), want)
				}
			})
		}
	}
}

func TestBankTransferInvariantAllSystems(t *testing.T) {
	// N accounts, random transfers; the total balance is conserved.
	const accounts = 16
	const initial = 1000
	for _, name := range concurrentSystems {
		t.Run(name, func(t *testing.T) {
			m := newMachine(4, 0)
			sys := NewSystem(name, m)
			base := m.Mem.Sbrk(accounts * 64)
			for i := uint64(0); i < accounts; i++ {
				m.Mem.Write64(base+i*64, initial)
			}
			var ws []func(*machine.Proc)
			for i := 0; i < 4; i++ {
				ex := sys.Exec(m.Proc(i))
				ws = append(ws, func(p *machine.Proc) {
					r := p.Rand()
					for n := 0; n < 25; n++ {
						from := base + uint64(r.Intn(accounts))*64
						to := base + uint64(r.Intn(accounts))*64
						amt := uint64(r.Intn(50))
						ex.Atomic(func(tx tm.Tx) {
							f := tx.Load(from)
							if f < amt {
								return
							}
							tx.Store(from, f-amt)
							tx.Store(to, tx.Load(to)+amt)
						})
						p.Elapse(uint64(20 + r.Intn(100)))
					}
				})
			}
			m.Run(ws)
			var total uint64
			for i := uint64(0); i < accounts; i++ {
				total += m.Mem.Read64(base + i*64)
			}
			if total != accounts*initial {
				t.Fatalf("total balance = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestLargeTransactionsAllSystems(t *testing.T) {
	// Transactions that overflow the (shrunken) L1 force the hybrids to
	// software; everyone must still get the answer right.
	for _, name := range concurrentSystems {
		t.Run(name, func(t *testing.T) {
			params := machine.DefaultParams(2)
			params.MemBytes = 1 << 22
			params.Quantum = 0
			params.L1Bytes = 16 * 64
			params.L1Ways = 2
			params.MaxSteps = 30_000_000
			m := machine.New(params)
			sys := NewSystem(name, m)
			base := m.Mem.Sbrk(64 * 64)
			var ws []func(*machine.Proc)
			for i := 0; i < 2; i++ {
				ex := sys.Exec(m.Proc(i))
				ws = append(ws, func(p *machine.Proc) {
					for n := 0; n < 3; n++ {
						ex.Atomic(func(tx tm.Tx) {
							// Touch 48 lines: far beyond the 16-line L1.
							for j := uint64(0); j < 48; j++ {
								tx.Store(base+j*64, tx.Load(base+j*64)+1)
							}
						})
					}
				})
			}
			m.Run(ws)
			for j := uint64(0); j < 48; j++ {
				if got := m.Mem.Read64(base + j*64); got != 6 {
					t.Fatalf("word %d = %d, want 6", j, got)
				}
			}
		})
	}
}

func TestTimerInterruptsDoNotBreakInvariants(t *testing.T) {
	for _, name := range []string{"ufo-hybrid", "unbounded-htm", "phtm", "hytm"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(2, 3000) // aggressive quantum: many interrupts
			sys := NewSystem(name, m)
			var ws []func(*machine.Proc)
			for i := 0; i < 2; i++ {
				ex := sys.Exec(m.Proc(i))
				ws = append(ws, func(p *machine.Proc) {
					for n := 0; n < 20; n++ {
						ex.Atomic(func(tx tm.Tx) {
							tx.Store(0, tx.Load(0)+1)
							p.Elapse(500) // long enough to straddle quanta
						})
					}
				})
			}
			m.Run(ws)
			if got := m.Mem.Read64(0); got != 40 {
				t.Fatalf("counter = %d, want 40", got)
			}
			if m.Count.HWAbortsByReason[machine.AbortInterrupt] == 0 {
				t.Fatal("test expected some interrupt aborts (raise tx duration?)")
			}
		})
	}
}

func TestDeterministicCyclesAcrossRuns(t *testing.T) {
	run := func() uint64 {
		m := newMachine(4, 0)
		sys := NewSystem("ufo-hybrid", m)
		var ws []func(*machine.Proc)
		for i := 0; i < 4; i++ {
			ex := sys.Exec(m.Proc(i))
			ws = append(ws, func(p *machine.Proc) {
				r := p.Rand()
				for n := 0; n < 20; n++ {
					ex.Atomic(func(tx tm.Tx) {
						a := uint64(r.Intn(8)) * 64
						tx.Store(a, tx.Load(a)+1)
					})
					p.Elapse(uint64(r.Intn(50)))
				}
			})
		}
		m.Run(ws)
		return m.Cycles()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("cycles differ across identical runs: %d vs %d", a, b)
	}
}

func TestSequentialBaseline(t *testing.T) {
	m := newMachine(1, 0)
	sys := seq.New(m, seq.Sequential)
	ex := sys.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		for n := 0; n < 100; n++ {
			ex.Atomic(func(tx tm.Tx) {
				tx.Store(0, tx.Load(0)+1)
			})
		}
	}})
	if m.Mem.Read64(0) != 100 {
		t.Fatal("sequential baseline wrong")
	}
	if sys.Name() != "sequential" {
		t.Fatal("name wrong")
	}
}

func TestOnCommitRunsExactlyOnceAllSystems(t *testing.T) {
	// A transaction that aborts its first attempt and registers a
	// deferred side effect on every attempt: the effect must run exactly
	// once per Atomic, only for the committed attempt.
	for _, name := range concurrentSystems {
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, 0)
			sys := NewSystem(name, m)
			ex := sys.Exec(m.Proc(0))
			effects := 0
			m.Run([]func(*machine.Proc){func(p *machine.Proc) {
				for n := 0; n < 10; n++ {
					aborted := false
					ex.Atomic(func(tx tm.Tx) {
						tx.OnCommit(func() { effects++ })
						tx.Store(0, tx.Load(0)+1)
						if !aborted {
							aborted = true
							tx.Abort()
						}
					})
				}
			}})
			if effects != 10 {
				t.Fatalf("deferred effects ran %d times, want 10", effects)
			}
			// The global-lock and sequential baselines cannot roll back an
			// explicit abort (documented limitation), so the counter check
			// applies only to real TMs.
			if name != "global-lock" {
				if got := m.Mem.Read64(0); got != 10 {
					t.Fatalf("counter = %d, want 10", got)
				}
			}
		})
	}
}

func TestOnCommitSeesCommittedState(t *testing.T) {
	m := newMachine(1, 0)
	sys := NewSystem("ufo-hybrid", m)
	ex := sys.Exec(m.Proc(0))
	var observed uint64
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, 42)
			tx.OnCommit(func() { observed = m.Mem.Read64(0) })
		})
	}})
	if observed != 42 {
		t.Fatalf("deferred effect saw %d, want the committed 42", observed)
	}
}

func TestNestedTransactionsAllSystems(t *testing.T) {
	// An outer transaction commits its own write; a nested transaction
	// writes elsewhere and conditionally aborts. Systems with partial
	// abort (the STMs) keep the outer effects; hardware systems flatten —
	// the hybrid then fails the whole transaction over to software, where
	// partial abort works. Either way the final state is identical.
	for _, name := range concurrentSystems {
		switch name {
		case "global-lock":
			continue // the no-rollback baseline cannot abort at all
		case "unbounded-htm":
			// A pure HTM flattens nesting with no software to fall back
			// to: a deterministic inner abort re-executes forever. This is
			// precisely the extensibility gap the paper's hybrid approach
			// closes, so the exclusion is the point.
			continue
		}
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, 0)
			sys := NewSystem(name, m)
			ex := sys.Exec(m.Proc(0))
			var innerCommitted, innerAborted bool
			m.Run([]func(*machine.Proc){func(p *machine.Proc) {
				ex.Atomic(func(tx tm.Tx) {
					tx.Store(0, 1)
					innerCommitted = tx.Nested(func() {
						tx.Store(64, 2) // kept
					})
					innerAborted = !tx.Nested(func() {
						tx.Store(128, 3) // rolled back
						tx.Abort()
					})
					tx.Store(192, tx.Load(128)+10) // must see 0, not 3
				})
			}})
			if !innerCommitted {
				t.Fatal("clean nest did not commit")
			}
			if !innerAborted {
				// Flattening systems never return false: the inner abort
				// kills the whole transaction, which re-executes and, under
				// the hybrids, lands in the STM where the nest aborts
				// properly. Pure HTMs would retry forever on a
				// deterministic inner abort; the unbounded HTM converts it
				// to a full abort and the body's second run takes the same
				// path, so exclude it below.
				t.Fatal("aborting nest reported committed")
			}
			if m.Mem.Read64(0) != 1 || m.Mem.Read64(64) != 2 {
				t.Fatal("outer/nested-committed writes lost")
			}
			if m.Mem.Read64(128) != 0 {
				t.Fatalf("aborted nest leaked: %d", m.Mem.Read64(128))
			}
			if m.Mem.Read64(192) != 10 {
				t.Fatalf("post-nest read saw aborted state: %d", m.Mem.Read64(192))
			}
		})
	}
}

func TestExtendedWorkloadsAcrossKeySystems(t *testing.T) {
	// The extension workloads must hold their invariants on the hybrid,
	// a pure STM, and the lock baseline (the stamp package covers more).
	mk := map[string]func() stamp.Workload{
		"ssca2":     func() stamp.Workload { return stamp.NewSSCA2(48, 250) },
		"intruder":  func() stamp.Workload { return stamp.NewIntruder(18, 3) },
		"labyrinth": func() stamp.Workload { return stamp.NewLabyrinth(20, 20, 3) },
	}
	for wlName, factory := range mk {
		for _, sysName := range []string{"ufo-hybrid", "tl2", "global-lock"} {
			t.Run(wlName+"/"+sysName, func(t *testing.T) {
				m := newMachine(3, 0)
				sys := NewSystem(sysName, m)
				wl := factory()
				wl.Init(m, 3)
				bodies := make([]func(*machine.Proc), 3)
				for i := 0; i < 3; i++ {
					ex := sys.Exec(m.Proc(i))
					tid := i
					bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
				}
				m.Run(bodies)
				if err := wl.Validate(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
