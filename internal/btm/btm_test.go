package btm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func testMachine(procs int) *machine.Machine {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 20
	p.Quantum = 0
	p.MaxSteps = 2_000_000
	return machine.New(p)
}

func TestBeginEndRoundTrip(t *testing.T) {
	m := testMachine(1)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		if !u.Begin(m.NextAge()) {
			t.Fatal("Begin failed")
		}
		if out := u.Store(0, 7); out.Kind != machine.OK {
			t.Fatalf("Store: %v", out)
		}
		if v, out := u.Load(0); out.Kind != machine.OK || v != 7 {
			t.Fatalf("Load = %d/%v", v, out)
		}
		if out := u.End(); out.Kind != machine.OK {
			t.Fatalf("End: %v", out)
		}
	}})
	if m.Mem.Read64(0) != 7 {
		t.Fatal("commit lost write")
	}
}

func TestFlattenedNesting(t *testing.T) {
	m := testMachine(1)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		u.Begin(0) // nested: flattened, age ignored
		if st := u.Status(); st.Depth != 2 || !st.InTx {
			t.Fatalf("status = %+v", st)
		}
		u.Store(0, 1)
		if out := u.End(); out.Kind != machine.OK {
			t.Fatalf("inner End: %v", out)
		}
		if m.Mem.Read64(0) == 1 {
			t.Fatal("inner End must not commit")
		}
		if out := u.End(); out.Kind != machine.OK {
			t.Fatalf("outer End: %v", out)
		}
	}})
	if m.Mem.Read64(0) != 1 {
		t.Fatal("outer End did not commit")
	}
}

func TestNestingOverflowAborts(t *testing.T) {
	m := testMachine(1)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		for i := 0; i < MaxNesting-1; i++ {
			if !u.Begin(0) {
				t.Fatalf("Begin failed at depth %d", i+2)
			}
		}
		if u.Begin(0) {
			t.Fatal("Begin beyond MaxNesting must fail")
		}
		if st := u.Status(); st.LastAbort != machine.AbortNesting || st.InTx {
			t.Fatalf("status = %+v", st)
		}
	}})
}

func TestExplicitAbortStatusRegisters(t *testing.T) {
	m := testMachine(1)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		u.Store(0, 9)
		u.Abort(machine.AbortExplicit)
		st := u.Status()
		if st.InTx || st.LastAbort != machine.AbortExplicit {
			t.Fatalf("status = %+v", st)
		}
	}})
	if m.Mem.Read64(0) == 9 {
		t.Fatal("aborted store leaked")
	}
}

func TestNackRetryEventuallySucceeds(t *testing.T) {
	m := testMachine(2)
	u0, u1 := New(m.Proc(0)), New(m.Proc(1))
	var got uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			u0.Begin(m.NextAge()) // older: will hold line 0
			u0.Store(0, 77)
			p.Elapse(2000)
			if out := u0.End(); out.Kind != machine.OK {
				t.Errorf("older commit: %v", out)
			}
		},
		func(p *machine.Proc) {
			p.Elapse(100)
			u1.Begin(m.NextAge()) // younger: NACKed until the older commits
			v, out := u1.Load(0)
			if out.Kind != machine.OK {
				t.Errorf("younger load: %v", out)
				return
			}
			got = v
			u1.End()
		},
	})
	if got != 77 {
		t.Fatalf("younger read %d, want the committed 77", got)
	}
	if m.Count.Nacks == 0 {
		t.Fatal("no NACKs recorded")
	}
}

func TestOverflowReportsStatus(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 20
	params.Quantum = 0
	params.L1Bytes = 4 * 64
	params.L1Ways = 1
	m := machine.New(params)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		u.Store(0, 1)
		out := u.Store(4*64, 2)
		if out.Kind != machine.HWAborted || out.Reason != machine.AbortOverflow {
			t.Fatalf("outcome = %+v", out)
		}
		if st := u.Status(); st.LastAbort != machine.AbortOverflow {
			t.Fatalf("status = %+v", st)
		}
	}})
}

func TestUnboundedUnitIgnoresCapacity(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 20
	params.Quantum = 0
	params.L1Bytes = 4 * 64
	params.L1Ways = 1
	m := machine.New(params)
	u := NewUnbounded(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		for i := uint64(0); i < 32; i++ {
			if out := u.Store(i*64, i); out.Kind != machine.OK {
				t.Fatalf("store %d: %v", i, out)
			}
		}
		if out := u.End(); out.Kind != machine.OK {
			t.Fatalf("End: %v", out)
		}
	}})
	for i := uint64(0); i < 32; i++ {
		if m.Mem.Read64(i*64) != i {
			t.Fatalf("word %d lost", i)
		}
	}
}

func TestMaskedAccessBypassesUFO(t *testing.T) {
	m := testMachine(1)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		p.SetUFOEnabled(false)
		p.SetUFO(0, mem.UFOFaultAll)
		p.SetUFOEnabled(true)
		u.Begin(m.NextAge())
		if _, out := u.Load(0); out.Kind != machine.UFOFault {
			t.Fatalf("unmasked load: %v, want fault", out)
		}
		if _, out := u.LoadMasked(0); out.Kind != machine.OK {
			t.Fatalf("masked load: %v", out)
		}
		if out := u.StoreMasked(0, 5); out.Kind != machine.OK {
			t.Fatalf("masked store: %v", out)
		}
		if !p.UFOEnabled() {
			t.Fatal("UFO left disabled after masked access")
		}
		u.End()
	}})
	if m.Mem.Read64(0) != 5 {
		t.Fatal("masked store lost")
	}
}

func TestOverflowStatusReportsVictimAddress(t *testing.T) {
	params := machine.DefaultParams(1)
	params.MemBytes = 1 << 20
	params.Quantum = 0
	params.L1Bytes = 4 * 64
	params.L1Ways = 1
	m := machine.New(params)
	u := New(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		u.Begin(m.NextAge())
		u.Store(0, 1)
		u.Store(4*64, 2) // evicts line 0 → overflow
		st := u.Status()
		if st.LastAbort != machine.AbortOverflow {
			t.Fatalf("reason = %v", st.LastAbort)
		}
		// Table 1: "when an address is associated with the event ... it
		// is also recorded". The victim line's address is reported.
		if st.LastAbortAddr != 0 {
			t.Fatalf("abort address = %#x, want the evicted line 0", st.LastAbortAddr)
		}
	}})
}
