// Package btm implements BTM, the paper's "best-effort" hardware
// transactional memory (§3.1): transactions execute entirely in
// the L1 with speculative read/write tracking, abort on set overflow,
// interrupt, system call, I/O, exception, or coherence conflict, support
// only flattened nesting, and expose their fate through status registers
// (Table 1: btm_begin / btm_end / btm_abort / btm_mov).
//
// The conflict-detection and versioning mechanism itself lives in package
// machine (shared with the unbounded HTM); this package supplies BTM's
// ISA-level behaviour: nesting flattening, NACK re-request (the paper's
// 20-cycle retry), and the status registers the abort handler reads.
package btm

import (
	"repro/internal/machine"
)

// MaxNesting is the hardware flattened-nesting depth limit.
const MaxNesting = 8

// Status mirrors BTM's transactional status registers (btm_mov): whether
// a transaction is executing, its nesting depth, and why the last
// transaction aborted (with the associated address when one exists).
type Status struct {
	InTx          bool
	Depth         int
	LastAbort     machine.AbortReason
	LastAbortAddr uint64
}

// Unit is one processor's BTM context.
type Unit struct {
	p       *machine.Proc
	bounded bool
	depth   int
	status  Status
}

// New returns the BTM unit for a processor.
func New(p *machine.Proc) *Unit { return &Unit{p: p, bounded: true} }

// NewUnbounded returns a unit with the same interface whose transactions
// are not limited by the L1 (the idealized unbounded HTM of Section 5).
func NewUnbounded(p *machine.Proc) *Unit { return &Unit{p: p, bounded: false} }

// Proc returns the underlying processor.
func (u *Unit) Proc() *machine.Proc { return u.p }

// Status reads the status registers.
func (u *Unit) Status() Status {
	s := u.status
	s.InTx = u.p.HW() != nil
	s.Depth = u.depth
	return s
}

// Begin starts (or, when nested, flattens into) a transaction
// (btm_begin). It returns false if the nesting depth limit was exceeded,
// in which case the transaction has been aborted with AbortNesting.
func (u *Unit) Begin(age uint64) bool {
	if u.p.HW() != nil {
		u.depth++
		if u.depth > MaxNesting {
			u.abort(machine.AbortNesting, 0)
			return false
		}
		u.p.Elapse(1)
		return true
	}
	u.depth = 1
	u.p.BeginHW(age, u.bounded)
	u.p.Elapse(3) // register checkpoint
	return true
}

// End commits the (outermost) transaction (btm_end). For nested ends it
// just pops the flattened depth. It returns the commit outcome; a
// pending asynchronous abort surfaces here.
func (u *Unit) End() machine.Outcome {
	if u.p.HW() == nil {
		panic("btm: End with no transaction")
	}
	if u.depth > 1 {
		u.depth--
		u.p.Elapse(1)
		return machine.Outcome{Kind: machine.OK}
	}
	u.depth = 0
	out := u.p.CommitHW()
	u.note(out)
	u.p.Elapse(2) // flash-clear SR/SW, drop checkpoint
	return out
}

// Abort explicitly aborts the transaction (btm_abort) for the given
// reason, recording it in the status registers.
func (u *Unit) Abort(reason machine.AbortReason) {
	u.abort(reason, 0)
}

func (u *Unit) abort(reason machine.AbortReason, addr uint64) {
	if u.p.HW() == nil {
		panic("btm: Abort with no transaction")
	}
	u.depth = 0
	u.p.AbortHW(reason)
	u.status.LastAbort = reason
	u.status.LastAbortAddr = addr
	u.p.Elapse(2)
}

// AbortAttributed aborts like Abort but attributes the conflict edge to
// the aggressor processor (-1 for self) over the given address. Hybrids
// whose software barriers detect a conflict on another transaction's
// behalf use this so contention profiles blame the right party.
func (u *Unit) AbortAttributed(reason machine.AbortReason, aggressor int, addr uint64) {
	if u.p.HW() == nil {
		panic("btm: Abort with no transaction")
	}
	u.depth = 0
	u.p.AbortHWAttributed(reason, aggressor, addr)
	u.status.LastAbort = reason
	u.status.LastAbortAddr = addr
	u.p.Elapse(2)
}

// note records an abort outcome in the status registers.
func (u *Unit) note(out machine.Outcome) {
	if out.Kind == machine.HWAborted {
		u.depth = 0
		u.status.LastAbort = out.Reason
		u.status.LastAbortAddr = out.Addr
	}
}

// Load performs a transactional load, transparently re-requesting after
// NACKs (the paper's 20-cycle retry). The returned outcome is OK,
// UFOFault, or HWAborted — never Nacked.
func (u *Unit) Load(addr uint64) (uint64, machine.Outcome) {
	for {
		v, out := u.p.TxRead(addr)
		if out.Kind != machine.Nacked {
			u.note(out)
			return v, out
		}
		u.p.Elapse(u.p.Machine().NackCycles)
	}
}

// Store performs a transactional store with the same NACK handling.
func (u *Unit) Store(addr, val uint64) machine.Outcome {
	for {
		out := u.p.TxWrite(addr, val)
		if out.Kind != machine.Nacked {
			u.note(out)
			return out
		}
		u.p.Elapse(u.p.Machine().NackCycles)
	}
}

// LoadMasked performs a transactional load with UFO faults disabled for
// the duration of the access — the hybrid's fault handler uses this after
// determining that the protection belongs only to retrying (descheduled)
// transactions (Section 6).
func (u *Unit) LoadMasked(addr uint64) (uint64, machine.Outcome) {
	u.p.SetUFOEnabled(false)
	v, out := u.Load(addr)
	u.p.SetUFOEnabled(true)
	return v, out
}

// StoreMasked is the store counterpart of LoadMasked.
func (u *Unit) StoreMasked(addr, val uint64) machine.Outcome {
	u.p.SetUFOEnabled(false)
	out := u.Store(addr, val)
	u.p.SetUFOEnabled(true)
	return out
}
