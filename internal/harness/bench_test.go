package harness

import "testing"

// figure5SweepCells runs the small Figure 5 sweep serially: every
// benchmark workload on every Figure 5 system at the small thread
// counts. It is the baseline the contention acceptance criterion
// compares against — attribution disabled must be within noise of the
// seed, because the recorder hooks reduce to a nil check.
func figure5SweepCells(b *testing.B, opt Options) {
	b.Helper()
	for _, f := range Benchmarks(ScaleSmall) {
		for _, sys := range Figure5Systems {
			for _, threads := range ThreadCounts(ScaleSmall) {
				res := Run(sys, f.New(), threads, opt)
				if res.Err != nil {
					b.Fatalf("%s/%s/%d: %v", f.Name, sys, threads, res.Err)
				}
			}
		}
	}
}

// BenchmarkFigure5Sweep is the disabled-path benchmark: conflict
// attribution off (the default), recorder hooks on the nil fast path.
func BenchmarkFigure5Sweep(b *testing.B) {
	opt := testOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figure5SweepCells(b, opt)
	}
}

// BenchmarkFigure5SweepContention measures the same sweep with
// attribution enabled, bounding what -contention-out costs.
func BenchmarkFigure5SweepContention(b *testing.B) {
	opt := contentionOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figure5SweepCells(b, opt)
	}
}

// BenchmarkFigure5SweepTxstats measures the sweep with per-transaction
// lifecycle accounting enabled, bounding what -txstats-out costs. The
// CI perf gate compares BenchmarkFigure5Sweep (recorder absent, TxLife
// hooks on the nil fast path) against the committed baseline, which is
// what enforces the ≤2% disabled-path budget.
func BenchmarkFigure5SweepTxstats(b *testing.B) {
	opt := txstatsOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figure5SweepCells(b, opt)
	}
}
