package harness

import (
	"fmt"
	"io"

	"repro/internal/cm"
)

// PolicySystems are the hybrids the contention-management ablation
// compares: the paper's UFO hybrid and HybridNOrec, whose exemplar
// exposes the same retry/backoff knobs through its CM template
// parameter — the natural pair for measuring how policy choice
// interacts with fallback design.
var PolicySystems = []SystemKind{UFOHybrid, HybridNOrec}

// PolicyRow is one (workload, system, policy) cell of the contention-
// management policy ablation: the Figure 5 workload run on one
// PolicySystems hybrid at the scale's top thread count under one
// backoff policy.
type PolicyRow struct {
	Workload  string
	System    SystemKind
	Policy    string // -policy flag value: exp | linear | karma | serialize
	SeqCycles uint64
	Result    Result
}

// PolicySweep compares every contention-management policy (cm.Kinds)
// across the Figure 5 workloads on each PolicySystems hybrid at the
// scale's largest thread count. Like every sweep it fans out through
// the Runner's worker pool and is deterministic for every worker count:
// each cell owns its machine and instantiates its own policy from the
// value-typed spec.
func (r *Runner) PolicySweep(opt Options, scale Scale) ([]PolicyRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	factories := Benchmarks(scale)
	var jobs []Job
	for _, f := range factories {
		jobs = append(jobs, Job{System: Sequential, Factory: f, Threads: 1, Opt: opt})
		for _, sys := range PolicySystems {
			for _, kind := range cm.Kinds {
				o := opt
				o.CM = cm.Spec{Kind: kind}
				jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: o})
			}
		}
	}
	results, err := r.Execute(jobs)
	var out []PolicyRow
	i := 0
	for _, f := range factories {
		seq := results[i].Cycles
		i++
		for _, sys := range PolicySystems {
			for _, kind := range cm.Kinds {
				out = append(out, PolicyRow{
					Workload:  f.Name,
					System:    sys,
					Policy:    string(kind),
					SeqCycles: seq,
					Result:    results[i],
				})
				i++
			}
		}
	}
	return out, err
}

// PrintPolicySweep renders the policy comparison as one table per
// (workload, system): speedup plus the policy's own decision counters
// (delays issued, cycles spent backing off, starvation escalations)
// next to the retry/failover counts they drive.
func PrintPolicySweep(w io.Writer, rows []PolicyRow) {
	workload, system := "", SystemKind("")
	for _, r := range rows {
		if r.Workload != workload || r.System != system {
			workload, system = r.Workload, r.System
			fmt.Fprintf(w, "\nPolicy ablation — %s (%s, speedup vs. sequential; seq = %d cycles)\n",
				workload, system, r.SeqCycles)
			fmt.Fprintf(w, "%-11s %8s %10s %12s %12s %10s %10s\n",
				"policy", "speedup", "hwRetries", "failovers", "delayCycles", "delays", "starved")
		}
		m := r.Result.Metrics
		fmt.Fprintf(w, "%-11s %8.2f %10d %12d %12d %10d %10d\n",
			r.Policy, r.Result.Speedup(r.SeqCycles),
			r.Result.Stats.HWRetries, r.Result.Stats.Failovers,
			m.Counter("cm.delay_cycles"), m.Counter("cm.delays"),
			m.Counter("cm.starvation_escalations"))
	}
}
