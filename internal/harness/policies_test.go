package harness

import (
	"strings"
	"testing"

	"repro/internal/cm"
)

// TestPolicySweepDeterministicAndComplete: the policy ablation runs one
// cell per (workload, policy), is byte-deterministic across worker
// counts (each cell instantiates its own policy from the value-typed
// spec), and the rendered table names every policy with its decision
// counters.
func TestPolicySweepDeterministicAndComplete(t *testing.T) {
	opt := DefaultOptions()
	serial, err := Serial().PolicySweep(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Benchmarks(ScaleSmall)) * len(PolicySystems) * len(cm.Kinds)
	if len(serial) != want {
		t.Fatalf("rows = %d, want %d", len(serial), want)
	}
	parallel, err := Parallel(4).PolicySweep(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Workload != parallel[i].Workload ||
			serial[i].System != parallel[i].System ||
			serial[i].Policy != parallel[i].Policy ||
			serial[i].Result.Cycles != parallel[i].Result.Cycles {
			t.Fatalf("row %d differs across worker counts:\nserial   %+v\nparallel %+v",
				i, serial[i], parallel[i])
		}
	}

	var sb strings.Builder
	PrintPolicySweep(&sb, serial)
	out := sb.String()
	for _, k := range cm.Kinds {
		if !strings.Contains(out, string(k)) {
			t.Fatalf("table missing policy %q:\n%s", k, out)
		}
	}
	if !strings.Contains(out, "delayCycles") || !strings.Contains(out, "starved") {
		t.Fatalf("table missing decision counters:\n%s", out)
	}

	// Every ablated system appears in the rendered tables.
	for _, sys := range PolicySystems {
		if !strings.Contains(out, "("+string(sys)+",") {
			t.Fatalf("table missing system %q:\n%s", sys, out)
		}
	}

	// The policies genuinely differ: for each system, at least one
	// workload must show a different backoff-cycle total between exp and
	// karma (otherwise the spec plumbing silently fell back to the
	// default policy).
	byKey := map[string]uint64{}
	for _, r := range serial {
		byKey[r.Workload+"/"+string(r.System)+"/"+r.Policy] = r.Result.Metrics.Counter("cm.delay_cycles")
	}
	for _, sys := range PolicySystems {
		differs := false
		for _, f := range Benchmarks(ScaleSmall) {
			if byKey[f.Name+"/"+string(sys)+"/exp"] != byKey[f.Name+"/"+string(sys)+"/karma"] {
				differs = true
			}
		}
		if !differs {
			t.Fatalf("%s: exp and karma produced identical delay cycles on every workload: policy spec not applied", sys)
		}
	}
}
