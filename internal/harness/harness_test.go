package harness

import (
	"strings"
	"testing"
)

func testOptions() Options {
	opt := DefaultOptions()
	opt.Params.MemBytes = 1 << 24
	opt.OTableRows = 1 << 13
	return opt
}

func TestRunValidatesEveryWorkloadOnEverySystem(t *testing.T) {
	opt := testOptions()
	for _, f := range Benchmarks(ScaleSmall) {
		for _, sys := range append([]SystemKind{Sequential, GlobalLock}, Figure5Systems...) {
			threads := 2
			if sys == Sequential {
				threads = 1
			}
			r := Run(sys, f.New(), threads, opt)
			if r.Err != nil {
				t.Errorf("%s on %s: %v", f.Name, sys, r.Err)
			}
			if r.Cycles == 0 {
				t.Errorf("%s on %s: zero cycles", f.Name, sys)
			}
		}
	}
}

func TestSpeedupMath(t *testing.T) {
	r := Result{Cycles: 50}
	if got := r.Speedup(100); got != 2.0 {
		t.Fatalf("Speedup = %v", got)
	}
	if (Result{}).Speedup(100) != 0 {
		t.Fatal("zero-cycle speedup must be 0")
	}
}

func TestSeqBaselineDeterministic(t *testing.T) {
	opt := testOptions()
	f := Benchmarks(ScaleSmall)[0]
	a := SeqBaseline(f, opt)
	b := SeqBaseline(f, opt)
	if a.Cycles != b.Cycles {
		t.Fatalf("baseline not deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestPrintParams(t *testing.T) {
	var sb strings.Builder
	PrintParams(&sb, testOptions())
	if !strings.Contains(sb.String(), "NACK retry delay     20 cycles") {
		t.Fatalf("params output wrong:\n%s", sb.String())
	}
}

func TestBuildUnknownSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(SystemKind("nope"), nil, testOptions())
}

func TestBenchmarksAndThreadCounts(t *testing.T) {
	if len(Benchmarks(ScaleSmall)) != 5 || len(Benchmarks(ScaleFull)) != 5 {
		t.Fatal("expected 5 benchmarks per scale")
	}
	if ThreadCounts(ScaleFull)[len(ThreadCounts(ScaleFull))-1] != 16 {
		t.Fatal("full scale must reach 16 threads")
	}
}
