package harness

import (
	"encoding/json"
	"io"

	"repro/internal/obs"
)

// ReportSchemaVersion identifies the sweep metrics report JSON schema.
const ReportSchemaVersion = "tmsim-metrics-report/v1"

// CellMetrics is one sweep cell's identity plus its metrics snapshot.
type CellMetrics struct {
	Workload string        `json:"workload"`
	System   SystemKind    `json:"system"`
	Threads  int           `json:"threads"`
	Err      string        `json:"err,omitempty"`
	Metrics  *obs.Snapshot `json:"metrics"`
}

// MetricsReport accumulates per-cell metrics across one or more sweeps.
// Fed from Runner.Collect it is filled in job order, so for a fixed
// experiment sequence its JSON encoding is byte-identical for every
// worker count. It is not safe for concurrent use; the Runner serializes
// Collect invocations.
type MetricsReport struct {
	Cells []CellMetrics
}

// Collector returns a Runner.Collect callback appending into the report.
func (rep *MetricsReport) Collector() func(Job, Result) {
	return func(_ Job, res Result) {
		cell := CellMetrics{
			Workload: res.Workload,
			System:   res.System,
			Threads:  res.Threads,
			Metrics:  res.Metrics,
		}
		if res.Err != nil {
			cell.Err = res.Err.Error()
		}
		rep.Cells = append(rep.Cells, cell)
	}
}

// Aggregate merges every cell's snapshot: counters and gauges sum,
// histograms merge bucket-wise. Merging in cell order over commutative
// sums keeps the aggregate deterministic.
func (rep *MetricsReport) Aggregate() *obs.Snapshot {
	agg := obs.NewRegistry().Snapshot()
	for _, c := range rep.Cells {
		if c.Metrics != nil {
			agg.Add(c.Metrics)
		}
	}
	return agg
}

// reportJSON is the on-disk shape of a metrics report.
type reportJSON struct {
	Schema    string        `json:"schema"`
	Cells     []CellMetrics `json:"cells"`
	Aggregate *obs.Snapshot `json:"aggregate"`
}

// WriteJSON writes the report — schema tag, per-cell snapshots in sweep
// order, and the aggregate — as indented JSON followed by a newline.
func (rep *MetricsReport) WriteJSON(w io.Writer) error {
	out := reportJSON{
		Schema:    ReportSchemaVersion,
		Cells:     rep.Cells,
		Aggregate: rep.Aggregate(),
	}
	if out.Cells == nil {
		out.Cells = []CellMetrics{}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadMetricsReport parses a report written by WriteJSON, for offline
// reprocessing (EXPERIMENTS.md shows how to regenerate figure numbers
// from an archived report instead of rerunning the simulator).
func ReadMetricsReport(r io.Reader) (*MetricsReport, error) {
	var raw reportJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	return &MetricsReport{Cells: raw.Cells}, nil
}

// FindWorkload looks a workload factory up by name across the paper and
// extension benchmark sets at the given scale.
func FindWorkload(name string, scale Scale) (WorkloadFactory, bool) {
	all := append(Benchmarks(scale), ExtendedBenchmarks(scale)...)
	for _, f := range append(all, ScaleBenchmark(scale), OLTPBenchmark(scale)) {
		if f.Name == name {
			return f, true
		}
	}
	return WorkloadFactory{}, false
}
