package harness

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/stamp"
)

// These tests pin the paper's qualitative claims (the "shapes" of
// Figures 5–8) at test scale, so a change that silently breaks the
// reproduction fails loudly. Thresholds are deliberately loose: they
// encode who-beats-whom and rough factors, not exact numbers.

func claimsOptions() Options {
	opt := DefaultOptions()
	opt.Params.MemBytes = 1 << 24
	opt.OTableRows = 1 << 13
	return opt
}

func speedupOf(t *testing.T, kind SystemKind, f WorkloadFactory, threads int, opt Options) float64 {
	t.Helper()
	seq := Run(Sequential, f.New(), 1, opt)
	if seq.Err != nil {
		t.Fatal(seq.Err)
	}
	r := Run(kind, f.New(), threads, opt)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return r.Speedup(seq.Cycles)
}

func benchmarkNamed(t *testing.T, name string) WorkloadFactory {
	t.Helper()
	for _, f := range Benchmarks(ScaleSmall) {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no benchmark %q", name)
	return WorkloadFactory{}
}

// Claim (§5.2): on kmeans, the UFO hybrid performs within a whisker of
// the unbounded HTM ("less than a 1% difference").
func TestClaimHybridMatchesUnboundedOnKMeans(t *testing.T) {
	opt := claimsOptions()
	for _, name := range []string{"kmeans-high", "kmeans-low"} {
		f := benchmarkNamed(t, name)
		hy := speedupOf(t, UFOHybrid, f, 4, opt)
		un := speedupOf(t, UnboundedHTM, f, 4, opt)
		if hy < un*0.97 {
			t.Errorf("%s: hybrid %.2f vs unbounded %.2f — gap exceeds 3%%", name, hy, un)
		}
	}
}

// Claim (§5.2): HyTM's barriers cost it 10–20% on kmeans-high and it
// never beats the UFO hybrid on any benchmark.
func TestClaimHyTMLagsHybrid(t *testing.T) {
	opt := claimsOptions()
	for _, f := range Benchmarks(ScaleSmall) {
		hy := speedupOf(t, UFOHybrid, f, 4, opt)
		ht := speedupOf(t, HyTM, f, 4, opt)
		if ht > hy*1.02 {
			t.Errorf("%s: HyTM %.2f beats hybrid %.2f", f.Name, ht, hy)
		}
	}
	f := benchmarkNamed(t, "kmeans-high")
	hy := speedupOf(t, UFOHybrid, f, 4, opt)
	ht := speedupOf(t, HyTM, f, 4, opt)
	if ht > hy*0.95 {
		t.Errorf("kmeans-high: HyTM %.2f should lag hybrid %.2f by ≥5%%", ht, hy)
	}
}

// Claim (§5.2): the STMs run far below the hardware-based systems at
// every thread count (their single-thread overhead alone is ~2–3×).
func TestClaimSTMsWellBelowHTM(t *testing.T) {
	opt := claimsOptions()
	f := benchmarkNamed(t, "vacation-low")
	un := speedupOf(t, UnboundedHTM, f, 4, opt)
	for _, stm := range []SystemKind{USTM, USTMUFO, TL2} {
		s := speedupOf(t, stm, f, 4, opt)
		if s > un*0.7 {
			t.Errorf("%s %.2f too close to unbounded %.2f on vacation-low", stm, s, un)
		}
	}
}

// Claim (§5.2/Figure 5): making USTM strongly atomic via UFO adds little
// overhead to the baseline USTM.
func TestClaimStrongAtomicityNearlyFree(t *testing.T) {
	opt := claimsOptions()
	for _, name := range []string{"kmeans-low", "vacation-low", "genome"} {
		f := benchmarkNamed(t, name)
		weak := speedupOf(t, USTM, f, 4, opt)
		strong := speedupOf(t, USTMUFO, f, 4, opt)
		if strong < weak*0.80 {
			t.Errorf("%s: strong atomicity cost too high: %.2f vs %.2f", name, strong, weak)
		}
	}
}

// Claim (Figure 6): on vacation, HyTM suffers notably more set overflows
// than the UFO hybrid (otable rows compete for L1 sets), plus
// non-transactional conflicts on otable rows; the hybrid's extra aborts
// are UFO-bit-set kills; PhTM generates explicit (phase) aborts.
func TestClaimFigure6AbortSignatures(t *testing.T) {
	opt := claimsOptions()
	// Shrink the L1 so vacation's footprints overflow at test scale,
	// producing the failovers whose interactions Figure 6 reports.
	opt.Params.L1Bytes = 8 * 1024
	opt.Params.L1Ways = 2
	f := benchmarkNamed(t, "vacation-high")
	hy := Run(UFOHybrid, f.New(), 4, opt)
	ht := Run(HyTM, f.New(), 4, opt)
	ph := Run(PhTM, f.New(), 4, opt)
	for _, r := range []Result{hy, ht, ph} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if ht.Machine.HWAbortsByReason[machine.AbortOverflow] <= hy.Machine.HWAbortsByReason[machine.AbortOverflow] {
		t.Errorf("HyTM overflows (%d) not above hybrid's (%d)",
			ht.Machine.HWAbortsByReason[machine.AbortOverflow],
			hy.Machine.HWAbortsByReason[machine.AbortOverflow])
	}
	if ht.Machine.HWAbortsByReason[machine.AbortNonTConflict] == 0 {
		t.Error("HyTM shows no nonT conflicts on otable rows")
	}
	if hy.Machine.HWAbortsByReason[machine.AbortUFOKill] == 0 {
		t.Error("hybrid shows no UFO-bit-set kills")
	}
	if ph.Machine.HWAbortsByReason[machine.AbortExplicit] == 0 {
		t.Error("PhTM shows no explicit phase aborts")
	}
}

// Claim (§5.3/Figure 7): at 0% failover the hybrid matches pure HTM;
// increasing rates degrade the hybrid roughly linearly toward pure STM,
// while PhTM collapses super-linearly (it drags concurrent hardware
// transactions along); pure HTM and pure STM are flat.
func TestClaimFigure7Shapes(t *testing.T) {
	opt := claimsOptions()
	threads := 4
	run := func(kind SystemKind, rate int) Result {
		r := Run(kind, stamp.NewFailover(60, rate), threads, opt)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r
	}
	htm0, htm100 := run(UnboundedHTM, 0), run(UnboundedHTM, 100)
	if ratio := float64(htm100.Cycles) / float64(htm0.Cycles); ratio > 1.1 {
		t.Errorf("pure HTM not flat across rates: %.2f", ratio)
	}
	stm0, stm100 := run(USTMUFO, 0), run(USTMUFO, 100)
	if ratio := float64(stm100.Cycles) / float64(stm0.Cycles); ratio > 1.1 {
		t.Errorf("pure STM not flat across rates: %.2f", ratio)
	}
	hy0 := run(UFOHybrid, 0)
	if ratio := float64(hy0.Cycles) / float64(htm0.Cycles); ratio > 1.03 {
		t.Errorf("hybrid at 0%% failover %.3f× pure HTM, want ≈1", ratio)
	}
	// PhTM at a low rate must already be much worse than the hybrid.
	hy5, ph5 := run(UFOHybrid, 5), run(PhTM, 5)
	if ph5.Cycles < hy5.Cycles*11/10 {
		t.Errorf("PhTM at 5%% (%d cycles) should collapse well below hybrid (%d)", ph5.Cycles, hy5.Cycles)
	}
	// The hybrid's software path is costlier than HyTM's (UFO bit
	// traffic), so at very high rates HyTM catches up or wins.
	hy100, ht100 := run(UFOHybrid, 100), run(HyTM, 100)
	if float64(ht100.Cycles) > float64(hy100.Cycles)*1.15 {
		t.Errorf("HyTM at 100%% (%d) should be within ~15%% of hybrid (%d)", ht100.Cycles, hy100.Cycles)
	}
}

// Claim (§5.4/Figure 8): the naive requester-wins policy (paired, as in
// the paper, with failover after repeated contention aborts) performs
// far below age-ordered contention management on high-contention code.
func TestClaimFigure8NaivePolicyTanks(t *testing.T) {
	opt := claimsOptions()
	f := benchmarkNamed(t, "genome") // the paper's contention stress test
	good := speedupOf(t, UFOHybrid, f, 4, opt)
	naive := opt
	naive.Params.HWPolicy = machine.RequesterWins
	naive.Policy.FailoverOnNthConflict = 5
	bad := speedupOf(t, UFOHybrid, f, 4, naive)
	if bad > good*0.8 {
		t.Errorf("naive policy %.2f not clearly below age-ordered %.2f", bad, good)
	}
}

// Claim (§4.4): failing over to software on contention is metastable —
// performance drops sharply versus never failing over on conflicts.
func TestClaimFailoverOnConflictMetastable(t *testing.T) {
	opt := claimsOptions()
	f := benchmarkNamed(t, "kmeans-high")
	const threads = 16 // the chain reaction needs real contention
	never := speedupOf(t, UFOHybrid, f, threads, opt)
	nth := opt
	nth.Policy.FailoverOnNthConflict = 2
	onNth := speedupOf(t, UFOHybrid, f, threads, nth)
	if onNth > never*0.9 {
		t.Errorf("failover-on-conflict %.2f not below never-failover %.2f", onNth, never)
	}
}

// Claim (§4.4): software transactions are older than the hardware
// transactions they conflict with in the overwhelming majority of
// STM/HTM conflicts.
func TestClaimSTMOlderInConflicts(t *testing.T) {
	opt := claimsOptions()
	opt.Params.L1Bytes = 8 * 1024
	opt.Params.L1Ways = 2
	f := benchmarkNamed(t, "vacation-high")
	r := Run(UFOHybrid, f.New(), 4, opt)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	older, younger := r.Machine.ConflictSTMOlder, r.Machine.ConflictHTMOlder
	if older+younger == 0 {
		t.Skip("no STM/HTM conflicts at this scale")
	}
	if frac := float64(older) / float64(older+younger); frac < 0.9 {
		t.Errorf("STM older in only %.0f%% of conflicts, paper reports >99%%", frac*100)
	}
}
