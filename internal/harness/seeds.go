package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// SeedStats aggregates one (workload, system, threads) cell across seeds.
type SeedStats struct {
	Workload string
	System   SystemKind
	Threads  int
	// Speedups per seed, in seed order.
	Speedups []float64
}

// Mean returns the average speedup.
func (s SeedStats) Mean() float64 {
	if len(s.Speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Speedups {
		sum += v
	}
	return sum / float64(len(s.Speedups))
}

// MinMax returns the extremes.
func (s SeedStats) MinMax() (lo, hi float64) {
	if len(s.Speedups) == 0 {
		return 0, 0
	}
	lo, hi = s.Speedups[0], s.Speedups[0]
	for _, v := range s.Speedups[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Figure5Seeds runs the Figure 5 sweep across machine seeds 1..seeds and
// aggregates per cell. Workload inputs are workload-seeded (fixed), so
// the spread reflects timing/interleaving sensitivity — the simulator's
// analogue of run-to-run variance. Each per-seed sweep fans out across
// the Runner's worker pool.
func (r *Runner) Figure5Seeds(opt Options, scale Scale, seeds int) ([]SeedStats, error) {
	type key struct {
		w string
		s SystemKind
		t int
	}
	acc := map[key]*SeedStats{}
	var order []key
	var errs []error
	for seed := 1; seed <= seeds; seed++ {
		o := opt
		o.Params.Seed = uint64(seed)
		data, err := r.Figure5(o, scale)
		errs = append(errs, err)
		for _, d := range data {
			for _, sys := range Figure5Systems {
				for _, th := range ThreadCounts(scale) {
					k := key{d.Workload, sys, th}
					st, ok := acc[k]
					if !ok {
						st = &SeedStats{Workload: d.Workload, System: sys, Threads: th}
						acc[k] = st
						order = append(order, k)
					}
					st.Speedups = append(st.Speedups, d.Cells[sys][th].Speedup(d.SeqCycles))
				}
			}
		}
	}
	out := make([]SeedStats, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	return out, mergeSweepErrors(errs...)
}

// PrintSeedStats renders the aggregate.
func PrintSeedStats(w io.Writer, stats []SeedStats) {
	fmt.Fprintf(w, "\nFigure 5 across seeds (speedup mean [min..max])\n")
	fmt.Fprintf(w, "%-14s %-14s %4s %8s %8s %8s\n", "workload", "system", "p", "mean", "min", "max")
	for _, s := range stats {
		lo, hi := s.MinMax()
		fmt.Fprintf(w, "%-14s %-14s %4d %8.2f %8.2f %8.2f\n",
			s.Workload, s.System, s.Threads, s.Mean(), lo, hi)
	}
}

// WriteFigure5CSV emits the Figure 5 sweep as CSV (one row per cell) for
// external plotting.
func WriteFigure5CSV(w io.Writer, data []Figure5Data, scale Scale) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "system", "threads", "cycles", "seq_cycles", "speedup",
		"hw_commits", "sw_commits", "failovers"}); err != nil {
		return err
	}
	for _, d := range data {
		for _, sys := range Figure5Systems {
			for _, th := range ThreadCounts(scale) {
				r := d.Cells[sys][th]
				rec := []string{
					d.Workload, string(sys), strconv.Itoa(th),
					strconv.FormatUint(r.Cycles, 10),
					strconv.FormatUint(d.SeqCycles, 10),
					strconv.FormatFloat(r.Speedup(d.SeqCycles), 'f', 4, 64),
					strconv.FormatUint(r.Stats.HWCommits, 10),
					strconv.FormatUint(r.Stats.SWCommits, 10),
					strconv.FormatUint(r.Stats.Failovers, 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
