package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestFigure5GoldenDefaultPolicy pins the default contention-management
// policy to the pre-refactor behavior: the small-scale Figure 5 sweep
// under CappedExponential must reproduce the golden capture byte for
// byte — same simulated cycle counts, same speedups, same stats. Any
// change to backoff timing, RNG draw order, or retry structure shows up
// here first. Regenerate (deliberately!) with `go test -run
// TestFigure5Golden -update ./internal/harness/`.
func TestFigure5GoldenDefaultPolicy(t *testing.T) {
	opt := DefaultOptions()
	opt.Params.Seed = 1 // the tmsim -seed default the golden was captured with
	data, err := Parallel(0).Figure5(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintFigure5(&sb, data, ScaleSmall)
	got := sb.String()

	golden := filepath.Join("testdata", "fig5_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Figure 5 output drifted from the golden capture.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFigure5GoldenParallelScheduler runs the same small-scale Figure 5
// sweep with every cell's machine under the windowed-parallel scheduler
// (machine.Params.ParallelScheduler, DESIGN.md §14) and requires the
// rendered output to match the same golden capture byte for byte. The
// golden was produced by the serial schedulers, so passing here is the
// end-to-end bit-identity proof for the parallel engine across every
// system and thread count the figure sweeps.
func TestFigure5GoldenParallelScheduler(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "fig5_small.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	for _, window := range []uint64{0, 777} {
		opt := DefaultOptions()
		opt.Params.Seed = 1
		opt.Params.ParallelScheduler = true
		opt.Params.WindowCycles = window
		data, err := Parallel(0).Figure5(opt, ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		PrintFigure5(&sb, data, ScaleSmall)
		if sb.String() != string(golden) {
			t.Errorf("window=%d: parallel-scheduler Figure 5 output drifted from the serial golden", window)
		}
	}
}
