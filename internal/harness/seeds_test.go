package harness

import (
	"strings"
	"testing"
)

func TestFigure5SeedsAggregates(t *testing.T) {
	opt := testOptions()
	stats, err := Parallel(0).Figure5Seeds(opt, ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * len(Figure5Systems) * len(ThreadCounts(ScaleSmall))
	if len(stats) != want {
		t.Fatalf("cells = %d, want %d", len(stats), want)
	}
	for _, s := range stats {
		if len(s.Speedups) != 2 {
			t.Fatalf("%s/%s/p%d has %d samples", s.Workload, s.System, s.Threads, len(s.Speedups))
		}
		lo, hi := s.MinMax()
		if !(lo <= s.Mean() && s.Mean() <= hi) {
			t.Fatalf("mean outside [min,max]: %+v", s)
		}
	}
	var sb strings.Builder
	PrintSeedStats(&sb, stats)
	if !strings.Contains(sb.String(), "mean") {
		t.Fatal("print missing header")
	}
}

func TestSeedStatsMath(t *testing.T) {
	s := SeedStats{Speedups: []float64{1, 2, 3}}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
	lo, hi := s.MinMax()
	if lo != 1 || hi != 3 {
		t.Fatalf("minmax = %v/%v", lo, hi)
	}
	var empty SeedStats
	if empty.Mean() != 0 {
		t.Fatal("empty mean")
	}
	if lo, hi := empty.MinMax(); lo != 0 || hi != 0 {
		t.Fatal("empty minmax")
	}
}

func TestWriteFigure5CSV(t *testing.T) {
	opt := testOptions()
	data, err := Parallel(0).Figure5(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFigure5CSV(&sb, data, ScaleSmall); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := 1 + 5*len(Figure5Systems)*len(ThreadCounts(ScaleSmall))
	if len(lines) != want {
		t.Fatalf("csv rows = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "workload,system,threads") {
		t.Fatalf("header = %q", lines[0])
	}
}
