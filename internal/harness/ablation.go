package harness

import (
	"fmt"
	"io"

	"repro/internal/machine"
)

// AblationRow is one configuration point in an ablation sweep.
type AblationRow struct {
	Study     string
	Config    string
	Workload  string
	SeqCycles uint64
	Result    Result
}

// studyConfig is one configuration of an ablation study: a label, the
// system to run, and an options mutation.
type studyConfig struct {
	name   string
	system SystemKind
	mutate func(*Options)
}

// runStudy measures one workload's sequential baseline plus every
// configuration of a study through the Runner's worker pool.
func (r *Runner) runStudy(study string, f WorkloadFactory, threads int, opt Options, configs []studyConfig) ([]AblationRow, error) {
	jobs := []Job{{System: Sequential, Factory: f, Threads: 1, Opt: opt}}
	for _, c := range configs {
		o := opt
		c.mutate(&o)
		jobs = append(jobs, Job{System: c.system, Factory: f, Threads: threads, Opt: o})
	}
	results, err := r.Execute(jobs)
	seq := results[0].Cycles
	out := make([]AblationRow, len(configs))
	for i, c := range configs {
		out[i] = AblationRow{
			Study: study, Config: c.name, Workload: f.Name,
			SeqCycles: seq,
			Result:    results[i+1],
		}
	}
	return out, err
}

// AblationUFOMitigations evaluates the paper's two proposed fixes for
// false UFO/BTM conflicts (Section 4.3) — owner-state bit installation
// and lazy bit clearing — against the default eager protocol and the
// true-conflict-only limit study, on the workload with the heaviest
// STM/HTM interaction.
func (r *Runner) AblationUFOMitigations(opt Options, scale Scale) ([]AblationRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	return r.runStudy("ufo-mitigations", benchmarkByName(scale, "vacation-high"), threads, opt, []studyConfig{
		{"eager (default)", UFOHybrid, func(*Options) {}},
		{"owner-state install", UFOHybrid, func(o *Options) { o.Params.OwnerStateUFO = true }},
		{"lazy clear", UFOHybrid, func(o *Options) { o.Params.LazyUFOClear = true }},
		{"both mitigations", UFOHybrid, func(o *Options) {
			o.Params.OwnerStateUFO = true
			o.Params.LazyUFOClear = true
		}},
		{"true-conflict limit", UFOHybrid, func(o *Options) { o.Params.TrueConflictUFOKills = true }},
	})
}

// AblationL1Size sweeps the transactional capacity: smaller L1s overflow
// more transactions to software, quantifying how much of the hybrid's
// performance rides on hardware capacity (the DESIGN.md ablation for the
// bounded-HTM design choice).
func (r *Runner) AblationL1Size(opt Options, scale Scale) ([]AblationRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var configs []studyConfig
	for _, kb := range []int{4, 8, 16, 32, 64} {
		configs = append(configs, studyConfig{
			fmt.Sprintf("%d KB", kb), UFOHybrid,
			func(o *Options) { o.Params.L1Bytes = kb * 1024 },
		})
	}
	return r.runStudy("l1-size", benchmarkByName(scale, "vacation-high"), threads, opt, configs)
}

// AblationOTableSize sweeps the ownership-table row count: small tables
// alias unrelated lines to the same row, manufacturing conflicts — the
// reason the paper sizes otables at "tens of thousands" of entries.
func (r *Runner) AblationOTableSize(opt Options, scale Scale) ([]AblationRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var configs []studyConfig
	for _, rows := range []int{1 << 6, 1 << 10, 1 << 16} {
		configs = append(configs, studyConfig{
			fmt.Sprintf("%d rows", rows), USTMUFO,
			func(o *Options) { o.OTableRows = rows },
		})
	}
	return r.runStudy("otable-size", benchmarkByName(scale, "vacation-low"), threads, opt, configs)
}

// AblationQuantum sweeps the scheduling quantum: short quanta interrupt
// (and so abort) more hardware transactions, which the abort handler must
// absorb as recoverable retries.
func (r *Runner) AblationQuantum(opt Options, scale Scale) ([]AblationRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var configs []studyConfig
	for _, q := range []uint64{5_000, 50_000, 200_000, 2_000_000} {
		configs = append(configs, studyConfig{
			fmt.Sprintf("%d cycles", q), UFOHybrid,
			func(o *Options) { o.Params.Quantum = q },
		})
	}
	return r.runStudy("quantum", benchmarkByName(scale, "kmeans-low"), threads, opt, configs)
}

// Ablations runs every ablation study.
func (r *Runner) Ablations(opt Options, scale Scale) ([]AblationRow, error) {
	var out []AblationRow
	var errs []error
	for _, study := range []func(Options, Scale) ([]AblationRow, error){
		r.AblationUFOMitigations, r.AblationL1Size, r.AblationOTableSize, r.AblationQuantum,
	} {
		rows, err := study(opt, scale)
		out = append(out, rows...)
		errs = append(errs, err)
	}
	return out, mergeSweepErrors(errs...)
}

// PrintAblations renders the studies.
func PrintAblations(w io.Writer, rows []AblationRow) {
	study := ""
	for _, r := range rows {
		if r.Study != study {
			study = r.Study
			fmt.Fprintf(w, "\nAblation — %s (%s)\n", study, r.Workload)
			fmt.Fprintf(w, "%-22s %8s %10s %10s %10s %10s\n",
				"config", "speedup", "failovers", "overflows", "ufoKills", "interrupts")
		}
		fmt.Fprintf(w, "%-22s %8.2f %10d %10d %10d %10d\n",
			r.Config, r.Result.Speedup(r.SeqCycles),
			r.Result.Stats.Failovers,
			r.Result.Machine.HWAbortsByReason[machine.AbortOverflow],
			r.Result.Machine.UFOKillsTrue+r.Result.Machine.UFOKillsFalse,
			r.Result.Machine.HWAbortsByReason[machine.AbortInterrupt])
	}
}

// benchmarkByName returns the named workload factory at the given scale.
func benchmarkByName(scale Scale, name string) WorkloadFactory {
	for _, f := range Benchmarks(scale) {
		if f.Name == name {
			return f
		}
	}
	panic("harness: unknown benchmark " + name)
}

// FootprintRow is one workload's transaction-footprint profile on the
// UFO hybrid.
type FootprintRow struct {
	Workload string
	Result   Result
}

// Footprints profiles committed-transaction footprints per benchmark —
// the data behind the paper's observation that "a significant majority
// of the dynamic transactions ... execute completely in BTM".
func (r *Runner) Footprints(opt Options, scale Scale) ([]FootprintRow, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var jobs []Job
	for _, f := range append(Benchmarks(scale), ExtendedBenchmarks(scale)...) {
		jobs = append(jobs, Job{System: UFOHybrid, Factory: f, Threads: threads, Opt: opt})
	}
	results, err := r.Execute(jobs)
	out := make([]FootprintRow, len(jobs))
	for i, j := range jobs {
		out[i] = FootprintRow{Workload: j.Factory.Name, Result: results[i]}
	}
	return out, err
}

// PrintFootprints renders the profile.
func PrintFootprints(w io.Writer, rows []FootprintRow) {
	fmt.Fprintf(w, "\nTransaction footprints on the UFO hybrid (distinct lines per committed tx)\n")
	fmt.Fprintf(w, "%-14s %9s %9s %8s %8s %8s  %s\n",
		"workload", "hwCommit", "swCommit", "hwMean", "hwMax", "≤64ln", "swHist")
	for _, r := range rows {
		hw := &r.Result.Machine.HWFootprint
		sw := &r.Result.Machine.SWFootprint
		fmt.Fprintf(w, "%-14s %9d %9d %8.1f %8d %7.0f%%  %s\n",
			r.Workload, hw.Count, sw.Count, hw.Mean(), hw.Max,
			hw.FracAtMost(64)*100, sw.String())
	}
}
