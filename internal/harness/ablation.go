package harness

import (
	"fmt"
	"io"

	"repro/internal/machine"
)

// AblationRow is one configuration point in an ablation sweep.
type AblationRow struct {
	Study     string
	Config    string
	Workload  string
	SeqCycles uint64
	Result    Result
}

// AblationUFOMitigations evaluates the paper's two proposed fixes for
// false UFO/BTM conflicts (Section 4.3) — owner-state bit installation
// and lazy bit clearing — against the default eager protocol and the
// true-conflict-only limit study, on the workload with the heaviest
// STM/HTM interaction.
func AblationUFOMitigations(opt Options, scale Scale) []AblationRow {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	f := benchmarkByName(scale, "vacation-high")
	seq := mustOK(SeqBaseline(f, opt)).Cycles
	configs := []struct {
		name   string
		mutate func(*Options)
	}{
		{"eager (default)", func(*Options) {}},
		{"owner-state install", func(o *Options) { o.Params.OwnerStateUFO = true }},
		{"lazy clear", func(o *Options) { o.Params.LazyUFOClear = true }},
		{"both mitigations", func(o *Options) {
			o.Params.OwnerStateUFO = true
			o.Params.LazyUFOClear = true
		}},
		{"true-conflict limit", func(o *Options) { o.Params.TrueConflictUFOKills = true }},
	}
	var out []AblationRow
	for _, c := range configs {
		o := opt
		c.mutate(&o)
		out = append(out, AblationRow{
			Study: "ufo-mitigations", Config: c.name, Workload: f.Name,
			SeqCycles: seq,
			Result:    mustOK(Run(UFOHybrid, f.New(), threads, o)),
		})
	}
	return out
}

// AblationL1Size sweeps the transactional capacity: smaller L1s overflow
// more transactions to software, quantifying how much of the hybrid's
// performance rides on hardware capacity (the DESIGN.md ablation for the
// bounded-HTM design choice).
func AblationL1Size(opt Options, scale Scale) []AblationRow {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	f := benchmarkByName(scale, "vacation-high")
	seq := mustOK(SeqBaseline(f, opt)).Cycles
	var out []AblationRow
	for _, kb := range []int{4, 8, 16, 32, 64} {
		o := opt
		o.Params.L1Bytes = kb * 1024
		out = append(out, AblationRow{
			Study: "l1-size", Config: fmt.Sprintf("%d KB", kb), Workload: f.Name,
			SeqCycles: seq,
			Result:    mustOK(Run(UFOHybrid, f.New(), threads, o)),
		})
	}
	return out
}

// AblationOTableSize sweeps the ownership-table row count: small tables
// alias unrelated lines to the same row, manufacturing conflicts — the
// reason the paper sizes otables at "tens of thousands" of entries.
func AblationOTableSize(opt Options, scale Scale) []AblationRow {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	f := benchmarkByName(scale, "vacation-low")
	seq := mustOK(SeqBaseline(f, opt)).Cycles
	var out []AblationRow
	for _, rows := range []int{1 << 6, 1 << 10, 1 << 16} {
		o := opt
		o.OTableRows = rows
		out = append(out, AblationRow{
			Study: "otable-size", Config: fmt.Sprintf("%d rows", rows), Workload: f.Name,
			SeqCycles: seq,
			Result:    mustOK(Run(USTMUFO, f.New(), threads, o)),
		})
	}
	return out
}

// AblationQuantum sweeps the scheduling quantum: short quanta interrupt
// (and so abort) more hardware transactions, which the abort handler must
// absorb as recoverable retries.
func AblationQuantum(opt Options, scale Scale) []AblationRow {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	f := benchmarkByName(scale, "kmeans-low")
	seq := mustOK(SeqBaseline(f, opt)).Cycles
	var out []AblationRow
	for _, q := range []uint64{5_000, 50_000, 200_000, 2_000_000} {
		o := opt
		o.Params.Quantum = q
		out = append(out, AblationRow{
			Study: "quantum", Config: fmt.Sprintf("%d cycles", q), Workload: f.Name,
			SeqCycles: seq,
			Result:    mustOK(Run(UFOHybrid, f.New(), threads, o)),
		})
	}
	return out
}

// Ablations runs every ablation study.
func Ablations(opt Options, scale Scale) []AblationRow {
	var out []AblationRow
	out = append(out, AblationUFOMitigations(opt, scale)...)
	out = append(out, AblationL1Size(opt, scale)...)
	out = append(out, AblationOTableSize(opt, scale)...)
	out = append(out, AblationQuantum(opt, scale)...)
	return out
}

// PrintAblations renders the studies.
func PrintAblations(w io.Writer, rows []AblationRow) {
	study := ""
	for _, r := range rows {
		if r.Study != study {
			study = r.Study
			fmt.Fprintf(w, "\nAblation — %s (%s)\n", study, r.Workload)
			fmt.Fprintf(w, "%-22s %8s %10s %10s %10s %10s\n",
				"config", "speedup", "failovers", "overflows", "ufoKills", "interrupts")
		}
		fmt.Fprintf(w, "%-22s %8.2f %10d %10d %10d %10d\n",
			r.Config, r.Result.Speedup(r.SeqCycles),
			r.Result.Stats.Failovers,
			r.Result.Machine.HWAbortsByReason[machine.AbortOverflow],
			r.Result.Machine.UFOKillsTrue+r.Result.Machine.UFOKillsFalse,
			r.Result.Machine.HWAbortsByReason[machine.AbortInterrupt])
	}
}

// benchmarkByName returns the named workload factory at the given scale.
func benchmarkByName(scale Scale, name string) WorkloadFactory {
	for _, f := range Benchmarks(scale) {
		if f.Name == name {
			return f
		}
	}
	panic("harness: unknown benchmark " + name)
}

// FootprintRow is one workload's transaction-footprint profile on the
// UFO hybrid.
type FootprintRow struct {
	Workload string
	Result   Result
}

// Footprints profiles committed-transaction footprints per benchmark —
// the data behind the paper's observation that "a significant majority
// of the dynamic transactions ... execute completely in BTM".
func Footprints(opt Options, scale Scale) []FootprintRow {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var out []FootprintRow
	for _, f := range append(Benchmarks(scale), ExtendedBenchmarks(scale)...) {
		out = append(out, FootprintRow{
			Workload: f.Name,
			Result:   mustOK(Run(UFOHybrid, f.New(), threads, opt)),
		})
	}
	return out
}

// PrintFootprints renders the profile.
func PrintFootprints(w io.Writer, rows []FootprintRow) {
	fmt.Fprintf(w, "\nTransaction footprints on the UFO hybrid (distinct lines per committed tx)\n")
	fmt.Fprintf(w, "%-14s %9s %9s %8s %8s %8s  %s\n",
		"workload", "hwCommit", "swCommit", "hwMean", "hwMax", "≤64ln", "swHist")
	for _, r := range rows {
		hw := &r.Result.Machine.HWFootprint
		sw := &r.Result.Machine.SWFootprint
		fmt.Fprintf(w, "%-14s %9d %9d %8.1f %8d %7.0f%%  %s\n",
			r.Workload, hw.Count, sw.Count, hw.Mean(), hw.Max,
			hw.FracAtMost(64)*100, sw.String())
	}
}
