package harness

import (
	"bytes"
	"reflect"
	"testing"
)

// TestScaleSweepSchedulerBitIdentical runs the small scaling study under
// the single-token scheduler and the windowed-parallel scheduler (at the
// default window and a deliberately odd one) and requires bit-identical
// results: same sequential baseline, same per-cell cycle counts, stats,
// and machine counters, same rendered table. This is the scale-experiment
// counterpart of the Figure 5 golden differential test — the parallel
// scheduler may only change wall clock, never results (DESIGN.md §14).
func TestScaleSweepSchedulerBitIdentical(t *testing.T) {
	run := func(parallel bool, window uint64) (Figure5Data, []byte) {
		t.Helper()
		opt := testOptions()
		opt.Params.ParallelScheduler = parallel
		opt.Params.WindowCycles = window
		d, err := Serial().ScaleSweep(opt, ScaleSmall)
		if err != nil {
			t.Fatalf("ScaleSweep(parallel=%v, window=%d): %v", parallel, window, err)
		}
		var buf bytes.Buffer
		PrintScaleSweep(&buf, d, ScaleSmall)
		return d, buf.Bytes()
	}

	ref, refOut := run(false, 0)
	if ref.SeqCycles == 0 {
		t.Fatal("sequential baseline ran zero cycles")
	}
	for name, cfg := range map[string]struct {
		window uint64
	}{"parallel": {0}, "parallel-w97": {97}} {
		got, gotOut := run(true, cfg.window)
		if !bytes.Equal(refOut, gotOut) {
			t.Errorf("%s: rendered sweep differs from single-token scheduler:\n--- serial\n%s--- %s\n%s",
				name, refOut, name, gotOut)
		}
		if got.SeqCycles != ref.SeqCycles {
			t.Errorf("%s: seq baseline %d cycles, serial %d", name, got.SeqCycles, ref.SeqCycles)
		}
		for _, sys := range ScaleSystems {
			for _, p := range ScaleProcCounts(ScaleSmall) {
				r, w := ref.Cells[sys][p], got.Cells[sys][p]
				if w.Cycles != r.Cycles || w.Stats != r.Stats || !reflect.DeepEqual(w.Machine, r.Machine) {
					t.Errorf("%s: %s p=%d diverged: cycles %d vs %d, stats %+v vs %+v",
						name, sys, p, w.Cycles, r.Cycles, w.Stats, r.Stats)
				}
			}
		}
	}
}

// TestScaleSweepSpeedupMonotoneSmall pins the point of the scaling
// study: with compute-dominated work the simulated speedup must grow
// with the processor count at small scale (the full-scale 256-processor
// cell is allowed a contention knee, exercised by the CI smoke job).
func TestScaleSweepSpeedupMonotoneSmall(t *testing.T) {
	d, err := Serial().ScaleSweep(testOptions(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	procs := ScaleProcCounts(ScaleSmall)
	for _, sys := range ScaleSystems {
		prev := 1.0
		for _, p := range procs {
			s := d.Cells[sys][p].Speedup(d.SeqCycles)
			if s <= prev {
				t.Errorf("%s: speedup at p=%d is %.2f, not above %.2f at the previous point", sys, p, s, prev)
			}
			prev = s
		}
	}
}
