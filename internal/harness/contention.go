package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/contention"
)

// ContentionSchemaVersion identifies the sweep contention report JSON
// schema.
const ContentionSchemaVersion = "tmsim-contention-report/v1"

// CellContention is one sweep cell's identity plus its frozen
// conflict-attribution report.
type CellContention struct {
	Workload   string             `json:"workload"`
	System     SystemKind         `json:"system"`
	Threads    int                `json:"threads"`
	Err        string             `json:"err,omitempty"`
	Contention *contention.Report `json:"contention"`
}

// Label renders the cell's coordinates for the text/HTML renderers.
func (c CellContention) Label() string {
	return fmt.Sprintf("%s/%s/%d threads", c.Workload, c.System, c.Threads)
}

// ContentionReport accumulates per-cell contention reports across one or
// more sweeps. Fed from Runner.Collect it is filled in job order, so for
// a fixed experiment sequence its encodings are byte-identical for every
// worker count — the same determinism contract as MetricsReport. It is
// not safe for concurrent use; the Runner serializes Collect invocations.
type ContentionReport struct {
	Cells []CellContention
}

// Collector returns a Runner.Collect callback appending into the report.
// Cells run without Options.Contention contribute a nil report (rendered
// as "no contention data" rather than dropped, so cell counts line up).
func (rep *ContentionReport) Collector() func(Job, Result) {
	return func(_ Job, res Result) {
		cell := CellContention{
			Workload:   res.Workload,
			System:     res.System,
			Threads:    res.Threads,
			Contention: res.Contention,
		}
		if res.Err != nil {
			cell.Err = res.Err.Error()
		}
		rep.Cells = append(rep.Cells, cell)
	}
}

// Aggregate merges every cell's headline totals (edge counts, per-reason
// counts, commits, the aggressor→victim matrix) into one report; hot
// lines and windows stay per-cell (see contention.Report.Add).
func (rep *ContentionReport) Aggregate() *contention.Report {
	agg := &contention.Report{}
	for _, c := range rep.Cells {
		agg.Add(c.Contention)
	}
	return agg
}

// contentionJSON is the on-disk shape of a contention report.
type contentionJSON struct {
	Schema    string             `json:"schema"`
	Cells     []CellContention   `json:"cells"`
	Aggregate *contention.Report `json:"aggregate"`
}

// WriteJSON writes the report — schema tag, per-cell reports in sweep
// order, and the aggregate — as indented JSON followed by a newline.
func (rep *ContentionReport) WriteJSON(w io.Writer) error {
	out := contentionJSON{
		Schema:    ContentionSchemaVersion,
		Cells:     rep.Cells,
		Aggregate: rep.Aggregate(),
	}
	if out.Cells == nil {
		out.Cells = []CellContention{}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// cells converts to the renderer's labeled-cell form.
func (rep *ContentionReport) cells() []contention.Cell {
	out := make([]contention.Cell, len(rep.Cells))
	for i, c := range rep.Cells {
		label := c.Label()
		if c.Err != "" {
			label += " (FAILED: " + c.Err + ")"
		}
		out[i] = contention.Cell{Label: label, Report: c.Contention}
	}
	return out
}

// WriteText renders the report as plain text (contention.WriteText).
func (rep *ContentionReport) WriteText(w io.Writer) error {
	return contention.WriteText(w, rep.cells())
}

// WriteHTML renders the report as one self-contained HTML document
// (contention.WriteHTML): no scripts, no external assets.
func (rep *ContentionReport) WriteHTML(w io.Writer) error {
	return contention.WriteHTML(w, rep.cells())
}

// ReadContentionReport parses a report written by WriteJSON, for offline
// reprocessing.
func ReadContentionReport(r io.Reader) (*ContentionReport, error) {
	var raw contentionJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	if raw.Schema != ContentionSchemaVersion {
		return nil, fmt.Errorf("harness: unknown contention report schema %q", raw.Schema)
	}
	return &ContentionReport{Cells: raw.Cells}, nil
}
