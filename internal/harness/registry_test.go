package harness

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"

	"repro/internal/machine"
)

// TestSystemRegistryDrift fails when a SystemKind constant or a build
// switch case is missing from AllSystems (or vice versa), so a newly
// added system cannot silently skip the conformance, race, litmus, and
// collider coverage that iterates AllSystems. It reads harness.go's own
// source: the constant block and the build switch are the two places a
// new system is declared, and both must agree with the registry.
func TestSystemRegistryDrift(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "harness.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Every `X SystemKind = "name"` constant.
	consts := map[string]string{} // ident → kind string
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			id, ok := vs.Type.(*ast.Ident)
			if !ok || id.Name != "SystemKind" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("const %s: value is not a string literal", name.Name)
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatal(err)
				}
				consts[name.Name] = s
			}
		}
	}
	if len(consts) == 0 {
		t.Fatal("no SystemKind constants found in harness.go")
	}

	// 2. Every ident named in build's switch cases.
	cases := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "build" {
			return true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, expr := range cc.List {
				if id, ok := expr.(*ast.Ident); ok {
					cases[id.Name] = true
				}
			}
			return true
		})
		return false
	})
	if len(cases) == 0 {
		t.Fatal("no case clauses found in build")
	}

	all := map[string]bool{}
	for _, k := range AllSystems {
		all[string(k)] = true
	}

	// Every constant must be registered and buildable; every registry
	// entry and build case must trace back to a constant.
	for ident, kind := range consts {
		if !all[kind] {
			t.Errorf("SystemKind constant %s (%q) is missing from AllSystems", ident, kind)
		}
		if !cases[ident] {
			t.Errorf("SystemKind constant %s (%q) has no case in build", ident, kind)
		}
	}
	byValue := map[string]bool{}
	for _, kind := range consts {
		byValue[kind] = true
	}
	for kind := range all {
		if !byValue[kind] {
			t.Errorf("AllSystems entry %q has no SystemKind constant", kind)
		}
	}
	for ident := range cases {
		if _, ok := consts[ident]; !ok {
			t.Errorf("build case %s is not a SystemKind constant", ident)
		}
	}
	if len(consts) != len(all) {
		t.Errorf("harness.go declares %d SystemKind constants, AllSystems lists %d", len(consts), len(all))
	}

	// Figure5Systems must be a subset of the registry.
	for _, k := range Figure5Systems {
		if !all[string(k)] {
			t.Errorf("Figure5Systems entry %q is missing from AllSystems", k)
		}
	}

	// 3. Build smoke: every registered kind constructs without panicking
	// and reports a matching name (ParseSystem must round-trip it too).
	opt := DefaultOptions()
	opt.Params.MemBytes = 1 << 20
	for _, kind := range AllSystems {
		k, err := ParseSystem(string(kind))
		if err != nil {
			t.Errorf("ParseSystem(%q): %v", kind, err)
		}
		if k != kind {
			t.Errorf("ParseSystem(%q) = %q", kind, k)
		}
		params := opt.Params
		params.Procs = 1
		m := machine.New(params)
		sys := Build(kind, m, opt)
		if sys == nil {
			t.Fatalf("Build(%q) returned nil", kind)
		}
	}
	if _, err := ParseSystem("no-such-system"); err == nil {
		t.Error("ParseSystem accepted an unknown name")
	}
}
