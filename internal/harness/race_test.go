package harness

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/stamp"
)

// TestConcurrentRunsAllSystemsRaceClean runs two independent harness
// cells concurrently for every SystemKind. Its job is to flush out any
// package-level mutable state in machine/sim/stamp or a TM system under
// `go test -race`: each cell constructs its own machine, so concurrent
// cells must never touch shared memory. The workload mixes hardware
// commits, software failovers, and validation so every construction
// path runs on at least two goroutines at once.
func TestConcurrentRunsAllSystemsRaceClean(t *testing.T) {
	opt := testOptions()
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(AllSystems))
	for _, kind := range AllSystems {
		threads := 2
		if kind == Sequential {
			threads = 1
		}
		for copies := 0; copies < 2; copies++ {
			wg.Add(1)
			go func(kind SystemKind, threads int) {
				defer wg.Done()
				r := Run(kind, stamp.NewFailover(15, 25), threads, opt)
				if r.Err != nil {
					errs <- fmt.Errorf("%s/p%d: %w", kind, threads, r.Err)
				}
			}(kind, threads)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSweepsShareNothing runs two parallel mini-sweeps over a
// real STAMP workload at the same time — machines, otables, and
// workload state from different sweeps must be fully disjoint.
func TestConcurrentSweepsShareNothing(t *testing.T) {
	opt := testOptions()
	factories := []WorkloadFactory{{
		Name: "kmeans-low",
		New:  func() stamp.Workload { return stamp.KMeansLow(96) },
	}}
	systems := []SystemKind{UFOHybrid, USTMUFO}
	var wg sync.WaitGroup
	out := make([]string, 2)
	errs := make([]error, 2)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := Parallel(2).Sweep(factories, systems, opt, ScaleSmall)
			out[i] = fmt.Sprintf("%+v", data)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i := range out {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if out[0] != out[1] {
		t.Fatal("identical concurrent sweeps produced different results")
	}
}
