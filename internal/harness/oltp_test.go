package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/oltp"
)

// oltpSmallReport runs the small sweep once with the test footprint.
func oltpSmallReport(t *testing.T, r *Runner) (*OLTPReport, []byte) {
	t.Helper()
	rep, err := r.OLTP(testOptions(), ScaleSmall, DefaultOLTPSweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.Bytes()
}

// TestOLTPReportBitIdentical is the acceptance pin for the service sweep:
// the encoded tmsim-oltp/v1 report must be byte-identical across sweep
// worker counts and across the engine schedulers — the same contract the
// Figure 5 and scale sweeps carry.
func TestOLTPReportBitIdentical(t *testing.T) {
	_, ref := oltpSmallReport(t, Serial())

	if _, got := oltpSmallReport(t, Parallel(8)); !bytes.Equal(ref, got) {
		t.Error("report differs between -parallel 1 and -parallel 8 sweeps")
	}
	for _, sched := range []string{"reference", "parallel"} {
		r := Parallel(4)
		opt := testOptions()
		opt.Params.ReferenceScheduler = sched == "reference"
		opt.Params.ParallelScheduler = sched == "parallel"
		rep, err := r.OLTP(opt, ScaleSmall, DefaultOLTPSweep())
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("report differs under the %s scheduler", sched)
		}
	}
}

// TestOLTPReportSane checks the service-level invariants the CI smoke job
// also enforces: every point committed its full trace, goodput never
// exceeds the offered load, response percentiles are monotone, and every
// system gets a knee row.
func TestOLTPReportSane(t *testing.T) {
	rep, _ := oltpSmallReport(t, Parallel(4))
	if rep.Schema != OLTPSchemaVersion {
		t.Fatalf("schema %q, want %q", rep.Schema, OLTPSchemaVersion)
	}
	if want := len(OLTPSystems) * (len(OLTPLoadGaps(ScaleSmall)) + len(OLTPSkewThetas(ScaleSmall)) + len(OLTPMixes(ScaleSmall))); len(rep.Points) != want {
		t.Fatalf("%d points, want %d", len(rep.Points), want)
	}
	for _, pt := range rep.Points {
		if pt.Err != "" {
			t.Errorf("%s %s: %s", pt.System, pt.Axis, pt.Err)
			continue
		}
		if pt.Committed != pt.Requests {
			t.Errorf("%s %s gap=%d: committed %d of %d requests", pt.System, pt.Axis, pt.MeanGap, pt.Committed, pt.Requests)
		}
		if pt.Goodput > pt.Offered*(1+1e-9) {
			t.Errorf("%s %s gap=%d: goodput %.4f exceeds offered %.4f", pt.System, pt.Axis, pt.MeanGap, pt.Goodput, pt.Offered)
		}
		pc := pt.Response
		if pc == nil {
			t.Errorf("%s %s: no response percentiles", pt.System, pt.Axis)
			continue
		}
		if !(pc.P50 <= pc.P90 && pc.P90 <= pc.P99 && pc.P99 <= pc.P999) {
			t.Errorf("%s %s: percentiles not monotone: %.0f %.0f %.0f %.0f",
				pt.System, pt.Axis, pc.P50, pc.P90, pc.P99, pc.P999)
		}
	}
	if len(rep.Knees) != len(OLTPSystems) {
		t.Fatalf("%d knee rows, want %d", len(rep.Knees), len(OLTPSystems))
	}
	for i, k := range rep.Knees {
		if k.System != OLTPSystems[i] {
			t.Errorf("knee %d is %s, want %s", i, k.System, OLTPSystems[i])
		}
	}
}

// TestOLTPReportRoundTrip: WriteJSON output reads back equal, and foreign
// schemas are rejected.
func TestOLTPReportRoundTrip(t *testing.T) {
	rep, raw := oltpSmallReport(t, Serial())
	got, err := ReadOLTPReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := got.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Error("round-tripped report re-encodes differently")
	}
	if got.Seed != rep.Seed || len(got.Points) != len(rep.Points) {
		t.Error("round-tripped report lost fields")
	}
	if _, err := ReadOLTPReport(strings.NewReader(`{"schema":"tmsim-oltp/v0"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestOLTPHotKeyCollider pins conflict attribution for the service
// workload: two serving processors hammering a single-key store with pure
// RMW traffic must produce conflict edges, and the hottest line must be
// the one holding that key's record.
func TestOLTPHotKeyCollider(t *testing.T) {
	cfg := oltp.Config{
		Keys: 1, RequestsPerProc: 60, Theta: 0,
		ReadPct: 0, RMWPct: 100, ScanPct: 0,
		ScanLen: 1, MeanGap: 40, Arrival: oltp.ArrivalPoisson, Seed: 17,
	}
	w := oltp.New(cfg)
	opt := testOptions()
	opt.TxStats = true
	opt.Contention = true
	res := Run(USTM, w, 2, opt)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	prof := res.Contention
	if prof == nil || prof.Edges == 0 {
		t.Fatal("hot-key collider produced no conflict edges")
	}
	if len(prof.HotLines) == 0 {
		t.Fatal("no hot lines attributed")
	}
	if hot, want := prof.HotLines[0].Addr, w.RecordAddr(1); hot != want {
		t.Errorf("hottest line %#x, want the key-1 record line %#x", hot, want)
	}
	top := prof.HotLines[0]
	if len(top.Aggressors) == 0 || len(top.Victims) == 0 {
		t.Error("hot line missing aggressor/victim attribution")
	}
}

// TestOLTPPrintStable: rendering is a pure function of the report.
func TestOLTPPrintStable(t *testing.T) {
	rep, _ := oltpSmallReport(t, Serial())
	var a, b bytes.Buffer
	PrintOLTP(&a, rep)
	PrintOLTP(&b, rep)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("PrintOLTP is not deterministic")
	}
	for _, want := range []string{"offered load", "Zipfian skew", "request mix", "saturation knees"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("rendered sweep missing %q section", want)
		}
	}
}

// TestFindWorkloadOLTP: the service workload is addressable like any
// STAMP benchmark, for -trace-workload and the perf suite.
func TestFindWorkloadOLTP(t *testing.T) {
	f, ok := FindWorkload("oltp", ScaleSmall)
	if !ok || f.Name != "oltp" {
		t.Fatal("FindWorkload does not surface oltp")
	}
	if got := f.New().Name(); got != "oltp" {
		t.Fatalf("factory builds workload %q", got)
	}
}
