package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/oltp"
	"repro/internal/stamp"
	"repro/internal/txstats"
)

// OLTPSchemaVersion identifies the open-loop service-workload report
// JSON schema.
const OLTPSchemaVersion = "tmsim-oltp/v1"

// OLTPSystems are the systems the service sweep compares — the full
// Figure 5 roster, so the latency curves sit on the same axis as the
// throughput ones.
var OLTPSystems = Figure5Systems

// OLTPKneeUtilization is the saturation threshold: the knee is the first
// load-axis point where goodput falls below this fraction of the offered
// load (the system is no longer keeping up with arrivals).
const OLTPKneeUtilization = 0.9

// OLTPSweepConfig is the user-tunable shape of the service sweep (the
// -oltp-* flags): the arrival process, the default skew, and the default
// request mix. The sweep varies one axis at a time around these
// defaults.
type OLTPSweepConfig struct {
	Arrival oltp.ArrivalKind
	Theta   float64
	ReadPct int
	RMWPct  int
	ScanPct int
}

// DefaultOLTPSweep is the committed EXPERIMENTS.md configuration:
// Poisson arrivals, production-typical skew, read-mostly mix.
func DefaultOLTPSweep() OLTPSweepConfig {
	return OLTPSweepConfig{Arrival: oltp.ArrivalPoisson, Theta: 0.9, ReadPct: 80, RMWPct: 15, ScanPct: 5}
}

// OLTPThreads is the serving-processor count at the given scale.
func OLTPThreads(s Scale) int {
	if s == ScaleFull {
		return 8
	}
	return 2
}

// OLTPLoadGaps is the load axis: mean interarrival gaps per client
// stream in simulated cycles, highest load (smallest gap) last. The
// smallest gap is below any system's per-request service time, so every
// system saturates somewhere on the axis and the knee is always
// detectable.
func OLTPLoadGaps(s Scale) []uint64 {
	if s == ScaleFull {
		return []uint64{8000, 4000, 2000, 1000, 500, 250, 120}
	}
	return []uint64{2000, 500, 120}
}

// OLTPSkewThetas is the skew axis, swept at the middle load gap.
func OLTPSkewThetas(s Scale) []float64 {
	if s == ScaleFull {
		return []float64{0, 0.6, 0.99, 1.3}
	}
	return []float64{0, 1.2}
}

// OLTPMixes is the read/RMW/scan mix axis, swept at the middle load gap.
func OLTPMixes(s Scale) [][3]int {
	if s == ScaleFull {
		return [][3]int{{95, 5, 0}, {50, 45, 5}, {10, 85, 5}}
	}
	return [][3]int{{95, 5, 0}, {10, 85, 5}}
}

// oltpMidGap is the load held fixed while the skew and mix axes vary.
func oltpMidGap(s Scale) uint64 {
	gaps := OLTPLoadGaps(s)
	return gaps[len(gaps)/2]
}

// oltpBase builds the store/trace configuration shared by every sweep
// cell at the given scale and sweep shape.
func oltpBase(s Scale, sc OLTPSweepConfig) oltp.Config {
	cfg := oltp.Config{
		Keys:            256,
		RequestsPerProc: 40,
		ScanLen:         8,
		Theta:           sc.Theta,
		ReadPct:         sc.ReadPct,
		RMWPct:          sc.RMWPct,
		ScanPct:         sc.ScanPct,
		MeanGap:         oltpMidGap(s),
		Arrival:         sc.Arrival,
		Seed:            11,
	}
	if s == ScaleFull {
		cfg.Keys = 4096
		cfg.RequestsPerProc = 160
		cfg.ScanLen = 16
	}
	return cfg
}

// OLTPBenchmark returns the default-shape service workload as a factory,
// so the perf suite, -trace-workload, and FindWorkload can run a single
// oltp cell like any STAMP benchmark.
func OLTPBenchmark(s Scale) WorkloadFactory {
	cfg := oltpBase(s, DefaultOLTPSweep())
	return WorkloadFactory{
		Name: "oltp",
		New:  func() stamp.Workload { return oltp.New(cfg) },
	}
}

// OLTPPoint is one sweep cell: a (axis point, system) service
// measurement. Offered and Goodput are request rates per 1000 simulated
// cycles; Offered is the realized arrival rate of the generated traces
// (requests / span of arrivals), so Goodput <= Offered always holds —
// the run cannot end before its last arrival.
type OLTPPoint struct {
	Axis    string     `json:"axis"` // load | skew | mix
	System  SystemKind `json:"system"`
	Threads int        `json:"threads"`
	MeanGap uint64     `json:"mean_gap"`
	Theta   float64    `json:"theta"`
	ReadPct int        `json:"read_pct"`
	RMWPct  int        `json:"rmw_pct"`
	ScanPct int        `json:"scan_pct"`

	Requests  uint64 `json:"requests"`
	Committed uint64 `json:"committed"` // arrival-tagged commits (== Requests on success)
	Cycles    uint64 `json:"cycles"`

	Offered     float64 `json:"offered"`
	Goodput     float64 `json:"goodput"`
	Utilization float64 `json:"utilization"` // Goodput / Offered

	// Response is the true response-time distribution (arrival to commit,
	// queueing + service) in simulated cycles.
	Response *txstats.Percentiles `json:"response,omitempty"`
	// QueueWaitP99 is the P99 of the arrival-to-begin (queueing) share.
	QueueWaitP99 float64 `json:"queue_wait_p99"`
	// WastedShare is the fraction of transactional cycles burned in
	// aborted attempts and backoff.
	WastedShare float64 `json:"wasted_share"`

	Err string `json:"err,omitempty"`
}

// OLTPKnee is one system's saturation knee on the load axis: the first
// point (in increasing offered load) where utilization drops below
// OLTPKneeUtilization. Detected is false only if the system kept up at
// every swept load.
type OLTPKnee struct {
	System      SystemKind `json:"system"`
	Detected    bool       `json:"detected"`
	MeanGap     uint64     `json:"mean_gap"`
	Offered     float64    `json:"offered"`
	Goodput     float64    `json:"goodput"`
	Utilization float64    `json:"utilization"`
}

// OLTPReport is the deterministic `tmsim-oltp/v1` artifact: sweep
// points in job order plus per-system knees. Cells are pure functions of
// their Job, and assembly follows the fixed job order, so encodings are
// byte-identical for every -parallel worker count and -sched engine.
type OLTPReport struct {
	Schema          string           `json:"schema"`
	Arrival         oltp.ArrivalKind `json:"arrival"`
	Threads         int              `json:"threads"`
	Keys            int              `json:"keys"`
	RequestsPerProc int              `json:"requests_per_proc"`
	ScanLen         int              `json:"scan_len"`
	Seed            uint64           `json:"seed"`
	KneeUtilization float64          `json:"knee_utilization"`
	Points          []OLTPPoint      `json:"points"`
	Knees           []OLTPKnee       `json:"knees"`
}

// oltpCell is one axis point of the sweep grid.
type oltpCell struct {
	axis string
	cfg  oltp.Config
}

// oltpCells enumerates the sweep grid in its fixed order: the load axis,
// then the skew axis and mix axis at the middle load.
func oltpCells(scale Scale, sc OLTPSweepConfig) []oltpCell {
	base := oltpBase(scale, sc)
	var cells []oltpCell
	for _, g := range OLTPLoadGaps(scale) {
		c := base
		c.MeanGap = g
		cells = append(cells, oltpCell{axis: "load", cfg: c})
	}
	for _, th := range OLTPSkewThetas(scale) {
		c := base
		c.Theta = th
		cells = append(cells, oltpCell{axis: "skew", cfg: c})
	}
	for _, mx := range OLTPMixes(scale) {
		c := base
		c.ReadPct, c.RMWPct, c.ScanPct = mx[0], mx[1], mx[2]
		cells = append(cells, oltpCell{axis: "mix", cfg: c})
	}
	return cells
}

// OLTP runs the `-experiment oltp` sweep: the open-loop service workload
// across OLTPSystems on three axes — offered load, Zipfian skew, and
// request mix — with per-transaction lifecycle accounting (response-time
// percentiles) and conflict attribution enabled, producing the
// tmsim-oltp/v1 report. Like every sweep, cells fan out across the
// Runner's worker pool and the assembled report is bit-identical at any
// worker count and under every scheduler.
func (r *Runner) OLTP(opt Options, scale Scale, sc OLTPSweepConfig) (*OLTPReport, error) {
	opt.TxStats = true
	opt.Contention = true
	threads := OLTPThreads(scale)
	cells := oltpCells(scale, sc)

	var jobs []Job
	for _, cell := range cells {
		cfg := cell.cfg
		f := WorkloadFactory{Name: "oltp", New: func() stamp.Workload { return oltp.New(cfg) }}
		for _, sys := range OLTPSystems {
			jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: opt})
		}
	}
	results, err := r.Execute(jobs)

	base := oltpBase(scale, sc)
	rep := &OLTPReport{
		Schema:          OLTPSchemaVersion,
		Arrival:         base.Arrival,
		Threads:         threads,
		Keys:            base.Keys,
		RequestsPerProc: base.RequestsPerProc,
		ScanLen:         base.ScanLen,
		Seed:            base.Seed,
		KneeUtilization: OLTPKneeUtilization,
	}
	i := 0
	for _, cell := range cells {
		requests, span := cell.cfg.Offered(threads)
		offered := 0.0
		if span > 0 {
			offered = 1000 * float64(requests) / float64(span)
		}
		for range OLTPSystems {
			res := results[i]
			i++
			pt := OLTPPoint{
				Axis:     cell.axis,
				System:   res.System,
				Threads:  res.Threads,
				MeanGap:  cell.cfg.MeanGap,
				Theta:    cell.cfg.Theta,
				ReadPct:  cell.cfg.ReadPct,
				RMWPct:   cell.cfg.RMWPct,
				ScanPct:  cell.cfg.ScanPct,
				Requests: requests,
				Cycles:   res.Cycles,
				Offered:  offered,
			}
			if res.Err != nil {
				pt.Err = res.Err.Error()
			}
			if ts := res.TxStats; ts != nil {
				pt.Committed = ts.Requests
				if res.Cycles > 0 {
					pt.Goodput = 1000 * float64(ts.Requests) / float64(res.Cycles)
				}
				if offered > 0 {
					pt.Utilization = pt.Goodput / offered
				}
				pt.Response = ts.ResponsePercentiles
				if ts.QueueWait != nil {
					pt.QueueWaitP99 = ts.QueueWait.P99()
				}
				if total := ts.UsefulCycles + ts.WastedCycles + ts.BackoffCycles +
					ts.RetryWaitCycles + ts.OverheadCycles; total > 0 {
					pt.WastedShare = float64(ts.WastedCycles+ts.BackoffCycles) / float64(total)
				}
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	rep.Knees = detectKnees(rep.Points)
	return rep, err
}

// detectKnees scans each system's load-axis points in increasing offered
// load for the first one below the utilization threshold. Points arrive
// in job order (load axis first, gaps largest to smallest), so the scan
// order is the offered-load order.
func detectKnees(points []OLTPPoint) []OLTPKnee {
	var knees []OLTPKnee
	for _, sys := range OLTPSystems {
		knee := OLTPKnee{System: sys}
		for _, pt := range points {
			if pt.Axis != "load" || pt.System != sys || pt.Err != "" {
				continue
			}
			knee.MeanGap = pt.MeanGap
			knee.Offered = pt.Offered
			knee.Goodput = pt.Goodput
			knee.Utilization = pt.Utilization
			if pt.Utilization < OLTPKneeUtilization {
				knee.Detected = true
				break
			}
		}
		knees = append(knees, knee)
	}
	return knees
}

// WriteJSON writes the report as indented JSON followed by a newline;
// equal sweeps produce byte-identical files.
func (rep *OLTPReport) WriteJSON(w io.Writer) error {
	out := *rep
	if out.Points == nil {
		out.Points = []OLTPPoint{}
	}
	if out.Knees == nil {
		out.Knees = []OLTPKnee{}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadOLTPReport parses a report written by WriteJSON, for offline
// reprocessing and CI sanity checks.
func ReadOLTPReport(r io.Reader) (*OLTPReport, error) {
	rep := &OLTPReport{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, err
	}
	if rep.Schema != OLTPSchemaVersion {
		return nil, fmt.Errorf("harness: unknown oltp report schema %q", rep.Schema)
	}
	return rep, nil
}

// PrintOLTP renders the sweep as text tables: one per axis with
// offered/goodput rates (requests per 1000 cycles) and response-time
// percentiles (simulated cycles, arrival to commit), plus the knee
// summary.
func PrintOLTP(w io.Writer, rep *OLTPReport) {
	axes := []struct{ axis, title, varies string }{
		{"load", "offered load", "gap"},
		{"skew", "Zipfian skew", "theta"},
		{"mix", "request mix", "r/m/s"},
	}
	for _, ax := range axes {
		fmt.Fprintf(w, "\nOLTP — %s axis (%s arrivals, %d serving procs; rates per 1000 cycles)\n",
			ax.title, rep.Arrival, rep.Threads)
		fmt.Fprintf(w, "%-14s %-10s %9s %9s %6s %9s %9s %9s %9s %7s\n",
			"system", ax.varies, "offered", "goodput", "util", "P50", "P90", "P99", "P99.9", "wasted")
		for _, pt := range rep.Points {
			if pt.Axis != ax.axis {
				continue
			}
			varies := ""
			switch ax.axis {
			case "load":
				varies = fmt.Sprintf("%d", pt.MeanGap)
			case "skew":
				varies = fmt.Sprintf("%.2f", pt.Theta)
			case "mix":
				varies = fmt.Sprintf("%d/%d/%d", pt.ReadPct, pt.RMWPct, pt.ScanPct)
			}
			if pt.Err != "" {
				fmt.Fprintf(w, "%-14s %-10s ERROR %s\n", pt.System, varies, pt.Err)
				continue
			}
			var p50, p90, p99, p999 float64
			if pc := pt.Response; pc != nil {
				p50, p90, p99, p999 = pc.P50, pc.P90, pc.P99, pc.P999
			}
			fmt.Fprintf(w, "%-14s %-10s %9.3f %9.3f %5.0f%% %9.0f %9.0f %9.0f %9.0f %6.1f%%\n",
				pt.System, varies, pt.Offered, pt.Goodput, 100*pt.Utilization,
				p50, p90, p99, p999, 100*pt.WastedShare)
		}
	}
	fmt.Fprintf(w, "\nOLTP — saturation knees (first load point with utilization < %.0f%%)\n",
		100*rep.KneeUtilization)
	fmt.Fprintf(w, "%-14s %-9s %9s %9s %9s %6s\n", "system", "detected", "gap", "offered", "goodput", "util")
	for _, k := range rep.Knees {
		fmt.Fprintf(w, "%-14s %-9v %9d %9.3f %9.3f %5.0f%%\n",
			k.System, k.Detected, k.MeanGap, k.Offered, k.Goodput, 100*k.Utilization)
	}
}
