// Package harness runs stamp workloads across TM systems and thread
// counts, checks their invariants, and formats the paper's evaluation
// artifacts: the Figure 5 speedup curves, the Figure 6 abort-reason
// breakdown, the Figure 7 software-failover microbenchmark, and the
// Figure 8 contention-policy sensitivity study.
//
// Paper: §5 (evaluation methodology and every figure therein).
package harness

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/hytm"
	"repro/internal/machine"
	"repro/internal/norec"
	"repro/internal/obs"
	"repro/internal/phtm"
	"repro/internal/seq"
	"repro/internal/stamp"
	"repro/internal/tl2"
	"repro/internal/tm"
	"repro/internal/txstats"
	"repro/internal/unbounded"
	"repro/internal/ustm"
)

// SystemKind names a buildable TM configuration.
type SystemKind string

// The buildable systems.
const (
	Sequential   SystemKind = "sequential"
	GlobalLock   SystemKind = "global-lock"
	UnboundedHTM SystemKind = "unbounded-htm"
	UFOHybrid    SystemKind = "ufo-hybrid"
	HyTM         SystemKind = "hytm"
	PhTM         SystemKind = "phtm"
	USTM         SystemKind = "ustm"
	USTMUFO      SystemKind = "ustm+ufo"
	TL2          SystemKind = "tl2"
	HybridNOrec  SystemKind = "hybrid-norec"
)

// Figure5Systems are the systems the Figure 5 sweep compares: the
// paper's six plus HybridNOrec, the value-validating hybrid head-to-head
// the ROADMAP calls for.
var Figure5Systems = []SystemKind{
	UnboundedHTM, UFOHybrid, HyTM, PhTM, USTMUFO, USTM, TL2, HybridNOrec,
}

// AllSystems lists every buildable SystemKind — the full cross-system
// surface that conformance and race tests iterate, so a newly added
// system is covered automatically.
var AllSystems = []SystemKind{
	Sequential, GlobalLock, UnboundedHTM, UFOHybrid, HyTM, PhTM,
	USTM, USTMUFO, TL2, HybridNOrec,
}

// ParseSystem resolves a user-supplied system name (a flag value, a
// config field) to its SystemKind. Unknown names return an error listing
// the valid set, so callers can fail with a usable message instead of
// panicking inside build.
func ParseSystem(name string) (SystemKind, error) {
	for _, k := range AllSystems {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown system %q (want one of %v)", name, AllSystems)
}

// Options configures a run.
type Options struct {
	// Params is the machine configuration; Procs is overridden by the
	// per-run thread count.
	Params machine.Params
	// OTableRows sizes the USTM otable for the STM-based systems.
	OTableRows int
	// Policy configures the UFO hybrid.
	Policy core.Policy
	// CM selects the contention-management (backoff) policy for every
	// system that supports one (cm.Tunable). The zero value is the
	// paper's capped-exponential default. Spec is a value type: each
	// sweep cell instantiates its own policy, so cells stay independent.
	CM cm.Spec
	// TraceLimit, when positive, enables machine tracing (most recent
	// events kept) and returns the trace in the Result.
	TraceLimit int
	// Contention enables conflict attribution: a contention.Profile is
	// attached to the machine and its frozen Report returned in the
	// Result (and its headline totals registered as contention.* metrics).
	Contention bool
	// ContentionTopK bounds the hot lines kept per cell
	// (contention.DefaultTopK when 0).
	ContentionTopK int
	// TimeSeriesWindow is the contention time-series window width in
	// simulated cycles; 0 disables the time series.
	TimeSeriesWindow uint64
	// TxStats enables per-transaction lifecycle accounting: a
	// txstats.Recorder is attached to the machine and its frozen Report
	// returned in the Result (and its headline totals registered as
	// txstats.* metrics). Attaching the recorder never changes simulated
	// cycles — the hooks observe the run without perturbing it.
	TxStats bool
}

// DefaultOptions returns the evaluation configuration.
func DefaultOptions() Options {
	p := machine.DefaultParams(1)
	p.MemBytes = 1 << 26
	p.MaxSteps = 400_000_000
	return Options{
		Params:     p,
		OTableRows: 1 << 16,
		Policy:     core.DefaultPolicy(),
	}
}

// Build constructs the named system over a machine.
func Build(kind SystemKind, m *machine.Machine, opt Options) tm.System {
	sys := build(kind, m, opt)
	if t, ok := sys.(cm.Tunable); ok {
		t.SetBackoffPolicy(opt.CM)
	}
	return sys
}

func build(kind SystemKind, m *machine.Machine, opt Options) tm.System {
	cfg := ustm.DefaultConfig()
	if opt.OTableRows != 0 {
		cfg.OTableRows = opt.OTableRows
	}
	switch kind {
	case Sequential:
		return seq.New(m, seq.Sequential)
	case GlobalLock:
		return seq.New(m, seq.GlobalLock)
	case UnboundedHTM:
		return unbounded.New(m)
	case UFOHybrid:
		return core.New(m, cfg, opt.Policy)
	case HyTM:
		return hytm.New(m, cfg)
	case PhTM:
		return phtm.New(m, cfg)
	case USTM:
		cfg.StrongAtomicity = false
		return ustm.New(m, cfg)
	case USTMUFO:
		cfg.StrongAtomicity = true
		return ustm.New(m, cfg)
	case TL2:
		return tl2.New(m, tl2.DefaultConfig())
	case HybridNOrec:
		return norec.New(m, norec.DefaultConfig())
	}
	// Reaching here is internal misuse: user-supplied names must go
	// through ParseSystem, which rejects unknown ones with a usable error.
	panic("harness: build called with SystemKind " + string(kind) +
		" that is not in AllSystems; validate names with ParseSystem first")
}

// Result is one (workload, system, threads) measurement.
type Result struct {
	System   SystemKind
	Workload string
	Threads  int
	Cycles   uint64
	Stats    tm.Stats
	Machine  machine.Counters
	Metrics  *obs.Snapshot  // the cell's full metrics snapshot (OBSERVABILITY.md)
	Trace    *machine.Trace // non-nil when Options.TraceLimit > 0
	// Contention is the cell's conflict-attribution report; non-nil when
	// Options.Contention is set.
	Contention *contention.Report
	// TxStats is the cell's transaction-lifecycle report; non-nil when
	// Options.TxStats is set.
	TxStats *txstats.Report
	Err     error // non-nil if the workload invariant failed
}

// Speedup returns base/those cycles.
func (r Result) Speedup(seqCycles uint64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(seqCycles) / float64(r.Cycles)
}

// Run executes one workload on one system with the given thread count.
// The workload must be freshly constructed (Init mutates it).
func Run(kind SystemKind, wl stamp.Workload, threads int, opt Options) Result {
	params := opt.Params
	params.Procs = threads
	m := machine.New(params)
	var tr *machine.Trace
	if opt.TraceLimit > 0 {
		tr = m.EnableTrace(opt.TraceLimit)
	}
	var prof *contention.Profile
	if opt.Contention {
		prof = contention.New(threads, opt.TimeSeriesWindow)
		m.SetConflictRecorder(prof)
	}
	var txrec *txstats.Recorder
	if opt.TxStats {
		txrec = txstats.New(threads)
		m.SetTxRecorder(txrec)
	}
	sys := Build(kind, m, opt)
	wl.Init(m, threads)
	bodies := make([]func(*machine.Proc), threads)
	for i := 0; i < threads; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	reg := obs.NewRegistry()
	sys.Stats().Register(reg)
	if ci, ok := sys.(cm.Instrumented); ok {
		ci.CM().Register(reg)
	}
	m.RegisterMetrics(reg)
	res := Result{
		System:   kind,
		Workload: wl.Name(),
		Threads:  threads,
		Cycles:   m.Cycles(),
		Stats:    *sys.Stats(),
		Machine:  m.Count,
		Trace:    tr,
		Err:      wl.Validate(m),
	}
	if prof != nil {
		prof.Register(reg)
		res.Contention = prof.Report(opt.ContentionTopK)
		if ci, ok := sys.(cm.Instrumented); ok {
			st := ci.CM().Stats()
			res.Contention.CM = &contention.CMAnnotation{
				Policy:                ci.CM().PolicyName(),
				Delays:                st.Delays,
				DelayCycles:           st.DelayCycles,
				PageFaultStalls:       st.PageFaultStalls,
				RetryPolls:            st.RetryPolls,
				StarvationEscalations: st.StarvationEscalations,
				TokenAcquisitions:     st.TokenAcquisitions,
			}
		}
	}
	if txrec != nil {
		txrec.Register(reg)
		res.TxStats = txrec.Report()
	}
	res.Metrics = reg.Snapshot()
	return res
}

// WorkloadFactory builds a fresh workload instance per run.
type WorkloadFactory struct {
	Name string
	New  func() stamp.Workload
}

// Scale selects experiment sizes.
type Scale int

// Scales.
const (
	// ScaleSmall keeps runs fast enough for unit tests.
	ScaleSmall Scale = iota
	// ScaleFull is the configuration the committed EXPERIMENTS.md uses.
	ScaleFull
)

// Benchmarks returns the five Figure 5 workload configurations at the
// given scale.
func Benchmarks(s Scale) []WorkloadFactory {
	type sz struct {
		kmeansPts  int
		vacRel     int
		vacTasks   int
		genomeSegs int
	}
	z := sz{kmeansPts: 320, vacRel: 192, vacTasks: 24, genomeSegs: 192}
	if s == ScaleFull {
		z = sz{kmeansPts: 2400, vacRel: 2048, vacTasks: 96, genomeSegs: 768}
	}
	return []WorkloadFactory{
		{"kmeans-high", func() stamp.Workload { return stamp.KMeansHigh(z.kmeansPts) }},
		{"kmeans-low", func() stamp.Workload { return stamp.KMeansLow(z.kmeansPts) }},
		{"vacation-high", func() stamp.Workload { return stamp.VacationHigh(z.vacRel, z.vacTasks) }},
		{"vacation-low", func() stamp.Workload { return stamp.VacationLow(z.vacRel, z.vacTasks) }},
		{"genome", func() stamp.Workload { return stamp.NewGenome(z.genomeSegs) }},
	}
}

// ExtendedBenchmarks returns the extension workloads at the given scale
// — STAMP applications beyond the three the paper evaluates, covering the
// remaining corners of the design space: ssca2 (tiny transactions, low
// contention), intruder (queue-serialized pipeline), labyrinth (huge
// transactions that live almost entirely in the software TM).
func ExtendedBenchmarks(s Scale) []WorkloadFactory {
	type sz struct {
		nodes, edges int
		flows, frags int
		grid, paths  int
	}
	z := sz{nodes: 64, edges: 400, flows: 24, frags: 4, grid: 24, paths: 3}
	if s == ScaleFull {
		z = sz{nodes: 256, edges: 3000, flows: 96, frags: 6, grid: 48, paths: 8}
	}
	return []WorkloadFactory{
		{"ssca2", func() stamp.Workload { return stamp.NewSSCA2(z.nodes, z.edges) }},
		{"intruder", func() stamp.Workload { return stamp.NewIntruder(z.flows, z.frags) }},
		{"labyrinth", func() stamp.Workload {
			l := stamp.NewLabyrinth(z.grid, z.grid, z.paths)
			if s == ScaleFull {
				// Long routes exceed BTM's capacity: the all-software regime.
				l.PathLen = 256
			}
			return l
		}},
	}
}

// ThreadCounts returns the Figure 5 x-axis at the given scale.
func ThreadCounts(s Scale) []int {
	if s == ScaleFull {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 4}
}

// SeqBaseline measures the sequential execution of a workload (the
// denominator of every speedup).
func SeqBaseline(f WorkloadFactory, opt Options) Result {
	return Run(Sequential, f.New(), 1, opt)
}
