package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

// contentionOptions is testOptions with conflict attribution enabled.
func contentionOptions() Options {
	opt := testOptions()
	opt.Contention = true
	opt.ContentionTopK = 8
	opt.TimeSeriesWindow = 50_000
	return opt
}

// TestContentionReportDeterministicAcrossWorkers is the acceptance
// criterion beside TestMetricsReportDeterministicAcrossWorkers: the full
// contention JSON (per-cell reports + aggregate) must be byte-identical
// between a serial and a parallel sweep.
func TestContentionReportDeterministicAcrossWorkers(t *testing.T) {
	jobs := func() []Job {
		opt := contentionOptions()
		var jobs []Job
		for _, name := range []string{"kmeans-low", "genome"} {
			f, ok := FindWorkload(name, ScaleSmall)
			if !ok {
				t.Fatalf("workload %q not found", name)
			}
			for _, sys := range []SystemKind{UFOHybrid, USTM} {
				for _, threads := range []int{1, 2} {
					jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: opt})
				}
			}
		}
		return jobs
	}
	render := func(workers int) []byte {
		var rep ContentionReport
		r := Parallel(workers)
		r.Collect = rep.Collector()
		if _, err := r.Execute(jobs()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("contention report differs between -parallel=1 and -parallel=8")
	}
	if !strings.Contains(string(serial), ContentionSchemaVersion) {
		t.Fatal("report missing schema tag")
	}
}

// TestRunContention: a harness run with attribution enabled returns a
// frozen report whose totals also appear as contention.* metrics.
func TestRunContention(t *testing.T) {
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	res := Run(UFOHybrid, f.New(), 2, contentionOptions())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rep := res.Contention
	if rep == nil {
		t.Fatal("Result.Contention is nil with Options.Contention set")
	}
	if m := res.Metrics.Get("contention.edges"); m == nil || m.Value != rep.Edges {
		t.Fatalf("contention.edges metric = %+v, report says %d", m, rep.Edges)
	}
	if rep.WindowCycles != 50_000 {
		t.Fatalf("window = %d", rep.WindowCycles)
	}
	// Disabled by default: no report, and nothing recorded.
	off := Run(UFOHybrid, f.New(), 2, testOptions())
	if off.Contention != nil {
		t.Fatal("contention report produced without Options.Contention")
	}
	if m := off.Metrics.Get("contention.edges"); m != nil {
		t.Fatalf("contention metrics leaked into a disabled run: %+v", m)
	}
}

// TestContentionReportRoundTripAndRender: the JSON form re-reads for
// offline reprocessing, and both renderers label cells with their sweep
// coordinates (HTML staying self-contained).
func TestContentionReportRoundTripAndRender(t *testing.T) {
	var rep ContentionReport
	r := Serial()
	r.Collect = rep.Collector()
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	if _, err := r.Execute([]Job{{System: USTM, Factory: f, Threads: 2, Opt: contentionOptions()}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadContentionReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 1 || back.Cells[0].Workload != "kmeans-low" ||
		back.Cells[0].Contention == nil || back.Cells[0].Contention.Edges != rep.Cells[0].Contention.Edges {
		t.Fatalf("round-tripped cells = %+v", back.Cells)
	}

	var text, html bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "kmeans-low/ustm/2 threads") {
		t.Fatalf("text report missing cell label:\n%s", text.String())
	}
	if err := rep.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"http://", "https://", "<script", "src=", "href="} {
		if strings.Contains(html.String(), banned) {
			t.Errorf("HTML report is not self-contained: found %q", banned)
		}
	}
}

// --- Per-system collision attribution ---

// collider is a deterministic two-proc collision: every transaction
// read-modify-writes the same cache line around a long compute window, so
// concurrent transactions overlap and conflict. With syscall set, thread
// 0 marks a system call each attempt, forcing hybrids into their software
// path (exercising UFO kills and cross-mode conflicts).
type collider struct {
	iters   int
	syscall bool
	addr    uint64
	threads int
}

func (c *collider) Name() string { return "collider" }

func (c *collider) Init(m *machine.Machine, threads int) {
	c.addr = m.Mem.Sbrk(64)
	c.threads = threads
}

func (c *collider) Thread(i int, ex tm.Exec) {
	for k := 0; k < c.iters; k++ {
		ex.Atomic(func(tx tm.Tx) {
			if c.syscall && i == 0 {
				tx.Syscall()
			}
			v := tx.Load(c.addr)
			ex.Proc().Elapse(200)
			tx.Store(c.addr, v+1)
		})
	}
}

func (c *collider) Validate(m *machine.Machine) error {
	want := uint64(c.threads * c.iters)
	if got := m.Mem.Read64(c.addr); got != want {
		return fmt.Errorf("collider count = %d, want %d", got, want)
	}
	return nil
}

// edgeLog captures raw edges for tuple-level validation.
type edgeLog struct {
	edges     []machine.ConflictEdge
	hwCommits uint64
	swCommits uint64
}

func (l *edgeLog) RecordEdge(e machine.ConflictEdge) { l.edges = append(l.edges, e) }
func (l *edgeLog) RecordCommit(proc int, hw bool, cycle uint64) {
	if hw {
		l.hwCommits++
	} else {
		l.swCommits++
	}
}

// runCollider runs the collider on kind with two procs and a raw edge
// log attached, returning the log and the machine.
func runCollider(t *testing.T, kind SystemKind, syscall bool) (*edgeLog, *machine.Machine) {
	t.Helper()
	opt := testOptions()
	params := opt.Params
	params.Procs = 2
	m := machine.New(params)
	log := &edgeLog{}
	m.SetConflictRecorder(log)
	sys := Build(kind, m, opt)
	wl := &collider{iters: 12, syscall: syscall}
	wl.Init(m, 2)
	bodies := make([]func(*machine.Proc), 2)
	for i := 0; i < 2; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	if err := wl.Validate(m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return log, m
}

// checkEdges validates every recorded tuple: processors in range, a real
// abort reason, a cycle within the run, and (when present) an address
// inside simulated memory.
func checkEdges(t *testing.T, kind SystemKind, log *edgeLog, m *machine.Machine) {
	t.Helper()
	for _, e := range log.edges {
		if e.Victim < 0 || e.Victim >= 2 {
			t.Errorf("%s: victim out of range: %+v", kind, e)
		}
		if e.Aggressor < -1 || e.Aggressor >= 2 {
			t.Errorf("%s: aggressor out of range: %+v", kind, e)
		}
		if e.Reason == machine.AbortNone || int(e.Reason) >= machine.NumAbortReasons {
			t.Errorf("%s: bad reason: %+v", kind, e)
		}
		if e.Cycle == 0 || e.Cycle > m.Cycles() {
			t.Errorf("%s: cycle outside run: %+v (machine ran %d)", kind, e, m.Cycles())
		}
		if e.HasAddr && e.Addr >= m.MemBytes {
			t.Errorf("%s: address outside memory: %+v", kind, e)
		}
	}
}

// TestColliderEdgesPerSystem: every Figure 5 system under a forced
// two-proc collision emits well-formed attribution edges, and exactly
// one commit is recorded per completed transaction.
func TestColliderEdgesPerSystem(t *testing.T) {
	for _, kind := range Figure5Systems {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			log, m := runCollider(t, kind, false)
			checkEdges(t, kind, log, m)
			if len(log.edges) == 0 {
				t.Fatalf("%s: collider produced no conflict edges", kind)
			}
			if total := log.hwCommits + log.swCommits; total != 24 {
				t.Fatalf("%s: %d commits recorded, want 24 (2 threads × 12)", kind, total)
			}
		})
	}
}

// TestColliderHWConflictEdges: the pure-HTM collision attributes
// hardware conflict aborts with the conflicting line.
func TestColliderHWConflictEdges(t *testing.T) {
	log, m := runCollider(t, UnboundedHTM, false)
	checkEdges(t, UnboundedHTM, log, m)
	found := false
	for _, e := range log.edges {
		if e.Reason == machine.AbortConflict && !e.SW && e.HasAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("no HW conflict edge with address; edges = %+v", log.edges)
	}
}

// TestColliderSWKillEdges: the pure-STM collision attributes software
// conflict kills (SW flag, killer→victim, conflicting line).
func TestColliderSWKillEdges(t *testing.T) {
	for _, kind := range []SystemKind{USTM, TL2} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			log, m := runCollider(t, kind, false)
			checkEdges(t, kind, log, m)
			found := false
			for _, e := range log.edges {
				if e.SW {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: no SW conflict edge; edges = %+v", kind, log.edges)
			}
		})
	}
}

// TestColliderUFOKillEdges: with thread 0 forced into the software path,
// the UFO hybrid's strong-atomicity barriers kill thread 1's hardware
// transactions — those kills must surface as ufo-kill edges.
func TestColliderUFOKillEdges(t *testing.T) {
	log, m := runCollider(t, UFOHybrid, true)
	checkEdges(t, UFOHybrid, log, m)
	found := false
	for _, e := range log.edges {
		if e.Reason == machine.AbortUFOKill && e.HasAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ufo-kill edge; edges = %+v", log.edges)
	}
}
