package harness

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/stamp"
	"repro/internal/tm"
)

// TestParallelFigure5MatchesSerial is the determinism regression that
// guards the Runner forever: the full ScaleSmall Figure 5 sweep must
// produce byte-identical Result sets (cycles, TM stats, machine
// counters) at every worker count, including 1, because each cell owns
// its machine and seed. A divergence means some construction path
// shares hidden mutable state.
func TestParallelFigure5MatchesSerial(t *testing.T) {
	opt := testOptions()
	serial, err := Serial().Figure5(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// %+v renders every exported field (maps key-sorted), so equal
	// strings mean bit-identical cycles, stats, and counters.
	golden := fmt.Sprintf("%+v", serial)
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0) + 2} {
		data, err := Parallel(workers).Figure5(opt, ScaleSmall)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, data) {
			t.Errorf("workers=%d: results differ from serial run", workers)
		}
		if got := fmt.Sprintf("%+v", data); got != golden {
			t.Errorf("workers=%d: rendered results differ from serial run", workers)
		}
	}
}

func TestRunnerExecuteReturnsResultsInJobOrder(t *testing.T) {
	opt := testOptions()
	var jobs []Job
	for _, threads := range []int{1, 2, 4} {
		jobs = append(jobs, Job{
			System:  UFOHybrid,
			Factory: WorkloadFactory{Name: "failover", New: func() stamp.Workload { return stamp.NewFailover(12, 20) }},
			Threads: threads,
			Opt:     opt,
		})
	}
	results, err := Parallel(3).Execute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Threads != jobs[i].Threads {
			t.Fatalf("result %d has threads %d, want %d", i, r.Threads, jobs[i].Threads)
		}
	}
}

func TestRunnerProgressReporting(t *testing.T) {
	opt := testOptions()
	var snaps []Progress
	r := &Runner{
		Workers: 2,
		// The Runner serializes callback invocations, so the append
		// needs no lock.
		Progress: func(p Progress) { snaps = append(snaps, p) },
	}
	factory := WorkloadFactory{Name: "failover", New: func() stamp.Workload { return stamp.NewFailover(10, 0) }}
	var jobs []Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, Job{System: GlobalLock, Factory: factory, Threads: 2, Opt: opt})
	}
	if _, err := r.Execute(jobs); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(jobs) {
		t.Fatalf("progress callbacks = %d, want %d", len(snaps), len(jobs))
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != len(jobs) {
			t.Fatalf("snapshot %d = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, len(jobs))
		}
	}
	last := snaps[len(snaps)-1]
	if last.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", last.ETA)
	}
}

// failingWorkload is a stub whose invariant always fails, exercising the
// sweep error path end to end.
type failingWorkload struct{}

func (failingWorkload) Name() string                         { return "always-fails" }
func (failingWorkload) Init(m *machine.Machine, threads int) {}
func (failingWorkload) Thread(i int, ex tm.Exec)             { ex.Atomic(func(tx tm.Tx) { tx.Store(0, 1) }) }
func (failingWorkload) Validate(m *machine.Machine) error {
	return errors.New("stub invariant violated")
}

// TestSweepAggregatesCellErrors: a workload whose Validate fails must
// surface Result.Err through the whole sweep — no panic mid-sweep — and
// the aggregated report must name the exact (workload, system, threads)
// of every failing cell.
func TestSweepAggregatesCellErrors(t *testing.T) {
	opt := testOptions()
	factories := []WorkloadFactory{{Name: "always-fails", New: func() stamp.Workload { return failingWorkload{} }}}
	data, err := Parallel(2).Sweep(factories, []SystemKind{UFOHybrid, TL2}, opt, ScaleSmall)
	if err == nil {
		t.Fatal("sweep over a failing workload returned no error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SweepError", err)
	}
	wantCells := 1 + 2*len(ThreadCounts(ScaleSmall)) // seq baseline + 2 systems × thread counts
	if len(se.Cells) != wantCells || se.Total != wantCells {
		t.Fatalf("error reports %d/%d cells, want %d/%d", len(se.Cells), se.Total, wantCells, wantCells)
	}
	msg := err.Error()
	for _, want := range []string{
		"always-fails on sequential with 1 threads: stub invariant violated",
		"always-fails on ufo-hybrid with 4 threads",
		"always-fails on tl2 with 2 threads",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated report missing %q:\n%s", want, msg)
		}
	}
	// The data is still fully assembled, with per-cell errors attached.
	if len(data) != 1 {
		t.Fatalf("data rows = %d, want 1", len(data))
	}
	for _, sys := range []SystemKind{UFOHybrid, TL2} {
		for _, threads := range ThreadCounts(ScaleSmall) {
			if data[0].Cells[sys][threads].Err == nil {
				t.Errorf("%s/p%d cell lost its error", sys, threads)
			}
		}
	}
}

// panickyWorkload panics mid-run; the Runner must convert that into a
// per-cell error instead of crashing the sweep.
type panickyWorkload struct{}

func (panickyWorkload) Name() string                         { return "boom" }
func (panickyWorkload) Init(m *machine.Machine, threads int) {}
func (panickyWorkload) Thread(i int, ex tm.Exec)             { panic("kaboom") }
func (panickyWorkload) Validate(m *machine.Machine) error    { return nil }

func TestRunnerCapturesCellPanics(t *testing.T) {
	opt := testOptions()
	jobs := []Job{{
		System:  GlobalLock,
		Factory: WorkloadFactory{Name: "boom", New: func() stamp.Workload { return panickyWorkload{} }},
		Threads: 2,
		Opt:     opt,
	}}
	results, err := Serial().Execute(jobs)
	if err == nil {
		t.Fatal("panicking cell reported no error")
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "kaboom") {
		t.Fatalf("cell error = %v, want the captured panic", results[0].Err)
	}
	if !strings.Contains(err.Error(), "boom on global-lock with 2 threads") {
		t.Fatalf("aggregated report does not name the panicking cell: %v", err)
	}
}

func TestMergeSweepErrors(t *testing.T) {
	if err := mergeSweepErrors(nil, nil); err != nil {
		t.Fatalf("merge of nils = %v", err)
	}
	a := &SweepError{Total: 3, Cells: []CellError{{Workload: "w1", System: TL2, Threads: 2, Err: errors.New("x")}}}
	b := &SweepError{Total: 4, Cells: []CellError{{Workload: "w2", System: USTM, Threads: 4, Err: errors.New("y")}}}
	merged := mergeSweepErrors(a, nil, b)
	var se *SweepError
	if !errors.As(merged, &se) || se.Total != 7 || len(se.Cells) != 2 {
		t.Fatalf("merged = %#v", merged)
	}
}
