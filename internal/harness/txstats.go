package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/txstats"
)

// TxStatsSchemaVersion identifies the sweep transaction-lifecycle report
// JSON schema.
const TxStatsSchemaVersion = "tmsim-txstats/v1"

// CellTxStats is one sweep cell's identity plus its frozen
// transaction-lifecycle report.
type CellTxStats struct {
	Workload string          `json:"workload"`
	System   SystemKind      `json:"system"`
	Threads  int             `json:"threads"`
	Err      string          `json:"err,omitempty"`
	TxStats  *txstats.Report `json:"txstats"`
}

// Label renders the cell's coordinates for the text renderer.
func (c CellTxStats) Label() string {
	return fmt.Sprintf("%s/%s/%d threads", c.Workload, c.System, c.Threads)
}

// TxStatsReport accumulates per-cell lifecycle reports across one or
// more sweeps. Fed from Runner.Collect it is filled in job order, so for
// a fixed experiment sequence its encodings are byte-identical for every
// worker count — the same determinism contract as MetricsReport and
// ContentionReport. It is not safe for concurrent use; the Runner
// serializes Collect invocations.
type TxStatsReport struct {
	Cells []CellTxStats
}

// Collector returns a Runner.Collect callback appending into the report.
// Cells run without Options.TxStats contribute a nil report (rendered as
// "no txstats data" rather than dropped, so cell counts line up).
func (rep *TxStatsReport) Collector() func(Job, Result) {
	return func(_ Job, res Result) {
		cell := CellTxStats{
			Workload: res.Workload,
			System:   res.System,
			Threads:  res.Threads,
			TxStats:  res.TxStats,
		}
		if res.Err != nil {
			cell.Err = res.Err.Error()
		}
		rep.Cells = append(rep.Cells, cell)
	}
}

// Aggregate merges every cell's report: counts, cycle splits, and the
// abort breakdown sum; the latency and attempts histograms merge
// bucket-wise with percentiles recomputed (see txstats.Report.Add).
func (rep *TxStatsReport) Aggregate() *txstats.Report {
	agg := &txstats.Report{}
	for _, c := range rep.Cells {
		agg.Add(c.TxStats)
	}
	return agg
}

// txstatsJSON is the on-disk shape of a lifecycle report.
type txstatsJSON struct {
	Schema    string          `json:"schema"`
	Cells     []CellTxStats   `json:"cells"`
	Aggregate *txstats.Report `json:"aggregate"`
}

// WriteJSON writes the report — schema tag, per-cell reports in sweep
// order, and the aggregate — as indented JSON followed by a newline.
func (rep *TxStatsReport) WriteJSON(w io.Writer) error {
	out := txstatsJSON{
		Schema:    TxStatsSchemaVersion,
		Cells:     rep.Cells,
		Aggregate: rep.Aggregate(),
	}
	if out.Cells == nil {
		out.Cells = []CellTxStats{}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTxStatsReport parses a report written by WriteJSON, for offline
// reprocessing.
func ReadTxStatsReport(r io.Reader) (*TxStatsReport, error) {
	var raw txstatsJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	if raw.Schema != TxStatsSchemaVersion {
		return nil, fmt.Errorf("harness: unknown txstats report schema %q", raw.Schema)
	}
	return &TxStatsReport{Cells: raw.Cells}, nil
}

// Latency runs the `-experiment latency` sweep: the Figure 5 workloads ×
// systems × thread counts with per-transaction lifecycle accounting
// enabled. The recorder never perturbs simulated cycles, so the speedup
// numbers match a plain Figure5 run exactly; the extra yield is each
// cell's latency distribution and wasted-work attribution (collect them
// with TxStatsReport.Collector on the Runner).
func (r *Runner) Latency(opt Options, scale Scale) ([]Figure5Data, error) {
	opt.TxStats = true
	return r.Sweep(Benchmarks(scale), Figure5Systems, opt, scale)
}

// PrintLatency renders the latency experiment as text tables: one row
// per (system, threads) cell with commit counts, latency percentiles in
// simulated cycles, mean attempts per commit, and the share of
// transactional cycles that was wasted (aborted attempts + backoff).
func PrintLatency(w io.Writer, data []Figure5Data, scale Scale) {
	for _, d := range data {
		fmt.Fprintf(w, "\nLatency — %s (simulated cycles per committed transaction)\n", d.Workload)
		fmt.Fprintf(w, "%-14s %5s %9s %9s %9s %9s %9s %8s %7s\n",
			"system", "p", "commits", "P50", "P90", "P99", "P99.9", "attempts", "wasted")
		for _, sys := range Figure5Systems {
			for _, t := range ThreadCounts(scale) {
				res, ok := d.Cells[sys][t]
				if !ok || res.TxStats == nil {
					continue
				}
				ts := res.TxStats
				var p50, p90, p99, p999 float64
				if pc := ts.LatencyPercentiles; pc != nil {
					p50, p90, p99, p999 = pc.P50, pc.P90, pc.P99, pc.P999
				}
				meanAttempts := 0.0
				if ts.Attempts != nil && ts.Attempts.Count > 0 {
					meanAttempts = float64(ts.Attempts.Sum) / float64(ts.Attempts.Count)
				}
				wastedShare := 0.0
				if total := ts.UsefulCycles + ts.WastedCycles + ts.BackoffCycles +
					ts.RetryWaitCycles + ts.OverheadCycles; total > 0 {
					wastedShare = float64(ts.WastedCycles+ts.BackoffCycles) / float64(total)
				}
				fmt.Fprintf(w, "%-14s %5d %9d %9.0f %9.0f %9.0f %9.0f %8.2f %6.1f%%\n",
					sys, t, ts.Committed, p50, p90, p99, p999, meanAttempts, 100*wastedShare)
			}
		}
	}
}
