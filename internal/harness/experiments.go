package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/machine"
	"repro/internal/stamp"
)

// Figure5Data holds one workload's speedup sweep.
type Figure5Data struct {
	Workload  string
	SeqCycles uint64
	// Cells[system][threads] is the measured run.
	Cells map[SystemKind]map[int]Result
}

// Figure5 reproduces the paper's Figure 5: speedup over sequential
// execution for every benchmark × TM system × thread count.
func (r *Runner) Figure5(opt Options, scale Scale) ([]Figure5Data, error) {
	return r.Sweep(Benchmarks(scale), Figure5Systems, opt, scale)
}

// Extended runs the same sweep over the extension workloads (STAMP
// benchmarks beyond the paper's three: ssca2, intruder, labyrinth).
func (r *Runner) Extended(opt Options, scale Scale) ([]Figure5Data, error) {
	return r.Sweep(ExtendedBenchmarks(scale), Figure5Systems, opt, scale)
}

// Sweep measures speedup over sequential for every workload × system ×
// thread count. All cells (including the per-workload sequential
// baselines) fan out across the Runner's worker pool; the assembled
// data is identical for every worker count.
func (r *Runner) Sweep(factories []WorkloadFactory, systems []SystemKind, opt Options, scale Scale) ([]Figure5Data, error) {
	threads := ThreadCounts(scale)
	var jobs []Job
	for _, f := range factories {
		jobs = append(jobs, Job{System: Sequential, Factory: f, Threads: 1, Opt: opt})
		for _, sys := range systems {
			for _, t := range threads {
				jobs = append(jobs, Job{System: sys, Factory: f, Threads: t, Opt: opt})
			}
		}
	}
	results, err := r.Execute(jobs)
	var out []Figure5Data
	i := 0
	for _, f := range factories {
		d := Figure5Data{
			Workload: f.Name,
			Cells:    make(map[SystemKind]map[int]Result),
		}
		d.SeqCycles = results[i].Cycles
		i++
		for _, sys := range systems {
			d.Cells[sys] = make(map[int]Result)
			for _, t := range threads {
				d.Cells[sys][t] = results[i]
				i++
			}
		}
		out = append(out, d)
	}
	return out, err
}

// PrintFigure5 renders the sweep as text tables.
func PrintFigure5(w io.Writer, data []Figure5Data, scale Scale) {
	for _, d := range data {
		fmt.Fprintf(w, "\nFigure 5 — %s (speedup vs. sequential; seq = %d cycles)\n", d.Workload, d.SeqCycles)
		fmt.Fprintf(w, "%-14s", "system")
		for _, t := range ThreadCounts(scale) {
			fmt.Fprintf(w, "%8s", fmt.Sprintf("p=%d", t))
		}
		fmt.Fprintln(w)
		for _, sys := range Figure5Systems {
			fmt.Fprintf(w, "%-14s", sys)
			for _, t := range ThreadCounts(scale) {
				fmt.Fprintf(w, "%8.2f", d.Cells[sys][t].Speedup(d.SeqCycles))
			}
			fmt.Fprintln(w)
		}
	}
}

// ScaleProcCounts is the `-experiment scale` x-axis: simulated-processor
// counts beyond the paper's 16, exercising the 256-processor directory
// and sized for the windowed-parallel scheduler (DESIGN.md §14). The
// small scale keeps unit tests fast.
func ScaleProcCounts(s Scale) []int {
	if s == ScaleFull {
		return []int{64, 128, 256}
	}
	return []int{8, 16}
}

// ScaleSystems are the systems the scaling study sweeps: the paper's
// hybrid and a pure STM for contrast.
var ScaleSystems = []SystemKind{UFOHybrid, TL2}

// ScaleBenchmark returns the scaling-study workload at the given scale.
func ScaleBenchmark(s Scale) WorkloadFactory {
	iters, work := 400, 64
	if s == ScaleFull {
		iters, work = 12800, 256
	}
	return WorkloadFactory{
		Name: "scalemix",
		New:  func() stamp.Workload { return stamp.NewScaleMix(iters, work) },
	}
}

// ScaleSweep runs the Figure-5-style scaling study: scalemix speedup
// over sequential at every ScaleProcCounts processor count. The engine
// scheduler comes from opt.Params (tmsim's -sched flag); results are
// bit-identical across schedulers, only the wall clock differs.
func (r *Runner) ScaleSweep(opt Options, scale Scale) (Figure5Data, error) {
	f := ScaleBenchmark(scale)
	procs := ScaleProcCounts(scale)
	jobs := []Job{{System: Sequential, Factory: f, Threads: 1, Opt: opt}}
	for _, sys := range ScaleSystems {
		for _, p := range procs {
			jobs = append(jobs, Job{System: sys, Factory: f, Threads: p, Opt: opt})
		}
	}
	results, err := r.Execute(jobs)
	d := Figure5Data{Workload: f.Name, Cells: make(map[SystemKind]map[int]Result)}
	d.SeqCycles = results[0].Cycles
	i := 1
	for _, sys := range ScaleSystems {
		d.Cells[sys] = make(map[int]Result)
		for _, p := range procs {
			d.Cells[sys][p] = results[i]
			i++
		}
	}
	return d, err
}

// PrintScaleSweep renders the scaling study as a text table.
func PrintScaleSweep(w io.Writer, d Figure5Data, scale Scale) {
	fmt.Fprintf(w, "\nScaling study — %s (speedup vs. sequential; seq = %d cycles)\n", d.Workload, d.SeqCycles)
	fmt.Fprintf(w, "%-14s", "system")
	for _, p := range ScaleProcCounts(scale) {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for _, sys := range ScaleSystems {
		fmt.Fprintf(w, "%-14s", sys)
		for _, p := range ScaleProcCounts(scale) {
			fmt.Fprintf(w, "%8.2f", d.Cells[sys][p].Speedup(d.SeqCycles))
		}
		fmt.Fprintln(w)
	}
}

// Figure6Row is one (workload, system) abort breakdown.
type Figure6Row struct {
	Workload string
	System   SystemKind
	Result   Result
}

// Figure6Systems are the hardware-transaction-running systems whose abort
// reasons Figure 6 breaks down.
var Figure6Systems = []SystemKind{UnboundedHTM, UFOHybrid, HyTM, PhTM}

// Figure6 reproduces the abort-reason breakdown at the largest thread
// count of the scale.
func (r *Runner) Figure6(opt Options, scale Scale) ([]Figure6Row, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	var jobs []Job
	for _, f := range Benchmarks(scale) {
		for _, sys := range Figure6Systems {
			jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: opt})
		}
	}
	results, err := r.Execute(jobs)
	out := make([]Figure6Row, len(jobs))
	for i, j := range jobs {
		out[i] = Figure6Row{Workload: j.Factory.Name, System: j.System, Result: results[i]}
	}
	return out, err
}

// figure6Reasons are the abort categories Figure 6 plots.
var figure6Reasons = []machine.AbortReason{
	machine.AbortOverflow, machine.AbortConflict, machine.AbortUFOKill,
	machine.AbortUFOFault, machine.AbortNonTConflict, machine.AbortInterrupt,
	machine.AbortExplicit, machine.AbortSyscall,
}

// PrintFigure6 renders the breakdown.
func PrintFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintf(w, "\nFigure 6 — hardware-transaction abort reasons (largest thread count)\n")
	fmt.Fprintf(w, "%-14s %-14s %9s", "workload", "system", "hwCommit")
	for _, r := range figure6Reasons {
		fmt.Fprintf(w, "%10s", r)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-14s %-14s %9d", row.Workload, row.System, row.Result.Stats.HWCommits)
		for _, r := range figure6Reasons {
			fmt.Fprintf(w, "%10d", row.Result.Machine.HWAbortsByReason[r])
		}
		fmt.Fprintln(w)
	}
}

// Figure7Data holds the failover-rate sweep.
type Figure7Data struct {
	Threads   int
	Rates     []int
	SeqCycles map[int]uint64 // per rate (the coin flip costs cycles)
	// Cells[system][rate] is the measured run.
	Cells map[SystemKind]map[int]Result
}

// Figure7Systems compares the hybrids against pure HTM and pure STM.
var Figure7Systems = []SystemKind{UnboundedHTM, UFOHybrid, HyTM, PhTM, USTMUFO}

// Figure7 reproduces the software-failover microbenchmark (Section 5.3):
// conflict-free transactions forced to software at a prescribed rate.
func (r *Runner) Figure7(opt Options, scale Scale) (Figure7Data, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	tasks := 60
	if scale == ScaleFull {
		tasks = 200
	}
	d := Figure7Data{
		Threads:   threads,
		Rates:     []int{0, 1, 2, 5, 10, 20, 40, 60, 80, 100},
		SeqCycles: make(map[int]uint64),
		Cells:     make(map[SystemKind]map[int]Result),
	}
	if scale == ScaleSmall {
		d.Rates = []int{0, 5, 20, 60, 100}
	}
	failover := func(rate int) WorkloadFactory {
		return WorkloadFactory{
			Name: fmt.Sprintf("failover-%d%%", rate),
			New:  func() stamp.Workload { return stamp.NewFailover(tasks, rate) },
		}
	}
	var jobs []Job
	for _, rate := range d.Rates {
		jobs = append(jobs, Job{System: Sequential, Factory: failover(rate), Threads: 1, Opt: opt})
	}
	for _, sys := range Figure7Systems {
		for _, rate := range d.Rates {
			jobs = append(jobs, Job{System: sys, Factory: failover(rate), Threads: threads, Opt: opt})
		}
	}
	results, err := r.Execute(jobs)
	i := 0
	for _, rate := range d.Rates {
		d.SeqCycles[rate] = results[i].Cycles
		i++
	}
	for _, sys := range Figure7Systems {
		d.Cells[sys] = make(map[int]Result)
		for _, rate := range d.Rates {
			d.Cells[sys][rate] = results[i]
			i++
		}
	}
	return d, err
}

// PrintFigure7 renders the sweep: absolute speedups (7a) and the
// low-rate zoom normalized to pure HTM (7b).
func PrintFigure7(w io.Writer, d Figure7Data) {
	fmt.Fprintf(w, "\nFigure 7a — failover microbenchmark, %d threads (speedup vs. sequential)\n", d.Threads)
	fmt.Fprintf(w, "%-14s", "system")
	for _, rate := range d.Rates {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("%d%%", rate))
	}
	fmt.Fprintln(w)
	for _, sys := range Figure7Systems {
		fmt.Fprintf(w, "%-14s", sys)
		for _, rate := range d.Rates {
			fmt.Fprintf(w, "%8.2f", d.Cells[sys][rate].Speedup(d.SeqCycles[rate]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFigure 7b — low failover rates, relative to pure HTM (=1.00)\n")
	var low []int
	for _, r := range d.Rates {
		if r <= 10 {
			low = append(low, r)
		}
	}
	sort.Ints(low)
	fmt.Fprintf(w, "%-14s", "system")
	for _, rate := range low {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("%d%%", rate))
	}
	fmt.Fprintln(w)
	for _, sys := range Figure7Systems {
		fmt.Fprintf(w, "%-14s", sys)
		for _, rate := range low {
			htm := float64(d.Cells[UnboundedHTM][rate].Cycles)
			fmt.Fprintf(w, "%8.3f", htm/float64(d.Cells[sys][rate].Cycles))
		}
		fmt.Fprintln(w)
	}
}

// Figure8Variant is one contention-management configuration.
type Figure8Variant struct {
	Name   string
	Mutate func(*Options)
}

// Figure8Variants are the Section 5.4 sensitivity configurations.
func Figure8Variants() []Figure8Variant {
	return []Figure8Variant{
		{"age-ordered (default)", func(*Options) {}},
		// The paper's first bar pairs the naive hardware policy with
		// failover after repeated contention aborts (required there for
		// forward progress).
		{"requester-wins+failover5", func(o *Options) {
			o.Params.HWPolicy = machine.RequesterWins
			o.Policy.FailoverOnNthConflict = 5
		}},
		{"requester-wins", func(o *Options) { o.Params.HWPolicy = machine.RequesterWins }},
		{"failover-on-5th-conflict", func(o *Options) { o.Policy.FailoverOnNthConflict = 5 }},
		{"stall-on-ufo-fault", func(o *Options) { o.Policy.StallOnUFOFault = true }},
		{"true-conflict-kills-only", func(o *Options) { o.Params.TrueConflictUFOKills = true }},
	}
}

// Figure8Row is one (workload, variant) measurement.
type Figure8Row struct {
	Workload  string
	Variant   string
	SeqCycles uint64
	Result    Result
}

// Figure8 reproduces the contention-policy sensitivity study on the UFO
// hybrid over the two highest-contention benchmarks.
func (r *Runner) Figure8(opt Options, scale Scale) ([]Figure8Row, error) {
	threads := ThreadCounts(scale)[len(ThreadCounts(scale))-1]
	variants := Figure8Variants()
	var factories []WorkloadFactory
	for _, f := range Benchmarks(scale) {
		if f.Name == "genome" || f.Name == "kmeans-high" || f.Name == "vacation-high" {
			factories = append(factories, f)
		}
	}
	var jobs []Job
	for _, f := range factories {
		jobs = append(jobs, Job{System: Sequential, Factory: f, Threads: 1, Opt: opt})
		for _, v := range variants {
			o := opt
			v.Mutate(&o)
			jobs = append(jobs, Job{System: UFOHybrid, Factory: f, Threads: threads, Opt: o})
		}
	}
	results, err := r.Execute(jobs)
	var out []Figure8Row
	i := 0
	for _, f := range factories {
		seqCycles := results[i].Cycles
		i++
		for _, v := range variants {
			out = append(out, Figure8Row{
				Workload:  f.Name,
				Variant:   v.Name,
				SeqCycles: seqCycles,
				Result:    results[i],
			})
			i++
		}
	}
	return out, err
}

// PrintFigure8 renders the study.
func PrintFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintf(w, "\nFigure 8 — UFO-hybrid contention-management sensitivity (speedup vs. sequential)\n")
	fmt.Fprintf(w, "%-14s %-26s %8s %10s %10s\n", "workload", "policy", "speedup", "failovers", "ufoKills")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-26s %8.2f %10d %10d\n",
			r.Workload, r.Variant, r.Result.Speedup(r.SeqCycles),
			r.Result.Stats.Failovers,
			r.Result.Machine.UFOKillsTrue+r.Result.Machine.UFOKillsFalse)
	}
}

// PrintParams renders the Table 4 analogue.
func PrintParams(w io.Writer, opt Options) {
	p := opt.Params
	fmt.Fprintln(w, "Table 4 — simulation parameters")
	fmt.Fprintf(w, "  L1 data cache        %d KB, %d-way, 64 B lines, %d-cycle hit\n", p.L1Bytes/1024, p.L1Ways, p.L1HitCycles)
	fmt.Fprintf(w, "  L2 (shared) latency  %d cycles\n", p.L2HitCycles)
	fmt.Fprintf(w, "  Memory latency       %d cycles\n", p.MemCycles)
	fmt.Fprintf(w, "  Cache-to-cache       %d cycles\n", p.TransferCycles)
	fmt.Fprintf(w, "  NACK retry delay     %d cycles\n", p.NackCycles)
	fmt.Fprintf(w, "  Scheduling quantum   %d cycles\n", p.Quantum)
	fmt.Fprintf(w, "  UFO bit operation    %d cycles\n", p.UFOOpCycles)
	fmt.Fprintf(w, "  USTM otable rows     %d\n", opt.OTableRows)
}
