package harness

import (
	"strings"
	"testing"
)

// The experiment drivers run end-to-end at small scale; these tests check
// their structure and rendering, not their values (claims_test.go owns
// the values).

func TestFigure5StructureAndPrint(t *testing.T) {
	opt := testOptions()
	data, err := Parallel(0).Figure5(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("workloads = %d, want 5", len(data))
	}
	for _, d := range data {
		if d.SeqCycles == 0 {
			t.Fatalf("%s: zero sequential baseline", d.Workload)
		}
		for _, sys := range Figure5Systems {
			for _, th := range ThreadCounts(ScaleSmall) {
				r, ok := d.Cells[sys][th]
				if !ok || r.Cycles == 0 {
					t.Fatalf("%s/%s/p%d missing", d.Workload, sys, th)
				}
			}
		}
	}
	var sb strings.Builder
	PrintFigure5(&sb, data, ScaleSmall)
	for _, want := range []string{"kmeans-high", "vacation-low", "genome", "ufo-hybrid", "p=4"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Figure 5 output missing %q", want)
		}
	}
}

func TestFigure6StructureAndPrint(t *testing.T) {
	opt := testOptions()
	rows, err := Parallel(0).Figure6(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(Figure6Systems) {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	PrintFigure6(&sb, rows)
	if !strings.Contains(sb.String(), "ufo-kill") || !strings.Contains(sb.String(), "overflow") {
		t.Fatal("Figure 6 output missing columns")
	}
}

func TestFigure7StructureAndPrint(t *testing.T) {
	opt := testOptions()
	d, err := Parallel(0).Figure7(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rates) == 0 || d.Rates[0] != 0 || d.Rates[len(d.Rates)-1] != 100 {
		t.Fatalf("rates = %v: must span 0..100", d.Rates)
	}
	for _, sys := range Figure7Systems {
		for _, rate := range d.Rates {
			if d.Cells[sys][rate].Cycles == 0 {
				t.Fatalf("%s at %d%% missing", sys, rate)
			}
		}
	}
	var sb strings.Builder
	PrintFigure7(&sb, d)
	if !strings.Contains(sb.String(), "Figure 7a") || !strings.Contains(sb.String(), "Figure 7b") {
		t.Fatal("Figure 7 output incomplete")
	}
}

func TestFigure8StructureAndPrint(t *testing.T) {
	opt := testOptions()
	rows, err := Parallel(0).Figure8(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Three workloads × six variants.
	if len(rows) != 3*len(Figure8Variants()) {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	PrintFigure8(&sb, rows)
	if !strings.Contains(sb.String(), "requester-wins") {
		t.Fatal("Figure 8 output missing variants")
	}
}

func TestAblationsStructureAndPrint(t *testing.T) {
	opt := testOptions()
	rows, err := Parallel(0).Ablations(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]int{}
	for _, r := range rows {
		studies[r.Study]++
	}
	for _, s := range []string{"ufo-mitigations", "l1-size", "otable-size", "quantum"} {
		if studies[s] == 0 {
			t.Fatalf("study %q missing", s)
		}
	}
	var sb strings.Builder
	PrintAblations(&sb, rows)
	if !strings.Contains(sb.String(), "lazy clear") {
		t.Fatal("ablation output missing configs")
	}
}

func TestAblationL1SizeDirectionality(t *testing.T) {
	opt := testOptions()
	rows, err := Parallel(0).AblationL1Size(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Failovers must not increase with L1 size.
	var prev = ^uint64(0)
	for _, r := range rows {
		f := r.Result.Stats.Failovers
		if f > prev {
			t.Fatalf("failovers rose with a larger L1: %v", rows)
		}
		prev = f
	}
	// And the smallest cache must actually overflow at this scale.
	if rows[0].Result.Stats.Failovers == 0 {
		t.Fatal("4 KB L1 produced no failovers")
	}
}

func TestExtendedSweep(t *testing.T) {
	opt := testOptions()
	data, err := Parallel(0).Extended(opt, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 {
		t.Fatalf("extended workloads = %d, want 3", len(data))
	}
	names := map[string]bool{}
	for _, d := range data {
		names[d.Workload] = true
	}
	for _, want := range []string{"ssca2", "intruder", "labyrinth"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestTraceLimitReturnsTrace(t *testing.T) {
	opt := testOptions()
	opt.TraceLimit = 64
	f := Benchmarks(ScaleSmall)[0]
	r := Run(UFOHybrid, f.New(), 2, opt)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Trace == nil || r.Trace.Total() == 0 {
		t.Fatal("trace missing or empty")
	}
}
