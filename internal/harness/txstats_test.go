package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/txstats"
)

// txstatsOptions is testOptions with lifecycle accounting enabled.
func txstatsOptions() Options {
	opt := testOptions()
	opt.TxStats = true
	return opt
}

// txstatsJobs is the small sweep both determinism tests render.
func txstatsJobs(t *testing.T, opt Options) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range []string{"kmeans-low", "genome"} {
		f, ok := FindWorkload(name, ScaleSmall)
		if !ok {
			t.Fatalf("workload %q not found", name)
		}
		for _, sys := range []SystemKind{UFOHybrid, USTM} {
			for _, threads := range []int{1, 2} {
				jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: opt})
			}
		}
	}
	return jobs
}

// renderTxStats runs jobs on a workers-wide runner and returns the full
// txstats JSON.
func renderTxStats(t *testing.T, workers int, jobs []Job) []byte {
	t.Helper()
	var rep TxStatsReport
	r := Parallel(workers)
	r.Collect = rep.Collector()
	if _, err := r.Execute(jobs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTxStatsReportDeterministicAcrossWorkers is the acceptance criterion
// beside TestMetricsReportDeterministicAcrossWorkers and its contention
// sibling: the full txstats JSON (per-cell reports + aggregate, latency
// percentiles included) must be byte-identical between a serial and a
// parallel sweep.
func TestTxStatsReportDeterministicAcrossWorkers(t *testing.T) {
	serial := renderTxStats(t, 1, txstatsJobs(t, txstatsOptions()))
	parallel := renderTxStats(t, 8, txstatsJobs(t, txstatsOptions()))
	if !bytes.Equal(serial, parallel) {
		t.Fatal("txstats report differs between -parallel=1 and -parallel=8")
	}
	if !strings.Contains(string(serial), TxStatsSchemaVersion) {
		t.Fatal("report missing schema tag")
	}
}

// TestTxStatsReportSchedulerBitIdentical is the txstats counterpart of
// TestScaleSweepSchedulerBitIdentical: the report must be byte-identical
// whether the cells ran under the run-ahead serial scheduler, the
// reference scheduler, or the windowed-parallel scheduler (default and
// deliberately odd window) — the recorder observes simulated time only,
// so the engine's host-side execution strategy must not leak into it.
func TestTxStatsReportSchedulerBitIdentical(t *testing.T) {
	run := func(reference, parallel bool, window uint64) []byte {
		opt := txstatsOptions()
		opt.Params.ReferenceScheduler = reference
		opt.Params.ParallelScheduler = parallel
		opt.Params.WindowCycles = window
		return renderTxStats(t, 1, txstatsJobs(t, opt))
	}
	ref := run(false, false, 0)
	for name, cfg := range map[string]struct {
		reference, parallel bool
		window              uint64
	}{
		"reference":    {reference: true},
		"parallel":     {parallel: true},
		"parallel-w97": {parallel: true, window: 97},
	} {
		if got := run(cfg.reference, cfg.parallel, cfg.window); !bytes.Equal(ref, got) {
			t.Errorf("%s: txstats report differs from the fast scheduler", name)
		}
	}
}

// TestRunTxStats: a harness run with accounting enabled returns a frozen
// report whose totals also appear as txstats.* metrics and obey the
// cycle-split identity; a run without it records nothing.
func TestRunTxStats(t *testing.T) {
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	res := Run(UFOHybrid, f.New(), 2, txstatsOptions())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rep := res.TxStats
	if rep == nil {
		t.Fatal("Result.TxStats is nil with Options.TxStats set")
	}
	if rep.Begun == 0 || rep.Committed == 0 {
		t.Fatalf("no transactions recorded: %+v", rep)
	}
	if m := res.Metrics.Get("txstats.committed"); m == nil || m.Value != rep.Committed {
		t.Fatalf("txstats.committed metric = %+v, report says %d", m, rep.Committed)
	}
	if rep.Latency == nil || rep.Latency.Count != rep.Committed {
		t.Fatalf("latency histogram count = %+v, want %d commits", rep.Latency, rep.Committed)
	}
	// Every committed transaction's latency decomposes exactly: the five
	// split buckets sum to the histogram's total latency plus whatever
	// in-flight transactions wasted (they have no latency sample).
	split := rep.UsefulCycles + rep.WastedCycles + rep.BackoffCycles +
		rep.RetryWaitCycles + rep.OverheadCycles
	if rep.InFlight == 0 && split != rep.Latency.Sum {
		t.Fatalf("cycle split %d != total latency %d", split, rep.Latency.Sum)
	}
	// Disabled by default: no report, and nothing recorded.
	off := Run(UFOHybrid, f.New(), 2, testOptions())
	if off.TxStats != nil {
		t.Fatal("txstats report produced without Options.TxStats")
	}
	if m := off.Metrics.Get("txstats.begun"); m != nil {
		t.Fatalf("txstats metrics leaked into a disabled run: %+v", m)
	}
}

// TestTxStatsReportRoundTrip: the JSON form re-reads for offline
// reprocessing with the cells and aggregate intact.
func TestTxStatsReportRoundTrip(t *testing.T) {
	var rep TxStatsReport
	r := Serial()
	r.Collect = rep.Collector()
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	if _, err := r.Execute([]Job{{System: USTM, Factory: f, Threads: 2, Opt: txstatsOptions()}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTxStatsReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 1 || back.Cells[0].Workload != "kmeans-low" ||
		back.Cells[0].TxStats == nil || back.Cells[0].TxStats.Committed != rep.Cells[0].TxStats.Committed {
		t.Fatalf("round-tripped cells = %+v", back.Cells)
	}
	if agg := back.Aggregate(); agg.Committed != rep.Cells[0].TxStats.Committed {
		t.Fatalf("aggregate committed = %d, want %d", agg.Committed, rep.Cells[0].TxStats.Committed)
	}
	var bad bytes.Buffer
	bad.WriteString(`{"schema":"bogus/v0"}`)
	if _, err := ReadTxStatsReport(&bad); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

// TestLatencySweep: the latency experiment forces accounting on and
// yields a report for every (system, threads) cell, rendered with
// percentile columns.
func TestLatencySweep(t *testing.T) {
	data, err := Serial().Latency(testOptions(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("latency sweep returned no workloads")
	}
	for _, d := range data {
		for _, sys := range Figure5Systems {
			for _, threads := range ThreadCounts(ScaleSmall) {
				res := d.Cells[sys][threads]
				if res.TxStats == nil {
					t.Fatalf("%s/%s/%d: no txstats report", d.Workload, sys, threads)
				}
				if res.TxStats.Committed == 0 {
					t.Fatalf("%s/%s/%d: zero commits", d.Workload, sys, threads)
				}
			}
		}
	}
	var buf bytes.Buffer
	PrintLatency(&buf, data[:1], ScaleSmall)
	for _, want := range []string{"P50", "P99.9", "attempts", "wasted", data[0].Workload} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("PrintLatency output missing %q:\n%s", want, buf.String())
		}
	}
}

// runColliderTxStats runs the two-proc collider on kind with a lifecycle
// recorder attached and returns the frozen report.
func runColliderTxStats(t *testing.T, kind SystemKind, syscall bool) *txstats.Report {
	t.Helper()
	opt := testOptions()
	params := opt.Params
	params.Procs = 2
	m := machine.New(params)
	rec := txstats.New(2)
	m.SetTxRecorder(rec)
	sys := Build(kind, m, opt)
	wl := &collider{iters: 12, syscall: syscall}
	wl.Init(m, 2)
	bodies := make([]func(*machine.Proc), 2)
	for i := 0; i < 2; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		bodies[i] = func(*machine.Proc) { wl.Thread(tid, ex) }
	}
	m.Run(bodies)
	if err := wl.Validate(m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return rec.Report()
}

// TestColliderTxStatsPerSystem: every Figure 5 system under the forced
// two-proc collision produces an exact, internally consistent lifecycle
// report — 24 begun and committed, one latency sample per commit, the
// cycle-split identity holding to the cycle, wasted cycles fully
// attributed (aggressor ranking + unknown = total), and attempt counts
// at least one per commit. The collision guarantees real conflicts, so
// wasted work and abort buckets must be non-empty.
func TestColliderTxStatsPerSystem(t *testing.T) {
	for _, kind := range Figure5Systems {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rep := runColliderTxStats(t, kind, false)
			if rep.Begun != 24 || rep.Committed != 24 || rep.InFlight != 0 {
				t.Fatalf("begun/committed/in-flight = %d/%d/%d, want 24/24/0",
					rep.Begun, rep.Committed, rep.InFlight)
			}
			if rep.Latency == nil || rep.Latency.Count != 24 {
				t.Fatalf("latency samples = %+v, want 24", rep.Latency)
			}
			split := rep.UsefulCycles + rep.WastedCycles + rep.BackoffCycles +
				rep.RetryWaitCycles + rep.OverheadCycles
			if split != rep.Latency.Sum {
				t.Fatalf("cycle split %d != total latency %d", split, rep.Latency.Sum)
			}
			if rep.WastedCycles == 0 || len(rep.Aborts) == 0 {
				t.Fatalf("collision produced no wasted work: %+v", rep)
			}
			var attributed uint64
			for _, a := range rep.AggressorWasted {
				if a.Proc < 0 || a.Proc >= 2 {
					t.Fatalf("aggressor out of range: %+v", a)
				}
				attributed += a.Cycles
			}
			if attributed+rep.UnknownWasted != rep.WastedCycles {
				t.Fatalf("attributed %d + unknown %d != wasted %d",
					attributed, rep.UnknownWasted, rep.WastedCycles)
			}
			var bucketWaste, attempts uint64
			for _, b := range rep.Aborts {
				bucketWaste += b.WastedCycles
			}
			if bucketWaste != rep.WastedCycles {
				t.Fatalf("abort buckets account %d wasted cycles, total %d",
					bucketWaste, rep.WastedCycles)
			}
			for _, pc := range rep.AttemptsByPath {
				attempts += pc.Count
			}
			if attempts < 24 || rep.Attempts == nil || rep.Attempts.Sum != attempts {
				t.Fatalf("attempts = %d (histogram %+v), want >= 24 and consistent",
					attempts, rep.Attempts)
			}
			// Exactness: the same deterministic run yields the same report,
			// tuple for tuple.
			if again := runColliderTxStats(t, kind, false); !reflect.DeepEqual(rep, again) {
				t.Fatalf("collider report not reproducible:\n%+v\nvs\n%+v", rep, again)
			}
		})
	}
}

// TestColliderTxStatsConflictAttribution: in the two-proc collision the
// peer processor is the only possible aggressor, so conflict-abort wasted
// cycles must land in its AggressorWasted entry, not in UnknownWasted.
func TestColliderTxStatsConflictAttribution(t *testing.T) {
	rep := runColliderTxStats(t, UnboundedHTM, false)
	var conflictWaste uint64
	for _, b := range rep.Aborts {
		if b.Reason == machine.AbortConflict.String() {
			conflictWaste += b.WastedCycles
		}
	}
	if conflictWaste == 0 {
		t.Fatalf("no conflict aborts in collider run: %+v", rep.Aborts)
	}
	var attributed uint64
	for _, a := range rep.AggressorWasted {
		attributed += a.Cycles
	}
	if attributed == 0 {
		t.Fatalf("conflict wasted cycles (%d) not attributed to any aggressor: %+v",
			conflictWaste, rep)
	}
}

// TestColliderTxStatsUFOPath: with thread 0 forced into the software
// path, the UFO hybrid records both hardware and strongly-atomic
// software (ufo) attempts — the path split the wasted-work breakdown
// keys on.
func TestColliderTxStatsUFOPath(t *testing.T) {
	rep := runColliderTxStats(t, UFOHybrid, true)
	paths := map[string]uint64{}
	for _, pc := range rep.AttemptsByPath {
		paths[pc.Path] = pc.Count
	}
	if paths["htm"] == 0 || paths["ufo"] == 0 {
		t.Fatalf("expected both htm and ufo attempts, got %+v", rep.AttemptsByPath)
	}
	commits := map[string]uint64{}
	for _, pc := range rep.CommitsByPath {
		commits[pc.Path] = pc.Count
	}
	if commits["ufo"] == 0 {
		t.Fatalf("syscall-forced thread should commit on the ufo path: %+v", rep.CommitsByPath)
	}
}
