package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

// sweepJobs is a small but representative job set: two workloads, a
// hybrid and a pure-software system, two thread counts.
func sweepJobs(t *testing.T) []Job {
	t.Helper()
	opt := testOptions()
	var jobs []Job
	for _, name := range []string{"kmeans-low", "genome"} {
		f, ok := FindWorkload(name, ScaleSmall)
		if !ok {
			t.Fatalf("workload %q not found", name)
		}
		for _, sys := range []SystemKind{UFOHybrid, USTM} {
			for _, threads := range []int{1, 2} {
				jobs = append(jobs, Job{System: sys, Factory: f, Threads: threads, Opt: opt})
			}
		}
	}
	return jobs
}

// TestMetricsReportDeterministicAcrossWorkers is the acceptance-criteria
// regression: the full metrics JSON (per-cell snapshots + aggregate)
// must be byte-identical between a serial and a parallel sweep.
func TestMetricsReportDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		var rep MetricsReport
		r := Parallel(workers)
		r.Collect = rep.Collector()
		if _, err := r.Execute(sweepJobs(t)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("metrics report differs between -parallel=1 and -parallel=8")
	}
}

// TestResultMetricsMatchLegacyCounters: the registry snapshot must agree
// with the fields it mirrors, so the schema can never drift from the
// counters the paper's tables are printed from.
func TestResultMetricsMatchLegacyCounters(t *testing.T) {
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	res := Run(UFOHybrid, f.New(), 2, testOptions())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	s := res.Metrics
	if s == nil {
		t.Fatal("Result.Metrics is nil")
	}
	checks := []struct {
		metric string
		want   uint64
	}{
		{tm.MetricHWCommits, res.Stats.HWCommits},
		{tm.MetricSWCommits, res.Stats.SWCommits},
		{tm.MetricFailovers, res.Stats.Failovers},
		{tm.MetricSWAborts, res.Stats.SWAborts},
		{tm.MetricSWStalls, res.Stats.SWStalls},
		{tm.MetricNTStalls, res.Stats.NTStalls},
		{tm.MetricRetries, res.Stats.Retries},
		{tm.MetricHWRetries, res.Stats.HWRetries},
		{machine.MetricCycles, res.Cycles},
		{machine.MetricHWCommits, res.Machine.HWCommits},
		{machine.MetricNacks, res.Machine.Nacks},
		{machine.MetricUFOFaults, res.Machine.UFOFaults},
		{machine.MetricUFOKillsTrue, res.Machine.UFOKillsTrue},
		{machine.MetricUFOKillsFalse, res.Machine.UFOKillsFalse},
		{machine.MetricSTMOlder, res.Machine.ConflictSTMOlder},
		{machine.MetricHTMOlder, res.Machine.ConflictHTMOlder},
	}
	for _, c := range checks {
		m := s.Get(c.metric)
		if m == nil {
			t.Errorf("metric %q missing from snapshot", c.metric)
			continue
		}
		if m.Value != c.want {
			t.Errorf("%s = %d, want %d", c.metric, m.Value, c.want)
		}
	}
	for reason := 1; reason < machine.NumAbortReasons; reason++ {
		name := machine.MetricAbortPrefix + machine.AbortReason(reason).String()
		m := s.Get(name)
		if m == nil {
			t.Errorf("metric %q missing", name)
			continue
		}
		if m.Value != res.Machine.HWAbortsByReason[reason] {
			t.Errorf("%s = %d, want %d", name, m.Value, res.Machine.HWAbortsByReason[reason])
		}
	}
	// Footprint histograms import losslessly.
	hw := s.Get(machine.MetricHWFootprint)
	if hw == nil || hw.Hist.Count != res.Machine.HWFootprint.Count || hw.Hist.Sum != res.Machine.HWFootprint.Sum {
		t.Errorf("hw footprint hist = %+v, want count=%d sum=%d", hw, res.Machine.HWFootprint.Count, res.Machine.HWFootprint.Sum)
	}
	// Per-processor breakdowns exist for both procs and sum to the totals.
	var hits uint64
	for _, pp := range []string{"machine.proc.00.", "machine.proc.01."} {
		for _, leaf := range []string{"cycles", "l1_hits", "l1_misses"} {
			m := s.Get(pp + leaf)
			if m == nil {
				t.Fatalf("metric %q missing", pp+leaf)
			}
			if leaf == "l1_hits" {
				hits += m.Value
			}
		}
	}
	if total := s.Get(machine.MetricL1Hits); total == nil || total.Value != hits {
		t.Errorf("l1 hit total %v does not match per-proc sum %d", total, hits)
	}
}

// TestMetricsReportAggregate: the aggregate is the cell-wise sum.
func TestMetricsReportAggregate(t *testing.T) {
	var rep MetricsReport
	r := Serial()
	r.Collect = rep.Collector()
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	opt := testOptions()
	jobs := []Job{
		{System: UFOHybrid, Factory: f, Threads: 1, Opt: opt},
		{System: UFOHybrid, Factory: f, Threads: 2, Opt: opt},
	}
	results, err := r.Execute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	agg := rep.Aggregate()
	want := results[0].Stats.HWCommits + results[1].Stats.HWCommits
	if got := agg.Get(tm.MetricHWCommits); got == nil || got.Value != want {
		t.Fatalf("aggregate hw commits = %v, want %d", got, want)
	}
}

// TestMetricsReportRoundTrip: a written report can be re-read for
// offline reprocessing, preserving every cell.
func TestMetricsReportRoundTrip(t *testing.T) {
	var rep MetricsReport
	r := Serial()
	r.Collect = rep.Collector()
	f, _ := FindWorkload("kmeans-low", ScaleSmall)
	if _, err := r.Execute([]Job{{System: USTM, Factory: f, Threads: 2, Opt: testOptions()}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ReportSchemaVersion) {
		t.Fatalf("report missing schema tag:\n%s", buf.String())
	}
	back, err := ReadMetricsReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 1 || back.Cells[0].Workload != "kmeans-low" || back.Cells[0].Threads != 2 {
		t.Fatalf("round-tripped cells = %+v", back.Cells)
	}
	if got := back.Cells[0].Metrics.Get(tm.MetricSWCommits); got == nil || got.Value != rep.Cells[0].Metrics.Get(tm.MetricSWCommits).Value {
		t.Fatalf("round-tripped metric = %+v", got)
	}
}
