package harness

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Job is one independent sweep cell: a system, a fresh-workload factory,
// a thread count, and the options to run it under. Each cell constructs
// its own machine (and so its own seed-derived RNG streams) inside Run,
// which is what makes cells safe to execute concurrently and their
// results independent of execution order.
type Job struct {
	System  SystemKind
	Factory WorkloadFactory
	Threads int
	Opt     Options
}

// Progress is a snapshot of a running sweep, delivered to the Runner's
// Progress callback after every completed cell.
type Progress struct {
	// Done and Total count cells.
	Done, Total int
	// Elapsed is the wall-clock time since Execute started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the mean cell
	// cost so far; zero when Done == Total.
	ETA time.Duration
}

// CellError names one failing sweep cell.
type CellError struct {
	Workload string
	System   SystemKind
	Threads  int
	Err      error
}

func (c CellError) Error() string {
	return fmt.Sprintf("%s on %s with %d threads: %v", c.Workload, c.System, c.Threads, c.Err)
}

// SweepError aggregates every failing cell of a sweep: instead of
// panicking mid-sweep on the first bad cell, the Runner finishes the
// whole sweep and reports all failures, each naming its exact
// (workload, system, threads) coordinates.
type SweepError struct {
	Total int // cells attempted
	Cells []CellError
}

func (e *SweepError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "harness: %d of %d sweep cells failed:", len(e.Cells), e.Total)
	for _, c := range e.Cells {
		sb.WriteString("\n  ")
		sb.WriteString(c.Error())
	}
	return sb.String()
}

// Runner executes sweep cells across a bounded worker pool. The zero
// value (and a nil *Runner) runs with one worker per available CPU and
// no progress reporting.
//
// Determinism guarantee: every cell owns its machine and RNG seed, so a
// cell's Result is a pure function of its Job. Execute returns results
// indexed by job order, so the assembled output is bit-identical for
// every worker count, including 1 (the serial order). The worker count
// changes only wall-clock time.
type Runner struct {
	// Workers bounds the number of concurrently executing cells;
	// values <= 0 select runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is invoked after each completed cell.
	// Invocations are serialized by the Runner and Done is strictly
	// increasing, so the callback needs no locking of its own.
	Progress func(Progress)
	// Collect, when non-nil, is invoked once per cell after the whole
	// sweep completes, in job order regardless of which worker finished
	// the cell when — so anything it accumulates (e.g. a MetricsReport)
	// is deterministic across worker counts. Invocations are serialized.
	Collect func(Job, Result)
}

// Serial returns a one-worker Runner: the exact serial execution order.
func Serial() *Runner { return &Runner{Workers: 1} }

// Parallel returns a Runner bounded at workers (<= 0 means all CPUs).
func Parallel(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workerCount() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

func (r *Runner) progress() func(Progress) {
	if r == nil {
		return nil
	}
	return r.Progress
}

// Execute runs every job and returns the results in job order: result i
// belongs to jobs[i] no matter which worker finished it when. A cell
// that fails validation — or panics — contributes its error to the
// returned *SweepError rather than aborting the sweep; the Result slice
// is always fully populated.
func (r *Runner) Execute(jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	workers := r.workerCount()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		start   = time.Now()
		report  = r.progress()
		mu      sync.Mutex
		done    int
		wg      sync.WaitGroup
		indexes = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				results[i] = runCell(jobs[i])
				if report != nil {
					mu.Lock()
					done++
					p := Progress{Done: done, Total: len(jobs), Elapsed: time.Since(start)}
					if remaining := len(jobs) - done; remaining > 0 {
						p.ETA = p.Elapsed / time.Duration(done) * time.Duration(remaining)
					}
					report(p)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	if r != nil && r.Collect != nil {
		for i := range jobs {
			r.Collect(jobs[i], results[i])
		}
	}
	return results, sweepError(results)
}

// runCell executes one job, converting a panic anywhere under Run
// (machine livelock diagnostics, workload bugs) into a Result error so
// one bad cell cannot take down a whole sweep.
func runCell(j Job) (res Result) {
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{
				System:   j.System,
				Workload: j.Factory.Name,
				Threads:  j.Threads,
				Err:      fmt.Errorf("panic: %v", rec),
			}
		}
	}()
	return Run(j.System, j.Factory.New(), j.Threads, j.Opt)
}

// sweepError collects the failing cells of a completed sweep.
func sweepError(results []Result) error {
	var cells []CellError
	for _, res := range results {
		if res.Err != nil {
			cells = append(cells, CellError{
				Workload: res.Workload,
				System:   res.System,
				Threads:  res.Threads,
				Err:      res.Err,
			})
		}
	}
	if len(cells) == 0 {
		return nil
	}
	return &SweepError{Total: len(results), Cells: cells}
}

// mergeSweepErrors combines the per-phase errors of a multi-part
// experiment into one aggregated report.
func mergeSweepErrors(errs ...error) error {
	var total int
	var cells []CellError
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *SweepError
		if errors.As(err, &se) {
			total += se.Total
			cells = append(cells, se.Cells...)
			continue
		}
		return err
	}
	if len(cells) == 0 {
		return nil
	}
	return &SweepError{Total: total, Cells: cells}
}
