package unbounded

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tm"
)

func testSystem(procs int) (*machine.Machine, *System) {
	p := machine.DefaultParams(procs)
	p.MemBytes = 1 << 22
	p.Quantum = 0
	p.MaxSteps = 10_000_000
	// Tiny L1 to prove capacity independence.
	p.L1Bytes = 8 * 64
	p.L1Ways = 1
	m := machine.New(p)
	return m, New(m)
}

func TestHugeTransactionCommits(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			for i := uint64(0); i < 200; i++ { // 25× the L1 capacity
				tx.Store(i*64, i)
			}
		})
	}})
	for i := uint64(0); i < 200; i++ {
		if m.Mem.Read64(i*64) != i {
			t.Fatalf("word %d lost", i)
		}
	}
	if m.Count.HWAbortsByReason[machine.AbortOverflow] != 0 {
		t.Fatal("unbounded HTM must never overflow")
	}
	if s.Stats().HWCommits != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestInterruptRetriedInHardware(t *testing.T) {
	p := machine.DefaultParams(1)
	p.MemBytes = 1 << 22
	p.Quantum = 2_000
	p.MaxSteps = 10_000_000
	m := machine.New(p)
	s := New(m)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(pp *machine.Proc) {
		ex.Atomic(func(tx tm.Tx) {
			tx.Store(0, tx.Load(0)+1)
			pp.Elapse(900) // most attempts straddle a quantum
		})
	}})
	if m.Mem.Read64(0) != 1 {
		t.Fatal("value wrong")
	}
	if s.Stats().HWCommits != 1 {
		t.Fatalf("stats = %v", s.Stats())
	}
}

func TestConflictingCountersStayExact(t *testing.T) {
	m, s := testSystem(4)
	var ws []func(*machine.Proc)
	for i := 0; i < 4; i++ {
		ex := s.Exec(m.Proc(i))
		ws = append(ws, func(p *machine.Proc) {
			for n := 0; n < 40; n++ {
				ex.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
			}
		})
	}
	m.Run(ws)
	if got := m.Mem.Read64(0); got != 160 {
		t.Fatalf("counter = %d, want 160", got)
	}
}

func TestExplicitAbortRestarts(t *testing.T) {
	m, s := testSystem(1)
	ex := s.Exec(m.Proc(0))
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		tries := 0
		ex.Atomic(func(tx tm.Tx) {
			tries++
			tx.Store(0, uint64(tries))
			if tries < 3 {
				tx.Abort()
			}
		})
	}})
	if m.Mem.Read64(0) != 3 {
		t.Fatalf("value = %d, want 3", m.Mem.Read64(0))
	}
}

func TestRetryEmulationEventuallySees(t *testing.T) {
	m, s := testSystem(2)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))
	var got uint64
	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			ex0.Atomic(func(tx tm.Tx) {
				if tx.Load(0) == 0 {
					tx.Retry() // polling emulation in a pure HTM
				}
				got = tx.Load(0)
			})
		},
		func(p *machine.Proc) {
			p.Elapse(10_000)
			ex1.Atomic(func(tx tm.Tx) { tx.Store(0, 4) })
		},
	})
	if got != 4 {
		t.Fatalf("consumer read %d", got)
	}
	if s.Stats().Retries == 0 {
		t.Fatal("no retry recorded")
	}
}

func TestPageFaultRetriedWithFixedStall(t *testing.T) {
	// Regression for the discarded abort reason: the old handler dropped
	// `reason` on the floor and routed page faults through exponential
	// contention backoff. A fault is not contention — it must take the
	// standard fixed stall (cm.PageFaultStallCycles) and re-execute,
	// without counting as a contention retry or drawing a backoff delay.
	m, s := testSystem(1)
	ex := tm.Unwrap(s.Exec(m.Proc(0))).(*exec)
	m.Run([]func(*machine.Proc){func(p *machine.Proc) {
		tries := 0
		ex.Atomic(func(tx tm.Tx) {
			tries++
			tx.Store(0, uint64(tries))
			if tries == 1 {
				// Force a page-fault abort mid-transaction (the simulator
				// has no demand paging, so inject it at the BTM unit).
				ex.u.Abort(machine.AbortPageFault)
				tm.Unwind(machine.AbortPageFault)
			}
		})
	}})
	if got := m.Mem.Read64(0); got != 2 {
		t.Fatalf("value = %d, want 2 (one fault, one commit)", got)
	}
	cs := s.CM().Stats()
	if cs.PageFaultStalls != 1 {
		t.Fatalf("page-fault stalls = %d, want 1", cs.PageFaultStalls)
	}
	if cs.Delays != 0 {
		t.Fatalf("delays = %d: a fault must not draw a contention backoff", cs.Delays)
	}
	if s.Stats().HWRetries != 0 {
		t.Fatalf("HWRetries = %d: a fault is not a contention retry", s.Stats().HWRetries)
	}
}

func TestName(t *testing.T) {
	_, s := testSystem(1)
	if s.Name() != "unbounded-htm" {
		t.Fatal("name wrong")
	}
}
