// Package unbounded implements the idealized unbounded hardware TM the
// paper compares against (§5): the BTM execution model with no
// footprint limit, flash abort, and a minimal abort handler that retries
// every transaction in hardware (resolving page faults and interrupts by
// re-execution). As in the paper, this is optimistic with respect to any
// buildable pure-HTM proposal; it serves as the performance ceiling.
package unbounded

import (
	"repro/internal/btm"
	"repro/internal/cm"
	"repro/internal/machine"
	"repro/internal/tm"
)

// System is the unbounded HTM. It implements tm.System.
type System struct {
	m     *machine.Machine
	stats tm.Stats
	// BackoffBase is the exponential-backoff unit for contention retries.
	// Zero selects cm.DefaultBase (64).
	BackoffBase uint64

	backoff cm.Spec
	cmgr    *cm.Manager
}

// New builds the system.
func New(m *machine.Machine) *System {
	return &System{m: m}
}

// SetBackoffPolicy implements cm.Tunable: it selects the contention-
// management policy. Call before the first transaction runs.
func (s *System) SetBackoffPolicy(spec cm.Spec) {
	s.backoff = spec
	s.cmgr = nil
}

// CM implements cm.Instrumented (built lazily so BackoffBase tweaks
// after New still take effect).
func (s *System) CM() *cm.Manager {
	if s.cmgr == nil {
		s.cmgr = cm.NewManager(s.backoff, s.BackoffBase)
	}
	return s.cmgr
}

// Name implements tm.System.
func (s *System) Name() string { return "unbounded-htm" }

// Stats implements tm.System.
func (s *System) Stats() *tm.Stats { return &s.stats }

// Exec implements tm.System.
func (s *System) Exec(p *machine.Proc) tm.Exec {
	return tm.Ordered(&exec{s: s, u: btm.NewUnbounded(p)})
}

type exec struct {
	s        *System
	u        *btm.Unit
	onCommit []func()
}

var _ tm.Exec = (*exec)(nil)

func (e *exec) Proc() *machine.Proc { return e.u.Proc() }

// Load and Store are plain accesses: a pure HTM installs no protection,
// and its strong atomicity comes from coherence.
func (e *exec) Load(addr uint64) uint64 {
	v, out := e.Proc().NTRead(addr)
	if out.Kind != machine.OK {
		panic("unbounded: non-transactional read outcome " + out.Kind.String())
	}
	return v
}

func (e *exec) Store(addr, val uint64) {
	if out := e.Proc().NTWrite(addr, val); out.Kind != machine.OK {
		panic("unbounded: non-transactional write outcome " + out.Kind.String())
	}
}

// Atomic retries in hardware until commit — the defining property (and
// hardware burden) of an unbounded HTM.
func (e *exec) Atomic(body func(tm.Tx)) {
	age := e.s.m.NextAge()
	cmgr := e.s.CM()
	p := e.Proc()
	p.TxLifeBegin()
	// Attempts run on the hardware path until the starvation escalation
	// takes the global token; then they are serialized fallback attempts.
	path := machine.PathHTM
	aborts := 0
	for {
		p.TxLifeAttempt(path)
		e.onCommit = e.onCommit[:0]
		e.u.Begin(age)
		reason, retryReq, aborted := tm.Catch(func() { body(hwTx{e}) })
		if !aborted {
			out := e.u.End()
			if out.Kind == machine.OK {
				e.s.stats.HWCommits++
				p.TxLifeCommit(path)
				cmgr.TxDone(age)
				for _, f := range e.onCommit {
					f()
				}
				return
			}
			reason = out.Reason
		}
		if retryReq {
			// No software fallback exists: emulate transactional waiting
			// by polling re-execution with a long backoff.
			e.s.stats.Retries++
			p.TxLifeRetryWait()
			cmgr.RetryPoll(e.Proc())
			continue
		}
		p.TxLifeAbort(path, reason)
		if reason == machine.AbortPageFault {
			// A page fault is not contention: resolve it (touch the page
			// non-transactionally) with the standard fixed stall and
			// re-execute — the package doc's "resolving page faults ... by
			// re-execution", which the old loop wrongly routed through
			// exponential contention backoff.
			cmgr.PageFaultStall(e.Proc())
			continue
		}
		aborts++ // the policy clamps the shift (saturating counter)
		e.s.stats.HWRetries++
		if cmgr.OnAbort(e.Proc(), age, aborts, reason) != cm.EscalateNone {
			// Starving per the policy: with no software fallback, take the
			// global serialization token (released at commit) so this
			// transaction stops losing to the whole machine.
			cmgr.AcquireToken(e.Proc(), age)
			path = machine.PathFallback
		}
	}
}

type hwTx struct{ e *exec }

var _ tm.Tx = hwTx{}

func (h hwTx) Load(addr uint64) uint64 {
	v, out := h.e.u.Load(addr)
	switch out.Kind {
	case machine.OK:
		return v
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("unbounded: unexpected load outcome " + out.Kind.String())
}

func (h hwTx) Store(addr, val uint64) {
	out := h.e.u.Store(addr, val)
	switch out.Kind {
	case machine.OK:
		return
	case machine.HWAborted:
		tm.Unwind(out.Reason)
	}
	panic("unbounded: unexpected store outcome " + out.Kind.String())
}

func (h hwTx) OnCommit(f func()) { h.e.onCommit = append(h.e.onCommit, f) }

func (h hwTx) Abort() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.Unwind(machine.AbortExplicit)
}

// Nested implements tm.Tx: hardware transactions flatten closed nesting
// (as BTM does); an inner abort therefore aborts the whole transaction —
// which, under a hybrid, fails over to software where partial abort is
// supported.
func (h hwTx) Nested(body func()) bool {
	if !h.e.u.Begin(0) {
		tm.Unwind(machine.AbortNesting)
	}
	if tm.CatchNested(body) {
		h.e.u.Abort(machine.AbortExplicit)
		tm.Unwind(machine.AbortExplicit)
	}
	h.e.u.End()
	return true
}

func (h hwTx) Retry() {
	h.e.u.Abort(machine.AbortExplicit)
	tm.UnwindRetry()
}

// Syscall is idealized as nearly free: the paper's unbounded HTM handles
// in-transaction system calls "much less gracefully" through abort-handler
// complexity, but its Figure 7 pure-HTM reference line is flat — the
// forced failovers do not apply to it.
func (h hwTx) Syscall() { h.e.Proc().Elapse(10) }
