// Vacation example: run the STAMP-style travel-reservation workload on
// the UFO hybrid and on HyTM, printing the hardware/software transaction
// split and the abort breakdown that separates the two designs (compare
// the paper's Figure 5/6 vacation discussion). Run with:
//
//	go run ./examples/vacation
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/stamp"
)

func main() {
	const threads = 8
	opt := harness.DefaultOptions()

	fmt.Println("vacation-high on", threads, "simulated processors")
	fmt.Println()

	seqR := harness.Run(harness.Sequential, stamp.VacationHigh(1024, 48), 1, opt)
	if seqR.Err != nil {
		panic(seqR.Err)
	}
	fmt.Printf("%-14s %8s %9s %9s %9s %9s %9s\n",
		"system", "speedup", "hwCommit", "swCommit", "failover", "overflow", "ufoKill")
	for _, kind := range []harness.SystemKind{
		harness.UnboundedHTM, harness.UFOHybrid, harness.HyTM, harness.PhTM, harness.USTMUFO,
	} {
		r := harness.Run(kind, stamp.VacationHigh(1024, 48), threads, opt)
		if r.Err != nil {
			panic(fmt.Sprintf("%s failed validation: %v", kind, r.Err))
		}
		fmt.Printf("%-14s %8.2f %9d %9d %9d %9d %9d\n",
			kind, r.Speedup(seqR.Cycles),
			r.Stats.HWCommits, r.Stats.SWCommits, r.Stats.Failovers,
			r.Machine.HWAbortsByReason[machine.AbortOverflow],
			r.Machine.HWAbortsByReason[machine.AbortUFOKill])
	}
	fmt.Println()
	fmt.Println("Every run passed the reservation-consistency check")
	fmt.Println("(used counts equal live customer reservations, within capacity).")
}
