// Strongatomic example: the Figure 2a lost-update scenario, run twice —
// on the weakly-atomic baseline USTM, where a doomed transaction's
// rollback clobbers a concurrent non-transactional write, and on the
// UFO-protected strongly-atomic USTM, where the non-transactional write
// faults and stalls until the transaction has unwound, preserving it.
// Run with:
//
//	go run ./examples/strongatomic
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func main() {
	fmt.Println("Figure 2a — a doomed transaction's rollback vs. a nonT write")
	fmt.Println()
	for _, strong := range []bool{false, true} {
		final := run(strong)
		mode := "weakly atomic   (plain USTM)"
		if strong {
			mode = "strongly atomic (USTM + UFO)"
		}
		verdict := "nonT write SURVIVED"
		if final != 777 {
			verdict = fmt.Sprintf("nonT write LOST (rolled back to %d)", final)
		}
		fmt.Printf("  %s → final value %3d: %s\n", mode, final, verdict)
	}
	fmt.Println()
	fmt.Println("The UFO bits installed by the STM's write barrier make the")
	fmt.Println("non-transactional store serialize behind the doomed transaction's")
	fmt.Println("rollback — strong atomicity with zero instrumentation on the")
	fmt.Println("non-transactional code path.")
}

// run stages the race: proc 1's transaction eagerly writes 555 over the
// initial 100, dawdles, and then aborts itself. Mid-window, proc 0 writes
// 777 non-transactionally. Weak atomicity lets the rollback destroy the
// 777; strong atomicity orders the 777 after the rollback.
func run(strong bool) uint64 {
	params := machine.DefaultParams(2)
	params.Quantum = 0
	m := machine.New(params)
	cfg := ustm.DefaultConfig()
	cfg.StrongAtomicity = strong
	s := ustm.New(m, cfg)
	m.Mem.Write64(0, 100)
	ex0, ex1 := s.Exec(m.Proc(0)), s.Exec(m.Proc(1))

	m.Run([]func(*machine.Proc){
		func(p *machine.Proc) {
			p.Elapse(2_000) // land inside proc 1's doomed window
			ex0.Store(0, 777)
		},
		func(p *machine.Proc) {
			doomed := true
			ex1.Atomic(func(tx tm.Tx) {
				if !doomed {
					return // the re-execution commits without touching 0
				}
				doomed = false
				tx.Store(0, 555) // eager versioning: 555 is now in memory
				p.Elapse(20_000) // ... while the nonT write lands
				tx.Abort()       // rollback restores the undo-logged 100
			})
		},
	})
	return m.Mem.Read64(0)
}
