// Retrywait example: transactional waiting (the retry primitive of
// Section 6). A bounded txlib.Queue in simulated memory connects
// producers and consumers; a consumer finding the queue empty (or a
// producer finding it full) retries inside the transaction — under the
// UFO hybrid this fails over to the software TM, converts held write
// entries to reads, and deschedules the processor until a committing
// writer wakes it. No polling, no lost wakeups. Run with:
//
//	go run ./examples/retrywait
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/txlib"
	"repro/internal/ustm"
)

func main() {
	const items = 200
	m := machine.New(machine.DefaultParams(4))
	sys := core.New(m, ustm.DefaultConfig(), core.DefaultPolicy())
	arena := txlib.NewArena(m, nil, 1<<12)
	q := txlib.NewQueue(txlib.Direct{M: m}, arena, 4) // tiny: both sides must wait

	var consumed [2][]uint64
	var delivered [2]int
	workloads := []func(*machine.Proc){
		producer(sys, m, 0, q, 1, items/2),
		producer(sys, m, 1, q, items/2+1, items),
		consumer(sys, m, 2, q, items/2, &consumed[0], &delivered[0]),
		consumer(sys, m, 3, q, items/2, &consumed[1], &delivered[1]),
	}
	m.Run(workloads)

	seen := map[uint64]bool{}
	for _, c := range consumed {
		for _, v := range c {
			if seen[v] {
				panic(fmt.Sprintf("value %d consumed twice", v))
			}
			seen[v] = true
		}
	}
	if len(seen) != items {
		panic(fmt.Sprintf("consumed %d distinct items, want %d", len(seen), items))
	}
	fmt.Printf("moved %d items through a %d-slot transactional queue\n", items, q.Cap())
	fmt.Printf("deliveries confirmed by OnCommit: %d + %d\n", delivered[0], delivered[1])
	fmt.Printf("stats: %v\n", sys.Stats())
	fmt.Printf("retry suspensions: %d (each one a descheduled transaction,\n", sys.Stats().Retries)
	fmt.Println("woken by the committing writer — not a poll loop)")
}

func producer(sys *core.System, m *machine.Machine, proc int, q txlib.Queue, lo, hi int) func(*machine.Proc) {
	ex := sys.Exec(m.Proc(proc))
	return func(p *machine.Proc) {
		for v := lo; v <= hi; v++ {
			val := uint64(v)
			ex.Atomic(func(tx tm.Tx) { q.Push(tx, val) })
			p.Elapse(uint64(30 + p.Rand().Intn(80)))
		}
	}
}

func consumer(sys *core.System, m *machine.Machine, proc int, q txlib.Queue, n int, out *[]uint64, delivered *int) func(*machine.Proc) {
	ex := sys.Exec(m.Proc(proc))
	return func(p *machine.Proc) {
		for i := 0; i < n; i++ {
			var v uint64
			ex.Atomic(func(tx tm.Tx) {
				v = q.Pop(tx)
				// Side effects (an ack, a log write) defer until the pop
				// is durable — the Section 6 deferral mechanism.
				tx.OnCommit(func() { *delivered++ })
			})
			*out = append(*out, v)
			p.Elapse(uint64(30 + p.Rand().Intn(80)))
		}
	}
}
