// Quickstart: build a simulated 4-processor machine, create the UFO
// hybrid TM, and run concurrent bank transfers — small transactions
// commit in hardware; an oversized audit transaction fails over to the
// strongly-atomic software TM. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/tm"
	"repro/internal/ustm"
)

func main() {
	const procs = 4
	const accounts = 64
	const initial = 1000

	// 1. Build the simulated machine and the hybrid TM on top of it.
	m := machine.New(machine.DefaultParams(procs))
	sys := core.New(m, ustm.DefaultConfig(), core.DefaultPolicy())

	// 2. Lay out shared state in simulated memory: one line per account.
	base := m.Mem.Sbrk(accounts * 64)
	for i := uint64(0); i < accounts; i++ {
		m.Mem.Write64(base+i*64, initial)
	}
	account := func(i int) uint64 { return base + uint64(i)*64 }

	// 3. Run one workload per simulated processor. Each thread makes
	// random transfers; thread 0 also audits the books in one large
	// transaction that cannot fit in the L1 and so runs in software.
	var audited uint64
	workloads := make([]func(*machine.Proc), procs)
	for i := 0; i < procs; i++ {
		ex := sys.Exec(m.Proc(i))
		tid := i
		workloads[i] = func(p *machine.Proc) {
			r := p.Rand()
			for n := 0; n < 200; n++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				amount := uint64(r.Intn(100))
				ex.Atomic(func(tx tm.Tx) {
					balance := tx.Load(account(from))
					if balance < amount {
						return
					}
					tx.Store(account(from), balance-amount)
					tx.Store(account(to), tx.Load(account(to))+amount)
				})
				p.Elapse(uint64(50 + r.Intn(200))) // think time
			}
			if tid == 0 {
				// The audit reads every account atomically. Its footprint
				// spans 64 lines plus metadata — a candidate for overflow
				// — and if hardware can't hold it, the hybrid transparently
				// fails over to the software TM.
				ex.Atomic(func(tx tm.Tx) {
					var sum uint64
					for a := 0; a < accounts; a++ {
						sum += tx.Load(account(a))
					}
					audited = sum
				})
			}
		}
	}
	m.Run(workloads)

	// 4. Report. The audit must see a conserved total, and the stats show
	// the hardware/software split.
	var finalTotal uint64
	for i := 0; i < accounts; i++ {
		finalTotal += m.Mem.Read64(account(i))
	}
	fmt.Printf("audited total:   %d (expected %d)\n", audited, accounts*initial)
	fmt.Printf("final total:     %d\n", finalTotal)
	fmt.Printf("simulated time:  %d cycles on %d processors\n", m.Cycles(), procs)
	fmt.Printf("tx stats:        %v\n", sys.Stats())
	fmt.Printf("hw aborts:       conflict=%d overflow=%d ufo-kill=%d\n",
		m.Count.HWAbortsByReason[machine.AbortConflict],
		m.Count.HWAbortsByReason[machine.AbortOverflow],
		m.Count.HWAbortsByReason[machine.AbortUFOKill])
	if audited != accounts*initial || finalTotal != accounts*initial {
		panic("quickstart: money was created or destroyed")
	}
	fmt.Println("OK: atomicity held across hardware and software transactions")
}
