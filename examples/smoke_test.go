// Package examples_test smoke-tests every example program: each must
// build and exit 0 when run against the simulated machine. The examples
// double as user-facing documentation, so a refactor that breaks their
// API usage (as the contention-management rework could have, silently)
// fails here rather than in a reader's terminal.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repository root from this file's location, so
// the test works regardless of the working directory `go test` uses.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	return filepath.Dir(filepath.Dir(file)) // examples/ -> repo root
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full programs; skipped in -short")
	}
	root := moduleRoot(t)
	for _, name := range []string{
		"genome", "lockelision", "quickstart", "retrywait", "strongatomic", "vacation",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("examples/%s printed nothing", name)
			}
		})
	}
}
