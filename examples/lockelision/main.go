// Lockelision example: BTM beyond transactional memory (Section 3.1 —
// "hardware should provide primitives, not solutions"). A hash table is
// guarded by one coarse lock; with speculative lock elision the lock is
// only read, so operations on different buckets proceed concurrently and
// the lock serializes execution only when speculation genuinely fails.
// Run with:
//
//	go run ./examples/lockelision
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sle"
	"repro/internal/txlib"
)

const (
	threads = 8
	opsPer  = 150
	buckets = 1 << 8
)

func main() {
	elidedCycles, st := run(true)
	lockedCycles, _ := run(false)
	fmt.Printf("coarse-locked hash table, %d threads × %d ops\n\n", threads, opsPer)
	fmt.Printf("  real lock only:        %8d cycles\n", lockedCycles)
	fmt.Printf("  with lock elision:     %8d cycles  (%.1f× faster)\n",
		elidedCycles, float64(lockedCycles)/float64(elidedCycles))
	fmt.Printf("\n  elided: %d   fell back to the lock: %d   speculative aborts: %d\n",
		st.Elided, st.Acquired, st.Aborts)
	fmt.Println("\nSame lock, same program — the critical sections that never")
	fmt.Println("conflicted never serialized.")
}

func run(elide bool) (uint64, sle.Stats) {
	m := machine.New(machine.DefaultParams(threads))
	mgr := sle.New(m)
	if !elide {
		mgr.MaxAttempts = 0 // always acquire for real
	}
	l := mgr.NewLock()
	arena := txlib.NewArena(m, nil, 1<<22)
	d := txlib.Direct{M: m}
	table := txlib.NewHash(d, arena, buckets)

	arenas := make([]*txlib.Arena, threads)
	for i := range arenas {
		arenas[i] = txlib.NewArena(m, nil, 1<<20)
	}
	var ws []func(*machine.Proc)
	for i := 0; i < threads; i++ {
		e := mgr.Exec(m.Proc(i))
		tid := i
		ws = append(ws, func(p *machine.Proc) {
			r := p.Rand()
			for n := 0; n < opsPer; n++ {
				key := uint64(tid*opsPer + n) // disjoint keys: elision-friendly
				e.Critical(l, func(mem sle.Mem) {
					table.Insert(mem, arenas[tid], key, key)
				})
				p.Elapse(uint64(20 + r.Intn(60)))
			}
		})
	}
	m.Run(ws)
	if got := table.Len(d); got != threads*opsPer {
		panic(fmt.Sprintf("table has %d entries, want %d", got, threads*opsPer))
	}
	return m.Cycles(), *mgr.Stats()
}
