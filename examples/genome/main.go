// Genome example: the gene-sequencing workload whose sorted-linked-list
// insertion phase is the paper's stress test for contention management.
// This example contrasts the paper's age-ordered hardware policy with the
// naive requester-wins policy (Figure 8's headline result). Run with:
//
//	go run ./examples/genome
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/stamp"
)

func main() {
	const threads = 8
	const segments = 512
	opt := harness.DefaultOptions()

	seqR := harness.Run(harness.Sequential, stamp.NewGenome(segments), 1, opt)
	if seqR.Err != nil {
		panic(seqR.Err)
	}
	fmt.Printf("genome (%d segments) on %d simulated processors; sequential = %d cycles\n\n",
		segments, threads, seqR.Cycles)

	fmt.Printf("%-26s %8s %10s %10s\n", "hardware CM policy", "speedup", "conflicts", "hwRetries")
	for _, pol := range []struct {
		name string
		hw   machine.ContentionPolicy
	}{
		{"age-ordered (paper)", machine.AgeOrdered},
		{"requester-wins (naive)", machine.RequesterWins},
	} {
		o := opt
		o.Params.HWPolicy = pol.hw
		r := harness.Run(harness.UFOHybrid, stamp.NewGenome(segments), threads, o)
		if r.Err != nil {
			panic(fmt.Sprintf("%s failed validation: %v", pol.name, r.Err))
		}
		fmt.Printf("%-26s %8.2f %10d %10d\n",
			pol.name, r.Speedup(seqR.Cycles),
			r.Machine.HWAbortsByReason[machine.AbortConflict], r.Stats.HWRetries)
	}
	fmt.Println("\nThe paper's finding reproduces: \"there is no substitute for a good")
	fmt.Println("contention management policy in hardware\" — requester-wins livelocks")
	fmt.Println("through the sorted-list phase while age ordering makes steady progress.")
}
