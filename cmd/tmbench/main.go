// Command tmbench runs the benchmark-regression suite (internal/perf)
// and optionally gates against a checked-in baseline:
//
//	tmbench -out BENCH_2026-08-05.json                 # take a baseline
//	tmbench -baseline BENCH_2026-08-05.json -gate      # CI regression gate
//	tmbench -bench 'fig5/genome' -benchtime 2s         # one cell, longer
//
// The gate fails (exit 1) when an entry matching -gate-pattern regresses
// beyond -tolerance in ns/op versus the baseline, or has disappeared from
// the suite. All other entries are reported informationally. See
// EXPERIMENTS.md ("Benchmark suite and regression gate") for the
// baseline-refresh procedure.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"repro/internal/perf"
)

func main() {
	out := flag.String("out", "", "write the report to this path (default BENCH_<date>.json with -write)")
	write := flag.Bool("write", false, "write the report even when -out is empty, to BENCH_<date>.json")
	baseline := flag.String("baseline", "", "baseline report to compare against")
	gate := flag.Bool("gate", false, "exit 1 on gated regressions vs -baseline")
	gatePattern := flag.String("gate-pattern", "^"+perf.GateBenchmark+"$", "regexp selecting gated entries")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op growth on gated entries")
	benchFilter := flag.String("bench", "", "regexp selecting which benchmarks to run (default: all)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measurement time per benchmark")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	// Validate the comparison inputs before spending minutes measuring.
	var base *perf.Report
	var gateRe *regexp.Regexp
	if *baseline != "" {
		var err error
		if base, err = perf.ReadFile(*baseline); err != nil {
			fatalf("reading baseline: %v", err)
		}
		if gateRe, err = regexp.Compile(*gatePattern); err != nil {
			fatalf("bad -gate-pattern: %v", err)
		}
	}

	benches := perf.Suite()
	if *benchFilter != "" {
		re, err := regexp.Compile(*benchFilter)
		if err != nil {
			fatalf("bad -bench pattern: %v", err)
		}
		var kept []perf.Bench
		for _, b := range benches {
			if re.MatchString(b.Name) {
				kept = append(kept, b)
			}
		}
		benches = kept
	}
	if *list {
		for _, b := range benches {
			fmt.Println(b.Name)
		}
		return
	}
	if len(benches) == 0 {
		fatalf("no benchmarks match")
	}

	date := time.Now().UTC().Format("2006-01-02")
	report := perf.RunSuite(benches, *benchtime, date, func(name string) {
		fmt.Fprintf(os.Stderr, "bench %s...\n", name)
	})
	for _, e := range report.Entries {
		fmt.Printf("%-40s %12d ns/op %10.0f allocs/op %14.0f sim-cycles/sec\n",
			e.Name, int64(e.NsPerOp), e.AllocsPerOp, e.SimCyclesPerSec)
	}

	path := *out
	if path == "" && *write {
		path = "BENCH_" + date + ".json"
	}
	if path != "" {
		if err := report.WriteFile(path); err != nil {
			fatalf("writing report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if base != nil {
		deltas := perf.Compare(base, report, gateRe, *tolerance)
		fmt.Print(perf.Format(deltas, *tolerance))
		if regs := perf.Regressions(deltas); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d gated benchmark(s) regressed beyond +%.0f%%\n",
				len(regs), *tolerance*100)
			if *gate {
				os.Exit(1)
			}
		} else {
			fmt.Fprintln(os.Stderr, "gate ok")
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tmbench: "+format+"\n", args...)
	os.Exit(1)
}
