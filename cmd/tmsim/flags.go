package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cm"
	"repro/internal/contention"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/oltp"
)

// config carries every tmsim flag value plus the set of flags the user
// explicitly passed (so validation can tell a default apart from an
// explicit choice).
type config struct {
	experiment   string
	scaleName    string
	policy       string
	sched        string
	windowCycles uint64
	seed         uint64
	seeds        int
	csvPath      string
	parallel     int
	progress     bool
	metricsOut   string
	txstatsOut   string

	traceOut      string
	traceFormat   string
	traceWorkload string
	traceSystem   string
	traceThreads  int
	traceLimit    int

	litmusOut string

	oltpOut     string
	oltpArrival string
	oltpTheta   float64
	oltpReadPct int
	oltpRMWPct  int
	oltpScanPct int

	contentionOut    string
	contentionTopK   int
	timeseriesWindow uint64
	reportFormat     string

	cpuProfile string
	memProfile string

	set map[string]bool
}

// knownExperiments are the -experiment values main dispatches on.
var knownExperiments = []string{
	"params", "fig5", "fig6", "fig7", "fig8", "ablate", "extended",
	"footprints", "policies", "litmus", "latency", "scale", "oltp", "all",
}

// parseConfig parses argv (without the program name), records which
// flags were explicitly set, and validates the combination. Errors are
// user errors: main reports them and exits 2.
func parseConfig(args []string, errOut io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("tmsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&cfg.experiment, "experiment", "all", "fig5 | fig6 | fig7 | fig8 | ablate | extended | footprints | policies | litmus | latency | scale | params | all")
	fs.StringVar(&cfg.scaleName, "scale", "full", "small | full")
	fs.StringVar(&cfg.policy, "policy", "exp", "contention-management policy: exp | linear | karma | serialize")
	fs.StringVar(&cfg.sched, "sched", "fast", "engine scheduler: fast | reference | parallel (results are bit-identical; only wall clock differs)")
	fs.Uint64Var(&cfg.windowCycles, "window-cycles", 0, "parallel-scheduler window width in simulated cycles (0 = engine default; requires -sched parallel)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "machine RNG seed")
	fs.IntVar(&cfg.seeds, "seeds", 0, "run fig5 across seeds 1..N and report mean/min/max")
	fs.StringVar(&cfg.csvPath, "csv", "", "also write the fig5 sweep as CSV to this file")
	fs.IntVar(&cfg.parallel, "parallel", 0, "sweep worker count (0 = one per CPU, 1 = serial)")
	fs.BoolVar(&cfg.progress, "progress", false, "report sweep progress (cells done/total, ETA) on stderr")
	fs.StringVar(&cfg.metricsOut, "metrics-out", "", "write per-cell + aggregate metrics JSON to this file")
	fs.StringVar(&cfg.txstatsOut, "txstats-out", "", "write the per-transaction lifecycle (txstats) report as JSON to this file")
	fs.StringVar(&cfg.traceOut, "trace-out", "", "run one traced cell and write its machine trace to this file (skips experiments)")
	fs.StringVar(&cfg.traceFormat, "trace-format", "text", "trace export format: text | jsonl | chrome")
	fs.StringVar(&cfg.traceWorkload, "trace-workload", "genome", "workload for the traced cell")
	fs.StringVar(&cfg.traceSystem, "trace-system", "ufo-hybrid", "TM system for the traced cell")
	fs.IntVar(&cfg.traceThreads, "trace-threads", 4, "thread count for the traced cell")
	fs.IntVar(&cfg.traceLimit, "trace-limit", 1<<20, "max trace events retained (ring buffer)")
	fs.StringVar(&cfg.litmusOut, "litmus-out", "", "also write the litmus conformance report as JSON to this file")
	fs.StringVar(&cfg.oltpOut, "oltp-out", "", "also write the open-loop service (tmsim-oltp/v1) report as JSON to this file")
	fs.StringVar(&cfg.oltpArrival, "oltp-arrival", "poisson", "oltp arrival process: poisson | mmpp")
	fs.Float64Var(&cfg.oltpTheta, "oltp-theta", 0.9, "oltp default Zipfian skew (the load and mix axes run at this theta)")
	fs.IntVar(&cfg.oltpReadPct, "oltp-read-pct", 80, "oltp default point-read percentage (read+rmw+scan must sum to 100)")
	fs.IntVar(&cfg.oltpRMWPct, "oltp-rmw-pct", 15, "oltp default read-modify-write percentage")
	fs.IntVar(&cfg.oltpScanPct, "oltp-scan-pct", 5, "oltp default range-scan percentage")
	fs.StringVar(&cfg.contentionOut, "contention-out", "", "write the conflict-attribution (contention) report to this file")
	fs.IntVar(&cfg.contentionTopK, "contention-topk", contention.DefaultTopK, "hot cache lines kept per cell in the contention report")
	fs.Uint64Var(&cfg.timeseriesWindow, "timeseries-window", 100_000, "contention time-series window width in simulated cycles")
	fs.StringVar(&cfg.reportFormat, "report", "json", "contention report format: json | html | text")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a host CPU profile (runtime/pprof) to this file")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a host heap profile (runtime/pprof) to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg.set = make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { cfg.set[f.Name] = true })
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// spec resolves -policy (validate has already vetted it).
func (cfg *config) spec() cm.Spec {
	s, _ := cm.ParseSpec(cfg.policy)
	return s
}

// applySched writes the -sched / -window-cycles selection into params.
func (cfg *config) applySched(p *machine.Params) {
	p.ReferenceScheduler = cfg.sched == "reference"
	p.ParallelScheduler = cfg.sched == "parallel"
	p.WindowCycles = cfg.windowCycles
}

// scale resolves -scale (validate has already vetted it).
func (cfg *config) scale() harness.Scale {
	if cfg.scaleName == "small" {
		return harness.ScaleSmall
	}
	return harness.ScaleFull
}

// validate rejects invalid values and contradictory flag combinations
// up front, so a long sweep never runs only to fail at output time.
func (cfg *config) validate() error {
	switch cfg.scaleName {
	case "small", "full":
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", cfg.scaleName)
	}
	// Check system-name flags against the harness registry before
	// anything else: a typo'd name must produce the valid list (exit 2),
	// never reach harness.build — even when the flag is otherwise inert
	// because its destination flag is missing.
	if cfg.set["trace-system"] {
		if _, err := harness.ParseSystem(cfg.traceSystem); err != nil {
			return fmt.Errorf("-trace-system: %w", err)
		}
	}
	known := false
	for _, e := range knownExperiments {
		if cfg.experiment == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want one of %v)", cfg.experiment, knownExperiments)
	}
	if _, err := cm.ParseSpec(cfg.policy); err != nil {
		return fmt.Errorf("-policy %q: want one of %v", cfg.policy, cm.Kinds)
	}
	switch cfg.sched {
	case "fast", "reference", "parallel":
	default:
		return fmt.Errorf("unknown scheduler %q (want fast, reference, or parallel)", cfg.sched)
	}
	if cfg.set["window-cycles"] && cfg.sched != "parallel" {
		return fmt.Errorf("-window-cycles requires -sched parallel")
	}
	if cfg.seeds < 0 {
		return fmt.Errorf("-seeds %d: want >= 0", cfg.seeds)
	}
	if cfg.parallel < 0 {
		return fmt.Errorf("-parallel %d: want >= 0", cfg.parallel)
	}
	switch cfg.traceFormat {
	case "text", "jsonl", "chrome":
	default:
		return fmt.Errorf("unknown trace format %q (want text, jsonl, or chrome)", cfg.traceFormat)
	}
	switch cfg.reportFormat {
	case "json", "html", "text":
	default:
		return fmt.Errorf("unknown report format %q (want json, html, or text)", cfg.reportFormat)
	}

	if cfg.litmusOut != "" && cfg.experiment != "litmus" && cfg.experiment != "all" {
		return fmt.Errorf("-litmus-out requires -experiment litmus (or all)")
	}

	// The -oltp-* flags only mean something under -experiment oltp
	// (which is deliberately not part of "all").
	if cfg.experiment != "oltp" {
		for _, f := range []string{"oltp-out", "oltp-arrival", "oltp-theta", "oltp-read-pct", "oltp-rmw-pct", "oltp-scan-pct"} {
			if cfg.set[f] {
				return fmt.Errorf("-%s requires -experiment oltp", f)
			}
		}
	} else {
		if _, err := oltp.ParseArrival(cfg.oltpArrival); err != nil {
			return fmt.Errorf("-oltp-arrival: %w", err)
		}
		if cfg.oltpTheta < 0 {
			return fmt.Errorf("-oltp-theta %v: want >= 0", cfg.oltpTheta)
		}
		for _, pc := range []struct {
			name string
			v    int
		}{{"oltp-read-pct", cfg.oltpReadPct}, {"oltp-rmw-pct", cfg.oltpRMWPct}, {"oltp-scan-pct", cfg.oltpScanPct}} {
			if pc.v < 0 || pc.v > 100 {
				return fmt.Errorf("-%s %d: want 0..100", pc.name, pc.v)
			}
		}
		if sum := cfg.oltpReadPct + cfg.oltpRMWPct + cfg.oltpScanPct; sum != 100 {
			return fmt.Errorf("-oltp-read-pct + -oltp-rmw-pct + -oltp-scan-pct must sum to 100 (got %d)", sum)
		}
	}

	// Trace flags only mean something with a trace destination.
	if cfg.traceOut == "" {
		for _, f := range []string{"trace-format", "trace-workload", "trace-system", "trace-threads", "trace-limit"} {
			if cfg.set[f] {
				return fmt.Errorf("-%s requires -trace-out", f)
			}
		}
	} else {
		if _, ok := harness.FindWorkload(cfg.traceWorkload, cfg.scale()); !ok {
			return fmt.Errorf("unknown workload %q for -trace-workload", cfg.traceWorkload)
		}
		if _, err := harness.ParseSystem(cfg.traceSystem); err != nil {
			return fmt.Errorf("-trace-system: %w", err)
		}
		if cfg.traceThreads < 1 {
			return fmt.Errorf("-trace-threads %d: want >= 1", cfg.traceThreads)
		}
		if cfg.traceLimit < 1 {
			return fmt.Errorf("-trace-limit %d: want >= 1", cfg.traceLimit)
		}
	}

	// Contention flags only mean something with a contention destination.
	if cfg.contentionOut == "" {
		for _, f := range []string{"contention-topk", "timeseries-window", "report"} {
			if cfg.set[f] {
				return fmt.Errorf("-%s requires -contention-out", f)
			}
		}
	} else {
		if cfg.contentionTopK < 1 {
			return fmt.Errorf("-contention-topk %d: want >= 1", cfg.contentionTopK)
		}
		if cfg.timeseriesWindow == 0 {
			return fmt.Errorf("-timeseries-window 0 disables the time series the contention report includes; use a positive window width")
		}
	}
	return nil
}

// system resolves -trace-system (validate has already vetted it).
func (cfg *config) system() harness.SystemKind {
	k, _ := harness.ParseSystem(cfg.traceSystem)
	return k
}

// oltpSweep resolves the -oltp-* flags (validate has already vetted
// them) into the sweep shape.
func (cfg *config) oltpSweep() harness.OLTPSweepConfig {
	kind, _ := oltp.ParseArrival(cfg.oltpArrival)
	return harness.OLTPSweepConfig{
		Arrival: kind,
		Theta:   cfg.oltpTheta,
		ReadPct: cfg.oltpReadPct,
		RMWPct:  cfg.oltpRMWPct,
		ScanPct: cfg.oltpScanPct,
	}
}
