// Command tmsim regenerates the paper's evaluation artifacts on the
// simulated machine:
//
//	tmsim -experiment fig5   # Figure 5: speedup vs. thread count
//	tmsim -experiment fig6   # Figure 6: HW abort-reason breakdown
//	tmsim -experiment fig7   # Figure 7: software-failover microbenchmark
//	tmsim -experiment fig8   # Figure 8: contention-policy sensitivity
//	tmsim -experiment ablate # design-choice ablations (UFO mitigations, L1, otable, quantum)
//	tmsim -experiment extended # extension workloads beyond the paper (ssca2, intruder, labyrinth)
//	tmsim -experiment params # Table 4: simulation parameters
//	tmsim -experiment all    # everything above
//
// -scale small runs quick versions; -scale full (default) runs the sizes
// recorded in EXPERIMENTS.md. Runs are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5 | fig6 | fig7 | fig8 | ablate | extended | footprints | params | all")
	scaleName := flag.String("scale", "full", "small | full")
	seed := flag.Uint64("seed", 1, "machine RNG seed")
	seeds := flag.Int("seeds", 0, "run fig5 across seeds 1..N and report mean/min/max")
	csvPath := flag.String("csv", "", "also write the fig5 sweep as CSV to this file")
	flag.Parse()

	scale := harness.ScaleFull
	switch *scaleName {
	case "full":
	case "small":
		scale = harness.ScaleSmall
	default:
		fmt.Fprintf(os.Stderr, "tmsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	opt := harness.DefaultOptions()
	opt.Params.Seed = *seed

	run := func(name string) {
		start := time.Now()
		switch name {
		case "params":
			harness.PrintParams(os.Stdout, opt)
		case "fig5":
			if *seeds > 1 {
				harness.PrintSeedStats(os.Stdout, harness.Figure5Seeds(opt, scale, *seeds))
				break
			}
			data := harness.Figure5(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
					os.Exit(1)
				}
				if err := harness.WriteFigure5CSV(f, data, scale); err != nil {
					fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				fmt.Printf("  [csv written to %s]\n", *csvPath)
			}
		case "fig6":
			harness.PrintFigure6(os.Stdout, harness.Figure6(opt, scale))
		case "fig7":
			harness.PrintFigure7(os.Stdout, harness.Figure7(opt, scale))
		case "fig8":
			harness.PrintFigure8(os.Stdout, harness.Figure8(opt, scale))
		case "ablate":
			harness.PrintAblations(os.Stdout, harness.Ablations(opt, scale))
		case "extended":
			harness.PrintFigure5(os.Stdout, harness.Extended(opt, scale), scale)
		case "footprints":
			harness.PrintFootprints(os.Stdout, harness.Footprints(opt, scale))
		default:
			fmt.Fprintf(os.Stderr, "tmsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"params", "fig5", "fig6", "fig7", "fig8", "ablate", "extended", "footprints"} {
			run(name)
		}
		return
	}
	run(*experiment)
}
