// Command tmsim regenerates the paper's evaluation artifacts on the
// simulated machine:
//
//	tmsim -experiment fig5   # Figure 5: speedup vs. thread count
//	tmsim -experiment fig6   # Figure 6: HW abort-reason breakdown
//	tmsim -experiment fig7   # Figure 7: software-failover microbenchmark
//	tmsim -experiment fig8   # Figure 8: contention-policy sensitivity
//	tmsim -experiment ablate # design-choice ablations (UFO mitigations, L1, otable, quantum)
//	tmsim -experiment extended # extension workloads beyond the paper (ssca2, intruder, labyrinth)
//	tmsim -experiment params # Table 4: simulation parameters
//	tmsim -experiment all    # everything above
//
// -scale small runs quick versions; -scale full (default) runs the sizes
// recorded in EXPERIMENTS.md. Runs are deterministic for a given -seed.
//
// Independent sweep cells fan out across -parallel worker goroutines
// (default: one per CPU; -parallel 1 forces the serial order). Every
// cell owns its simulated machine and RNG seed, so the output is
// bit-identical for every worker count. -progress reports cells
// done/total with an ETA on stderr.
//
// Observability (see OBSERVABILITY.md):
//
//	tmsim -experiment fig5 -metrics-out fig5.json
//	    also writes every sweep cell's metrics snapshot plus the
//	    deterministic aggregate as JSON (byte-identical for every
//	    -parallel value).
//	tmsim -trace-out t.json -trace-format chrome [-trace-workload genome
//	      -trace-system ufo-hybrid -trace-threads 4]
//	    runs that single cell with machine tracing and exports the trace
//	    (text, jsonl, or a Perfetto/about://tracing-loadable Chrome
//	    trace with one track per simulated processor) instead of running
//	    experiments. -metrics-out composes with it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5 | fig6 | fig7 | fig8 | ablate | extended | footprints | params | all")
	scaleName := flag.String("scale", "full", "small | full")
	seed := flag.Uint64("seed", 1, "machine RNG seed")
	seeds := flag.Int("seeds", 0, "run fig5 across seeds 1..N and report mean/min/max")
	csvPath := flag.String("csv", "", "also write the fig5 sweep as CSV to this file")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = one per CPU, 1 = serial)")
	progress := flag.Bool("progress", false, "report sweep progress (cells done/total, ETA) on stderr")
	metricsOut := flag.String("metrics-out", "", "write per-cell + aggregate metrics JSON to this file")
	traceOut := flag.String("trace-out", "", "run one traced cell and write its machine trace to this file (skips experiments)")
	traceFormat := flag.String("trace-format", "text", "trace export format: text | jsonl | chrome")
	traceWorkload := flag.String("trace-workload", "genome", "workload for the traced cell")
	traceSystem := flag.String("trace-system", "ufo-hybrid", "TM system for the traced cell")
	traceThreads := flag.Int("trace-threads", 4, "thread count for the traced cell")
	traceLimit := flag.Int("trace-limit", 1<<20, "max trace events retained (ring buffer)")
	flag.Parse()

	scale := harness.ScaleFull
	switch *scaleName {
	case "full":
	case "small":
		scale = harness.ScaleSmall
	default:
		fmt.Fprintf(os.Stderr, "tmsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	opt := harness.DefaultOptions()
	opt.Params.Seed = *seed

	runner := harness.Parallel(*parallel)
	if *progress {
		runner.Progress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "\r  [%d/%d cells, elapsed %v, eta %v]   ",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		fail(runTraced(opt, scale, tracedCell{
			workload: *traceWorkload,
			system:   harness.SystemKind(*traceSystem),
			threads:  *traceThreads,
			limit:    *traceLimit,
			out:      *traceOut,
			format:   *traceFormat,
			metrics:  *metricsOut,
		}))
		return
	}

	var rep harness.MetricsReport
	if *metricsOut != "" {
		runner.Collect = rep.Collector()
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "params":
			harness.PrintParams(os.Stdout, opt)
		case "fig5":
			if *seeds > 1 {
				stats, err := runner.Figure5Seeds(opt, scale, *seeds)
				harness.PrintSeedStats(os.Stdout, stats)
				fail(err)
				break
			}
			data, err := runner.Figure5(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				fail(err)
				fail(harness.WriteFigure5CSV(f, data, scale))
				fail(f.Close())
				fmt.Printf("  [csv written to %s]\n", *csvPath)
			}
		case "fig6":
			rows, err := runner.Figure6(opt, scale)
			harness.PrintFigure6(os.Stdout, rows)
			fail(err)
		case "fig7":
			d, err := runner.Figure7(opt, scale)
			harness.PrintFigure7(os.Stdout, d)
			fail(err)
		case "fig8":
			rows, err := runner.Figure8(opt, scale)
			harness.PrintFigure8(os.Stdout, rows)
			fail(err)
		case "ablate":
			rows, err := runner.Ablations(opt, scale)
			harness.PrintAblations(os.Stdout, rows)
			fail(err)
		case "extended":
			data, err := runner.Extended(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
		case "footprints":
			rows, err := runner.Footprints(opt, scale)
			harness.PrintFootprints(os.Stdout, rows)
			fail(err)
		default:
			fmt.Fprintf(os.Stderr, "tmsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"params", "fig5", "fig6", "fig7", "fig8", "ablate", "extended", "footprints"} {
			run(name)
		}
	} else {
		run(*experiment)
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		fail(err)
		fail(rep.WriteJSON(f))
		fail(f.Close())
		fmt.Printf("  [metrics for %d cells written to %s]\n", len(rep.Cells), *metricsOut)
	}
}

// tracedCell describes the single cell -trace-out runs instead of a sweep.
type tracedCell struct {
	workload string
	system   harness.SystemKind
	threads  int
	limit    int
	out      string
	format   string
	metrics  string
}

// newSink builds the TraceSink selected by -trace-format.
func newSink(format string, w io.Writer) (machine.TraceSink, error) {
	switch format {
	case "text":
		return machine.NewTextSink(w), nil
	case "jsonl":
		return machine.NewJSONLSink(w), nil
	case "chrome":
		return machine.NewChromeSink(w), nil
	default:
		return nil, fmt.Errorf("unknown trace format %q (want text, jsonl, or chrome)", format)
	}
}

// runTraced runs one designated cell with tracing enabled and exports
// the trace through the chosen sink. With -metrics-out it also writes
// the cell's metrics snapshot as a one-cell report.
func runTraced(opt harness.Options, scale harness.Scale, c tracedCell) error {
	f, ok := harness.FindWorkload(c.workload, scale)
	if !ok {
		return fmt.Errorf("unknown workload %q", c.workload)
	}
	opt.TraceLimit = c.limit
	start := time.Now()
	res := harness.Run(c.system, f.New(), c.threads, opt)
	if res.Err != nil {
		return fmt.Errorf("%s/%s/%d: %w", c.workload, c.system, c.threads, res.Err)
	}
	out, err := os.Create(c.out)
	if err != nil {
		return err
	}
	sink, err := newSink(c.format, out)
	if err != nil {
		out.Close()
		return err
	}
	if err := res.Trace.Export(sink); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("  [%s/%s/%d threads: %d cycles, %d trace events (%s) written to %s in %v]\n",
		c.workload, c.system, c.threads, res.Cycles, res.Trace.Total(), c.format, c.out,
		time.Since(start).Round(time.Millisecond))
	if c.metrics != "" {
		var rep harness.MetricsReport
		rep.Collector()(harness.Job{}, res)
		mf, err := os.Create(c.metrics)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Printf("  [metrics written to %s]\n", c.metrics)
	}
	return nil
}
