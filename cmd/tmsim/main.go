// Command tmsim regenerates the paper's evaluation artifacts on the
// simulated machine:
//
//	tmsim -experiment fig5   # Figure 5: speedup vs. thread count
//	tmsim -experiment fig6   # Figure 6: HW abort-reason breakdown
//	tmsim -experiment fig7   # Figure 7: software-failover microbenchmark
//	tmsim -experiment fig8   # Figure 8: contention-policy sensitivity
//	tmsim -experiment ablate # design-choice ablations (UFO mitigations, L1, otable, quantum)
//	tmsim -experiment extended # extension workloads beyond the paper (ssca2, intruder, labyrinth)
//	tmsim -experiment policies # contention-management policy ablation
//	tmsim -experiment litmus # strong-atomicity litmus conformance matrix
//	tmsim -experiment latency # per-transaction latency percentiles and
//	                          # wasted-work attribution over the fig5 sweep
//	tmsim -experiment scale  # scaling study: scalemix at 64/128/256 simulated processors
//	tmsim -experiment oltp   # open-loop KV/OLTP service: response-time
//	                         # percentiles, goodput vs offered load, and
//	                         # saturation knees across load/skew/mix axes
//	tmsim -experiment params # Table 4: simulation parameters
//	tmsim -experiment all    # everything above except latency, scale, and
//	                         # oltp (supplements, not paper artifacts)
//
// -scale small runs quick versions; -scale full (default) runs the sizes
// recorded in EXPERIMENTS.md. Runs are deterministic for a given -seed.
//
// -sched selects the engine scheduler every simulated machine runs
// under: fast (the run-ahead serial scheduler, default), reference (the
// executable specification), or parallel (the time-windowed parallel
// scheduler, DESIGN.md §14; -window-cycles tunes its host-side window
// width). Simulated results are bit-identical across all three — the
// choice only affects wall-clock time, with parallel using multiple
// host cores per cell.
//
// -policy selects the contention-management (backoff) policy every
// system retries under: exp (the paper's capped exponential, default),
// linear, karma (Polka/Karma-style priority), or serialize (exp plus
// starvation escalation). See DESIGN.md §11.
//
// Independent sweep cells fan out across -parallel worker goroutines
// (default: one per CPU; -parallel 1 forces the serial order). Every
// cell owns its simulated machine and RNG seed, so the output is
// bit-identical for every worker count. -progress reports cells
// done/total with an ETA on stderr.
//
// Observability (see OBSERVABILITY.md):
//
//	tmsim -experiment fig5 -metrics-out fig5.json
//	    also writes every sweep cell's metrics snapshot plus the
//	    deterministic aggregate as JSON (byte-identical for every
//	    -parallel value).
//	tmsim -experiment litmus -litmus-out litmus.json
//	    also writes the litmus conformance report (per-program,
//	    per-system verdicts) as deterministic JSON. Non-empty failures
//	    exit 1, so the experiment doubles as a CI gate.
//	tmsim -experiment fig5 -contention-out fig5-cont.html -report html
//	    also records conflict attribution — who-aborted-whom edges with
//	    cache-line addresses and abort reasons — and writes per-cell
//	    contention profiles (top-K hot lines, aggressor→victim matrices,
//	    cycle-windowed abort time series) as JSON, self-contained HTML,
//	    or plain text (-report json|html|text; -contention-topk,
//	    -timeseries-window tune the profile). Byte-identical for every
//	    -parallel value.
//	tmsim -experiment latency -txstats-out lat.json
//	    also writes every cell's transaction-lifecycle report — latency
//	    percentiles in simulated cycles, retries-to-commit, wasted-work
//	    breakdown by abort reason and execution path, per-aggressor
//	    wasted-cycle attribution — plus the deterministic aggregate as
//	    JSON (byte-identical for every -parallel value). -txstats-out
//	    composes with any experiment and with -trace-out.
//	tmsim -experiment oltp -oltp-out oltp.json
//	    also writes the open-loop service report (tmsim-oltp/v1): per
//	    (axis point, system) offered load, goodput, utilization, and
//	    P50/P90/P99/P99.9 response time (arrival to commit), plus
//	    per-system saturation knees. -oltp-arrival picks poisson or mmpp
//	    arrivals; -oltp-theta and -oltp-{read,rmw,scan}-pct set the
//	    default skew and request mix the load axis runs at. Byte-identical
//	    for every -parallel value and -sched engine. -txstats-out and
//	    -contention-out compose with it (lifecycle accounting and conflict
//	    attribution are always on for this experiment).
//	tmsim -trace-out t.json -trace-format chrome [-trace-workload genome
//	      -trace-system ufo-hybrid -trace-threads 4]
//	    runs that single cell with machine tracing and exports the trace
//	    (text, jsonl, or a Perfetto/about://tracing-loadable Chrome
//	    trace with one track per simulated processor) instead of running
//	    experiments. -metrics-out and -contention-out compose with it.
//
// Host profiling: -cpuprofile and -memprofile write runtime/pprof
// profiles of tmsim itself (the simulator, not the simulated machine),
// for finding hot spots in the simulation loop. See EXPERIMENTS.md.
//
// Contradictory flag combinations (for example -trace-format without
// -trace-out, or -report without -contention-out) are rejected up front
// with exit status 2.
package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/conformance/litmus"
	"repro/internal/harness"
	"repro/internal/machine"
)

func main() {
	cfg, err := parseConfig(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
		os.Exit(2)
	}

	// stopProfiles finalizes -cpuprofile/-memprofile; it must run on
	// every exit path, including fail()'s early one.
	stopProfiles, err := startProfiles(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
		os.Exit(1)
	}

	fail := func(err error) {
		if err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
			os.Exit(1)
		}
	}

	scale := cfg.scale()
	opt := harness.DefaultOptions()
	opt.Params.Seed = cfg.seed
	cfg.applySched(&opt.Params)
	opt.CM = cfg.spec()
	if cfg.contentionOut != "" {
		opt.Contention = true
		opt.ContentionTopK = cfg.contentionTopK
		opt.TimeSeriesWindow = cfg.timeseriesWindow
	}
	if cfg.txstatsOut != "" {
		opt.TxStats = true
	}

	runner := harness.Parallel(cfg.parallel)
	if cfg.progress {
		runner.Progress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "\r  [%d/%d cells, elapsed %v, eta %v]   ",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if cfg.traceOut != "" {
		fail(runTraced(opt, scale, cfg))
		stopProfiles()
		return
	}

	var mrep harness.MetricsReport
	var crep harness.ContentionReport
	var trep harness.TxStatsReport
	var collectors []func(harness.Job, harness.Result)
	if cfg.metricsOut != "" {
		collectors = append(collectors, mrep.Collector())
	}
	if cfg.contentionOut != "" {
		collectors = append(collectors, crep.Collector())
	}
	if cfg.txstatsOut != "" {
		collectors = append(collectors, trep.Collector())
	}
	if len(collectors) > 0 {
		runner.Collect = func(j harness.Job, r harness.Result) {
			for _, c := range collectors {
				c(j, r)
			}
		}
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "params":
			harness.PrintParams(os.Stdout, opt)
		case "fig5":
			if cfg.seeds > 1 {
				stats, err := runner.Figure5Seeds(opt, scale, cfg.seeds)
				harness.PrintSeedStats(os.Stdout, stats)
				fail(err)
				break
			}
			data, err := runner.Figure5(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
			if cfg.csvPath != "" {
				f, err := os.Create(cfg.csvPath)
				fail(err)
				fail(harness.WriteFigure5CSV(f, data, scale))
				fail(f.Close())
				fmt.Printf("  [csv written to %s]\n", cfg.csvPath)
			}
		case "fig6":
			rows, err := runner.Figure6(opt, scale)
			harness.PrintFigure6(os.Stdout, rows)
			fail(err)
		case "fig7":
			d, err := runner.Figure7(opt, scale)
			harness.PrintFigure7(os.Stdout, d)
			fail(err)
		case "fig8":
			rows, err := runner.Figure8(opt, scale)
			harness.PrintFigure8(os.Stdout, rows)
			fail(err)
		case "ablate":
			rows, err := runner.Ablations(opt, scale)
			harness.PrintAblations(os.Stdout, rows)
			fail(err)
		case "extended":
			data, err := runner.Extended(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
		case "footprints":
			rows, err := runner.Footprints(opt, scale)
			harness.PrintFootprints(os.Stdout, rows)
			fail(err)
		case "policies":
			rows, err := runner.PolicySweep(opt, scale)
			harness.PrintPolicySweep(os.Stdout, rows)
			fail(err)
		case "latency":
			data, err := runner.Latency(opt, scale)
			harness.PrintLatency(os.Stdout, data, scale)
			fail(err)
		case "scale":
			d, err := runner.ScaleSweep(opt, scale)
			harness.PrintScaleSweep(os.Stdout, d, scale)
			fail(err)
		case "oltp":
			rep, err := runner.OLTP(opt, scale, cfg.oltpSweep())
			harness.PrintOLTP(os.Stdout, rep)
			fail(err)
			if cfg.oltpOut != "" {
				f, err := os.Create(cfg.oltpOut)
				fail(err)
				fail(rep.WriteJSON(f))
				fail(f.Close())
				fmt.Printf("  [oltp report for %d points written to %s]\n", len(rep.Points), cfg.oltpOut)
			}
		case "litmus":
			lc := litmus.FullConfig()
			if scale == harness.ScaleSmall {
				lc = litmus.SmallConfig()
			}
			lc.Workers = cfg.parallel
			rep := litmus.Run(lc)
			rep.WriteText(os.Stdout)
			if cfg.litmusOut != "" {
				f, err := os.Create(cfg.litmusOut)
				fail(err)
				fail(rep.WriteJSON(f))
				fail(f.Close())
				fmt.Printf("  [litmus report written to %s]\n", cfg.litmusOut)
			}
			if n := len(rep.Failures); n > 0 {
				fail(fmt.Errorf("litmus: %d conformance failure(s)", n))
			}
		}
		fmt.Printf("  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if cfg.experiment == "all" {
		for _, name := range []string{"params", "fig5", "fig6", "fig7", "fig8", "ablate", "extended", "footprints", "policies", "litmus"} {
			run(name)
		}
	} else {
		run(cfg.experiment)
	}

	if cfg.metricsOut != "" {
		f, err := os.Create(cfg.metricsOut)
		fail(err)
		fail(mrep.WriteJSON(f))
		fail(f.Close())
		fmt.Printf("  [metrics for %d cells written to %s]\n", len(mrep.Cells), cfg.metricsOut)
	}
	if cfg.contentionOut != "" {
		fail(writeContention(&crep, cfg))
		fmt.Printf("  [contention report (%s) for %d cells written to %s]\n",
			cfg.reportFormat, len(crep.Cells), cfg.contentionOut)
	}
	if cfg.txstatsOut != "" {
		f, err := os.Create(cfg.txstatsOut)
		fail(err)
		fail(trep.WriteJSON(f))
		fail(f.Close())
		fmt.Printf("  [txstats report for %d cells written to %s]\n", len(trep.Cells), cfg.txstatsOut)
	}
	stopProfiles()
}

// startProfiles starts the -cpuprofile collection and returns a
// function that stops it and writes the -memprofile heap snapshot. The
// returned function is safe to call when neither flag was given.
func startProfiles(cfg *config) (func(), error) {
	var cpuFile *os.File
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "  [cpu profile written to %s]\n", cfg.cpuProfile)
		}
		if cfg.memProfile != "" {
			f, err := os.Create(cfg.memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tmsim: memprofile: %v\n", err)
				return
			}
			runtime.GC() // flush garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tmsim: memprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "  [heap profile written to %s]\n", cfg.memProfile)
		}
	}, nil
}

// writeContention writes the accumulated contention report to
// -contention-out in the -report format.
func writeContention(rep *harness.ContentionReport, cfg *config) error {
	f, err := os.Create(cfg.contentionOut)
	if err != nil {
		return err
	}
	switch cfg.reportFormat {
	case "html":
		err = rep.WriteHTML(f)
	case "text":
		err = rep.WriteText(f)
	default:
		err = rep.WriteJSON(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// newSink builds the TraceSink selected by -trace-format.
func newSink(format string, w io.Writer) (machine.TraceSink, error) {
	switch format {
	case "text":
		return machine.NewTextSink(w), nil
	case "jsonl":
		return machine.NewJSONLSink(w), nil
	case "chrome":
		return machine.NewChromeSink(w), nil
	default:
		return nil, fmt.Errorf("unknown trace format %q (want text, jsonl, or chrome)", format)
	}
}

// runTraced runs one designated cell with tracing enabled and exports
// the trace through the chosen sink. With -metrics-out it also writes
// the cell's metrics snapshot as a one-cell report; with
// -contention-out, a one-cell contention report.
func runTraced(opt harness.Options, scale harness.Scale, cfg *config) error {
	f, ok := harness.FindWorkload(cfg.traceWorkload, scale)
	if !ok {
		return fmt.Errorf("unknown workload %q", cfg.traceWorkload)
	}
	system := cfg.system()
	opt.TraceLimit = cfg.traceLimit
	start := time.Now()
	res := harness.Run(system, f.New(), cfg.traceThreads, opt)
	if res.Err != nil {
		return fmt.Errorf("%s/%s/%d: %w", cfg.traceWorkload, system, cfg.traceThreads, res.Err)
	}
	out, err := os.Create(cfg.traceOut)
	if err != nil {
		return err
	}
	sink, err := newSink(cfg.traceFormat, out)
	if err != nil {
		out.Close()
		return err
	}
	if err := res.Trace.Export(sink); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("  [%s/%s/%d threads: %d cycles, %d trace events (%s) written to %s in %v]\n",
		cfg.traceWorkload, system, cfg.traceThreads, res.Cycles, res.Trace.Total(), cfg.traceFormat, cfg.traceOut,
		time.Since(start).Round(time.Millisecond))
	if cfg.metricsOut != "" {
		var rep harness.MetricsReport
		rep.Collector()(harness.Job{}, res)
		mf, err := os.Create(cfg.metricsOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Printf("  [metrics written to %s]\n", cfg.metricsOut)
	}
	if cfg.contentionOut != "" {
		var rep harness.ContentionReport
		rep.Collector()(harness.Job{}, res)
		if err := writeContention(&rep, cfg); err != nil {
			return err
		}
		fmt.Printf("  [contention report (%s) written to %s]\n", cfg.reportFormat, cfg.contentionOut)
	}
	if cfg.txstatsOut != "" {
		var rep harness.TxStatsReport
		rep.Collector()(harness.Job{}, res)
		tf, err := os.Create(cfg.txstatsOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("  [txstats report written to %s]\n", cfg.txstatsOut)
	}
	return nil
}
